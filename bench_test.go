package idebench

// One benchmark per table and figure of the paper's evaluation section.
// Each bench executes a reduced-size configuration of the corresponding
// experiment (the full-size runs are `idebench exp -name <id>`) and reports
// the experiment's headline numbers as custom benchmark metrics, so
// `go test -bench=.` regenerates the shape of every result.

import (
	"fmt"
	"io"
	"testing"
	"time"

	"idebench/internal/core"
	"idebench/internal/datagen"
	"idebench/internal/engine"
	"idebench/internal/experiments"
	"idebench/internal/query"
	"idebench/internal/report"
	"idebench/internal/workflow"
)

// benchCfg is the reduced configuration shared by the experiment benches.
func benchCfg() experiments.Config {
	return experiments.Config{
		Rows:             60_000,
		WorkflowsPerType: 2,
		Interactions:     8,
		TRs:              []time.Duration{2 * time.Millisecond, 12 * time.Millisecond, 40 * time.Millisecond},
		ThinkTime:        time.Millisecond,
		Seed:             1,
		Out:              io.Discard,
	}
}

// reportSeries exposes one summary metric per (driver, tr) pair.
func reportSeries(b *testing.B, rows []report.Summary, metric string, pick func(report.Summary) float64) {
	b.Helper()
	for _, s := range rows {
		name := fmt.Sprintf("%s_%s_tr%gms", metric, s.Key.Driver, s.Key.TimeReqMS)
		b.ReportMetric(pick(s), name)
	}
}

// BenchmarkFig5SummaryReport regenerates the paper's Figure 5: the summary
// report of the mixed workload across engines and time requirements.
func BenchmarkFig5SummaryReport(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig5(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportSeries(b, rows, "viol%", func(s report.Summary) float64 { return s.TRViolatedPct })
		}
	}
}

// BenchmarkFig6aTRViolations regenerates Figure 6a (TR violations vs TR).
func BenchmarkFig6aTRViolations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig6a(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportSeries(b, rows, "viol%", func(s report.Summary) float64 { return s.TRViolatedPct })
		}
	}
}

// BenchmarkFig6bMargins regenerates Figure 6b (median relative margins).
func BenchmarkFig6bMargins(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig6b(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportSeries(b, rows, "margin", func(s report.Summary) float64 {
				if s.MedianMargin != s.MedianMargin { // NaN
					return 0
				}
				return s.MedianMargin
			})
		}
	}
}

// BenchmarkFig6cCosine regenerates Figure 6c (cosine distance vs TR).
func BenchmarkFig6cCosine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig6c(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportSeries(b, rows, "cos", func(s report.Summary) float64 {
				if s.MeanCosine != s.MeanCosine {
					return 0
				}
				return s.MeanCosine
			})
		}
	}
}

// BenchmarkFig6dWorkflowTypes regenerates Figure 6d (missing bins by
// workflow type and system).
func BenchmarkFig6dWorkflowTypes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig6d(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, s := range rows {
				b.ReportMetric(s.MissingBinsPct,
					fmt.Sprintf("missing%%_%s_%s", s.Key.Driver, s.Key.WorkflowType))
			}
		}
	}
}

// BenchmarkFig6eNormalized regenerates Figure 6e (Exp. 2: normalized vs
// de-normalized TR violations for the join-capable engines).
func BenchmarkFig6eNormalized(b *testing.B) {
	cfg := benchCfg()
	cfg.Engines = []string{"exactdb", "onlinedb"}
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig6e(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, s := range rows {
				b.ReportMetric(s.TRViolatedPct,
					fmt.Sprintf("viol%%_%s_%s", s.Key.Driver, s.Key.DataSize))
			}
		}
	}
}

// BenchmarkFig6fThinkTime regenerates Figure 6f (Exp. 3: missing bins vs
// think time with speculative execution).
func BenchmarkFig6fThinkTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, err := experiments.Fig6f(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range results {
				mode := "base"
				if r.Speculative {
					mode = "spec"
				}
				b.ReportMetric(100*r.MissingBins,
					fmt.Sprintf("missing%%_%s_think%v", mode, r.ThinkTime))
			}
		}
	}
}

// BenchmarkExp4OtherEffects regenerates the Sec. 5.5 factor analysis.
func BenchmarkExp4OtherEffects(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Exp4(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range rows {
				if r.Factor == report.FactorBinDims {
					b.ReportMetric(r.TRViolatedPct, fmt.Sprintf("viol%%_%s", r.Level))
				}
			}
		}
	}
}

// BenchmarkExp5SystemY regenerates Sec. 5.6 (System Y latency overhead over
// its backend).
func BenchmarkExp5SystemY(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, err := experiments.Exp5(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range results {
				b.ReportMetric(r.MeanLatencyMS, "latms_"+r.Engine)
			}
		}
	}
}

// BenchmarkDataPreparation regenerates the Sec. 5.2 data preparation times.
func BenchmarkDataPreparation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Prep(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range rows {
				b.ReportMetric(float64(r.PrepTime)/float64(time.Millisecond), "prepms_"+r.Engine)
			}
		}
	}
}

// BenchmarkTable1DetailedReport regenerates the appendix's detailed
// per-query report on the progressive engine.
func BenchmarkTable1DetailedReport(b *testing.B) {
	for i := 0; i < b.N; i++ {
		recs, err := experiments.Table1(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(len(recs)), "queries")
		}
	}
}

// --- ablation micro-benchmarks ----------------------------------------------
// These quantify the design choices DESIGN.md calls out: the columnar scan
// kernel, the copula scaler's tuple generation rate, and workload
// generation.

// BenchmarkScanKernel measures the shared group-by scan kernel all engines
// are built on (rows/op via custom metric).
func BenchmarkScanKernel(b *testing.B) {
	db, err := core.BuildData(200_000, false, 1)
	if err != nil {
		b.Fatal(err)
	}
	flows, err := core.GenerateWorkflows(db, 1, 4, 7)
	if err != nil {
		b.Fatal(err)
	}
	q, err := firstQuery(flows)
	if err != nil {
		b.Fatal(err)
	}
	plan, err := engine.Compile(db, q)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gs := engine.NewGroupState(plan)
		gs.ScanRange(0, plan.NumRows)
	}
	b.ReportMetric(float64(plan.NumRows)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mrows/s")
}

func firstQuery(flows []*workflow.Workflow) (*query.Query, error) {
	g := workflow.NewGraph()
	for _, f := range flows {
		for _, in := range f.Interactions {
			eff, err := g.Apply(in)
			if err != nil {
				return nil, err
			}
			if len(eff.Queries) > 0 {
				return eff.Queries[0], nil
			}
		}
	}
	return nil, fmt.Errorf("no queries generated")
}

// BenchmarkCopulaScaler measures synthetic tuple generation throughput.
func BenchmarkCopulaScaler(b *testing.B) {
	seed, err := datagen.GenerateSeed(10_000, 1)
	if err != nil {
		b.Fatal(err)
	}
	scaler, err := datagen.NewScaler(seed, 2)
	if err != nil {
		b.Fatal(err)
	}
	const rows = 50_000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := scaler.Generate(rows, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mrows/s")
}

// BenchmarkWorkloadGenerator measures workflow generation cost.
func BenchmarkWorkloadGenerator(b *testing.B) {
	seed, err := datagen.GenerateSeed(10_000, 1)
	if err != nil {
		b.Fatal(err)
	}
	gen, err := workflow.NewGenerator(seed)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gen.Generate(workflow.GenConfig{
			Type: workflow.Mixed, Interactions: 18, Seed: int64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}
