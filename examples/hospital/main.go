// Hospital: the paper's motivating use case (Sec. 2.1) as a hand-built
// workflow. Jean, a research staff member, explores 20 years of electronic
// health records: age distributions, admission times, the evening bump in
// emergency admits, weekend patterns, and finally the health problems of
// young weekend-night patients.
//
// The example shows three things the benchmark framework provides beyond
// the flights default: custom datasets (any dataset.Table works), hand-
// written workflows that match a concrete analysis narrative, and per-step
// inspection of progressive results.
//
//	go run ./examples/hospital
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"idebench/internal/core"
	"idebench/internal/dataset"
	"idebench/internal/query"
	"idebench/internal/workflow"
)

func main() {
	log.SetFlags(0)
	db := buildAdmissions(200_000)

	flow := jeanWorkflow()
	if err := flow.Validate(); err != nil {
		log.Fatal(err)
	}

	settings := core.DefaultSettings()
	settings.DataSize = db.NumRows()
	settings.TimeRequirement = 20 * time.Millisecond
	settings.ThinkTime = 5 * time.Millisecond

	prepared, err := core.Prepare("progressive", db, settings)
	if err != nil {
		log.Fatal(err)
	}
	records, err := prepared.Run([]*workflow.Workflow{flow}, settings)
	if err != nil {
		log.Fatal(err)
	}

	steps := []string{
		"age distribution of all patients",
		"admits per hour of day",
		"admits per hour, emergency center only",
		"admits per hour, emergency + weekend",
		"link hours -> ages (ages refresh)",
		"select 10pm-12am (ages update)",
		"health problems visualization",
		"link hours -> problems (problems update)",
	}
	fmt.Println("Jean's exploration (progressive engine, 20ms time requirement):")
	for _, rec := range records {
		step := rec.InteractionID
		label := ""
		if step < len(steps) {
			label = steps[step]
		}
		fmt.Printf("  step %d [%s] %-46s bins=%d/%d missing=%.0f%% err=%.2f%% violated=%v\n",
			step, rec.VizName, label,
			rec.Metrics.BinsDelivered, rec.Metrics.BinsInGT,
			100*rec.Metrics.MissingBins, 100*rec.Metrics.RelErrAvg, rec.Metrics.TRViolated)
	}
	fmt.Printf("\n%d queries executed for %d interactions (linking fans out updates)\n",
		len(records), len(flow.Interactions))
}

// buildAdmissions synthesizes an EHR admissions table with the structure
// Jean's narrative needs: a normal age distribution, business-hour
// admissions with a 7–10pm emergency bump that shifts to 10pm–12am on
// weekends, and young patients over-represented in that late subset.
func buildAdmissions(n int) *dataset.Database {
	schema := dataset.MustSchema([]dataset.Field{
		{Name: "department", Kind: dataset.Nominal},
		{Name: "problem", Kind: dataset.Nominal},
		{Name: "age", Kind: dataset.Quantitative},
		{Name: "admit_hour", Kind: dataset.Quantitative},
		{Name: "day_of_week", Kind: dataset.Quantitative}, // 1=Mon .. 7=Sun
	})
	departments := []string{"emergency", "cardiology", "oncology", "pediatrics", "surgery"}
	problems := []string{"head trauma", "chest pain", "fracture", "infection", "stroke", "laceration"}
	rng := rand.New(rand.NewSource(2026))
	b := dataset.NewBuilder("admissions", schema, n)
	for i := 0; i < n; i++ {
		dow := float64(1 + rng.Intn(7))
		weekend := dow >= 6

		dept := departments[rng.Intn(len(departments))]
		var hour float64
		switch {
		case dept == "emergency" && weekend && rng.Float64() < 0.35:
			hour = 22 + rng.Float64()*2 // weekend bump: 10pm-12am
		case dept == "emergency" && rng.Float64() < 0.30:
			hour = 19 + rng.Float64()*3 // weekday bump: 7-10pm
		default:
			hour = clamp(13+rng.NormFloat64()*4, 0, 23.99) // business hours
		}

		age := clamp(45+rng.NormFloat64()*18, 0, 100)
		problem := problems[rng.Intn(len(problems))]
		if dept == "emergency" && hour >= 22 {
			// Young patients with head traumas dominate the late subset.
			age = clamp(27+rng.NormFloat64()*7, 16, 100)
			if rng.Float64() < 0.4 {
				problem = "head trauma"
			}
		}

		b.AppendString(0, dept)
		b.AppendString(1, problem)
		b.AppendNum(2, float64(int(age)))
		b.AppendNum(3, float64(int(hour)))
		b.AppendNum(4, dow)
	}
	fact, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	return &dataset.Database{Fact: fact}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// jeanWorkflow transcribes the Sec. 2.1 narrative interaction by
// interaction.
func jeanWorkflow() *workflow.Workflow {
	ages := &workflow.VizSpec{
		Name: "ages", Table: "admissions",
		Bins: []query.Binning{{Field: "age", Kind: dataset.Quantitative, Width: 10}},
		Aggs: []query.Aggregate{{Func: query.Count}},
	}
	hours := &workflow.VizSpec{
		Name: "admit_hours", Table: "admissions",
		Bins: []query.Binning{{Field: "admit_hour", Kind: dataset.Quantitative, Width: 1}},
		Aggs: []query.Aggregate{{Func: query.Count}},
	}
	problems := &workflow.VizSpec{
		Name: "problems", Table: "admissions",
		Bins: []query.Binning{{Field: "problem", Kind: dataset.Nominal}},
		Aggs: []query.Aggregate{{Func: query.Count}},
	}
	emergency := query.Predicate{Field: "department", Op: query.OpIn, Values: []string{"emergency"}}
	weekend := query.Predicate{Field: "day_of_week", Op: query.OpRange, Lo: 6, Hi: 8}
	lateNight := query.Predicate{Field: "admit_hour", Op: query.OpRange, Lo: 22, Hi: 24}

	return &workflow.Workflow{
		Name: "jean", Type: workflow.SequentialLinking,
		Interactions: []workflow.Interaction{
			// "Jean starts out by examining demographic information."
			{Kind: workflow.KindCreateViz, Viz: "ages", Spec: ages},
			// "She creates a query that shows the number of new admits per
			// hour of the day" — the 7-10pm bump appears.
			{Kind: workflow.KindCreateViz, Viz: "admit_hours", Spec: hours},
			// "She filters down to admits coming from the emergency center."
			{Kind: workflow.KindFilter, Viz: "admit_hours", Predicate: &emergency},
			// "She refines her query to only show the admits on weekends" —
			// the bump shifts to 10pm-12am.
			{Kind: workflow.KindFilter, Viz: "admit_hours", Predicate: &weekend},
			// "Jean filters her previous age query by patients admitted on
			// weekends between 10 and 12pm" — link hours → ages, select the
			// late bins.
			{Kind: workflow.KindLink, From: "admit_hours", To: "ages"},
			{Kind: workflow.KindSelect, Viz: "admit_hours", Predicate: &lateNight},
			// "Now Jean wants to see which health problems are common among
			// this sub-population" — head traumas are frequent.
			{Kind: workflow.KindCreateViz, Viz: "problems", Spec: problems},
			{Kind: workflow.KindLink, From: "admit_hours", To: "problems"},
		},
	}
}
