// Customengine: how to benchmark your own system. The paper's adapter
// interface (Sec. 4.5, Listing 1) maps to engine.Engine; this example
// implements a small custom engine — a memoizing layer over the blocking
// column store that caches completed results per query signature (so
// repeated queries, common in exploration, return instantly) — and runs it
// head-to-head against its un-cached backend.
//
//	go run ./examples/customengine
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"idebench/internal/core"
	"idebench/internal/dataset"
	"idebench/internal/driver"
	"idebench/internal/engine"
	"idebench/internal/engine/exactdb"
	"idebench/internal/groundtruth"
	"idebench/internal/query"
	"idebench/internal/report"
)

// cachingEngine memoizes complete results by query signature. It
// implements engine.Engine and demonstrates everything an adapter author
// needs: delegation, handle wrapping, and per-workflow lifecycle hooks.
type cachingEngine struct {
	backend engine.Engine

	mu    sync.Mutex
	cache map[string]*query.Result
}

func newCachingEngine() *cachingEngine {
	return &cachingEngine{backend: exactdb.New(), cache: map[string]*query.Result{}}
}

func (e *cachingEngine) Name() string { return "cached-exactdb" }

func (e *cachingEngine) Prepare(db *dataset.Database, opts engine.Options) error {
	return e.backend.Prepare(db, opts)
}

func (e *cachingEngine) StartQuery(q *query.Query) (engine.Handle, error) {
	sig := q.Signature()
	e.mu.Lock()
	cached := e.cache[sig]
	e.mu.Unlock()

	h := engine.NewAsyncHandle()
	if cached != nil {
		// Cache hit: the result is available immediately.
		h.Publish(cached.Clone())
		h.Finish()
		return h, nil
	}
	inner, err := e.backend.StartQuery(q)
	if err != nil {
		return nil, err
	}
	go func() {
		defer h.Finish()
		select {
		case <-inner.Done():
		}
		if res := inner.Snapshot(); res != nil && res.Complete {
			e.mu.Lock()
			e.cache[sig] = res.Clone()
			e.mu.Unlock()
			h.Publish(res)
		}
	}()
	// Forward cancellation to the backend.
	go func() {
		<-h.Done()
		inner.Cancel()
	}()
	return h, nil
}

// OpenSession uses the stateless-session helper: the result cache is shared
// across sessions on purpose (a server-side cache serves every user), so
// engine-level delegation is the correct multi-user behaviour here. Engines
// with per-user state implement their own engine.Session instead.
func (e *cachingEngine) OpenSession() engine.Session { return engine.NewEngineSession(e) }

func (e *cachingEngine) LinkVizs(from, to string) { e.backend.LinkVizs(from, to) }
func (e *cachingEngine) DeleteViz(name string)    { e.backend.DeleteViz(name) }
func (e *cachingEngine) WorkflowStart() {
	// A fresh exploration session starts cold, like the paper's reuse
	// experiments.
	e.mu.Lock()
	e.cache = map[string]*query.Result{}
	e.mu.Unlock()
	e.backend.WorkflowStart()
}
func (e *cachingEngine) WorkflowEnd() { e.backend.WorkflowEnd() }

var _ engine.Engine = (*cachingEngine)(nil)

func main() {
	log.SetFlags(0)
	const rows = 250_000
	db, err := core.BuildData(rows, false, 21)
	if err != nil {
		log.Fatal(err)
	}
	flows, err := core.GenerateWorkflows(db, 2, 14, 33)
	if err != nil {
		log.Fatal(err)
	}
	mixed := core.MixedOnly(flows)

	gt := groundtruth.New(db)
	tr := 6 * time.Millisecond
	for _, eng := range []engine.Engine{exactdb.New(), newCachingEngine()} {
		if err := eng.Prepare(db, engine.Options{}); err != nil {
			log.Fatal(err)
		}
		runner := driver.New(eng, gt, driver.Config{
			TimeRequirement: tr,
			ThinkTime:       time.Millisecond,
			DataSizeLabel:   core.SizeLabel(rows),
		})
		records, err := runner.RunWorkflows(mixed)
		if err != nil {
			log.Fatal(err)
		}
		rowsOut := report.Summarize(records, report.GroupBy{Driver: true})
		fmt.Printf("engine %-15s → ", eng.Name())
		for _, s := range rowsOut {
			fmt.Printf("queries=%d tr_violated=%.1f%% (repeated queries answer from cache)\n",
				s.Queries, s.TRViolatedPct)
		}
	}
	fmt.Println("\nimplementing engine.Engine + engine.Handle is all an adapter needs")
}
