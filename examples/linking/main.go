// Linking: the paper's Exp. 3 scenario (Sec. 5.4) as a runnable example —
// a 1:N-style linked dashboard where the progressive engine's speculative
// extension exploits think time. A 1D carrier histogram is linked to a 2D
// delay histogram; after the link is established the user "thinks" before
// selecting a carrier, and the engine uses that idle time to pre-execute
// the per-carrier queries.
//
//	go run ./examples/linking
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"idebench/internal/core"
	"idebench/internal/dataset"
	"idebench/internal/query"
	"idebench/internal/workflow"
)

func main() {
	log.SetFlags(0)
	const rows = 1_500_000
	db, err := core.BuildData(rows, false, 9)
	if err != nil {
		log.Fatal(err)
	}

	settings := core.DefaultSettings()
	settings.DataSize = rows
	settings.TimeRequirement = 3 * time.Millisecond

	fmt.Println("think-time speculation on a linked dashboard (TR = 3ms):")
	fmt.Println("mode         think    missing bins of the 2D update")
	for _, mode := range []string{"progressive", "progressive-spec"} {
		prepared, err := core.Prepare(mode, db, settings)
		if err != nil {
			log.Fatal(err)
		}
		for _, think := range []time.Duration{2 * time.Millisecond, 20 * time.Millisecond, 60 * time.Millisecond} {
			settings.ThinkTime = think
			flow := linkedWorkflow(db)
			records, err := prepared.Run([]*workflow.Workflow{flow}, settings)
			if err != nil {
				log.Fatal(err)
			}
			last := records[len(records)-1]
			missing := last.Metrics.MissingBins
			if math.IsNaN(missing) {
				missing = 1
			}
			label := "baseline"
			if mode == "progressive-spec" {
				label = "speculative"
			}
			fmt.Printf("%-12s %-8v %5.1f%%  %s\n", label, think, 100*missing, bar(missing))
		}
	}
	fmt.Println("\nlonger think time → more speculation → fewer missing bins (speculative rows)")
}

func bar(frac float64) string {
	n := int(frac * 30)
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}

// linkedWorkflow mirrors the paper's 4-interaction Exp.-3 workflow.
func linkedWorkflow(db *dataset.Database) *workflow.Workflow {
	width := func(field string, bins int) query.Binning {
		col := db.Fact.Column(field)
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range col.Nums {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		return query.Binning{
			Field: field, Kind: dataset.Quantitative,
			Width: (hi - lo) / float64(bins), Origin: lo,
		}
	}
	twoD := &workflow.VizSpec{
		Name: "delays_2d", Table: "flights",
		Bins: []query.Binning{width("arr_delay", 10), width("dep_delay", 10)},
		Aggs: []query.Aggregate{{Func: query.Count}},
	}
	carriers := &workflow.VizSpec{
		Name: "carriers_1d", Table: "flights",
		Bins: []query.Binning{{Field: "carrier", Kind: dataset.Nominal}},
		Aggs: []query.Aggregate{{Func: query.Count}},
	}
	return &workflow.Workflow{
		Name: "exp3", Type: workflow.SequentialLinking,
		Interactions: []workflow.Interaction{
			{Kind: workflow.KindCreateViz, Viz: "delays_2d", Spec: twoD},
			{Kind: workflow.KindCreateViz, Viz: "carriers_1d", Spec: carriers},
			{Kind: workflow.KindLink, From: "carriers_1d", To: "delays_2d"},
			{Kind: workflow.KindSelect, Viz: "carriers_1d", Predicate: &query.Predicate{
				Field: "carrier", Op: query.OpIn, Values: []string{"WN"},
			}},
		},
	}
}
