// Quickstart: generate a scaled flights dataset, generate a mixed
// workload, run it against the progressive engine with a 12ms time
// requirement, and print the summary report.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"idebench/internal/core"
	"idebench/internal/report"
)

func main() {
	log.SetFlags(0)
	const rows = 100_000

	fmt.Printf("generating %d flight tuples (copula-scaled synthetic seed)...\n", rows)
	db, err := core.BuildData(rows, false, 42)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("generating 2 mixed workflows of 12 interactions each...")
	flows, err := core.GenerateWorkflows(db, 2, 12, 7)
	if err != nil {
		log.Fatal(err)
	}
	mixed := core.MixedOnly(flows)

	settings := core.DefaultSettings()
	settings.DataSize = rows
	settings.TimeRequirement = 12 * time.Millisecond
	settings.ThinkTime = 4 * time.Millisecond

	fmt.Println("preparing the progressive engine (IDEA analogue)...")
	prepared, err := core.Prepare("progressive", db, settings)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("data preparation time: %v\n\n", prepared.PrepTime.Round(time.Microsecond))

	records, err := prepared.Run(mixed, settings)
	if err != nil {
		log.Fatal(err)
	}

	rowsOut := report.Summarize(records, report.GroupBy{Driver: true, TimeReq: true})
	if err := report.RenderSummaries(os.Stdout, rowsOut); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	for _, s := range rowsOut {
		if err := report.RenderCDF(os.Stdout, s, 50, 8); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("\nran %d queries; see cmd/idebench for the full experiment suite\n", len(records))
}
