package idebench

// Ablation benchmarks for the design choices DESIGN.md calls out: the
// progressive engine's chunk size (snapshot/cancellation granularity vs.
// scan throughput), the online engine's tuple overhead calibration, the
// exactdb worker count, and map-based group-by cost across bin counts.

import (
	"fmt"
	"testing"
	"time"

	"idebench/internal/core"
	"idebench/internal/dataset"
	"idebench/internal/engine"
	"idebench/internal/engine/exactdb"
	"idebench/internal/engine/progressive"
	"idebench/internal/enginetest"
	"idebench/internal/query"
)

// BenchmarkAblationProgressiveChunkSize measures how the progressive
// engine's chunk size trades scan throughput against poll granularity.
func BenchmarkAblationProgressiveChunkSize(b *testing.B) {
	db := enginetest.SmallDB(200_000, 1)
	for _, chunk := range []int{256, 1024, 4096, 16384} {
		b.Run(fmt.Sprintf("chunk%d", chunk), func(b *testing.B) {
			e := progressive.New(progressive.Config{ChunkRows: chunk})
			if err := e.Prepare(db, engine.Options{}); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.WorkflowStart()
				h, err := e.StartQuery(enginetest.CountByCarrier())
				if err != nil {
					b.Fatal(err)
				}
				<-h.Done()
			}
			b.ReportMetric(float64(db.NumRows())*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mrows/s")
		})
	}
}

// BenchmarkAblationExactdbWorkers measures the blocking engine's parallel
// scan across worker counts (on a multi-core host the scaling is visible;
// on one core it quantifies the goroutine overhead).
func BenchmarkAblationExactdbWorkers(b *testing.B) {
	db := enginetest.SmallDB(200_000, 2)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("p%d", workers), func(b *testing.B) {
			e := exactdb.New()
			if err := e.Prepare(db, engine.Options{Parallelism: workers}); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h, err := e.StartQuery(enginetest.AvgDelayByDistance())
				if err != nil {
					b.Fatal(err)
				}
				<-h.Done()
			}
		})
	}
}

// BenchmarkAblationGroupByWidth measures the group-by kernel across bin
// counts — the paper's Exp. 4 found bin count has no significant effect;
// this quantifies our substrate's sensitivity.
func BenchmarkAblationGroupByWidth(b *testing.B) {
	db, err := core.BuildData(100_000, false, 3)
	if err != nil {
		b.Fatal(err)
	}
	col := db.Fact.Column("dep_delay")
	lo, hi := col.Nums[0], col.Nums[0]
	for _, v := range col.Nums {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	for _, bins := range []int{5, 25, 100, 400} {
		b.Run(fmt.Sprintf("bins%d", bins), func(b *testing.B) {
			q := &query.Query{
				VizName: "v", Table: "flights",
				Bins: []query.Binning{{
					Field: "dep_delay", Kind: dataset.Quantitative,
					Width: (hi - lo) / float64(bins), Origin: lo,
				}},
				Aggs: []query.Aggregate{{Func: query.Count}},
			}
			plan, err := engine.Compile(db, q)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				gs := engine.NewGroupState(plan)
				gs.ScanRange(0, plan.NumRows)
			}
			b.ReportMetric(float64(plan.NumRows)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mrows/s")
		})
	}
}

// BenchmarkAblationFilterSelectivity quantifies the paper's Exp.-4 finding
// that filter specificity is the dominant per-query cost factor: matching
// rows pay the group-by, skipped rows only the predicate.
func BenchmarkAblationFilterSelectivity(b *testing.B) {
	db, err := core.BuildData(100_000, false, 4)
	if err != nil {
		b.Fatal(err)
	}
	for _, sel := range []struct {
		name   string
		lo, hi float64
	}{
		{"match_all", -1e12, 1e12},
		{"match_half", 0, 700},    // ~median distance split
		{"match_few", 2400, 1e12}, // long-haul tail
	} {
		b.Run(sel.name, func(b *testing.B) {
			q := &query.Query{
				VizName: "v", Table: "flights",
				Bins: []query.Binning{{Field: "carrier", Kind: dataset.Nominal}},
				Aggs: []query.Aggregate{{Func: query.Avg, Field: "arr_delay"}},
				Filter: query.Filter{Predicates: []query.Predicate{
					{Field: "distance", Op: query.OpRange, Lo: sel.lo, Hi: sel.hi},
				}},
			}
			plan, err := engine.Compile(db, q)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				gs := engine.NewGroupState(plan)
				gs.ScanRange(0, plan.NumRows)
			}
		})
	}
}

// BenchmarkAblationSpeculationOverhead measures the idle cost of enabling
// speculation when no link exists (should be ~free thanks to foreground
// yielding).
func BenchmarkAblationSpeculationOverhead(b *testing.B) {
	db := enginetest.SmallDB(100_000, 5)
	for _, speculate := range []bool{false, true} {
		b.Run(fmt.Sprintf("speculate=%v", speculate), func(b *testing.B) {
			e := progressive.New(progressive.Config{Speculate: speculate})
			if err := e.Prepare(db, engine.Options{}); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.WorkflowStart()
				h, err := e.StartQuery(enginetest.CountByCarrier())
				if err != nil {
					b.Fatal(err)
				}
				<-h.Done()
			}
			e.WorkflowEnd()
			_ = time.Now()
		})
	}
}
