package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"sync"
	"syscall"
	"testing"
	"time"

	"idebench/internal/core"
	"idebench/internal/dataset"
	"idebench/internal/engine"
	"idebench/internal/faultnet"
	"idebench/internal/ingest"
	"idebench/internal/query"
	"idebench/internal/server"
)

// servedProc is one `idebench serve` child process with its captured output
// and the address it actually bound.
type servedProc struct {
	cmd  *exec.Cmd
	addr string

	mu  sync.Mutex
	out bytes.Buffer
}

func (p *servedProc) output() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.out.String()
}

var serveAddrRe = regexp.MustCompile(`serving .* on (127\.0\.0\.1:\d+)`)

// startServe launches the built binary's serve command on an ephemeral port
// and waits until it prints the bound address.
func startServe(t *testing.T, bin string, args ...string) *servedProc {
	t.Helper()
	return startProc(t, bin, append([]string{"serve", "-addr", "127.0.0.1:0"}, args...)...)
}

// startProc launches the built binary with the given argv (any serving
// subcommand) and waits until it prints its bound address banner.
func startProc(t *testing.T, bin string, argv ...string) *servedProc {
	t.Helper()
	p, addrCh := launchProc(t, bin, argv...)
	select {
	case p.addr = <-addrCh:
	case <-time.After(60 * time.Second):
		t.Fatalf("server did not come up; output so far:\n%s", p.output())
	}
	return p
}

// launchProc starts the binary and returns immediately with a channel that
// yields the bound address once the serving banner appears — for processes
// (a warm standby) that deliberately do not bind until much later.
func launchProc(t *testing.T, bin string, argv ...string) (*servedProc, <-chan string) {
	t.Helper()
	p := &servedProc{cmd: exec.Command(bin, argv...)}
	stdout, err := p.cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	p.cmd.Stderr = &lockedWriter{mu: &p.mu, buf: &p.out}
	if err := p.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if p.cmd.Process != nil {
			_ = p.cmd.Process.Kill()
			_ = p.cmd.Wait()
		}
	})
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			p.mu.Lock()
			p.out.WriteString(line + "\n")
			p.mu.Unlock()
			if m := serveAddrRe.FindStringSubmatch(line); m != nil {
				select {
				case addrCh <- m[1]:
				default:
				}
			}
		}
	}()
	return p, addrCh
}

type lockedWriter struct {
	mu  *sync.Mutex
	buf *bytes.Buffer
}

func (w *lockedWriter) Write(b []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(b)
}

// healthz is the subset of /healthz this test asserts on.
type healthz struct {
	Durable            bool  `json:"durable"`
	Recovered          bool  `json:"recovered"`
	CheckpointVersion  int64 `json:"checkpoint_version"`
	RecoveredWatermark int64 `json:"recovered_watermark"`
	WALReplayedBatches int   `json:"wal_replayed_batches"`
	Checkpoints        int   `json:"checkpoints"`
	Watermark          int64 `json:"watermark"`
	Rows               int64 `json:"rows"`

	Role              string  `json:"role"`
	Shards            int     `json:"shards"`
	ShardWatermarks   []int64 `json:"shard_watermarks"`
	MinShardWatermark int64   `json:"min_shard_watermark"`

	SchemaVersion int              `json:"schema_version"`
	Topology      *engine.Topology `json:"topology"`
}

func getHealthz(t *testing.T, addr string) healthz {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h healthz
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	return h
}

// TestServeCrashRecoveryE2E is the crash wall's end-to-end act: a real
// `idebench serve -data-dir` process ingesting live batches through the
// fault-injecting proxy is killed with SIGKILL (kill -9) mid-ingest — no
// drain, no flush, no close handshake — then restarted on the same data
// directory. The restarted server must report a recovered, batch-aligned
// watermark that covers every batch it acknowledged before dying, and a
// count query against it must match, bitwise, the client's own ground
// truth of exactly that data version.
func TestServeCrashRecoveryE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kill -9s a real server process")
	}
	const (
		rows      = 20000
		batchRows = 400
	)
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "idebench.test.bin")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	dataDir := filepath.Join(tmp, "state")
	serveArgs := []string{
		"-engine", "progressive", "-rows", strconv.Itoa(rows), "-seed", "1",
		"-data-dir", dataDir,
		// Aggressive background checkpointing so the crash lands in the
		// interesting regime: checkpoints and WAL appends interleaving.
		"-checkpoint-interval", "100ms", "-checkpoint-wal-bytes", strconv.Itoa(64 << 10),
	}

	// Boot 1: cold — builds the dataset, bootstraps the checkpoint.
	p1 := startServe(t, bin, serveArgs...)

	// The client dials through the chaos proxy, so the kill also exercises
	// the proxied-connection teardown path.
	px, err := faultnet.New(p1.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer px.Close()

	db, err := core.BuildData(rows, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	src, err := ingest.NewSource(rows, 99)
	if err != nil {
		t.Fatal(err)
	}
	remote, err := server.NewRemote(px.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := remote.Prepare(db, engine.Options{Seed: 1}); err != nil {
		t.Fatal(err)
	}
	h := ingest.NewHarness(db, src, remote)

	// Pump batches until the process dies under us; every batch is recorded
	// in the client-side ground-truth lineage before it is sent.
	pumpDone := make(chan struct{})
	go func() {
		defer close(pumpDone)
		for {
			if _, err := h.Ingest(batchRows); err != nil {
				return
			}
		}
	}()

	// Wait for a few acknowledged batches (an ack means the server already
	// fsynced the batch to the WAL), then kill -9 mid-stream.
	deadline := time.Now().Add(60 * time.Second)
	for remote.Watermark() < rows+3*batchRows {
		if time.Now().After(deadline) {
			t.Fatalf("no ingest progress; server output:\n%s", p1.output())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := p1.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	_ = p1.cmd.Wait()
	<-pumpDone
	acked := remote.Watermark()
	sent := h.Watermark()
	remote.Close()
	t.Logf("killed mid-ingest: acked watermark %d, sent %d (base %d)", acked, sent, rows)
	if acked < rows+3*batchRows {
		t.Fatalf("acked watermark regressed: %d", acked)
	}

	// Boot 2: recovery on the same data directory.
	p2 := startServe(t, bin, serveArgs...)
	hz := getHealthz(t, p2.addr)
	if !hz.Durable || !hz.Recovered {
		t.Fatalf("restart did not recover durable state: %+v\noutput:\n%s", hz, p2.output())
	}
	w := hz.Watermark
	// Every acknowledged batch survived (WAL-before-ack), nothing beyond
	// what the client sent appeared, and the watermark is batch-aligned.
	if w < acked {
		t.Fatalf("recovered watermark %d lost acknowledged data (acked %d)", w, acked)
	}
	if w > sent {
		t.Fatalf("recovered watermark %d exceeds everything sent (%d)", w, sent)
	}
	if (w-rows)%batchRows != 0 {
		t.Fatalf("recovered watermark %d is not batch-aligned (base %d, batch %d)", w, rows, batchRows)
	}
	if hz.RecoveredWatermark != w {
		t.Fatalf("healthz recovered_watermark %d != served watermark %d", hz.RecoveredWatermark, w)
	}

	// Bitwise check: the served state at watermark w must answer exactly
	// like the client's ground truth of data version w.
	vdb := h.ViewAt(w)
	if got := int64(vdb.Fact.NumRows()); got != w {
		t.Fatalf("client lineage has no view at watermark %d (nearest %d)", w, got)
	}
	remote2, err := server.NewRemote(p2.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer remote2.Close()
	if err := remote2.Prepare(vdb, engine.Options{Seed: 1}); err != nil {
		t.Fatalf("recovered server serves a different dataset: %v", err)
	}
	q := &query.Query{
		VizName: "crash_count", Table: vdb.Fact.Name,
		Bins: []query.Binning{{Field: "carrier", Kind: dataset.Nominal}},
		Aggs: []query.Aggregate{{Func: query.Count}},
	}
	gt, err := h.TruthAt(q, w)
	if err != nil {
		t.Fatal(err)
	}
	hdl, err := remote2.StartQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-hdl.Done():
	case <-time.After(60 * time.Second):
		t.Fatal("query against recovered server did not complete")
	}
	res := hdl.Snapshot()
	if res == nil || !res.Complete {
		t.Fatalf("recovered server returned incomplete result: %+v", res)
	}
	if res.Watermark != w {
		t.Fatalf("result watermark %d, want %d", res.Watermark, w)
	}
	if len(res.Bins) != len(gt.Bins) {
		t.Fatalf("recovered count has %d bins, ground truth %d", len(res.Bins), len(gt.Bins))
	}
	for k, wv := range gt.Bins {
		gv, ok := res.Bins[k]
		if !ok || gv.Values[0] != wv.Values[0] {
			t.Fatalf("bin %v: recovered %v, ground truth exactly %v", k, gv, wv.Values[0])
		}
	}

	// The offline inspector must verify the post-crash directory clean.
	if err := cmdInspect([]string{"-data-dir", dataDir}); err != nil {
		t.Fatalf("inspect after crash recovery: %v", err)
	}

	// Graceful exit this time: drain, final checkpoint, close.
	if err := p2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	werr := make(chan error, 1)
	go func() { werr <- p2.cmd.Wait() }()
	select {
	case err := <-werr:
		if err != nil {
			t.Fatalf("drain exit: %v\noutput:\n%s", err, p2.output())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("server did not drain; output:\n%s", p2.output())
	}
	if out := p2.output(); !bytes.Contains([]byte(out), []byte("drained, bye")) {
		t.Fatalf("no clean drain banner:\n%s", out)
	}

	// Boot 3: after a graceful drain the final checkpoint covers everything;
	// recovery replays an empty WAL tail.
	p3 := startServe(t, bin, serveArgs...)
	hz3 := getHealthz(t, p3.addr)
	if !hz3.Recovered || hz3.Watermark != w {
		t.Fatalf("post-drain restart: %+v, want recovered at watermark %d", hz3, w)
	}
	if hz3.WALReplayedBatches != 0 {
		t.Fatalf("post-drain restart replayed %d batches, want 0 (final checkpoint should cover the tail)", hz3.WALReplayedBatches)
	}
}
