package main

import (
	"net"
	"os/exec"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"idebench/internal/core"
	"idebench/internal/dataset"
	"idebench/internal/engine"
	"idebench/internal/ingest"
	"idebench/internal/query"
	"idebench/internal/server"
)

// freePort reserves a loopback address for a process that will bind it
// later (the warm standby binds only at takeover, but its address must be
// known up front so the primary can state it as a peer).
func freePort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// TestCoordFailoverE2E is the control-plane redundancy wall: a real
// 2-partition x 2-replica tier behind a journaling `idebench coord`
// primary, with a warm-standby coordinator tailing the same journal. The
// acts:
//
//  1. a replica seeded with rogue rows (ingested directly into the shard,
//     bypassing the coordinator) is quarantined by the health loop's
//     divergence audit, visible on /healthz, and excluded from serving —
//     the merged answer stays complete, fully covered and bitwise equal to
//     a cold single-node prepare;
//  2. the quarantined replica is readmitted through the rebalance path
//     (remove, then add a fresh process) and the tier answers bitwise
//     again with every member healthy and in sync;
//  3. live ingest advances the tier through acknowledged batches — each
//     journaled before its ack — then the primary coordinator is SIGKILLed;
//  4. the standby probe-confirms the death, takes over from the persisted
//     topology and version log, and serves at EXACTLY the acknowledged
//     watermark: the merged result is digest-identical to a cold
//     single-node prepare of the client's own lineage at that version;
//  5. a second divergent replica quarantined just before the kill is STILL
//     quarantined on the standby — the flag recovered from the journal,
//     not re-derived;
//  6. the client that dialed only the primary fails over through the
//     address rotation it learned from the hello Peers list, and ingest
//     resumed against the standby extends the recovered version log with
//     exact translation.
func TestCoordFailoverE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kill -9s a replicated serving tier with a standby coordinator")
	}
	const (
		rows      = 20000
		parts     = 2
		batchRows = 400
	)
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "idebench.test.bin")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	dataDir := filepath.Join(tmp, "coord-state")

	startReplica := func(part int, primary bool) *servedProc {
		role := "-replica-of"
		if primary {
			role = "-shard-index"
		}
		return startProc(t, bin, "shard",
			"-rows", strconv.Itoa(rows), "-seed", "1",
			role, strconv.Itoa(part), "-shard-count", strconv.Itoa(parts),
			"-addr", "127.0.0.1:0")
	}
	p0r0 := startReplica(0, true)
	p0r1 := startReplica(0, false)
	p1r0 := startReplica(1, true)
	p1r1 := startReplica(1, false)

	standbyAddr := freePort(t)
	primary := startProc(t, bin, "coord",
		"-rows", strconv.Itoa(rows), "-seed", "1",
		"-shards", p0r0.addr+"/"+p0r1.addr+","+p1r0.addr+"/"+p1r1.addr,
		"-data-dir", dataDir,
		"-peers", standbyAddr,
		"-health-interval", "100ms",
		"-addr", "127.0.0.1:0")
	standby, standbyServing := launchProc(t, bin, "coord",
		"-rows", strconv.Itoa(rows), "-seed", "1",
		"-standby-of", primary.addr,
		"-data-dir", dataDir,
		"-probe-interval", "100ms", "-takeover-failures", "3",
		"-health-interval", "100ms",
		"-addr", standbyAddr)

	db, err := core.BuildData(rows, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	countQ := &query.Query{
		VizName: "coord_count", Table: db.Fact.Name,
		Bins: []query.Binning{{Field: "carrier", Kind: dataset.Nominal}},
		Aggs: []query.Aggregate{{Func: query.Count}},
	}

	// The long-lived client dials ONLY the primary; the hello Peers list
	// must teach it the standby's address.
	rem, err := server.NewRemoteWithOptions(primary.addr, server.RemoteOptions{
		Reconnect:  true,
		MaxRetries: 12,
		BackoffMax: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rem.Close()
	if err := rem.Prepare(db, engine.Options{Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if addrs := rem.Addrs(); len(addrs) != 2 || addrs[1] != standbyAddr {
		t.Fatalf("client rotation after hello = %v, want [%s %s]", addrs, primary.addr, standbyAddr)
	}

	query1 := func(who string) *query.Result {
		t.Helper()
		h, err := rem.StartQuery(countQ)
		if err != nil {
			t.Fatalf("%s: start: %v", who, err)
		}
		select {
		case <-h.Done():
		case <-time.After(60 * time.Second):
			t.Fatalf("%s: query did not complete (connected to %s, snapshot %+v)",
				who, rem.ConnectedAddr(), h.Snapshot())
		}
		return h.Snapshot()
	}

	// The bitwise base reference: cold single-node prepare of the seed data.
	s := core.DefaultSettings()
	s.DataSize = rows
	s.Seed = 1
	single, err := core.Prepare("progressive", db, s)
	if err != nil {
		t.Fatal(err)
	}
	wantBase := runQueryToDone(t, single.Engine, countQ, "single-node base")

	// rogueFeed appends n rows directly into one shard replica, bypassing
	// the coordinator's routing entirely: content divergence as a process
	// sees it — the replica's watermark runs ahead of the partition target.
	rogueSeq := int64(1000)
	rogueFeed := func(shardAddr string, n int, seed int64) {
		t.Helper()
		src, err := ingest.NewSource(rows, seed)
		if err != nil {
			t.Fatal(err)
		}
		b, err := src.Next(n)
		if err != nil {
			t.Fatal(err)
		}
		rogueSeq++
		b.Seq = rogueSeq
		sr, err := server.NewRemote(shardAddr)
		if err != nil {
			t.Fatal(err)
		}
		defer sr.Close()
		before := sr.Watermark()
		if err := sr.Ingest(b); err != nil {
			t.Fatal(err)
		}
		waitFor2(t, 15*time.Second, "rogue rows applied", func() bool {
			return sr.Watermark() >= before+int64(n)
		})
	}

	// Act 1: divergence -> quarantine. p0r1 grows 400 rows no sibling has.
	rogueFeed(p0r1.addr, batchRows, 777)
	waitTopology(t, primary.addr, func(topo *engine.Topology) bool {
		for _, r := range topo.Partitions[0].Replicas {
			if r.Quarantined {
				return true
			}
		}
		return false
	}, "divergent replica quarantined")
	hz := getHealthz(t, primary.addr)
	quarantinedName := ""
	for _, r := range hz.Topology.Partitions[0].Replicas {
		if r.Quarantined {
			quarantinedName = r.Name
			if r.Synced {
				t.Fatalf("quarantined replica %q still marked synced", r.Name)
			}
		}
	}
	if quarantinedName == "" {
		t.Fatal("no quarantined replica in partition 0 topology")
	}
	got := query1("with quarantined replica")
	if got == nil || !got.Complete || (got.Coverage != nil && !got.Coverage.Full()) {
		t.Fatalf("quarantine degraded the answer: %+v", got)
	}
	if resultDigest(got) != resultDigest(wantBase) {
		t.Fatalf("quarantine left a wrong answer in the merge:\nmerged %v\nsingle %v", got.Bins, wantBase.Bins)
	}

	// Act 2: readmission through the rebalance path — remove the divergent
	// member, attach a fresh process, health loop promotes it.
	out, err := exec.Command(bin, "rebalance",
		"-addr", primary.addr, "-op", "remove",
		"-partition", "0", "-name", quarantinedName).CombinedOutput()
	if err != nil {
		t.Fatalf("rebalance remove %q: %v\n%s", quarantinedName, err, out)
	}
	kill9(t, p0r1, "divergent replica process")
	p0r2 := startReplica(0, false)
	out, err = exec.Command(bin, "rebalance",
		"-addr", primary.addr, "-op", "add",
		"-partition", "0", "-shard-addr", p0r2.addr).CombinedOutput()
	if err != nil {
		t.Fatalf("rebalance add: %v\n%s", err, out)
	}
	waitTopology(t, primary.addr, func(topo *engine.Topology) bool {
		set := topo.Partitions[0].Replicas
		if len(set) != 2 {
			return false
		}
		for _, r := range set {
			if !r.Healthy || !r.Synced || r.Quarantined {
				return false
			}
		}
		return true
	}, "readmitted replica healthy+synced")
	got = query1("after readmission")
	if got == nil || !got.Complete || resultDigest(got) != resultDigest(wantBase) {
		t.Fatalf("readmitted tier not bitwise clean: %+v", got)
	}

	// Act 3: live ingest through the coordinator — every ack means the
	// version step was journaled first.
	src, err := ingest.NewSource(rows, 99)
	if err != nil {
		t.Fatal(err)
	}
	h := ingest.NewHarness(db, src, rem)
	for i := 0; i < 5; i++ {
		if _, err := h.Ingest(batchRows); err != nil {
			t.Fatalf("ingest batch %d: %v", i, err)
		}
	}
	ackTarget := int64(rows + 5*batchRows)
	waitFor2(t, 60*time.Second, "ingest acked", func() bool {
		return rem.Watermark() >= ackTarget
	})

	// A second divergent replica, quarantined on the PRIMARY just before it
	// dies: the standby must recover the flag from the journal.
	rogueFeed(p1r1.addr, batchRows, 778)
	waitTopology(t, primary.addr, func(topo *engine.Topology) bool {
		for _, r := range topo.Partitions[1].Replicas {
			if r.Quarantined {
				return true
			}
		}
		return false
	}, "second divergent replica quarantined")
	// Let the quarantine's journal append land before the kill.
	time.Sleep(300 * time.Millisecond)

	// Act 4: kill -9 the primary between acked batches. No drain, no
	// goodbye; the journal on disk is the only surviving control plane.
	kill9(t, primary, "primary coordinator")

	var standbyBound string
	select {
	case standbyBound = <-standbyServing:
	case <-time.After(60 * time.Second):
		t.Fatalf("standby never took over; its output:\n%s", standby.output())
	}
	if standbyBound != standbyAddr {
		t.Fatalf("standby bound %s, want %s", standbyBound, standbyAddr)
	}

	// The standby serves the journaled topology: quarantine flag intact,
	// watermark exactly the acknowledged version.
	waitTopology(t, standbyAddr, func(topo *engine.Topology) bool {
		q := false
		for _, r := range topo.Partitions[1].Replicas {
			if r.Quarantined {
				q = true
			}
		}
		return q
	}, "quarantine flag recovered on the standby")
	shz := getHealthz(t, standbyAddr)
	if shz.Role != "coord" || shz.Watermark != ackTarget {
		t.Fatalf("standby healthz role=%q watermark=%d, want coord at %d\noutput:\n%s",
			shz.Role, shz.Watermark, ackTarget, standby.output())
	}

	// Exact-version bitwise gate: the merged answer at the recovered
	// watermark is digest-identical to a cold single-node prepare of the
	// client's own lineage at that version. The client reaches the standby
	// purely through the rotation it learned from the primary's hello.
	vdb := h.ViewAt(ackTarget)
	if got := int64(vdb.Fact.NumRows()); got != ackTarget {
		t.Fatalf("client lineage has no view at watermark %d (nearest %d)", ackTarget, got)
	}
	singleAfter, err := core.Prepare("progressive", vdb, s)
	if err != nil {
		t.Fatal(err)
	}
	wantAfter := runQueryToDone(t, singleAfter.Engine, countQ, "single-node recovered version")
	got = query1("served by the standby")
	if got == nil || !got.Complete || (got.Coverage != nil && !got.Coverage.Full()) {
		t.Fatalf("standby answer not complete/full: %+v\nstandby output:\n%s", got, standby.output())
	}
	if got.Watermark != ackTarget {
		t.Fatalf("standby result watermark %d, want exactly %d", got.Watermark, ackTarget)
	}
	if resultDigest(got) != resultDigest(wantAfter) {
		t.Fatalf("standby merge differs from single-node at version %d:\nmerged %v\nsingle %v",
			ackTarget, got.Bins, wantAfter.Bins)
	}
	if rem.Stats().Reconnects.Load() == 0 {
		t.Fatal("client never reconnected — it should have redialed through the rotation")
	}

	// Act 6: ingest resumed against the standby extends the recovered
	// version log with exact translation.
	for i := 0; i < 2; i++ {
		if _, err := h.Ingest(batchRows); err != nil {
			t.Fatalf("post-takeover ingest batch %d: %v", i, err)
		}
	}
	finalTarget := ackTarget + 2*batchRows
	waitFor2(t, 60*time.Second, "post-takeover ingest acked", func() bool {
		return rem.Watermark() >= finalTarget
	})
	vdb2 := h.ViewAt(finalTarget)
	singleFinal, err := core.Prepare("progressive", vdb2, s)
	if err != nil {
		t.Fatal(err)
	}
	wantFinal := runQueryToDone(t, singleFinal.Engine, countQ, "single-node final version")
	got = query1("final version on the standby")
	if got == nil || !got.Complete || got.Watermark != finalTarget {
		t.Fatalf("final answer complete=%v watermark=%d, want complete at %d", got != nil && got.Complete, got.Watermark, finalTarget)
	}
	if resultDigest(got) != resultDigest(wantFinal) {
		t.Fatalf("post-takeover merge differs from single-node at version %d:\nmerged %v\nsingle %v",
			finalTarget, got.Bins, wantFinal.Bins)
	}

	// Clean teardown of the survivors.
	sigtermDrain(t, standby, "standby coordinator")
}

// waitFor2 polls cond until it holds or the deadline passes.
func waitFor2(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
