package main

import (
	"bytes"
	"fmt"
	"os/exec"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"idebench/internal/core"
	"idebench/internal/dataset"
	"idebench/internal/driver"
	"idebench/internal/engine"
	"idebench/internal/faultnet"
	"idebench/internal/groundtruth"
	"idebench/internal/query"
	"idebench/internal/server"
	"idebench/internal/workflow"
)

// sigtermDrain sends SIGTERM and requires a clean exit with the drain
// banner within the deadline.
func sigtermDrain(t *testing.T, p *servedProc, who string) {
	t.Helper()
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("%s: signal: %v", who, err)
	}
	werr := make(chan error, 1)
	go func() { werr <- p.cmd.Wait() }()
	select {
	case err := <-werr:
		if err != nil {
			t.Fatalf("%s: drain exit: %v\noutput:\n%s", who, err, p.output())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("%s did not drain; output:\n%s", who, p.output())
	}
	if out := p.output(); !bytes.Contains([]byte(out), []byte("drained, bye")) {
		t.Fatalf("%s: no clean drain banner:\n%s", who, out)
	}
}

// TestShardScatterGatherE2E is the serving-tier wall: three real `idebench
// shard` processes plus one `idebench coord` process, an 8-user ingest-aware
// replay through the fault-injecting proxy against the coordinator, then the
// bitwise gate — the quiesced merged COUNT must equal, bin for bin, a cold
// single-node prepare over the final data version — and a clean SIGTERM
// drain of the whole tier.
func TestShardScatterGatherE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs a 4-process serving tier")
	}
	const (
		rows       = 20000
		shardCount = 3
		users      = 8
	)
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "idebench.test.bin")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	// The tier: every process derives the same partitioning from
	// -rows/-seed/-shard-count; nothing is shipped at prepare time.
	shardAddrs := make([]string, shardCount)
	shardProcs := make([]*servedProc, shardCount)
	for i := 0; i < shardCount; i++ {
		shardProcs[i] = startProc(t, bin, "shard",
			"-rows", strconv.Itoa(rows), "-seed", "1",
			"-shard-index", strconv.Itoa(i), "-shard-count", strconv.Itoa(shardCount),
			"-addr", "127.0.0.1:0")
		shardAddrs[i] = shardProcs[i].addr
	}
	coord := startProc(t, bin, "coord",
		"-rows", strconv.Itoa(rows), "-seed", "1",
		"-shards", strings.Join(shardAddrs, ","),
		"-addr", "127.0.0.1:0")

	// Topology assertions: roles, shard count, partition coverage, and the
	// pre-ingest watermark alignment (all shards at the base version).
	var shardRows int64
	for i, sp := range shardProcs {
		hz := getHealthz(t, sp.addr)
		if hz.Role != "shard" {
			t.Fatalf("shard %d healthz role %q, want shard", i, hz.Role)
		}
		shardRows += hz.Rows
	}
	if shardRows != rows {
		t.Fatalf("shard partitions cover %d rows, want %d", shardRows, rows)
	}
	chz := getHealthz(t, coord.addr)
	if chz.Role != "coord" || chz.Shards != shardCount {
		t.Fatalf("coordinator healthz role=%q shards=%d, want coord/%d", chz.Role, chz.Shards, shardCount)
	}
	if len(chz.ShardWatermarks) != shardCount || chz.MinShardWatermark != rows || chz.Watermark != rows {
		t.Fatalf("coordinator pre-ingest watermarks %+v, want all at %d", chz, rows)
	}

	// 8-user ingest-aware replay through the chaos proxy, exactly the
	// `run -addr -users 8 -ingest-every 3` path.
	px, err := faultnet.New(coord.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer px.Close()
	db, err := core.BuildData(rows, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	rem, err := server.NewRemote(px.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer rem.Close()
	if err := rem.Prepare(db, engine.Options{Seed: 1}); err != nil {
		t.Fatal(err)
	}
	all, err := core.GenerateWorkflows(db, users, 8, 101)
	if err != nil {
		t.Fatal(err)
	}
	flows := workflow.InterleaveIngestAll(core.MixedOnly(all), 3, 500)
	if len(flows) < users {
		t.Fatalf("only %d workflows for %d users", len(flows), users)
	}
	h, err := newIngestHarness(db, 1, rem)
	if err != nil {
		t.Fatal(err)
	}
	m := driver.NewMulti(rem, groundtruth.New(db), driver.MultiConfig{
		Config: driver.Config{
			TimeRequirement: 250 * time.Millisecond,
			ThinkTime:       time.Millisecond,
			DataSizeLabel:   core.SizeLabel(rows),
			IngestSink:      h,
		},
		Users: users, ThinkJitter: driver.DefaultThinkJitter, Seed: 1,
	})
	res, err := m.Run(flows[:users])
	if err != nil {
		t.Fatalf("multi-user replay: %v\ncoord output:\n%s", err, coord.output())
	}
	violations := 0
	for _, r := range res.Records {
		if r.Metrics.TRViolated {
			violations++
		}
	}
	if violations != 0 {
		t.Fatalf("%d TR violations across %d records (generous 250ms requirement; want 0)", violations, len(res.Records))
	}
	if h.IngestedRows() == 0 {
		t.Fatalf("replay fed no ingest batches")
	}

	// Quiesce: the coordinator's ack broadcast carries the global min
	// watermark, so catching up means every shard confirmed every batch.
	fed := h.Watermark()
	deadline := time.Now().Add(30 * time.Second)
	for rem.Watermark() < fed {
		if err := rem.Err(); err != nil {
			t.Fatalf("coordinator rejected ingestion: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("coordinator watermark %d never reached fed %d\ncoord output:\n%s",
				rem.Watermark(), fed, coord.output())
		}
		time.Sleep(5 * time.Millisecond)
	}
	chz = getHealthz(t, coord.addr)
	if chz.Watermark != fed || chz.MinShardWatermark != fed {
		t.Fatalf("quiesced coordinator healthz watermark=%d min_shard=%d, want %d", chz.Watermark, chz.MinShardWatermark, fed)
	}
	for i, w := range chz.ShardWatermarks {
		if w != fed {
			t.Fatalf("quiesced shard %d watermark %d, want %d", i, w, fed)
		}
	}

	// Bitwise gate: the merged COUNT over the quiesced tier vs a cold
	// single-node prepare of the exact final data version.
	finalDB := h.FinalView()
	q := &query.Query{
		VizName: "shard_count", Table: finalDB.Fact.Name,
		Bins: []query.Binning{{Field: "carrier", Kind: dataset.Nominal}},
		Aggs: []query.Aggregate{{Func: query.Count}},
	}
	s := core.DefaultSettings()
	s.DataSize = rows
	s.Seed = 1
	single, err := core.Prepare("progressive", finalDB, s)
	if err != nil {
		t.Fatal(err)
	}
	want := runQueryToDone(t, single.Engine, q, "single-node")
	got := runQueryToDone(t, rem, q, "coordinator")
	if !got.Complete {
		t.Fatalf("merged quiesced result not complete: %+v", got)
	}
	if got.Watermark != fed {
		t.Fatalf("merged result watermark %d, want %d", got.Watermark, fed)
	}
	if !reflect.DeepEqual(got.Bins, want.Bins) {
		t.Fatalf("merged COUNT differs from single-node cold prepare:\nmerged %v\nsingle %v", got.Bins, want.Bins)
	}

	// Clean teardown: the coordinator first (it holds client sessions into
	// the shards), then every shard.
	sigtermDrain(t, coord, "coordinator")
	for i, sp := range shardProcs {
		sigtermDrain(t, sp, fmt.Sprintf("shard %d", i))
	}
}

// runQueryToDone runs q on eng and returns the final snapshot.
func runQueryToDone(t *testing.T, eng engine.Engine, q *query.Query, who string) *query.Result {
	t.Helper()
	hdl, err := eng.StartQuery(q)
	if err != nil {
		t.Fatalf("%s: start: %v", who, err)
	}
	select {
	case <-hdl.Done():
	case <-time.After(60 * time.Second):
		t.Fatalf("%s: query did not complete", who)
	}
	res := hdl.Snapshot()
	if res == nil {
		t.Fatalf("%s: no result after done", who)
	}
	return res
}
