package main

import (
	"fmt"
	"os/exec"
	"path/filepath"
	"reflect"
	"strconv"
	"testing"
	"time"

	"idebench/internal/core"
	"idebench/internal/dataset"
	"idebench/internal/driver"
	"idebench/internal/engine"
	"idebench/internal/groundtruth"
	"idebench/internal/query"
	"idebench/internal/server"
)

// kill9 SIGKILLs a tier process — no drain, no close handshake — and reaps
// it, simulating a replica host dying.
func kill9(t *testing.T, p *servedProc, who string) {
	t.Helper()
	if err := p.cmd.Process.Kill(); err != nil {
		t.Fatalf("%s: kill: %v", who, err)
	}
	_ = p.cmd.Wait()
}

// TestElasticFailoverE2E is the elasticity wall: a real 2-partition x
// 2-replica tier of `idebench shard` processes behind one `idebench coord`
// process walks the failure ladder the shard package promises to survive:
//
//  1. the primary replica of partition 0 is SIGKILLed mid-replay — every
//     query must still succeed (mid-stream failover to the sibling) and a
//     follow-up merged COUNT must be complete, fully covered and bitwise
//     equal to a cold single-node prepare;
//  2. the sibling dies too, leaving partition 0 unserved — answers must
//     degrade honestly (coverage block, Complete false, population
//     fraction in (0,1)), never fail and never pose as complete;
//  3. partition 1's replicas die as well, dropping live coverage below the
//     coordinator's -min-coverage floor — queries must now be refused;
//  4. fresh replica processes join via the /rebalance admin endpoint — the
//     tier must recover to full coverage with the merged COUNT again
//     bitwise-identical to the cold single-node prepare.
func TestElasticFailoverE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs a 5-process replicated serving tier")
	}
	const (
		rows  = 20000
		parts = 2
		users = 4
	)
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "idebench.test.bin")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	startReplica := func(part int, primary bool) *servedProc {
		role := "-replica-of"
		if primary {
			role = "-shard-index"
		}
		return startProc(t, bin, "shard",
			"-rows", strconv.Itoa(rows), "-seed", "1",
			role, strconv.Itoa(part), "-shard-count", strconv.Itoa(parts),
			"-addr", "127.0.0.1:0")
	}
	p0r0 := startReplica(0, true)
	p0r1 := startReplica(0, false)
	p1r0 := startReplica(1, true)
	p1r1 := startReplica(1, false)
	coord := startProc(t, bin, "coord",
		"-rows", strconv.Itoa(rows), "-seed", "1",
		"-shards", p0r0.addr+"/"+p0r1.addr+","+p1r0.addr+"/"+p1r1.addr,
		"-min-coverage", "0.25",
		"-health-interval", "100ms",
		"-anti-entropy", "300ms",
		"-addr", "127.0.0.1:0")

	// Versioned health document with the replica topology block.
	chz := getHealthz(t, coord.addr)
	if chz.Role != "coord" || chz.Shards != parts {
		t.Fatalf("coordinator healthz role=%q shards=%d, want coord/%d", chz.Role, chz.Shards, parts)
	}
	if chz.SchemaVersion != server.HealthSchemaVersion {
		t.Fatalf("healthz schema_version = %d, want %d", chz.SchemaVersion, server.HealthSchemaVersion)
	}
	if chz.Topology == nil || len(chz.Topology.Partitions) != parts {
		t.Fatalf("healthz topology missing or wrong shape: %+v", chz.Topology)
	}
	for i, pt := range chz.Topology.Partitions {
		if len(pt.Replicas) != 2 {
			t.Fatalf("partition %d has %d replicas, want 2", i, len(pt.Replicas))
		}
		for _, r := range pt.Replicas {
			if !r.Healthy || !r.Synced {
				t.Fatalf("partition %d replica %q not healthy+synced at start: %+v", i, r.Name, r)
			}
		}
	}
	if chz.Topology.MinCoverage != 0.25 {
		t.Fatalf("topology min_coverage = %v, want 0.25", chz.Topology.MinCoverage)
	}

	db, err := core.BuildData(rows, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	countQ := &query.Query{
		VizName: "elastic_count", Table: db.Fact.Name,
		Bins: []query.Binning{{Field: "carrier", Kind: dataset.Nominal}},
		Aggs: []query.Aggregate{{Func: query.Count}},
	}
	// The bitwise reference: a cold single-node prepare over the same data
	// version the tier serves (no ingest in this wall — replica restarts are
	// deterministic re-derivations, not durable recoveries).
	s := core.DefaultSettings()
	s.DataSize = rows
	s.Seed = 1
	single, err := core.Prepare("progressive", db, s)
	if err != nil {
		t.Fatal(err)
	}
	want := runQueryToDone(t, single.Engine, countQ, "single-node")

	// probe opens a fresh client connection (like `idebench probe`) and
	// returns the final merged snapshot — nil when the tier refuses.
	probe := func(who string) *query.Result {
		t.Helper()
		rem, err := server.NewRemote(coord.addr)
		if err != nil {
			t.Fatalf("%s: dial: %v", who, err)
		}
		defer rem.Close()
		h, err := rem.StartQuery(countQ)
		if err != nil {
			t.Fatalf("%s: start: %v", who, err)
		}
		select {
		case <-h.Done():
		case <-time.After(60 * time.Second):
			t.Fatalf("%s: probe did not complete", who)
		}
		return h.Snapshot()
	}

	// Phase 1: SIGKILL the primary replica of partition 0 mid-replay. The
	// replay must finish with zero failed queries — in-flight fragments fail
	// over to the sibling replica.
	rem, err := server.NewRemote(coord.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rem.Close()
	if err := rem.Prepare(db, engine.Options{Seed: 1}); err != nil {
		t.Fatal(err)
	}
	all, err := core.GenerateWorkflows(db, users, 8, 101)
	if err != nil {
		t.Fatal(err)
	}
	flows := core.MixedOnly(all)
	if len(flows) < users {
		t.Fatalf("only %d workflows for %d users", len(flows), users)
	}
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		time.Sleep(1500 * time.Millisecond)
		kill9(t, p0r0, "partition 0 primary")
	}()
	m := driver.NewMulti(rem, groundtruth.New(db), driver.MultiConfig{
		Config: driver.Config{
			TimeRequirement: 250 * time.Millisecond,
			ThinkTime:       time.Millisecond,
			DataSizeLabel:   core.SizeLabel(rows),
		},
		Users: users, ThinkJitter: driver.DefaultThinkJitter, Seed: 1,
	})
	res, err := m.Run(flows[:users])
	if err != nil {
		t.Fatalf("replay across replica death failed: %v\ncoord output:\n%s", err, coord.output())
	}
	<-killed
	if len(res.Records) == 0 {
		t.Fatal("replay recorded no queries")
	}

	// Full coverage survives one dead replica, bitwise.
	got := probe("one replica dead")
	if got == nil {
		t.Fatalf("probe refused with a healthy sibling up\ncoord output:\n%s", coord.output())
	}
	if !got.Complete || (got.Coverage != nil && !got.Coverage.Full()) {
		t.Fatalf("one replica dead: result complete=%v coverage=%+v, want complete full", got.Complete, got.Coverage)
	}
	if got.Watermark != rows {
		t.Fatalf("one replica dead: watermark %d, want %d", got.Watermark, rows)
	}
	if !reflect.DeepEqual(got.Bins, want.Bins) {
		t.Fatalf("one replica dead: merged COUNT differs from single-node:\nmerged %v\nsingle %v", got.Bins, want.Bins)
	}
	// The health loop must have noticed the corpse.
	waitTopology(t, coord.addr, func(topo *engine.Topology) bool {
		healthy := 0
		for _, r := range topo.Partitions[0].Replicas {
			if r.Healthy {
				healthy++
			}
		}
		return healthy == 1
	}, "partition 0 down to one healthy replica")

	// The anti-entropy loop ran against the start-of-test replica pairs and
	// found them bitwise identical.
	chz = getHealthz(t, coord.addr)
	if chz.Topology.AntiEntropyChecks == 0 {
		t.Fatalf("anti-entropy loop never completed a check: %+v", chz.Topology)
	}
	if chz.Topology.AntiEntropyMismatches != 0 {
		t.Fatalf("anti-entropy reported %d bitwise mismatches between replicas", chz.Topology.AntiEntropyMismatches)
	}

	// Phase 2: kill the sibling too. Partition 0 is now unserved; answers
	// degrade to partition 1's population, annotated, never failed.
	kill9(t, p0r1, "partition 0 sibling")
	waitTopology(t, coord.addr, func(topo *engine.Topology) bool {
		for _, r := range topo.Partitions[0].Replicas {
			if r.Healthy {
				return false
			}
		}
		return true
	}, "partition 0 fully dead")
	got = probe("partition dead")
	if got == nil {
		t.Fatalf("degraded answer was refused above the coverage floor\ncoord output:\n%s", coord.output())
	}
	cov := got.Coverage
	if cov == nil || !cov.Degraded || cov.PartitionsAnswered != 1 || cov.PartitionsTotal != parts {
		t.Fatalf("partition dead: coverage %+v, want 1/%d degraded", cov, parts)
	}
	if cov.PopulationFraction <= 0 || cov.PopulationFraction >= 1 || cov.PopulationFraction < 0.25 {
		t.Fatalf("partition dead: population fraction %v outside [0.25, 1)", cov.PopulationFraction)
	}
	if got.Complete {
		t.Fatal("degraded merge claims Complete — a partial population must never pose as a full answer")
	}

	// Phase 3: kill partition 1's replicas as well. Live coverage drops to
	// zero, below the 0.25 floor: the tier must refuse, not fabricate.
	kill9(t, p1r0, "partition 1 primary")
	kill9(t, p1r1, "partition 1 sibling")
	waitTopology(t, coord.addr, func(topo *engine.Topology) bool {
		for _, pt := range topo.Partitions {
			for _, r := range pt.Replicas {
				if r.Healthy {
					return false
				}
			}
		}
		return true
	}, "whole tier dead")
	if res := probe("below coverage floor"); res != nil {
		t.Fatalf("tier with zero live partitions served a result: %+v (coverage %+v)", res, res.Coverage)
	}

	// Phase 4: recovery. Fresh replica processes (same deterministic
	// partitions, new ports) join through the /rebalance admin endpoint via
	// the rebalance subcommand, and the health loop promotes them.
	n0 := startReplica(0, true)
	n1 := startReplica(1, true)
	for part, addr := range map[int]string{0: n0.addr, 1: n1.addr} {
		out, err := exec.Command(bin, "rebalance",
			"-addr", coord.addr, "-op", "add",
			"-partition", strconv.Itoa(part), "-shard-addr", addr).CombinedOutput()
		if err != nil {
			t.Fatalf("rebalance add partition %d: %v\n%s", part, err, out)
		}
	}
	waitTopology(t, coord.addr, func(topo *engine.Topology) bool {
		for _, pt := range topo.Partitions {
			promoted := false
			for _, r := range pt.Replicas {
				if r.Healthy && r.Synced {
					promoted = true
				}
			}
			if !promoted {
				return false
			}
		}
		return true
	}, "new replicas promoted")
	got = probe("recovered")
	if got == nil {
		t.Fatalf("recovered tier refused a query\ncoord output:\n%s", coord.output())
	}
	if !got.Complete || (got.Coverage != nil && !got.Coverage.Full()) {
		t.Fatalf("recovered: result complete=%v coverage=%+v, want complete full", got.Complete, got.Coverage)
	}
	if !reflect.DeepEqual(got.Bins, want.Bins) {
		t.Fatalf("recovered: merged COUNT differs from single-node:\nmerged %v\nsingle %v", got.Bins, want.Bins)
	}

	// Shrink: detach one corpse by its topology name and observe the set
	// shrink — the remove path of the admin endpoint.
	chz = getHealthz(t, coord.addr)
	deadName := ""
	for _, r := range chz.Topology.Partitions[0].Replicas {
		if !r.Healthy {
			deadName = r.Name
			break
		}
	}
	if deadName == "" {
		t.Fatal("no dead replica left in partition 0 topology")
	}
	before := len(chz.Topology.Partitions[0].Replicas)
	out, err := exec.Command(bin, "rebalance",
		"-addr", coord.addr, "-op", "remove",
		"-partition", "0", "-name", deadName).CombinedOutput()
	if err != nil {
		t.Fatalf("rebalance remove %q: %v\n%s", deadName, err, out)
	}
	chz = getHealthz(t, coord.addr)
	if len(chz.Topology.Partitions[0].Replicas) != before-1 {
		t.Fatalf("partition 0 still has %d replicas after removing %q (had %d)",
			len(chz.Topology.Partitions[0].Replicas), deadName, before)
	}

	// Clean teardown of what is still alive.
	sigtermDrain(t, coord, "coordinator")
	for i, sp := range []*servedProc{n0, n1} {
		sigtermDrain(t, sp, fmt.Sprintf("replacement replica %d", i))
	}
}

// waitTopology polls the coordinator's /healthz topology until cond holds.
func waitTopology(t *testing.T, addr string, cond func(*engine.Topology) bool, what string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		hz := getHealthz(t, addr)
		if hz.Topology != nil && cond(hz.Topology) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("topology never reached %q: %+v", what, hz.Topology)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
