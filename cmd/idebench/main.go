// Command idebench is the benchmark driver CLI (paper Sec. 4.4): it
// generates datasets and workloads, runs the benchmark against the built-in
// engines, and regenerates every table and figure of the paper's evaluation
// section.
//
// Usage:
//
//	idebench datagen     -rows 500000 -out flights.csv
//	idebench workloadgen -rows 100000 -count 10 -interactions 18 -out flows.json
//	idebench run         -engine progressive -rows 500000 -tr 12ms -think 4ms
//	idebench run         -engine progressive -users 8
//	idebench run         -engine progressive -users 4 -ingest-every 3 -ingest-rows 2000
//	idebench serve       -engine progressive -rows 500000 -addr :8373
//	idebench serve       -engine progressive -rows 500000 -data-dir ./state
//	idebench inspect     -data-dir ./state
//	idebench shard       -rows 500000 -shard-index 0 -shard-count 3 -addr :9001
//	idebench shard       -rows 500000 -replica-of 0 -shard-count 3 -addr :9101
//	idebench coord       -rows 500000 -shards localhost:9001,localhost:9002,localhost:9003 -addr :8373
//	idebench coord       -rows 500000 -shards localhost:9001/localhost:9101,localhost:9002/localhost:9102 -min-coverage 0.5 -addr :8373
//	idebench coord       -rows 500000 -shards ... -data-dir ./coord-state -peers localhost:8374 -addr :8373
//	idebench coord       -rows 500000 -standby-of localhost:8373 -data-dir ./coord-state -addr :8374
//	idebench rebalance   -addr localhost:8373 -op add -partition 0 -shard-addr localhost:9102
//	idebench probe       -addr localhost:8373 -rows 500000 -expect full
//	idebench run         -addr localhost:8373 -rows 500000 -users 8
//	idebench run         -addr localhost:8373 -rows 500000 -users 4 -ingest-every 3
//	idebench load        -addr localhost:8373 -rows 500000 -schedule ramp -rate 50 -rate2 2000
//	idebench exp         -name fig5 [-rows 500000] [-quick]
//	idebench exp         -name users
//	idebench exp         -name ingest
//	idebench exp         -name overload
//
// `run -users N` replays the workload as N concurrent simulated users, each
// on its own engine session, and appends the user-scalability table
// (throughput, p50/p95/p99 latency) to the summary. `exp -name users` sweeps
// 1/2/4/8 users on the shared-scan progressive engine vs the independent
// exactdb engine.
//
// `-ingest-every N` turns a replay ingest-aware: an append-only batch of
// `-ingest-rows` rows (drawn from the deterministic copula source) lands
// after every N workflow interactions; engines absorb the batches live,
// results are evaluated against the ground truth of the data version their
// watermark names, and the summary gains the staleness table. With -addr
// the batches additionally ship to the server as ingest frames, which the
// server applies and acknowledges to every live session. `exp -name ingest`
// sweeps 1/2/4/8 users with live appends and checks the quiesced results
// bitwise against a cold scan of the final table.
//
// `load` is the open-loop counterpart to `run -addr`: instead of replaying
// workflows with think-time coupling, it offers queries at an absolute-time
// arrival schedule (poisson, bursty, or ramp) that never slows down when the
// server does — the honest way to measure overload. It prints the admission
// and shedding counters with the admitted latency tails, and its -gate-*
// flags turn the run into a CI assertion (bounded done-p99, zero hard
// errors, knee crossed). `exp -name overload` runs the in-process sweep
// across a whole rate ladder. The serve side exposes the matching knobs
// (-max-inflight, -max-inflight-per-conn, -retry-hint, -late-factor,
// -ping-interval, -idle-timeout).
//
// `serve` exposes a prepared engine over the idebench wire protocol
// (internal/server): HTTP on -addr with /ws (WebSocket, one engine session
// per connection, streamed progressive snapshots) and /healthz. `run -addr`
// replays the same workloads through the network client instead of
// in-process — the driver is identical, so the two runs compare
// apples-to-apples. The run and serve sides must agree on -rows and -seed
// so the locally computed ground truth matches the served data.
//
// `shard` and `coord` assemble the scatter-gather serving tier
// (internal/shard): N `shard` processes each serve one hash partition of the
// fact table (the same deterministic partitioning every process computes
// from -rows/-seed/-shard-count), and one `coord` process fronts them,
// fanning every query out, merging the shards' raw accumulator fragments in
// fixed shard-ID order (bitwise-deterministic float folds) and applying the
// min-watermark alignment rule to every merged snapshot. Ingest frames sent
// to the coordinator are hash-routed to the owning shards. Clients speak to
// the coordinator exactly as to a single `serve` — same protocol, same
// `run -addr` replay.
//
// The tier is elastic: each partition in `-shards` may list several
// '/'-separated replica addresses (`shard -replica-of N` starts one), the
// coordinator health-checks them and fails queries over mid-stream when a
// replica dies, and when a whole partition is unreachable it serves the
// survivors' merged answer annotated with a coverage block (partitions
// answered, population fraction) instead of an outage — down to the
// `-min-coverage` floor, below which it refuses. `-anti-entropy` runs a
// background bitwise divergence check between replicas. `rebalance` posts
// replica add/remove to a live coordinator; `probe` asserts the tier's
// coverage outcome from the outside (CI walls are built from it).
//
// The coordinator itself is redundant: `coord -data-dir` journals the
// authoritative control-plane state — partition map, replica membership
// with sync and quarantine flags, and the global→shard version-log
// translation, each step fsynced BEFORE the ingest ack — and
// `coord -standby-of ADDR -data-dir SAME` runs a warm standby that tails
// that journal, probes the primary, and on probe-confirmed death takes
// over serving at exactly the acknowledged watermark (it binds its -addr
// only at takeover). `-peers` lists the standby addresses the primary
// states in its hello frames, so clients that dialed only the primary
// learn the failover rotation before they need it; the client walks the
// rotation on redial (comma-separated `-addr` lists on `run`, `probe` and
// `load` seed it explicitly). A replica whose content diverges bitwise
// from its siblings is quarantined — excluded from fan-out and ingest,
// visible on /healthz, durable across coordinator restart — until
// readmitted through the rebalance path.
//
// `serve -data-dir` makes the served state durable (internal/durable): the
// prepared base is checkpointed once at boot, every ingest batch is written
// and fsynced to a write-ahead log before the engine applies it, and a
// background checkpointer bounds the log's length. After a crash — even a
// kill -9 mid-ingest — restarting with the same -data-dir recovers the
// newest verifying checkpoint, replays the WAL tail, and resumes serving at
// the exact batch-aligned watermark that was last acknowledged, warm
// (skipping datagen and the sampling reorder). `inspect` verifies a data
// directory offline: per-file checksums, the manifest's content digest, and
// the WAL's record chain.
//
// Run `idebench <command> -h` for each command's flags.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"idebench/internal/core"
	"idebench/internal/datagen"
	"idebench/internal/dataset"
	"idebench/internal/driver"
	"idebench/internal/durable"
	"idebench/internal/engine"
	"idebench/internal/experiments"
	"idebench/internal/groundtruth"
	"idebench/internal/ingest"
	"idebench/internal/loadgen"
	"idebench/internal/query"
	"idebench/internal/report"
	"idebench/internal/server"
	"idebench/internal/shard"
	"idebench/internal/workflow"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "datagen":
		err = cmdDatagen(os.Args[2:])
	case "workloadgen":
		err = cmdWorkloadgen(os.Args[2:])
	case "run":
		err = cmdRun(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "shard":
		err = cmdShard(os.Args[2:])
	case "coord":
		err = cmdCoord(os.Args[2:])
	case "rebalance":
		err = cmdRebalance(os.Args[2:])
	case "probe":
		err = cmdProbe(os.Args[2:])
	case "load":
		err = cmdLoad(os.Args[2:])
	case "inspect":
		err = cmdInspect(os.Args[2:])
	case "exp":
		err = cmdExp(os.Args[2:])
	case "view":
		err = cmdView(os.Args[2:])
	case "analyze":
		err = cmdAnalyze(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "idebench: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "idebench:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `idebench — a benchmark for interactive data exploration (Go reproduction)

Commands:
  datagen      generate the scaled flights dataset as CSV
  workloadgen  generate benchmark workflows as JSON
  run          run the benchmark for one engine and setting (in-process, or -addr for a remote server)
  serve        serve an engine over the HTTP/WebSocket wire protocol
  shard        serve one hash partition of the dataset (one member of a scatter-gather tier)
  coord        serve a scatter-gather coordinator over shard replica sets (failover, degraded coverage)
  rebalance    post a replica add/remove to a running coordinator's admin endpoint
  probe        run one COUNT against a server and assert its coverage outcome (CI primitive)
  load         drive a server with open-loop load (poisson/bursty/ramp arrivals, CI gates)
  inspect      verify and summarize a durable data directory (checkpoints + WAL)
  exp          regenerate a paper experiment (fig5, fig6a..fig6f, exp4, exp5, prep, table1, users, ingest, overload, shards, all)
  view         inspect generated workflows (text or Graphviz DOT)
  analyze      re-aggregate a saved detailed report (summary + factor analysis)
`)
}

func cmdDatagen(args []string) error {
	fs := flag.NewFlagSet("datagen", flag.ExitOnError)
	rows := fs.Int("rows", core.SizeM, "number of tuples to generate")
	seedRows := fs.Int("seed-rows", 20000, "seed table size the copula scaler is fitted on")
	seed := fs.Int64("seed", 1, "random seed")
	out := fs.String("out", "flights.csv", "output CSV path")
	showStats := fs.Bool("stats", false, "print per-column statistics of the generated data")
	if err := fs.Parse(args); err != nil {
		return err
	}
	start := time.Now()
	seedTbl, err := datagen.GenerateSeed(*seedRows, *seed)
	if err != nil {
		return err
	}
	tbl, err := datagen.ScaleTable(seedTbl, *rows, *seed+1)
	if err != nil {
		return err
	}
	if err := dataset.WriteCSVFile(*out, tbl); err != nil {
		return err
	}
	fmt.Printf("wrote %d rows to %s in %v\n", tbl.NumRows(), *out, time.Since(start).Round(time.Millisecond))
	if *showStats {
		if err := dataset.RenderStats(os.Stdout, dataset.Stats(tbl)); err != nil {
			return err
		}
	}
	return nil
}

func cmdWorkloadgen(args []string) error {
	fs := flag.NewFlagSet("workloadgen", flag.ExitOnError)
	rows := fs.Int("rows", 50000, "rows of generated data to derive value domains from")
	data := fs.String("data", "", "optional CSV dataset to derive domains from (flights schema)")
	count := fs.Int("count", 10, "workflows per type")
	interactions := fs.Int("interactions", 18, "interactions per workflow")
	seed := fs.Int64("seed", 1, "random seed")
	out := fs.String("out", "workflows.json", "output JSON path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var tbl *dataset.Table
	var err error
	if *data != "" {
		tbl, err = dataset.ReadCSVFile(*data, "flights", datagen.FlightsSchema())
	} else {
		db, berr := core.BuildData(*rows, false, *seed)
		if berr != nil {
			return berr
		}
		tbl = db.Fact
	}
	if err != nil {
		return err
	}
	gen, err := workflow.NewGenerator(tbl)
	if err != nil {
		return err
	}
	flows, err := gen.GenerateSet(*count, *interactions, *seed+100)
	if err != nil {
		return err
	}
	if err := workflow.SaveFile(*out, flows); err != nil {
		return err
	}
	fmt.Printf("wrote %d workflows to %s\n", len(flows), *out)
	return nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	engineName := fs.String("engine", "progressive", "engine: "+strings.Join(core.EngineNames, ", ")+", progressive-spec, systemy")
	rows := fs.Int("rows", core.SizeM, "dataset size (tuples)")
	tr := fs.Duration("tr", 12*time.Millisecond, "time requirement")
	think := fs.Duration("think", core.DefaultThinkTime, "think time between interactions")
	useJoins := fs.Bool("joins", false, "use the normalized star schema")
	count := fs.Int("count", 10, "workflows per type (generated workload)")
	interactions := fs.Int("interactions", 18, "interactions per workflow")
	flowsPath := fs.String("workflows", "", "optional workflow JSON (default: generated mixed workload)")
	detailed := fs.String("detailed", "", "optional path for the detailed per-query CSV report")
	users := fs.Int("users", 1, "concurrent simulated users (each on its own engine session)")
	seed := fs.Int64("seed", 1, "random seed")
	addr := fs.String("addr", "", "replay against a remote `idebench serve` at host:port instead of in-process (-rows/-seed must match the server); a comma-separated list enables failover through the rotation (primary first, then warm standbys)")
	maxViol := fs.Float64("maxviol", -1, "fail if the TR-violation percentage exceeds this (negative disables); CI smoke guard")
	expectStream := fs.Bool("expect-stream", false, "with -addr: fail unless at least one intermediate and one final snapshot frame arrived")
	ingestEvery := fs.Int("ingest-every", 0, "interleave an ingest event after every N workflow interactions (0 disables live ingestion)")
	ingestRows := fs.Int("ingest-rows", 1000, "rows per interleaved ingest batch (with -ingest-every)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *expectStream && *addr == "" {
		return errors.New("-expect-stream requires -addr (in-process runs have no frames)")
	}
	if *ingestEvery > 0 && *useJoins {
		return errors.New("-ingest-every with -joins is not supported (the generated ingest stream is de-normalized)")
	}

	db, err := core.BuildData(*rows, *useJoins, *seed)
	if err != nil {
		return err
	}
	var flows []*workflow.Workflow
	if *flowsPath != "" {
		flows, err = workflow.LoadFile(*flowsPath)
		if err != nil {
			return err
		}
	} else {
		flatDB := db
		if *useJoins {
			flatDB, err = core.BuildData(*rows, false, *seed)
			if err != nil {
				return err
			}
		}
		all, gerr := core.GenerateWorkflows(flatDB, *count, *interactions, *seed+100)
		if gerr != nil {
			return gerr
		}
		flows = core.MixedOnly(all)
	}

	s := core.DefaultSettings()
	s.TimeRequirement = *tr
	s.ThinkTime = *think
	s.DataSize = *rows
	s.UseJoins = *useJoins
	s.Seed = *seed

	if *users > len(flows) {
		fmt.Fprintf(os.Stderr, "idebench: note: %d users requested but only %d workflows; running %d concurrent users (add -count or -workflows for more)\n",
			*users, len(flows), len(flows))
	}
	if *ingestEvery > 0 {
		flows = workflow.InterleaveIngestAll(flows, *ingestEvery, *ingestRows)
	}
	var recs []driver.Record
	var remoteStats *server.FrameStats
	var harness *ingest.Harness
	if *addr != "" {
		recs, remoteStats, harness, err = runRemote(*addr, db, flows, s, *users, *ingestEvery > 0)
	} else {
		var p *core.Prepared
		p, err = core.Prepare(*engineName, db, s)
		if err != nil {
			return err
		}
		fmt.Printf("data preparation time: %v\n", p.PrepTime.Round(time.Microsecond))
		switch {
		case *ingestEvery > 0:
			app := engine.CapabilitiesOf(p.Engine).Appender
			if app == nil {
				return fmt.Errorf("engine %s does not support live ingestion", p.Engine.Name())
			}
			harness, err = newIngestHarness(db, s.Seed, ingest.EngineSink{A: app})
			if err != nil {
				return err
			}
			recs, err = p.RunIngest(flows, s, *users, harness)
		case *users > 1:
			recs, err = p.RunUsers(flows, s, *users)
		default:
			recs, err = p.Run(flows, s)
		}
	}
	if err != nil {
		return err
	}
	rows2 := report.Summarize(recs, report.GroupBy{Driver: true, TimeReq: true, WorkflowType: true})
	if err := report.RenderSummaries(os.Stdout, rows2); err != nil {
		return err
	}
	if *users > 1 {
		fmt.Println()
		if err := report.RenderUserSweep(os.Stdout, report.SummarizeUsers(recs)); err != nil {
			return err
		}
	}
	if harness != nil {
		fmt.Println()
		ingRows := report.SummarizeIngest(recs)
		wallByGroup := map[string]float64{}
		for _, u := range report.SummarizeUsers(recs) {
			wallByGroup[fmt.Sprintf("%s/%d", u.Driver, u.Users)] = u.WallClockMS
		}
		for i := range ingRows {
			ingRows[i].IngestedRows = harness.IngestedRows()
			if wall := wallByGroup[fmt.Sprintf("%s/%d", ingRows[i].Driver, ingRows[i].Users)]; wall > 0 {
				ingRows[i].IngestRowsPerSec = float64(harness.IngestedRows()) / (wall / 1000)
			}
		}
		if err := report.RenderIngestSweep(os.Stdout, ingRows); err != nil {
			return err
		}
		fmt.Printf("ingested %d rows in %d batches (live watermark %d)\n",
			harness.IngestedRows(), harness.Batches(), harness.Watermark())
	}
	if *detailed != "" {
		if err := writeDetailed(*detailed, recs); err != nil {
			return err
		}
		fmt.Printf("detailed report: %s (%d queries)\n", *detailed, len(recs))
	}
	if *expectStream {
		if err := checkStream(remoteStats); err != nil {
			return err
		}
	}
	if *maxViol >= 0 {
		if err := checkViolations(recs, *maxViol); err != nil {
			return err
		}
	}
	return nil
}

// runRemote replays flows against a remote `idebench serve` through the
// WebSocket client, returning the records and the client's frame counters.
// The driver code path is identical to the in-process one; only the
// engine.Engine implementation behind it differs. With ingestion enabled,
// the client owns the ground-truth lineage (a local harness applies every
// batch) while the same batches ship to the server as ingest frames.
func runRemote(addr string, db *dataset.Database, flows []*workflow.Workflow, s core.Settings, users int, withIngest bool) ([]driver.Record, *server.FrameStats, *ingest.Harness, error) {
	// addr may be a comma-separated failover list (primary first, then warm
	// standbys); with more than one address the client reconnects through
	// the rotation when the primary dies. A single address keeps the
	// fail-loudly default — a benchmark replay should not paper over a
	// flaky single-server setup.
	addrs := splitAddrs(addr)
	if len(addrs) == 0 {
		return nil, nil, nil, errors.New("run: -addr is empty")
	}
	rem, err := server.NewRemoteWithOptions(addrs[0], server.RemoteOptions{
		Addrs: addrs[1:], Reconnect: len(addrs) > 1,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	defer rem.Close()
	// Surfaces a -rows/-seed mismatch before an expensive replay runs
	// against the wrong ground truth.
	if err := rem.Prepare(db, engine.Options{Confidence: s.Confidence, Seed: s.Seed}); err != nil {
		return nil, nil, nil, err
	}
	fmt.Printf("remote engine: %s at %s (%d rows)\n", rem.Name(), addr, rem.Rows())

	gt := groundtruth.New(db)
	cfg := driver.Config{
		TimeRequirement: s.TimeRequirement,
		ThinkTime:       s.ThinkTime,
		DataSizeLabel:   core.SizeLabel(s.DataSize),
	}
	var h *ingest.Harness
	if withIngest {
		h, err = newIngestHarness(db, s.Seed, rem)
		if err != nil {
			return nil, nil, nil, err
		}
		cfg.IngestSink = h
	}
	var recs []driver.Record
	if users > 1 {
		m := driver.NewMulti(rem, gt, driver.MultiConfig{
			Config: cfg, Users: users, ThinkJitter: driver.DefaultThinkJitter, Seed: s.Seed,
		})
		res, merr := m.Run(flows)
		if merr != nil {
			return nil, nil, nil, merr
		}
		recs = res.Records
	} else {
		r := driver.New(rem, gt, cfg)
		var rerr error
		recs, rerr = r.RunWorkflows(flows)
		if rerr != nil {
			return nil, nil, nil, rerr
		}
	}
	if h != nil {
		// Quiesce: ingest frames are asynchronous; wait (bounded) until the
		// server confirms it absorbed everything we fed it. A server-side
		// rejection surfaces with its own message rather than as a timeout.
		deadline := time.Now().Add(15 * time.Second)
		for rem.Watermark() < h.Watermark() && time.Now().Before(deadline) {
			if err := rem.Err(); err != nil {
				return nil, nil, nil, fmt.Errorf("server rejected ingestion: %w", err)
			}
			time.Sleep(10 * time.Millisecond)
		}
		if err := rem.Err(); err != nil {
			return nil, nil, nil, fmt.Errorf("server rejected ingestion: %w", err)
		}
		if rem.Watermark() != h.Watermark() {
			return nil, nil, nil, fmt.Errorf("server watermark %d never caught up to fed %d",
				rem.Watermark(), h.Watermark())
		}
	}
	st := rem.Stats()
	fmt.Printf("network frames: %d intermediate, %d final, %d ingest, %d errors over %d sessions\n",
		st.Intermediate.Load(), st.Final.Load(), st.Ingest.Load(), st.Errors.Load(), st.Sessions.Load())
	return recs, st, h, nil
}

// newIngestHarness builds the deterministic batch stream + harness shared
// by the in-process and remote ingest paths.
func newIngestHarness(db *dataset.Database, seed int64, sinks ...ingest.Sink) (*ingest.Harness, error) {
	src, err := ingest.NewSource(2000, seed+23)
	if err != nil {
		return nil, err
	}
	return ingest.NewHarness(db, src, sinks...), nil
}

// checkStream enforces the e2e smoke contract: a streamed replay must have
// delivered at least one intermediate and one final snapshot frame.
func checkStream(st *server.FrameStats) error {
	if st == nil {
		return errors.New("no remote replay ran")
	}
	if st.Intermediate.Load() == 0 || st.Final.Load() == 0 {
		return fmt.Errorf("stream check failed: %d intermediate / %d final frames (want ≥1 of each)",
			st.Intermediate.Load(), st.Final.Load())
	}
	return nil
}

// checkViolations enforces a TR-violation ceiling (percent) over the run.
func checkViolations(recs []driver.Record, maxPct float64) error {
	violated := 0
	for _, r := range recs {
		if r.Metrics.TRViolated {
			violated++
		}
	}
	pct := 0.0
	if len(recs) > 0 {
		pct = 100 * float64(violated) / float64(len(recs))
	}
	fmt.Printf("tr violations: %d/%d (%.2f%%), ceiling %.2f%%\n", violated, len(recs), pct, maxPct)
	if pct > maxPct {
		return fmt.Errorf("violation rate %.2f%% exceeds -maxviol %.2f%%", pct, maxPct)
	}
	return nil
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	engineName := fs.String("engine", "progressive", "engine: "+strings.Join(core.EngineNames, ", ")+", progressive-spec, systemy")
	rows := fs.Int("rows", core.SizeM, "dataset size (tuples)")
	useJoins := fs.Bool("joins", false, "use the normalized star schema")
	seed := fs.Int64("seed", 1, "random seed (clients must build ground truth with the same seed)")
	addr := fs.String("addr", ":8373", "listen address")
	maxConns := fs.Int("max-conns", server.DefaultMaxConns, "maximum concurrent connections (= engine sessions)")
	poll := fs.Duration("poll", server.DefaultPollInterval, "snapshot streaming poll interval")
	drain := fs.Duration("drain", 15*time.Second, "graceful-drain budget on SIGTERM/SIGINT")
	maxInflight := fs.Int("max-inflight", server.DefaultMaxInflight, "admission cap on concurrently executing queries server-wide")
	maxInflightConn := fs.Int("max-inflight-per-conn", server.DefaultMaxInflightPerConn, "admission cap on one connection's concurrent queries")
	retryHint := fs.Duration("retry-hint", server.DefaultRetryHint, "suggested backoff sent with retryable rejections")
	lateFactor := fs.Float64("late-factor", server.DefaultLateFactor, "shed queries still running past this multiple of their stated deadline (negative disables)")
	pingInterval := fs.Duration("ping-interval", server.DefaultPingInterval, "server ping cadence for liveness (negative disables)")
	idleTimeout := fs.Duration("idle-timeout", server.DefaultIdleTimeout, "disconnect connections with no inbound frame for this long (negative disables)")
	dataDir := fs.String("data-dir", "", "durable state directory (checkpoints + ingest WAL); a restart recovers the last served state and resumes")
	ckptWALBytes := fs.Int64("checkpoint-wal-bytes", 8<<20, "with -data-dir: write a background checkpoint once the WAL exceeds this many bytes")
	ckptInterval := fs.Duration("checkpoint-interval", 2*time.Second, "with -data-dir: background checkpointer poll cadence")
	if err := fs.Parse(args); err != nil {
		return err
	}

	s := core.DefaultSettings()
	s.DataSize = *rows
	s.UseJoins = *useJoins
	s.Seed = *seed

	var (
		db   *dataset.Database
		eng  engine.Engine
		caps engine.Capabilities // eng's optional capabilities, resolved once
		st   *durable.Store
	)
	if *dataDir != "" {
		var err error
		st, err = durable.Open(*dataDir, durable.Options{Meta: durable.Meta{
			Engine:   *engineName,
			Seed:     *seed,
			BaseRows: int64(*rows),
		}})
		if err != nil {
			return err
		}
		rec, err := st.Recover()
		if err != nil {
			return err
		}
		if rec.Checkpoint != nil {
			// Warm start: prepare from the checkpoint (skipping datagen and,
			// when the engine can adopt its own permutation back, the sampling
			// reorder too), then redo the WAL tail through the ingest path.
			db = rec.Checkpoint.DB
			eng, err = core.NewEngine(*engineName)
			if err != nil {
				return err
			}
			caps = engine.CapabilitiesOf(eng)
			eopts := engine.Options{Confidence: s.Confidence, Seed: s.Seed}
			start := time.Now()
			warm := caps.ReorderedPreparer != nil
			if warm {
				err = caps.ReorderedPreparer.PrepareReordered(db, rec.Checkpoint.Perm, eopts)
			} else {
				err = eng.Prepare(db, eopts)
			}
			if err != nil {
				return err
			}
			if len(rec.Batches) > 0 {
				app := caps.Appender
				if app == nil {
					return fmt.Errorf("serve: %d WAL batches to replay but engine %s cannot append", len(rec.Batches), eng.Name())
				}
				ap := ingest.NewApplier(db, app)
				for _, b := range rec.Batches {
					if _, err := ap.Apply(b); err != nil {
						return fmt.Errorf("serve: wal replay: %w", err)
					}
				}
				if got := app.Watermark(); got != rec.Info.Watermark {
					return fmt.Errorf("serve: wal replay ended at watermark %d, recovery expected %d", got, rec.Info.Watermark)
				}
			}
			mode := "warm"
			if !warm {
				mode = "re-prepared"
			}
			note := ""
			if rec.Info.FellBack {
				note += "; newest checkpoint failed verification, used an older one"
			}
			if rec.Info.TruncatedTail {
				note += "; torn WAL tail truncated"
			}
			fmt.Printf("recovered (%s) from %s: checkpoint v%d + %d WAL batches (%d rows) -> watermark %d%s, in %v\n",
				mode, *dataDir, rec.Info.CheckpointVersion, rec.Info.ReplayedBatches,
				rec.Info.ReplayedRows, rec.Info.Watermark, note, time.Since(start).Round(time.Microsecond))
		}
	}
	if eng == nil {
		// Cold start: build the base dataset and prepare from scratch.
		var err error
		db, err = core.BuildData(*rows, *useJoins, *seed)
		if err != nil {
			return err
		}
		p, err := core.Prepare(*engineName, db, s)
		if err != nil {
			return err
		}
		eng = p.Engine
		caps = engine.CapabilitiesOf(eng)
		fmt.Printf("data preparation time: %v\n", p.PrepTime.Round(time.Microsecond))
		if st != nil {
			// First boot of a durable directory: checkpoint the prepared base
			// (in the engine's own storage order when it exposes one) so every
			// later restart is warm.
			bdb, perm := db, []uint32(nil)
			if vs := caps.ViewSnapshotter; vs != nil {
				bdb, perm = vs.SnapshotView()
			}
			if err := st.Bootstrap(bdb, perm); err != nil {
				return err
			}
			fmt.Printf("durable state bootstrapped in %s\n", *dataDir)
		}
	}

	servedRows := int64(db.Fact.NumRows())
	opts := server.Options{
		MaxConns:           *maxConns,
		PollInterval:       *poll,
		Seed:               *seed,
		MaxInflight:        *maxInflight,
		MaxInflightPerConn: *maxInflightConn,
		RetryHint:          *retryHint,
		LateFactor:         *lateFactor,
		PingInterval:       *pingInterval,
		IdleTimeout:        *idleTimeout,
	}
	if app := caps.Appender; app != nil {
		servedRows = app.Watermark()
		ap := ingest.NewApplier(db, app)
		if st != nil {
			// Write-ahead ordering: the Applier logs (and fsyncs) every
			// validated batch before the engine absorbs it or any client
			// hears an ack.
			ap.SetLog(st.LogBatch)
		}
		opts.Apply = ap.Apply
		fmt.Printf("live ingestion enabled: client ingest frames append to %s\n", eng.Name())
	}
	opts.Rows = servedRows
	var stopCkpt func()
	if st != nil {
		opts.Durable = durableServer{st}
		if vs := caps.ViewSnapshotter; vs != nil {
			stopCkpt = st.AutoCheckpoint(*ckptInterval, *ckptWALBytes, vs.SnapshotView, func(err error) {
				fmt.Fprintln(os.Stderr, "idebench: background checkpoint:", err)
			})
		}
	}
	srv := server.New(eng, opts)
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Printf("serving %s (%d rows) on %s — /ws (protocol v%d), /healthz\n",
		eng.Name(), servedRows, l.Addr(), server.ProtoVersion)

	// closeDurable stops the background checkpointer, captures one final
	// checkpoint (so the next boot replays an empty WAL tail) and closes the
	// log. Safe on every exit path; a no-op without -data-dir.
	closeDurable := func() error {
		if stopCkpt != nil {
			stopCkpt()
		}
		if st == nil {
			return nil
		}
		if vs := caps.ViewSnapshotter; vs != nil {
			vdb, perm := vs.SnapshotView()
			if err := st.Checkpoint(vdb, perm); err != nil {
				fmt.Fprintln(os.Stderr, "idebench: final checkpoint:", err)
			}
		}
		return st.Close()
	}
	return serveAndDrain(srv, l, *drain, closeDurable)
}

// serveAndDrain runs srv on l until it exits or a SIGTERM/SIGINT arrives;
// the first signal drains in-flight queries to their final snapshots within
// the budget, a second aborts immediately. onExit (optional) runs on every
// exit path after serving stops.
func serveAndDrain(srv *server.Server, l net.Listener, drain time.Duration, onExit func() error) error {
	if onExit == nil {
		onExit = func() error { return nil }
	}
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	select {
	case err := <-done:
		cerr := onExit()
		if err != nil {
			return err
		}
		return cerr
	case sig := <-sigs:
		fmt.Printf("received %v, draining (budget %v)\n", sig, drain)
		ctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		go func() {
			<-sigs
			cancel()
		}()
		if err := srv.Shutdown(ctx); err != nil {
			_ = onExit()
			return err
		}
		<-done
		if err := onExit(); err != nil {
			return err
		}
		fmt.Println("drained, bye")
		return nil
	}
}

func cmdShard(args []string) error {
	fs := flag.NewFlagSet("shard", flag.ExitOnError)
	engineName := fs.String("engine", "progressive", "engine serving this partition: "+strings.Join(core.EngineNames, ", "))
	rows := fs.Int("rows", core.SizeM, "FULL dataset size (tuples); every member of the tier states the same value")
	seed := fs.Int64("seed", 1, "random seed (must match the coordinator and every other shard)")
	shardIndex := fs.Int("shard-index", 0, "this shard's ID in [0, shard-count)")
	shardCount := fs.Int("shard-count", 1, "number of shards the fact table is hash-partitioned across")
	replicaOf := fs.Int("replica-of", -1, "serve as an additional replica of this partition (overrides -shard-index; replicas of one partition are interchangeable processes holding the same deterministic slice)")
	addr := fs.String("addr", ":9001", "listen address")
	maxConns := fs.Int("max-conns", server.DefaultMaxConns, "maximum concurrent connections")
	poll := fs.Duration("poll", server.DefaultPollInterval, "snapshot streaming poll interval")
	drain := fs.Duration("drain", 15*time.Second, "graceful-drain budget on SIGTERM/SIGINT")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *replicaOf >= 0 {
		// A replica holds exactly the partition it replicates: same derivation,
		// same rows. The distinct spelling documents intent in process tables.
		*shardIndex = *replicaOf
	}
	if *shardCount < 1 || *shardIndex < 0 || *shardIndex >= *shardCount {
		return fmt.Errorf("shard: -shard-index %d out of range for -shard-count %d", *shardIndex, *shardCount)
	}

	// Every tier member builds the same full dataset and computes the same
	// deterministic hash partitioning; this process keeps partition
	// -shard-index and drops the rest. Nothing is shipped between processes
	// at prepare time.
	db, err := core.BuildData(*rows, false, *seed)
	if err != nil {
		return err
	}
	parts, err := shard.Partition(db, *shardCount)
	if err != nil {
		return err
	}
	part := parts[*shardIndex]

	s := core.DefaultSettings()
	s.DataSize = *rows
	s.Seed = *seed
	p, err := core.Prepare(*engineName, part, s)
	if err != nil {
		return err
	}
	eng := p.Engine
	fmt.Printf("shard %d/%d holds %d of %d rows; data preparation time: %v\n",
		*shardIndex, *shardCount, part.Fact.NumRows(), db.Fact.NumRows(), p.PrepTime.Round(time.Microsecond))

	opts := server.Options{
		MaxConns:     *maxConns,
		PollInterval: *poll,
		Rows:         int64(part.Fact.NumRows()),
		Seed:         *seed,
		Role:         "shard",
	}
	if app := engine.CapabilitiesOf(eng).Appender; app != nil {
		// The coordinator routes ingest sub-batches here; they materialize
		// and validate against this shard's own partition.
		ap := ingest.NewApplier(part, app)
		opts.Apply = ap.Apply
	}
	srv := server.New(eng, opts)
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Printf("serving %s (%d rows) on %s — /ws (protocol v%d), /healthz\n",
		eng.Name(), part.Fact.NumRows(), l.Addr(), server.ProtoVersion)
	return serveAndDrain(srv, l, *drain, nil)
}

// dialReplica opens one coordinator-side backend connection to a shard
// replica: partials requested on every query (the merge needs raw
// fragments), transparent reconnect (a replica restart must not wedge the
// tier — the health loop re-syncs it).
func dialReplica(addr string) (*server.Remote, error) {
	return server.NewRemoteWithOptions(strings.TrimSpace(addr),
		server.RemoteOptions{Partials: true, Reconnect: true})
}

// antiEntropyQuery is the background divergence probe: a full-table COUNT by
// carrier — cheap, deterministic, and touching every row, so replicas that
// lost or duplicated a batch cannot agree on it.
func antiEntropyQuery(db *dataset.Database) *query.Query {
	return &query.Query{
		VizName: "ae_count", Table: db.Fact.Name,
		Bins: []query.Binning{{Field: "carrier", Kind: dataset.Nominal}},
		Aggs: []query.Aggregate{{Func: query.Count}},
	}
}

// splitAddrs parses a comma-separated address list, trimming blanks.
func splitAddrs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

// standbyWait blocks until the primary coordinator at primary is
// probe-confirmed dead: failures consecutive /healthz probes failed. While
// waiting it tails the shared journal read-only — a torn trailing record is
// the primary mid-append, which a non-owning read stops before rather than
// truncating — so the takeover starts from state the standby has already
// seen and validated.
func standbyWait(primary, dataDir string, interval time.Duration, failures int) error {
	if failures < 1 {
		failures = 1
	}
	client := &http.Client{Timeout: server.PingTimeout}
	consecutive := 0
	lastGlobal := int64(-1)
	for {
		if st, _, err := shard.ReadCoordState(dataDir); err == nil && st != nil && st.Global != lastGlobal {
			lastGlobal = st.Global
			fmt.Printf("standby: tailing %s — global version %d over %d partitions\n",
				dataDir, st.Global, len(st.Parts))
		}
		resp, err := client.Get("http://" + primary + "/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				consecutive = 0
				time.Sleep(interval)
				continue
			}
		}
		consecutive++
		fmt.Printf("standby: primary %s probe failed (%d/%d)\n", primary, consecutive, failures)
		if consecutive >= failures {
			fmt.Printf("standby: primary %s confirmed dead, taking over\n", primary)
			return nil
		}
		time.Sleep(interval)
	}
}

// recoverCoordinator rebuilds a serving coordinator from journaled
// control-plane state: every journaled replica is re-dialed at its
// journaled address, then the partition map, version log and quarantine
// flags are restored verbatim — watermark translation after the takeover
// is exactly what the previous incarnation acked. Sync flags are re-proved
// from each replica's live watermark, not trusted.
func recoverCoordinator(db *dataset.Database, st *shard.CoordState, coOpts shard.Options) (*shard.Coordinator, []*server.Remote, error) {
	var rems []*server.Remote
	fail := func(err error) (*shard.Coordinator, []*server.Remote, error) {
		for _, r := range rems {
			r.Close()
		}
		return nil, nil, err
	}
	specs := make([][]shard.ReplicaSpec, len(st.Parts))
	for i, set := range st.Parts {
		for _, ps := range set {
			if ps.Addr == "" {
				return fail(fmt.Errorf("coord: journaled replica %s of partition %d has no address; in-process members cannot be re-dialed", ps.Name, i))
			}
			rem, err := dialReplica(ps.Addr)
			if err != nil {
				return fail(fmt.Errorf("coord: re-dial partition %d replica %s at %s: %w", i, ps.Name, ps.Addr, err))
			}
			rems = append(rems, rem)
			specs[i] = append(specs[i], shard.ReplicaSpec{Engine: rem, Addr: ps.Addr, Name: ps.Name})
		}
	}
	co, err := shard.NewReplicatedSpecs(coOpts, specs...)
	if err != nil {
		return fail(err)
	}
	if err := co.Restore(db, st); err != nil {
		return fail(err)
	}
	return co, rems, nil
}

func cmdCoord(args []string) error {
	fs := flag.NewFlagSet("coord", flag.ExitOnError)
	rows := fs.Int("rows", core.SizeM, "FULL dataset size (tuples); must match the shard servers")
	seed := fs.Int64("seed", 1, "random seed (must match the shard servers)")
	shards := fs.String("shards", "", "comma-separated shard replica sets, '/'-separated replicas within a set (e.g. h:9001/h:9101,h:9002/h:9102); set ORDER assigns partition IDs and must match each server's -shard-index/-replica-of; ignored when -data-dir holds recoverable state")
	addr := fs.String("addr", ":8373", "listen address")
	maxConns := fs.Int("max-conns", server.DefaultMaxConns, "maximum concurrent connections")
	poll := fs.Duration("poll", server.DefaultPollInterval, "snapshot streaming poll interval")
	drain := fs.Duration("drain", 15*time.Second, "graceful-drain budget on SIGTERM/SIGINT")
	maxInflight := fs.Int("max-inflight", server.DefaultMaxInflight, "admission cap on concurrently executing queries server-wide")
	maxInflightConn := fs.Int("max-inflight-per-conn", server.DefaultMaxInflightPerConn, "admission cap on one connection's concurrent queries")
	lateFactor := fs.Float64("late-factor", server.DefaultLateFactor, "shed queries still running past this multiple of their stated deadline (negative disables)")
	minCoverage := fs.Float64("min-coverage", 0, "refuse degraded merged results whose live population fraction is below this floor (0 serves any non-empty coverage)")
	healthInterval := fs.Duration("health-interval", time.Second, "replica health-probe cadence (0 disables the loop)")
	antiEntropy := fs.Duration("anti-entropy", 0, "background replica divergence-check cadence, bitwise over canonical fragments (0 disables)")
	dataDir := fs.String("data-dir", "", "control-plane journal directory: membership, quarantine flags and the version log are write-ahead-logged here before acks and recovered on restart (empty = in-memory only)")
	standbyOf := fs.String("standby-of", "", "run as a warm standby of the primary coordinator at this address: tail the shared -data-dir journal, probe the primary, and take over serving once it is probe-confirmed dead (requires -data-dir)")
	probeInterval := fs.Duration("probe-interval", 500*time.Millisecond, "standby's primary-death probe cadence")
	takeoverFailures := fs.Int("takeover-failures", 3, "consecutive failed probes before the standby takes over")
	peers := fs.String("peers", "", "comma-separated list of every address this serving tier is reachable at (primary first, then standbys); stated on hello frames so clients learn where to redial")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// The coordinator computes the same partitioning the shards did, both to
	// sanity-check each replica's prepared row count and to route ingest.
	db, err := core.BuildData(*rows, false, *seed)
	if err != nil {
		return err
	}

	if *standbyOf != "" {
		if *dataDir == "" {
			return errors.New("coord: -standby-of requires -data-dir (the journal the standby tails)")
		}
		// Block here — dataset built, warm — until the primary is confirmed
		// dead; only then take ownership of the journal and bind the listener.
		if err := standbyWait(*standbyOf, *dataDir, *probeInterval, *takeoverFailures); err != nil {
			return err
		}
	}

	coOpts := shard.Options{MinCoverage: *minCoverage}
	var journal *shard.CoordJournal
	if *dataDir != "" {
		journal, err = shard.OpenCoordJournal(*dataDir)
		if err != nil {
			return err
		}
		defer journal.Close()
		coOpts.Journal = journal
	}

	var co *shard.Coordinator
	if st := func() *shard.CoordState {
		if journal == nil {
			return nil
		}
		return journal.State()
	}(); st != nil {
		var rems []*server.Remote
		co, rems, err = recoverCoordinator(db, st, coOpts)
		if err != nil {
			return err
		}
		for _, rem := range rems {
			defer rem.Close()
		}
		fmt.Printf("recovered coordinator over %d partitions (%d replicas) at global version %d from %s\n",
			co.Shards(), len(rems), co.Watermark(), *dataDir)
	} else {
		if *shards == "" {
			return errors.New("coord: -shards is required (comma-separated replica sets, '/' between replicas)")
		}
		partSpecs := strings.Split(*shards, ",")
		specs := make([][]shard.ReplicaSpec, len(partSpecs))
		replicas := 0
		for i, spec := range partSpecs {
			for _, a := range strings.Split(spec, "/") {
				a = strings.TrimSpace(a)
				rem, err := dialReplica(a)
				if err != nil {
					return fmt.Errorf("coord: partition %d replica at %s: %w", i, a, err)
				}
				defer rem.Close()
				specs[i] = append(specs[i], shard.ReplicaSpec{Engine: rem, Addr: a})
				replicas++
			}
		}
		co, err = shard.NewReplicatedSpecs(coOpts, specs...)
		if err != nil {
			return err
		}
		s := core.DefaultSettings()
		start := time.Now()
		if err := co.Prepare(db, engine.Options{Confidence: s.Confidence, Seed: *seed}); err != nil {
			return err
		}
		fmt.Printf("coordinator over %d partitions (%d replicas); partition check + prepare in %v\n",
			co.Shards(), replicas, time.Since(start).Round(time.Microsecond))
	}
	if *healthInterval > 0 {
		defer co.StartHealthLoop(*healthInterval)()
	}
	if *antiEntropy > 0 {
		defer co.StartAntiEntropyLoop(*antiEntropy, 30*time.Second, func() *query.Query {
			return antiEntropyQuery(db)
		})()
	}

	opts := server.Options{
		MaxConns:           *maxConns,
		PollInterval:       *poll,
		Rows:               int64(db.Fact.NumRows()),
		Seed:               *seed,
		MaxInflight:        *maxInflight,
		MaxInflightPerConn: *maxInflightConn,
		LateFactor:         *lateFactor,
		Role:               "coord",
		Peers:              splitAddrs(*peers),
	}
	// Ingest frames route through the coordinator: validate against the full
	// database, then hash-split to the owning shards and wait for their
	// confirmed watermarks (the applier's returned watermark is the global
	// min, which is what the ack broadcast should carry).
	ap := ingest.NewApplier(db, co)
	opts.Apply = ap.Apply
	// POST /rebalance changes the replica topology while serving: attach a
	// cold replica (it re-syncs from its own durable state and is promoted by
	// the health loop), or detach one by name. The checkpoint-streaming
	// "rebalance" handoff is an in-process transfer — a shard process owns
	// its durable state, so a remote newcomer joins via "add" and proves
	// freshness through its watermark instead of receiving streamed state.
	opts.Rebalance = func(req server.RebalanceRequest) error {
		switch req.Op {
		case "remove":
			return co.RemoveReplica(req.Partition, req.Name)
		case "add":
			rem, err := dialReplica(req.Addr)
			if err != nil {
				return fmt.Errorf("coord: dial new replica %s: %w", req.Addr, err)
			}
			if err := co.AddReplicaAddr(req.Partition, rem, strings.TrimSpace(req.Addr)); err != nil {
				rem.Close()
				return err
			}
			return nil
		case "rebalance":
			return errors.New("coord: checkpoint-streaming handoff needs an in-process target; remote replicas join via op \"add\" and re-sync from their own durable state")
		}
		return fmt.Errorf("coord: unknown rebalance op %q", req.Op)
	}
	srv := server.New(co, opts)
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Printf("serving %s (%d rows) on %s — /ws (protocol v%d), /healthz, /rebalance\n",
		co.Name(), db.Fact.NumRows(), l.Addr(), server.ProtoVersion)
	return serveAndDrain(srv, l, *drain, nil)
}

// cmdRebalance posts one topology change to a running coordinator's
// /rebalance admin endpoint.
func cmdRebalance(args []string) error {
	fs := flag.NewFlagSet("rebalance", flag.ExitOnError)
	addr := fs.String("addr", "localhost:8373", "coordinator address")
	op := fs.String("op", "add", "topology change: add (attach a shard replica), remove (detach a replica by name)")
	partition := fs.Int("partition", 0, "target partition ID")
	shardAddr := fs.String("shard-addr", "", "replica address (host:port) for -op add")
	name := fs.String("name", "", "replica name for -op remove (as reported on /healthz topology)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	body, err := json.Marshal(server.RebalanceRequest{
		Op: *op, Partition: *partition, Addr: *shardAddr, Name: *name,
	})
	if err != nil {
		return err
	}
	resp, err := http.Post("http://"+*addr+"/rebalance", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("rebalance: %s: %s", resp.Status, strings.TrimSpace(string(out)))
	}
	fmt.Printf("rebalance %s partition %d: ok\n", *op, *partition)
	return nil
}

// resultDigest is a canonical bitwise fingerprint of a result's bins: keys
// in sorted order, every value and margin as its IEEE-754 bits. Two results
// digest equal iff their rendered aggregates are bitwise identical — the
// shell-tier counterpart of the Go tests' bin-by-bin comparison.
func resultDigest(res *query.Result) uint64 {
	h := fnv.New64a()
	buf := make([]byte, 8)
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf)
	}
	for _, k := range res.SortedKeys() {
		put(uint64(k.A))
		put(uint64(k.B))
		bv := res.Bins[k]
		for _, v := range bv.Values {
			put(math.Float64bits(v))
		}
		for _, m := range bv.Margins {
			put(math.Float64bits(m))
		}
	}
	return h.Sum64()
}

// cmdProbe runs one full-table COUNT against a server and reports the
// result's coverage, watermark and a canonical digest — a CI assertion
// primitive for the elasticity walls. With -expect it exits non-zero unless
// the outcome matches: "full" (complete answer, full coverage), "degraded"
// (coverage-annotated partial-population answer) or "refused" (no result —
// the tier is below its -min-coverage floor or fully unreachable).
func cmdProbe(args []string) error {
	fs := flag.NewFlagSet("probe", flag.ExitOnError)
	addr := fs.String("addr", "localhost:8373", "server address to probe; a comma-separated list probes through the failover rotation (primary first)")
	rows := fs.Int("rows", core.SizeM, "dataset size the server was prepared with")
	seed := fs.Int64("seed", 1, "dataset seed the server was prepared with")
	timeout := fs.Duration("timeout", 30*time.Second, "probe query budget")
	expect := fs.String("expect", "", "assert the outcome: full, degraded or refused (empty = report only)")
	minFraction := fs.Float64("min-fraction", 0, "fail unless the covered population fraction is at least this")
	if err := fs.Parse(args); err != nil {
		return err
	}
	db, err := core.BuildData(*rows, false, *seed)
	if err != nil {
		return err
	}
	addrs := splitAddrs(*addr)
	if len(addrs) == 0 {
		return errors.New("probe: -addr is empty")
	}
	rem, err := server.NewRemoteWithOptions(addrs[0], server.RemoteOptions{
		Addrs: addrs[1:], Reconnect: len(addrs) > 1,
	})
	if err != nil {
		return err
	}
	defer rem.Close()
	h, err := rem.StartQuery(antiEntropyQuery(db))
	if err != nil {
		return fmt.Errorf("probe: %w", err)
	}
	select {
	case <-h.Done():
	case <-time.After(*timeout):
		h.Cancel()
		return fmt.Errorf("probe: no final frame within %v", *timeout)
	}
	res := h.Snapshot()

	outcome := "refused"
	fraction := 0.0
	if res != nil {
		cov := res.Coverage
		fraction = 1
		if cov.Full() {
			outcome = "full"
		} else {
			outcome = "degraded"
			fraction = cov.PopulationFraction
		}
		var total float64
		for _, bv := range res.Bins {
			if len(bv.Values) > 0 {
				total += bv.Values[0]
			}
		}
		fmt.Printf("probe %s: %s — count %.0f over %d bins, watermark %d, complete %v, fraction %.4f, digest %016x\n",
			*addr, outcome, total, len(res.Bins), res.Watermark, res.Complete, fraction, resultDigest(res))
		if cov != nil {
			fmt.Printf("coverage: %d/%d partitions, population fraction %.4f, degraded %v\n",
				cov.PartitionsAnswered, cov.PartitionsTotal, cov.PopulationFraction, cov.Degraded)
		}
	} else {
		fmt.Printf("probe %s: refused (no result", *addr)
		if err := rem.Err(); err != nil {
			fmt.Printf("; server said: %v", err)
		}
		fmt.Println(")")
	}
	if *expect != "" && outcome != *expect {
		return fmt.Errorf("probe: outcome %q, expected %q", outcome, *expect)
	}
	if *minFraction > 0 && fraction < *minFraction {
		return fmt.Errorf("probe: covered fraction %.4f below required %.4f", fraction, *minFraction)
	}
	return nil
}

// durableServer adapts a durable.Store to the server's Durability hooks —
// recovery/WAL status for /healthz and the drain-time flush barrier —
// without the server package importing durable.
type durableServer struct{ st *durable.Store }

func (d durableServer) DurableStatus() server.DurableStatus {
	s := d.st.Status()
	return server.DurableStatus{
		Recovered:             s.Recovered,
		FellBack:              s.FellBack,
		CheckpointVersion:     s.CheckpointVersion,
		ReplayedBatches:       s.ReplayedBatches,
		ReplayedRows:          s.ReplayedRows,
		TruncatedTail:         s.TruncatedTail,
		RecoveredWatermark:    s.Watermark,
		WALBytes:              s.WALBytes,
		Checkpoints:           s.Checkpoints,
		LastCheckpointVersion: s.LastCheckpointVersion,
	}
}

func (d durableServer) Flush() error { return d.st.Flush() }

func cmdInspect(args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	dataDir := fs.String("data-dir", "", "durable state directory to inspect")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dataDir == "" {
		return errors.New("inspect: -data-dir is required")
	}
	return durable.Inspect(*dataDir, nil, os.Stdout)
}

func cmdLoad(args []string) error {
	fs := flag.NewFlagSet("load", flag.ExitOnError)
	addr := fs.String("addr", "localhost:8373", "server address to load")
	workload := fs.String("workload", "uniform", "workload: "+strings.Join(loadgen.Names(), ", "))
	schedule := fs.String("schedule", "poisson", "arrival schedule: poisson, bursty, ramp")
	rate := fs.Float64("rate", 100, "arrivals/second (poisson rate, bursty base rate, ramp start rate)")
	rate2 := fs.Float64("rate2", 0, "second rate: bursty burst rate / ramp end rate (default 10x -rate)")
	period := fs.Duration("period", time.Second, "bursty: burst cadence")
	burstLen := fs.Duration("burst-len", 200*time.Millisecond, "bursty: burst duration")
	over := fs.Duration("over", 0, "ramp: sweep duration from -rate to -rate2 (default -duration)")
	duration := fs.Duration("duration", 5*time.Second, "offered-load window")
	sessions := fs.Int("sessions", 8, "connection/session pool size")
	deadline := fs.Duration("deadline", 12*time.Millisecond, "per-query interactivity deadline (sent as the server's shedding hint)")
	outstanding := fs.Int("outstanding", 4096, "client-side cap on outstanding operations")
	reconnect := fs.Bool("reconnect", false, "transparently redial dropped connections with backoff")
	rows := fs.Int("rows", core.SizeM, "dataset size the server was prepared with (for op synthesis)")
	seed := fs.Int64("seed", 1, "dataset seed the server was prepared with")
	gateDoneP99 := fs.Duration("gate-done-p99", 0, "fail unless admitted time-to-final p99 stays under this (0 disables)")
	gateZeroErrors := fs.Bool("gate-zero-errors", false, "fail on any hard error (rejections and drops are not errors)")
	gateRejects := fs.Bool("gate-rejects", false, "fail unless the server rejected or shed at least once (proves the run crossed the knee)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *rate2 <= 0 {
		*rate2 = 10 * *rate
	}
	var sched loadgen.Schedule
	switch *schedule {
	case "poisson":
		sched = loadgen.Poisson{Rate: *rate}
	case "bursty":
		sched = loadgen.Bursty{BaseRate: *rate, BurstRate: *rate2, Period: *period, BurstLen: *burstLen}
	case "ramp":
		rampOver := *over
		if rampOver <= 0 {
			rampOver = *duration
		}
		sched = loadgen.Ramp{From: *rate, To: *rate2, Over: rampOver}
	default:
		return fmt.Errorf("unknown schedule %q (want poisson, bursty or ramp)", *schedule)
	}

	// The generator synthesizes ops against the same deterministic dataset
	// the server prepared; only the column metadata is used, so build the
	// flat schema locally and never ship a byte of it.
	db, err := core.BuildData(*rows, false, *seed)
	if err != nil {
		return err
	}
	wl, err := loadgen.New(*workload, db, *seed)
	if err != nil {
		return err
	}
	rem, err := server.NewRemoteWithOptions(*addr, server.RemoteOptions{Reconnect: *reconnect})
	if err != nil {
		return err
	}
	defer rem.Close()

	fmt.Printf("open-loop %s/%s against %s: %v window, %d sessions, %v deadline\n",
		*workload, sched.Name(), *addr, *duration, *sessions, *deadline)
	st, err := loadgen.Run(rem, wl, sched, loadgen.Config{
		Sessions:       *sessions,
		Duration:       *duration,
		Deadline:       *deadline,
		MaxOutstanding: *outstanding,
		Seed:           *seed,
	})
	if err != nil {
		return err
	}

	fmt.Printf("offered   %d (%.0f/s achieved)\n", st.Offered, st.OfferedRate)
	fmt.Printf("completed %d (%.0f/s), rejected %d (%.1f%%), dropped %d, errors %d\n",
		st.Completed, st.CompletedRate, st.Rejected, st.RejectedPct(), st.Dropped, st.Errors)
	fmt.Printf("shed %d, deadline violations %d (%.1f%% of admitted), ingest ops %d\n",
		st.Shed, st.Violations, st.ViolationPct(), st.IngestOps)
	fmt.Printf("ttfs p50/p99/p99.9  %.2f / %.2f / %.2f ms\n", st.TTFS.P50, st.TTFS.P99, st.TTFS.P999)
	fmt.Printf("done p50/p99/p99.9  %.2f / %.2f / %.2f ms\n", st.Done.P50, st.Done.P99, st.Done.P999)
	fmt.Printf("elapsed %v\n", st.Elapsed.Round(time.Millisecond))

	// Gates make the command a CI assertion: exit non-zero when the server's
	// overload behavior regressed.
	var failures []string
	if *gateDoneP99 > 0 && st.Completed > 0 {
		if limit := float64(*gateDoneP99) / float64(time.Millisecond); st.Done.P99 > limit {
			failures = append(failures, fmt.Sprintf("admitted done-p99 %.2fms exceeds gate %v", st.Done.P99, *gateDoneP99))
		}
	}
	if *gateZeroErrors && st.Errors > 0 {
		failures = append(failures, fmt.Sprintf("%d hard errors (gate requires zero)", st.Errors))
	}
	if *gateRejects && st.Rejected == 0 && st.Shed == 0 {
		failures = append(failures, "no rejections or shedding observed (gate requires the run to cross the knee)")
	}
	if len(failures) > 0 {
		return fmt.Errorf("load gates failed:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}

func writeDetailed(path string, recs []driver.Record) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := report.WriteDetailedCSV(f, recs); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func cmdAnalyze(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	path := fs.String("detailed", "detailed.csv", "detailed report CSV to analyze")
	byType := fs.Bool("by-type", false, "group the summary by workflow type instead of time requirement")
	effects := fs.Bool("effects", true, "also print the Exp.-4 factor analysis")
	if err := fs.Parse(args); err != nil {
		return err
	}
	f, err := os.Open(*path)
	if err != nil {
		return err
	}
	recs, err := report.ReadDetailedCSV(f)
	f.Close()
	if err != nil {
		return err
	}
	g := report.GroupBy{Driver: true, TimeReq: true, DataSize: true}
	if *byType {
		g = report.GroupBy{Driver: true, WorkflowType: true, DataSize: true}
	}
	rows := report.Summarize(recs, g)
	if err := report.RenderSummaries(os.Stdout, rows); err != nil {
		return err
	}
	if *effects {
		fmt.Println()
		if err := report.RenderEffects(os.Stdout, report.Analyze(recs)); err != nil {
			return err
		}
	}
	return nil
}

func cmdView(args []string) error {
	fs := flag.NewFlagSet("view", flag.ExitOnError)
	path := fs.String("workflows", "workflows.json", "workflow JSON file to inspect")
	name := fs.String("name", "", "only show the named workflow")
	dot := fs.Bool("dot", false, "emit the link graph as Graphviz DOT instead of text")
	if err := fs.Parse(args); err != nil {
		return err
	}
	flows, err := workflow.LoadFile(*path)
	if err != nil {
		return err
	}
	shown := 0
	for _, f := range flows {
		if *name != "" && f.Name != *name {
			continue
		}
		var out string
		if *dot {
			out, err = workflow.DOT(f)
		} else {
			out, err = workflow.Describe(f)
		}
		if err != nil {
			return err
		}
		fmt.Println(out)
		shown++
	}
	if shown == 0 {
		return fmt.Errorf("no workflows matched (file has %d)", len(flows))
	}
	return nil
}

func cmdExp(args []string) error {
	fs := flag.NewFlagSet("exp", flag.ExitOnError)
	name := fs.String("name", "fig5", "experiment: fig5, fig6a, fig6b, fig6c, fig6d, fig6e, fig6f, exp4, exp5, prep, table1, users, ingest, overload, shards, elastic, all")
	rows := fs.Int("rows", core.SizeM, "dataset size (tuples)")
	count := fs.Int("workflows", 10, "workflows per type")
	interactions := fs.Int("interactions", 18, "interactions per workflow")
	engines := fs.String("engines", "", "comma-separated engine subset (default: all)")
	quick := fs.Bool("quick", false, "reduced configuration for a fast smoke run")
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := experiments.Config{
		Rows:             *rows,
		WorkflowsPerType: *count,
		Interactions:     *interactions,
		Seed:             *seed,
		Out:              os.Stdout,
	}
	if *engines != "" {
		cfg.Engines = strings.Split(*engines, ",")
	}
	if *quick {
		cfg.Rows = core.SizeS
		cfg.WorkflowsPerType = 2
		cfg.Interactions = 10
		cfg.TRs = []time.Duration{2 * time.Millisecond, 12 * time.Millisecond, 40 * time.Millisecond}
	}

	run := func(n string) error {
		start := time.Now()
		var err error
		switch n {
		case "fig5":
			_, err = experiments.Fig5(cfg)
		case "fig6a":
			_, err = experiments.Fig6a(cfg)
		case "fig6b":
			_, err = experiments.Fig6b(cfg)
		case "fig6c":
			_, err = experiments.Fig6c(cfg)
		case "fig6d":
			_, err = experiments.Fig6d(cfg)
		case "fig6e":
			_, err = experiments.Fig6e(cfg)
		case "fig6f":
			_, err = experiments.Fig6f(cfg)
		case "exp4":
			_, err = experiments.Exp4(cfg)
		case "exp5":
			_, err = experiments.Exp5(cfg)
		case "prep":
			_, err = experiments.Prep(cfg)
		case "table1":
			_, err = experiments.Table1(cfg)
		case "users":
			_, err = experiments.UserSweep(cfg)
		case "ingest":
			_, err = experiments.IngestSweep(cfg)
		case "overload":
			_, err = experiments.OverloadSweep(cfg)
		case "shards":
			_, err = experiments.ShardSweep(cfg)
		case "elastic":
			_, err = experiments.ElasticSweep(cfg)
		default:
			return fmt.Errorf("unknown experiment %q", n)
		}
		if err == nil {
			fmt.Printf("[%s done in %v]\n\n", n, time.Since(start).Round(time.Millisecond))
		}
		return err
	}

	if *name == "all" {
		for _, n := range []string{"prep", "fig5", "fig6a", "fig6b", "fig6c", "fig6d", "fig6e", "fig6f", "exp4", "exp5", "table1", "users", "ingest", "overload", "shards", "elastic"} {
			if err := run(n); err != nil {
				return fmt.Errorf("%s: %w", n, err)
			}
		}
		return nil
	}
	return run(*name)
}
