// Command idebench is the benchmark driver CLI (paper Sec. 4.4): it
// generates datasets and workloads, runs the benchmark against the built-in
// engines, and regenerates every table and figure of the paper's evaluation
// section.
//
// Usage:
//
//	idebench datagen     -rows 500000 -out flights.csv
//	idebench workloadgen -rows 100000 -count 10 -interactions 18 -out flows.json
//	idebench run         -engine progressive -rows 500000 -tr 12ms -think 4ms
//	idebench run         -engine progressive -users 8
//	idebench exp         -name fig5 [-rows 500000] [-quick]
//	idebench exp         -name users
//
// `run -users N` replays the workload as N concurrent simulated users, each
// on its own engine session, and appends the user-scalability table
// (throughput, p50/p95/p99 latency) to the summary. `exp -name users` sweeps
// 1/2/4/8 users on the shared-scan progressive engine vs the independent
// exactdb engine.
//
// Run `idebench <command> -h` for each command's flags.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"idebench/internal/core"
	"idebench/internal/datagen"
	"idebench/internal/dataset"
	"idebench/internal/driver"
	"idebench/internal/experiments"
	"idebench/internal/report"
	"idebench/internal/workflow"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "datagen":
		err = cmdDatagen(os.Args[2:])
	case "workloadgen":
		err = cmdWorkloadgen(os.Args[2:])
	case "run":
		err = cmdRun(os.Args[2:])
	case "exp":
		err = cmdExp(os.Args[2:])
	case "view":
		err = cmdView(os.Args[2:])
	case "analyze":
		err = cmdAnalyze(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "idebench: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "idebench:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `idebench — a benchmark for interactive data exploration (Go reproduction)

Commands:
  datagen      generate the scaled flights dataset as CSV
  workloadgen  generate benchmark workflows as JSON
  run          run the benchmark for one engine and setting
  exp          regenerate a paper experiment (fig5, fig6a..fig6f, exp4, exp5, prep, table1, users, all)
  view         inspect generated workflows (text or Graphviz DOT)
  analyze      re-aggregate a saved detailed report (summary + factor analysis)
`)
}

func cmdDatagen(args []string) error {
	fs := flag.NewFlagSet("datagen", flag.ExitOnError)
	rows := fs.Int("rows", core.SizeM, "number of tuples to generate")
	seedRows := fs.Int("seed-rows", 20000, "seed table size the copula scaler is fitted on")
	seed := fs.Int64("seed", 1, "random seed")
	out := fs.String("out", "flights.csv", "output CSV path")
	showStats := fs.Bool("stats", false, "print per-column statistics of the generated data")
	if err := fs.Parse(args); err != nil {
		return err
	}
	start := time.Now()
	seedTbl, err := datagen.GenerateSeed(*seedRows, *seed)
	if err != nil {
		return err
	}
	tbl, err := datagen.ScaleTable(seedTbl, *rows, *seed+1)
	if err != nil {
		return err
	}
	if err := dataset.WriteCSVFile(*out, tbl); err != nil {
		return err
	}
	fmt.Printf("wrote %d rows to %s in %v\n", tbl.NumRows(), *out, time.Since(start).Round(time.Millisecond))
	if *showStats {
		if err := dataset.RenderStats(os.Stdout, dataset.Stats(tbl)); err != nil {
			return err
		}
	}
	return nil
}

func cmdWorkloadgen(args []string) error {
	fs := flag.NewFlagSet("workloadgen", flag.ExitOnError)
	rows := fs.Int("rows", 50000, "rows of generated data to derive value domains from")
	data := fs.String("data", "", "optional CSV dataset to derive domains from (flights schema)")
	count := fs.Int("count", 10, "workflows per type")
	interactions := fs.Int("interactions", 18, "interactions per workflow")
	seed := fs.Int64("seed", 1, "random seed")
	out := fs.String("out", "workflows.json", "output JSON path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var tbl *dataset.Table
	var err error
	if *data != "" {
		tbl, err = dataset.ReadCSVFile(*data, "flights", datagen.FlightsSchema())
	} else {
		db, berr := core.BuildData(*rows, false, *seed)
		if berr != nil {
			return berr
		}
		tbl = db.Fact
	}
	if err != nil {
		return err
	}
	gen, err := workflow.NewGenerator(tbl)
	if err != nil {
		return err
	}
	flows, err := gen.GenerateSet(*count, *interactions, *seed+100)
	if err != nil {
		return err
	}
	if err := workflow.SaveFile(*out, flows); err != nil {
		return err
	}
	fmt.Printf("wrote %d workflows to %s\n", len(flows), *out)
	return nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	engineName := fs.String("engine", "progressive", "engine: "+strings.Join(core.EngineNames, ", ")+", progressive-spec, systemy")
	rows := fs.Int("rows", core.SizeM, "dataset size (tuples)")
	tr := fs.Duration("tr", 12*time.Millisecond, "time requirement")
	think := fs.Duration("think", core.DefaultThinkTime, "think time between interactions")
	useJoins := fs.Bool("joins", false, "use the normalized star schema")
	count := fs.Int("count", 10, "workflows per type (generated workload)")
	interactions := fs.Int("interactions", 18, "interactions per workflow")
	flowsPath := fs.String("workflows", "", "optional workflow JSON (default: generated mixed workload)")
	detailed := fs.String("detailed", "", "optional path for the detailed per-query CSV report")
	users := fs.Int("users", 1, "concurrent simulated users (each on its own engine session)")
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	db, err := core.BuildData(*rows, *useJoins, *seed)
	if err != nil {
		return err
	}
	var flows []*workflow.Workflow
	if *flowsPath != "" {
		flows, err = workflow.LoadFile(*flowsPath)
		if err != nil {
			return err
		}
	} else {
		flatDB := db
		if *useJoins {
			flatDB, err = core.BuildData(*rows, false, *seed)
			if err != nil {
				return err
			}
		}
		all, gerr := core.GenerateWorkflows(flatDB, *count, *interactions, *seed+100)
		if gerr != nil {
			return gerr
		}
		flows = core.MixedOnly(all)
	}

	s := core.DefaultSettings()
	s.TimeRequirement = *tr
	s.ThinkTime = *think
	s.DataSize = *rows
	s.UseJoins = *useJoins
	s.Seed = *seed

	p, err := core.Prepare(*engineName, db, s)
	if err != nil {
		return err
	}
	fmt.Printf("data preparation time: %v\n", p.PrepTime.Round(time.Microsecond))
	var recs []driver.Record
	if *users > 1 {
		if *users > len(flows) {
			fmt.Fprintf(os.Stderr, "idebench: note: %d users requested but only %d workflows; running %d concurrent users (add -count or -workflows for more)\n",
				*users, len(flows), len(flows))
		}
		recs, err = p.RunUsers(flows, s, *users)
	} else {
		recs, err = p.Run(flows, s)
	}
	if err != nil {
		return err
	}
	rows2 := report.Summarize(recs, report.GroupBy{Driver: true, TimeReq: true, WorkflowType: true})
	if err := report.RenderSummaries(os.Stdout, rows2); err != nil {
		return err
	}
	if *users > 1 {
		fmt.Println()
		if err := report.RenderUserSweep(os.Stdout, report.SummarizeUsers(recs)); err != nil {
			return err
		}
	}
	if *detailed != "" {
		if err := writeDetailed(*detailed, recs); err != nil {
			return err
		}
		fmt.Printf("detailed report: %s (%d queries)\n", *detailed, len(recs))
	}
	return nil
}

func writeDetailed(path string, recs []driver.Record) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := report.WriteDetailedCSV(f, recs); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func cmdAnalyze(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	path := fs.String("detailed", "detailed.csv", "detailed report CSV to analyze")
	byType := fs.Bool("by-type", false, "group the summary by workflow type instead of time requirement")
	effects := fs.Bool("effects", true, "also print the Exp.-4 factor analysis")
	if err := fs.Parse(args); err != nil {
		return err
	}
	f, err := os.Open(*path)
	if err != nil {
		return err
	}
	recs, err := report.ReadDetailedCSV(f)
	f.Close()
	if err != nil {
		return err
	}
	g := report.GroupBy{Driver: true, TimeReq: true, DataSize: true}
	if *byType {
		g = report.GroupBy{Driver: true, WorkflowType: true, DataSize: true}
	}
	rows := report.Summarize(recs, g)
	if err := report.RenderSummaries(os.Stdout, rows); err != nil {
		return err
	}
	if *effects {
		fmt.Println()
		if err := report.RenderEffects(os.Stdout, report.Analyze(recs)); err != nil {
			return err
		}
	}
	return nil
}

func cmdView(args []string) error {
	fs := flag.NewFlagSet("view", flag.ExitOnError)
	path := fs.String("workflows", "workflows.json", "workflow JSON file to inspect")
	name := fs.String("name", "", "only show the named workflow")
	dot := fs.Bool("dot", false, "emit the link graph as Graphviz DOT instead of text")
	if err := fs.Parse(args); err != nil {
		return err
	}
	flows, err := workflow.LoadFile(*path)
	if err != nil {
		return err
	}
	shown := 0
	for _, f := range flows {
		if *name != "" && f.Name != *name {
			continue
		}
		var out string
		if *dot {
			out, err = workflow.DOT(f)
		} else {
			out, err = workflow.Describe(f)
		}
		if err != nil {
			return err
		}
		fmt.Println(out)
		shown++
	}
	if shown == 0 {
		return fmt.Errorf("no workflows matched (file has %d)", len(flows))
	}
	return nil
}

func cmdExp(args []string) error {
	fs := flag.NewFlagSet("exp", flag.ExitOnError)
	name := fs.String("name", "fig5", "experiment: fig5, fig6a, fig6b, fig6c, fig6d, fig6e, fig6f, exp4, exp5, prep, table1, users, all")
	rows := fs.Int("rows", core.SizeM, "dataset size (tuples)")
	count := fs.Int("workflows", 10, "workflows per type")
	interactions := fs.Int("interactions", 18, "interactions per workflow")
	engines := fs.String("engines", "", "comma-separated engine subset (default: all)")
	quick := fs.Bool("quick", false, "reduced configuration for a fast smoke run")
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := experiments.Config{
		Rows:             *rows,
		WorkflowsPerType: *count,
		Interactions:     *interactions,
		Seed:             *seed,
		Out:              os.Stdout,
	}
	if *engines != "" {
		cfg.Engines = strings.Split(*engines, ",")
	}
	if *quick {
		cfg.Rows = core.SizeS
		cfg.WorkflowsPerType = 2
		cfg.Interactions = 10
		cfg.TRs = []time.Duration{2 * time.Millisecond, 12 * time.Millisecond, 40 * time.Millisecond}
	}

	run := func(n string) error {
		start := time.Now()
		var err error
		switch n {
		case "fig5":
			_, err = experiments.Fig5(cfg)
		case "fig6a":
			_, err = experiments.Fig6a(cfg)
		case "fig6b":
			_, err = experiments.Fig6b(cfg)
		case "fig6c":
			_, err = experiments.Fig6c(cfg)
		case "fig6d":
			_, err = experiments.Fig6d(cfg)
		case "fig6e":
			_, err = experiments.Fig6e(cfg)
		case "fig6f":
			_, err = experiments.Fig6f(cfg)
		case "exp4":
			_, err = experiments.Exp4(cfg)
		case "exp5":
			_, err = experiments.Exp5(cfg)
		case "prep":
			_, err = experiments.Prep(cfg)
		case "table1":
			_, err = experiments.Table1(cfg)
		case "users":
			_, err = experiments.UserSweep(cfg)
		default:
			return fmt.Errorf("unknown experiment %q", n)
		}
		if err == nil {
			fmt.Printf("[%s done in %v]\n\n", n, time.Since(start).Round(time.Millisecond))
		}
		return err
	}

	if *name == "all" {
		for _, n := range []string{"prep", "fig5", "fig6a", "fig6b", "fig6c", "fig6d", "fig6e", "fig6f", "exp4", "exp5", "table1", "users"} {
			if err := run(n); err != nil {
				return fmt.Errorf("%s: %w", n, err)
			}
		}
		return nil
	}
	return run(*name)
}
