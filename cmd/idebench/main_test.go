package main

import (
	"context"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"idebench/internal/core"
	"idebench/internal/datagen"
	"idebench/internal/dataset"
	"idebench/internal/report"
	"idebench/internal/server"
	"idebench/internal/workflow"
)

func TestCmdDatagenAndWorkloadgen(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "flights.csv")
	if err := cmdDatagen([]string{
		"-rows", "2000", "-seed-rows", "2000", "-seed", "3", "-out", csvPath, "-stats",
	}); err != nil {
		t.Fatal(err)
	}
	tbl, err := dataset.ReadCSVFile(csvPath, "flights", datagen.FlightsSchema())
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 2000 {
		t.Errorf("generated rows = %d", tbl.NumRows())
	}

	flowsPath := filepath.Join(dir, "flows.json")
	if err := cmdWorkloadgen([]string{
		"-data", csvPath, "-count", "1", "-interactions", "6", "-out", flowsPath,
	}); err != nil {
		t.Fatal(err)
	}
	flows, err := workflow.LoadFile(flowsPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) != 5 { // one per type
		t.Errorf("workflows = %d, want 5", len(flows))
	}
}

func TestCmdRunMultiUser(t *testing.T) {
	dir := t.TempDir()
	detailed := filepath.Join(dir, "users.csv")
	if err := cmdRun([]string{
		"-engine", "progressive", "-rows", "10000", "-tr", "100ms", "-think", "0s",
		"-count", "4", "-interactions", "5", "-users", "4", "-detailed", detailed,
	}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(detailed)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := report.ReadDetailedCSV(f)
	if err != nil {
		t.Fatal(err)
	}
	users := map[int]bool{}
	for _, r := range recs {
		if r.Users != 4 {
			t.Fatalf("record Users=%d, want 4", r.Users)
		}
		users[r.User] = true
	}
	if len(users) != 4 {
		t.Errorf("records span %d users, want 4", len(users))
	}
}

func TestCmdRunWithGeneratedWorkload(t *testing.T) {
	dir := t.TempDir()
	detailed := filepath.Join(dir, "detailed.csv")
	if err := cmdRun([]string{
		"-engine", "exactdb", "-rows", "10000", "-tr", "100ms", "-think", "0s",
		"-count", "1", "-interactions", "5", "-detailed", detailed,
	}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(detailed)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Error("detailed report empty")
	}
}

func TestCmdRunWithWorkflowFile(t *testing.T) {
	dir := t.TempDir()
	flowsPath := filepath.Join(dir, "flows.json")
	if err := cmdWorkloadgen([]string{
		"-rows", "5000", "-count", "1", "-interactions", "4", "-out", flowsPath,
	}); err != nil {
		t.Fatal(err)
	}
	if err := cmdRun([]string{
		"-engine", "progressive", "-rows", "5000", "-tr", "50ms", "-think", "0s",
		"-workflows", flowsPath,
	}); err != nil {
		t.Fatal(err)
	}
}

func TestCmdView(t *testing.T) {
	dir := t.TempDir()
	flowsPath := filepath.Join(dir, "flows.json")
	if err := cmdWorkloadgen([]string{
		"-rows", "3000", "-count", "1", "-interactions", "4", "-out", flowsPath,
	}); err != nil {
		t.Fatal(err)
	}
	if err := cmdView([]string{"-workflows", flowsPath}); err != nil {
		t.Fatal(err)
	}
	if err := cmdView([]string{"-workflows", flowsPath, "-dot"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdView([]string{"-workflows", flowsPath, "-name", "nope"}); err == nil {
		t.Error("missing workflow name should error")
	}
	if err := cmdView([]string{"-workflows", filepath.Join(dir, "missing.json")}); err == nil {
		t.Error("missing file should error")
	}
}

func TestCmdAnalyze(t *testing.T) {
	dir := t.TempDir()
	detailed := filepath.Join(dir, "detailed.csv")
	if err := cmdRun([]string{
		"-engine", "exactdb", "-rows", "5000", "-tr", "100ms", "-think", "0s",
		"-count", "1", "-interactions", "4", "-detailed", detailed,
	}); err != nil {
		t.Fatal(err)
	}
	if err := cmdAnalyze([]string{"-detailed", detailed}); err != nil {
		t.Fatal(err)
	}
	if err := cmdAnalyze([]string{"-detailed", detailed, "-by-type", "-effects=false"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdAnalyze([]string{"-detailed", filepath.Join(dir, "missing.csv")}); err == nil {
		t.Error("missing file should error")
	}
}

func TestCmdExpUnknown(t *testing.T) {
	if err := cmdExp([]string{"-name", "bogus"}); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestCmdRunUnknownEngine(t *testing.T) {
	if err := cmdRun([]string{"-engine", "bogus", "-rows", "1000"}); err == nil {
		t.Error("unknown engine should error")
	}
}

// TestCmdRunRemote replays through `run -addr` against an in-process
// server.Server on a real loopback listener — the CLI half of the network
// path (cmdServe's flag wiring and drain are covered by the CI e2e job).
func TestCmdRunRemote(t *testing.T) {
	const rows = 10000
	db, err := core.BuildData(rows, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := core.DefaultSettings()
	s.DataSize = rows
	p, err := core.Prepare("progressive", db, s)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(p.Engine, server.Options{
		Rows: int64(rows),
		Seed: 1,
		// Fast polling so even this small dataset streams intermediates.
		PollInterval: 50 * time.Microsecond,
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	defer srv.Shutdown(context.Background())

	if err := cmdRun([]string{
		"-addr", l.Addr().String(), "-rows", "10000", "-tr", "2s", "-think", "0s",
		"-count", "2", "-interactions", "5", "-users", "2",
		"-maxviol", "0", "-expect-stream",
	}); err != nil {
		t.Fatal(err)
	}

	// A -rows or -seed mismatch must fail fast, before any replay could
	// evaluate against ground truth from the wrong dataset.
	if err := cmdRun([]string{
		"-addr", l.Addr().String(), "-rows", "5000", "-tr", "2s", "-think", "0s",
		"-count", "1", "-interactions", "4",
	}); err == nil {
		t.Fatal("run with mismatched -rows succeeded")
	}
	if err := cmdRun([]string{
		"-addr", l.Addr().String(), "-rows", "10000", "-seed", "2", "-tr", "2s", "-think", "0s",
		"-count", "1", "-interactions", "4",
	}); err == nil {
		t.Fatal("run with mismatched -seed succeeded")
	}
}
