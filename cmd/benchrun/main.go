// Command benchrun runs the repo's scan and concurrent-progressive
// benchmarks and writes their results as machine-readable JSON, so the
// performance trajectory is recorded per PR (BENCH_<n>.json at the repo
// root) instead of living in scrollback.
//
// Usage:
//
//	go run ./cmd/benchrun -out BENCH_3.json
//	go run ./cmd/benchrun -bench 'BenchmarkScan' -pkgs ./internal/engine -benchtime 10x
//	go run ./cmd/benchrun -users 1,2,4,8 -users-engines progressive,exactdb
//	go run ./cmd/benchrun -out BENCH_ci.json -compare BENCH_3.json -tolerance 0.25
//
// With -compare, benchrun additionally loads a baseline BENCH json and fails
// (exit 1) if the fresh run regressed beyond -tolerance on a guarded metric:
// first-snapshot latency, 8-user progressive throughput, the 8-user speedup
// over sequential replay and the shared-scan speedup over independent
// gathers. Values are only compared when the baseline was recorded on
// comparable hardware (same GOOS/GOARCH/CPU count — even the speedup ratios
// shift with core count); across differing hosts the guard still fails if a
// guarded metric vanished from the fresh run, so CI always proves the
// benchmarks run and regenerate every number. This is the perf-regression
// gate.
//
// The output records every benchmark line (name, iterations, ns/op, and any
// custom metrics such as Mrows/s or B/op) plus derived speedups for
// benchmark groups that publish a baseline variant (e.g.
// BenchmarkProgressiveConcurrent8/shared vs .../independent_gather).
//
// With -users, benchrun additionally runs the multi-user scalability sweep
// in-process (internal/experiments.UserSweepUsers): each user count U
// replays U mixed workflows as U concurrent simulated users over one
// prepared engine, recording aggregate throughput, latency percentiles and
// the speedup against sequentially replaying the same workflows on one
// session.
//
// With -ingest (default: mirrors -users), benchrun also runs the
// live-ingestion sweep (internal/experiments.IngestSweepUsers): the same
// user counts replay ingest-interleaved workflows while append-only batches
// land, recording ingest throughput, deadline-violation rate and the
// staleness distribution — and failing the artifact outright if any point's
// quiesced results are not bitwise-identical to a cold prepare over the
// final table.
//
// With -restart (default: runs whenever -users runs), benchrun also runs the
// durable warm-restart benchmark (internal/experiments.RestartBench): a data
// directory is bootstrapped, grown by WAL-logged ingest batches with a
// mid-run checkpoint, and recovered; the artifact records cold
// datagen+prepare vs warm checkpoint-load+reordered-prepare+WAL-replay and
// fails unless the recovered state is bitwise-correct and the warm boot
// beats the cold one.
//
// With -shards (default: runs whenever -users runs), benchrun also runs the
// scatter-gather scaling sweep (internal/experiments.ShardSweepCounts): the
// same ingest-interleaved multi-user replay runs against a single-node
// progressive engine and against an in-process coordinator over N
// progressive shard backends per count, recording prepare time, throughput,
// latency percentiles and the per-point quiesce-bitwise gate — the sweep
// fails the artifact if any topology's quiesced merged results are not
// bitwise-identical to a cold exact scan of the final table.
//
// With -elastic (default: runs whenever -users runs), benchrun also runs
// the availability-vs-dead-shards sweep (internal/experiments.ElasticSweep):
// the same multi-user replay runs against a 2x2 replicated coordinator with
// nothing dead, with one replica killed (the sibling must cover at full
// coverage) and with a whole partition killed (answers must degrade to a
// coverage-annotated fraction, never fail). Every fully-covered point must
// pass the quiesce-bitwise gate; the sweep itself fails the artifact if a
// replay errors or a scenario's coverage differs from what its injected
// failure predicts.
//
// With -overload (default: mirrors -users), benchrun also runs the
// open-loop overload sweep (internal/experiments.OverloadSweepRates): a
// Poisson arrival generator walks an offered-load ladder against a served
// progressive engine with tightened admission caps, recording p50/p99/p99.9
// latency tails, explicit-rejection and shedding counts, and the post-drain
// consumer leak check per rate. The artifact fails unless the shedding knee
// appears inside the ladder, the admitted-query p99 stays bounded past it,
// and no rate leaks a shared-scan consumer.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"

	"idebench/internal/core"
	"idebench/internal/experiments"
	"idebench/internal/report"
)

// Result is one parsed benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Package    string             `json:"package"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// IngestPoint is one measured point of the live-ingestion sweep: U users
// replaying ingest-interleaved workflows while append-only batches land.
type IngestPoint struct {
	Engine           string  `json:"engine"`
	Users            int     `json:"users"`
	Queries          int     `json:"queries"`
	TRViolatedPct    float64 `json:"tr_violated_pct"`
	WallClockMS      float64 `json:"wall_clock_ms"`
	QueriesPerSec    float64 `json:"queries_per_sec"`
	IngestedRows     int64   `json:"ingested_rows"`
	IngestRowsPerSec float64 `json:"ingest_rows_per_sec"`
	FreshPct         float64 `json:"fresh_pct"`
	StalenessMean    float64 `json:"staleness_mean_rows"`
	StalenessMax     float64 `json:"staleness_max_rows"`
	// QuiesceBitwise records the correctness gate: after every batch was
	// absorbed, a fresh COUNT query was bitwise identical to a cold exact
	// scan over the final table.
	QuiesceBitwise bool `json:"quiesce_bitwise"`
}

// ShardPoint is one measured point of the scatter-gather scaling sweep:
// the same ingest-aware multi-user replay over a single-node engine
// ("single", shards 0) or an in-process coordinator over N shard backends
// ("shardN").
type ShardPoint struct {
	Topology       string  `json:"topology"`
	Shards         int     `json:"shards"`
	Users          int     `json:"users"`
	Queries        int     `json:"queries"`
	TRViolatedPct  float64 `json:"tr_violated_pct"`
	WallClockMS    float64 `json:"wall_clock_ms"`
	QueriesPerSec  float64 `json:"queries_per_sec"`
	P50MS          float64 `json:"p50_ms"`
	P95MS          float64 `json:"p95_ms"`
	P99MS          float64 `json:"p99_ms"`
	PrepareMS      float64 `json:"prepare_ms"`
	IngestedRows   int64   `json:"ingested_rows"`
	QuiesceBitwise bool    `json:"quiesce_bitwise"`
}

// ElasticPoint is one measured point of the availability-vs-dead-shards
// sweep: a replicated coordinator replaying the multi-user workload with a
// progressively worse failure injected first.
type ElasticPoint struct {
	Scenario             string  `json:"scenario"`
	Partitions           int     `json:"partitions"`
	ReplicasPerPartition int     `json:"replicas_per_partition"`
	DeadReplicas         int     `json:"dead_replicas"`
	Users                int     `json:"users"`
	Queries              int     `json:"queries"`
	TRViolatedPct        float64 `json:"tr_violated_pct"`
	WallClockMS          float64 `json:"wall_clock_ms"`
	QueriesPerSec        float64 `json:"queries_per_sec"`
	P50MS                float64 `json:"p50_ms"`
	P95MS                float64 `json:"p95_ms"`
	P99MS                float64 `json:"p99_ms"`
	PrepareMS            float64 `json:"prepare_ms"`
	PartitionsAnswered   int     `json:"partitions_answered"`
	PartitionsTotal      int     `json:"partitions_total"`
	PopulationFraction   float64 `json:"population_fraction"`
	Degraded             bool    `json:"degraded"`
	IngestedRows         int64   `json:"ingested_rows"`
	// QuiesceBitwise is enforced on every fully-covered point; degraded
	// points record false and are exempt (their honesty lives in the
	// coverage fields, not in bitwise completeness).
	QuiesceBitwise bool `json:"quiesce_bitwise"`
}

// UserPoint is one measured point of the multi-user scalability sweep.
type UserPoint struct {
	Engine              string  `json:"engine"`
	Users               int     `json:"users"`
	Queries             int     `json:"queries"`
	TRViolatedPct       float64 `json:"tr_violated_pct"`
	WallClockMS         float64 `json:"wall_clock_ms"`
	QueriesPerSec       float64 `json:"queries_per_sec"`
	P50MS               float64 `json:"p50_ms"`
	P95MS               float64 `json:"p95_ms"`
	P99MS               float64 `json:"p99_ms"`
	SpeedupVs1User      float64 `json:"speedup_vs_1user"`
	SequentialMS        float64 `json:"sequential_ms"`
	SpeedupVsSequential float64 `json:"speedup_vs_sequential"`
}

// Output is the BENCH_<n>.json document.
type Output struct {
	GeneratedAt string             `json:"generated_at"`
	GoVersion   string             `json:"go_version"`
	GOOS        string             `json:"goos"`
	GOARCH      string             `json:"goarch"`
	NumCPU      int                `json:"num_cpu"`
	BenchRegex  string             `json:"bench_regex"`
	Benchtime   string             `json:"benchtime"`
	Benchmarks  []Result           `json:"benchmarks"`
	Speedups    map[string]float64 `json:"speedups,omitempty"`
	UserSweep   []UserPoint        `json:"user_sweep,omitempty"`
	IngestSweep []IngestPoint      `json:"ingest_sweep,omitempty"`
	// ShardSweep is the scatter-gather scaling sweep: single-node baseline
	// plus coordinator-over-N-shards per configured count.
	ShardSweep []ShardPoint `json:"shard_sweep,omitempty"`
	// ElasticSweep is the availability ladder over a replicated tier:
	// nothing dead, one replica dead, one whole partition dead.
	ElasticSweep []ElasticPoint `json:"elastic_sweep,omitempty"`
	// OverloadSweep is the open-loop overload ladder; OverloadKnee the index
	// of the first rate where admission control or shedding engaged (-1 when
	// the sweep never saturated — which fails the artifact).
	OverloadSweep []report.OverloadPoint `json:"overload_sweep,omitempty"`
	OverloadKnee  int                    `json:"overload_knee,omitempty"`
	// Restart is the durable warm-boot benchmark: cold datagen+prepare vs
	// checkpoint-load+reordered-prepare+WAL-replay, with its bitwise gate.
	Restart *experiments.RestartResult `json:"restart,omitempty"`
}

// benchLine matches standard `go test -bench` output, e.g.
// "BenchmarkFoo/sub-8   100   123456 ns/op   42.0 Mrows/s   16 B/op".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([0-9.e+]+) ns/op(.*)$`)

// baselinePairs maps a measured variant to its baseline within the same
// benchmark group; speedup = baseline ns/op ÷ variant ns/op.
var baselinePairs = map[string]string{
	"shared":    "independent_gather",
	"vec_dense": "scalar",
	"vec_map":   "scalar",
}

func main() {
	out := flag.String("out", "BENCH_9.json", "output JSON path")
	bench := flag.String("bench", "BenchmarkScan|BenchmarkProgressiveConcurrent8|BenchmarkProgressiveFirstSnapshot|BenchmarkProgressivePrepare", "benchmark regex")
	pkgs := flag.String("pkgs", "./internal/engine,./internal/engine/progressive", "comma-separated package list")
	// A fixed iteration count beats go's time-based ramp-up for recorded
	// artifacts: on small machines the 1-iteration calibration pass puts
	// scheduler noise into the reported mean for fast benchmarks.
	benchtime := flag.String("benchtime", "100x", "go test -benchtime value (empty: go default)")
	users := flag.String("users", "auto", "comma-separated user counts for the multi-user sweep; empty skips, \"auto\" runs 1,2,4,8 only for full artifact runs (default -bench/-pkgs)")
	usersEngines := flag.String("users-engines", "progressive,exactdb", "engines the user sweep contrasts")
	usersRows := flag.Int("users-rows", core.SizeS, "dataset size for the user sweep")
	ingestUsers := flag.String("ingest", "auto", "comma-separated user counts for the live-ingestion sweep; empty skips, \"auto\" mirrors -users")
	shards := flag.String("shards", "auto", "comma-separated shard counts for the scatter-gather scaling sweep; empty skips, \"auto\" runs the default counts whenever -users runs")
	overload := flag.String("overload", "auto", "comma-separated arrival-rate ladder (queries/s) for the open-loop overload sweep; empty skips, \"auto\" runs the default ladder whenever -users runs")
	elastic := flag.String("elastic", "auto", "run the availability-vs-dead-shards sweep: \"auto\" (whenever -users runs), \"on\", or empty to skip")
	restart := flag.String("restart", "auto", "run the durable warm-restart benchmark: \"auto\" (whenever -users runs), \"on\", or empty to skip")
	compare := flag.String("compare", "", "baseline BENCH json to guard against (empty disables)")
	tolerance := flag.Float64("tolerance", 0.25, "allowed relative regression per guarded metric with -compare")
	flag.Parse()
	if *compare != "" && *compare == *out {
		fmt.Fprintf(os.Stderr, "benchrun: -compare and -out are the same file %q; the fresh run would clobber its own baseline\n", *out)
		os.Exit(1)
	}

	doc := Output{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		BenchRegex:  *bench,
		Benchtime:   *benchtime,
	}
	for _, pkg := range strings.Split(*pkgs, ",") {
		pkg = strings.TrimSpace(pkg)
		if pkg == "" {
			continue
		}
		results, err := runPackage(pkg, *bench, *benchtime)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrun: %s: %v\n", pkg, err)
			os.Exit(1)
		}
		doc.Benchmarks = append(doc.Benchmarks, results...)
	}
	doc.Speedups = deriveSpeedups(doc.Benchmarks)

	userList := *users
	if userList == "auto" {
		// Full artifact runs get the sweep; a targeted micro-benchmark run
		// (explicit -bench or -pkgs) should not silently multiply its
		// wall-clock with an in-process experiment.
		userList = "1,2,4,8"
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "bench" || f.Name == "pkgs" {
				userList = ""
			}
		})
	}
	if userList != "" {
		points, err := runUserSweep(userList, *usersEngines, *usersRows)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrun: user sweep: %v\n", err)
			os.Exit(1)
		}
		doc.UserSweep = points
	}
	ingestList := *ingestUsers
	if ingestList == "auto" {
		ingestList = userList
	}
	if ingestList != "" {
		points, err := runIngestSweep(ingestList, *usersEngines, *usersRows)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrun: ingest sweep: %v\n", err)
			os.Exit(1)
		}
		doc.IngestSweep = points
	}
	shardList := *shards
	if shardList == "auto" {
		if userList == "" {
			shardList = ""
		} else {
			shardList = "default"
		}
	}
	if shardList != "" {
		points, err := runShardSweep(shardList, *usersRows)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrun: shard sweep: %v\n", err)
			os.Exit(1)
		}
		doc.ShardSweep = points
	}
	runElastic := *elastic == "on" || (*elastic == "auto" && userList != "")
	if runElastic {
		points, err := runElasticSweep(*usersRows)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrun: elastic sweep: %v\n", err)
			os.Exit(1)
		}
		doc.ElasticSweep = points
	}
	overloadList := *overload
	if overloadList == "auto" {
		if userList == "" {
			overloadList = ""
		} else {
			overloadList = "default"
		}
	}
	if overloadList != "" {
		points, err := runOverloadSweep(overloadList, *usersRows)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrun: overload sweep: %v\n", err)
			os.Exit(1)
		}
		doc.OverloadSweep = points
		doc.OverloadKnee = report.FindKnee(points)
	}
	runRestart := *restart == "on" || (*restart == "auto" && userList != "")
	if runRestart {
		r, err := experiments.RestartBench(experiments.Config{Rows: *usersRows, Out: io.Discard}, 10, *usersRows/100)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrun: restart bench: %v\n", err)
			os.Exit(1)
		}
		doc.Restart = r
	}

	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchrun: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchrun: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("benchrun: wrote %d results to %s\n", len(doc.Benchmarks), *out)
	for name, s := range doc.Speedups {
		fmt.Printf("benchrun: speedup %s: %.2fx\n", name, s)
	}
	for _, p := range doc.UserSweep {
		fmt.Printf("benchrun: users %s u=%d: %.1f q/s, %.2fx vs sequential replay\n",
			p.Engine, p.Users, p.QueriesPerSec, p.SpeedupVsSequential)
	}
	for _, p := range doc.IngestSweep {
		fmt.Printf("benchrun: ingest %s u=%d: %.1f q/s, %.0f rows/s ingested, %.2f%% violations, bitwise=%v\n",
			p.Engine, p.Users, p.QueriesPerSec, p.IngestRowsPerSec, p.TRViolatedPct, p.QuiesceBitwise)
		if !p.QuiesceBitwise {
			fmt.Fprintf(os.Stderr, "benchrun: FAIL ingest %s u=%d: quiesced results not bitwise-identical to cold prepare\n",
				p.Engine, p.Users)
			os.Exit(1)
		}
	}
	for _, p := range doc.ShardSweep {
		fmt.Printf("benchrun: shards %s u=%d: prepare %.1fms, %.1f q/s, p95 %.2fms, %d rows ingested, bitwise=%v\n",
			p.Topology, p.Users, p.PrepareMS, p.QueriesPerSec, p.P95MS, p.IngestedRows, p.QuiesceBitwise)
		if !p.QuiesceBitwise {
			fmt.Fprintf(os.Stderr, "benchrun: FAIL shards %s u=%d: quiesced merged results not bitwise-identical to cold prepare\n",
				p.Topology, p.Users)
			os.Exit(1)
		}
	}
	for _, p := range doc.ElasticSweep {
		fmt.Printf("benchrun: elastic %s dead=%d: %d queries, p95 %.2fms, coverage %d/%d (%.2f), degraded=%v, bitwise=%v\n",
			p.Scenario, p.DeadReplicas, p.Queries, p.P95MS, p.PartitionsAnswered, p.PartitionsTotal,
			p.PopulationFraction, p.Degraded, p.QuiesceBitwise)
		if !p.Degraded && !p.QuiesceBitwise {
			fmt.Fprintf(os.Stderr, "benchrun: FAIL elastic %s: fully-covered point missed the quiesce-bitwise gate\n", p.Scenario)
			os.Exit(1)
		}
	}
	if doc.Restart != nil {
		r := doc.Restart
		fmt.Printf("benchrun: restart %d+%d rows: cold prepare %.1fms vs warm %.1fms (load %.1fms + replay %.1fms of %d batches), checkpoint %.1fms/%dB, bitwise=%v\n",
			r.Rows, r.IngestedRows, r.ColdPrepareMS, r.WarmTotalMS, r.WarmLoadMS, r.WALReplayMS, r.Batches, r.CheckpointMS, r.CheckpointBytes, r.Bitwise)
		if !r.Bitwise {
			fmt.Fprintln(os.Stderr, "benchrun: FAIL restart: warm-recovered results not bitwise-identical to ground truth")
			os.Exit(1)
		}
		if !r.WarmBeatsCold {
			fmt.Fprintf(os.Stderr, "benchrun: FAIL restart: warm boot %.1fms is not faster than cold prepare %.1fms\n", r.WarmTotalMS, r.ColdPrepareMS)
			os.Exit(1)
		}
	}
	if len(doc.OverloadSweep) > 0 {
		for _, p := range doc.OverloadSweep {
			fmt.Printf("benchrun: overload %.0f/s: offered=%d done=%d rejected=%.1f%% shed=%d done_p99=%.1fms p99.9=%.1fms leaked=%d\n",
				p.Rate, p.Offered, p.Completed, p.RejectedPct, p.Shed, p.DoneP99, p.DoneP999, p.LeakedConsumers)
		}
		if failures := overloadGate(doc.OverloadSweep, doc.OverloadKnee); len(failures) > 0 {
			for _, f := range failures {
				fmt.Fprintf(os.Stderr, "benchrun: FAIL overload: %s\n", f)
			}
			os.Exit(1)
		}
		fmt.Printf("benchrun: overload knee at %.0f/s; admitted p99 bounded past it, 0 leaked consumers\n",
			doc.OverloadSweep[doc.OverloadKnee].Rate)
	}

	if *compare != "" {
		base, err := loadOutput(*compare)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrun: compare: %v\n", err)
			os.Exit(1)
		}
		if failures := compareGuard(base, &doc, *tolerance); len(failures) > 0 {
			for _, f := range failures {
				fmt.Fprintf(os.Stderr, "benchrun: REGRESSION %s\n", f)
			}
			os.Exit(1)
		}
		fmt.Printf("benchrun: no regression beyond %.0f%% vs %s\n", *tolerance*100, *compare)
	}
}

// loadOutput reads a previously written BENCH json.
func loadOutput(path string) (*Output, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc Output
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &doc, nil
}

// guardMetric is one -compare check. higherIsBetter metrics fail when fresh
// < base*(1-tol); lower-is-better ones when fresh > base*(1+tol).
type guardMetric struct {
	name           string
	higherIsBetter bool
	extract        func(*Output) (float64, bool)
}

// guardMetrics are the regression-guard checks: the two headline numbers
// the serving layer depends on (first-snapshot latency, 8-user throughput)
// plus their host-normalized ratio forms.
var guardMetrics = []guardMetric{
	{
		name: "first_snapshot_ns (BenchmarkProgressiveFirstSnapshot/shared)",
		extract: func(o *Output) (float64, bool) {
			for _, b := range o.Benchmarks {
				if b.Name == "BenchmarkProgressiveFirstSnapshot/shared" {
					return b.NsPerOp, true
				}
			}
			return 0, false
		},
	},
	{
		name: "users8_queries_per_sec (progressive)", higherIsBetter: true,
		extract: func(o *Output) (float64, bool) {
			return userSweepMetric(o, func(p UserPoint) float64 { return p.QueriesPerSec })
		},
	},
	{
		name: "users8_speedup_vs_sequential (progressive)", higherIsBetter: true,
		extract: func(o *Output) (float64, bool) {
			return userSweepMetric(o, func(p UserPoint) float64 { return p.SpeedupVsSequential })
		},
	},
	{
		name: "concurrent8_shared_vs_independent_gather", higherIsBetter: true,
		extract: func(o *Output) (float64, bool) {
			v, ok := o.Speedups["BenchmarkProgressiveConcurrent8/shared_vs_independent_gather"]
			return v, ok
		},
	},
	{
		// The coordinator's merged throughput must not collapse relative to
		// earlier artifacts; baselines without a shard sweep skip this.
		name: "shards_coordinator_queries_per_sec (largest count)", higherIsBetter: true,
		extract: func(o *Output) (float64, bool) {
			best := -1
			v := 0.0
			for _, p := range o.ShardSweep {
				if p.Shards > best {
					best = p.Shards
					v = p.QueriesPerSec
				}
			}
			return v, best > 0
		},
	},
	{
		name: "users8_ingest_rows_per_sec (progressive)", higherIsBetter: true,
		extract: func(o *Output) (float64, bool) {
			for _, p := range o.IngestSweep {
				if p.Engine == "progressive" && p.Users == 8 {
					return p.IngestRowsPerSec, true
				}
			}
			return 0, false
		},
	},
}

func userSweepMetric(o *Output, f func(UserPoint) float64) (float64, bool) {
	for _, p := range o.UserSweep {
		if p.Engine == "progressive" && p.Users == 8 {
			return f(p), true
		}
	}
	return 0, false
}

// comparableHosts reports whether absolute numbers from the two documents
// may be compared: same OS and CPU count (the baseline artifact may come
// from a different machine class than the CI runner).
func comparableHosts(a, b *Output) bool {
	return a.GOOS == b.GOOS && a.GOARCH == b.GOARCH && a.NumCPU == b.NumCPU
}

// compareGuard returns a description per guarded metric that regressed
// beyond tol. Metrics absent from the baseline are skipped (older
// artifacts); metrics present in the baseline but missing fresh fail on any
// host — a guard that silently stops measuring is itself a regression.
// Metric *values* are only compared between comparable hosts: absolute
// latencies/throughput obviously shift with hardware, and even the speedup
// ratios depend on CPU count (on one core the shared scan amortizes a
// serial memory pass; on four, the independent baseline parallelizes), so a
// cross-host value comparison would flag hardware, not code.
func compareGuard(base, fresh *Output, tol float64) []string {
	hostOK := comparableHosts(base, fresh)
	if !hostOK {
		fmt.Printf("benchrun: baseline host %s/%s/%dcpu differs from %s/%s/%dcpu; enforcing metric presence only\n",
			base.GOOS, base.GOARCH, base.NumCPU, fresh.GOOS, fresh.GOARCH, fresh.NumCPU)
	}
	var failures []string
	for _, g := range guardMetrics {
		bv, ok := g.extract(base)
		if !ok || bv == 0 {
			fmt.Printf("benchrun: baseline lacks %s; skipping\n", g.name)
			continue
		}
		fv, ok := g.extract(fresh)
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: missing from fresh run (baseline %.4g)", g.name, bv))
			continue
		}
		if !hostOK {
			fmt.Printf("benchrun: %s: fresh %.4g present (baseline %.4g; hosts differ, value not compared)\n", g.name, fv, bv)
			continue
		}
		var bad bool
		if g.higherIsBetter {
			bad = fv < bv*(1-tol)
		} else {
			bad = fv > bv*(1+tol)
		}
		dir := "≥"
		if g.higherIsBetter {
			dir = "≤"
		}
		fmt.Printf("benchrun: %s: fresh %.4g vs base %.4g (fail when %s %.0f%% off)\n", g.name, fv, bv, dir, tol*100)
		if bad {
			failures = append(failures, fmt.Sprintf("%s: fresh %.4g vs baseline %.4g exceeds %.0f%% tolerance", g.name, fv, bv, tol*100))
		}
	}
	return failures
}

// runUserSweep executes the multi-user scalability sweep in-process.
func runUserSweep(userList, engines string, rows int) ([]UserPoint, error) {
	var counts []int
	for _, s := range strings.Split(userList, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		u, err := strconv.Atoi(s)
		if err != nil || u < 1 {
			return nil, fmt.Errorf("bad user count %q", s)
		}
		counts = append(counts, u)
	}
	cfg := experiments.Config{Rows: rows, Out: io.Discard}
	for _, e := range strings.Split(engines, ",") {
		if e = strings.TrimSpace(e); e != "" {
			cfg.Engines = append(cfg.Engines, e)
		}
	}
	sweep, err := experiments.UserSweepUsers(cfg, counts)
	if err != nil {
		return nil, err
	}
	points := make([]UserPoint, len(sweep))
	for i, r := range sweep {
		points[i] = UserPoint{
			Engine:              r.Driver,
			Users:               r.Users,
			Queries:             r.Queries,
			TRViolatedPct:       r.TRViolatedPct,
			WallClockMS:         r.WallClockMS,
			QueriesPerSec:       r.QueriesPerSec,
			P50MS:               r.Latency.P50,
			P95MS:               r.Latency.P95,
			P99MS:               r.Latency.P99,
			SpeedupVs1User:      r.SpeedupVs1,
			SequentialMS:        r.SequentialMS,
			SpeedupVsSequential: r.SpeedupVsSequential,
		}
	}
	return points, nil
}

// runIngestSweep executes the live-ingestion sweep in-process and fails the
// artifact when a point misses its quiesce correctness gate.
func runIngestSweep(userList, engines string, rows int) ([]IngestPoint, error) {
	var counts []int
	for _, s := range strings.Split(userList, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		u, err := strconv.Atoi(s)
		if err != nil || u < 1 {
			return nil, fmt.Errorf("bad user count %q", s)
		}
		counts = append(counts, u)
	}
	cfg := experiments.Config{Rows: rows, Out: io.Discard}
	for _, e := range strings.Split(engines, ",") {
		if e = strings.TrimSpace(e); e != "" {
			cfg.Engines = append(cfg.Engines, e)
		}
	}
	sweep, err := experiments.IngestSweepUsers(cfg, counts)
	if err != nil {
		return nil, err
	}
	points := make([]IngestPoint, len(sweep))
	for i, r := range sweep {
		points[i] = IngestPoint{
			Engine:           r.Driver,
			Users:            r.Users,
			Queries:          r.Queries,
			TRViolatedPct:    r.TRViolatedPct,
			WallClockMS:      r.WallClockMS,
			QueriesPerSec:    r.QueriesPerSec,
			IngestedRows:     r.IngestedRows,
			IngestRowsPerSec: r.IngestRowsPerSec,
			FreshPct:         nanToZero(r.FreshPct),
			StalenessMean:    nanToZero(r.StalenessMean),
			StalenessMax:     nanToZero(r.StalenessMax),
			QuiesceBitwise:   r.BitwiseOK,
		}
	}
	return points, nil
}

// runShardSweep executes the scatter-gather scaling sweep in-process.
// shardList is "default" for experiments.DefaultShardCounts or explicit
// comma-separated counts.
func runShardSweep(shardList string, rows int) ([]ShardPoint, error) {
	counts := experiments.DefaultShardCounts
	if shardList != "default" {
		counts = nil
		for _, s := range strings.Split(shardList, ",") {
			s = strings.TrimSpace(s)
			if s == "" {
				continue
			}
			n, err := strconv.Atoi(s)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("bad shard count %q", s)
			}
			counts = append(counts, n)
		}
	}
	cfg := experiments.Config{Rows: rows, Out: io.Discard}
	sweep, err := experiments.ShardSweepCounts(cfg, counts, 4)
	if err != nil {
		return nil, err
	}
	points := make([]ShardPoint, len(sweep))
	for i, r := range sweep {
		points[i] = ShardPoint{
			Topology:       r.Topology,
			Shards:         r.Shards,
			Users:          r.Users,
			Queries:        r.Queries,
			TRViolatedPct:  r.TRViolatedPct,
			WallClockMS:    r.WallClockMS,
			QueriesPerSec:  r.QueriesPerSec,
			P50MS:          r.P50MS,
			P95MS:          r.P95MS,
			P99MS:          r.P99MS,
			PrepareMS:      r.PrepareMS,
			IngestedRows:   r.IngestedRows,
			QuiesceBitwise: r.BitwiseOK,
		}
	}
	return points, nil
}

// runElasticSweep executes the availability ladder in-process. Scenario
// shape (2x2 tier, failure ladder) is fixed by experiments.ElasticSweep;
// replay errors and coverage mismatches fail inside the sweep itself.
func runElasticSweep(rows int) ([]ElasticPoint, error) {
	sweep, err := experiments.ElasticSweep(experiments.Config{Rows: rows, Out: io.Discard})
	if err != nil {
		return nil, err
	}
	points := make([]ElasticPoint, len(sweep))
	for i, r := range sweep {
		points[i] = ElasticPoint{
			Scenario:             r.Scenario,
			Partitions:           r.Partitions,
			ReplicasPerPartition: r.ReplicasPerPartition,
			DeadReplicas:         r.DeadReplicas,
			Users:                r.Users,
			Queries:              r.Queries,
			TRViolatedPct:        r.TRViolatedPct,
			WallClockMS:          r.WallClockMS,
			QueriesPerSec:        r.QueriesPerSec,
			P50MS:                r.P50MS,
			P95MS:                r.P95MS,
			P99MS:                r.P99MS,
			PrepareMS:            r.PrepareMS,
			PartitionsAnswered:   r.PartitionsAnswered,
			PartitionsTotal:      r.PartitionsTotal,
			PopulationFraction:   r.PopulationFraction,
			Degraded:             r.Degraded,
			IngestedRows:         r.IngestedRows,
			QuiesceBitwise:       r.BitwiseOK,
		}
	}
	return points, nil
}

// maxDoneP99PastKnee is the overload gate's ceiling on admitted-query
// time-to-final p99 at and past the shedding knee, milliseconds. Deadline
// shedding cancels admitted queries a couple of deadlines after admission,
// so even at 30x the capacity rate the tail must stay far under the load
// generator's 2s hard timeout.
const maxDoneP99PastKnee = 1500.0

// overloadGate returns the failed overload-survival acceptance checks: the
// knee must appear inside the ladder with explicit rejections or shedding,
// admitted-query p99 must stay bounded past it, and no rate may leak a
// shared-scan consumer.
func overloadGate(points []report.OverloadPoint, knee int) []string {
	var failures []string
	if knee < 0 {
		failures = append(failures, "no shedding knee inside the rate ladder: overload valves never engaged")
	}
	for _, p := range points {
		if p.LeakedConsumers != 0 {
			failures = append(failures, fmt.Sprintf("rate %.0f/s leaked %d scan consumers after drain", p.Rate, p.LeakedConsumers))
		}
		if p.Errors > 0 {
			failures = append(failures, fmt.Sprintf("rate %.0f/s saw %d hard errors (overload must reject explicitly, not error)", p.Rate, p.Errors))
		}
	}
	if knee >= 0 {
		for _, p := range points[knee:] {
			if p.Completed > 0 && p.DoneP99 > maxDoneP99PastKnee {
				failures = append(failures, fmt.Sprintf("rate %.0f/s admitted done-p99 %.1fms exceeds %.0fms: shedding is not bounding the tail", p.Rate, p.DoneP99, maxDoneP99PastKnee))
			}
		}
	}
	return failures
}

// runOverloadSweep executes the open-loop overload ladder in-process.
// rateList is "default" or comma-separated arrival rates per second.
func runOverloadSweep(rateList string, rows int) ([]report.OverloadPoint, error) {
	rates := experiments.DefaultOverloadRates
	if rateList != "default" {
		rates = nil
		for _, s := range strings.Split(rateList, ",") {
			s = strings.TrimSpace(s)
			if s == "" {
				continue
			}
			r, err := strconv.ParseFloat(s, 64)
			if err != nil || r <= 0 {
				return nil, fmt.Errorf("bad overload rate %q", s)
			}
			rates = append(rates, r)
		}
	}
	points, err := experiments.OverloadSweepRates(experiments.Config{Rows: rows, Out: io.Discard}, rates, 2*time.Second)
	if err != nil {
		return nil, err
	}
	// NaN tails (a rate where nothing completed) would break json.Marshal.
	for i := range points {
		p := &points[i]
		for _, f := range []*float64{&p.TTFSP50, &p.TTFSP99, &p.TTFSP999, &p.DoneP50, &p.DoneP99, &p.DoneP999} {
			*f = nanToZero(*f)
		}
	}
	return points, nil
}

// nanToZero keeps the artifact JSON-marshalable (NaN means "no staleness
// samples", which only happens when nothing was delivered).
func nanToZero(v float64) float64 {
	if v != v {
		return 0
	}
	return v
}

// runPackage executes the benchmarks of one package and parses the output.
func runPackage(pkg, bench, benchtime string) ([]Result, error) {
	args := []string{"test", pkg, "-run", "^$", "-bench", bench}
	if benchtime != "" {
		args = append(args, "-benchtime", benchtime)
	}
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	outBytes, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go test: %w\n%s", err, outBytes)
	}
	var results []Result
	for _, line := range strings.Split(string(outBytes), "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		results = append(results, Result{
			Name:       m[1],
			Package:    pkg,
			Iterations: iters,
			NsPerOp:    ns,
			Metrics:    parseMetrics(m[4]),
		})
	}
	return results, nil
}

// parseMetrics turns the "12.3 unit 4 B/op" tail into a map.
func parseMetrics(tail string) map[string]float64 {
	fields := strings.Fields(tail)
	if len(fields) < 2 {
		return nil
	}
	metrics := make(map[string]float64)
	for i := 0; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		metrics[fields[i+1]] = v
	}
	if len(metrics) == 0 {
		return nil
	}
	return metrics
}

// deriveSpeedups computes baseline÷variant ratios for known benchmark pairs.
func deriveSpeedups(results []Result) map[string]float64 {
	byName := make(map[string]Result, len(results))
	for _, r := range results {
		byName[r.Name] = r
	}
	speedups := make(map[string]float64)
	for _, r := range results {
		i := strings.LastIndex(r.Name, "/")
		if i < 0 {
			continue
		}
		group, variant := r.Name[:i], r.Name[i+1:]
		base, ok := baselinePairs[variant]
		if !ok {
			continue
		}
		b, ok := byName[group+"/"+base]
		if !ok || r.NsPerOp == 0 {
			continue
		}
		speedups[r.Name+"_vs_"+base] = b.NsPerOp / r.NsPerOp
	}
	if len(speedups) == 0 {
		return nil
	}
	return speedups
}
