module idebench

go 1.23
