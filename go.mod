module idebench

go 1.24
