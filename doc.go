// Package idebench is a from-scratch Go reproduction of "IDEBench: A
// Benchmark for Interactive Data Exploration" (Eichmann, Binnig, Kraska,
// Zgraggen — SIGMOD 2020): a benchmark framework for database engines
// serving interactive data exploration frontends, together with in-process
// implementations of the four engine archetypes the paper evaluates.
//
// The root package only anchors the module and its benchmark suite
// (bench_test.go); the implementation lives under internal/ and the
// runnable entry points under cmd/idebench and examples/.
package idebench
