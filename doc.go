// Package idebench is a from-scratch Go reproduction of "IDEBench: A
// Benchmark for Interactive Data Exploration" (Eichmann, Binnig, Kraska,
// Zgraggen — SIGMOD 2020): a benchmark framework for database engines
// serving interactive data exploration frontends, together with in-process
// implementations of the four engine archetypes the paper evaluates.
//
// [![CI](https://github.com/idebench/idebench-go/actions/workflows/ci.yml/badge.svg)](.github/workflows/ci.yml)
//
// The root package only anchors the module and its benchmark suite
// (bench_test.go); the implementation lives under internal/ and the
// runnable entry points under cmd/idebench and examples/.
//
// # Execution architecture
//
// All engine archetypes share one vectorized execution spine
// (internal/engine): query plans compile to type-specialized batch kernels
// that evaluate filters into selection vectors, compute bin keys, and fold
// aggregates over raw column slices ~4096 rows at a time, with a dense
// flat-array group-by fast path when the bin-key domain is small and known
// (see internal/engine/README.md). The archetypes differ only in their
// execution *models* — blocking parallel scan (exactdb), offline stratified
// sample (sampledb), online aggregation with a row-store cost model
// (onlinedb), and fully progressive permuted scanning with reuse and
// speculation (progressive) — not in their scan kernels, so benchmark
// comparisons measure the models, not incidental interpreter overhead.
//
// The sampling engines additionally store data in scan order: at prepare
// time, progressive and onlinedb materialize the fact table in their fixed
// random sampling permutation (dataset.ReorderTable), so "the next sample
// chunk" is a sequential range scan over dense columns rather than a
// random-order gather — any contiguous window of a fixed random permutation
// is still a uniform sample, so the confidence math is unchanged. On top of
// that storage, the progressive engine executes every concurrent query,
// reused partial state and speculation target as a consumer of one shared
// circular scan cursor (internal/engine/sharedscan): N in-flight queries
// cost roughly one memory sweep instead of N, and multi-viz throughput
// scales with engine.Options.Parallelism workers.
//
// # Multi-user sessions
//
// Prepared engines are multi-user: engine.Engine.OpenSession hands out one
// engine.Session per simulated analyst, scoping visualization namespaces,
// link hints, reuse caches and speculation rounds per session while the
// prepared data — and, on the progressive engine, the shared scan cursor —
// serves all sessions at once. The driver layer mirrors this split:
// driver.Runner replays one analyst on one session (the paper's driver),
// and driver.MultiRunner replays K workflows as K concurrent simulated
// users against one prepared engine, with per-user think-time jitter and
// per-user record streams. Throughput and latency percentiles per
// user-count aggregate in report.SummarizeUsers, the user-scalability
// experiment lives in internal/experiments (UserSweep, `idebench exp -name
// users`), and `idebench run -users N` replays any workload concurrently.
// All driver waiting goes through driver.Clock, so tests replay in
// simulated time (driver.SimClock) instead of sleeping.
//
// # Live ingestion
//
// The fact table is not frozen at Prepare: engines implementing the
// optional engine.Appender capability absorb append-only row batches while
// queries run. Storage growth is copy-on-write (dataset.TableAppender): a
// batch lands in amortized O(batch) on privately owned column buffers, a
// fresh immutable table view is published per data version, and in-flight
// plans keep scanning the view they compiled against. Each engine absorbs
// per its execution model — exactdb grows its columns and rescans, sampledb
// re-stratifies the batch into its offline sample, onlinedb appends to both
// its heap and its sampling-order copy, and the progressive engine extends
// the shared scan (sharedscan.Scanner.Extend) so every active, cached and
// speculative query state folds the new rows exactly once mid-sweep.
//
// Every result snapshot carries a Watermark — the fact-row count of the
// data version it reflects. The ingest subsystem (internal/ingest) defines
// the batch wire format (fuzzed), a deterministic copula-backed batch
// source, and the Harness that replays mixed query+ingest timelines: it
// owns a versioned ground-truth lineage, evaluates every result against
// the truth of the version its watermark names, and records the staleness
// metric (live watermark minus result watermark) in
// metrics.QueryMetrics.StalenessRows. Workflows gain ingest interactions
// (workflow.KindIngest, interleaved via workflow.InterleaveIngest), the
// server applies client ingest frames and broadcasts post-apply watermarks
// to all live sessions, `idebench run -ingest-every N` replays ingest-aware
// workloads in-process or over the wire, and `idebench exp -name ingest`
// sweeps 1/2/4/8 users with live appends, gating on quiesced results being
// bitwise-identical to a cold prepare over the final table (BENCH_5.json).
//
// # Network serving
//
// internal/server turns any prepared engine into a network service: an
// HTTP endpoint (`idebench serve`) that upgrades connections to a
// dependency-free WebSocket (RFC 6455 subset, implemented in-repo), binds
// one engine.Session per connection, and streams progressive result
// snapshots as JSON frames with drop-intermediate, always-deliver-final
// backpressure — a slow client sees fewer, fresher intermediates and every
// final, and never stalls the shared scan. The matching Go client
// (server.Remote) implements engine.Engine, so driver.Runner and
// driver.MultiRunner replay entire workflow sets over the wire unchanged
// (`idebench run -addr host:port`), making in-process vs over-the-wire
// latency an apples-to-apples comparison. See the wire-protocol section of
// internal/engine/README.md.
//
// # Overload survival
//
// The serving layer survives offered load past its capacity by answering
// what it admits and refusing the rest explicitly, never by queueing
// without bound. Admission control caps concurrently executing queries
// server-wide (server.Options.MaxInflight) and per connection
// (MaxInflightPerConn, fairness on the shared scan); an arrival past either
// cap gets an explicit reject frame with a retry hint — the session is not
// poisoned, the client may simply try again later. Rejections are
// classified for the client: over-capacity handshakes and per-query
// rejects carry a retry hint (retryable), drain-time refusals are terminal.
// Deadline-aware shedding complements admission: queries still running past
// LateFactor multiples of their client-stated deadline are cancelled with
// their partial final marked Shed (the client snapshotted at the deadline
// anyway), and speculative shared-scan work detaches first whenever
// admission pressure builds — foreground queries are never shed, only
// late and speculative work. Ping-based liveness (PingInterval/IdleTimeout)
// tears down silent connections so a vanished client cannot hold shared-scan
// consumers, and every valve increments a counter surfaced on /healthz.
//
// server.Remote reconnects dropped connections with exponential backoff and
// jitter when RemoteOptions.Reconnect is set, resuming at the server's live
// watermark. The open-loop load generator (internal/loadgen, `idebench
// load`) offers queries on an absolute-time arrival schedule — Poisson,
// bursty, or ramp — that never slows down when the server does, avoiding
// coordinated omission; workloads (hot-key, recency, read/ingest mixes) are
// pluggable via loadgen.Register. The fault-injecting TCP proxy
// (internal/faultnet) adds latency, jitter, mid-frame resets and
// slow-reader throttling between client and server, backing a chaos test
// wall that kills clients mid-query and mid-ingest and asserts zero leaked
// shared-scan consumers and bitwise-correct quiesced results. `idebench exp
// -name overload` sweeps a Poisson rate ladder through the shedding knee
// and reports p99/p99.9 admitted latency plus rejection and violation rates
// per rate (BENCH_6.json).
//
// # Scatter-gather sharding
//
// internal/shard scales serving past one process. N `idebench shard`
// processes each prepare and serve one hash partition of the fact table —
// the full engine + sharedscan stack over their slice, behind the ordinary
// wire protocol — and one `idebench coord` process fronts them with a
// Coordinator that implements engine.Engine, so sessions, the driver and
// `run -addr` replay against the tier unchanged. Rows route to shards by a
// deterministic content hash (nominal cells hash their dictionary string,
// never the interning-order-dependent code), shared by the prepare-time
// partitioner (shard.Partition) and the ingest router (shard.RouteBatch),
// so every process derives the identical partition from -rows/-seed and
// live batches land on the shard that owns them.
//
// Queries fan out to every shard, which stream raw accumulator state —
// engine.Partial: per-bin counts, Welford moments as IEEE-754 bits,
// min/max — rather than rendered results. The coordinator buffers the
// freshest partial per shard and folds them in fixed shard-ID order
// (engine.PartialFold), rendering once, so float accumulation order is
// independent of network arrival order and merged snapshots are
// bitwise-deterministic; a merged snapshot exists only once every shard
// has contributed, so an unreachable shard means "no snapshot yet", never
// a silently biased partial answer. Ingest acks wait for every routed
// sub-batch, and a merged snapshot's Watermark is the minimum over its
// shards' watermarks translated onto recorded global versions — staleness
// under live appends stays well-defined as exactly what the slowest shard
// guarantees. The property wall (internal/shard) checks fold
// order-invariance and merged-vs-single-node bitwise equality, the
// 4-process e2e replays 8 ingest-aware users against a real
// 3-shard+coordinator tier, and `idebench exp -name shards` sweeps
// coordinator-over-N vs single-node (BENCH_8.json).
//
// # Elasticity: replicas, failover, degraded coverage
//
// The shard tier masks partial failure instead of amplifying it. Each hash
// partition can carry R replicas (`idebench shard -replica-of`, coordinator
// -shards p0r0/p0r1,... syntax): replicated ingest applies every routed
// sub-batch to every healthy in-sync replica — one that misses a batch is
// excluded from query fan-out until its watermark proves catch-up — and a
// merged query that loses a replica mid-stream fails over to a live sibling,
// so one dead replica costs latency, never a failed query. Failover keys off
// probe-confirmed reachability, not stream shape: a live backend ending a
// query deliberately (viz deleted, speculation shed) is not a death signal.
//
// When a whole partition is unreachable, the coordinator serves the merged
// answer of the survivors annotated with a structured query.Coverage block
// (partitions answered/total, population fraction, degraded flag, Complete
// forced false) — never nil, never silently biased as full — carried on the
// wire by protocol v4; -min-coverage sets a refusal floor below which the
// answer is withheld instead. Because partials are bitwise-deterministic, a
// background anti-entropy loop folds the same probe from two replicas and
// alarms on divergence. Replica sets change at runtime: `idebench rebalance
// -op add|remove` grows or shrinks a partition, with capture-window catch-up
// and watermark-proof promotion at a version barrier; `idebench probe
// -expect full|degraded|refused` asserts the tier's answer quality (and
// prints a result digest) from the shell. The /healthz schema is versioned
// (server.Health, schema_version) and reports the full per-replica topology.
// Engine capability discovery is consolidated behind engine.CapabilitiesOf,
// one struct resolving all optional interfaces in a single pass. The elastic
// wall kills a primary mid-replay, then a whole partition, then rebalances
// replacements in and requires bitwise-identical recovery; `idebench exp
// -name elastic` sweeps availability vs dead replicas (BENCH_9.json).
//
// # Durable state
//
// `idebench serve -data-dir` makes the served state survive crashes
// (internal/durable). The layout has two halves. Checkpoints are immutable
// directories of checksummed, versioned column segments — the stable table
// codec (dataset.EncodeTable) serializes dictionary values in code order,
// making two checkpoints of the same logical database byte-identical — plus
// the engine's sampling permutation and a MANIFEST.json naming every file
// with its CRC and an overall content digest; a checkpoint is written to a
// temp directory, fsynced, and renamed into place with the manifest last,
// so a crashed writer leaves either a fully valid checkpoint or ignorable
// debris. The ingest WAL records every batch (the same fuzzed wire format
// ingest frames use) in CRC-framed, version-chained records, fsynced
// *before* the engine applies the batch or any client hears an ack — the
// write-ahead hook (ingest.Applier.SetLog) runs under the apply mutex after
// validation, so WAL order is apply order and the log never holds a batch
// replay would reject.
//
// Recovery stitches the halves: load the newest checkpoint that fully
// verifies (falling back to an older one on corruption), truncate any torn
// WAL tail at the first bad CRC or broken version chain, replay the
// surviving records through the ordinary ingest path, and resume serving at
// the recovered batch-aligned watermark — warm, because engines exposing
// engine.ReorderedPreparer (progressive, exactdb) adopt the checkpoint's
// storage order directly and skip the sampling reorder, and engines
// exposing engine.ViewSnapshotter hand the background checkpointer
// copy-on-write views so checkpointing never pauses ingestion. /healthz
// reports the recovery provenance, `idebench inspect -data-dir` verifies a
// directory offline, the crash wall (internal/durable fault-injection tests
// plus the kill -9 e2e in cmd/idebench) proves acked batches survive real
// SIGKILL, and cmd/benchrun's restart benchmark gates warm boot beating
// cold prepare (BENCH_7.json).
//
// # Continuous integration
//
// CI (.github/workflows/ci.yml) fans out into parallel jobs: lint
// (gofmt/vet/staticcheck), the race-enabled test suite on a Go 1.23/1.24
// matrix, fuzz smokes over the wire formats, benchmark smokes plus the
// cmd/benchrun -compare regression guard (which uploads the fresh BENCH
// json as an artifact), and an end-to-end job that boots `idebench serve`,
// replays an 8-user workflow set through the WebSocket client, and requires
// streamed intermediates, finals, zero TR violations and a clean SIGTERM
// drain. The overload e2e job serves with tight admission caps, ramps the
// open-loop offered load past the knee with `idebench load`, and gates on
// bounded admitted p99, explicit rejections, and zero inflight queries and
// shared-scan consumers after the generator drains. The crash e2e job runs
// the durable suite and the kill -9 crash wall under -race, then SIGKILLs
// and warm-restarts a served data directory from the shell and requires the
// offline inspector to verify it clean. The shard e2e job runs the
// scatter-gather wall under -race, then boots three shard processes plus a
// coordinator from the shell, asserts the tier's topology on /healthz,
// replays 8 ingest-aware users against the coordinator, and drains the
// whole tier cleanly. The elastic e2e job runs the replica/failover wall
// under -race, then walks the failure ladder from the shell — kill a
// primary (probe full, bitwise digest vs a single-node serve), kill a
// partition (probe degraded), kill below the coverage floor (probe
// refused), rebalance replacements in (probe full again) — against a
// 2-partition, 2-replica tier.
//
// Per-PR performance numbers are recorded as machine-readable JSON at the
// repo root (BENCH_<n>.json) by cmd/benchrun; BENCH_3.json records the
// 1→8-user scalability sweep, BENCH_5.json adds the live-ingestion
// sweep (ingest throughput, deadline-violation rate and staleness at
// 1/2/4/8 users, plus the bitwise quiesce gate), and BENCH_6.json adds the
// overload sweep (admitted latency tails, rejection/shed/violation rates
// and the shedding knee across the offered-load ladder, gated on bounded
// p99 past the knee and zero leaked scan consumers), and BENCH_7.json adds
// the warm-restart benchmark (cold datagen+prepare vs checkpoint load +
// reordered prepare + WAL replay, gated on the warm boot winning and on
// bitwise-correct recovered results), and BENCH_8.json adds the
// scatter-gather scaling sweep (single-node vs coordinator-over-N-shards
// under the ingest-aware multi-user replay, every point gated on the
// quiesced merged results being bitwise-identical to a cold exact scan of
// the final table), and BENCH_9.json adds the availability ladder (the
// same replay against a replicated coordinator with nothing dead, one
// replica dead, and one whole partition dead — full-coverage points gated
// quiesce-bitwise, the dead-partition point honestly degraded with its
// population fraction).
package idebench
