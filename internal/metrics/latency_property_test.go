package metrics

import (
	"math"
	"math/rand"
	"testing"
)

// TestPercentileKnownDistribution checks exact quantiles of 0..1000: with
// linear interpolation between closest ranks, P50 of 1001 evenly spaced
// values is the middle value, P95/P99 land on the corresponding ranks.
func TestPercentileKnownDistribution(t *testing.T) {
	xs := make([]float64, 1001)
	for i := range xs {
		xs[i] = float64(i)
	}
	rand.New(rand.NewSource(1)).Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	for _, tc := range []struct {
		p    float64
		want float64
	}{
		{0, 0}, {0.25, 250}, {0.5, 500}, {0.95, 950}, {0.99, 990}, {1, 1000},
	} {
		if got := Percentile(xs, tc.p); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("P%g = %v, want %v", 100*tc.p, got, tc.want)
		}
	}
	// Interpolation between ranks: P50 of {1, 2} is 1.5.
	if got := Percentile([]float64{2, 1}, 0.5); got != 1.5 {
		t.Errorf("P50 of {1,2} = %v, want 1.5", got)
	}
}

// TestPercentileProperties fuzzes random inputs against the invariants any
// quantile function must keep: bounded by min/max, monotone in p,
// permutation-invariant, and input-preserving.
func TestPercentileProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(60)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(6)-3))
		}
		min, max := math.Inf(1), math.Inf(-1)
		for _, x := range xs {
			min = math.Min(min, x)
			max = math.Max(max, x)
		}
		orig := append([]float64(nil), xs...)

		prev := math.Inf(-1)
		for p := 0.0; p <= 1.0; p += 0.1 {
			got := Percentile(xs, p)
			if got < min-1e-12 || got > max+1e-12 {
				t.Fatalf("trial %d: P%g = %v outside [%v, %v]", trial, 100*p, got, min, max)
			}
			if got < prev-1e-12 {
				t.Fatalf("trial %d: percentile not monotone at p=%g: %v < %v", trial, p, got, prev)
			}
			prev = got
		}
		if Percentile(xs, 0) != min || Percentile(xs, 1) != max {
			t.Fatalf("trial %d: extremes P0=%v P100=%v, want %v / %v",
				trial, Percentile(xs, 0), Percentile(xs, 1), min, max)
		}
		// Permutation invariance.
		shuffled := append([]float64(nil), xs...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		if Percentile(xs, 0.5) != Percentile(shuffled, 0.5) {
			t.Fatalf("trial %d: P50 depends on input order", trial)
		}
		for i := range xs {
			if xs[i] != orig[i] {
				t.Fatalf("trial %d: Percentile mutated its input", trial)
			}
		}
	}
}

// TestPercentileNaNHandling: NaNs (a violated query's undefined metrics)
// must be skipped, not propagated, and must not shift the clean quantiles.
func TestPercentileNaNHandling(t *testing.T) {
	clean := []float64{1, 2, 3, 4, 5}
	dirty := []float64{math.NaN(), 1, 2, math.NaN(), 3, 4, 5, math.NaN()}
	for _, p := range []float64{0, 0.5, 0.9, 1} {
		c, d := Percentile(clean, p), Percentile(dirty, p)
		if c != d {
			t.Errorf("P%g: NaNs shifted the quantile: %v vs %v", 100*p, d, c)
		}
		if math.IsNaN(d) {
			t.Errorf("P%g: NaN leaked through", 100*p)
		}
	}
	if !math.IsNaN(Percentile(nil, 0.5)) {
		t.Error("empty input should yield NaN")
	}
	if !math.IsNaN(Percentile([]float64{math.NaN()}, 0.5)) {
		t.Error("all-NaN input should yield NaN")
	}
}

func TestSummarizeLatencies(t *testing.T) {
	s := SummarizeLatencies([]float64{10, 20, 30, 40, math.NaN()})
	if s.Count != 4 {
		t.Errorf("Count = %d, want 4 (NaN skipped)", s.Count)
	}
	if s.Mean != 25 {
		t.Errorf("Mean = %v, want 25", s.Mean)
	}
	if s.P50 != 25 {
		t.Errorf("P50 = %v, want 25", s.P50)
	}
	if s.Max != 40 {
		t.Errorf("Max = %v, want 40", s.Max)
	}
	empty := SummarizeLatencies(nil)
	if empty.Count != 0 || !math.IsNaN(empty.Mean) || !math.IsNaN(empty.P50) || !math.IsNaN(empty.Max) {
		t.Errorf("empty summary should be Count=0 with NaN stats: %+v", empty)
	}
}
