// Package metrics implements the benchmark's per-query quality metrics
// (paper Sec. 4.7): time-requirement violation, missing bins, mean relative
// error, SMAPE, cosine distance, mean relative margin of error,
// out-of-margin count, and bias.
package metrics

import (
	"math"

	"idebench/internal/query"
)

// QueryMetrics holds the evaluation of one query result against its ground
// truth. Error fields are NaN when undefined (e.g. no result delivered);
// aggregation skips NaNs, matching the paper's reporting rule that the
// error distribution covers only queries that did not violate the TR.
type QueryMetrics struct {
	// TRViolated is true when no result was fetchable at the time
	// requirement deadline.
	TRViolated bool
	// HasResult reports whether any result was delivered (TR violations
	// have none).
	HasResult bool

	// BinsDelivered / BinsInGT are the raw bin counts ("bins delivered",
	// "bins in gt" of the detailed report).
	BinsDelivered int
	BinsInGT      int
	// MissingBins is |missing| / |groundtruth| in [0,1].
	MissingBins float64

	// RelErrAvg / RelErrStdev summarize the per-bin relative errors
	// |F−A|/|A| over delivered bins (bins with A=0 are skipped — the paper
	// notes the relative error is undefined there).
	RelErrAvg   float64
	RelErrStdev float64
	// SMAPE is the Symmetric Mean Absolute Percentage Error over delivered
	// bins, defined for A=0, bounded in [0,1].
	SMAPE float64
	// CosineDistance measures shape deviation over the union of bins
	// (missing values as 0).
	CosineDistance float64
	// MarginAvg / MarginStdev summarize the relative margins of error
	// (margin/|estimate|) over delivered bins with non-zero estimates.
	MarginAvg   float64
	MarginStdev float64
	// OutOfMargin counts delivered bins whose true value falls outside the
	// reported confidence interval ("bins ofm").
	OutOfMargin int
	// Bias is Σ(delivered values)/Σ(true values for those bins); >1 means
	// systematic over-estimation.
	Bias float64

	// StalenessRows is the live-ingestion staleness of the result: how many
	// ingested rows the freshest data had that the delivered result's
	// watermark does not reflect (0 = perfectly fresh). It is -1 outside
	// ingest-aware runs and for queries that delivered nothing (records
	// must stay JSON-marshalable, which rules out the NaN convention the
	// error metrics use); aggregations skip negative values, so the
	// staleness distribution covers delivered results only.
	StalenessRows float64
}

// Violated returns the canonical metrics value for a query that delivered
// nothing by the deadline: one whole result missing, every error metric
// undefined.
func Violated(gt *query.Result) QueryMetrics {
	return QueryMetrics{
		TRViolated:     true,
		HasResult:      false,
		BinsInGT:       len(gt.Bins),
		MissingBins:    1,
		RelErrAvg:      math.NaN(),
		RelErrStdev:    math.NaN(),
		SMAPE:          math.NaN(),
		CosineDistance: math.NaN(),
		MarginAvg:      math.NaN(),
		MarginStdev:    math.NaN(),
		Bias:           math.NaN(),
		StalenessRows:  -1,
	}
}

// Evaluate compares a delivered result against ground truth. Each (bin,
// aggregate) pair is one element of the error distributions. trViolated
// should be true when the result was fetched after the deadline from an
// engine that still counts as violating (the driver normally passes false
// here and uses Violated for nil results).
func Evaluate(res, gt *query.Result, trViolated bool) QueryMetrics {
	m := QueryMetrics{TRViolated: trViolated, HasResult: true, BinsInGT: len(gt.Bins),
		StalenessRows: -1}
	if res == nil {
		return Violated(gt)
	}
	m.BinsDelivered = len(res.Bins)

	// Missing bins: ground-truth bins with no delivered counterpart.
	missing := 0
	for k := range gt.Bins {
		if _, ok := res.Bins[k]; !ok {
			missing++
		}
	}
	if len(gt.Bins) > 0 {
		m.MissingBins = float64(missing) / float64(len(gt.Bins))
	}

	var (
		relErrs    []float64
		smapeSum   float64
		smapeN     int
		margins    []float64
		sumF, sumA float64
		outOfM     int
	)
	// Iterate delivered bins in key order: the error distributions are
	// accumulated in floating point, and a map-iteration order would make
	// identical runs differ in the last bits — the multi-user determinism
	// tests compare records byte-for-byte.
	for _, k := range res.SortedKeys() {
		rv := res.Bins[k]
		gv, ok := gt.Bins[k]
		if !ok {
			// A bin the ground truth does not have: treat its true value as
			// zero for SMAPE/bias purposes.
			for ai := range rv.Values {
				f := rv.Values[ai]
				if f != 0 {
					smapeSum += 1 // |F-0|/(|F|+0) = 1
				}
				smapeN++
				sumF += f
				if math.Abs(f) > rv.Margins[ai] {
					outOfM++
				}
			}
			continue
		}
		for ai := range rv.Values {
			f, a := rv.Values[ai], gv.Values[ai]
			sumF += f
			sumA += a
			if a != 0 {
				relErrs = append(relErrs, math.Abs(f-a)/math.Abs(a))
			}
			if math.Abs(f)+math.Abs(a) > 0 {
				smapeSum += math.Abs(f-a) / (math.Abs(f) + math.Abs(a))
			}
			smapeN++
			if f != 0 {
				margins = append(margins, rv.Margins[ai]/math.Abs(f))
			}
			if math.Abs(f-a) > rv.Margins[ai]+1e-12 {
				outOfM++
			}
		}
	}

	m.RelErrAvg, m.RelErrStdev = meanStdev(relErrs)
	if smapeN > 0 {
		m.SMAPE = smapeSum / float64(smapeN)
	} else {
		m.SMAPE = math.NaN()
	}
	m.MarginAvg, m.MarginStdev = meanStdev(margins)
	m.OutOfMargin = outOfM
	if sumA != 0 {
		m.Bias = sumF / sumA
	} else {
		m.Bias = math.NaN()
	}
	m.CosineDistance = cosineDistance(res, gt)
	return m
}

// cosineDistance computes 1 − cos(F, A) over the union of bins using the
// first aggregate (the visualized series); absent bins contribute 0
// (paper: "we set the value at each missing bin to zero"). Accumulation
// runs in sorted key order so repeated evaluations are bit-identical.
func cosineDistance(res, gt *query.Result) float64 {
	var dot, nf, na float64
	seen := map[query.BinKey]bool{}
	accum := func(k query.BinKey) {
		if seen[k] {
			return
		}
		seen[k] = true
		var f, a float64
		if rv, ok := res.Bins[k]; ok && len(rv.Values) > 0 {
			f = rv.Values[0]
		}
		if gv, ok := gt.Bins[k]; ok && len(gv.Values) > 0 {
			a = gv.Values[0]
		}
		dot += f * a
		nf += f * f
		na += a * a
	}
	for _, k := range res.SortedKeys() {
		accum(k)
	}
	for _, k := range gt.SortedKeys() {
		accum(k)
	}
	if nf == 0 || na == 0 {
		if nf == na {
			return 0 // both empty: identical shapes
		}
		return 1
	}
	d := 1 - dot/(math.Sqrt(nf)*math.Sqrt(na))
	if d < 0 {
		d = 0 // numerical noise
	}
	return d
}

func meanStdev(xs []float64) (mean, stdev float64) {
	if len(xs) == 0 {
		return math.NaN(), math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	mean = s / float64(len(xs))
	if len(xs) < 2 {
		return mean, 0
	}
	var v float64
	for _, x := range xs {
		v += (x - mean) * (x - mean)
	}
	return mean, math.Sqrt(v / float64(len(xs)-1))
}
