package metrics

import (
	"math"
	"testing"

	"idebench/internal/query"
)

func mkResult(bins map[query.BinKey][]float64, margins map[query.BinKey][]float64) *query.Result {
	r := query.NewResult()
	for k, vals := range bins {
		bv := &query.BinValue{Values: vals, Margins: make([]float64, len(vals))}
		if m, ok := margins[k]; ok {
			bv.Margins = m
		}
		r.Bins[k] = bv
	}
	return r
}

func TestPerfectResult(t *testing.T) {
	gt := mkResult(map[query.BinKey][]float64{
		{A: 0}: {10}, {A: 1}: {20},
	}, nil)
	m := Evaluate(gt.Clone(), gt, false)
	if m.TRViolated || !m.HasResult {
		t.Error("flags wrong")
	}
	if m.MissingBins != 0 {
		t.Errorf("MissingBins = %v", m.MissingBins)
	}
	if m.RelErrAvg != 0 || m.SMAPE != 0 {
		t.Errorf("errors should be zero: rel=%v smape=%v", m.RelErrAvg, m.SMAPE)
	}
	if m.CosineDistance > 1e-12 {
		t.Errorf("cosine = %v", m.CosineDistance)
	}
	if m.Bias != 1 {
		t.Errorf("bias = %v", m.Bias)
	}
	if m.OutOfMargin != 0 {
		t.Errorf("out of margin = %d", m.OutOfMargin)
	}
	if m.BinsDelivered != 2 || m.BinsInGT != 2 {
		t.Error("bin counts wrong")
	}
}

func TestViolated(t *testing.T) {
	gt := mkResult(map[query.BinKey][]float64{{A: 0}: {10}}, nil)
	m := Violated(gt)
	if !m.TRViolated || m.HasResult {
		t.Error("flags wrong")
	}
	if m.MissingBins != 1 {
		t.Errorf("MissingBins = %v", m.MissingBins)
	}
	if !math.IsNaN(m.RelErrAvg) || !math.IsNaN(m.CosineDistance) {
		t.Error("error metrics should be NaN")
	}
	// Evaluate with nil result behaves identically.
	m2 := Evaluate(nil, gt, true)
	if !m2.TRViolated || m2.MissingBins != 1 {
		t.Error("Evaluate(nil) should equal Violated")
	}
}

func TestMissingBins(t *testing.T) {
	gt := mkResult(map[query.BinKey][]float64{
		{A: 0}: {10}, {A: 1}: {20}, {A: 2}: {30}, {A: 3}: {40},
	}, nil)
	res := mkResult(map[query.BinKey][]float64{
		{A: 0}: {10}, {A: 2}: {30},
	}, nil)
	m := Evaluate(res, gt, false)
	if m.MissingBins != 0.5 {
		t.Errorf("MissingBins = %v, want 0.5", m.MissingBins)
	}
	if m.BinsDelivered != 2 || m.BinsInGT != 4 {
		t.Error("bin counts wrong")
	}
}

func TestRelativeErrorAndBias(t *testing.T) {
	gt := mkResult(map[query.BinKey][]float64{
		{A: 0}: {100}, {A: 1}: {200},
	}, nil)
	res := mkResult(map[query.BinKey][]float64{
		{A: 0}: {110}, {A: 1}: {180},
	}, nil)
	m := Evaluate(res, gt, false)
	// Relative errors: 0.1 and 0.1 → mean 0.1.
	if math.Abs(m.RelErrAvg-0.1) > 1e-12 {
		t.Errorf("RelErrAvg = %v, want 0.1", m.RelErrAvg)
	}
	if m.RelErrStdev > 1e-12 {
		t.Errorf("RelErrStdev = %v, want 0", m.RelErrStdev)
	}
	// Bias: 290/300.
	if math.Abs(m.Bias-290.0/300.0) > 1e-12 {
		t.Errorf("Bias = %v", m.Bias)
	}
}

func TestRelErrorSkipsZeroTruth(t *testing.T) {
	gt := mkResult(map[query.BinKey][]float64{
		{A: 0}: {0}, {A: 1}: {100},
	}, nil)
	res := mkResult(map[query.BinKey][]float64{
		{A: 0}: {5}, {A: 1}: {100},
	}, nil)
	m := Evaluate(res, gt, false)
	if m.RelErrAvg != 0 {
		t.Errorf("RelErrAvg should skip A=0 bins: %v", m.RelErrAvg)
	}
	// SMAPE includes the zero bin: |5-0|/(5+0) = 1, second bin 0 → 0.5.
	if math.Abs(m.SMAPE-0.5) > 1e-12 {
		t.Errorf("SMAPE = %v, want 0.5", m.SMAPE)
	}
}

func TestCosineDistanceShape(t *testing.T) {
	gt := mkResult(map[query.BinKey][]float64{
		{A: 0}: {1}, {A: 1}: {2}, {A: 2}: {3},
	}, nil)
	// Same shape, scaled ×10 → cosine distance 0.
	res := mkResult(map[query.BinKey][]float64{
		{A: 0}: {10}, {A: 1}: {20}, {A: 2}: {30},
	}, nil)
	m := Evaluate(res, gt, false)
	if m.CosineDistance > 1e-9 {
		t.Errorf("scaled shape should have ~0 cosine distance, got %v", m.CosineDistance)
	}
	// Orthogonal shape.
	res2 := mkResult(map[query.BinKey][]float64{
		{A: 9}: {5},
	}, nil)
	m2 := Evaluate(res2, gt, false)
	if m2.CosineDistance < 0.99 {
		t.Errorf("disjoint bins should have cosine distance ~1, got %v", m2.CosineDistance)
	}
}

func TestCosineBothEmpty(t *testing.T) {
	m := Evaluate(query.NewResult(), query.NewResult(), false)
	if m.CosineDistance != 0 {
		t.Errorf("two empty results are identical shapes: %v", m.CosineDistance)
	}
	if m.MissingBins != 0 {
		t.Errorf("no gt bins → no missing bins: %v", m.MissingBins)
	}
}

func TestMargins(t *testing.T) {
	gt := mkResult(map[query.BinKey][]float64{
		{A: 0}: {100}, {A: 1}: {100},
	}, nil)
	res := mkResult(
		map[query.BinKey][]float64{{A: 0}: {105}, {A: 1}: {90}},
		map[query.BinKey][]float64{{A: 0}: {10}, {A: 1}: {5}},
	)
	m := Evaluate(res, gt, false)
	// Relative margins: 10/105 and 5/90.
	want := (10.0/105 + 5.0/90) / 2
	if math.Abs(m.MarginAvg-want) > 1e-12 {
		t.Errorf("MarginAvg = %v, want %v", m.MarginAvg, want)
	}
	// Bin 1: |90-100| = 10 > 5 → out of margin.
	if m.OutOfMargin != 1 {
		t.Errorf("OutOfMargin = %d, want 1", m.OutOfMargin)
	}
}

func TestExtraBinNotInGroundTruth(t *testing.T) {
	gt := mkResult(map[query.BinKey][]float64{{A: 0}: {10}}, nil)
	res := mkResult(map[query.BinKey][]float64{
		{A: 0}: {10}, {A: 5}: {3},
	}, nil)
	m := Evaluate(res, gt, false)
	if m.MissingBins != 0 {
		t.Error("delivered superset should have no missing bins")
	}
	// The phantom bin counts against SMAPE and out-of-margin.
	if m.SMAPE <= 0 {
		t.Error("phantom bin should hurt SMAPE")
	}
	if m.OutOfMargin != 1 {
		t.Errorf("phantom bin with zero margin should be out of margin: %d", m.OutOfMargin)
	}
}

func TestMultiAggregateElements(t *testing.T) {
	gt := mkResult(map[query.BinKey][]float64{{A: 0}: {100, 50}}, nil)
	res := mkResult(map[query.BinKey][]float64{{A: 0}: {110, 45}}, nil)
	m := Evaluate(res, gt, false)
	// Two elements: 0.1 and 0.1 → mean 0.1.
	if math.Abs(m.RelErrAvg-0.1) > 1e-12 {
		t.Errorf("RelErrAvg = %v", m.RelErrAvg)
	}
}

func TestMeanStdev(t *testing.T) {
	mean, sd := meanStdev(nil)
	if !math.IsNaN(mean) || !math.IsNaN(sd) {
		t.Error("empty input should be NaN")
	}
	mean, sd = meanStdev([]float64{5})
	if mean != 5 || sd != 0 {
		t.Error("single element wrong")
	}
	mean, sd = meanStdev([]float64{1, 3})
	if mean != 2 || math.Abs(sd-math.Sqrt2) > 1e-12 {
		t.Errorf("mean=%v sd=%v", mean, sd)
	}
}
