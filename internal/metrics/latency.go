package metrics

import (
	"math"
	"sort"
)

// Percentile returns the p-quantile (p in [0, 1]) of xs using linear
// interpolation between closest ranks, the method most load-testing tools
// report. NaN elements are skipped (a violated query's undefined error
// metrics must never poison a latency distribution); an empty or all-NaN
// input returns NaN. xs is not modified.
func Percentile(xs []float64, p float64) float64 {
	clean := make([]float64, 0, len(xs))
	for _, x := range xs {
		if !math.IsNaN(x) {
			clean = append(clean, x)
		}
	}
	sort.Float64s(clean)
	return PercentileSorted(clean, p)
}

// PercentileSorted is Percentile over an already NaN-free, sorted slice.
// Callers extracting several quantiles from one series (the overload and
// shard sweeps do, per cell) should sort once and use this instead of paying
// Percentile's filter + sort per quantile.
func PercentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// LatencySummary aggregates one group's query latencies (milliseconds) into
// the percentiles the user-scaling report shows.
type LatencySummary struct {
	Count int
	Mean  float64
	P50   float64
	P95   float64
	P99   float64
	// P999 is the p99.9 tail the overload experiments report: at open-loop
	// arrival rates, one late query in a thousand is exactly the event
	// admission control exists to bound.
	P999 float64
	Max  float64
}

// SummarizeLatencies computes the latency summary of ms. NaN entries are
// skipped; an empty input yields a zero Count with NaN statistics. The
// input is filtered and sorted once, shared by all three percentiles.
func SummarizeLatencies(ms []float64) LatencySummary {
	clean := make([]float64, 0, len(ms))
	sum := 0.0
	for _, x := range ms {
		if math.IsNaN(x) {
			continue
		}
		clean = append(clean, x)
		sum += x
	}
	sort.Float64s(clean)
	s := LatencySummary{
		Count: len(clean),
		P50:   PercentileSorted(clean, 0.50),
		P95:   PercentileSorted(clean, 0.95),
		P99:   PercentileSorted(clean, 0.99),
		P999:  PercentileSorted(clean, 0.999),
	}
	if s.Count == 0 {
		s.Mean = math.NaN()
		s.Max = math.NaN()
		return s
	}
	s.Mean = sum / float64(s.Count)
	s.Max = clean[len(clean)-1]
	return s
}
