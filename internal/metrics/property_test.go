package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"idebench/internal/query"
)

// randomResult builds a result with n bins and one aggregate.
func randomResult(rng *rand.Rand, n int, margins bool) *query.Result {
	r := query.NewResult()
	for i := 0; i < n; i++ {
		k := query.BinKey{A: rng.Int63n(50), B: rng.Int63n(3)}
		bv := &query.BinValue{
			Values:  []float64{rng.NormFloat64() * 100},
			Margins: []float64{0},
		}
		if margins {
			bv.Margins[0] = rng.Float64() * 20
		}
		r.Bins[k] = bv
	}
	return r
}

// Property: metric bounds hold for arbitrary result/ground-truth pairs.
func TestMetricBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		res := randomResult(rng, rng.Intn(30), true)
		gt := randomResult(rng, rng.Intn(30), false)
		m := Evaluate(res, gt, false)

		if m.MissingBins < 0 || m.MissingBins > 1 {
			return false
		}
		if !math.IsNaN(m.SMAPE) && (m.SMAPE < 0 || m.SMAPE > 1+1e-12) {
			return false
		}
		if !math.IsNaN(m.CosineDistance) && (m.CosineDistance < 0 || m.CosineDistance > 2+1e-12) {
			return false
		}
		if !math.IsNaN(m.RelErrAvg) && m.RelErrAvg < 0 {
			return false
		}
		if m.OutOfMargin < 0 || m.OutOfMargin > len(res.Bins) {
			return false
		}
		if m.BinsDelivered != len(res.Bins) || m.BinsInGT != len(gt.Bins) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: evaluating a result against itself is perfect.
func TestSelfEvaluationPerfectProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		gt := randomResult(rng, 1+rng.Intn(30), false)
		m := Evaluate(gt.Clone(), gt, false)
		if m.MissingBins != 0 {
			return false
		}
		if !math.IsNaN(m.RelErrAvg) && m.RelErrAvg > 1e-12 {
			return false
		}
		if !math.IsNaN(m.SMAPE) && m.SMAPE > 1e-12 {
			return false
		}
		return m.CosineDistance < 1e-9 && m.OutOfMargin == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: removing bins from the delivered result increases (or keeps)
// missing bins, never decreases it.
func TestMissingBinsMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		gt := randomResult(rng, 5+rng.Intn(20), false)
		full := gt.Clone()
		partial := gt.Clone()
		// Drop a random subset from partial.
		for k := range partial.Bins {
			if rng.Float64() < 0.5 {
				delete(partial.Bins, k)
			}
		}
		mFull := Evaluate(full, gt, false)
		mPartial := Evaluate(partial, gt, false)
		return mPartial.MissingBins >= mFull.MissingBins-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: scaling the delivered values scales bias linearly.
func TestBiasScalesProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		gt := randomResult(rng, 3+rng.Intn(10), false)
		scaled := gt.Clone()
		factor := 0.5 + rng.Float64()
		var gtSum float64
		for _, bv := range scaled.Bins {
			gtSum += bv.Values[0]
			bv.Values[0] *= factor
		}
		if math.Abs(gtSum) < 1e-6 {
			return true // bias undefined near zero totals
		}
		m := Evaluate(scaled, gt, false)
		return math.Abs(m.Bias-factor) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
