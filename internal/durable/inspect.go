package durable

import (
	"fmt"
	"io"
	"path/filepath"
)

// Inspect prints a data directory's manifest contents and verifies every
// checksum offline: each checkpoint's segments against the manifest (size,
// CRC-32, aggregate SHA-256) and every WAL record's CRC and version chain.
// It returns an error when the newest checkpoint fails verification or the
// directory holds no checkpoint at all; older corrupt checkpoints and a
// torn WAL tail (expected after a crash, repaired by the next recovery)
// are reported but non-fatal.
func Inspect(dir string, fs FS, w io.Writer) error {
	if fs == nil {
		fs = OSFS{}
	}
	ckptRoot := filepath.Join(dir, "checkpoints")
	versions, err := listCheckpoints(fs, ckptRoot)
	if err != nil {
		return fmt.Errorf("durable: inspect: %w", err)
	}
	if len(versions) == 0 {
		return fmt.Errorf("durable: inspect: no checkpoints in %s", dir)
	}
	var newestErr error
	for i, v := range versions {
		cdir := filepath.Join(ckptRoot, checkpointDirName(v))
		fmt.Fprintf(w, "checkpoint %s\n", checkpointDirName(v))
		m, err := readManifest(fs, cdir)
		if err == nil {
			fmt.Fprintf(w, "  engine=%s seed=%d base_rows=%d version=%d format=%d\n",
				m.Engine, m.Seed, m.BaseRows, m.Version, m.Format)
			for _, mf := range m.Files {
				fmt.Fprintf(w, "  %-12s role=%-11s bytes=%-10d crc32=%08x", mf.Name, mf.Role, mf.Bytes, mf.CRC32)
				if mf.FKColumn != "" {
					fmt.Fprintf(w, " fk=%s", mf.FKColumn)
				}
				fmt.Fprintln(w)
			}
			fmt.Fprintf(w, "  content_sha256=%s\n", m.ContentSHA256)
		}
		// Full verification (reads + decodes every segment).
		if _, err = loadCheckpoint(fs, cdir); err != nil {
			fmt.Fprintf(w, "  VERIFY FAILED: %v\n", err)
			if i == len(versions)-1 {
				newestErr = err
			}
		} else {
			fmt.Fprintf(w, "  verify: all checksums OK\n")
		}
	}

	walDir := filepath.Join(dir, "wal")
	names, err := fs.ReadDir(walDir)
	if err != nil {
		names = nil
	}
	for _, name := range names {
		start, ok := parseSegmentName(name)
		if !ok {
			continue
		}
		data, err := fs.ReadFile(filepath.Join(walDir, name))
		if err != nil {
			fmt.Fprintf(w, "wal %s: read failed: %v\n", name, err)
			continue
		}
		version := start
		records := 0
		var torn error
		for off := 0; off < len(data); {
			body, next, err := nextWALRecord(data, off)
			if err != nil {
				torn = fmt.Errorf("torn/corrupt record at byte %d", off)
				break
			}
			rec, err := DecodeWALBody(body)
			if err != nil {
				torn = err
				break
			}
			if rec.PrevVersion != version {
				torn = fmt.Errorf("version chain broken at byte %d: record says %d, chain says %d", off, rec.PrevVersion, version)
				break
			}
			version += int64(rec.Batch.NumRows())
			records++
			off = next
		}
		fmt.Fprintf(w, "wal %s: %d records, versions %d..%d, %d bytes", name, records, start, version, len(data))
		if torn != nil {
			fmt.Fprintf(w, " [tail not committed: %v]", torn)
		}
		fmt.Fprintln(w)
	}
	if newestErr != nil {
		return fmt.Errorf("durable: inspect: newest checkpoint failed verification: %w", newestErr)
	}
	return nil
}
