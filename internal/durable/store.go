package durable

import (
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"idebench/internal/dataset"
	"idebench/internal/ingest"
)

// Meta identifies what a data directory holds. It is stamped into every
// checkpoint manifest and verified on recovery, so a data directory can
// never be silently reused across a different engine, dataset seed or base
// size — the replayed WAL would be nonsense against the wrong base.
type Meta struct {
	Engine   string
	Seed     int64
	BaseRows int64
}

// Options configures a Store.
type Options struct {
	// FS is the filesystem; nil means the real one. The crash wall swaps
	// in a FaultFS here.
	FS FS
	// SegmentBytes is the WAL rotation threshold (DefaultSegmentBytes if 0).
	SegmentBytes int64
	// Keep is how many committed checkpoints to retain (default 2: the
	// newest plus the fallback recovery uses if the newest is corrupt).
	Keep int
	// Meta identifies the dataset; required.
	Meta Meta
}

// RecoveryInfo summarizes what Recover found; surfaced on /healthz and by
// the serve banner.
type RecoveryInfo struct {
	// Recovered is true when a checkpoint was loaded (warm start).
	Recovered bool
	// FellBack is true when the newest checkpoint failed verification and
	// an older one was used.
	FellBack          bool
	CheckpointVersion int64
	ReplayedBatches   int
	ReplayedRows      int64
	// TruncatedTail is true when a torn or corrupt WAL tail was cut off.
	TruncatedTail bool
	// Watermark is the recovered data version: checkpoint + replayed WAL.
	Watermark int64
}

// Status is a point-in-time view of the durable state, for /healthz and
// the offline inspector.
type Status struct {
	RecoveryInfo
	WALBytes              int64
	Checkpoints           int
	LastCheckpointVersion int64
	LastCheckpointBytes   int64
}

// Recovery is the result of Store.Recover: the checkpoint to prepare from
// (nil on a fresh directory) and the WAL batches to replay through the
// engine, in commit order.
type Recovery struct {
	Checkpoint *Checkpoint
	Batches    []*ingest.Batch
	Info       RecoveryInfo
}

// Store owns one data directory: its committed checkpoints and its WAL.
// LogBatch is safe for concurrent use with Checkpoint; the serving path
// logs batches on the ingest path while a background goroutine
// checkpoints.
type Store struct {
	fs       FS
	dir      string
	walDir   string
	ckptRoot string
	segBytes int64
	keep     int
	meta     Meta

	mu   sync.Mutex // guards wal and WAL-file pruning
	wal  *wal
	info RecoveryInfo

	ckptMu        sync.Mutex // serializes checkpoint writes
	statMu        sync.Mutex
	lastCkptVer   int64
	lastCkptBytes int64
}

// Open prepares a store over dir, creating the layout if absent. It does
// not read any state; call Recover (or Bootstrap on a fresh directory)
// before logging batches.
func Open(dir string, o Options) (*Store, error) {
	if o.FS == nil {
		o.FS = OSFS{}
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	if o.Keep <= 0 {
		o.Keep = 2
	}
	if o.Meta.Engine == "" {
		return nil, fmt.Errorf("durable: open: missing engine in meta")
	}
	s := &Store{
		fs:       o.FS,
		dir:      dir,
		walDir:   filepath.Join(dir, "wal"),
		ckptRoot: filepath.Join(dir, "checkpoints"),
		segBytes: o.SegmentBytes,
		keep:     o.Keep,
		meta:     o.Meta,
	}
	for _, d := range []string{dir, s.walDir, s.ckptRoot} {
		if err := s.fs.MkdirAll(d); err != nil {
			return nil, fmt.Errorf("durable: open: %w", err)
		}
	}
	return s, nil
}

// Recover loads the newest fully-verifying checkpoint (falling back to an
// older one when the newest is corrupt), scans the WAL — truncating any
// torn tail — and returns the batches past the checkpoint version for the
// caller to replay through the engine. It leaves the store positioned to
// append at the recovered watermark. On a fresh directory it returns a
// Recovery with a nil Checkpoint; the caller builds cold and calls
// Bootstrap.
func (s *Store) Recover() (*Recovery, error) {
	versions, err := listCheckpoints(s.fs, s.ckptRoot)
	if err != nil {
		return nil, fmt.Errorf("durable: recover: %w", err)
	}
	var ck *Checkpoint
	var loadErr error
	fellBack := false
	for i := len(versions) - 1; i >= 0; i-- {
		c, err := loadCheckpoint(s.fs, filepath.Join(s.ckptRoot, checkpointDirName(versions[i])))
		if err != nil {
			loadErr = err
			fellBack = true // anything older that loads was not the newest
			continue
		}
		ck = c
		break
	}
	if ck == nil {
		if len(versions) > 0 {
			return nil, fmt.Errorf("durable: recover: no checkpoint verifies (last error: %w)", loadErr)
		}
		// Fresh directory. A WAL without any checkpoint has no base to
		// replay onto; refuse rather than guess.
		names, err := s.fs.ReadDir(s.walDir)
		if err != nil {
			return nil, fmt.Errorf("durable: recover: %w", err)
		}
		for _, n := range names {
			if _, ok := parseSegmentName(n); ok {
				return nil, fmt.Errorf("durable: recover: wal segments exist but no checkpoint does; refusing to guess a base")
			}
		}
		return &Recovery{}, nil
	}
	if ck.Manifest.Engine != s.meta.Engine || ck.Manifest.Seed != s.meta.Seed || ck.Manifest.BaseRows != s.meta.BaseRows {
		return nil, fmt.Errorf("durable: recover: data dir holds engine=%s seed=%d base=%d, serve asked for engine=%s seed=%d base=%d",
			ck.Manifest.Engine, ck.Manifest.Seed, ck.Manifest.BaseRows, s.meta.Engine, s.meta.Seed, s.meta.BaseRows)
	}

	scan, err := recoverWAL(s.fs, s.walDir, ck.Version())
	if err != nil {
		return nil, err
	}
	rec := &Recovery{Checkpoint: ck}
	var rows int64
	for _, r := range scan.records {
		rec.Batches = append(rec.Batches, r.Batch)
		rows += int64(r.Batch.NumRows())
	}
	rec.Info = RecoveryInfo{
		Recovered:         true,
		FellBack:          fellBack,
		CheckpointVersion: ck.Version(),
		ReplayedBatches:   len(rec.Batches),
		ReplayedRows:      rows,
		TruncatedTail:     scan.truncated,
		Watermark:         scan.endVersion,
	}

	w, err := openWAL(s.fs, s.walDir, scan.endVersion, s.segBytes)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.wal = w
	s.info = rec.Info
	s.mu.Unlock()
	s.statMu.Lock()
	s.lastCkptVer = ck.Version()
	s.statMu.Unlock()
	return rec, nil
}

// Bootstrap initializes a fresh data directory from a cold-prepared
// engine: it writes the initial checkpoint (the base database in the
// engine's prepared order) and opens the WAL at its version.
func (s *Store) Bootstrap(db *dataset.Database, perm []uint32) error {
	if err := s.Checkpoint(db, perm); err != nil {
		return err
	}
	w, err := openWAL(s.fs, s.walDir, int64(db.Fact.NumRows()), s.segBytes)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.wal = w
	s.mu.Unlock()
	return nil
}

// LogBatch appends one validated ingest batch to the WAL and fsyncs it.
// On error the batch is not durable and the caller must not apply it.
func (s *Store) LogBatch(b *ingest.Batch) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return fmt.Errorf("durable: log batch: store not recovered")
	}
	body, err := encodeWALBody(s.wal.version, b)
	if err != nil {
		return err
	}
	_, err = s.wal.append(appendWALRecord(nil, body), int64(b.NumRows()))
	return err
}

// Watermark returns the version after the last durably logged batch.
func (s *Store) Watermark() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return 0
	}
	return s.wal.version
}

// Checkpoint writes a checkpoint of the given immutable view (safe to call
// while LogBatch runs: views are copy-on-write) and then prunes — old
// checkpoints beyond the retention count, and WAL segments wholly covered
// by the oldest retained checkpoint.
func (s *Store) Checkpoint(db *dataset.Database, perm []uint32) error {
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	version := int64(db.Fact.NumRows())
	s.statMu.Lock()
	last := s.lastCkptVer
	s.statMu.Unlock()
	if version == last {
		return nil // nothing new to capture
	}
	bytes, err := writeCheckpoint(s.fs, s.ckptRoot, s.meta, db, perm)
	if err != nil {
		return err
	}
	s.statMu.Lock()
	s.lastCkptVer = version
	s.lastCkptBytes = bytes
	s.statMu.Unlock()
	s.prune()
	return nil
}

// prune drops checkpoints beyond the retention count and WAL segments
// every retained checkpoint already covers. Failures are ignored: pruning
// is space reclamation, never correctness.
func (s *Store) prune() {
	versions, err := listCheckpoints(s.fs, s.ckptRoot)
	if err != nil {
		return
	}
	for len(versions) > s.keep {
		_ = s.fs.RemoveAll(filepath.Join(s.ckptRoot, checkpointDirName(versions[0])))
		versions = versions[1:]
	}
	if len(versions) == 0 {
		return
	}
	floor := versions[0] // oldest retained checkpoint
	s.mu.Lock()
	defer s.mu.Unlock()
	names, err := s.fs.ReadDir(s.walDir)
	if err != nil {
		return
	}
	type seg struct {
		name  string
		start int64
	}
	var segs []seg
	for _, n := range names {
		if v, ok := parseSegmentName(n); ok {
			segs = append(segs, seg{n, v})
		}
	}
	// A segment is prunable when the NEXT segment starts at or below the
	// floor (its own records then all end at or below it). The last
	// segment is the active one and always stays.
	for i := 0; i+1 < len(segs); i++ {
		if segs[i+1].start <= floor {
			_ = s.fs.Remove(filepath.Join(s.walDir, segs[i].name))
		}
	}
}

// Info returns what recovery found.
func (s *Store) Info() RecoveryInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.info
}

// Status reports the current durable state.
func (s *Store) Status() Status {
	var st Status
	st.RecoveryInfo = s.Info()
	if names, err := s.fs.ReadDir(s.walDir); err == nil {
		for _, n := range names {
			if _, ok := parseSegmentName(n); ok {
				if sz, err := s.fs.Size(filepath.Join(s.walDir, n)); err == nil {
					st.WALBytes += sz
				}
			}
		}
	}
	if versions, err := listCheckpoints(s.fs, s.ckptRoot); err == nil {
		st.Checkpoints = len(versions)
	}
	s.statMu.Lock()
	st.LastCheckpointVersion = s.lastCkptVer
	st.LastCheckpointBytes = s.lastCkptBytes
	s.statMu.Unlock()
	return st
}

// Flush fsyncs the active WAL segment. Every LogBatch already fsyncs, so
// this only matters as the drain barrier before exit.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return nil
	}
	return s.wal.sync()
}

// Close flushes and closes the WAL.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return nil
	}
	return s.wal.close()
}

// AutoCheckpoint starts a background goroutine that checkpoints whenever
// the WAL since the last checkpoint exceeds walLimit bytes, polling every
// interval. snap must return the engine's current immutable view (the
// ViewSnapshotter capability); onErr receives checkpoint failures (which
// leave the previous checkpoint serving — durability degrades to a longer
// replay, never to data loss). The returned stop function blocks until the
// goroutine exits.
func (s *Store) AutoCheckpoint(interval time.Duration, walLimit int64, snap func() (*dataset.Database, []uint32), onErr func(error)) (stop func()) {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	if walLimit <= 0 {
		walLimit = 8 << 20
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
			}
			// Total WAL size approximates "bytes since last checkpoint":
			// pruning after each checkpoint removes covered segments.
			if s.Status().WALBytes < walLimit {
				continue
			}
			db, perm := snap()
			if db == nil {
				continue
			}
			if err := s.Checkpoint(db, perm); err != nil && onErr != nil {
				onErr(err)
			}
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}
