package durable_test

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"

	"idebench/internal/durable"
	"idebench/internal/ingest"
)

// FuzzWALRecord fuzzes the WAL record layer end to end: framing and body
// decode must never panic on arbitrary bytes, any body that decodes must
// round-trip to an identical record (decode→encode→decode is identity),
// and a frame whose CRC does not match must be rejected. Seeds are real
// framed records from the datagen-backed source — the same corpus shape
// FuzzIngestRecord starts from — plus adversarial frames.
func FuzzWALRecord(f *testing.F) {
	src, err := ingest.NewSource(2000, 7)
	if err != nil {
		f.Fatal(err)
	}
	version := int64(120000)
	for i := 0; i < 4; i++ {
		b, err := src.Next(3 + i*5)
		if err != nil {
			f.Fatal(err)
		}
		rec, err := durable.EncodeWALRecord(version, b)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(rec)
		version += int64(b.NumRows())
	}
	// Adversarial frames: empty, header-only, length lies (too long, too
	// short, huge), CRC of nothing, valid CRC over junk bodies.
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Add(binary.LittleEndian.AppendUint32([]byte{0xFF, 0xFF, 0xFF, 0x7F}, 0))
	junk := []byte("\x00\x00\x00\x00\x00\x00\x00\x00not json at all")
	frame := binary.LittleEndian.AppendUint32(nil, uint32(len(junk)))
	frame = binary.LittleEndian.AppendUint32(frame, crc32.ChecksumIEEE(junk))
	f.Add(append(frame, junk...))

	f.Fuzz(func(t *testing.T, data []byte) {
		// The body decoder must survive raw bytes directly (recovery hands
		// it CRC-verified bodies, but the fuzz contract is unconditional).
		if rec, err := durable.DecodeWALBody(data); err == nil {
			reEnc, err := durable.EncodeWALRecord(rec.PrevVersion, rec.Batch)
			if err != nil {
				t.Fatalf("accepted record failed to encode: %v", err)
			}
			again, err := durable.DecodeWALBody(reEnc[8:])
			if err != nil {
				t.Fatalf("round-trip decode failed: %v", err)
			}
			if again.PrevVersion != rec.PrevVersion {
				t.Fatalf("round trip changed version: %d -> %d", rec.PrevVersion, again.PrevVersion)
			}
			a, _ := rec.Batch.Encode()
			b, _ := again.Batch.Encode()
			if !bytes.Equal(a, b) {
				t.Fatalf("round trip changed the batch:\n was: %s\n now: %s", a, b)
			}
		}
	})
}
