package durable

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

type testEvent struct {
	N int    `json:"n"`
	S string `json:"s,omitempty"`
}

func appendEvents(t *testing.T, l *StateLog, from, to int) {
	t.Helper()
	for i := from; i < to; i++ {
		if err := l.Append("ev", testEvent{N: i}); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
}

func decodeEvents(t *testing.T, recs []StateRecord) []testEvent {
	t.Helper()
	out := make([]testEvent, 0, len(recs))
	for i, rec := range recs {
		if rec.Kind != "ev" {
			t.Fatalf("record %d: kind %q, want ev", i, rec.Kind)
		}
		var ev testEvent
		if err := json.Unmarshal(rec.Payload, &ev); err != nil {
			t.Fatalf("record %d payload: %v", i, err)
		}
		out = append(out, ev)
	}
	return out
}

func TestStateLogRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenStateLog(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(l.Records()); got != 0 {
		t.Fatalf("fresh log has %d records", got)
	}
	appendEvents(t, l, 0, 10)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := OpenStateLog(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	evs := decodeEvents(t, l2.Records())
	if len(evs) != 10 {
		t.Fatalf("recovered %d records, want 10", len(evs))
	}
	for i, ev := range evs {
		if ev.N != i {
			t.Fatalf("record %d: N=%d", i, ev.N)
		}
	}
	// Appending after recovery must extend, not clobber.
	appendEvents(t, l2, 10, 12)
	l2.Close()
	l3, err := OpenStateLog(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	if got := len(l3.Records()); got != 12 {
		t.Fatalf("after extend: %d records, want 12", got)
	}
}

func TestStateLogTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenStateLog(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	appendEvents(t, l, 0, 5)
	l.Close()

	// Simulate a mid-write crash: append garbage half-frame bytes.
	path := filepath.Join(dir, stateLogFile)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xff, 0x01, 0x02}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Read-only view reports the tear, keeps the file intact.
	recs, torn, err := ReadStateLog(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !torn {
		t.Fatal("ReadStateLog did not report the torn tail")
	}
	if len(recs) != 5 {
		t.Fatalf("ReadStateLog: %d records, want 5", len(recs))
	}
	if sz, _ := (OSFS{}).Size(path); sz == 0 {
		t.Fatal("read-only view emptied the file")
	}

	// Owning open truncates the tear and appends cleanly after it.
	l2, err := OpenStateLog(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(l2.Records()); got != 5 {
		t.Fatalf("recovered %d records, want 5", got)
	}
	appendEvents(t, l2, 5, 6)
	l2.Close()
	recs, torn, err = ReadStateLog(dir, nil)
	if err != nil || torn {
		t.Fatalf("after repair: torn=%v err=%v", torn, err)
	}
	if len(recs) != 6 {
		t.Fatalf("after repair: %d records, want 6", len(recs))
	}
}

func TestStateLogCompact(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenStateLog(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	appendEvents(t, l, 0, 20)
	snap, err := json.Marshal(testEvent{N: 99, S: "snapshot"})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Compact(StateRecord{Kind: "ev", Payload: snap}); err != nil {
		t.Fatal(err)
	}
	// Appends after a compaction extend the compacted log.
	appendEvents(t, l, 100, 101)
	l.Close()

	l2, err := OpenStateLog(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	evs := decodeEvents(t, l2.Records())
	if len(evs) != 2 || evs[0].N != 99 || evs[0].S != "snapshot" || evs[1].N != 100 {
		t.Fatalf("after compact: %+v", evs)
	}
}

func TestStateLogFailedAppendRollsBack(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OSFS{})
	l, err := OpenStateLog(dir, ffs)
	if err != nil {
		t.Fatal(err)
	}
	appendEvents(t, l, 0, 3)

	// Arm ENOSPC so the next append lands short; the log must roll it back.
	ffs.SetWriteBudget(4)
	if err := l.Append("ev", testEvent{N: 3}); err == nil {
		t.Fatal("append past the write budget succeeded")
	}
	ffs.SetWriteBudget(-1)

	// The next append goes through and recovery sees no half record.
	appendEvents(t, l, 3, 4)
	l.Close()
	l2, err := OpenStateLog(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	evs := decodeEvents(t, l2.Records())
	if len(evs) != 4 {
		t.Fatalf("recovered %d records, want 4", len(evs))
	}
	for i, ev := range evs {
		if ev.N != i {
			t.Fatalf("record %d: N=%d", i, ev.N)
		}
	}
}

func TestStateLogFailedSyncNotCommitted(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OSFS{})
	l, err := OpenStateLog(dir, ffs)
	if err != nil {
		t.Fatal(err)
	}
	appendEvents(t, l, 0, 2)
	ffs.FailNextSyncs(1)
	if err := l.Append("ev", testEvent{N: 2}); err == nil {
		t.Fatal("append with failing fsync succeeded")
	}
	appendEvents(t, l, 2, 3)
	l.Close()
	l2, err := OpenStateLog(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	evs := decodeEvents(t, l2.Records())
	if len(evs) != 3 {
		t.Fatalf("recovered %d records, want 3", len(evs))
	}
}

func TestStateLogCompactFailureKeepsOld(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OSFS{})
	l, err := OpenStateLog(dir, ffs)
	if err != nil {
		t.Fatal(err)
	}
	appendEvents(t, l, 0, 5)
	ffs.FailNextRenames(1)
	snap, _ := json.Marshal(testEvent{N: 99})
	if err := l.Compact(StateRecord{Kind: "ev", Payload: snap}); err == nil {
		t.Fatal("compact with failing rename succeeded")
	}
	l.Close()
	l2, err := OpenStateLog(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := len(l2.Records()); got != 5 {
		t.Fatalf("old log lost: %d records, want 5", got)
	}
}
