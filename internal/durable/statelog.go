package durable

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"sync"
)

// StateLog is an append-only control-plane journal: a single CRC-framed file
// of small JSON records, reusing the WAL's frame (u32 len | u32 CRC | body)
// so it inherits the torn-tail story — a mid-write crash leaves a frame the
// scanner rejects, and opening the log truncates at the last valid record.
// It persists state that changes rarely but must survive the process
// (topology membership, version-log steps), as opposed to the ingest WAL,
// which persists the data itself.
//
// Record kinds and payloads are opaque to this package: the owner defines
// them, which keeps durable free of upward imports. Appends are fsynced
// before returning — a StateLog append that returned nil happened.
//
// Exactly one process may append to a state log at a time; ReadStateLog is
// the read-only view for an observer (a warm standby tailing the primary's
// journal), which tolerates a torn tail without truncating the file the
// writer still owns.
type StateLog struct {
	fs   FS
	path string

	mu     sync.Mutex
	f      File
	size   int64
	broken error
	recs   []StateRecord // records recovered at open; not extended by Append
}

// StateRecord is one journal entry: a kind tag and an owner-defined payload.
type StateRecord struct {
	Kind    string          `json:"kind"`
	Payload json.RawMessage `json:"payload,omitempty"`
}

// stateLogFile is the journal's file name inside its directory.
const stateLogFile = "state.log"

// OpenStateLog opens (creating if absent) the state log in dir, scanning
// existing records and truncating any torn tail. The recovered records are
// available via Records until Close.
func OpenStateLog(dir string, fs FS) (*StateLog, error) {
	if fs == nil {
		fs = OSFS{}
	}
	if err := fs.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("durable: state log dir: %w", err)
	}
	path := filepath.Join(dir, stateLogFile)
	recs, valid, err := scanStateLog(fs, path)
	if err != nil {
		return nil, err
	}
	if size, serr := fs.Size(path); serr == nil && size > valid {
		// Torn tail from a mid-write crash: cut it so the next append starts
		// at a clean frame boundary.
		if terr := fs.Truncate(path, valid); terr != nil {
			return nil, fmt.Errorf("durable: truncate torn state log tail: %w", terr)
		}
	}
	return &StateLog{fs: fs, path: path, size: valid, recs: recs}, nil
}

// scanStateLog reads every valid record of the log at path, returning them
// with the byte offset where valid data ends. A missing file is an empty
// log.
func scanStateLog(fs FS, path string) ([]StateRecord, int64, error) {
	data, err := fs.ReadFile(path)
	if err != nil {
		// Missing is the common first-boot case; any other read error will
		// resurface on the first append.
		return nil, 0, nil
	}
	var recs []StateRecord
	off := 0
	for off < len(data) {
		body, next, err := nextWALRecord(data, off)
		if err != nil {
			break // torn or corrupt: valid data ends here
		}
		var rec StateRecord
		if err := json.Unmarshal(body, &rec); err != nil || rec.Kind == "" {
			break // framed but unparseable: treat like a torn tail
		}
		recs = append(recs, rec)
		off = next
	}
	return recs, int64(off), nil
}

// Records returns the records recovered when the log was opened, oldest
// first. The slice is the log's own; callers must not mutate it.
func (l *StateLog) Records() []StateRecord { return l.recs }

// Append marshals payload under kind, frames it, writes and fsyncs. A short
// write is rolled back by truncation; if the rollback itself fails the log
// is marked broken and every later append fails — state must never be acked
// off a journal in an unknown state.
func (l *StateLog) Append(kind string, payload any) error {
	if kind == "" {
		return fmt.Errorf("durable: state log record needs a kind")
	}
	raw, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("durable: encode state payload: %w", err)
	}
	body, err := json.Marshal(StateRecord{Kind: kind, Payload: raw})
	if err != nil {
		return fmt.Errorf("durable: encode state record: %w", err)
	}
	frame := appendWALRecord(nil, body)

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.broken != nil {
		return fmt.Errorf("durable: state log broken: %w", l.broken)
	}
	if err := l.ensureOpen(); err != nil {
		return err
	}
	if _, werr := l.f.Write(frame); werr != nil {
		l.rollback(werr)
		return fmt.Errorf("durable: state log append: %w", werr)
	}
	if serr := l.f.Sync(); serr != nil {
		l.rollback(serr)
		return fmt.Errorf("durable: state log sync: %w", serr)
	}
	l.size += int64(len(frame))
	return nil
}

// ensureOpen lazily opens the append handle. Callers hold l.mu.
func (l *StateLog) ensureOpen() error {
	if l.f != nil {
		return nil
	}
	if l.size == 0 {
		f, err := l.fs.Create(l.path)
		if err != nil {
			return fmt.Errorf("durable: create state log: %w", err)
		}
		l.f = f
		return nil
	}
	f, err := l.fs.OpenAppend(l.path)
	if err != nil {
		return fmt.Errorf("durable: open state log: %w", err)
	}
	l.f = f
	return nil
}

// rollback truncates a failed append back to the last committed size.
// Callers hold l.mu.
func (l *StateLog) rollback(cause error) {
	if l.f != nil {
		l.f.Close()
		l.f = nil
	}
	if err := l.fs.Truncate(l.path, l.size); err != nil {
		// Unknown on-disk state: refuse all further appends.
		l.broken = fmt.Errorf("rollback after %v: %w", cause, err)
	}
}

// Compact atomically replaces the whole log with the given records (usually
// one full-state snapshot): write to a temp file, fsync, rename into place,
// fsync the directory. On any failure the existing log is untouched.
func (l *StateLog) Compact(recs ...StateRecord) error {
	var data []byte
	for _, rec := range recs {
		if rec.Kind == "" {
			return fmt.Errorf("durable: state log record needs a kind")
		}
		body, err := json.Marshal(rec)
		if err != nil {
			return fmt.Errorf("durable: encode state record: %w", err)
		}
		data = appendWALRecord(data, body)
	}

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.broken != nil {
		return fmt.Errorf("durable: state log broken: %w", l.broken)
	}
	tmp := l.path + ".tmp"
	f, err := l.fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("durable: state log compact: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		l.fs.Remove(tmp)
		return fmt.Errorf("durable: state log compact: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		l.fs.Remove(tmp)
		return fmt.Errorf("durable: state log compact: %w", err)
	}
	if err := f.Close(); err != nil {
		l.fs.Remove(tmp)
		return fmt.Errorf("durable: state log compact: %w", err)
	}
	if l.f != nil {
		l.f.Close()
		l.f = nil
	}
	if err := l.fs.Rename(tmp, l.path); err != nil {
		return fmt.Errorf("durable: state log compact rename: %w", err)
	}
	if err := l.fs.SyncDir(filepath.Dir(l.path)); err != nil {
		return fmt.Errorf("durable: state log compact sync: %w", err)
	}
	l.size = int64(len(data))
	return nil
}

// Close releases the append handle. Records stays readable.
func (l *StateLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}

// ReadStateLog reads the state log in dir without taking ownership: every
// valid record is returned and a torn tail is reported, not truncated —
// the primary may be mid-append. A missing log is an empty journal.
func ReadStateLog(dir string, fs FS) (recs []StateRecord, torn bool, err error) {
	if fs == nil {
		fs = OSFS{}
	}
	path := filepath.Join(dir, stateLogFile)
	recs, valid, err := scanStateLog(fs, path)
	if err != nil {
		return nil, false, err
	}
	if size, serr := fs.Size(path); serr == nil && size > valid {
		torn = true
	}
	return recs, torn, nil
}
