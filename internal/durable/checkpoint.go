package durable

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"path/filepath"
	"strconv"
	"strings"

	"idebench/internal/dataset"
)

// FormatVersion is bumped whenever the checkpoint layout or the segment
// encoding changes incompatibly; loaders refuse other versions.
const FormatVersion = 1

// manifestName is the file written last inside a checkpoint directory — a
// directory without it is not a checkpoint.
const manifestName = "MANIFEST.json"

// File roles inside a checkpoint.
const (
	roleFact = "fact"
	roleDim  = "dimension"
	rolePerm = "permutation"
)

// ManifestFile describes one checkpoint segment.
type ManifestFile struct {
	Name  string `json:"name"`
	Role  string `json:"role"`
	Bytes int64  `json:"bytes"`
	CRC32 uint32 `json:"crc32"`
	// FKColumn is the fact-side foreign-key column for dimension segments.
	FKColumn string `json:"fk_column,omitempty"`
}

// Manifest is a checkpoint's self-description, written last and fsynced;
// its presence commits the checkpoint.
type Manifest struct {
	Format   int    `json:"format"`
	Engine   string `json:"engine"`
	Seed     int64  `json:"seed"`
	BaseRows int64  `json:"base_rows"`
	// Version is the fact-table row count — the data version / watermark
	// this checkpoint captures.
	Version int64          `json:"version"`
	Files   []ManifestFile `json:"files"`
	// ContentSHA256 digests every file's contents in Files order: the
	// whole-checkpoint identity the determinism test and the offline
	// inspector use.
	ContentSHA256 string `json:"content_sha256"`
}

// Checkpoint is a loaded, verified checkpoint.
type Checkpoint struct {
	Manifest Manifest
	DB       *dataset.Database
	// Perm is the sampling permutation the fact prefix is stored in; nil
	// for arrival-order engines.
	Perm []uint32
}

// Version returns the data version the checkpoint captures.
func (c *Checkpoint) Version() int64 { return c.Manifest.Version }

func checkpointDirName(v int64) string { return fmt.Sprintf("ckpt-%016d", v) }

func parseCheckpointDirName(name string) (int64, bool) {
	if !strings.HasPrefix(name, "ckpt-") {
		return 0, false
	}
	v, err := strconv.ParseInt(strings.TrimPrefix(name, "ckpt-"), 10, 64)
	if err != nil || v < 0 {
		return 0, false
	}
	return v, true
}

// permMagic frames the serialized sampling permutation.
var permMagic = []byte("IDBP1\x00")

func encodePerm(perm []uint32) []byte {
	buf := make([]byte, 0, len(permMagic)+8+4*len(perm))
	buf = append(buf, permMagic...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(perm)))
	for _, p := range perm {
		buf = binary.LittleEndian.AppendUint32(buf, p)
	}
	return buf
}

func decodePerm(data []byte) ([]uint32, error) {
	r := len(permMagic)
	if len(data) < r+8 || string(data[:r]) != string(permMagic) {
		return nil, fmt.Errorf("durable: permutation segment: bad header")
	}
	n := binary.LittleEndian.Uint64(data[r:])
	if uint64(len(data)-r-8) != n*4 {
		return nil, fmt.Errorf("durable: permutation segment: %d entries for %d payload bytes", n, len(data)-r-8)
	}
	perm := make([]uint32, n)
	for i := range perm {
		perm[i] = binary.LittleEndian.Uint32(data[r+8+4*i:])
	}
	return perm, nil
}

// writeCheckpoint writes one checkpoint atomically under root
// (<data-dir>/checkpoints) and returns the total segment bytes. Sequence:
// segments into a .tmp- directory, each fsynced; manifest last, fsynced;
// directory rename; parent fsync. Any failure removes the temp directory
// and leaves previously committed checkpoints untouched.
func writeCheckpoint(fs FS, root string, meta Meta, db *dataset.Database, perm []uint32) (int64, error) {
	version := int64(db.Fact.NumRows())
	tmp := filepath.Join(root, fmt.Sprintf(".tmp-%016d", version))
	final := filepath.Join(root, checkpointDirName(version))
	_ = fs.RemoveAll(tmp) // clobber litter from a crashed writer
	if err := fs.MkdirAll(tmp); err != nil {
		return 0, fmt.Errorf("durable: checkpoint: %w", err)
	}
	fail := func(err error) (int64, error) {
		_ = fs.RemoveAll(tmp)
		return 0, fmt.Errorf("durable: checkpoint: %w", err)
	}

	m := Manifest{
		Format:   FormatVersion,
		Engine:   meta.Engine,
		Seed:     meta.Seed,
		BaseRows: meta.BaseRows,
		Version:  version,
	}
	sha := sha256.New()
	var total int64
	writeSeg := func(name, role, fk string, data []byte) error {
		f, err := fs.Create(filepath.Join(tmp, name))
		if err != nil {
			return err
		}
		if _, err := f.Write(data); err != nil {
			_ = f.Close()
			return err
		}
		if err := f.Sync(); err != nil {
			_ = f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		sha.Write(data)
		total += int64(len(data))
		m.Files = append(m.Files, ManifestFile{
			Name: name, Role: role, Bytes: int64(len(data)),
			CRC32: crc32.ChecksumIEEE(data), FKColumn: fk,
		})
		return nil
	}

	if err := writeSeg("fact.seg", roleFact, "", dataset.EncodeTable(db.Fact)); err != nil {
		return fail(err)
	}
	for i, d := range db.Dimensions {
		name := fmt.Sprintf("dim-%02d.seg", i)
		if err := writeSeg(name, roleDim, d.FKColumn, dataset.EncodeTable(d.Table)); err != nil {
			return fail(err)
		}
	}
	if len(perm) > 0 {
		if err := writeSeg("perm.seg", rolePerm, "", encodePerm(perm)); err != nil {
			return fail(err)
		}
	}
	m.ContentSHA256 = hex.EncodeToString(sha.Sum(nil))

	mf, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return fail(err)
	}
	f, err := fs.Create(filepath.Join(tmp, manifestName))
	if err != nil {
		return fail(err)
	}
	if _, err := f.Write(append(mf, '\n')); err != nil {
		_ = f.Close()
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return fail(err)
	}
	if err := f.Close(); err != nil {
		return fail(err)
	}
	if err := fs.SyncDir(tmp); err != nil {
		return fail(err)
	}
	if err := fs.Rename(tmp, final); err != nil {
		return fail(err)
	}
	if err := fs.SyncDir(root); err != nil {
		return 0, fmt.Errorf("durable: checkpoint: %w", err)
	}
	return total, nil
}

// readManifest loads and sanity-checks a checkpoint's manifest.
func readManifest(fs FS, dir string) (Manifest, error) {
	var m Manifest
	data, err := fs.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return m, fmt.Errorf("durable: checkpoint manifest: %w", err)
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return m, fmt.Errorf("durable: checkpoint manifest: %w", err)
	}
	if m.Format != FormatVersion {
		return m, fmt.Errorf("durable: checkpoint format %d, this build reads %d", m.Format, FormatVersion)
	}
	return m, nil
}

// loadCheckpoint reads and fully verifies the checkpoint in dir: every
// listed file must exist with the manifested size, CRC and aggregate
// SHA-256, and decode cleanly. Anything less is an error — the caller
// falls back to an older checkpoint rather than serve partial state.
func loadCheckpoint(fs FS, dir string) (*Checkpoint, error) {
	m, err := readManifest(fs, dir)
	if err != nil {
		return nil, err
	}
	ck := &Checkpoint{Manifest: m}
	sha := sha256.New()
	var fact *dataset.Table
	var dims []*dataset.Dimension
	for _, mf := range m.Files {
		data, err := fs.ReadFile(filepath.Join(dir, mf.Name))
		if err != nil {
			return nil, fmt.Errorf("durable: checkpoint segment %s: %w", mf.Name, err)
		}
		if int64(len(data)) != mf.Bytes {
			return nil, fmt.Errorf("durable: checkpoint segment %s: %d bytes, manifest says %d", mf.Name, len(data), mf.Bytes)
		}
		if crc32.ChecksumIEEE(data) != mf.CRC32 {
			return nil, fmt.Errorf("durable: checkpoint segment %s: CRC mismatch", mf.Name)
		}
		sha.Write(data)
		switch mf.Role {
		case roleFact:
			if fact, err = dataset.DecodeTable(data); err != nil {
				return nil, err
			}
		case roleDim:
			t, err := dataset.DecodeTable(data)
			if err != nil {
				return nil, err
			}
			dims = append(dims, &dataset.Dimension{Table: t, FKColumn: mf.FKColumn})
		case rolePerm:
			if ck.Perm, err = decodePerm(data); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("durable: checkpoint segment %s: unknown role %q", mf.Name, mf.Role)
		}
	}
	if got := hex.EncodeToString(sha.Sum(nil)); got != m.ContentSHA256 {
		return nil, fmt.Errorf("durable: checkpoint content digest mismatch")
	}
	if fact == nil {
		return nil, fmt.Errorf("durable: checkpoint has no fact segment")
	}
	if int64(fact.NumRows()) != m.Version {
		return nil, fmt.Errorf("durable: checkpoint fact has %d rows, manifest version is %d", fact.NumRows(), m.Version)
	}
	if len(ck.Perm) > fact.NumRows() {
		return nil, fmt.Errorf("durable: checkpoint permutation has %d entries for %d rows", len(ck.Perm), fact.NumRows())
	}
	ck.DB = &dataset.Database{Fact: fact, Dimensions: dims}
	return ck, nil
}

// listCheckpoints returns committed checkpoint versions under root in
// ascending order, ignoring temp litter.
func listCheckpoints(fs FS, root string) ([]int64, error) {
	names, err := fs.ReadDir(root)
	if err != nil {
		return nil, err
	}
	var versions []int64
	for _, name := range names {
		if v, ok := parseCheckpointDirName(name); ok {
			versions = append(versions, v)
		}
	}
	return versions, nil // ReadDir sorts; zero-padded names sort numerically
}
