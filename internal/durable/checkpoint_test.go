package durable_test

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"idebench/internal/core"
	"idebench/internal/durable"
)

// readManifestSHA extracts the content digest of the single checkpoint in
// dir, plus a digest over the raw segment bytes computed independently of
// the manifest (catching a manifest that lies consistently).
func readManifestSHA(t *testing.T, dir string) (manifestSHA string, rawSHA [32]byte) {
	t.Helper()
	root := filepath.Join(dir, "checkpoints")
	ents, err := os.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	var ckpt string
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), "ckpt-") {
			if ckpt != "" {
				t.Fatalf("expected one checkpoint, found %s and %s", ckpt, e.Name())
			}
			ckpt = e.Name()
		}
	}
	if ckpt == "" {
		t.Fatal("no checkpoint written")
	}
	mf, err := os.ReadFile(filepath.Join(root, ckpt, "MANIFEST.json"))
	if err != nil {
		t.Fatal(err)
	}
	var m struct {
		ContentSHA256 string `json:"content_sha256"`
		Files         []struct {
			Name string `json:"name"`
		} `json:"files"`
	}
	if err := json.Unmarshal(mf, &m); err != nil {
		t.Fatal(err)
	}
	h := sha256.New()
	for _, f := range m.Files {
		data, err := os.ReadFile(filepath.Join(root, ckpt, f.Name))
		if err != nil {
			t.Fatal(err)
		}
		h.Write(data)
	}
	copy(rawSHA[:], h.Sum(nil))
	return m.ContentSHA256, rawSHA
}

// TestCheckpointDeterminism pins the byte-identity guarantee: two
// checkpoints of the same logical database — built twice from scratch, in
// separate directories — hash equal, both by the manifest's own digest and
// by an independent pass over the segment bytes. This is what makes a
// checkpoint's content digest a usable identity for the offline inspector
// and for replication-style comparisons.
func TestCheckpointDeterminism(t *testing.T) {
	shas := make([]string, 2)
	raws := make([][32]byte, 2)
	for i := range shas {
		dir := t.TempDir()
		// Re-derive the database from scratch each round: determinism must
		// hold across independent builds, not just repeated encodes of one
		// in-memory object.
		db, err := core.BuildData(testBaseRows, true, testSeed) // star schema: dims + FK columns too
		if err != nil {
			t.Fatal(err)
		}
		st := openTestStore(t, dir, durable.Options{})
		if err := st.Bootstrap(db, nil); err != nil {
			t.Fatal(err)
		}
		st.Close()
		shas[i], raws[i] = readManifestSHA(t, dir)
	}
	if shas[0] != shas[1] {
		t.Fatalf("checkpoints of the same logical database hash differently:\n %s\n %s", shas[0], shas[1])
	}
	if !bytes.Equal(raws[0][:], raws[1][:]) {
		t.Fatal("raw segment bytes differ between checkpoints of the same logical database")
	}
}

// TestCheckpointLoadRejectsTamper: any byte flip in any segment must fail
// verification (CRC or digest), and Inspect must flag it.
func TestCheckpointLoadRejectsTamper(t *testing.T) {
	dir := t.TempDir()
	db, err := core.BuildData(testBaseRows, true, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	st := openTestStore(t, dir, durable.Options{})
	if err := st.Bootstrap(db, nil); err != nil {
		t.Fatal(err)
	}
	st.Close()

	root := filepath.Join(dir, "checkpoints")
	ents, err := os.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(root, ents[0].Name(), "fact.seg")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	st2 := openTestStore(t, dir, durable.Options{})
	if _, err := st2.Recover(); err == nil || !strings.Contains(err.Error(), "CRC") {
		t.Fatalf("tampered checkpoint must fail CRC verification, got %v", err)
	}
	var out strings.Builder
	if err := durable.Inspect(dir, nil, &out); err == nil {
		t.Fatal("inspect must fail on a tampered newest checkpoint")
	}
	if !strings.Contains(out.String(), "VERIFY FAILED") {
		t.Fatalf("inspect output lacks verification failure:\n%s", out.String())
	}
}

// TestInspectCleanDirectory: a healthy directory inspects clean and the
// report covers both the checkpoint and the WAL.
func TestInspectCleanDirectory(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir, durable.Options{})
	if err := st.Bootstrap(testDB(t), nil); err != nil {
		t.Fatal(err)
	}
	for _, b := range testBatches(t, 2, 100) {
		if err := st.LogBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()

	var out strings.Builder
	if err := durable.Inspect(dir, nil, &out); err != nil {
		t.Fatalf("inspect: %v\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{"all checksums OK", "content_sha256=", "wal seg-", "2 records"} {
		if !strings.Contains(got, want) {
			t.Fatalf("inspect output missing %q:\n%s", want, got)
		}
	}
}
