package durable_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"idebench/internal/core"
	"idebench/internal/dataset"
	"idebench/internal/durable"
	"idebench/internal/ingest"
)

const (
	testSeed     = int64(42)
	testBaseRows = 3000
)

func testMeta() durable.Meta {
	return durable.Meta{Engine: "testeng", Seed: testSeed, BaseRows: testBaseRows}
}

func testDB(t testing.TB) *dataset.Database {
	t.Helper()
	db, err := core.BuildData(testBaseRows, false, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func testBatches(t testing.TB, n, rows int) []*ingest.Batch {
	t.Helper()
	src, err := ingest.NewSource(2000, testSeed+23)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]*ingest.Batch, n)
	for i := range out {
		if out[i], err = src.Next(rows); err != nil {
			t.Fatal(err)
		}
	}
	return out
}

func openTestStore(t testing.TB, dir string, o durable.Options) *durable.Store {
	t.Helper()
	if o.Meta == (durable.Meta{}) {
		o.Meta = testMeta()
	}
	st, err := durable.Open(dir, o)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// growDB appends batches to db's fact lineage the way the serving path
// does, returning the grown immutable view. The WAL in these tests is fed
// the same batches, so checkpoint + WAL describe one consistent history.
func growDB(t testing.TB, db *dataset.Database, batches []*ingest.Batch) *dataset.Database {
	t.Helper()
	app := dataset.NewTableAppender(db.Fact, false)
	fact := db.Fact
	for _, b := range batches {
		rows, err := ingest.Materialize(db, b)
		if err != nil {
			t.Fatal(err)
		}
		if fact, err = app.Append(rows); err != nil {
			t.Fatal(err)
		}
	}
	return &dataset.Database{Fact: fact, Dimensions: db.Dimensions}
}

func mustEncode(t testing.TB, b *ingest.Batch) []byte {
	t.Helper()
	data, err := b.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestStoreBootstrapLogRecoverReplay(t *testing.T) {
	dir := t.TempDir()
	db := testDB(t)
	batches := testBatches(t, 3, 500)

	st := openTestStore(t, dir, durable.Options{})
	if err := st.Bootstrap(db, nil); err != nil {
		t.Fatal(err)
	}
	for _, b := range batches {
		if err := st.LogBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	wantWM := int64(testBaseRows + 3*500)
	if got := st.Watermark(); got != wantWM {
		t.Fatalf("watermark %d, want %d", got, wantWM)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := openTestStore(t, dir, durable.Options{})
	rec, err := st2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Checkpoint == nil {
		t.Fatal("no checkpoint recovered")
	}
	if rec.Checkpoint.Version() != testBaseRows {
		t.Fatalf("checkpoint version %d, want %d", rec.Checkpoint.Version(), testBaseRows)
	}
	if rec.Checkpoint.DB.Fact.NumRows() != testBaseRows {
		t.Fatalf("checkpoint fact rows %d, want %d", rec.Checkpoint.DB.Fact.NumRows(), testBaseRows)
	}
	if len(rec.Batches) != len(batches) {
		t.Fatalf("replayed %d batches, want %d", len(rec.Batches), len(batches))
	}
	for i, b := range rec.Batches {
		if !bytes.Equal(mustEncode(t, b), mustEncode(t, batches[i])) {
			t.Fatalf("replayed batch %d differs from logged batch", i)
		}
	}
	info := rec.Info
	if !info.Recovered || info.FellBack || info.TruncatedTail {
		t.Fatalf("unexpected recovery info: %+v", info)
	}
	if info.Watermark != wantWM || info.ReplayedRows != 1500 || info.ReplayedBatches != 3 {
		t.Fatalf("recovery info: %+v", info)
	}
	// Appends continue at the recovered version.
	extra := testBatches(t, 1, 500)[0]
	if err := st2.LogBatch(extra); err != nil {
		t.Fatal(err)
	}
	if got := st2.Watermark(); got != wantWM+500 {
		t.Fatalf("post-recovery watermark %d, want %d", got, wantWM+500)
	}
	// The recovered checkpoint's decoded database must be usable for
	// materializing further batches (shared dictionaries, FK ranges).
	if _, err := ingest.Materialize(rec.Checkpoint.DB, extra); err != nil {
		t.Fatalf("materialize against recovered db: %v", err)
	}
}

// TestRecoverEmptyWAL is the first recovery edge case: a checkpoint with
// no WAL records at all recovers to exactly the checkpoint version.
func TestRecoverEmptyWAL(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir, durable.Options{})
	if err := st.Bootstrap(testDB(t), nil); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2 := openTestStore(t, dir, durable.Options{})
	rec, err := st2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Checkpoint == nil || len(rec.Batches) != 0 {
		t.Fatalf("want bare checkpoint, got %d batches", len(rec.Batches))
	}
	if rec.Info.Watermark != testBaseRows || rec.Info.TruncatedTail {
		t.Fatalf("info: %+v", rec.Info)
	}
}

func TestRecoverFreshDirectory(t *testing.T) {
	st := openTestStore(t, t.TempDir(), durable.Options{})
	rec, err := st.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Checkpoint != nil || rec.Info.Recovered {
		t.Fatalf("fresh dir must recover to nothing, got %+v", rec.Info)
	}
}

// activeSegment finds the newest WAL segment file for direct corruption.
func activeSegment(t *testing.T, dir string) string {
	t.Helper()
	ents, err := os.ReadDir(filepath.Join(dir, "wal"))
	if err != nil {
		t.Fatal(err)
	}
	var last string
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".wal") {
			last = e.Name()
		}
	}
	if last == "" {
		t.Fatal("no wal segment found")
	}
	return filepath.Join(dir, "wal", last)
}

// TestRecoverTornFinalRecord: a crash mid-append leaves a half-written
// final record; recovery must truncate it and recover the prefix.
func TestRecoverTornFinalRecord(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir, durable.Options{})
	if err := st.Bootstrap(testDB(t), nil); err != nil {
		t.Fatal(err)
	}
	for _, b := range testBatches(t, 3, 400) {
		if err := st.LogBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()

	// Tear the tail: chop off the last 5 bytes of the final record.
	seg := activeSegment(t, dir)
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, fi.Size()-5); err != nil {
		t.Fatal(err)
	}

	st2 := openTestStore(t, dir, durable.Options{})
	rec, err := st2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Info.TruncatedTail {
		t.Fatal("torn tail not reported")
	}
	if len(rec.Batches) != 2 {
		t.Fatalf("replayed %d batches, want 2 (torn third must not apply)", len(rec.Batches))
	}
	if want := int64(testBaseRows + 2*400); rec.Info.Watermark != want {
		t.Fatalf("watermark %d, want batch-aligned %d", rec.Info.Watermark, want)
	}
	// The truncation must be durable: a second recovery sees a clean log.
	st2.Close()
	st3 := openTestStore(t, dir, durable.Options{})
	rec3, err := st3.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rec3.Info.TruncatedTail || len(rec3.Batches) != 2 {
		t.Fatalf("second recovery: truncated=%v batches=%d", rec3.Info.TruncatedTail, len(rec3.Batches))
	}
}

// TestRecoverCorruptCRCMidSegment: a bit flip in the middle of the log.
// Everything before the flip replays; the flipped record and everything
// after it — even records with valid CRCs — is discarded, because a log
// with a hole in it cannot vouch for anything beyond the hole.
func TestRecoverCorruptCRCMidSegment(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir, durable.Options{})
	if err := st.Bootstrap(testDB(t), nil); err != nil {
		t.Fatal(err)
	}
	batches := testBatches(t, 4, 300)
	var offsets []int64
	off := int64(0)
	for _, b := range batches {
		if err := st.LogBatch(b); err != nil {
			t.Fatal(err)
		}
		offsets = append(offsets, off)
		data, _ := durable.EncodeWALRecord(0, b)
		off += int64(len(data))
	}
	st.Close()

	// Flip one byte inside the second record's payload.
	seg := activeSegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[offsets[1]+20] ^= 0x01
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	st2 := openTestStore(t, dir, durable.Options{})
	rec, err := st2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Info.TruncatedTail {
		t.Fatal("mid-segment corruption not reported")
	}
	if len(rec.Batches) != 1 {
		t.Fatalf("replayed %d batches, want 1 (nothing past the corruption)", len(rec.Batches))
	}
	if want := int64(testBaseRows + 300); rec.Info.Watermark != want {
		t.Fatalf("watermark %d, want %d", rec.Info.Watermark, want)
	}
}

// TestRecoverCheckpointSegmentMissing: the newest checkpoint's manifest is
// present but a data segment is gone. Recovery must fall back to the
// previous checkpoint and reach the same watermark via a longer WAL
// replay — never serve the newest checkpoint partially.
func TestRecoverCheckpointSegmentMissing(t *testing.T) {
	dir := t.TempDir()
	db := testDB(t)
	st := openTestStore(t, dir, durable.Options{})
	if err := st.Bootstrap(db, nil); err != nil {
		t.Fatal(err)
	}
	batches := testBatches(t, 2, 250)
	for _, b := range batches {
		if err := st.LogBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	grown := growDB(t, db, batches)
	if err := st.Checkpoint(grown, nil); err != nil {
		t.Fatal(err)
	}
	more := testBatches(t, 1, 250)[0]
	if err := st.LogBatch(more); err != nil {
		t.Fatal(err)
	}
	st.Close()

	// Delete the newest checkpoint's fact segment, keeping its manifest.
	newest := filepath.Join(dir, "checkpoints", "ckpt-"+padVersion(int64(grown.Fact.NumRows())), "fact.seg")
	if err := os.Remove(newest); err != nil {
		t.Fatal(err)
	}

	st2 := openTestStore(t, dir, durable.Options{})
	rec, err := st2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Info.FellBack {
		t.Fatal("fallback to previous checkpoint not reported")
	}
	if rec.Checkpoint.Version() != testBaseRows {
		t.Fatalf("recovered from checkpoint %d, want the older %d", rec.Checkpoint.Version(), testBaseRows)
	}
	// All three batches replay on top of the older checkpoint.
	if len(rec.Batches) != 3 {
		t.Fatalf("replayed %d batches, want 3", len(rec.Batches))
	}
	if want := int64(testBaseRows + 3*250); rec.Info.Watermark != want {
		t.Fatalf("watermark %d, want %d", rec.Info.Watermark, want)
	}
}

// TestRecoverWALGapRefused: a missing middle segment is not a torn tail —
// replaying past it would silently drop durable batches, so recovery must
// refuse outright.
func TestRecoverWALGapRefused(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir, durable.Options{SegmentBytes: 1}) // every batch rotates
	if err := st.Bootstrap(testDB(t), nil); err != nil {
		t.Fatal(err)
	}
	for _, b := range testBatches(t, 3, 200) {
		if err := st.LogBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()

	ents, err := os.ReadDir(filepath.Join(dir, "wal"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) < 3 {
		t.Fatalf("expected one segment per batch, got %d", len(ents))
	}
	if err := os.Remove(filepath.Join(dir, "wal", ents[1].Name())); err != nil {
		t.Fatal(err)
	}

	st2 := openTestStore(t, dir, durable.Options{})
	if _, err := st2.Recover(); err == nil || !strings.Contains(err.Error(), "gap") {
		t.Fatalf("recovery over a WAL gap must fail, got %v", err)
	}
}

func TestRecoverMetaMismatchRefused(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir, durable.Options{})
	if err := st.Bootstrap(testDB(t), nil); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2 := openTestStore(t, dir, durable.Options{Meta: durable.Meta{Engine: "testeng", Seed: testSeed + 1, BaseRows: testBaseRows}})
	if _, err := st2.Recover(); err == nil {
		t.Fatal("recovering with a different dataset seed must fail")
	}
}

// TestCheckpointPruning: old checkpoints beyond the retention count are
// dropped, and WAL segments covered by the oldest retained checkpoint go
// with them.
func TestCheckpointPruning(t *testing.T) {
	dir := t.TempDir()
	db := testDB(t)
	st := openTestStore(t, dir, durable.Options{SegmentBytes: 1})
	if err := st.Bootstrap(db, nil); err != nil {
		t.Fatal(err)
	}
	cur := db
	for i := 0; i < 3; i++ {
		bs := testBatches(t, 1, 100+i) // distinct sizes keep versions distinct
		if err := st.LogBatch(bs[0]); err != nil {
			t.Fatal(err)
		}
		cur = growDB(t, cur, bs)
		if err := st.Checkpoint(cur, nil); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()

	ents, err := os.ReadDir(filepath.Join(dir, "checkpoints"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 2 {
		t.Fatalf("retained %d checkpoints, want 2", len(ents))
	}
	// Recovery still works from the retained pair.
	st2 := openTestStore(t, dir, durable.Options{})
	rec, err := st2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Info.Watermark != int64(cur.Fact.NumRows()) {
		t.Fatalf("watermark %d, want %d", rec.Info.Watermark, cur.Fact.NumRows())
	}
}

func padVersion(v int64) string {
	s := "0000000000000000"
	d := []byte(s)
	for i := len(d) - 1; v > 0 && i >= 0; i-- {
		d[i] = byte('0' + v%10)
		v /= 10
	}
	return string(d)
}
