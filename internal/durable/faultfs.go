package durable

import (
	"errors"
	"sync"
)

// Injected fault errors, distinguishable in tests from real I/O failures.
var (
	// ErrNoSpace is the injected out-of-disk error; writes that hit the
	// budget may have landed partially (a short write), exactly like a real
	// ENOSPC mid-buffer.
	ErrNoSpace = errors.New("durable: injected no space left on device")
	// ErrSyncFailed is the injected fsync failure. A failed fsync means the
	// data may or may not be on disk; the durability layer must treat the
	// operation as not committed.
	ErrSyncFailed = errors.New("durable: injected fsync failure")
	// ErrRenameFailed is the injected rename failure, used to model a crash
	// between writing a checkpoint's temp directory and publishing it.
	ErrRenameFailed = errors.New("durable: injected rename failure")
)

// FaultFS wraps an FS with injectable disk faults: a total write budget
// (writes past it land short and then fail with ErrNoSpace), failing
// fsyncs, and failing renames. The crash wall drives the checkpoint writer
// and the WAL through it to prove that every failure either leaves the
// previous durable state intact or surfaces as a rejected commit — never
// as silently applied, un-durable data.
type FaultFS struct {
	base FS

	mu          sync.Mutex
	writeBudget int64 // -1: unlimited
	failSyncs   int   // next n Sync calls fail
	failRenames int   // next n Rename calls fail
	bytes       int64
	syncs       int
}

// NewFaultFS wraps base with no faults armed.
func NewFaultFS(base FS) *FaultFS {
	return &FaultFS{base: base, writeBudget: -1}
}

// SetWriteBudget arms the ENOSPC fault: after n more bytes have been
// written (across all files), writes land short and fail. n < 0 disarms.
func (f *FaultFS) SetWriteBudget(n int64) {
	f.mu.Lock()
	f.writeBudget = n
	f.mu.Unlock()
}

// FailNextSyncs makes the next n Sync calls fail with ErrSyncFailed.
func (f *FaultFS) FailNextSyncs(n int) {
	f.mu.Lock()
	f.failSyncs = n
	f.mu.Unlock()
}

// FailNextRenames makes the next n Rename calls fail with ErrRenameFailed.
func (f *FaultFS) FailNextRenames(n int) {
	f.mu.Lock()
	f.failRenames = n
	f.mu.Unlock()
}

// BytesWritten reports total bytes written through the wrapper.
func (f *FaultFS) BytesWritten() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.bytes
}

// Syncs reports the number of Sync calls observed (including failed ones).
func (f *FaultFS) Syncs() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.syncs
}

// MkdirAll implements FS.
func (f *FaultFS) MkdirAll(path string) error { return f.base.MkdirAll(path) }

// Create implements FS.
func (f *FaultFS) Create(path string) (File, error) {
	file, err := f.base.Create(path)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, f: file}, nil
}

// OpenAppend implements FS.
func (f *FaultFS) OpenAppend(path string) (File, error) {
	file, err := f.base.OpenAppend(path)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, f: file}, nil
}

// ReadFile implements FS.
func (f *FaultFS) ReadFile(path string) ([]byte, error) { return f.base.ReadFile(path) }

// ReadDir implements FS.
func (f *FaultFS) ReadDir(path string) ([]string, error) { return f.base.ReadDir(path) }

// Rename implements FS.
func (f *FaultFS) Rename(oldPath, newPath string) error {
	f.mu.Lock()
	if f.failRenames > 0 {
		f.failRenames--
		f.mu.Unlock()
		return ErrRenameFailed
	}
	f.mu.Unlock()
	return f.base.Rename(oldPath, newPath)
}

// Remove implements FS.
func (f *FaultFS) Remove(path string) error { return f.base.Remove(path) }

// RemoveAll implements FS.
func (f *FaultFS) RemoveAll(path string) error { return f.base.RemoveAll(path) }

// Truncate implements FS.
func (f *FaultFS) Truncate(path string, size int64) error { return f.base.Truncate(path, size) }

// Size implements FS.
func (f *FaultFS) Size(path string) (int64, error) { return f.base.Size(path) }

// SyncDir implements FS. Directory syncs share the fsync fault arm.
func (f *FaultFS) SyncDir(path string) error {
	if err := f.takeSyncFault(); err != nil {
		return err
	}
	return f.base.SyncDir(path)
}

func (f *FaultFS) takeSyncFault() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.syncs++
	if f.failSyncs > 0 {
		f.failSyncs--
		return ErrSyncFailed
	}
	return nil
}

type faultFile struct {
	fs *FaultFS
	f  File
}

// Write implements io.Writer, honoring the write budget: the portion of p
// that fits is written through (a short write), the rest fails.
func (w *faultFile) Write(p []byte) (int, error) {
	w.fs.mu.Lock()
	budget := w.fs.writeBudget
	allowed := len(p)
	if budget >= 0 {
		if int64(allowed) > budget {
			allowed = int(budget)
		}
		w.fs.writeBudget = budget - int64(allowed)
	}
	w.fs.bytes += int64(allowed)
	w.fs.mu.Unlock()

	n := 0
	if allowed > 0 {
		var err error
		n, err = w.f.Write(p[:allowed])
		if err != nil {
			return n, err
		}
	}
	if allowed < len(p) {
		return n, ErrNoSpace
	}
	return n, nil
}

// Sync implements File.
func (w *faultFile) Sync() error {
	if err := w.fs.takeSyncFault(); err != nil {
		return err
	}
	return w.f.Sync()
}

// Close implements File.
func (w *faultFile) Close() error { return w.f.Close() }
