package durable_test

import (
	"errors"
	"testing"

	"idebench/internal/durable"
	"idebench/internal/ingest"
)

// TestLogBatchFsyncFailure: a failed fsync means the record may not be on
// disk, so the commit must be rejected and the watermark must not move —
// the serving layer then never applies or acks the batch. After the fault
// clears, logging resumes, and recovery sees exactly the committed
// batches.
func TestLogBatchFsyncFailure(t *testing.T) {
	dir := t.TempDir()
	ffs := durable.NewFaultFS(durable.OSFS{})
	st := openTestStore(t, dir, durable.Options{FS: ffs})
	if err := st.Bootstrap(testDB(t), nil); err != nil {
		t.Fatal(err)
	}
	batches := testBatches(t, 3, 200)
	if err := st.LogBatch(batches[0]); err != nil {
		t.Fatal(err)
	}
	wm := st.Watermark()

	ffs.FailNextSyncs(1)
	if err := st.LogBatch(batches[1]); !errors.Is(err, durable.ErrSyncFailed) {
		t.Fatalf("want injected fsync failure, got %v", err)
	}
	if got := st.Watermark(); got != wm {
		t.Fatalf("failed commit moved the watermark: %d -> %d", wm, got)
	}

	// Fault cleared: the same batch commits cleanly (the short-lived
	// partial write was rolled back by truncation).
	if err := st.LogBatch(batches[1]); err != nil {
		t.Fatal(err)
	}
	if err := st.LogBatch(batches[2]); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2 := openTestStore(t, dir, durable.Options{})
	rec, err := st2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Batches) != 3 || rec.Info.TruncatedTail {
		t.Fatalf("recovered %d batches (truncated=%v), want 3 clean", len(rec.Batches), rec.Info.TruncatedTail)
	}
}

// TestLogBatchShortWrite: ENOSPC mid-record must reject the commit, roll
// the partial bytes back, and keep the log usable once space returns.
func TestLogBatchShortWrite(t *testing.T) {
	dir := t.TempDir()
	ffs := durable.NewFaultFS(durable.OSFS{})
	st := openTestStore(t, dir, durable.Options{FS: ffs})
	if err := st.Bootstrap(testDB(t), nil); err != nil {
		t.Fatal(err)
	}
	batches := testBatches(t, 2, 200)
	if err := st.LogBatch(batches[0]); err != nil {
		t.Fatal(err)
	}
	wm := st.Watermark()

	ffs.SetWriteBudget(10) // next record lands 10 bytes short of nothing
	if err := st.LogBatch(batches[1]); !errors.Is(err, durable.ErrNoSpace) {
		t.Fatalf("want injected ENOSPC, got %v", err)
	}
	if got := st.Watermark(); got != wm {
		t.Fatalf("failed commit moved the watermark: %d -> %d", wm, got)
	}
	ffs.SetWriteBudget(-1)
	if err := st.LogBatch(batches[1]); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2 := openTestStore(t, dir, durable.Options{})
	rec, err := st2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Batches) != 2 || rec.Info.TruncatedTail {
		t.Fatalf("recovered %d batches (truncated=%v), want 2 clean", len(rec.Batches), rec.Info.TruncatedTail)
	}
}

// TestCheckpointENOSPC: running out of disk mid-checkpoint must abort the
// temp directory and leave the previous checkpoint serving — durability
// degrades to a longer WAL replay, never to a corrupt checkpoint.
func TestCheckpointENOSPC(t *testing.T) {
	dir := t.TempDir()
	ffs := durable.NewFaultFS(durable.OSFS{})
	db := testDB(t)
	st := openTestStore(t, dir, durable.Options{FS: ffs})
	if err := st.Bootstrap(db, nil); err != nil {
		t.Fatal(err)
	}
	batches := testBatches(t, 2, 300)
	for _, b := range batches {
		if err := st.LogBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	grown := growDB(t, db, batches)

	ffs.SetWriteBudget(1 << 12) // enough to start the fact segment, not finish the checkpoint
	if err := st.Checkpoint(grown, nil); err == nil {
		t.Fatal("checkpoint under ENOSPC must fail")
	}
	ffs.SetWriteBudget(-1)
	st.Close()

	st2 := openTestStore(t, dir, durable.Options{})
	rec, err := st2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Info.FellBack {
		t.Fatal("aborted checkpoint must not be visible at all")
	}
	if rec.Checkpoint.Version() != testBaseRows {
		t.Fatalf("recovered checkpoint %d, want the intact %d", rec.Checkpoint.Version(), testBaseRows)
	}
	if len(rec.Batches) != 2 {
		t.Fatalf("replayed %d batches, want 2", len(rec.Batches))
	}
}

// TestCheckpointRenameFailure: a crash at the publish step (modeled as a
// failing rename) leaves only temp litter, which the next checkpoint
// clobbers and recovery never considers.
func TestCheckpointRenameFailure(t *testing.T) {
	dir := t.TempDir()
	ffs := durable.NewFaultFS(durable.OSFS{})
	db := testDB(t)
	st := openTestStore(t, dir, durable.Options{FS: ffs})
	if err := st.Bootstrap(db, nil); err != nil {
		t.Fatal(err)
	}
	b := testBatches(t, 1, 300)[0]
	if err := st.LogBatch(b); err != nil {
		t.Fatal(err)
	}
	grown := growDB(t, db, []*ingest.Batch{b})

	ffs.FailNextRenames(1)
	if err := st.Checkpoint(grown, nil); !errors.Is(err, durable.ErrRenameFailed) {
		t.Fatalf("want injected rename failure, got %v", err)
	}
	// Retry succeeds and recovery then uses the new checkpoint.
	if err := st.Checkpoint(grown, nil); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2 := openTestStore(t, dir, durable.Options{})
	rec, err := st2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Checkpoint.Version() != int64(grown.Fact.NumRows()) {
		t.Fatalf("recovered checkpoint %d, want %d", rec.Checkpoint.Version(), grown.Fact.NumRows())
	}
	if len(rec.Batches) != 0 {
		t.Fatalf("replayed %d batches, want 0 (checkpoint covers the log)", len(rec.Batches))
	}
}
