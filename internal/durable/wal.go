package durable

import (
	"fmt"
	"path/filepath"
	"strconv"
	"strings"
)

// DefaultSegmentBytes is the WAL rotation threshold: once the active
// segment exceeds it, the next append starts a new segment. Small enough
// that checkpoint-driven pruning reclaims space promptly, large enough
// that rotation (a file create + dir sync) is rare.
const DefaultSegmentBytes = 4 << 20

// segmentName formats the file name of a segment starting at version v.
func segmentName(v int64) string { return fmt.Sprintf("seg-%016d.wal", v) }

// parseSegmentName extracts the start version, rejecting foreign files.
func parseSegmentName(name string) (int64, bool) {
	if !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".wal") {
		return 0, false
	}
	v, err := strconv.ParseInt(strings.TrimSuffix(strings.TrimPrefix(name, "seg-"), ".wal"), 10, 64)
	if err != nil || v < 0 {
		return 0, false
	}
	return v, true
}

// wal is the append side of the log. Not safe for concurrent use; the
// Store serializes access.
type wal struct {
	fs       FS
	dir      string
	segBytes int64

	f       File   // active segment, nil until the first append after open/rotate
	path    string // active segment path
	size    int64  // bytes in the active segment
	version int64  // data version after every logged record
	broken  error  // sticky: set when the on-disk state is unknown (failed truncate-after-short-write)
}

// openWAL positions the append side at version. If a segment named for
// this exact version survived recovery (its tail was truncated to a record
// boundary), appending continues in it; otherwise the next append starts a
// fresh segment.
func openWAL(fs FS, dir string, version, segBytes int64) (*wal, error) {
	if segBytes <= 0 {
		segBytes = DefaultSegmentBytes
	}
	w := &wal{fs: fs, dir: dir, segBytes: segBytes, version: version}
	names, err := fs.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("durable: open wal: %w", err)
	}
	// Resume the newest existing segment only if appends would extend it
	// contiguously — i.e. recovery replayed it to exactly `version`.
	var last string
	var lastStart int64 = -1
	for _, name := range names {
		if v, ok := parseSegmentName(name); ok && v > lastStart {
			last, lastStart = name, v
		}
	}
	if lastStart >= 0 && lastStart <= version {
		path := filepath.Join(dir, last)
		size, err := fs.Size(path)
		if err != nil {
			return nil, fmt.Errorf("durable: open wal: %w", err)
		}
		if size < w.segBytes {
			f, err := fs.OpenAppend(path)
			if err != nil {
				return nil, fmt.Errorf("durable: open wal: %w", err)
			}
			w.f, w.path, w.size = f, path, size
		}
	}
	return w, nil
}

// append logs one record whose batch advances the version by rows, fsyncs
// it, and returns the new version. On any error the record is not
// committed: a short write is rolled back by truncation, and if even that
// fails the wal goes sticky-broken (the on-disk tail state is unknown, so
// no further appends are accepted; recovery's torn-tail truncation will
// repair it on restart).
func (w *wal) append(rec []byte, rows int64) (int64, error) {
	if w.broken != nil {
		return 0, fmt.Errorf("durable: wal unusable after earlier write failure: %w", w.broken)
	}
	if w.f == nil && w.path != "" {
		// Resume the current segment after a rolled-back failed commit.
		f, err := w.fs.OpenAppend(w.path)
		if err != nil {
			return 0, fmt.Errorf("durable: wal segment reopen: %w", err)
		}
		w.f = f
	}
	if w.f == nil {
		path := filepath.Join(w.dir, segmentName(w.version))
		f, err := w.fs.Create(path)
		if err != nil {
			return 0, fmt.Errorf("durable: wal segment create: %w", err)
		}
		// Make the directory entry durable before any record relies on it.
		if err := w.fs.SyncDir(w.dir); err != nil {
			_ = f.Close()
			_ = w.fs.Remove(path)
			return 0, fmt.Errorf("durable: wal segment create: %w", err)
		}
		w.f, w.path, w.size = f, path, 0
	}
	// rollback undoes a partial record so the live segment stays clean. The
	// handle must be closed and reopened in append mode: truncation does not
	// move an open handle's write offset, and writing past it would leave a
	// zero-filled hole. If the rollback itself fails, the tail state is
	// unknown: refuse further appends rather than risk interleaving past a
	// torn record (restart recovery will truncate it properly).
	rollback := func() {
		_ = w.f.Close()
		w.f = nil
		if terr := w.fs.Truncate(w.path, w.size); terr != nil {
			w.broken = terr
		}
	}
	if _, err := w.f.Write(rec); err != nil {
		rollback()
		return 0, fmt.Errorf("durable: wal append: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		// The bytes may or may not be durable; same rollback contract.
		rollback()
		return 0, fmt.Errorf("durable: wal fsync: %w", err)
	}
	w.size += int64(len(rec))
	w.version += rows
	if w.size >= w.segBytes {
		err := w.f.Close()
		w.f, w.path, w.size = nil, "", 0
		if err != nil {
			return 0, fmt.Errorf("durable: wal rotate: %w", err)
		}
	}
	return w.version, nil
}

// sync flushes the active segment (a no-op when every append already
// fsynced and no segment is open).
func (w *wal) sync() error {
	if w.f == nil {
		return nil
	}
	return w.f.Sync()
}

// close closes the active segment.
func (w *wal) close() error {
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}

// walScan is the result of recovering the on-disk log.
type walScan struct {
	records    []WALRecord // records beyond `after`, in order
	endVersion int64       // version after the last valid record (>= after)
	truncated  bool        // a torn/corrupt tail was cut off
	segments   int         // segment files seen
}

// recoverWAL scans dir: verifies every record's CRC and version chain,
// truncates the first torn or corrupt record and everything after it
// (including later segments — nothing beyond a hole can be trusted), and
// returns the records whose versions exceed `after` (the checkpoint
// version) for replay. A gap in the version chain between segments is a
// hard error: replaying past it would silently drop acked batches.
func recoverWAL(fs FS, dir string, after int64) (walScan, error) {
	scan := walScan{endVersion: after}
	names, err := fs.ReadDir(dir)
	if err != nil {
		return scan, fmt.Errorf("durable: recover wal: %w", err)
	}
	type seg struct {
		name  string
		start int64
	}
	var segs []seg
	for _, name := range names {
		if v, ok := parseSegmentName(name); ok {
			segs = append(segs, seg{name, v})
		}
	}
	// ReadDir sorts names; zero-padded fixed-width versions sort numerically.
	scan.segments = len(segs)
	if len(segs) == 0 {
		return scan, nil
	}
	if segs[0].start > after {
		return scan, fmt.Errorf("durable: recover wal: oldest segment starts at version %d, checkpoint is at %d: log has a gap", segs[0].start, after)
	}
	version := segs[0].start
	for i, s := range segs {
		if s.start != version {
			if s.start < version {
				// Overlapping segments cannot happen in a log this code
				// wrote; refuse to guess.
				return scan, fmt.Errorf("durable: recover wal: segment %s starts at %d, expected %d", s.name, s.start, version)
			}
			return scan, fmt.Errorf("durable: recover wal: gap between version %d and segment %s", version, s.name)
		}
		path := filepath.Join(dir, s.name)
		data, err := fs.ReadFile(path)
		if err != nil {
			return scan, fmt.Errorf("durable: recover wal: %w", err)
		}
		off := 0
		torn := false
		for off < len(data) {
			body, next, err := nextWALRecord(data, off)
			if err != nil {
				torn = true
				break
			}
			rec, err := DecodeWALBody(body)
			if err != nil || rec.PrevVersion != version {
				// A record that decodes but chains to the wrong version is
				// corruption just like a bad CRC.
				torn = true
				break
			}
			version += int64(rec.Batch.NumRows())
			if version > after {
				scan.records = append(scan.records, rec)
			}
			off = next
		}
		if torn {
			scan.truncated = true
			if off == 0 {
				// No valid prefix: remove the file entirely so a future
				// segment starting at this version can be created cleanly.
				if err := fs.Remove(path); err != nil {
					return scan, fmt.Errorf("durable: recover wal: drop torn segment: %w", err)
				}
			} else if err := fs.Truncate(path, int64(off)); err != nil {
				return scan, fmt.Errorf("durable: recover wal: truncate torn tail: %w", err)
			}
			// Later segments sit beyond the hole; discard them.
			for _, later := range segs[i+1:] {
				if err := fs.Remove(filepath.Join(dir, later.name)); err != nil {
					return scan, fmt.Errorf("durable: recover wal: drop unreachable segment: %w", err)
				}
			}
			break
		}
	}
	scan.endVersion = version
	if version < after {
		// The log ends before the checkpoint — possible when pruning won a
		// race with a crash. The checkpoint alone is consistent state.
		scan.endVersion = after
	}
	return scan, nil
}
