// Package durable is the durability subsystem: checksummed, versioned
// on-disk checkpoints of a prepared dataset.Database plus a CRC-framed,
// fsync-on-commit write-ahead log of ingest batches, and the recovery
// procedure that stitches the two back into a serving engine after a crash.
//
// # Checkpoint layout
//
// A checkpoint is one directory under <data-dir>/checkpoints/, named
// ckpt-<version> where version is the fact-table row count (= the data
// version / ingest watermark, per the versioned-watermark model from the
// live-ingestion subsystem). It holds one binary segment per table in the
// stable dataset codec (fact.seg, dim-NN.seg), the sampling permutation the
// fact prefix is stored in (perm.seg, absent for arrival-order engines),
// and MANIFEST.json — format version, engine name, dataset seed, base row
// count, per-file byte counts and CRC-32 checksums, and a SHA-256 over all
// segment contents. Segments carry the dictionary contents (code order) and
// the memoized min/max bounds, so a warm load rebuilds a fully prepared
// database without any per-row pass.
//
// Checkpoints are written atomically: all segments land in a .tmp-
// directory and are fsynced, the manifest is written last (a directory
// without a manifest is by definition not a checkpoint), then the
// directory is renamed into place and the parent fsynced. A crash at any
// point leaves either the previous checkpoints intact or a .tmp- litter
// directory that recovery ignores and the next checkpoint clobbers. The
// newest two checkpoints are retained, so a checkpoint whose files are
// later found corrupt (CRC mismatch, missing segment) falls back to its
// predecessor — partial state is never served.
//
// # WAL framing and commit ordering
//
// The WAL lives in <data-dir>/wal/ as segment files seg-<version>.wal,
// named by the data version before their first record. Each record is
//
//	u32 body length | u32 CRC-32 (IEEE) of body | body
//	body = u64 previous version | ingest batch JSON (the fuzzed wire format)
//
// The chained previous-version field makes every record's position in the
// version sequence self-describing: replay verifies each record extends
// the version it recovered so far, so a misplaced or re-ordered record is
// detected as corruption rather than silently applied.
//
// Commit ordering is strictly validate → log → apply: a batch is fully
// materialized (schema, kinds, FK bounds) against the live database first,
// then appended to the WAL and fsynced, and only then applied to the
// engine, acked to the client, and broadcast. Consequences: (1) an acked
// batch is durable — a crash immediately after the ack replays it; (2) the
// WAL never holds a batch the engine would reject, so replay cannot fail
// on validation; (3) a crash between fsync and apply redoes the batch on
// recovery — at-least-once relative to the ack, exactly-once relative to
// the engine, because recovery replays exactly the records beyond the
// checkpoint version. Segments rotate at a size threshold; segments wholly
// covered by the oldest retained checkpoint are deleted after each
// checkpoint, which is what bounds WAL length.
//
// # Recovery
//
// Recover loads the newest checkpoint whose manifest and checksums fully
// verify (falling back to the previous one otherwise), then scans the WAL
// in segment order: every record's CRC and version chain are verified, and
// records beyond the checkpoint version are returned for replay through
// engine.Appender. At the first framing or CRC error the segment is
// truncated at the last valid record — a torn tail from a mid-write crash
// — and any later segments are discarded; a torn or corrupt record is
// therefore never applied. The recovered watermark is batch-aligned by
// construction (appends are atomic; versions only ever advance by whole
// batches). What is NOT guaranteed: batches the client never got an ack
// for may or may not survive (the crash may have landed before or after
// their fsync), and fsync lies from the storage stack are out of scope.
package durable

import (
	"io"
	"os"
	"path/filepath"
	"sort"
)

// FS abstracts the filesystem operations the durability layer performs —
// exactly the injection surface the disk-fault tests need (short writes,
// ENOSPC, failing fsync, failing rename). The real implementation is OSFS.
type FS interface {
	MkdirAll(path string) error
	// Create opens path for writing, truncating any existing file.
	Create(path string) (File, error)
	// OpenAppend opens an existing file for appending.
	OpenAppend(path string) (File, error)
	ReadFile(path string) ([]byte, error)
	// ReadDir returns the names (not paths) of path's entries, sorted.
	// A missing directory is an error (callers MkdirAll first).
	ReadDir(path string) ([]string, error)
	Rename(oldPath, newPath string) error
	Remove(path string) error
	RemoveAll(path string) error
	Truncate(path string, size int64) error
	// Size returns the byte size of the named file.
	Size(path string) (int64, error)
	// SyncDir fsyncs a directory, making renames and creates within it
	// durable.
	SyncDir(path string) error
}

// File is the writable handle surface the durability layer uses.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// OSFS is the real filesystem.
type OSFS struct{}

// MkdirAll implements FS.
func (OSFS) MkdirAll(path string) error { return os.MkdirAll(path, 0o755) }

// Create implements FS.
func (OSFS) Create(path string) (File, error) {
	return os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
}

// OpenAppend implements FS.
func (OSFS) OpenAppend(path string) (File, error) {
	return os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
}

// ReadFile implements FS.
func (OSFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

// ReadDir implements FS.
func (OSFS) ReadDir(path string) ([]string, error) {
	ents, err := os.ReadDir(path)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(ents))
	for i, e := range ents {
		names[i] = e.Name()
	}
	sort.Strings(names)
	return names, nil
}

// Rename implements FS.
func (OSFS) Rename(oldPath, newPath string) error { return os.Rename(oldPath, newPath) }

// Remove implements FS.
func (OSFS) Remove(path string) error { return os.Remove(path) }

// RemoveAll implements FS.
func (OSFS) RemoveAll(path string) error { return os.RemoveAll(path) }

// Truncate implements FS.
func (OSFS) Truncate(path string, size int64) error { return os.Truncate(path, size) }

// Size implements FS.
func (OSFS) Size(path string) (int64, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

// SyncDir implements FS.
func (OSFS) SyncDir(path string) error {
	d, err := os.Open(filepath.Clean(path))
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
