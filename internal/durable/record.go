package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"idebench/internal/ingest"
)

// WAL record framing (see the package comment for the full layout):
//
//	u32 body length | u32 CRC-32 (IEEE) of body | body
//	body = u64 previous data version | ingest batch JSON
//
// The frame is deliberately minimal — the batch payload reuses the ingest
// wire format, which is already fuzzed (FuzzIngestRecord) and versioned by
// its JSON shape, so the WAL inherits its compatibility story.

// recordHeaderBytes is the fixed frame prefix: length + CRC.
const recordHeaderBytes = 8

// MaxRecordBytes bounds one WAL record body. Ingest batches are a few
// thousand rows; anything near this limit in a length field is corruption,
// and bounding it keeps a torn length word from asking the decoder for a
// huge allocation.
const MaxRecordBytes = 64 << 20

// WALRecord is one decoded WAL entry: the batch and the data version the
// log was at before it (the version chain replay verifies).
type WALRecord struct {
	PrevVersion int64
	Batch       *ingest.Batch
}

// errTornRecord marks an incomplete or corrupt frame. Inside scanSegment it
// means "valid data ends here": a torn tail to truncate, not data to apply.
var errTornRecord = errors.New("durable: torn or corrupt wal record")

// appendWALRecord frames body onto dst.
func appendWALRecord(dst, body []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(body)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(body))
	return append(dst, body...)
}

// encodeWALBody serializes one record body.
func encodeWALBody(prevVersion int64, b *ingest.Batch) ([]byte, error) {
	payload, err := b.Encode()
	if err != nil {
		return nil, fmt.Errorf("durable: encode wal record: %w", err)
	}
	body := make([]byte, 0, 8+len(payload))
	body = binary.LittleEndian.AppendUint64(body, uint64(prevVersion))
	return append(body, payload...), nil
}

// DecodeWALBody parses one record body. It never panics on arbitrary
// bytes (FuzzWALRecord's contract) and fully validates the embedded batch.
func DecodeWALBody(body []byte) (WALRecord, error) {
	if len(body) < 8 {
		return WALRecord{}, fmt.Errorf("durable: wal record body %d bytes, want >= 8", len(body))
	}
	prev := int64(binary.LittleEndian.Uint64(body))
	if prev < 0 {
		return WALRecord{}, fmt.Errorf("durable: wal record: negative previous version %d", prev)
	}
	b, err := ingest.DecodeBatch(body[8:])
	if err != nil {
		return WALRecord{}, fmt.Errorf("durable: wal record: %w", err)
	}
	return WALRecord{PrevVersion: prev, Batch: b}, nil
}

// EncodeWALRecord frames one record; exported for the fuzz harness and the
// offline inspector, which both need to build valid records standalone.
func EncodeWALRecord(prevVersion int64, b *ingest.Batch) ([]byte, error) {
	body, err := encodeWALBody(prevVersion, b)
	if err != nil {
		return nil, err
	}
	return appendWALRecord(nil, body), nil
}

// nextWALRecord cuts the frame starting at data[off], returning the body
// and the offset just past the record. Any incomplete frame, implausible
// length, or CRC mismatch returns errTornRecord — the caller treats off as
// the end of valid data.
func nextWALRecord(data []byte, off int) (body []byte, next int, err error) {
	if off+recordHeaderBytes > len(data) {
		return nil, off, errTornRecord
	}
	n := int(binary.LittleEndian.Uint32(data[off:]))
	sum := binary.LittleEndian.Uint32(data[off+4:])
	if n > MaxRecordBytes || off+recordHeaderBytes+n > len(data) {
		return nil, off, errTornRecord
	}
	body = data[off+recordHeaderBytes : off+recordHeaderBytes+n]
	if crc32.ChecksumIEEE(body) != sum {
		return nil, off, errTornRecord
	}
	return body, off + recordHeaderBytes + n, nil
}
