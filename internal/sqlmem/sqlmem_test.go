package sqlmem

import (
	"context"
	"database/sql"
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"idebench/internal/dataset"
	"idebench/internal/enginetest"
	"idebench/internal/query"
)

func parseQ(t *testing.T, sqlText string) *query.Query {
	t.Helper()
	db := enginetest.SmallDB(100, 1)
	q, err := Parse(sqlText, db)
	if err != nil {
		t.Fatalf("Parse(%q): %v", sqlText, err)
	}
	return q
}

func TestParseSimpleCount(t *testing.T) {
	q := parseQ(t, "SELECT carrier AS bin0, COUNT(*) FROM flights GROUP BY bin0")
	if q.Table != "flights" || len(q.Bins) != 1 || q.Bins[0].Field != "carrier" {
		t.Errorf("parsed query wrong: %+v", q)
	}
	if q.Bins[0].Kind != dataset.Nominal {
		t.Error("carrier should parse as nominal binning")
	}
	if len(q.Aggs) != 1 || q.Aggs[0].Func != query.Count {
		t.Errorf("aggs wrong: %+v", q.Aggs)
	}
}

func TestParseFloorVariants(t *testing.T) {
	q := parseQ(t, "SELECT FLOOR(dep_delay/10) AS bin0, COUNT(*) FROM flights GROUP BY bin0")
	if q.Bins[0].Width != 10 || q.Bins[0].Origin != 0 {
		t.Errorf("floor binning wrong: %+v", q.Bins[0])
	}
	q = parseQ(t, "SELECT FLOOR((dep_delay - -20.5)/59.7) AS bin0, AVG(arr_delay) FROM flights GROUP BY bin0")
	if q.Bins[0].Origin != -20.5 || q.Bins[0].Width != 59.7 {
		t.Errorf("negative origin wrong: %+v", q.Bins[0])
	}
	if q.Aggs[0].Func != query.Avg || q.Aggs[0].Field != "arr_delay" {
		t.Errorf("avg agg wrong: %+v", q.Aggs[0])
	}
}

func TestParse2DAndPredicates(t *testing.T) {
	sqlText := "SELECT FLOOR(dep_delay/10) AS bin0, carrier AS bin1, COUNT(*), SUM(distance) " +
		"FROM flights WHERE carrier IN ('AA', 'UA') AND (distance >= 100 AND distance < 500) " +
		"AND origin_state = 'CA' GROUP BY bin0, bin1"
	q := parseQ(t, sqlText)
	if len(q.Bins) != 2 || len(q.Aggs) != 2 {
		t.Fatalf("shape wrong: %+v", q)
	}
	if len(q.Filter.Predicates) != 3 {
		t.Fatalf("predicates = %d, want 3", len(q.Filter.Predicates))
	}
	in := q.Filter.Predicates[0]
	if in.Op != query.OpIn || len(in.Values) != 2 {
		t.Errorf("IN predicate wrong: %+v", in)
	}
	rng := q.Filter.Predicates[1]
	if rng.Op != query.OpRange || rng.Lo != 100 || rng.Hi != 500 {
		t.Errorf("range predicate wrong: %+v", rng)
	}
	eq := q.Filter.Predicates[2]
	if eq.Op != query.OpIn || eq.Values[0] != "CA" {
		t.Errorf("equality predicate wrong: %+v", eq)
	}
}

func TestParseEscapedQuote(t *testing.T) {
	db := enginetest.SmallDB(100, 1)
	q, err := Parse("SELECT carrier AS bin0, COUNT(*) FROM flights WHERE carrier = 'O''Hare' GROUP BY bin0", db)
	if err != nil {
		t.Fatal(err)
	}
	if q.Filter.Predicates[0].Values[0] != "O'Hare" {
		t.Errorf("escaped quote mangled: %q", q.Filter.Predicates[0].Values[0])
	}
}

func TestParseErrors(t *testing.T) {
	db := enginetest.SmallDB(100, 1)
	bad := []string{
		"",
		"UPDATE flights SET x = 1",
		"SELECT COUNT(*) FROM flights", // no bins → GROUP BY fails
		"SELECT carrier AS bin0 FROM flights GROUP BY bin0",                 // no aggregate
		"SELECT carrier AS bin0, COUNT(*) FROM flights GROUP BY bin1",       // wrong alias
		"SELECT carrier AS bin0, COUNT(*) FROM flights GROUP BY bin0, bin1", // extra group
		"SELECT dep_delay AS bin0, COUNT(*) FROM flights GROUP BY bin0",     // bare quantitative
		"SELECT carrier AS bin0, AVG(*) FROM flights GROUP BY bin0",         // AVG(*)
		"SELECT carrier AS bin0, COUNT(*) FROM flights WHERE carrier = 5 GROUP BY bin0",
		"SELECT carrier AS bin0, COUNT(*) FROM flights WHERE (distance >= 1 AND dep_delay < 5) GROUP BY bin0", // mismatched range fields
		"SELECT carrier AS bin0, COUNT(*) FROM flights WHERE carrier > 'AA' GROUP BY bin0",                    // unsupported op
		"SELECT carrier AS bin0, COUNT(*) FROM flights GROUP BY bin0 HAVING x",                                // trailing
		"SELECT ghost AS bin0, COUNT(*) FROM flights GROUP BY bin0",                                           // unknown field
	}
	for _, s := range bad {
		if _, err := Parse(s, db); err == nil {
			t.Errorf("Parse(%q) should fail", s)
		}
	}
}

// Property: any valid generated query survives ToSQL → Parse with the same
// signature — the adapter round trip is lossless.
func TestToSQLParseRoundTripProperty(t *testing.T) {
	db := enginetest.SmallDB(500, 7)
	f := func(seed int64) bool {
		q := randomQuery(seed)
		parsed, err := Parse(q.ToSQL(), db)
		if err != nil {
			return false
		}
		parsed.VizName = q.VizName // not part of SQL
		return parsed.Signature() == q.Signature()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// randomQuery builds a valid random query over the enginetest schema.
func randomQuery(seed int64) *query.Query {
	rng := newRng(seed)
	q := &query.Query{VizName: "v", Table: "flights"}
	nominal := []string{"carrier", "origin_state"}
	quant := []string{"dep_delay", "arr_delay", "distance"}

	dims := 1 + rng.Intn(2)
	for i := 0; i < dims; i++ {
		if rng.Intn(2) == 0 {
			q.Bins = append(q.Bins, query.Binning{Field: nominal[rng.Intn(len(nominal))], Kind: dataset.Nominal})
		} else {
			q.Bins = append(q.Bins, query.Binning{
				Field: quant[rng.Intn(len(quant))], Kind: dataset.Quantitative,
				Width:  float64(1+rng.Intn(100)) / 4,
				Origin: float64(rng.Intn(41) - 20),
			})
		}
	}
	funcs := []query.AggFunc{query.Count, query.Sum, query.Avg, query.Min, query.Max}
	n := 1 + rng.Intn(2)
	for i := 0; i < n; i++ {
		fn := funcs[rng.Intn(len(funcs))]
		a := query.Aggregate{Func: fn}
		if fn != query.Count {
			a.Field = quant[rng.Intn(len(quant))]
		}
		q.Aggs = append(q.Aggs, a)
	}
	if rng.Intn(2) == 0 {
		q.Filter = q.Filter.And(query.Predicate{
			Field: "carrier", Op: query.OpIn,
			Values: []string{"AA", "UA"}[:1+rng.Intn(2)],
		})
	}
	if rng.Intn(2) == 0 {
		lo := float64(rng.Intn(100))
		q.Filter = q.Filter.And(query.Predicate{
			Field: "distance", Op: query.OpRange, Lo: lo, Hi: lo + float64(1+rng.Intn(500)),
		})
	}
	return q
}

func TestDriverEndToEnd(t *testing.T) {
	db := enginetest.SmallDB(20000, 5)
	sqdb, err := Register("e2e", db)
	if err != nil {
		t.Fatal(err)
	}
	defer Unregister("e2e")
	defer sqdb.Close()

	rows, err := sqdb.Query("SELECT carrier AS bin0, COUNT(*) FROM flights GROUP BY bin0")
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	total := 0.0
	seen := 0
	for rows.Next() {
		var carrier string
		var count float64
		if err := rows.Scan(&carrier, &count); err != nil {
			t.Fatal(err)
		}
		if carrier == "" {
			t.Error("empty carrier value")
		}
		total += count
		seen++
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if total != 20000 {
		t.Errorf("total count = %v, want 20000", total)
	}
	if seen != len(enginetest.Carriers) {
		t.Errorf("groups = %d, want %d", seen, len(enginetest.Carriers))
	}
}

func TestDriverMatchesGroundTruth(t *testing.T) {
	db := enginetest.SmallDB(15000, 9)
	sqdb, err := Register("gt", db)
	if err != nil {
		t.Fatal(err)
	}
	defer Unregister("gt")
	defer sqdb.Close()

	q := enginetest.AvgDelayByDistance()
	gt, err := enginetest.Exact(db, q)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := sqdb.Query(q.ToSQL())
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	matched := 0
	for rows.Next() {
		var bin int64
		var avg float64
		if err := rows.Scan(&bin, &avg); err != nil {
			t.Fatal(err)
		}
		want, ok := gt.ValueAt(query.BinKey{A: bin}, 0)
		if !ok {
			t.Errorf("unexpected bin %d", bin)
			continue
		}
		if math.Abs(avg-want) > 1e-9 {
			t.Errorf("bin %d: avg %v, want %v", bin, avg, want)
		}
		matched++
	}
	if matched != len(gt.Bins) {
		t.Errorf("bins = %d, want %d", matched, len(gt.Bins))
	}
}

func TestDriverContextCancellation(t *testing.T) {
	db := enginetest.SmallDB(200000, 11)
	sqdb, err := Register("cancel", db)
	if err != nil {
		t.Fatal(err)
	}
	defer Unregister("cancel")
	defer sqdb.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sqdb.QueryContext(ctx, "SELECT carrier AS bin0, COUNT(*) FROM flights GROUP BY bin0"); err == nil {
		t.Error("cancelled context should fail the query")
	}
}

func TestDriverErrors(t *testing.T) {
	db := enginetest.SmallDB(100, 13)
	sqdb, err := Register("errs", db)
	if err != nil {
		t.Fatal(err)
	}
	defer Unregister("errs")
	defer sqdb.Close()
	if _, err := sqdb.Query("SELECT nope"); err == nil {
		t.Error("bad SQL should fail")
	}
	if _, err := sqdb.Exec("DELETE FROM flights"); err == nil {
		t.Error("writes should fail")
	}
	if _, err := sqdb.Begin(); err == nil {
		t.Error("transactions should fail")
	}
	if _, err := sqdb.Query("SELECT carrier AS bin0, COUNT(*) FROM flights WHERE carrier = ? GROUP BY bin0", "AA"); err == nil {
		t.Error("placeholders should fail")
	}

	// Unknown DSN.
	other, err := sql.Open("sqlmem", "ghost-dsn")
	if err == nil {
		if pingErr := other.Ping(); pingErr == nil {
			t.Error("unknown DSN should fail")
		}
		other.Close()
	}
	if _, err := Register("nil-db", nil); err == nil {
		t.Error("nil database should be rejected")
	}
}

func TestBinningsOf(t *testing.T) {
	db := enginetest.SmallDB(100, 15)
	bins, err := BinningsOf("SELECT FLOOR(dep_delay/10) AS bin0, COUNT(*) FROM flights GROUP BY bin0", db)
	if err != nil {
		t.Fatal(err)
	}
	if len(bins) != 1 || bins[0].Width != 10 {
		t.Errorf("binnings wrong: %+v", bins)
	}
	if _, err := BinningsOf("garbage", db); err == nil {
		t.Error("garbage should fail")
	}
}

// newRng is a tiny deterministic RNG to avoid importing math/rand at top
// level twice in tests.
type simpleRng struct{ state uint64 }

func newRng(seed int64) *simpleRng {
	return &simpleRng{state: uint64(seed)*2862933555777941757 + 3037000493}
}

func (r *simpleRng) Intn(n int) int {
	r.state = r.state*6364136223846793005 + 1442695040888963407
	return int((r.state >> 33) % uint64(n))
}

var _ = fmt.Sprintf // keep fmt for debug helpers
