// Package sqlmem is an in-process SQL database exposed through the standard
// database/sql/driver interfaces. It executes exactly the aggregation
// dialect the benchmark driver emits (paper Fig. 4, query.ToSQL): binned
// GROUP BY aggregations with conjunctive WHERE clauses, evaluated on the
// shared columnar kernels.
//
// Together with internal/engine/sqldb it closes the loop the paper's
// architecture describes: the benchmark driver renders a visualization
// specification to SQL text, ships it through database/sql, and a SQL
// system executes it — the integration path a user would take to benchmark
// PostgreSQL, MonetDB or any other driver-backed system.
package sqlmem

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"idebench/internal/dataset"
	"idebench/internal/query"
)

// Parse translates a SQL string of the supported dialect into a
// query.Query bound to the given database's schema:
//
//	SELECT <bin> [, <bin>] , <agg> [, <agg>...]
//	FROM <table>
//	[WHERE <pred> [AND <pred>...]]
//	GROUP BY bin0 [, bin1]
//
//	bin  := FLOOR(field/width) AS binN
//	      | FLOOR((field - origin)/width) AS binN
//	      | field AS binN
//	agg  := COUNT(*) | AVG(f) | SUM(f) | MIN(f) | MAX(f)
//	pred := field = 'v' | field IN ('a' [, 'b'...])
//	      | (field >= lo AND field < hi)
func Parse(sql string, db *dataset.Database) (*query.Query, error) {
	p := &parser{toks: tokenize(sql), db: db}
	q, err := p.parseSelect()
	if err != nil {
		return nil, fmt.Errorf("sqlmem: %w (in %q)", err, sql)
	}
	if err := q.Validate(); err != nil {
		return nil, fmt.Errorf("sqlmem: parsed query invalid: %w", err)
	}
	return q, nil
}

// --- tokenizer ---------------------------------------------------------------

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokPunct // single-char: ( ) , / = * < >
	tokOp    // multi-char: >= <=
)

type token struct {
	kind tokKind
	text string
}

func tokenize(s string) []token {
	var toks []token
	i := 0
	for i < len(s) {
		c := rune(s[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '\'':
			j := i + 1
			var sb strings.Builder
			for j < len(s) {
				if s[j] == '\'' {
					if j+1 < len(s) && s[j+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						j += 2
						continue
					}
					break
				}
				sb.WriteByte(s[j])
				j++
			}
			toks = append(toks, token{tokString, sb.String()})
			i = j + 1
		case unicode.IsDigit(c) || c == '.':
			j := i
			for j < len(s) && (unicode.IsDigit(rune(s[j])) || s[j] == '.' ||
				s[j] == 'e' || s[j] == 'E' ||
				((s[j] == '+' || s[j] == '-') && j > i && (s[j-1] == 'e' || s[j-1] == 'E'))) {
				j++
			}
			toks = append(toks, token{tokNumber, s[i:j]})
			i = j
		case unicode.IsLetter(c) || c == '_':
			j := i
			for j < len(s) && (unicode.IsLetter(rune(s[j])) || unicode.IsDigit(rune(s[j])) || s[j] == '_') {
				j++
			}
			toks = append(toks, token{tokIdent, s[i:j]})
			i = j
		case c == '>' || c == '<':
			if i+1 < len(s) && s[i+1] == '=' {
				toks = append(toks, token{tokOp, s[i : i+2]})
				i += 2
			} else {
				toks = append(toks, token{tokPunct, string(c)})
				i++
			}
		default:
			toks = append(toks, token{tokPunct, string(c)})
			i++
		}
	}
	toks = append(toks, token{tokEOF, ""})
	return toks
}

// --- parser ------------------------------------------------------------------

type parser struct {
	toks []token
	pos  int
	db   *dataset.Database
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) expectIdent(kw string) error {
	t := p.next()
	if t.kind != tokIdent || !strings.EqualFold(t.text, kw) {
		return fmt.Errorf("expected %s, got %q", kw, t.text)
	}
	return nil
}

func (p *parser) expectPunct(ch string) error {
	t := p.next()
	if t.kind != tokPunct || t.text != ch {
		return fmt.Errorf("expected %q, got %q", ch, t.text)
	}
	return nil
}

func (p *parser) acceptIdent(kw string) bool {
	if p.peek().kind == tokIdent && strings.EqualFold(p.peek().text, kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) acceptPunct(ch string) bool {
	if p.peek().kind == tokPunct && p.peek().text == ch {
		p.pos++
		return true
	}
	return false
}

// number parses an optionally negated numeric literal.
func (p *parser) number() (float64, error) {
	neg := false
	for p.acceptPunct("-") {
		neg = !neg
	}
	t := p.next()
	if t.kind != tokNumber {
		return 0, fmt.Errorf("expected number, got %q", t.text)
	}
	v, err := strconv.ParseFloat(t.text, 64)
	if err != nil {
		return 0, fmt.Errorf("bad number %q: %w", t.text, err)
	}
	if neg {
		v = -v
	}
	return v, nil
}

func (p *parser) parseSelect() (*query.Query, error) {
	if err := p.expectIdent("SELECT"); err != nil {
		return nil, err
	}
	q := &query.Query{VizName: "sql"}

	// Select list: bins (with AS binN) and aggregates, in any order; the
	// driver emits bins first.
	for {
		if err := p.parseSelectItem(q); err != nil {
			return nil, err
		}
		if !p.acceptPunct(",") {
			break
		}
	}

	if err := p.expectIdent("FROM"); err != nil {
		return nil, err
	}
	t := p.next()
	if t.kind != tokIdent {
		return nil, fmt.Errorf("expected table name, got %q", t.text)
	}
	q.Table = t.text

	if p.acceptIdent("WHERE") {
		for {
			pred, err := p.parsePredicate()
			if err != nil {
				return nil, err
			}
			q.Filter.Predicates = append(q.Filter.Predicates, pred)
			if !p.acceptIdent("AND") {
				break
			}
		}
	}

	if err := p.expectIdent("GROUP"); err != nil {
		return nil, err
	}
	if err := p.expectIdent("BY"); err != nil {
		return nil, err
	}
	// Group-by aliases must reference the parsed bins in order.
	n := 0
	for {
		t := p.next()
		if t.kind != tokIdent || t.text != fmt.Sprintf("bin%d", n) {
			return nil, fmt.Errorf("expected bin%d in GROUP BY, got %q", n, t.text)
		}
		n++
		if !p.acceptPunct(",") {
			break
		}
	}
	if n != len(q.Bins) {
		return nil, fmt.Errorf("GROUP BY lists %d bins, SELECT defines %d", n, len(q.Bins))
	}
	if p.peek().kind != tokEOF {
		return nil, fmt.Errorf("trailing input at %q", p.peek().text)
	}
	return q, nil
}

func (p *parser) parseSelectItem(q *query.Query) error {
	t := p.peek()
	if t.kind != tokIdent {
		return fmt.Errorf("expected select item, got %q", t.text)
	}
	upper := strings.ToUpper(t.text)
	switch upper {
	case "FLOOR":
		b, err := p.parseFloorBin()
		if err != nil {
			return err
		}
		q.Bins = append(q.Bins, b)
		return nil
	case "COUNT", "AVG", "SUM", "MIN", "MAX":
		a, err := p.parseAggregate()
		if err != nil {
			return err
		}
		q.Aggs = append(q.Aggs, a)
		return nil
	default:
		// Nominal binning: `field AS binN`.
		p.next()
		if err := p.expectIdent("AS"); err != nil {
			return err
		}
		alias := p.next()
		if alias.kind != tokIdent || !strings.HasPrefix(alias.text, "bin") {
			return fmt.Errorf("expected bin alias, got %q", alias.text)
		}
		kind, err := p.fieldKind(t.text)
		if err != nil {
			return err
		}
		if kind != dataset.Nominal {
			return fmt.Errorf("bare binning on quantitative field %q", t.text)
		}
		q.Bins = append(q.Bins, query.Binning{Field: t.text, Kind: dataset.Nominal})
		return nil
	}
}

// parseFloorBin handles FLOOR(field/width) and FLOOR((field - origin)/width).
func (p *parser) parseFloorBin() (query.Binning, error) {
	var b query.Binning
	p.next() // FLOOR
	if err := p.expectPunct("("); err != nil {
		return b, err
	}
	if p.acceptPunct("(") {
		f := p.next()
		if f.kind != tokIdent {
			return b, fmt.Errorf("expected field in FLOOR, got %q", f.text)
		}
		b.Field = f.text
		if err := p.expectPunct("-"); err != nil {
			return b, err
		}
		origin, err := p.number()
		if err != nil {
			return b, err
		}
		b.Origin = origin
		if err := p.expectPunct(")"); err != nil {
			return b, err
		}
	} else {
		f := p.next()
		if f.kind != tokIdent {
			return b, fmt.Errorf("expected field in FLOOR, got %q", f.text)
		}
		b.Field = f.text
	}
	if err := p.expectPunct("/"); err != nil {
		return b, err
	}
	width, err := p.number()
	if err != nil {
		return b, err
	}
	b.Width = width
	if err := p.expectPunct(")"); err != nil {
		return b, err
	}
	if err := p.expectIdent("AS"); err != nil {
		return b, err
	}
	alias := p.next()
	if alias.kind != tokIdent || !strings.HasPrefix(alias.text, "bin") {
		return b, fmt.Errorf("expected bin alias, got %q", alias.text)
	}
	b.Kind = dataset.Quantitative
	return b, nil
}

func (p *parser) parseAggregate() (query.Aggregate, error) {
	var a query.Aggregate
	fn := p.next()
	a.Func = query.AggFunc(strings.ToLower(fn.text))
	if err := p.expectPunct("("); err != nil {
		return a, err
	}
	if p.acceptPunct("*") {
		if a.Func != query.Count {
			return a, fmt.Errorf("%s(*) is not supported", fn.text)
		}
	} else {
		f := p.next()
		if f.kind != tokIdent {
			return a, fmt.Errorf("expected aggregate field, got %q", f.text)
		}
		a.Field = f.text
	}
	if err := p.expectPunct(")"); err != nil {
		return a, err
	}
	return a, nil
}

func (p *parser) parsePredicate() (query.Predicate, error) {
	var pr query.Predicate
	// Range predicate: (field >= lo AND field < hi)
	if p.acceptPunct("(") {
		f := p.next()
		if f.kind != tokIdent {
			return pr, fmt.Errorf("expected field in range predicate, got %q", f.text)
		}
		pr.Field = f.text
		pr.Op = query.OpRange
		t := p.next()
		if t.kind != tokOp || t.text != ">=" {
			return pr, fmt.Errorf("expected >= in range predicate, got %q", t.text)
		}
		lo, err := p.number()
		if err != nil {
			return pr, err
		}
		pr.Lo = lo
		if err := p.expectIdent("AND"); err != nil {
			return pr, err
		}
		f2 := p.next()
		if f2.kind != tokIdent || f2.text != pr.Field {
			return pr, fmt.Errorf("range predicate on mismatched fields %q / %q", pr.Field, f2.text)
		}
		if err := p.expectPunct("<"); err != nil {
			return pr, err
		}
		hi, err := p.number()
		if err != nil {
			return pr, err
		}
		pr.Hi = hi
		if err := p.expectPunct(")"); err != nil {
			return pr, err
		}
		return pr, nil
	}

	f := p.next()
	if f.kind != tokIdent {
		return pr, fmt.Errorf("expected field in predicate, got %q", f.text)
	}
	pr.Field = f.text
	switch {
	case p.acceptPunct("="):
		v := p.next()
		if v.kind != tokString {
			return pr, fmt.Errorf("expected string literal, got %q", v.text)
		}
		pr.Op = query.OpIn
		pr.Values = []string{v.text}
	case p.acceptIdent("IN"):
		if err := p.expectPunct("("); err != nil {
			return pr, err
		}
		pr.Op = query.OpIn
		for {
			v := p.next()
			if v.kind != tokString {
				return pr, fmt.Errorf("expected string literal in IN list, got %q", v.text)
			}
			pr.Values = append(pr.Values, v.text)
			if !p.acceptPunct(",") {
				break
			}
		}
		if err := p.expectPunct(")"); err != nil {
			return pr, err
		}
	default:
		return pr, fmt.Errorf("unsupported predicate operator after %q", pr.Field)
	}
	return pr, nil
}

// fieldKind resolves a column's kind from the database schema.
func (p *parser) fieldKind(name string) (dataset.Kind, error) {
	col, _, _, err := p.db.ResolveColumn(name)
	if err != nil {
		return 0, err
	}
	return col.Field.Kind, nil
}
