package sqlmem

import (
	"context"
	"database/sql"
	"database/sql/driver"
	"fmt"
	"io"
	"sync"

	"idebench/internal/dataset"
	"idebench/internal/engine"
	"idebench/internal/query"
)

// Driver implements database/sql/driver.Driver over registered in-memory
// databases. Data source names are registry keys passed to Register.
type Driver struct{}

// registry maps DSNs to databases. database/sql drivers are process-global,
// so the registry is too.
var (
	registryMu sync.RWMutex
	registry   = map[string]*dataset.Database{}
	registered sync.Once
)

// Register binds a database to a data source name and makes sure the
// "sqlmem" driver is registered with database/sql. It returns a *sql.DB
// handle for the DSN.
func Register(dsn string, db *dataset.Database) (*sql.DB, error) {
	if db == nil || db.Fact == nil {
		return nil, fmt.Errorf("sqlmem: nil database")
	}
	registered.Do(func() { sql.Register("sqlmem", Driver{}) })
	registryMu.Lock()
	registry[dsn] = db
	registryMu.Unlock()
	return sql.Open("sqlmem", dsn)
}

// Unregister removes a DSN from the registry (open handles fail afterwards).
func Unregister(dsn string) {
	registryMu.Lock()
	delete(registry, dsn)
	registryMu.Unlock()
}

// Open implements driver.Driver.
func (Driver) Open(dsn string) (driver.Conn, error) {
	registryMu.RLock()
	db, ok := registry[dsn]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("sqlmem: unknown data source %q", dsn)
	}
	return &conn{db: db}, nil
}

// conn implements driver.Conn and driver.QueryerContext. The benchmark path
// uses QueryContext exclusively; Prepare exists for database/sql
// compatibility.
type conn struct {
	db *dataset.Database
}

// Prepare implements driver.Conn.
func (c *conn) Prepare(q string) (driver.Stmt, error) {
	return &stmt{conn: c, sql: q}, nil
}

// Close implements driver.Conn.
func (c *conn) Close() error { return nil }

// Begin implements driver.Conn; the store is read-only.
func (c *conn) Begin() (driver.Tx, error) {
	return nil, fmt.Errorf("sqlmem: transactions are not supported")
}

// QueryContext implements driver.QueryerContext: parse, execute with
// cancellation checks between chunks, return rows.
func (c *conn) QueryContext(ctx context.Context, sqlText string, args []driver.NamedValue) (driver.Rows, error) {
	if len(args) != 0 {
		return nil, fmt.Errorf("sqlmem: placeholder arguments are not supported")
	}
	return execute(ctx, c.db, sqlText)
}

var (
	_ driver.QueryerContext = (*conn)(nil)
)

// stmt implements driver.Stmt for the Prepare path.
type stmt struct {
	conn *conn
	sql  string
}

func (s *stmt) Close() error  { return nil }
func (s *stmt) NumInput() int { return 0 }

func (s *stmt) Exec(args []driver.Value) (driver.Result, error) {
	return nil, fmt.Errorf("sqlmem: write statements are not supported")
}

func (s *stmt) Query(args []driver.Value) (driver.Rows, error) {
	if len(args) != 0 {
		return nil, fmt.Errorf("sqlmem: placeholder arguments are not supported")
	}
	return execute(context.Background(), s.conn.db, s.sql)
}

// chunkRows bounds work between context cancellation checks.
const chunkRows = 1 << 14

// execute parses and runs one query, materializing the result rows.
func execute(ctx context.Context, db *dataset.Database, sqlText string) (driver.Rows, error) {
	q, err := Parse(sqlText, db)
	if err != nil {
		return nil, err
	}
	plan, err := engine.Compile(db, q)
	if err != nil {
		return nil, fmt.Errorf("sqlmem: %w", err)
	}
	gs := engine.NewGroupState(plan)
	for lo := 0; lo < plan.NumRows; lo += chunkRows {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		hi := lo + chunkRows
		if hi > plan.NumRows {
			hi = plan.NumRows
		}
		gs.ScanRange(lo, hi)
	}
	res := gs.SnapshotExact()

	// Column layout: one column per bin dimension, then one per aggregate.
	cols := make([]string, 0, len(q.Bins)+len(q.Aggs))
	for i := range q.Bins {
		cols = append(cols, fmt.Sprintf("bin%d", i))
	}
	for _, a := range q.Aggs {
		cols = append(cols, a.String())
	}

	out := make([][]driver.Value, 0, len(res.Bins))
	for _, key := range res.SortedKeys() {
		bv := res.Bins[key]
		row := make([]driver.Value, 0, len(cols))
		comps := [2]int64{key.A, key.B}
		for i, b := range q.Bins {
			if b.Kind == dataset.Nominal {
				// Nominal bins surface the value, like a real SQL engine.
				row = append(row, plan.BinDicts[i].Value(uint32(comps[i])))
			} else {
				// Quantitative bins surface the FLOOR() result.
				row = append(row, comps[i])
			}
		}
		for _, v := range bv.Values {
			row = append(row, v)
		}
		out = append(out, row)
	}
	return &rows{cols: cols, data: out}, nil
}

// rows implements driver.Rows over materialized values.
type rows struct {
	cols []string
	data [][]driver.Value
	pos  int
}

func (r *rows) Columns() []string { return r.cols }
func (r *rows) Close() error      { return nil }

func (r *rows) Next(dest []driver.Value) error {
	if r.pos >= len(r.data) {
		return io.EOF
	}
	copy(dest, r.data[r.pos])
	r.pos++
	return nil
}

// BinningsOf re-parses a SQL string and returns its binnings; the sqldb
// adapter uses it to map returned rows back onto bin keys.
func BinningsOf(sqlText string, db *dataset.Database) ([]query.Binning, error) {
	q, err := Parse(sqlText, db)
	if err != nil {
		return nil, err
	}
	return q.Bins, nil
}
