package datagen

import (
	"fmt"

	"idebench/internal/dataset"
)

// DimensionSpec describes one dimension table to split out of the
// de-normalized fact table: the listed nominal attributes move into a new
// dimension table (one row per distinct attribute combination) and the fact
// table gains a quantitative FK column holding the dimension row index.
type DimensionSpec struct {
	// Name is the dimension table name.
	Name string
	// Attributes are the fact columns (all nominal) that move into the
	// dimension; the combination of their values keys a dimension row.
	Attributes []string
	// FKColumn names the foreign-key column added to the fact table.
	FKColumn string
}

// DefaultDimensions is the star schema used by the paper's Exp. 2: "the
// fact table holds foreign keys to two dimension tables (airports and
// carriers)".
func DefaultDimensions() []DimensionSpec {
	return []DimensionSpec{
		{Name: "carriers", Attributes: []string{"carrier"}, FKColumn: "carrier_fk"},
		{Name: "airports", Attributes: []string{"origin_airport", "origin_state"}, FKColumn: "origin_fk"},
	}
}

// Normalize vertically partitions the fact table per the specs (paper
// Sec. 4.2: "the data generator then vertically partitions the data into
// multiple tables (normalization) based on a user-given schema
// specification"). Columns not claimed by any spec stay in the fact table;
// claimed columns are replaced by FK columns. Unclaimed column storage is
// shared with the input table (tables are immutable).
func Normalize(fact *dataset.Table, specs []DimensionSpec) (*dataset.Database, error) {
	if len(specs) == 0 {
		return &dataset.Database{Fact: fact}, nil
	}
	claimed := map[string]int{} // attribute -> spec index
	for si, spec := range specs {
		if spec.Name == "" || spec.FKColumn == "" || len(spec.Attributes) == 0 {
			return nil, fmt.Errorf("datagen: dimension spec %d incomplete", si)
		}
		if len(spec.Attributes) > 4 {
			return nil, fmt.Errorf("datagen: dimension %q: at most 4 attributes supported, got %d",
				spec.Name, len(spec.Attributes))
		}
		if fact.Schema.FieldIndex(spec.FKColumn) >= 0 {
			return nil, fmt.Errorf("datagen: FK column %q collides with a fact column", spec.FKColumn)
		}
		for _, a := range spec.Attributes {
			f, ok := fact.Schema.Field(a)
			if !ok {
				return nil, fmt.Errorf("datagen: dimension %q: unknown attribute %q", spec.Name, a)
			}
			if f.Kind != dataset.Nominal {
				return nil, fmt.Errorf("datagen: dimension %q: attribute %q is not nominal", spec.Name, a)
			}
			if _, dup := claimed[a]; dup {
				return nil, fmt.Errorf("datagen: attribute %q claimed by two dimensions", a)
			}
			claimed[a] = si
		}
	}

	n := fact.NumRows()
	dims := make([]*dataset.Dimension, len(specs))
	fks := make([][]float64, len(specs))

	for si, spec := range specs {
		cols := make([]*dataset.Column, len(spec.Attributes))
		for ai, a := range spec.Attributes {
			cols[ai] = fact.Column(a)
		}
		// Assign dense dimension row ids per distinct combination.
		rowID := make(map[combKey]int)
		var dimRows []combKey
		fk := make([]float64, n)
		for i := 0; i < n; i++ {
			var key combKey
			for ai, c := range cols {
				key.codes[ai] = c.Codes[i]
			}
			key.n = len(cols)
			id, ok := rowID[key]
			if !ok {
				id = len(dimRows)
				rowID[key] = id
				dimRows = append(dimRows, key)
			}
			fk[i] = float64(id)
		}
		fks[si] = fk

		// Build the dimension table, sharing dictionaries.
		fields := make([]dataset.Field, len(spec.Attributes))
		for ai, a := range spec.Attributes {
			fields[ai] = dataset.Field{Name: a, Kind: dataset.Nominal}
		}
		schema, err := dataset.NewSchema(fields)
		if err != nil {
			return nil, err
		}
		db := dataset.NewBuilder(spec.Name, schema, len(dimRows))
		for ai := range spec.Attributes {
			db.SetDict(ai, cols[ai].Dict)
		}
		for _, key := range dimRows {
			for ai := 0; ai < key.n; ai++ {
				db.AppendCode(ai, key.codes[ai])
			}
		}
		dimTable, err := db.Build()
		if err != nil {
			return nil, err
		}
		dims[si] = &dataset.Dimension{Table: dimTable, FKColumn: spec.FKColumn}
	}

	// Assemble the new fact table: unclaimed columns (shared storage) + FKs.
	var fields []dataset.Field
	var cols []*dataset.Column
	for j, f := range fact.Schema.Fields {
		if _, isClaimed := claimed[f.Name]; isClaimed {
			continue
		}
		fields = append(fields, f)
		cols = append(cols, fact.Columns[j])
	}
	for si, spec := range specs {
		f := dataset.Field{Name: spec.FKColumn, Kind: dataset.Quantitative}
		fields = append(fields, f)
		cols = append(cols, &dataset.Column{Field: f, Nums: fks[si]})
	}
	schema, err := dataset.NewSchema(fields)
	if err != nil {
		return nil, err
	}
	newFact, err := dataset.NewTable(fact.Name, schema, cols)
	if err != nil {
		return nil, err
	}
	return &dataset.Database{Fact: newFact, Dimensions: dims}, nil
}

// combKey is a fixed-size composite key for up to 4 dimension attributes.
type combKey struct {
	codes [4]uint32
	n     int
}
