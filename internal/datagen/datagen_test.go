package datagen

import (
	"math"
	"sort"
	"testing"

	"idebench/internal/dataset"
	"idebench/internal/stats"
)

func TestGenerateSeedBasics(t *testing.T) {
	tbl, err := GenerateSeed(5000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 5000 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
	if tbl.Name != "flights" {
		t.Errorf("name = %q", tbl.Name)
	}
	// Value range sanity.
	for _, c := range []struct {
		col    string
		lo, hi float64
	}{
		{"dep_hour", 0, 23},
		{"month", 1, 12},
		{"day_of_week", 1, 7},
		{"distance", 50, 5000},
		{"air_time", 10, 1000},
	} {
		nums := tbl.Column(c.col).Nums
		for _, v := range nums {
			if v < c.lo || v > c.hi {
				t.Errorf("%s value %v outside [%v,%v]", c.col, v, c.lo, c.hi)
				break
			}
		}
	}
}

func TestGenerateSeedDeterministic(t *testing.T) {
	a, err := GenerateSeed(500, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateSeed(500, 7)
	if err != nil {
		t.Fatal(err)
	}
	for j := range a.Columns {
		for i := 0; i < 500; i++ {
			if a.Columns[j].ValueString(i) != b.Columns[j].ValueString(i) {
				t.Fatalf("seed generation not deterministic at (%d,%d)", i, j)
			}
		}
	}
	c, err := GenerateSeed(500, 8)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := 0; i < 500 && same; i++ {
		if a.Column("dep_delay").Nums[i] != c.Column("dep_delay").Nums[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds should give different data")
	}
}

func TestGenerateSeedErrors(t *testing.T) {
	if _, err := GenerateSeed(0, 1); err == nil {
		t.Error("n=0 should error")
	}
	if _, err := GenerateSeed(-5, 1); err == nil {
		t.Error("negative n should error")
	}
}

func TestSeedCorrelations(t *testing.T) {
	tbl, err := GenerateSeed(20000, 3)
	if err != nil {
		t.Fatal(err)
	}
	corr := func(a, b string) float64 {
		x, y := tbl.Column(a).Nums, tbl.Column(b).Nums
		cov, err := stats.Covariance([][]float64{x, y})
		if err != nil {
			t.Fatal(err)
		}
		return stats.CorrelationFromCovariance(cov).At(0, 1)
	}
	if c := corr("dep_delay", "arr_delay"); c < 0.6 {
		t.Errorf("dep/arr delay correlation %v, want > 0.6", c)
	}
	if c := corr("distance", "air_time"); c < 0.9 {
		t.Errorf("distance/air_time correlation %v, want > 0.9", c)
	}
}

func TestSeedCarrierSkew(t *testing.T) {
	tbl, err := GenerateSeed(20000, 5)
	if err != nil {
		t.Fatal(err)
	}
	col := tbl.Column("carrier")
	counts := make(map[uint32]int)
	for _, c := range col.Codes {
		counts[c]++
	}
	wn, _ := col.Dict.Lookup("WN")
	qx, _ := col.Dict.Lookup("QX")
	if counts[wn] <= counts[qx]*2 {
		t.Errorf("carrier popularity not skewed: WN=%d QX=%d", counts[wn], counts[qx])
	}
}

func TestScalerPreservesMarginals(t *testing.T) {
	seed, err := GenerateSeed(8000, 11)
	if err != nil {
		t.Fatal(err)
	}
	scaled, err := ScaleTable(seed, 30000, 13)
	if err != nil {
		t.Fatal(err)
	}
	if scaled.NumRows() != 30000 {
		t.Fatalf("scaled rows = %d", scaled.NumRows())
	}

	// Quantitative marginals: mean and quartiles of dep_delay should be close.
	seedDelay := seed.Column("dep_delay").Nums
	scaledDelay := scaled.Column("dep_delay").Nums
	se, _ := stats.NewEmpiricalCDF(seedDelay)
	sc, _ := stats.NewEmpiricalCDF(scaledDelay)
	for _, p := range []float64{0.25, 0.5, 0.75, 0.9} {
		a, b := se.Quantile(p), sc.Quantile(p)
		if math.Abs(a-b) > 3+0.1*math.Abs(a) {
			t.Errorf("dep_delay q%.2f: seed %v vs scaled %v", p, a, b)
		}
	}

	// Nominal marginals: carrier frequencies within 2 percentage points.
	freq := func(t2 *dataset.Table) map[string]float64 {
		col := t2.Column("carrier")
		m := map[string]float64{}
		for _, c := range col.Codes {
			m[col.Dict.Value(c)]++
		}
		for k := range m {
			m[k] /= float64(t2.NumRows())
		}
		return m
	}
	fs, fc := freq(seed), freq(scaled)
	for k, v := range fs {
		if math.Abs(v-fc[k]) > 0.02 {
			t.Errorf("carrier %s frequency: seed %.3f vs scaled %.3f", k, v, fc[k])
		}
	}
}

// spearman computes the rank (Spearman) correlation of two vectors — the
// quantity a Gaussian copula preserves by construction (Pearson correlation
// is attenuated through heavy-tailed marginals such as dep_delay).
func spearman(t *testing.T, x, y []float64) float64 {
	t.Helper()
	rank := func(v []float64) []float64 {
		idx := make([]int, len(v))
		for i := range idx {
			idx[i] = i
		}
		sortByVal(idx, v)
		r := make([]float64, len(v))
		for pos, i := range idx {
			r[i] = float64(pos)
		}
		return r
	}
	cov, err := stats.Covariance([][]float64{rank(x), rank(y)})
	if err != nil {
		t.Fatal(err)
	}
	return stats.CorrelationFromCovariance(cov).At(0, 1)
}

func sortByVal(idx []int, v []float64) {
	sort.Slice(idx, func(a, b int) bool { return v[idx[a]] < v[idx[b]] })
}

func TestScalerPreservesCorrelation(t *testing.T) {
	seed, err := GenerateSeed(8000, 17)
	if err != nil {
		t.Fatal(err)
	}
	scaled, err := ScaleTable(seed, 30000, 19)
	if err != nil {
		t.Fatal(err)
	}
	pairs := [][2]string{
		{"dep_delay", "arr_delay"},
		{"distance", "air_time"},
		{"air_time", "actual_elapsed"},
	}
	for _, p := range pairs {
		a := spearman(t, seed.Column(p[0]).Nums, seed.Column(p[1]).Nums)
		b := spearman(t, scaled.Column(p[0]).Nums, scaled.Column(p[1]).Nums)
		if math.Abs(a-b) > 0.1 {
			t.Errorf("rank correlation %s/%s: seed %.3f vs scaled %.3f", p[0], p[1], a, b)
		}
		if a > 0.5 && b < 0.4 {
			t.Errorf("strong correlation %s/%s lost in scaling: %.3f → %.3f", p[0], p[1], a, b)
		}
	}
}

func TestScalerSharesDictionaries(t *testing.T) {
	seed, err := GenerateSeed(2000, 23)
	if err != nil {
		t.Fatal(err)
	}
	scaled, err := ScaleTable(seed, 1000, 29)
	if err != nil {
		t.Fatal(err)
	}
	if seed.Column("carrier").Dict != scaled.Column("carrier").Dict {
		t.Error("scaled table should share the seed's dictionaries")
	}
}

func TestScalerDownsamples(t *testing.T) {
	seed, err := GenerateSeed(5000, 31)
	if err != nil {
		t.Fatal(err)
	}
	small, err := ScaleTable(seed, 100, 37)
	if err != nil {
		t.Fatal(err)
	}
	if small.NumRows() != 100 {
		t.Errorf("downsampled rows = %d", small.NumRows())
	}
}

func TestScalerErrors(t *testing.T) {
	seed, _ := GenerateSeed(100, 1)
	if _, err := ScaleTable(seed, -1, 1); err == nil {
		t.Error("negative rows should error")
	}
	schema := dataset.MustSchema([]dataset.Field{{Name: "x", Kind: dataset.Quantitative}})
	b := dataset.NewBuilder("t", schema, 1)
	b.AppendNum(0, 1)
	tiny, _ := b.Build()
	if _, err := NewScaler(tiny, 1); err == nil {
		t.Error("single-row seed should error")
	}
}

func TestNormalizeDefaultDimensions(t *testing.T) {
	seed, err := GenerateSeed(5000, 41)
	if err != nil {
		t.Fatal(err)
	}
	db, err := Normalize(seed, DefaultDimensions())
	if err != nil {
		t.Fatal(err)
	}
	if !db.IsNormalized() || len(db.Dimensions) != 2 {
		t.Fatal("expected 2 dimensions")
	}
	if db.Fact.NumRows() != 5000 {
		t.Error("fact rows changed")
	}
	// Claimed columns left the fact table; FKs arrived.
	for _, gone := range []string{"carrier", "origin_airport", "origin_state"} {
		if db.Fact.Column(gone) != nil {
			t.Errorf("column %q should have moved to a dimension", gone)
		}
	}
	for _, fk := range []string{"carrier_fk", "origin_fk"} {
		if db.Fact.Column(fk) == nil {
			t.Errorf("FK column %q missing", fk)
		}
	}
	// Unclaimed columns share storage with the input.
	if &db.Fact.Column("dep_delay").Nums[0] != &seed.Column("dep_delay").Nums[0] {
		t.Error("unclaimed column storage should be shared")
	}

	// Round-trip check: resolving carrier through the FK reproduces the
	// original values.
	carrierDim := db.Dimensions[0]
	fk := db.Fact.Column("carrier_fk").Nums
	dimCol := carrierDim.Table.Column("carrier")
	origCol := seed.Column("carrier")
	for i := 0; i < 5000; i += 97 {
		got := dimCol.Dict.Value(dimCol.Codes[int(fk[i])])
		want := origCol.Dict.Value(origCol.Codes[i])
		if got != want {
			t.Fatalf("row %d: carrier %q != %q after normalization", i, got, want)
		}
	}

	// Airports dimension: one row per distinct (airport, state) combo.
	airportsDim := db.Dimensions[1].Table
	if airportsDim.NumRows() > 70 || airportsDim.NumRows() < 30 {
		t.Errorf("airports dimension rows = %d, want ~60", airportsDim.NumRows())
	}
}

func TestNormalizeErrors(t *testing.T) {
	seed, _ := GenerateSeed(100, 43)
	cases := []struct {
		name  string
		specs []DimensionSpec
	}{
		{"incomplete", []DimensionSpec{{Name: "x"}}},
		{"unknown attr", []DimensionSpec{{Name: "x", Attributes: []string{"ghost"}, FKColumn: "fk"}}},
		{"quantitative attr", []DimensionSpec{{Name: "x", Attributes: []string{"dep_delay"}, FKColumn: "fk"}}},
		{"fk collision", []DimensionSpec{{Name: "x", Attributes: []string{"carrier"}, FKColumn: "dep_delay"}}},
		{"double claim", []DimensionSpec{
			{Name: "x", Attributes: []string{"carrier"}, FKColumn: "fk1"},
			{Name: "y", Attributes: []string{"carrier"}, FKColumn: "fk2"},
		}},
		{"too many attrs", []DimensionSpec{{Name: "x", FKColumn: "fk",
			Attributes: []string{"carrier", "origin_airport", "origin_state", "dest_airport", "dest_state"}}}},
	}
	for _, c := range cases {
		if _, err := Normalize(seed, c.specs); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestNormalizeEmptySpecs(t *testing.T) {
	seed, _ := GenerateSeed(100, 47)
	db, err := Normalize(seed, nil)
	if err != nil {
		t.Fatal(err)
	}
	if db.IsNormalized() {
		t.Error("no specs should yield a de-normalized database")
	}
	if db.Fact != seed {
		t.Error("fact table should pass through unchanged")
	}
}
