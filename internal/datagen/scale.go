package datagen

import (
	"fmt"
	"math/rand"
	"sort"

	"idebench/internal/dataset"
	"idebench/internal/stats"
)

// Scaler grows a seed table to arbitrary size with the paper's copula
// procedure (Sec. 4.2): fit a correlation structure on a random sample of
// the seed, then per generated tuple draw a vector of standard normals,
// induce correlation through the Cholesky factor, map to uniforms via Φ and
// through each attribute's empirical inverse CDF back to the data domain.
//
// Deviations from the paper's one-paragraph sketch, for numerical
// robustness (documented in DESIGN.md):
//
//   - the covariance is computed on normal scores (rank-transformed sample)
//     rather than raw values, i.e. a Gaussian copula fit, which is
//     insensitive to heavy-tailed marginals such as dep_delay;
//   - nominal attributes participate through their dictionary codes with
//     dithered ranks, and map back through a frequency-preserving discrete
//     inverse CDF.
type Scaler struct {
	schema  *dataset.Schema
	name    string
	chol    *stats.Matrix
	quantQ  []*stats.EmpiricalCDF // per attribute, nil for nominal
	nomQ    []*stats.DiscreteCDF  // per attribute, nil for quantitative
	nomDict []*dataset.Dict       // original dictionaries (shared with output)
}

// SampleCap bounds the seed sample used to fit the copula.
const SampleCap = 20000

// NewScaler fits a scaler on the seed table.
func NewScaler(seed *dataset.Table, rngSeed int64) (*Scaler, error) {
	n := seed.NumRows()
	if n < 2 {
		return nil, fmt.Errorf("datagen: seed table needs >= 2 rows, has %d", n)
	}
	rng := rand.New(rand.NewSource(rngSeed))
	idx := stats.ReservoirSample(rng, n, SampleCap)
	m := len(idx)
	d := seed.Schema.Len()

	s := &Scaler{
		schema:  seed.Schema,
		name:    seed.Name,
		quantQ:  make([]*stats.EmpiricalCDF, d),
		nomQ:    make([]*stats.DiscreteCDF, d),
		nomDict: make([]*dataset.Dict, d),
	}

	// Build per-attribute sample vectors and marginal inverse CDFs.
	scores := make([][]float64, d)
	for j, colField := range seed.Schema.Fields {
		col := seed.Columns[j]
		raw := make([]float64, m)
		if colField.Kind == dataset.Quantitative {
			for i, r := range idx {
				raw[i] = col.Nums[r]
			}
			ecdf, err := stats.NewEmpiricalCDF(raw)
			if err != nil {
				return nil, err
			}
			s.quantQ[j] = ecdf
		} else {
			counts := make([]int, col.Dict.Len())
			for i, r := range idx {
				code := col.Codes[r]
				raw[i] = float64(code)
				counts[code]++
			}
			codes := make([]uint32, col.Dict.Len())
			for c := range codes {
				codes[c] = uint32(c)
			}
			dcdf, err := stats.NewDiscreteCDF(codes, counts)
			if err != nil {
				return nil, err
			}
			s.nomQ[j] = dcdf
			s.nomDict[j] = col.Dict
		}
		scores[j] = normalScores(raw, rng)
	}

	cov, err := stats.Covariance(scores)
	if err != nil {
		return nil, err
	}
	corr := stats.CorrelationFromCovariance(cov)
	chol, err := stats.Cholesky(corr)
	if err != nil {
		return nil, err
	}
	s.chol = chol
	return s, nil
}

// normalScores rank-transforms a sample to standard normal quantiles,
// breaking ties with random dithering so that heavily tied (nominal)
// attributes do not collapse the correlation estimate.
func normalScores(raw []float64, rng *rand.Rand) []float64 {
	n := len(raw)
	type pair struct {
		v float64
		t float64 // dither for tie-breaking
		i int
	}
	ps := make([]pair, n)
	for i, v := range raw {
		ps[i] = pair{v: v, t: rng.Float64(), i: i}
	}
	sort.Slice(ps, func(a, b int) bool {
		if ps[a].v != ps[b].v {
			return ps[a].v < ps[b].v
		}
		return ps[a].t < ps[b].t
	})
	out := make([]float64, n)
	for rank, p := range ps {
		u := (float64(rank) + 0.5) / float64(n)
		out[p.i] = stats.NormalQuantile(u)
	}
	return out
}

// Generate produces a new table with rows tuples following the fitted
// distribution. The output shares the seed's dictionaries so nominal codes
// remain comparable.
func (s *Scaler) Generate(rows int, rngSeed int64) (*dataset.Table, error) {
	if rows < 0 {
		return nil, fmt.Errorf("datagen: negative row count %d", rows)
	}
	rng := rand.New(rand.NewSource(rngSeed))
	d := s.schema.Len()
	b := dataset.NewBuilder(s.name, s.schema, rows)
	for j := range s.schema.Fields {
		if s.nomDict[j] != nil {
			b.SetDict(j, s.nomDict[j])
		}
	}

	w := make([]float64, d)
	z := make([]float64, d)
	for i := 0; i < rows; i++ {
		for j := range w {
			w[j] = rng.NormFloat64()
		}
		s.chol.MulVecLowerInto(z, w)
		for j := range s.schema.Fields {
			u := stats.NormalCDF(z[j])
			if s.quantQ[j] != nil {
				b.AppendNum(j, s.quantQ[j].Quantile(u))
			} else {
				b.AppendCode(j, s.nomQ[j].Quantile(u))
			}
		}
	}
	return b.Build()
}

// ScaleTable is the one-call convenience used by the CLI: fit on seed and
// generate rows tuples (up- or down-sampling the dataset, paper Sec. 4.6).
func ScaleTable(seed *dataset.Table, rows int, rngSeed int64) (*dataset.Table, error) {
	s, err := NewScaler(seed, rngSeed)
	if err != nil {
		return nil, err
	}
	return s.Generate(rows, rngSeed+1)
}
