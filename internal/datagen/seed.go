// Package datagen implements the benchmark's data generation pipeline
// (paper Sec. 4.2): a synthetic seed generator reproducing the U.S. domestic
// flights dataset's schema and distribution shapes (the real BTS data is not
// redistributable — see DESIGN.md substitutions), a copula-based scaler that
// grows any seed table to an arbitrary size while preserving marginal
// distributions and cross-attribute correlation, and a normalizer that
// splits the de-normalized table into a star schema.
package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"idebench/internal/dataset"
	"idebench/internal/stats"
)

// Carrier codes modelled on the 2017 BTS reporting carriers.
var carrierNames = []string{
	"WN", "DL", "AA", "OO", "UA", "EV", "B6", "AS", "NK", "F9", "HA", "VX", "YV", "QX",
}

// Airports with their states; popularity is Zipf over this order.
var airports = []struct{ code, state string }{
	{"ATL", "GA"}, {"ORD", "IL"}, {"DFW", "TX"}, {"DEN", "CO"}, {"LAX", "CA"},
	{"SFO", "CA"}, {"PHX", "AZ"}, {"IAH", "TX"}, {"LAS", "NV"}, {"MSP", "MN"},
	{"MCO", "FL"}, {"SEA", "WA"}, {"DTW", "MI"}, {"BOS", "MA"}, {"EWR", "NJ"},
	{"CLT", "NC"}, {"LGA", "NY"}, {"SLC", "UT"}, {"JFK", "NY"}, {"BWI", "MD"},
	{"MDW", "IL"}, {"DCA", "VA"}, {"FLL", "FL"}, {"SAN", "CA"}, {"MIA", "FL"},
	{"PHL", "PA"}, {"TPA", "FL"}, {"DAL", "TX"}, {"HOU", "TX"}, {"PDX", "OR"},
	{"STL", "MO"}, {"HNL", "HI"}, {"AUS", "TX"}, {"OAK", "CA"}, {"MSY", "LA"},
	{"MCI", "MO"}, {"SJC", "CA"}, {"SMF", "CA"}, {"SNA", "CA"}, {"CLE", "OH"},
	{"IND", "IN"}, {"RDU", "NC"}, {"CMH", "OH"}, {"SAT", "TX"}, {"PIT", "PA"},
	{"ABQ", "NM"}, {"CVG", "OH"}, {"PBI", "FL"}, {"BUR", "CA"}, {"JAX", "FL"},
	{"ONT", "CA"}, {"BUF", "NY"}, {"OMA", "NE"}, {"BDL", "CT"}, {"ANC", "AK"},
	{"RIC", "VA"}, {"MEM", "TN"}, {"BHM", "AL"}, {"TUS", "AZ"}, {"BOI", "ID"},
}

// FlightsSchema returns the schema of the de-normalized flights table
// (paper Fig. 2).
func FlightsSchema() *dataset.Schema {
	return dataset.MustSchema([]dataset.Field{
		{Name: "carrier", Kind: dataset.Nominal},
		{Name: "origin_airport", Kind: dataset.Nominal},
		{Name: "origin_state", Kind: dataset.Nominal},
		{Name: "dest_airport", Kind: dataset.Nominal},
		{Name: "dest_state", Kind: dataset.Nominal},
		{Name: "month", Kind: dataset.Quantitative},
		{Name: "day_of_week", Kind: dataset.Quantitative},
		{Name: "dep_hour", Kind: dataset.Quantitative},
		{Name: "dep_delay", Kind: dataset.Quantitative},
		{Name: "arr_delay", Kind: dataset.Quantitative},
		{Name: "taxi_out", Kind: dataset.Quantitative},
		{Name: "air_time", Kind: dataset.Quantitative},
		{Name: "distance", Kind: dataset.Quantitative},
		{Name: "actual_elapsed", Kind: dataset.Quantitative},
	})
}

// GenerateSeed synthesizes n rows of flights-like data with realistic
// marginals and correlations:
//
//   - carrier and airports follow Zipf popularity (hub concentration);
//   - dep_hour is bimodal (morning and late-afternoon banks);
//   - dep_delay is a mixture of a slightly-early normal mode and an
//     exponential late tail whose rate grows over the day (delay
//     propagation);
//   - arr_delay = dep_delay + en-route noise (strong correlation);
//   - distance is log-normal; air_time ≈ distance/7.5 + taxi effects
//     (near-perfect correlation); actual_elapsed = air_time + taxis.
func GenerateSeed(n int, seed int64) (*dataset.Table, error) {
	if n <= 0 {
		return nil, fmt.Errorf("datagen: seed size must be positive, got %d", n)
	}
	rng := rand.New(rand.NewSource(seed))
	carrierZipf, err := stats.NewZipf(len(carrierNames), 0.9)
	if err != nil {
		return nil, err
	}
	airportZipf, err := stats.NewZipf(len(airports), 0.8)
	if err != nil {
		return nil, err
	}

	schema := FlightsSchema()
	b := dataset.NewBuilder("flights", schema, n)
	col := schema.FieldIndex

	for i := 0; i < n; i++ {
		carrier := carrierNames[carrierZipf.Draw(rng)]
		origin := airportZipf.Draw(rng)
		dest := airportZipf.Draw(rng)
		for dest == origin {
			dest = airportZipf.Draw(rng)
		}

		month := float64(1 + rng.Intn(12))
		dow := float64(1 + rng.Intn(7))
		depHour := sampleDepHour(rng)
		depDelay := sampleDepDelay(rng, depHour)
		arrDelay := depDelay + rng.NormFloat64()*12 - 2

		distance := math.Exp(rng.NormFloat64()*0.65 + 6.55) // median ~700mi
		if distance < 67 {
			distance = 67
		}
		if distance > 4983 {
			distance = 4983
		}
		airTime := distance/7.5 + 18 + rng.NormFloat64()*6
		if airTime < 15 {
			airTime = 15
		}
		taxiOut := 10 + rng.ExpFloat64()*6
		taxiIn := 4 + rng.ExpFloat64()*3
		elapsed := airTime + taxiOut + taxiIn

		b.AppendString(col("carrier"), carrier)
		b.AppendString(col("origin_airport"), airports[origin].code)
		b.AppendString(col("origin_state"), airports[origin].state)
		b.AppendString(col("dest_airport"), airports[dest].code)
		b.AppendString(col("dest_state"), airports[dest].state)
		b.AppendNum(col("month"), month)
		b.AppendNum(col("day_of_week"), dow)
		b.AppendNum(col("dep_hour"), depHour)
		b.AppendNum(col("dep_delay"), math.Round(depDelay))
		b.AppendNum(col("arr_delay"), math.Round(arrDelay))
		b.AppendNum(col("taxi_out"), math.Round(taxiOut))
		b.AppendNum(col("air_time"), math.Round(airTime))
		b.AppendNum(col("distance"), math.Round(distance))
		b.AppendNum(col("actual_elapsed"), math.Round(elapsed))
	}
	return b.Build()
}

// sampleDepHour draws from a two-bank mixture: a 7-9am morning bank and a
// 4-7pm afternoon bank over a broad daytime base.
func sampleDepHour(rng *rand.Rand) float64 {
	u := rng.Float64()
	var h float64
	switch {
	case u < 0.30:
		h = 8 + rng.NormFloat64()*1.4 // morning bank
	case u < 0.60:
		h = 17 + rng.NormFloat64()*1.8 // afternoon bank
	default:
		h = 6 + rng.Float64()*16 // daytime base 6am-10pm
	}
	h = math.Round(h)
	if h < 0 {
		h = 0
	}
	if h > 23 {
		h = 23
	}
	return h
}

// sampleDepDelay draws a mixture of an on-time mode, an exponential late
// tail whose rate grows over the day (delay propagation), and a rare
// extreme-disruption tail. The extreme component mirrors the real BTS data,
// where maximum delays reach ~2000 minutes; it is what makes the outer bins
// of delay histograms genuinely sparse — the property that drives the
// paper's missing-bins metric.
func sampleDepDelay(rng *rand.Rand, depHour float64) float64 {
	if rng.Float64() < 0.004 {
		d := 240 + rng.ExpFloat64()*250
		if d > 1950 {
			d = 1950
		}
		return d
	}
	lateProb := 0.18 + 0.012*depHour // delays accumulate over the day
	if rng.Float64() < lateProb {
		return 5 + rng.ExpFloat64()*(25+depHour)
	}
	return rng.NormFloat64()*5 - 2
}
