package shard_test

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"idebench/internal/core"
	"idebench/internal/dataset"
	"idebench/internal/engine"
	"idebench/internal/engine/progressive"
	"idebench/internal/ingest"
	"idebench/internal/query"
	"idebench/internal/shard"
	"idebench/internal/stats"
)

func buildDB(t *testing.T, rows int, seed int64) *dataset.Database {
	t.Helper()
	db, err := core.BuildData(rows, false, seed)
	if err != nil {
		t.Fatalf("BuildData: %v", err)
	}
	return db
}

// TestPartitionRoutesConsistently checks the two halves of the hash
// contract: partitions cover the fact table exactly once, and re-routing a
// partition's own rows through the ingest-batch path sends every row back
// to the same shard. If table-row hashing and ingest-row hashing ever
// disagree, live ingest would scatter rows differently than the bulk load
// did and per-shard answers would silently drift.
func TestPartitionRoutesConsistently(t *testing.T) {
	db := buildDB(t, 6000, 7)
	const n = 4
	parts, err := shard.Partition(db, n)
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}
	total := 0
	for i, p := range parts {
		total += p.Fact.NumRows()
		b := ingest.FromTable(p.Fact, 0, p.Fact.NumRows())
		for r, row := range b.Rows {
			if home := shard.HomeShard(row, n); home != i {
				t.Fatalf("shard %d row %d routes to %d via ingest path", i, r, home)
			}
		}
	}
	if total != db.Fact.NumRows() {
		t.Fatalf("partitions cover %d rows, want %d", total, db.Fact.NumRows())
	}
}

// scanPartial scans one partition to completion and extracts its fragment.
func scanPartial(t *testing.T, db *dataset.Database, q *query.Query) *engine.Partial {
	t.Helper()
	plan, err := engine.Compile(db, q)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	gs := engine.NewGroupState(plan)
	gs.ScanRange(0, db.Fact.NumRows())
	n := int64(db.Fact.NumRows())
	return gs.Partial(n, n, n, true)
}

// TestFoldArrivalOrderInvariant is the satellite property test: folding K
// shard partials in fixed shard-ID order yields a bitwise-identical result
// no matter what order the fragments arrived in. Arrival order is simulated
// by permuting production; the fold buffers by shard ID before merging,
// which is exactly what the coordinator's snapshot path does.
func TestFoldArrivalOrderInvariant(t *testing.T) {
	db := buildDB(t, 9000, 11)
	const k = 5
	parts, err := shard.Partition(db, k)
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}
	q := &query.Query{
		VizName: "v", Table: db.Fact.Name,
		Bins: []query.Binning{{Field: "carrier", Kind: dataset.Nominal}},
		Aggs: []query.Aggregate{
			{Func: query.Count},
			{Func: query.Sum, Field: "dep_delay"},
			{Func: query.Avg, Field: "arr_delay"},
			{Func: query.Min, Field: "distance"},
			{Func: query.Max, Field: "distance"},
		},
	}
	z, err := stats.ZScore(0.95)
	if err != nil {
		t.Fatalf("ZScore: %v", err)
	}

	fragments := make([]*engine.Partial, k)
	for i := range parts {
		fragments[i] = scanPartial(t, parts[i], q)
	}
	foldInOrder := func(byID []*engine.Partial) *query.Result {
		f := engine.NewPartialFold(q.Aggs)
		for _, p := range byID {
			f.Add(p)
		}
		return f.Render(z)
	}
	want := foldInOrder(fragments)
	if len(want.Bins) == 0 {
		t.Fatalf("reference fold has no bins")
	}

	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		// Fragments arrive in a random order; the buffer restores shard-ID
		// order before folding.
		arrival := rng.Perm(k)
		byID := make([]*engine.Partial, k)
		for _, i := range arrival {
			byID[i] = fragments[i]
		}
		got := foldInOrder(byID)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d (arrival %v): fold differs from reference", trial, arrival)
		}
	}
}

// TestMergedCountBitwiseVsSingleNode checks the COUNT acceptance gate at
// the accumulator level: merging per-shard fragments and rendering equals a
// single GroupState scan over the union, bitwise (reflect.DeepEqual on
// Bins). Counts sum exactly regardless of scan split, so any disagreement
// means a lost, duplicated or mis-routed row.
func TestMergedCountBitwiseVsSingleNode(t *testing.T) {
	db := buildDB(t, 9000, 13)
	const k = 3
	parts, err := shard.Partition(db, k)
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}
	q := &query.Query{
		VizName: "v", Table: db.Fact.Name,
		Bins: []query.Binning{{Field: "carrier", Kind: dataset.Nominal}},
		Aggs: []query.Aggregate{{Func: query.Count}},
	}
	z, err := stats.ZScore(0.95)
	if err != nil {
		t.Fatalf("ZScore: %v", err)
	}

	fold := engine.NewPartialFold(q.Aggs)
	for i := range parts {
		fold.Add(scanPartial(t, parts[i], q))
	}
	merged := fold.Render(z)

	plan, err := engine.Compile(db, q)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	gs := engine.NewGroupState(plan)
	gs.ScanRange(0, db.Fact.NumRows())
	n := int64(db.Fact.NumRows())
	single := gs.SnapshotScaled(n, n, n, 0, z)

	if !reflect.DeepEqual(merged.Bins, single.Bins) {
		t.Fatalf("merged bins differ from single-node scan:\nmerged %v\nsingle %v", merged.Bins, single.Bins)
	}
	if !merged.Complete {
		t.Fatalf("merged result not complete")
	}
	if merged.RowsSeen != n || merged.TotalRows != n {
		t.Fatalf("merged rows_seen=%d total=%d, want %d", merged.RowsSeen, merged.TotalRows, n)
	}
}

// runToDone starts q, waits for completion and returns the final snapshot.
func runToDone(t *testing.T, eng engine.Engine, q *query.Query) *query.Result {
	t.Helper()
	h, err := eng.StartQuery(q)
	if err != nil {
		t.Fatalf("StartQuery: %v", err)
	}
	select {
	case <-h.Done():
	case <-time.After(30 * time.Second):
		t.Fatalf("query did not complete")
	}
	res := h.Snapshot()
	if res == nil {
		t.Fatalf("no result after done")
	}
	return res
}

// TestCoordinatorEndToEnd runs a real in-process coordinator over three
// progressive shard engines against a single-node progressive engine:
// quiesced COUNT answers must match bitwise, before and after live ingest
// routed through the coordinator, and merged watermarks must sit on the
// global row axis.
func TestCoordinatorEndToEnd(t *testing.T) {
	db := buildDB(t, 8000, 17)
	opts := engine.Options{Confidence: 0.95, Seed: 17}

	single := progressive.New(progressive.Config{})
	if err := single.Prepare(db, opts); err != nil {
		t.Fatalf("single prepare: %v", err)
	}
	co, err := shard.NewCoordinator(
		progressive.New(progressive.Config{}),
		progressive.New(progressive.Config{}),
		progressive.New(progressive.Config{}),
	)
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	if err := co.Prepare(db, opts); err != nil {
		t.Fatalf("coordinator prepare: %v", err)
	}

	q := &query.Query{
		VizName: "v", Table: db.Fact.Name,
		Bins: []query.Binning{{Field: "carrier", Kind: dataset.Nominal}},
		Aggs: []query.Aggregate{{Func: query.Count}},
	}
	base := int64(db.Fact.NumRows())
	wantBase := runToDone(t, single, q)
	gotBase := runToDone(t, co, q)
	if !reflect.DeepEqual(gotBase.Bins, wantBase.Bins) {
		t.Fatalf("quiesced bins differ before ingest")
	}
	if gotBase.Watermark != base {
		t.Fatalf("merged watermark %d, want %d", gotBase.Watermark, base)
	}
	if co.Watermark() != base {
		t.Fatalf("coordinator watermark %d, want %d", co.Watermark(), base)
	}

	// Live ingest: recycle a slice of the fact table as two appended batches,
	// routed through the coordinator and applied whole to the single node.
	for i, span := range [][2]int{{0, 400}, {400, 900}} {
		b := ingest.FromTable(db.Fact, span[0], span[1])
		b.Seq = int64(i + 1)
		if err := co.ApplyBatch(b, nil); err != nil {
			t.Fatalf("coordinator apply %d: %v", i, err)
		}
		tbl, err := ingest.Materialize(db, b)
		if err != nil {
			t.Fatalf("materialize %d: %v", i, err)
		}
		if err := single.Append(tbl); err != nil {
			t.Fatalf("single append %d: %v", i, err)
		}
	}
	grown := base + 900
	if got := co.Watermark(); got != grown {
		t.Fatalf("coordinator watermark %d after ingest, want %d", got, grown)
	}
	for i, w := range co.ShardWatermarks() {
		if w != grown {
			t.Fatalf("shard %d watermark %d, want %d (synchronous apply confirms all shards)", i, w, grown)
		}
	}

	wantGrown := runToDone(t, single, q)
	gotGrown := runToDone(t, co, q)
	if !reflect.DeepEqual(gotGrown.Bins, wantGrown.Bins) {
		t.Fatalf("quiesced bins differ after ingest")
	}
	if gotGrown.Watermark != grown || gotGrown.TotalRows != grown {
		t.Fatalf("merged watermark=%d total=%d after ingest, want %d", gotGrown.Watermark, gotGrown.TotalRows, grown)
	}
}

// laggingEngine is a fake shard whose confirmed watermark can be frozen,
// simulating a shard that accepted an append but has not yet absorbed it.
// Its query handles report fragments at the frozen watermark, so the
// coordinator's min-watermark rule is observable end to end.
type laggingEngine struct {
	name   string
	rows   int64 // local watermark actually absorbed
	frozen int64 // what Watermark() admits to; 0 means not frozen
}

func (f *laggingEngine) Name() string { return f.name }
func (f *laggingEngine) Prepare(db *dataset.Database, _ engine.Options) error {
	f.rows = int64(db.Fact.NumRows())
	return nil
}
func (f *laggingEngine) OpenSession() engine.Session { panic("not used") }
func (f *laggingEngine) StartQuery(q *query.Query) (engine.Handle, error) {
	done := make(chan struct{})
	close(done)
	w := f.Watermark()
	return &fakeHandle{partial: &engine.Partial{RowsSeen: w, Population: w, Watermark: w, Complete: true}, done: done}, nil
}
func (f *laggingEngine) LinkVizs(_, _ string) {}
func (f *laggingEngine) DeleteViz(_ string)   {}
func (f *laggingEngine) WorkflowStart()       {}
func (f *laggingEngine) WorkflowEnd()         {}
func (f *laggingEngine) Append(rows *dataset.Table) error {
	f.rows += int64(rows.NumRows())
	return nil
}
func (f *laggingEngine) Watermark() int64 {
	if f.frozen > 0 {
		return f.frozen
	}
	return f.rows
}

type fakeHandle struct {
	partial *engine.Partial
	done    chan struct{}
}

func (h *fakeHandle) Snapshot() *query.Result          { return nil }
func (h *fakeHandle) Done() <-chan struct{}            { return h.done }
func (h *fakeHandle) Cancel()                          {}
func (h *fakeHandle) PartialSnapshot() *engine.Partial { return h.partial }

// TestMinWatermarkUnderLaggingShard pins the alignment rule: when one shard
// lags behind the others mid-ingest, both the coordinator's Watermark and a
// merged snapshot's Result.Watermark equal the MIN over translated shard
// watermarks — the data version every fragment is guaranteed to cover.
func TestMinWatermarkUnderLaggingShard(t *testing.T) {
	db := buildDB(t, 4000, 19)
	shards := []*laggingEngine{{name: "fake0"}, {name: "fake1"}}
	co, err := shard.NewCoordinator(shards[0], shards[1])
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	if err := co.Prepare(db, engine.Options{Confidence: 0.95, Seed: 19}); err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	base := int64(db.Fact.NumRows())

	// Freeze shard 0 at its base partition size, then apply a batch. The
	// in-process apply path appends to both fakes, but shard 0 keeps
	// admitting only its base watermark — exactly a shard that is still
	// chewing on the batch.
	shards[0].frozen = shards[0].rows
	b := ingest.FromTable(db.Fact, 0, 600)
	b.Seq = 1
	if err := co.ApplyBatch(b, nil); err != nil {
		t.Fatalf("ApplyBatch: %v", err)
	}
	grown := base + 600

	if got := co.Watermark(); got != base {
		t.Fatalf("coordinator watermark %d with lagging shard, want %d", got, base)
	}
	wms := co.ShardWatermarks()
	if wms[0] != base {
		t.Fatalf("lagging shard watermark %d, want %d", wms[0], base)
	}
	if wms[1] != grown {
		t.Fatalf("current shard watermark %d, want %d", wms[1], grown)
	}
	res := runToDone(t, co, &query.Query{
		VizName: "v", Table: db.Fact.Name,
		Bins: []query.Binning{{Field: "carrier", Kind: dataset.Nominal}},
		Aggs: []query.Aggregate{{Func: query.Count}},
	})
	if res.Watermark != base {
		t.Fatalf("merged snapshot watermark %d with lagging shard, want min %d", res.Watermark, base)
	}

	// Shard 0 catches up: the min moves to the new global version.
	shards[0].frozen = 0
	if got := co.Watermark(); got != grown {
		t.Fatalf("coordinator watermark %d after catch-up, want %d", got, grown)
	}
}
