package shard

import (
	"encoding/json"
	"fmt"
	"sync"

	"idebench/internal/dataset"
	"idebench/internal/durable"
	"idebench/internal/engine"
	"idebench/internal/ingest"
	"idebench/internal/stats"
)

// The coordinator's control-plane journal. Everything a coordinator holds
// in memory that cannot be re-derived from the data plane is journaled
// through durable.StateLog: the partition map and replica membership (with
// sync and quarantine flags), the prepare options that fix the merge's
// z-score and the partitioning seed, and the global→local version-log
// steps that make watermark translation exact.
//
// Ordering contract: every mutation is applied first (to the replicas and
// to the coordinator's memory) and journaled before it is acknowledged to
// the caller. The in-memory side dies with the process, so a crash between
// apply and journal rolls the control plane back to the pre-operation
// state with nothing acked — consistent by construction. The one external
// residue is data-plane rows: replicas may have absorbed a batch whose
// step never got journaled. Recovery then sees every in-sync replica of a
// partition equally ahead of the journaled target, which the health loop's
// divergence audit deliberately does not treat as quarantine-worthy (a
// lone replica ahead of both the target and its siblings is divergence; a
// whole partition ahead in lockstep is an un-acked batch).

// ReplicaState is one replica's journaled control-plane entry.
type ReplicaState struct {
	Name string `json:"name"`
	// Addr is the replica's dialable address; empty for in-process
	// replicas, which cannot be re-attached by a recovering coordinator.
	Addr        string `json:"addr,omitempty"`
	Synced      bool   `json:"synced"`
	Quarantined bool   `json:"quarantined,omitempty"`
}

// CoordState is the coordinator's full persisted control-plane state: the
// reduction of the journal, and the snapshot written at Prepare, Restore
// and every compaction.
type CoordState struct {
	// Global is the global data version: base rows + all journaled batches.
	Global int64 `json:"global"`
	// Confidence and Seed pin the prepare options every replica was (and
	// any future replica must be) prepared with.
	Confidence float64 `json:"confidence"`
	Seed       int64   `json:"seed"`
	// Steps is the per-partition local→global version log, ascending in
	// both coordinates; Steps[i][0] is partition i's base step.
	Steps [][]wmStep `json:"steps"`
	// Parts is the replica-set membership per partition, in failover
	// preference order.
	Parts [][]ReplicaState `json:"parts"`
}

// Clone deep-copies the state.
func (st *CoordState) Clone() *CoordState {
	out := &CoordState{Global: st.Global, Confidence: st.Confidence, Seed: st.Seed}
	out.Steps = make([][]wmStep, len(st.Steps))
	for i, s := range st.Steps {
		out.Steps[i] = append([]wmStep(nil), s...)
	}
	out.Parts = make([][]ReplicaState, len(st.Parts))
	for i, p := range st.Parts {
		out.Parts[i] = append([]ReplicaState(nil), p...)
	}
	return out
}

// TopologyEvent is one journaled membership change.
type TopologyEvent struct {
	// Op is one of "add", "remove", "quarantine".
	Op        string `json:"op"`
	Partition int    `json:"partition"`
	Name      string `json:"name"`
	Addr      string `json:"addr,omitempty"`
	Synced    bool   `json:"synced,omitempty"`
}

// stepEvent is one journaled version-log advance: the new per-partition
// local targets and the global version they map to.
type stepEvent struct {
	Targets []int64 `json:"targets"`
	Global  int64   `json:"global"`
}

// Journal kinds.
const (
	journalKindState    = "state"
	journalKindStep     = "step"
	journalKindTopology = "topology"
)

// Journal is the coordinator's persistence hook. A nil journal (the
// default) keeps the PR 8/9 in-memory-only behavior.
type Journal interface {
	// LogState records a full snapshot, superseding everything before it.
	LogState(st *CoordState) error
	// LogStep records one version-log advance.
	LogStep(targets []int64, global int64) error
	// LogTopology records one membership change.
	LogTopology(ev TopologyEvent) error
}

// compactEvery bounds journal growth: after this many incremental records
// the journal is rewritten as one snapshot. Steps dominate (one per ingest
// batch, ~100 bytes each), so the journal stays under a few hundred KB.
const compactEvery = 4096

// CoordJournal is the durable.StateLog-backed Journal. It maintains the
// running reduction of everything logged so compaction can rewrite the log
// as a single snapshot, and so recovery (State) is a field read.
type CoordJournal struct {
	mu   sync.Mutex
	log  *durable.StateLog
	cur  *CoordState
	incr int // incremental records since the last snapshot
}

// OpenCoordJournal opens (creating if absent) the coordinator journal in
// dir, reducing any recovered records. dir is conventionally
// <data-dir>/coord.
func OpenCoordJournal(dir string) (*CoordJournal, error) {
	log, err := durable.OpenStateLog(dir, nil)
	if err != nil {
		return nil, err
	}
	st, err := ReduceCoordState(log.Records())
	if err != nil {
		log.Close()
		return nil, err
	}
	return &CoordJournal{log: log, cur: st}, nil
}

// State returns the journal's current reduced state: nil when nothing was
// ever logged (a fresh boot that must Prepare from scratch).
func (j *CoordJournal) State() *CoordState {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.cur == nil {
		return nil
	}
	return j.cur.Clone()
}

// LogState implements Journal. A snapshot compacts the journal: everything
// before it is superseded, so the log is rewritten rather than extended.
func (j *CoordJournal) LogState(st *CoordState) error {
	payload, err := json.Marshal(st)
	if err != nil {
		return fmt.Errorf("shard: encode journal state: %w", err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.log.Compact(durable.StateRecord{Kind: journalKindState, Payload: payload}); err != nil {
		return err
	}
	j.cur = st.Clone()
	j.incr = 0
	return nil
}

// LogStep implements Journal.
func (j *CoordJournal) LogStep(targets []int64, global int64) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	ev := stepEvent{Targets: append([]int64(nil), targets...), Global: global}
	if err := j.append(journalKindStep, ev); err != nil {
		return err
	}
	if j.cur != nil {
		applyStepEvent(j.cur, ev)
	}
	return nil
}

// LogTopology implements Journal.
func (j *CoordJournal) LogTopology(ev TopologyEvent) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.append(journalKindTopology, ev); err != nil {
		return err
	}
	if j.cur != nil {
		applyTopologyEvent(j.cur, ev)
	}
	return nil
}

// append writes one incremental record, compacting first when the journal
// has grown past the threshold. Callers hold j.mu.
func (j *CoordJournal) append(kind string, payload any) error {
	if j.incr >= compactEvery && j.cur != nil {
		snap, err := json.Marshal(j.cur)
		if err != nil {
			return fmt.Errorf("shard: encode journal state: %w", err)
		}
		if err := j.log.Compact(durable.StateRecord{Kind: journalKindState, Payload: snap}); err != nil {
			return err
		}
		j.incr = 0
	}
	if err := j.log.Append(kind, payload); err != nil {
		return err
	}
	j.incr++
	return nil
}

// Close releases the journal's file handle.
func (j *CoordJournal) Close() error { return j.log.Close() }

// ReadCoordState reduces the journal in dir without taking ownership — the
// warm standby's view of the primary's persisted state. torn reports a
// partial trailing record (the primary mid-append), which truncating-free
// reads simply stop before. A nil state with nil error means no journal
// (or an empty one) exists yet.
func ReadCoordState(dir string) (st *CoordState, torn bool, err error) {
	recs, torn, err := durable.ReadStateLog(dir, nil)
	if err != nil {
		return nil, torn, err
	}
	st, err = ReduceCoordState(recs)
	return st, torn, err
}

// ReduceCoordState folds journal records into the state they describe:
// the last full snapshot, then every later incremental event in order.
// Returns nil for an empty journal.
func ReduceCoordState(recs []durable.StateRecord) (*CoordState, error) {
	var st *CoordState
	for i, rec := range recs {
		switch rec.Kind {
		case journalKindState:
			next := &CoordState{}
			if err := json.Unmarshal(rec.Payload, next); err != nil {
				return nil, fmt.Errorf("shard: journal record %d: %w", i, err)
			}
			st = next
		case journalKindStep:
			if st == nil {
				return nil, fmt.Errorf("shard: journal record %d: step before any state snapshot", i)
			}
			var ev stepEvent
			if err := json.Unmarshal(rec.Payload, &ev); err != nil {
				return nil, fmt.Errorf("shard: journal record %d: %w", i, err)
			}
			if len(ev.Targets) != len(st.Steps) {
				return nil, fmt.Errorf("shard: journal record %d: step has %d targets, topology has %d partitions",
					i, len(ev.Targets), len(st.Steps))
			}
			applyStepEvent(st, ev)
		case journalKindTopology:
			if st == nil {
				return nil, fmt.Errorf("shard: journal record %d: topology event before any state snapshot", i)
			}
			var ev TopologyEvent
			if err := json.Unmarshal(rec.Payload, &ev); err != nil {
				return nil, fmt.Errorf("shard: journal record %d: %w", i, err)
			}
			if ev.Partition < 0 || ev.Partition >= len(st.Parts) {
				return nil, fmt.Errorf("shard: journal record %d: no partition %d", i, ev.Partition)
			}
			applyTopologyEvent(st, ev)
		default:
			// Unknown kinds from a newer writer are skipped, not fatal: the
			// reduction stays a best-effort floor of what it understands.
		}
	}
	return st, nil
}

// applyStepEvent advances the version log by one journaled batch.
func applyStepEvent(st *CoordState, ev stepEvent) {
	for i := range st.Steps {
		if i < len(ev.Targets) {
			st.Steps[i] = append(st.Steps[i], wmStep{Local: ev.Targets[i], Global: ev.Global})
		}
	}
	st.Global = ev.Global
}

// applyTopologyEvent applies one membership change.
func applyTopologyEvent(st *CoordState, ev TopologyEvent) {
	if ev.Partition < 0 || ev.Partition >= len(st.Parts) {
		return
	}
	set := st.Parts[ev.Partition]
	switch ev.Op {
	case "add":
		st.Parts[ev.Partition] = append(set, ReplicaState{
			Name: ev.Name, Addr: ev.Addr, Synced: ev.Synced,
		})
	case "remove":
		out := set[:0:0]
		for _, r := range set {
			if r.Name != ev.Name {
				out = append(out, r)
			}
		}
		st.Parts[ev.Partition] = out
	case "quarantine":
		for k := range set {
			if set[k].Name == ev.Name {
				set[k].Quarantined = true
				set[k].Synced = false
			}
		}
	}
}

// snapshotState builds the CoordState describing the coordinator right
// now. It takes co.mu and the per-replica locks (briefly, one at a time).
func (co *Coordinator) snapshotState() *CoordState {
	co.mu.Lock()
	st := &CoordState{
		Global:     co.global,
		Confidence: co.prepOpts.Confidence,
		Seed:       co.prepOpts.Seed,
		Steps:      make([][]wmStep, len(co.steps)),
		Parts:      make([][]ReplicaState, len(co.sets)),
	}
	sets := make([][]*replica, len(co.sets))
	for i := range co.steps {
		st.Steps[i] = append([]wmStep(nil), co.steps[i]...)
	}
	for i := range co.sets {
		sets[i] = append([]*replica(nil), co.sets[i]...)
	}
	co.mu.Unlock()
	for i, set := range sets {
		for _, r := range set {
			r.mu.Lock()
			st.Parts[i] = append(st.Parts[i], ReplicaState{
				Name: r.name, Addr: r.addr, Synced: r.synced, Quarantined: r.quarantined,
			})
			r.mu.Unlock()
		}
	}
	return st
}

// logState journals a full snapshot; a nil journal is a no-op.
func (co *Coordinator) logState() error {
	j := co.opts.Journal
	if j == nil {
		return nil
	}
	return j.LogState(co.snapshotState())
}

// logStep journals one version-log advance; a nil journal is a no-op.
func (co *Coordinator) logStep(targets []int64, global int64) error {
	j := co.opts.Journal
	if j == nil {
		return nil
	}
	return j.LogStep(targets, global)
}

// logTopology journals one membership change; a nil journal is a no-op.
func (co *Coordinator) logTopology(ev TopologyEvent) error {
	j := co.opts.Journal
	if j == nil {
		return nil
	}
	return j.LogTopology(ev)
}

// Restore rebuilds a coordinator's control plane from a journaled
// CoordState instead of deriving it with Prepare: the version log, global
// version and prepare options come from the journal verbatim, so watermark
// translation after a takeover is exactly what it was before. The
// coordinator must have been constructed with one replica per journaled
// ReplicaState (same order, same names — NewReplicatedSpecs from the same
// state); backends are NOT prepared, since the data plane already holds
// its partitions and a takeover must not reset it.
//
// Sync flags are re-derived by watermark proof, not trusted: a replica is
// in sync iff its confirmed watermark reaches the journaled target (the
// same rule the health loop promotes by). Quarantine flags ARE trusted —
// quarantine marks content divergence, which a watermark cannot disprove.
func (co *Coordinator) Restore(db *dataset.Database, st *CoordState) error {
	if st == nil {
		return fmt.Errorf("shard: restore needs a journaled state")
	}
	opts := engine.Options{Confidence: st.Confidence, Seed: st.Seed}.Normalize()
	z, err := stats.ZScore(opts.Confidence)
	if err != nil {
		return fmt.Errorf("shard: %w", err)
	}
	co.mu.Lock()
	nParts := len(co.sets)
	sets := make([][]*replica, nParts)
	for i := range co.sets {
		sets[i] = append([]*replica(nil), co.sets[i]...)
	}
	co.mu.Unlock()
	if len(st.Steps) != nParts || len(st.Parts) != nParts {
		return fmt.Errorf("shard: restore of %d-partition state onto %d partitions", len(st.Parts), nParts)
	}
	for i, set := range sets {
		if len(st.Parts[i]) != len(set) {
			return fmt.Errorf("shard: restore partition %d: %d journaled replicas, %d constructed",
				i, len(st.Parts[i]), len(set))
		}
		if len(st.Steps[i]) == 0 {
			return fmt.Errorf("shard: restore partition %d: no base step", i)
		}
	}

	parts, err := Partition(db, nParts)
	if err != nil {
		return err
	}
	for i, set := range sets {
		base := st.Steps[i][0].Local
		if got := int64(parts[i].Fact.NumRows()); got != base {
			return fmt.Errorf("shard: restore partition %d: derived base %d rows, journal says %d (different dataset?)",
				i, got, base)
		}
		target := st.Steps[i][len(st.Steps[i])-1].Local
		for j, r := range set {
			ps := st.Parts[i][j]
			r.mu.Lock()
			r.matDB = parts[i]
			r.addr = ps.Addr
			r.quarantined = ps.Quarantined
			r.synced = !ps.Quarantined
			r.mu.Unlock()
			if r.watermark(base) < target {
				r.markUnsynced()
			}
		}
	}

	co.mu.Lock()
	co.partDBs = parts
	co.global = st.Global
	co.steps = make([][]wmStep, nParts)
	for i := range co.steps {
		co.steps[i] = append([]wmStep(nil), st.Steps[i]...)
	}
	co.capture = make([][]*ingest.Batch, nParts)
	co.z = z
	co.prepOpts = opts
	co.prepared = true
	co.mu.Unlock()

	// Re-snapshot under the new owner: primes the journal's reduction and
	// compacts away the previous incarnation's incremental tail.
	return co.logState()
}
