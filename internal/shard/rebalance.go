package shard

import (
	"fmt"

	"idebench/internal/dataset"
	"idebench/internal/engine"
	"idebench/internal/ingest"
)

// AddReplica attaches be as a new replica of partition part. The backend
// prepares (or, for a *server.Remote, sanity-checks) the partition's base
// database — the same deterministic derivation every replica starts from —
// so a newcomer that missed routed ingest batches joins unsynced and is
// promoted by the health loop once its watermark proves it caught up (a
// shard process recovering its durable WAL does this on its own; see
// Rebalance for the in-process checkpoint handoff that syncs immediately).
func (co *Coordinator) AddReplica(part int, be engine.Engine) error {
	return co.AddReplicaAddr(part, be, "")
}

// AddReplicaAddr is AddReplica with the replica's dialable address, which
// is journaled with the membership change so a recovering coordinator can
// re-attach the replica.
func (co *Coordinator) AddReplicaAddr(part int, be engine.Engine, addr string) error {
	co.mu.Lock()
	if !co.prepared {
		co.mu.Unlock()
		return engine.ErrNotPrepared
	}
	if part < 0 || part >= len(co.sets) {
		co.mu.Unlock()
		return fmt.Errorf("shard: no partition %d", part)
	}
	partDB := co.partDBs[part]
	opts := co.prepOpts
	target := co.steps[part][len(co.steps[part])-1].Local
	ordinal := len(co.sets[part])
	co.mu.Unlock()

	if err := be.Prepare(partDB, opts); err != nil {
		return fmt.Errorf("shard: add replica to partition %d: %w", part, err)
	}
	r := newReplica(be, replicaName(be, part, ordinal), partDB)
	r.addr = addr
	if r.watermark(int64(partDB.Fact.NumRows())) < target {
		// Missed batches while it wasn't a member; serves stale until its
		// watermark catches up.
		r.markUnsynced()
	}
	co.mu.Lock()
	co.sets[part] = append(co.sets[part], r)
	co.mu.Unlock()
	_, synced := r.state()
	return co.logTopology(TopologyEvent{
		Op: "add", Partition: part, Name: r.name, Addr: addr, Synced: synced,
	})
}

// RemoveReplica detaches the named replica from partition part. The last
// replica of a partition cannot be removed — scale the partition count
// instead (a different operation entirely).
func (co *Coordinator) RemoveReplica(part int, name string) error {
	co.mu.Lock()
	if part < 0 || part >= len(co.sets) {
		co.mu.Unlock()
		return fmt.Errorf("shard: no partition %d", part)
	}
	set := co.sets[part]
	for j, r := range set {
		if r.name != name {
			continue
		}
		if len(set) == 1 {
			co.mu.Unlock()
			return fmt.Errorf("shard: refusing to remove the last replica of partition %d", part)
		}
		co.sets[part] = append(append([]*replica(nil), set[:j]...), set[j+1:]...)
		co.mu.Unlock()
		return co.logTopology(TopologyEvent{Op: "remove", Partition: part, Name: name})
	}
	co.mu.Unlock()
	return fmt.Errorf("shard: partition %d has no replica %q", part, name)
}

// Rebalance performs a hash-range handoff: it streams partition part's
// current state to be using the durable-checkpoint transfer format and
// attaches it as a fully in-sync replica. Concretely: snapshot a live
// replica's copy-on-write view (engine.ViewSnapshotter — the same call the
// PR 7 checkpointer uses), encode and decode every table through the
// checkpoint column-segment codec, adopt it on the new backend via
// engine.ReorderedPreparer (warm, skipping the permutation draw) or plain
// Prepare, then replay the ingest tail that routed during the transfer and
// flip routing at the version barrier — the attach happens under the
// routing lock at an instant when no captured batch is outstanding, so the
// newcomer has absorbed exactly the batches every other in-sync replica
// has.
//
// Queries and ingest keep flowing during the whole handoff; only the final
// flip takes the lock. The source must be an in-process backend with view
// snapshots; remote topology changes go through AddReplica (a shard
// process owns its durable state and re-syncs from its own WAL).
func (co *Coordinator) Rebalance(part int, be engine.Engine) error {
	co.mu.Lock()
	if !co.prepared {
		co.mu.Unlock()
		return engine.ErrNotPrepared
	}
	if part < 0 || part >= len(co.sets) {
		co.mu.Unlock()
		return fmt.Errorf("shard: no partition %d", part)
	}
	if co.capture[part] != nil {
		co.mu.Unlock()
		return fmt.Errorf("shard: partition %d already has a rebalance in flight", part)
	}
	var src *replica
	for _, r := range co.sets[part] {
		healthy, synced := r.state()
		if healthy && synced && !r.isQuarantined() && r.caps.ViewSnapshotter != nil {
			src = r
			break
		}
	}
	if src == nil {
		co.mu.Unlock()
		return fmt.Errorf("shard: partition %d has no live snapshot-capable replica to hand off from", part)
	}
	// Open the capture window before reading the view: every batch routed
	// from here on is either already in the view or lands in the tail.
	co.capture[part] = []*ingest.Batch{}
	opts := co.prepOpts
	ordinal := len(co.sets[part])
	co.mu.Unlock()

	abort := func(err error) error {
		co.mu.Lock()
		co.capture[part] = nil
		co.mu.Unlock()
		return err
	}

	view, perm := src.caps.ViewSnapshotter.SnapshotView()
	moved, err := transferDatabase(view)
	if err != nil {
		return abort(fmt.Errorf("shard: handoff encode partition %d: %w", part, err))
	}
	newCaps := engine.CapabilitiesOf(be)
	if newCaps.ReorderedPreparer != nil && perm != nil {
		err = newCaps.ReorderedPreparer.PrepareReordered(moved, perm, opts)
	} else {
		err = be.Prepare(moved, opts)
	}
	if err != nil {
		return abort(fmt.Errorf("shard: handoff prepare partition %d: %w", part, err))
	}
	if newCaps.Appender == nil {
		return abort(fmt.Errorf("shard: handoff target for partition %d cannot absorb the ingest tail", part))
	}

	// Drain the captured tail, then flip at the version barrier: the attach
	// happens under the lock only when no batch slipped in since the last
	// drain, so membership and absorbed-state change at the same version.
	for {
		co.mu.Lock()
		tail := co.capture[part]
		if len(tail) == 0 {
			r := newReplica(be, replicaName(be, part, ordinal), moved)
			co.sets[part] = append(co.sets[part], r)
			co.capture[part] = nil
			co.mu.Unlock()
			return co.logTopology(TopologyEvent{
				Op: "add", Partition: part, Name: r.name, Synced: true,
			})
		}
		co.capture[part] = []*ingest.Batch{}
		co.mu.Unlock()
		for _, sub := range tail {
			tbl, err := ingest.Materialize(moved, sub)
			if err != nil {
				return abort(fmt.Errorf("shard: handoff tail replay partition %d: %w", part, err))
			}
			if err := newCaps.Appender.Append(tbl); err != nil {
				return abort(fmt.Errorf("shard: handoff tail replay partition %d: %w", part, err))
			}
		}
	}
}

// transferDatabase round-trips a database view through the durable
// checkpoint table codec — the handoff's wire format. The encode/decode
// pair is what would cross the network (or a checkpoint file) between
// owners; decoding rebuilds dictionaries in code order, so the copy is
// logically identical and safely owns its own storage.
func transferDatabase(view *dataset.Database) (*dataset.Database, error) {
	fact, err := dataset.DecodeTable(dataset.EncodeTable(view.Fact))
	if err != nil {
		return nil, fmt.Errorf("fact: %w", err)
	}
	out := &dataset.Database{Fact: fact}
	for _, d := range view.Dimensions {
		t, err := dataset.DecodeTable(dataset.EncodeTable(d.Table))
		if err != nil {
			return nil, fmt.Errorf("dimension %s: %w", d.FKColumn, err)
		}
		out.Dimensions = append(out.Dimensions, &dataset.Dimension{Table: t, FKColumn: d.FKColumn})
	}
	return out, nil
}
