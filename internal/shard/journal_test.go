package shard_test

import (
	"reflect"
	"testing"
	"time"

	"idebench/internal/dataset"
	"idebench/internal/engine"
	"idebench/internal/engine/progressive"
	"idebench/internal/ingest"
	"idebench/internal/shard"
)

// journaledTier is replicatedTier with a durable control-plane journal in
// dir.
func journaledTier(t *testing.T, db *dataset.Database, dir string, parts, reps int) (*shard.Coordinator, *shard.CoordJournal, [][]*shard.Faulty) {
	t.Helper()
	j, err := shard.OpenCoordJournal(dir)
	if err != nil {
		t.Fatalf("OpenCoordJournal: %v", err)
	}
	co, faulty := replicatedTier(t, db, parts, reps, shard.Options{Journal: j})
	return co, j, faulty
}

// applyRows routes one batch of rows [from, to) of db's fact table.
func applyRows(t *testing.T, co *shard.Coordinator, db *dataset.Database, from, to int, seq int64) {
	t.Helper()
	b := ingest.FromTable(db.Fact, from, to)
	b.Seq = seq
	if err := co.ApplyBatch(b, nil); err != nil {
		t.Fatalf("ApplyBatch seq %d: %v", seq, err)
	}
}

// recoverTier rebuilds a coordinator from the journal in dir, re-attaching
// the same backends the journaled topology names — the in-process analogue
// of a standby dialing the surviving data plane.
func recoverTier(t *testing.T, db *dataset.Database, dir string, faulty [][]*shard.Faulty) (*shard.Coordinator, *shard.CoordJournal) {
	t.Helper()
	j, err := shard.OpenCoordJournal(dir)
	if err != nil {
		t.Fatalf("reopen journal: %v", err)
	}
	st := j.State()
	if st == nil {
		t.Fatalf("journal in %s reduced to nil state", dir)
	}
	specs := make([][]shard.ReplicaSpec, len(st.Parts))
	for i, set := range st.Parts {
		if len(set) != len(faulty[i]) {
			t.Fatalf("partition %d: journal names %d replicas, tier has %d", i, len(set), len(faulty[i]))
		}
		for k, ps := range set {
			specs[i] = append(specs[i], shard.ReplicaSpec{Engine: faulty[i][k], Name: ps.Name, Addr: ps.Addr})
		}
	}
	co, err := shard.NewReplicatedSpecs(shard.Options{Journal: j}, specs...)
	if err != nil {
		t.Fatalf("NewReplicatedSpecs: %v", err)
	}
	if err := co.Restore(db, st); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	return co, j
}

// TestJournalRestoreExactTranslation: a coordinator rebuilt from its
// journal answers at exactly the global watermark and with exactly the
// bins the dead one served — the version log survives verbatim.
func TestJournalRestoreExactTranslation(t *testing.T) {
	db := buildDB(t, 8000, 61)
	q := countQuery(db)
	dir := t.TempDir()

	co, j, faulty := journaledTier(t, db, dir, 2, 2)
	applyRows(t, co, db, 0, 700, 1)
	applyRows(t, co, db, 700, 1500, 2)

	wantWM := co.Watermark()
	if wantWM != int64(db.Fact.NumRows())+1500 {
		t.Fatalf("pre-crash watermark %d, want %d", wantWM, db.Fact.NumRows()+1500)
	}
	want := waitDone(t, mustStart(t, co, q))
	if want == nil || !want.Complete || want.Watermark != wantWM {
		t.Fatalf("pre-crash result %+v", want)
	}
	// The coordinator process "dies": only the journal and the data plane
	// survive.
	if err := j.Close(); err != nil {
		t.Fatalf("journal close: %v", err)
	}

	co2, j2 := recoverTier(t, db, dir, faulty)
	defer j2.Close()
	if got := co2.Watermark(); got != wantWM {
		t.Fatalf("restored watermark %d, want %d", got, wantWM)
	}
	got := waitDone(t, mustStart(t, co2, q))
	if got == nil || !got.Complete || got.Watermark != wantWM {
		t.Fatalf("restored result %+v", got)
	}
	if !reflect.DeepEqual(got.Bins, want.Bins) {
		t.Fatalf("restored bins differ from pre-crash bins")
	}
	for i, pt := range co2.Topology().Partitions {
		for _, rt := range pt.Replicas {
			if !rt.Synced || rt.Quarantined {
				t.Fatalf("partition %d replica %s not restored in-sync: %+v", i, rt.Name, rt)
			}
		}
	}
	// The restored control plane keeps journaling: another batch and
	// another recovery still translate exactly.
	applyRows(t, co2, db, 1500, 2000, 3)
	if got := co2.Watermark(); got != wantWM+500 {
		t.Fatalf("post-restore ingest watermark %d, want %d", got, wantWM+500)
	}
	j2.Close()
	co3, j3 := recoverTier(t, db, dir, faulty)
	defer j3.Close()
	if got := co3.Watermark(); got != wantWM+500 {
		t.Fatalf("second recovery watermark %d, want %d", got, wantWM+500)
	}
}

// TestJournalMembershipSurvives: add/remove membership changes are
// journaled and a recovered coordinator sees the final roster.
func TestJournalMembershipSurvives(t *testing.T) {
	db := buildDB(t, 6000, 67)
	dir := t.TempDir()
	co, j, faulty := journaledTier(t, db, dir, 2, 2)

	extra := shard.NewFaulty(progressive.New(progressive.Config{}))
	if err := co.AddReplicaAddr(0, extra, "198.51.100.7:9999"); err != nil {
		t.Fatalf("AddReplicaAddr: %v", err)
	}
	victim := co.Topology().Partitions[1].Replicas[1].Name
	if err := co.RemoveReplica(1, victim); err != nil {
		t.Fatalf("RemoveReplica: %v", err)
	}
	j.Close()

	j2, err := shard.OpenCoordJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	st := j2.State()
	if st == nil {
		t.Fatal("nil journaled state")
	}
	if len(st.Parts[0]) != 3 || len(st.Parts[1]) != 1 {
		t.Fatalf("journaled roster %d/%d replicas, want 3/1", len(st.Parts[0]), len(st.Parts[1]))
	}
	added := st.Parts[0][2]
	if added.Addr != "198.51.100.7:9999" {
		t.Fatalf("journaled addr %q", added.Addr)
	}
	for _, ps := range st.Parts[1] {
		if ps.Name == victim {
			t.Fatalf("removed replica %s still journaled", victim)
		}
	}
	_ = faulty
}

// TestPhantomRowsQuarantine: rows fed to a replica behind the
// coordinator's back (watermark above the routed target while a sibling
// sits exactly at it) quarantine the replica: it stops serving and
// ingesting, the topology says so, the exclusion survives recovery, and a
// remove + rebalance readmits fresh state bitwise.
func TestPhantomRowsQuarantine(t *testing.T) {
	db := buildDB(t, 8000, 71)
	q := countQuery(db)
	dir := t.TempDir()
	co, j, faulty := journaledTier(t, db, dir, 2, 2)
	defer j.Close()

	want := waitDone(t, mustStart(t, co, q))
	if want == nil || !want.Complete {
		t.Fatalf("reference result %+v", want)
	}

	// Feed partition 0's second replica 400 rows the coordinator never
	// routed.
	parts, err := shard.Partition(db, 2)
	if err != nil {
		t.Fatal(err)
	}
	sub := ingest.FromTable(parts[0].Fact, 0, 400)
	tbl, err := ingest.Materialize(parts[0], sub)
	if err != nil {
		t.Fatal(err)
	}
	if err := faulty[0][1].Append(tbl); err != nil {
		t.Fatal(err)
	}

	healthy, total := co.CheckHealth()
	if healthy != 3 || total != 4 {
		t.Fatalf("after phantom rows: %d/%d healthy, want 3/4", healthy, total)
	}
	topo := co.Topology()
	rt := topo.Partitions[0].Replicas[1]
	if !rt.Quarantined || rt.Synced {
		t.Fatalf("phantom-rows replica not quarantined: %+v", rt)
	}
	// The rogue rows must not leak into the tier's watermark.
	if got := co.Watermark(); got != int64(db.Fact.NumRows()) {
		t.Fatalf("watermark %d counts phantom rows, want %d", got, db.Fact.NumRows())
	}
	// Queries keep full coverage via the clean sibling, bitwise unchanged.
	got := waitDone(t, mustStart(t, co, q))
	if got == nil || !got.Complete || got.Coverage == nil || !got.Coverage.Full() {
		t.Fatalf("post-quarantine result %+v", got)
	}
	if !reflect.DeepEqual(got.Bins, want.Bins) {
		t.Fatalf("post-quarantine bins polluted by quarantined replica")
	}
	// Routed ingest skips the quarantined replica entirely.
	preWM := faulty[0][1].Watermark()
	applyRows(t, co, db, 0, 600, 1)
	if faulty[0][1].Watermark() != preWM {
		t.Fatalf("quarantined replica absorbed routed ingest")
	}

	// The exclusion is durable: a recovered coordinator still refuses the
	// replica even though its watermark exceeds the target.
	j.Close()
	co2, j2 := recoverTier(t, db, dir, faulty)
	defer j2.Close()
	rt2 := co2.Topology().Partitions[0].Replicas[1]
	if !rt2.Quarantined {
		t.Fatalf("quarantine lost across recovery: %+v", rt2)
	}

	// Readmission: drop the divergent member and rebalance a fresh backend
	// in; the partition is bitwise clean again at the current version.
	if err := co2.RemoveReplica(0, rt2.Name); err != nil {
		t.Fatalf("RemoveReplica: %v", err)
	}
	if err := co2.Rebalance(0, progressive.New(progressive.Config{})); err != nil {
		t.Fatalf("Rebalance: %v", err)
	}
	if mm, err := co2.AntiEntropyCheck(q, 30*time.Second); err != nil || len(mm) != 0 {
		t.Fatalf("after readmission: mismatches %+v, err %v", mm, err)
	}
	final := waitDone(t, mustStart(t, co2, q))
	if final == nil || !final.Complete || final.Watermark != int64(db.Fact.NumRows())+600 {
		t.Fatalf("readmitted tier result %+v", final)
	}
}

// TestAntiEntropySweepSurvivesFragmentError is the abort-on-first-error
// regression test: a dead replica in partition 0 must not hide real
// divergence in partition 1. The sweep skips the failed partition, counts
// the failure on the error alarm, and still flags partition 1.
func TestAntiEntropySweepSurvivesFragmentError(t *testing.T) {
	db := buildDB(t, 6000, 73)
	q := countQuery(db)
	co, faulty := replicatedTier(t, db, 2, 2, shard.Options{})

	// Partition 0: replica 0 dies, but no health pass runs, so the sweep
	// still selects it (round 0 pairs replicas 0 and 1) and must absorb
	// the failure.
	faulty[0][0].Kill()

	// Partition 1: equal-count, different-content divergence.
	parts, err := shard.Partition(db, 2)
	if err != nil {
		t.Fatal(err)
	}
	for k, span := range [][2]int{{0, 250}, {250, 500}} {
		sub := ingest.FromTable(parts[1].Fact, span[0], span[1])
		tbl, err := ingest.Materialize(parts[1], sub)
		if err != nil {
			t.Fatal(err)
		}
		if err := faulty[1][k].Append(tbl); err != nil {
			t.Fatal(err)
		}
	}

	mm, err := co.AntiEntropyCheck(q, 30*time.Second)
	if err == nil {
		t.Fatalf("sweep with a dead replica reported no error")
	}
	if len(mm) != 1 || mm[0].Partition != 1 {
		t.Fatalf("divergence in partition 1 not flagged past the failure: %+v", mm)
	}
	topo := co.Topology()
	if topo.AntiEntropyErrors == 0 {
		t.Fatalf("fragment failure not counted on the error alarm")
	}
	if topo.AntiEntropyMismatches != 1 {
		t.Fatalf("mismatch counter %d, want 1", topo.AntiEntropyMismatches)
	}
	// With only two eligible replicas nobody is quarantined — a coin flip
	// could evict the correct copy.
	if mm[0].Quarantined != "" {
		t.Fatalf("two-replica mismatch quarantined %s", mm[0].Quarantined)
	}
}

// TestAntiEntropyRotationAuditsThirdReplica is the fixed-pair regression
// test: with R=3, the old sweep only ever compared replicas 0 and 1, so a
// divergent replica 2 was never audited. The rotating pair must catch it
// within a few rounds, and the two clean replicas' majority quarantines
// it.
func TestAntiEntropyRotationAuditsThirdReplica(t *testing.T) {
	db := buildDB(t, 6000, 79)
	q := countQuery(db)
	co, faulty := replicatedTier(t, db, 1, 3, shard.Options{})

	// Replicas 0 and 1 get the same 300 extra rows; replica 2 gets a
	// different 300 — all at the same watermark, only replica 2 divergent.
	parts, err := shard.Partition(db, 1)
	if err != nil {
		t.Fatal(err)
	}
	spans := [][2]int{{0, 300}, {0, 300}, {300, 600}}
	for k, span := range spans {
		sub := ingest.FromTable(parts[0].Fact, span[0], span[1])
		tbl, err := ingest.Materialize(parts[0], sub)
		if err != nil {
			t.Fatal(err)
		}
		if err := faulty[0][k].Append(tbl); err != nil {
			t.Fatal(err)
		}
	}

	var quarantined string
	for round := 0; round < 3 && quarantined == ""; round++ {
		mm, err := co.AntiEntropyCheck(q, 30*time.Second)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for _, m := range mm {
			quarantined = m.Quarantined
		}
	}
	if quarantined == "" {
		t.Fatalf("rotation never caught the divergent third replica")
	}
	topo := co.Topology()
	var flagged string
	for _, rt := range topo.Partitions[0].Replicas {
		if rt.Quarantined {
			if flagged != "" {
				t.Fatalf("more than one replica quarantined")
			}
			flagged = rt.Name
		}
	}
	if flagged == "" || flagged != quarantined {
		t.Fatalf("topology quarantine %q, mismatch said %q", flagged, quarantined)
	}
	if flagged != topo.Partitions[0].Replicas[2].Name {
		t.Fatalf("quarantined %q, want the divergent third replica %q",
			flagged, topo.Partitions[0].Replicas[2].Name)
	}
	// The clean majority keeps serving, bitwise clean.
	if mm, err := co.AntiEntropyCheck(q, 30*time.Second); err != nil || len(mm) != 0 {
		t.Fatalf("clean pair still mismatching: %+v err %v", mm, err)
	}
	res := waitDone(t, mustStart(t, co, q))
	if res == nil || !res.Complete || res.Coverage == nil || !res.Coverage.Full() {
		t.Fatalf("tier degraded after quarantining 1 of 3 replicas: %+v", res)
	}
}

// mustEngineOptions pins the compile-time assumption the journal encodes:
// prepare options persist as confidence + seed only (parallelism is
// machine-local).
var _ = engine.Options{Confidence: 0.95, Seed: 5}
