package shard_test

import (
	"math"
	"reflect"
	"testing"
	"time"

	"idebench/internal/dataset"
	"idebench/internal/engine"
	"idebench/internal/engine/progressive"
	"idebench/internal/ingest"
	"idebench/internal/query"
	"idebench/internal/shard"
)

// countQuery is the canonical probe: COUNT grouped by carrier.
func countQuery(db *dataset.Database) *query.Query {
	return &query.Query{
		VizName: "v", Table: db.Fact.Name,
		Bins: []query.Binning{{Field: "carrier", Kind: dataset.Nominal}},
		Aggs: []query.Aggregate{{Func: query.Count}},
	}
}

// replicatedTier builds a coordinator over parts × reps Faulty-wrapped
// progressive engines and prepares it.
func replicatedTier(t *testing.T, db *dataset.Database, parts, reps int, opts shard.Options) (*shard.Coordinator, [][]*shard.Faulty) {
	t.Helper()
	faulty := make([][]*shard.Faulty, parts)
	sets := make([][]engine.Engine, parts)
	for i := 0; i < parts; i++ {
		for j := 0; j < reps; j++ {
			f := shard.NewFaulty(progressive.New(progressive.Config{}))
			faulty[i] = append(faulty[i], f)
			sets[i] = append(sets[i], f)
		}
	}
	co, err := shard.NewReplicated(opts, sets...)
	if err != nil {
		t.Fatalf("NewReplicated: %v", err)
	}
	if err := co.Prepare(db, engine.Options{Confidence: 0.95, Seed: 5}); err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	return co, faulty
}

// waitDone waits for a handle and returns its final snapshot (which may be
// nil: a refused or unanswerable query).
func waitDone(t *testing.T, h engine.Handle) *query.Result {
	t.Helper()
	select {
	case <-h.Done():
	case <-time.After(30 * time.Second):
		t.Fatalf("query did not complete")
	}
	return h.Snapshot()
}

// TestFailoverMidStreamFullCoverage: killing the serving replica of a
// partition mid-query must not fail the query or degrade its coverage —
// the coordinator restarts the fan-out leg on the surviving replica and
// the merged answer is bitwise what a healthy tier produces.
func TestFailoverMidStreamFullCoverage(t *testing.T) {
	db := buildDB(t, 8000, 21)
	q := countQuery(db)

	// Reference: the same topology, never killed.
	ref, _ := replicatedTier(t, db, 2, 2, shard.Options{})
	want := waitDone(t, mustStart(t, ref, q))
	if want == nil || !want.Complete {
		t.Fatalf("reference tier returned %+v", want)
	}

	co, faulty := replicatedTier(t, db, 2, 2, shard.Options{})
	h := mustStart(t, co, q)
	// Kill partition 0's preferred replica mid-stream (the query starts on
	// replicas[0] — both are healthy and in sync).
	faulty[0][0].Kill()
	got := waitDone(t, h)
	if got == nil {
		t.Fatalf("failover query returned nil — one dead replica must not fail a query")
	}
	if !got.Complete {
		t.Fatalf("failover result incomplete: %+v", got)
	}
	if got.Coverage == nil || !got.Coverage.Full() {
		t.Fatalf("failover result coverage %+v, want full", got.Coverage)
	}
	if !reflect.DeepEqual(got.Bins, want.Bins) {
		t.Fatalf("failover bins differ from healthy tier")
	}

	// The killed replica is now marked unhealthy; new queries keep working.
	again := waitDone(t, mustStart(t, co, q))
	if again == nil || !reflect.DeepEqual(again.Bins, want.Bins) {
		t.Fatalf("post-failover query wrong: %+v", again)
	}

	// Revive + health pass: the replica rejoins (no ingest happened, so its
	// watermark still matches the partition target and it re-syncs).
	faulty[0][0].Revive()
	if healthy, total := co.CheckHealth(); healthy != total {
		t.Fatalf("after revive: %d/%d healthy", healthy, total)
	}
	topo := co.Topology()
	for i, pt := range topo.Partitions {
		for _, rt := range pt.Replicas {
			if !rt.Healthy || !rt.Synced {
				t.Fatalf("partition %d replica %s not recovered: %+v", i, rt.Name, rt)
			}
		}
	}
}

func mustStart(t *testing.T, eng engine.Engine, q *query.Query) engine.Handle {
	t.Helper()
	h, err := eng.StartQuery(q)
	if err != nil {
		t.Fatalf("StartQuery: %v", err)
	}
	return h
}

// TestDegradedCoverageProperty is the coordinator property test: for every
// k-subset pattern of dead partitions (k < N), the degraded merge reports
// exactly the population fraction of the live partitions, answers with
// their partitions only, and is never presented as complete. The expected
// fraction comes from the partition row counts themselves.
func TestDegradedCoverageProperty(t *testing.T) {
	const parts = 4
	db := buildDB(t, 6000, 23)
	q := countQuery(db)
	partDBs, err := shard.Partition(db, parts)
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}
	total := float64(db.Fact.NumRows())

	for mask := 1; mask < 1<<parts-1; mask++ { // at least one dead, at least one alive
		co, faulty := replicatedTier(t, db, parts, 1, shard.Options{})
		liveRows, liveParts := 0.0, 0
		for i := 0; i < parts; i++ {
			if mask&(1<<i) != 0 {
				faulty[i][0].Kill()
			} else {
				liveRows += float64(partDBs[i].Fact.NumRows())
				liveParts++
			}
		}
		res := waitDone(t, mustStart(t, co, q))
		if res == nil {
			t.Fatalf("mask %04b: degraded merge returned nil — must serve the survivors", mask)
		}
		cov := res.Coverage
		if cov == nil || !cov.Degraded || cov.Full() {
			t.Fatalf("mask %04b: coverage %+v, want degraded", mask, cov)
		}
		if cov.PartitionsAnswered != liveParts || cov.PartitionsTotal != parts {
			t.Fatalf("mask %04b: answered %d/%d, want %d/%d",
				mask, cov.PartitionsAnswered, cov.PartitionsTotal, liveParts, parts)
		}
		if want := liveRows / total; math.Abs(cov.PopulationFraction-want) > 1e-12 {
			t.Fatalf("mask %04b: population fraction %v, want exactly %v", mask, cov.PopulationFraction, want)
		}
		if res.Complete {
			t.Fatalf("mask %04b: degraded result claims Complete", mask)
		}
		// The COUNT totals must equal exactly the live partitions' rows: the
		// merge is the survivors' answer, not a rescaled guess.
		var sum float64
		for _, bv := range res.Bins {
			sum += bv.Values[0]
		}
		if sum != liveRows {
			t.Fatalf("mask %04b: degraded count total %v, want %v", mask, sum, liveRows)
		}
	}
}

// TestMinCoverageRefusal: below the configured population floor the
// coordinator refuses (nil) instead of serving; at or above it, it serves
// the annotated degraded answer. Also checks the all-partitions-dead case
// errors at start.
func TestMinCoverageRefusal(t *testing.T) {
	const parts = 3
	db := buildDB(t, 6000, 29)
	q := countQuery(db)

	// Floor high enough that losing any partition refuses (each partition
	// holds roughly a third of the population).
	co, faulty := replicatedTier(t, db, parts, 1, shard.Options{MinCoverage: 0.9})
	faulty[1][0].Kill()
	if res := waitDone(t, mustStart(t, co, q)); res != nil {
		t.Fatalf("coverage below floor served anyway: %+v", res.Coverage)
	}

	// Floor low enough that the same loss serves, annotated.
	co2, faulty2 := replicatedTier(t, db, parts, 1, shard.Options{MinCoverage: 0.5})
	faulty2[1][0].Kill()
	res := waitDone(t, mustStart(t, co2, q))
	if res == nil || res.Coverage == nil || !res.Coverage.Degraded {
		t.Fatalf("coverage above floor refused: %+v", res)
	}

	// Whole tier dead: nothing can start.
	co3, faulty3 := replicatedTier(t, db, parts, 1, shard.Options{})
	for i := range faulty3 {
		faulty3[i][0].Kill()
	}
	if _, err := co3.StartQuery(q); err == nil {
		t.Fatalf("StartQuery succeeded with every partition dead")
	}
}

// TestIngestSkipsDeadReplicaAndResyncGates: a replica that is down while a
// batch routes misses it, turns unsynced, and stays out of the ingest path;
// queries keep full coverage via its peer, and the merged quiesced answer
// still matches a single-node engine over the final table. The stale
// replica reports an honestly old watermark and is not re-marked synced by
// the health loop (its watermark cannot reach the partition target).
func TestIngestSkipsDeadReplicaAndResyncGates(t *testing.T) {
	db := buildDB(t, 8000, 31)
	q := countQuery(db)
	base := int64(db.Fact.NumRows())

	single := progressive.New(progressive.Config{})
	if err := single.Prepare(db, engine.Options{Confidence: 0.95, Seed: 5}); err != nil {
		t.Fatalf("single prepare: %v", err)
	}

	co, faulty := replicatedTier(t, db, 2, 2, shard.Options{})
	faulty[0][1].Kill()
	co.CheckHealth()

	b := ingest.FromTable(db.Fact, 0, 700)
	b.Seq = 1
	if err := co.ApplyBatch(b, nil); err != nil {
		t.Fatalf("ApplyBatch with one dead replica: %v", err)
	}
	tbl, err := ingest.Materialize(db, b)
	if err != nil {
		t.Fatalf("materialize: %v", err)
	}
	if err := single.Append(tbl); err != nil {
		t.Fatalf("single append: %v", err)
	}
	grown := base + 700
	if got := co.Watermark(); got != grown {
		t.Fatalf("coordinator watermark %d, want %d", got, grown)
	}

	want := waitDone(t, mustStart(t, single, q))
	got := waitDone(t, mustStart(t, co, q))
	if got == nil || !reflect.DeepEqual(got.Bins, want.Bins) {
		t.Fatalf("merged bins with one stale replica differ from single node")
	}
	if got.Coverage == nil || !got.Coverage.Full() {
		t.Fatalf("coverage %+v, want full", got.Coverage)
	}
	if got.Watermark != grown {
		t.Fatalf("merged watermark %d, want %d", got.Watermark, grown)
	}

	// Revive: healthy again, but it missed the batch, so it must stay
	// unsynced (its watermark is below the partition target).
	faulty[0][1].Revive()
	co.CheckHealth()
	topo := co.Topology()
	rt := topo.Partitions[0].Replicas[1]
	if !rt.Healthy {
		t.Fatalf("revived replica not healthy: %+v", rt)
	}
	if rt.Synced {
		t.Fatalf("stale replica re-marked synced without catching up: %+v", rt)
	}
}

// TestAntiEntropyDetectsDivergence: identical replicas compare clean;
// feeding one replica different rows behind the coordinator's back (same
// row count, so watermarks agree) must trip the bitwise alarm.
func TestAntiEntropyDetectsDivergence(t *testing.T) {
	db := buildDB(t, 6000, 37)
	q := countQuery(db)
	co, faulty := replicatedTier(t, db, 2, 2, shard.Options{})

	mm, err := co.AntiEntropyCheck(q, 30*time.Second)
	if err != nil {
		t.Fatalf("AntiEntropyCheck: %v", err)
	}
	if len(mm) != 0 {
		t.Fatalf("healthy tier reported divergence: %+v", mm)
	}
	topo := co.Topology()
	if topo.AntiEntropyChecks != 2 || topo.AntiEntropyMismatches != 0 {
		t.Fatalf("counters %d/%d, want 2 checks 0 mismatches",
			topo.AntiEntropyChecks, topo.AntiEntropyMismatches)
	}

	// Diverge partition 0's replicas: same number of extra rows, different
	// contents, appended directly to the inner engines (bypassing routing —
	// exactly the corruption anti-entropy exists to catch).
	parts, err := shard.Partition(db, 2)
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}
	for j, span := range [][2]int{{0, 300}, {300, 600}} {
		sub := ingest.FromTable(parts[0].Fact, span[0], span[1])
		tbl, err := ingest.Materialize(parts[0], sub)
		if err != nil {
			t.Fatalf("materialize: %v", err)
		}
		if err := faulty[0][j].Append(tbl); err != nil {
			t.Fatalf("direct append: %v", err)
		}
	}
	mm, err = co.AntiEntropyCheck(q, 30*time.Second)
	if err != nil {
		t.Fatalf("AntiEntropyCheck: %v", err)
	}
	if len(mm) != 1 || mm[0].Partition != 0 {
		t.Fatalf("divergence not flagged: %+v", mm)
	}
	if co.Topology().AntiEntropyMismatches != 1 {
		t.Fatalf("mismatch counter not bumped")
	}
}

// TestRebalanceHandoff: the checkpoint-codec handoff attaches a new
// in-sync replica mid-ingest; the newcomer then serves bitwise-identical
// fragments (anti-entropy clean against the source) and carries the
// partition alone after the original replica dies.
func TestRebalanceHandoff(t *testing.T) {
	db := buildDB(t, 8000, 41)
	q := countQuery(db)
	co, faulty := replicatedTier(t, db, 2, 1, shard.Options{})

	// Ingest before the handoff so the transferred view has post-base state.
	b := ingest.FromTable(db.Fact, 0, 500)
	b.Seq = 1
	if err := co.ApplyBatch(b, nil); err != nil {
		t.Fatalf("ApplyBatch: %v", err)
	}

	if err := co.Rebalance(0, progressive.New(progressive.Config{})); err != nil {
		t.Fatalf("Rebalance: %v", err)
	}
	if co.Replicas(0) != 2 {
		t.Fatalf("partition 0 has %d replicas after rebalance, want 2", co.Replicas(0))
	}
	// The newcomer must be bitwise-indistinguishable from the source.
	mm, err := co.AntiEntropyCheck(q, 30*time.Second)
	if err != nil {
		t.Fatalf("AntiEntropyCheck after handoff: %v", err)
	}
	if len(mm) != 0 {
		t.Fatalf("handoff produced divergent replica: %+v", mm)
	}

	// Ingest after the handoff routes to both members.
	b2 := ingest.FromTable(db.Fact, 500, 1200)
	b2.Seq = 2
	if err := co.ApplyBatch(b2, nil); err != nil {
		t.Fatalf("ApplyBatch after handoff: %v", err)
	}

	// Kill the original replica: the rebalanced-in one carries the
	// partition at full coverage and the final version.
	faulty[0][0].Kill()
	res := waitDone(t, mustStart(t, co, q))
	if res == nil || res.Coverage == nil || !res.Coverage.Full() {
		t.Fatalf("rebalanced replica did not carry the partition: %+v", res)
	}
	grown := int64(db.Fact.NumRows()) + 1200
	if res.Watermark != grown || !res.Complete {
		t.Fatalf("post-handoff result watermark=%d complete=%v, want %d/true",
			res.Watermark, res.Complete, grown)
	}

	// RemoveReplica: dropping the dead original leaves the newcomer; the
	// last replica is protected.
	name := co.Topology().Partitions[0].Replicas[0].Name
	if err := co.RemoveReplica(0, name); err != nil {
		t.Fatalf("RemoveReplica: %v", err)
	}
	if co.Replicas(0) != 1 {
		t.Fatalf("partition 0 has %d replicas after remove", co.Replicas(0))
	}
	last := co.Topology().Partitions[0].Replicas[0].Name
	if err := co.RemoveReplica(0, last); err == nil {
		t.Fatalf("removed the last replica of a partition")
	}
}
