package shard

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"idebench/internal/engine"
	"idebench/internal/query"
)

// CheckHealth runs one synchronous health pass over every replica: backends
// with a Pinger capability are probed and their health flag set from the
// outcome; backends without one keep whatever the query/ingest paths last
// observed. A replica that comes back healthy is re-marked in-sync only
// when its confirmed watermark proves it holds the partition's current
// version (a durable restart recovered the WAL tail, or no batch was
// routed while it was down) — otherwise it keeps serving at its honestly
// stale watermark until a rebalance hands it fresh state.
//
// The pass also audits for phantom rows: a replica whose watermark exceeds
// the partition's published ingest target holds rows the coordinator never
// routed (someone fed the backend directly), which is content divergence
// and quarantines it. Two guards keep the audit honest: it only runs while
// no ApplyBatch is in flight (a racing watermark read mid-apply is not
// divergence), and it only fires when some sibling sits exactly at the
// target — a whole partition ahead in lockstep is an un-acked batch from a
// crash between apply and journal, not a rogue replica.
//
// Returns the healthy and total replica counts; quarantined replicas count
// in total but never as healthy (they serve nothing).
func (co *Coordinator) CheckHealth() (healthy, total int) {
	co.mu.Lock()
	prepared := co.prepared
	sets := make([][]*replica, len(co.sets))
	targets := make([]int64, len(co.sets))
	for i := range co.sets {
		sets[i] = append([]*replica(nil), co.sets[i]...)
		if len(co.steps) > i && len(co.steps[i]) > 0 {
			targets[i] = co.steps[i][len(co.steps[i])-1].Local
		}
	}
	co.mu.Unlock()

	seq := co.applySeq.Load()
	quiescent := seq == co.applyDone.Load()

	type phantom struct {
		part int
		r    *replica
	}
	var phantoms []phantom
	for i, set := range sets {
		wms := make([]int64, len(set)) // confirmed watermark, -1 unknown
		for j, r := range set {
			if p, ok := r.be.(Pinger); ok {
				r.setHealthy(p.Ping() == nil)
			}
			h, synced := r.state()
			q := r.isQuarantined()
			wms[j] = -1
			if r.caps.Watermarker != nil {
				wms[j] = r.caps.Watermarker.Watermark()
			}
			if h && !synced && !q && wms[j] >= targets[i] && wms[j] >= 0 {
				r.setSynced(true)
			}
			if h && !q {
				healthy++
			}
			total++
		}
		if !prepared || !quiescent {
			continue
		}
		for j, r := range set {
			if wms[j] <= targets[i] || r.isQuarantined() {
				continue
			}
			for k, s := range set {
				if k != j && !s.isQuarantined() && wms[k] == targets[i] {
					phantoms = append(phantoms, phantom{part: i, r: r})
					break
				}
			}
		}
	}
	// Commit quarantine decisions only if no apply started since the
	// targets were read — otherwise the overshoot may be a batch landing.
	if len(phantoms) > 0 && co.applySeq.Load() == seq {
		for _, ph := range phantoms {
			if co.quarantine(ph.part, ph.r) {
				healthy--
			}
		}
	}
	return healthy, total
}

// quarantine excludes r from serving and ingest, journaling the exclusion
// so it survives a coordinator restart. Reports whether the flag flipped
// (false when already quarantined). The journal append is counted on the
// error alarm if it fails — the in-memory exclusion stands regardless.
func (co *Coordinator) quarantine(part int, r *replica) bool {
	if !r.setQuarantined() {
		return false
	}
	if err := co.logTopology(TopologyEvent{Op: "quarantine", Partition: part, Name: r.name}); err != nil {
		co.aeErrors.Add(1)
	}
	return true
}

// StartHealthLoop probes replica health every interval until the returned
// stop function is called.
func (co *Coordinator) StartHealthLoop(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = time.Second
	}
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				co.CheckHealth()
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}

// Mismatch describes one anti-entropy divergence: two replicas of the same
// partition answered the same query with bitwise-different partials at the
// same watermark.
type Mismatch struct {
	Partition int
	A, B      string // replica names
	Watermark int64
	// Quarantined names the replica the divergence was attributed to (a
	// third replica's fragment broke the tie), empty when the partition
	// had no conclusive witness and both replicas stay serving.
	Quarantined string
}

// AntiEntropyCheck runs q to completion on two healthy in-sync replicas of
// every partition that has them and compares the resulting fragments
// bitwise via their canonical encoding. Partials are deterministic — same
// partition, same data version, same query must produce identical bytes —
// so any difference is real divergence (lost batch, corrupted state), not
// timing.
//
// The pair rotates across rounds so every replica of an R≥3 set is
// eventually audited, and a mismatch is escalated: a third eligible
// replica's fragment votes, and the replica it outvotes is quarantined
// (excluded from fan-out and ingest until readmitted via the rebalance
// path). With only two eligible replicas the mismatch is counted and
// returned but nobody is quarantined — evicting on a coin flip could
// remove the correct copy.
//
// A replica that fails its fragment run no longer aborts the sweep: the
// partition is skipped, the failure lands on the error alarm counter, and
// the remaining partitions are still checked; the joined errors come back
// to the caller. Comparisons only happen when both fragments are complete
// at the same watermark; partitions with fewer than two eligible replicas
// are skipped.
func (co *Coordinator) AntiEntropyCheck(q *query.Query, timeout time.Duration) ([]Mismatch, error) {
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	round := int(co.aeRound.Add(1) - 1)
	var out []Mismatch
	var errs []error
	fail := func(part int, name string, err error) {
		co.aeErrors.Add(1)
		errs = append(errs, fmt.Errorf("partition %d, %s: %w", part, name, err))
	}
	for i := 0; i < co.Shards(); i++ {
		set := co.replicaSet(i)
		var elig []*replica
		for _, r := range set {
			if h, synced := r.state(); h && synced && !r.isQuarantined() {
				elig = append(elig, r)
			}
		}
		if len(elig) < 2 {
			continue
		}
		// Rotate which adjacent pair is compared: over len(elig) rounds
		// every replica is in at least one audited pair.
		a := elig[round%len(elig)]
		b := elig[(round+1)%len(elig)]
		pa, err := runFragment(a, q, timeout)
		if err != nil {
			fail(i, a.name, err)
			continue
		}
		pb, err := runFragment(b, q, timeout)
		if err != nil {
			fail(i, b.name, err)
			continue
		}
		if pa == nil || pb == nil || !pa.Complete || !pb.Complete || pa.Watermark != pb.Watermark {
			// Not comparable (one replica mid-ingest or without partial
			// support); try again next round.
			continue
		}
		ea, err := json.Marshal(pa)
		if err != nil {
			fail(i, a.name, err)
			continue
		}
		eb, err := json.Marshal(pb)
		if err != nil {
			fail(i, b.name, err)
			continue
		}
		co.aeChecks.Add(1)
		if bytes.Equal(ea, eb) {
			continue
		}
		co.aeMismatches.Add(1)
		m := Mismatch{Partition: i, A: a.name, B: b.name, Watermark: pa.Watermark}
		if loser := co.outvoted(i, elig, a, b, ea, eb, pa.Watermark, q, timeout); loser != nil {
			co.quarantine(i, loser)
			m.Quarantined = loser.name
		}
		out = append(out, m)
	}
	if len(errs) > 0 {
		return out, fmt.Errorf("shard: anti-entropy sweep: %w", errors.Join(errs...))
	}
	return out, nil
}

// outvoted attributes a mismatch between a and b by polling the other
// eligible replicas: the first witness fragment that matches one side
// bitwise (complete, at the same watermark) convicts the other. Returns
// nil when no witness is conclusive.
func (co *Coordinator) outvoted(part int, elig []*replica, a, b *replica, ea, eb []byte, wm int64, q *query.Query, timeout time.Duration) *replica {
	for _, w := range elig {
		if w == a || w == b {
			continue
		}
		pw, err := runFragment(w, q, timeout)
		if err != nil {
			co.aeErrors.Add(1)
			continue
		}
		if pw == nil || !pw.Complete || pw.Watermark != wm {
			continue
		}
		ew, err := json.Marshal(pw)
		if err != nil {
			continue
		}
		switch {
		case bytes.Equal(ew, ea):
			return b
		case bytes.Equal(ew, eb):
			return a
		}
		// The witness agrees with neither side: keep polling; if nobody
		// breaks the tie the partition stays on the alarm counters only.
	}
	return nil
}

// runFragment executes q on one replica until done (or timeout, which
// cancels) and returns its raw fragment.
func runFragment(r *replica, q *query.Query, timeout time.Duration) (*engine.Partial, error) {
	sh, err := r.be.StartQuery(q)
	if err != nil {
		return nil, err
	}
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case <-sh.Done():
	case <-t.C:
		sh.Cancel()
		<-sh.Done()
		return nil, fmt.Errorf("timed out after %v", timeout)
	}
	return partialOf(sh), nil
}

// StartAntiEntropyLoop runs AntiEntropyCheck every interval with the query
// produced by qf, logging nothing itself: divergence shows up on the
// Topology alarm counters (and /healthz). Stops when the returned function
// is called.
func (co *Coordinator) StartAntiEntropyLoop(interval, timeout time.Duration, qf func() *query.Query) (stop func()) {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				// The sweep's errors are already accounted on the aeErrors
				// alarm counter (surfaced via Topology and /healthz); the
				// loop keeps watching regardless.
				if _, err := co.AntiEntropyCheck(qf(), timeout); err != nil {
					continue
				}
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}
