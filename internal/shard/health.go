package shard

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"idebench/internal/engine"
	"idebench/internal/query"
)

// CheckHealth runs one synchronous health pass over every replica: backends
// with a Pinger capability are probed and their health flag set from the
// outcome; backends without one keep whatever the query/ingest paths last
// observed. A replica that comes back healthy is re-marked in-sync only
// when its confirmed watermark proves it holds the partition's current
// version (a durable restart recovered the WAL tail, or no batch was
// routed while it was down) — otherwise it keeps serving at its honestly
// stale watermark until a rebalance hands it fresh state. Returns the
// healthy and total replica counts.
func (co *Coordinator) CheckHealth() (healthy, total int) {
	co.mu.Lock()
	sets := make([][]*replica, len(co.sets))
	targets := make([]int64, len(co.sets))
	for i := range co.sets {
		sets[i] = append([]*replica(nil), co.sets[i]...)
		if len(co.steps) > i && len(co.steps[i]) > 0 {
			targets[i] = co.steps[i][len(co.steps[i])-1].Local
		}
	}
	co.mu.Unlock()

	for i, set := range sets {
		for _, r := range set {
			if p, ok := r.be.(Pinger); ok {
				r.setHealthy(p.Ping() == nil)
			}
			h, synced := r.state()
			if h && !synced && r.caps.Watermarker != nil &&
				r.caps.Watermarker.Watermark() >= targets[i] {
				r.setSynced(true)
			}
			if h {
				healthy++
			}
			total++
		}
	}
	return healthy, total
}

// StartHealthLoop probes replica health every interval until the returned
// stop function is called.
func (co *Coordinator) StartHealthLoop(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = time.Second
	}
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				co.CheckHealth()
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}

// Mismatch describes one anti-entropy divergence: two replicas of the same
// partition answered the same query with bitwise-different partials at the
// same watermark.
type Mismatch struct {
	Partition int
	A, B      string // replica names
	Watermark int64
}

// AntiEntropyCheck runs q to completion on two healthy in-sync replicas of
// every partition that has them and compares the resulting fragments
// bitwise via their canonical encoding. Partials are deterministic — same
// partition, same data version, same query must produce identical bytes —
// so any difference is real divergence (lost batch, corrupted state), not
// timing. Comparisons only happen when both fragments are complete at the
// same watermark; partitions with fewer than two eligible replicas are
// skipped. Mismatches are returned and counted on the Topology alarm
// counters.
func (co *Coordinator) AntiEntropyCheck(q *query.Query, timeout time.Duration) ([]Mismatch, error) {
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	var out []Mismatch
	for i := 0; i < co.Shards(); i++ {
		set := co.replicaSet(i)
		var pair []*replica
		for _, r := range set {
			if h, synced := r.state(); h && synced {
				pair = append(pair, r)
				if len(pair) == 2 {
					break
				}
			}
		}
		if len(pair) < 2 {
			continue
		}
		pa, err := runFragment(pair[0], q, timeout)
		if err != nil {
			return out, fmt.Errorf("shard: anti-entropy on %s: %w", pair[0].name, err)
		}
		pb, err := runFragment(pair[1], q, timeout)
		if err != nil {
			return out, fmt.Errorf("shard: anti-entropy on %s: %w", pair[1].name, err)
		}
		if pa == nil || pb == nil || !pa.Complete || !pb.Complete || pa.Watermark != pb.Watermark {
			// Not comparable (one replica mid-ingest or without partial
			// support); try again next round.
			continue
		}
		ea, err := json.Marshal(pa)
		if err != nil {
			return out, err
		}
		eb, err := json.Marshal(pb)
		if err != nil {
			return out, err
		}
		co.aeChecks.Add(1)
		if !bytes.Equal(ea, eb) {
			co.aeMismatches.Add(1)
			out = append(out, Mismatch{
				Partition: i, A: pair[0].name, B: pair[1].name, Watermark: pa.Watermark,
			})
		}
	}
	return out, nil
}

// runFragment executes q on one replica until done (or timeout, which
// cancels) and returns its raw fragment.
func runFragment(r *replica, q *query.Query, timeout time.Duration) (*engine.Partial, error) {
	sh, err := r.be.StartQuery(q)
	if err != nil {
		return nil, err
	}
	select {
	case <-sh.Done():
	case <-time.After(timeout):
		sh.Cancel()
		<-sh.Done()
		return nil, fmt.Errorf("timed out after %v", timeout)
	}
	return partialOf(sh), nil
}

// StartAntiEntropyLoop runs AntiEntropyCheck every interval with the query
// produced by qf, logging nothing itself: divergence shows up on the
// Topology alarm counters (and /healthz). Stops when the returned function
// is called.
func (co *Coordinator) StartAntiEntropyLoop(interval, timeout time.Duration, qf func() *query.Query) (stop func()) {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				// Best-effort: a dead replica mid-check is the health loop's
				// problem, not a reason to stop watching for divergence.
				co.AntiEntropyCheck(qf(), timeout) //nolint:errcheck
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}
