package shard

import (
	"fmt"
	"math"
	"sync"

	"idebench/internal/engine"
	"idebench/internal/query"
)

// partQuery tracks one partition's contribution to one merged query.
type partQuery struct {
	cur   engine.Handle // live handle; nil once the partition finished or died
	rep   *replica      // replica serving cur
	tried map[*replica]bool
	// last buffers the freshest fragment seen from any replica of this
	// partition — a mid-stream death keeps its last streamed partial as the
	// partition's answer until a failover replica overtakes it.
	last *engine.Partial
	// dead marks a partition that will contribute nothing further: its
	// fragment is final (last.Complete) or every replica was tried.
	dead bool
}

// coordHandle merges one query's per-partition handles, failing over to
// the next live replica when one dies mid-stream. Snapshot buffers one
// Partial per partition (arrival order irrelevant), folds the available
// fragments in partition-ID order and renders once.
//
// Coverage contract: while every partition is still live, Snapshot returns
// nil until EVERY partition has produced a fragment — the classic
// progressive gate. Once a partition is known dead (all replicas tried),
// it is excluded and the merge proceeds over the survivors, annotated with
// a query.Coverage block and marked incomplete; a degraded result is never
// presented as a full-population answer. If the surviving population
// fraction is below the coordinator's MinCoverage floor the snapshot is
// refused (nil) instead.
type coordHandle struct {
	co    *Coordinator
	q     *query.Query
	aggs  []query.Aggregate
	start func(*replica) (engine.Handle, error)
	done  chan struct{}

	mu        sync.Mutex
	parts     []partQuery
	cancelled bool
}

// newCoordHandle starts q on one replica per partition (preferring healthy,
// in-sync ones) and watches each for mid-stream death. It fails with an
// error only when not a single partition can start — anything partial
// proceeds and surfaces as coverage.
func newCoordHandle(co *Coordinator, q *query.Query, start func(*replica) (engine.Handle, error)) (*coordHandle, error) {
	h := &coordHandle{
		co: co, q: q, aggs: q.Aggs, start: start,
		done:  make(chan struct{}),
		parts: make([]partQuery, co.Shards()),
	}
	started := 0
	for i := range h.parts {
		h.parts[i].tried = make(map[*replica]bool)
		h.startNext(i)
		if h.parts[i].cur != nil {
			started++
		}
	}
	if started == 0 {
		return nil, fmt.Errorf("shard: no partition has a startable replica")
	}
	var wg sync.WaitGroup
	for i := range h.parts {
		if h.parts[i].cur == nil {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h.runPart(i)
		}(i)
	}
	go func() {
		wg.Wait()
		close(h.done)
	}()
	return h, nil
}

// startNext starts the query on the best untried replica of partition i:
// healthy and in-sync first, then healthy but stale, then — as a last
// resort, since health info can itself be stale — anything untried. A
// start error marks the replica unhealthy and moves on; exhausting the set
// marks the partition dead.
//
// Quarantined replicas are excluded from every pass, including the last
// resort: their content is known wrong, and an honestly uncovered
// partition (degraded coverage) beats a silently wrong answer.
func (h *coordHandle) startNext(i int) {
	h.mu.Lock()
	pq := &h.parts[i]
	if h.cancelled {
		pq.cur, pq.dead = nil, true
		h.mu.Unlock()
		return
	}
	tried := pq.tried
	h.mu.Unlock()

	set := h.co.replicaSet(i)
	var order []*replica
	queued := make(map[*replica]bool)
	for pass := 0; pass < 3; pass++ {
		for _, r := range set {
			if tried[r] || queued[r] || r.isQuarantined() {
				continue
			}
			healthy, synced := r.state()
			switch {
			case pass == 0 && healthy && synced,
				pass == 1 && healthy && !synced,
				pass == 2:
				order = append(order, r)
				queued[r] = true
			}
		}
	}
	for _, r := range order {
		tried[r] = true
		sh, err := h.start(r)
		if err != nil {
			r.setHealthy(false)
			continue
		}
		h.mu.Lock()
		if h.cancelled {
			h.mu.Unlock()
			sh.Cancel()
			return
		}
		pq.cur, pq.rep = sh, r
		h.mu.Unlock()
		return
	}
	h.mu.Lock()
	pq.cur, pq.rep, pq.dead = nil, nil, true
	h.mu.Unlock()
}

// runPart watches partition i's live handle: a handle that finishes with a
// complete fragment ends the partition normally; one that finishes without
// (connection died, backend shed the query) marks its replica unhealthy
// and fails the query over to the next replica, keeping the freshest
// buffered fragment meanwhile.
func (h *coordHandle) runPart(i int) {
	for {
		h.mu.Lock()
		pq := &h.parts[i]
		cur, rep := pq.cur, pq.rep
		h.mu.Unlock()
		if cur == nil {
			return
		}
		<-cur.Done()

		h.mu.Lock()
		p := partialOf(cur)
		if p != nil && betterFragment(p, pq.last) {
			pq.last = p
		}
		if h.cancelled {
			pq.cur, pq.rep = nil, nil
			h.mu.Unlock()
			return
		}
		if p != nil && p.Complete {
			pq.cur, pq.rep, pq.dead = nil, nil, true
			h.mu.Unlock()
			return
		}
		pq.cur, pq.rep = nil, nil
		h.mu.Unlock()

		// The handle ended without a complete fragment: either the replica
		// died under the query, or a live backend ended it deliberately (the
		// viz was deleted, the query was shed). Only a probe-confirmed dead
		// replica triggers failover — restarting a deliberately ended query
		// on a sibling would resurrect cancelled work, and marking the
		// replica unhealthy for it would poison the ingest path off a false
		// signal.
		if rep != nil && rep.unreachable() {
			rep.setHealthy(false)
			h.startNext(i)
			continue
		}
		h.mu.Lock()
		pq.dead = true
		h.mu.Unlock()
		return
	}
}

// betterFragment prefers the fresher of two fragments from the same
// partition: higher watermark first, then more rows folded.
func betterFragment(p, old *engine.Partial) bool {
	if old == nil {
		return true
	}
	if p.Watermark != old.Watermark {
		return p.Watermark > old.Watermark
	}
	return p.RowsSeen >= old.RowsSeen
}

// partialOf reads a handle's raw fragment; nil when the handle lacks the
// capability or has nothing yet.
func partialOf(sh engine.Handle) *engine.Partial {
	ps, ok := sh.(engine.PartialSnapshotter)
	if !ok {
		return nil
	}
	return ps.PartialSnapshot()
}

// Snapshot implements engine.Handle. See the type comment for the
// coverage contract.
func (h *coordHandle) Snapshot() *query.Result {
	h.mu.Lock()
	frags := make([]*engine.Partial, 0, len(h.parts))
	answered := 0
	for i := range h.parts {
		pq := &h.parts[i]
		if pq.cur != nil {
			if p := partialOf(pq.cur); p != nil && betterFragment(p, pq.last) {
				pq.last = p
			}
		}
		switch {
		case pq.last != nil:
			frags = append(frags, pq.last)
			answered++
		case pq.dead:
			frags = append(frags, nil) // uncovered partition
		default:
			// Live but nothing yet: no merged answer until it reports or dies.
			h.mu.Unlock()
			return nil
		}
	}
	total := len(h.parts)
	h.mu.Unlock()
	if answered == 0 {
		return nil
	}

	fold := engine.NewPartialFold(h.aggs)
	h.co.mu.Lock()
	z := h.co.z
	global := h.co.global
	minWM := int64(math.MaxInt64)
	var popAnswered int64
	for i, p := range frags {
		if p == nil {
			continue
		}
		fold.Add(p)
		popAnswered += p.Population
		if g := h.co.translate(i, p.Watermark); g < minWM {
			minWM = g
		}
	}
	h.co.mu.Unlock()

	cov := &query.Coverage{
		PartitionsAnswered: answered,
		PartitionsTotal:    total,
		Degraded:           answered < total,
	}
	if global > 0 {
		cov.PopulationFraction = float64(popAnswered) / float64(global)
		if cov.PopulationFraction > 1 {
			cov.PopulationFraction = 1
		}
	} else if answered == total {
		cov.PopulationFraction = 1
	}
	if cov.Degraded && cov.PopulationFraction < h.co.opts.MinCoverage {
		// Below the floor: refuse rather than serve.
		return nil
	}
	res := fold.Render(z)
	if res == nil {
		return nil
	}
	res.Watermark = minWM
	res.Coverage = cov
	if cov.Degraded {
		// A degraded merge is never a complete answer to the full-population
		// query, no matter how complete its fragments are.
		res.Complete = false
	}
	return res
}

// Done implements engine.Handle: closed when every partition either
// delivered its final fragment or died with no replica left.
func (h *coordHandle) Done() <-chan struct{} { return h.done }

// Cancel implements engine.Handle: stops failover and cancels every live
// per-partition handle.
func (h *coordHandle) Cancel() {
	h.mu.Lock()
	h.cancelled = true
	var live []engine.Handle
	for i := range h.parts {
		if h.parts[i].cur != nil {
			live = append(live, h.parts[i].cur)
		}
	}
	h.mu.Unlock()
	for _, sh := range live {
		sh.Cancel()
	}
}
