package shard

import (
	"fmt"
	"sync"

	"idebench/internal/dataset"
	"idebench/internal/engine"
	"idebench/internal/query"
)

// Faulty wraps an in-process engine and injects replica death: after
// Kill, every interface call fails the way a crashed process would (query
// starts error, live handles go silent and finish without a fragment,
// pings fail, appends error) until Revive. The inner engine's state is
// untouched — a revived replica answers at exactly the watermark it had,
// like a process restarted from its durable state — which is what the
// elasticity tests and the availability sweep need to exercise failover,
// degraded coverage and recovery without real processes.
type Faulty struct {
	inner engine.Engine

	mu   sync.Mutex
	down bool
	gen  chan struct{} // closed on Kill, replaced on Revive
}

// NewFaulty wraps inner, initially alive.
func NewFaulty(inner engine.Engine) *Faulty {
	return &Faulty{inner: inner, gen: make(chan struct{})}
}

// Kill starts failing all calls and silences live handles. Idempotent.
func (f *Faulty) Kill() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.down {
		f.down = true
		close(f.gen)
	}
}

// Revive brings the replica back. Idempotent.
func (f *Faulty) Revive() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.down {
		f.down = false
		f.gen = make(chan struct{})
	}
}

// Down reports the injected state.
func (f *Faulty) Down() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.down
}

func (f *Faulty) errIfDown() error {
	if f.Down() {
		return fmt.Errorf("faulty: %s is down", f.inner.Name())
	}
	return nil
}

// Ping implements the coordinator's Pinger probe.
func (f *Faulty) Ping() error { return f.errIfDown() }

// Name implements engine.Engine.
func (f *Faulty) Name() string { return f.inner.Name() }

// Prepare implements engine.Engine.
func (f *Faulty) Prepare(db *dataset.Database, opts engine.Options) error {
	if err := f.errIfDown(); err != nil {
		return err
	}
	return f.inner.Prepare(db, opts)
}

// StartQuery implements engine.Engine.
func (f *Faulty) StartQuery(q *query.Query) (engine.Handle, error) {
	f.mu.Lock()
	down, gen := f.down, f.gen
	f.mu.Unlock()
	if down {
		return nil, fmt.Errorf("faulty: %s is down", f.inner.Name())
	}
	h, err := f.inner.StartQuery(q)
	if err != nil {
		return nil, err
	}
	return newFaultyHandle(f, h, gen), nil
}

// OpenSession implements engine.Engine.
func (f *Faulty) OpenSession() engine.Session {
	return &faultySession{f: f, inner: f.inner.OpenSession()}
}

// LinkVizs implements engine.Engine.
func (f *Faulty) LinkVizs(from, to string) { f.inner.LinkVizs(from, to) }

// DeleteViz implements engine.Engine.
func (f *Faulty) DeleteViz(name string) { f.inner.DeleteViz(name) }

// WorkflowStart implements engine.Engine.
func (f *Faulty) WorkflowStart() { f.inner.WorkflowStart() }

// WorkflowEnd implements engine.Engine.
func (f *Faulty) WorkflowEnd() { f.inner.WorkflowEnd() }

// Append implements engine.Appender (the inner engine must have it).
func (f *Faulty) Append(rows *dataset.Table) error {
	if err := f.errIfDown(); err != nil {
		return err
	}
	app, ok := f.inner.(engine.Appender)
	if !ok {
		return fmt.Errorf("faulty: %s cannot append", f.inner.Name())
	}
	return app.Append(rows)
}

// Watermark implements engine.Watermarker. It answers even while down —
// the data a dead process held is still on its disk; what Kill removes is
// reachability, which the coordinator tracks separately.
func (f *Faulty) Watermark() int64 {
	if wm, ok := f.inner.(engine.Watermarker); ok {
		return wm.Watermark()
	}
	return 0
}

// ShedSpeculation implements engine.Shedder.
func (f *Faulty) ShedSpeculation() int {
	if s, ok := f.inner.(engine.Shedder); ok && !f.Down() {
		return s.ShedSpeculation()
	}
	return 0
}

// ActiveScanConsumers implements engine.ScanObserver.
func (f *Faulty) ActiveScanConsumers() int {
	if s, ok := f.inner.(engine.ScanObserver); ok {
		return s.ActiveScanConsumers()
	}
	return 0
}

// SnapshotView implements engine.ViewSnapshotter.
func (f *Faulty) SnapshotView() (*dataset.Database, []uint32) {
	if v, ok := f.inner.(engine.ViewSnapshotter); ok {
		return v.SnapshotView()
	}
	return nil, nil
}

// PrepareReordered implements engine.ReorderedPreparer.
func (f *Faulty) PrepareReordered(db *dataset.Database, perm []uint32, opts engine.Options) error {
	if err := f.errIfDown(); err != nil {
		return err
	}
	if rp, ok := f.inner.(engine.ReorderedPreparer); ok {
		return rp.PrepareReordered(db, perm, opts)
	}
	return fmt.Errorf("faulty: %s cannot adopt reordered storage", f.inner.Name())
}

// faultySession fails query starts while the replica is down.
type faultySession struct {
	f     *Faulty
	inner engine.Session
}

func (s *faultySession) StartQuery(q *query.Query) (engine.Handle, error) {
	s.f.mu.Lock()
	down, gen := s.f.down, s.f.gen
	s.f.mu.Unlock()
	if down {
		return nil, fmt.Errorf("faulty: %s is down", s.f.inner.Name())
	}
	h, err := s.inner.StartQuery(q)
	if err != nil {
		return nil, err
	}
	return newFaultyHandle(s.f, h, gen), nil
}

func (s *faultySession) LinkVizs(from, to string) { s.inner.LinkVizs(from, to) }
func (s *faultySession) DeleteViz(name string)    { s.inner.DeleteViz(name) }
func (s *faultySession) WorkflowStart()           { s.inner.WorkflowStart() }
func (s *faultySession) WorkflowEnd()             { s.inner.WorkflowEnd() }
func (s *faultySession) Close()                   { s.inner.Close() }

// faultyHandle silences a live handle when its replica dies mid-query:
// Done fires (like a dropped connection completing the client handle) and
// the fragment disappears, which is exactly the shape the coordinator's
// failover path keys on.
type faultyHandle struct {
	f     *Faulty
	inner engine.Handle
	gen   chan struct{}
	done  chan struct{}
}

func newFaultyHandle(f *Faulty, inner engine.Handle, gen chan struct{}) *faultyHandle {
	h := &faultyHandle{f: f, inner: inner, gen: gen, done: make(chan struct{})}
	go func() {
		select {
		case <-inner.Done():
		case <-gen:
			inner.Cancel()
		}
		close(h.done)
	}()
	return h
}

// killed reports whether the replica died after this handle started.
func (h *faultyHandle) killed() bool {
	select {
	case <-h.gen:
		return true
	default:
		return false
	}
}

func (h *faultyHandle) Snapshot() *query.Result {
	if h.killed() {
		return nil
	}
	return h.inner.Snapshot()
}

// PartialSnapshot implements engine.PartialSnapshotter.
func (h *faultyHandle) PartialSnapshot() *engine.Partial {
	if h.killed() {
		return nil
	}
	return partialOf(h.inner)
}

func (h *faultyHandle) Done() <-chan struct{} { return h.done }
func (h *faultyHandle) Cancel()               { h.inner.Cancel() }
