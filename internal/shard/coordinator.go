package shard

import (
	"fmt"
	"math"
	"sync"
	"time"

	"idebench/internal/dataset"
	"idebench/internal/engine"
	"idebench/internal/ingest"
	"idebench/internal/query"
	"idebench/internal/stats"
)

// watermarker is the subset of engine.Appender a backend needs for the
// coordinator to observe its confirmed data version. *server.Remote has a
// Watermark but no Append (ingest travels as wire batches), so the
// coordinator asserts this rather than the full Appender.
type watermarker interface {
	Watermark() int64
}

// wmStep records that shard-local watermark Local corresponds to global
// data version Global: after the batch that produced this step is fully
// absorbed by the shard, a query answering at Local covers everything up to
// Global rows of the unified timeline.
type wmStep struct {
	Local, Global int64
}

// Coordinator fans queries out to N shard backends and merges their raw
// accumulator fragments into one progressive result. It implements
// engine.Engine (so the serving layer and the driver use it unchanged),
// engine.Appender and ingest.Sink (routed live ingest), and
// engine.ShardObserver (per-shard watermark observability for /healthz).
//
// Backends are fixed at construction; their slice order IS the shard ID
// order, and every merge folds fragments in that order — see the package
// comment for why that fixed order is load-bearing.
type Coordinator struct {
	backends []engine.Engine

	mu       sync.Mutex
	prepared bool
	parts    []*dataset.Database // in-process backends only: shard-local dbs for Materialize
	steps    [][]wmStep          // per shard, ascending in both coordinates
	global   int64               // global data version: base rows + all routed batch rows
	z        float64

	// applyTimeout bounds the post-route wait for a remote shard to confirm
	// absorption. Exposed for tests; zero means the default.
	applyTimeout time.Duration
}

// NewCoordinator wraps the given shard backends. The slice order assigns
// shard IDs: backends[i] is shard i, forever. At least one backend is
// required; Prepare partitions with n = len(backends).
func NewCoordinator(backends ...engine.Engine) (*Coordinator, error) {
	if len(backends) == 0 {
		return nil, fmt.Errorf("shard: coordinator needs at least one backend")
	}
	return &Coordinator{backends: append([]engine.Engine(nil), backends...)}, nil
}

// Shards returns the number of shard backends.
func (co *Coordinator) Shards() int { return len(co.backends) }

// Name identifies the coordinator in reports: the backend engine name
// prefixed with the fan-out, e.g. "shard3/progressive".
func (co *Coordinator) Name() string {
	return fmt.Sprintf("shard%d/%s", len(co.backends), co.backends[0].Name())
}

// Prepare partitions db across the backends and prepares each one with its
// partition. For a *server.Remote backend, Prepare is the client-side
// sanity check that the shard process serves exactly the partition this
// coordinator computed (same dataset, same hash, same fan-out).
func (co *Coordinator) Prepare(db *dataset.Database, opts engine.Options) error {
	opts = opts.Normalize()
	z, err := stats.ZScore(opts.Confidence)
	if err != nil {
		return fmt.Errorf("shard: %w", err)
	}
	parts, err := Partition(db, len(co.backends))
	if err != nil {
		return err
	}
	for i, be := range co.backends {
		if err := be.Prepare(parts[i], opts); err != nil {
			return fmt.Errorf("shard: prepare shard %d: %w", i, err)
		}
	}
	co.mu.Lock()
	defer co.mu.Unlock()
	co.parts = parts
	co.global = int64(db.Fact.NumRows())
	co.steps = make([][]wmStep, len(co.backends))
	for i := range co.steps {
		// The base step: a shard answering at its full partition size covers
		// the whole prepared dataset.
		co.steps[i] = []wmStep{{Local: int64(parts[i].Fact.NumRows()), Global: co.global}}
	}
	co.z = z
	co.prepared = true
	return nil
}

// translate floors shard i's local watermark w onto the global row axis:
// the largest recorded global version whose local step is <= w. A local
// watermark below the base partition size (mid-Prepare, or a shard that
// restarted from an older checkpoint) translates to 0 — honest "staler
// than any version I know".
func (co *Coordinator) translate(i int, w int64) int64 {
	steps := co.steps[i]
	g := int64(0)
	for _, s := range steps {
		if s.Local <= w {
			g = s.Global
		} else {
			break
		}
	}
	return g
}

// shardWatermark reads shard i's confirmed local watermark, falling back to
// its base partition size when the backend has no watermark capability
// (a static engine never moves past Prepare).
func (co *Coordinator) shardWatermark(i int) int64 {
	if wm, ok := co.backends[i].(watermarker); ok {
		return wm.Watermark()
	}
	co.mu.Lock()
	defer co.mu.Unlock()
	if len(co.steps) > i && len(co.steps[i]) > 0 {
		return co.steps[i][0].Local
	}
	return 0
}

// Watermark implements engine.Appender's observer half on the global axis:
// the minimum over all shards' translated watermarks. A merged snapshot
// never claims a Watermark above this.
func (co *Coordinator) Watermark() int64 {
	min := int64(math.MaxInt64)
	for i := range co.backends {
		w := co.shardWatermark(i)
		co.mu.Lock()
		g := co.translate(i, w)
		co.mu.Unlock()
		if g < min {
			min = g
		}
	}
	if min == math.MaxInt64 {
		return 0
	}
	return min
}

// ShardWatermarks implements engine.ShardObserver: each shard's confirmed
// watermark translated onto the global axis, indexed by shard ID.
func (co *Coordinator) ShardWatermarks() []int64 {
	out := make([]int64, len(co.backends))
	for i := range co.backends {
		w := co.shardWatermark(i)
		co.mu.Lock()
		out[i] = co.translate(i, w)
		co.mu.Unlock()
	}
	return out
}

// Append implements engine.Appender: it reconstructs the wire batch from
// the materialized rows (the inverse the ingest codec defines) and routes
// it. This is what lets an ingest.EngineSink or the durable WAL replay
// treat a coordinator like any other appending engine.
func (co *Coordinator) Append(rows *dataset.Table) error {
	return co.ApplyBatch(ingest.FromTable(rows, 0, rows.NumRows()), nil)
}

// ApplyBatch implements ingest.Sink: route the batch's rows to their home
// shards, apply every non-empty sub-batch, wait until each receiving shard
// confirms absorption, then publish the new global version. The wait keeps
// Apply synchronous-per-batch (the harness serializes batches anyway) so
// Watermark() moves monotonically and quiesce loops terminate.
func (co *Coordinator) ApplyBatch(b *ingest.Batch, _ *dataset.Table) error {
	n := len(co.backends)
	subs, err := RouteBatch(b, n)
	if err != nil {
		return err
	}

	co.mu.Lock()
	if !co.prepared {
		co.mu.Unlock()
		return engine.ErrNotPrepared
	}
	// Reserve the new steps under the lock: concurrent ApplyBatch calls are
	// the caller's bug, but a racing reader must still see consistent steps.
	targets := make([]int64, n)
	newGlobal := co.global + int64(len(b.Rows))
	for i := range co.backends {
		prev := co.steps[i][len(co.steps[i])-1].Local
		targets[i] = prev + int64(len(subs[i].Rows))
	}
	parts := co.parts
	timeout := co.applyTimeout
	co.mu.Unlock()
	if timeout <= 0 {
		timeout = 15 * time.Second
	}

	for i, be := range co.backends {
		if len(subs[i].Rows) == 0 {
			continue
		}
		if sink, ok := be.(ingest.Sink); ok {
			// Remote shard: ship the wire batch; the shard server materializes
			// and validates against its own partition.
			if err := sink.ApplyBatch(subs[i], nil); err != nil {
				return fmt.Errorf("shard: apply to shard %d: %w", i, err)
			}
			if err := co.waitWatermark(i, targets[i], timeout); err != nil {
				return err
			}
			continue
		}
		app, ok := be.(engine.Appender)
		if !ok {
			return fmt.Errorf("shard: shard %d (%s) cannot absorb ingest", i, be.Name())
		}
		// In-process shard: materialize against the shard's own partition so
		// dictionary interning and FK validation happen in shard-local terms.
		tbl, err := ingest.Materialize(parts[i], subs[i])
		if err != nil {
			return fmt.Errorf("shard: materialize for shard %d: %w", i, err)
		}
		if err := app.Append(tbl); err != nil {
			return fmt.Errorf("shard: append to shard %d: %w", i, err)
		}
	}

	co.mu.Lock()
	co.global = newGlobal
	for i := range co.steps {
		co.steps[i] = append(co.steps[i], wmStep{Local: targets[i], Global: newGlobal})
	}
	co.mu.Unlock()
	return nil
}

// waitWatermark polls shard i until its confirmed watermark reaches target.
// Remote watermarks advance via the server's post-apply ingest broadcast,
// so this is a short wait in practice; the timeout turns a dead shard into
// an error instead of a hang.
func (co *Coordinator) waitWatermark(i int, target int64, timeout time.Duration) error {
	wm, ok := co.backends[i].(watermarker)
	if !ok {
		return nil
	}
	deadline := time.Now().Add(timeout)
	for wm.Watermark() < target {
		if time.Now().After(deadline) {
			return fmt.Errorf("shard: shard %d watermark stuck at %d, want %d", i, wm.Watermark(), target)
		}
		time.Sleep(500 * time.Microsecond)
	}
	return nil
}

// OpenSession opens one session per backend and returns a session that fans
// every call across them.
func (co *Coordinator) OpenSession() engine.Session {
	subs := make([]engine.Session, len(co.backends))
	for i, be := range co.backends {
		subs[i] = be.OpenSession()
	}
	return &coordSession{co: co, subs: subs}
}

// StartQuery runs q on every backend's default session and returns a merged
// handle.
func (co *Coordinator) StartQuery(q *query.Query) (engine.Handle, error) {
	co.mu.Lock()
	prepared := co.prepared
	co.mu.Unlock()
	if !prepared {
		return nil, engine.ErrNotPrepared
	}
	hs := make([]engine.Handle, len(co.backends))
	for i, be := range co.backends {
		h, err := be.StartQuery(q)
		if err != nil {
			for _, prev := range hs[:i] {
				prev.Cancel()
			}
			return nil, fmt.Errorf("shard: start on shard %d: %w", i, err)
		}
		hs[i] = h
	}
	return newCoordHandle(co, q, hs), nil
}

// LinkVizs forwards the link hint to every backend.
func (co *Coordinator) LinkVizs(from, to string) {
	for _, be := range co.backends {
		be.LinkVizs(from, to)
	}
}

// DeleteViz forwards the discard to every backend.
func (co *Coordinator) DeleteViz(name string) {
	for _, be := range co.backends {
		be.DeleteViz(name)
	}
}

// WorkflowStart forwards to every backend.
func (co *Coordinator) WorkflowStart() {
	for _, be := range co.backends {
		be.WorkflowStart()
	}
}

// WorkflowEnd forwards to every backend.
func (co *Coordinator) WorkflowEnd() {
	for _, be := range co.backends {
		be.WorkflowEnd()
	}
}

// ShedSpeculation implements engine.Shedder by summing over backends that
// have the capability.
func (co *Coordinator) ShedSpeculation() int {
	n := 0
	for _, be := range co.backends {
		if s, ok := be.(engine.Shedder); ok {
			n += s.ShedSpeculation()
		}
	}
	return n
}

// ActiveScanConsumers implements engine.ScanObserver by summing over
// backends that have the capability.
func (co *Coordinator) ActiveScanConsumers() int {
	n := 0
	for _, be := range co.backends {
		if s, ok := be.(engine.ScanObserver); ok {
			n += s.ActiveScanConsumers()
		}
	}
	return n
}

// coordSession fans session calls across one sub-session per shard.
type coordSession struct {
	co   *Coordinator
	subs []engine.Session
}

func (s *coordSession) StartQuery(q *query.Query) (engine.Handle, error) {
	s.co.mu.Lock()
	prepared := s.co.prepared
	s.co.mu.Unlock()
	if !prepared {
		return nil, engine.ErrNotPrepared
	}
	hs := make([]engine.Handle, len(s.subs))
	for i, sub := range s.subs {
		h, err := sub.StartQuery(q)
		if err != nil {
			for _, prev := range hs[:i] {
				prev.Cancel()
			}
			return nil, fmt.Errorf("shard: start on shard %d: %w", i, err)
		}
		hs[i] = h
	}
	return newCoordHandle(s.co, q, hs), nil
}

func (s *coordSession) LinkVizs(from, to string) {
	for _, sub := range s.subs {
		sub.LinkVizs(from, to)
	}
}

func (s *coordSession) DeleteViz(name string) {
	for _, sub := range s.subs {
		sub.DeleteViz(name)
	}
}

func (s *coordSession) WorkflowStart() {
	for _, sub := range s.subs {
		sub.WorkflowStart()
	}
}

func (s *coordSession) WorkflowEnd() {
	for _, sub := range s.subs {
		sub.WorkflowEnd()
	}
}

func (s *coordSession) Close() {
	for _, sub := range s.subs {
		sub.Close()
	}
}

// coordHandle merges one query's per-shard handles. Snapshot buffers one
// Partial per shard (arrival order irrelevant), folds them in shard-ID
// order and renders once; it returns nil until EVERY shard has produced a
// fragment — a merged estimate over a subset of shards would be a biased
// sample of the population, not a progressive answer. An unreachable shard
// therefore shows up as "no snapshot yet" (and, at Done, as a nil final
// result), never as a silently-partial one.
type coordHandle struct {
	co     *Coordinator
	aggs   []query.Aggregate
	shards []engine.Handle
	done   chan struct{}
}

func newCoordHandle(co *Coordinator, q *query.Query, hs []engine.Handle) *coordHandle {
	h := &coordHandle{co: co, aggs: q.Aggs, shards: hs, done: make(chan struct{})}
	go func() {
		for _, sh := range hs {
			<-sh.Done()
		}
		close(h.done)
	}()
	return h
}

// Snapshot implements engine.Handle.
func (h *coordHandle) Snapshot() *query.Result {
	parts := make([]*engine.Partial, len(h.shards))
	for i, sh := range h.shards {
		ps, ok := sh.(engine.PartialSnapshotter)
		if !ok {
			return nil
		}
		p := ps.PartialSnapshot()
		if p == nil {
			return nil
		}
		parts[i] = p
	}
	fold := engine.NewPartialFold(h.aggs)
	h.co.mu.Lock()
	z := h.co.z
	minWM := int64(math.MaxInt64)
	for i, p := range parts {
		fold.Add(p)
		if g := h.co.translate(i, p.Watermark); g < minWM {
			minWM = g
		}
	}
	h.co.mu.Unlock()
	res := fold.Render(z)
	if res != nil {
		res.Watermark = minWM
	}
	return res
}

// Done implements engine.Handle: closed when every shard handle is done.
func (h *coordHandle) Done() <-chan struct{} { return h.done }

// Cancel implements engine.Handle: cancels every shard.
func (h *coordHandle) Cancel() {
	for _, sh := range h.shards {
		sh.Cancel()
	}
}
