package shard

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"idebench/internal/dataset"
	"idebench/internal/engine"
	"idebench/internal/ingest"
	"idebench/internal/query"
	"idebench/internal/stats"
)

// Pinger is the optional liveness capability of a coordinator backend: a
// cheap out-of-band health probe (for *server.Remote it is an HTTP GET of
// the shard's /healthz). Backends without it are assumed alive until a
// query or ingest apply against them fails.
type Pinger interface {
	Ping() error
}

// wmStep records that partition-local watermark Local corresponds to global
// data version Global: after the batch that produced this step is fully
// absorbed by a partition's replicas, a query answering at Local covers
// everything up to Global rows of the unified timeline. The JSON shape is
// the journal's persisted form — see journal.go.
type wmStep struct {
	Local  int64 `json:"local"`
	Global int64 `json:"global"`
}

// Options tunes a replicated coordinator.
type Options struct {
	// MinCoverage is the population-fraction floor for degraded answers:
	// when the reachable partitions own less than this fraction of the
	// global fact rows, the coordinator refuses (nil snapshots) instead of
	// serving the degraded merge. 0 serves any non-empty coverage; 1
	// restores the strict all-partitions-or-nothing behavior.
	MinCoverage float64
	// ApplyTimeout bounds the post-route wait for a remote replica to
	// confirm absorption; zero means 15s.
	ApplyTimeout time.Duration
	// Journal, when set, persists the control plane: version-log steps and
	// topology changes are journaled before they are acknowledged, and a
	// standby coordinator can Restore from the journal's reduction. nil
	// keeps the in-memory-only behavior.
	Journal Journal
}

// replica is one backend serving one hash partition. Health and sync flags
// have their own lock so query handles and the health loop can flip them
// without touching the coordinator's routing lock.
type replica struct {
	be   engine.Engine
	caps engine.Capabilities
	name string
	// addr is the replica's dialable address, journaled with the topology
	// so a recovering coordinator can re-attach it; "" for in-process
	// backends.
	addr string
	// matDB is the database in-process appends are materialized against:
	// the partition database the replica was prepared from, or the
	// transferred view for a rebalanced-in replica (whose dictionaries are
	// its own). nil for pure wire sinks.
	matDB *dataset.Database

	mu      sync.Mutex
	healthy bool
	synced  bool
	// quarantined marks confirmed content divergence: the replica is
	// excluded from query fan-out AND ingest (worse than unsynced — its
	// data is wrong, not stale) until it is removed and readmitted through
	// the rebalance path with freshly prepared state.
	quarantined bool
}

func newReplica(be engine.Engine, name string, matDB *dataset.Database) *replica {
	return &replica{
		be: be, caps: engine.CapabilitiesOf(be), name: name, matDB: matDB,
		healthy: true, synced: true,
	}
}

func (r *replica) state() (healthy, synced bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.healthy, r.synced
}

func (r *replica) setHealthy(h bool) {
	r.mu.Lock()
	r.healthy = h
	r.mu.Unlock()
}

func (r *replica) markUnsynced() {
	r.mu.Lock()
	r.synced = false
	r.mu.Unlock()
}

// unreachable reports whether the replica's backend is confirmed gone, as
// opposed to alive and deliberately ending queries. Backends without a
// Pinger cannot be probed and are presumed reachable.
func (r *replica) unreachable() bool {
	p, ok := r.be.(Pinger)
	return ok && p.Ping() != nil
}

func (r *replica) setSynced(s bool) {
	r.mu.Lock()
	r.synced = s
	r.mu.Unlock()
}

func (r *replica) isQuarantined() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.quarantined
}

// setQuarantined flags the replica divergent (also dropping its sync flag)
// and reports whether the flag actually flipped.
func (r *replica) setQuarantined() (flipped bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.quarantined {
		return false
	}
	r.quarantined = true
	r.synced = false
	return true
}

// watermark reads the replica's confirmed local watermark; base is the
// fallback for backends without the capability (a static engine never moves
// past Prepare).
func (r *replica) watermark(base int64) int64 {
	if r.caps.Watermarker != nil {
		return r.caps.Watermarker.Watermark()
	}
	return base
}

// Coordinator fans queries out over hash partitions, each served by a set
// of replicas, and merges their raw accumulator fragments into one
// progressive result. It implements engine.Engine (so the serving layer and
// the driver use it unchanged), engine.Appender and ingest.Sink (routed
// live ingest, applied to every in-sync replica), engine.ShardObserver
// (per-partition watermark observability) and engine.TopologyObserver
// (replica health for /healthz).
//
// Availability semantics: a query fans out to one replica per partition and
// fails over to the next live replica when its current one dies mid-stream.
// When a whole partition is unreachable the merged snapshot is served
// anyway, annotated with a query.Coverage block naming exactly which
// fraction of the population answered — degraded, never silently biased as
// full, and refused entirely below Options.MinCoverage.
//
// Partition order is fixed at construction and every merge folds fragments
// in that order — see the package comment for why the fixed order is
// load-bearing. Replica order within a partition is the failover
// preference order.
type Coordinator struct {
	opts Options

	mu       sync.Mutex
	sets     [][]*replica // partition -> replica set; mutable via rebalance
	prepared bool
	partDBs  []*dataset.Database // shard-local dbs for Materialize and rebalance targets
	steps    [][]wmStep          // per partition, ascending in both coordinates
	global   int64               // global data version: base rows + all routed batch rows
	z        float64
	prepOpts engine.Options
	capture  [][]*ingest.Batch // per partition: non-nil while a rebalance captures the ingest tail

	aeChecks     atomic.Int64
	aeMismatches atomic.Int64
	aeErrors     atomic.Int64
	aeRound      atomic.Int64

	// applySeq / applyDone count ApplyBatch entries and exits; equality
	// means no batch is in flight, which is what lets the health loop's
	// divergence audit tell phantom rows from a watermark read racing a
	// legitimate apply.
	applySeq  atomic.Int64
	applyDone atomic.Int64
}

// NewCoordinator wraps one backend per partition (no replication): the
// PR 8 topology, kept as the simple constructor. The slice order assigns
// partition IDs: backends[i] serves partition i, forever.
func NewCoordinator(backends ...engine.Engine) (*Coordinator, error) {
	sets := make([][]engine.Engine, len(backends))
	for i, be := range backends {
		sets[i] = []engine.Engine{be}
	}
	return NewReplicated(Options{}, sets...)
}

// NewReplicated wraps one replica set per partition. replicaSets[i] lists
// the backends serving partition i in failover-preference order; every
// partition needs at least one. Replicas of a partition must be prepared
// identically (same dataset, same hash, same fan-out) — partials are
// deterministic, so the anti-entropy check can hold them to that bitwise.
func NewReplicated(opts Options, replicaSets ...[]engine.Engine) (*Coordinator, error) {
	specs := make([][]ReplicaSpec, len(replicaSets))
	for i, set := range replicaSets {
		for _, be := range set {
			specs[i] = append(specs[i], ReplicaSpec{Engine: be})
		}
	}
	return NewReplicatedSpecs(opts, specs...)
}

// ReplicaSpec names one replica backend and, for remote backends, the
// address a recovering coordinator would re-dial it at.
type ReplicaSpec struct {
	Engine engine.Engine
	// Addr is journaled with the topology; empty for in-process backends.
	Addr string
	// Name overrides the derived replica name. A recovering coordinator
	// passes the journaled name so the restored topology is identical to
	// the persisted one; empty derives replicaName as usual.
	Name string
}

// NewReplicatedSpecs is NewReplicated with per-replica metadata (addresses
// and recovered names) for journaled topologies.
func NewReplicatedSpecs(opts Options, specs ...[]ReplicaSpec) (*Coordinator, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("shard: coordinator needs at least one partition")
	}
	if opts.MinCoverage < 0 || opts.MinCoverage > 1 {
		return nil, fmt.Errorf("shard: min coverage %v outside [0,1]", opts.MinCoverage)
	}
	co := &Coordinator{opts: opts, sets: make([][]*replica, len(specs))}
	for i, set := range specs {
		if len(set) == 0 {
			return nil, fmt.Errorf("shard: partition %d has no replicas", i)
		}
		for j, spec := range set {
			name := spec.Name
			if name == "" {
				name = replicaName(spec.Engine, i, j)
			}
			r := newReplica(spec.Engine, name, nil)
			r.addr = spec.Addr
			co.sets[i] = append(co.sets[i], r)
		}
	}
	return co, nil
}

// replicaName labels a replica for topology reporting: the backend's
// engine name plus its partition/ordinal coordinates.
func replicaName(be engine.Engine, part, ordinal int) string {
	return fmt.Sprintf("p%d/r%d/%s", part, ordinal, be.Name())
}

// Shards returns the number of hash partitions.
func (co *Coordinator) Shards() int {
	co.mu.Lock()
	defer co.mu.Unlock()
	return len(co.sets)
}

// Replicas returns the current replica count of one partition.
func (co *Coordinator) Replicas(part int) int {
	co.mu.Lock()
	defer co.mu.Unlock()
	if part < 0 || part >= len(co.sets) {
		return 0
	}
	return len(co.sets[part])
}

// replicaSet snapshots one partition's replica slice under the lock.
func (co *Coordinator) replicaSet(part int) []*replica {
	co.mu.Lock()
	defer co.mu.Unlock()
	return append([]*replica(nil), co.sets[part]...)
}

// Name identifies the coordinator in reports: the backend engine name
// prefixed with the fan-out, e.g. "shard3/progressive", or
// "shard2x2/progressive" for a replicated tier (max replicas per
// partition).
func (co *Coordinator) Name() string {
	co.mu.Lock()
	defer co.mu.Unlock()
	maxR := 1
	for _, set := range co.sets {
		if len(set) > maxR {
			maxR = len(set)
		}
	}
	inner := co.sets[0][0].be.Name()
	if maxR == 1 {
		return fmt.Sprintf("shard%d/%s", len(co.sets), inner)
	}
	return fmt.Sprintf("shard%dx%d/%s", len(co.sets), maxR, inner)
}

// Prepare partitions db across the partitions and prepares every replica
// with its partition. For a *server.Remote backend, Prepare is the
// client-side sanity check that the shard process serves exactly the
// partition this coordinator computed (same dataset, same hash, same
// fan-out).
func (co *Coordinator) Prepare(db *dataset.Database, opts engine.Options) error {
	opts = opts.Normalize()
	z, err := stats.ZScore(opts.Confidence)
	if err != nil {
		return fmt.Errorf("shard: %w", err)
	}
	co.mu.Lock()
	nParts := len(co.sets)
	sets := make([][]*replica, nParts)
	for i := range co.sets {
		sets[i] = append([]*replica(nil), co.sets[i]...)
	}
	co.mu.Unlock()

	parts, err := Partition(db, nParts)
	if err != nil {
		return err
	}
	for i, set := range sets {
		for _, r := range set {
			if err := r.be.Prepare(parts[i], opts); err != nil {
				return fmt.Errorf("shard: prepare %s: %w", r.name, err)
			}
			r.matDB = parts[i]
		}
	}
	co.mu.Lock()
	co.partDBs = parts
	co.global = int64(db.Fact.NumRows())
	co.steps = make([][]wmStep, nParts)
	co.capture = make([][]*ingest.Batch, nParts)
	for i := range co.steps {
		// The base step: a partition answering at its full base size covers
		// the whole prepared dataset.
		co.steps[i] = []wmStep{{Local: int64(parts[i].Fact.NumRows()), Global: co.global}}
	}
	co.z = z
	co.prepOpts = opts
	co.prepared = true
	co.mu.Unlock()
	// The prepared topology is the journal's base snapshot; a coordinator
	// that cannot persist its control plane must not start serving it.
	if err := co.logState(); err != nil {
		return fmt.Errorf("shard: journal prepared state: %w", err)
	}
	return nil
}

// translate floors partition i's local watermark w onto the global row
// axis: the largest recorded global version whose local step is <= w. A
// local watermark below the base partition size (mid-Prepare, or a replica
// that restarted from an older checkpoint) translates to 0 — honest
// "staler than any version I know". Callers hold co.mu.
func (co *Coordinator) translate(i int, w int64) int64 {
	steps := co.steps[i]
	g := int64(0)
	for _, s := range steps {
		if s.Local <= w {
			g = s.Global
		} else {
			break
		}
	}
	return g
}

// partitionWatermark reads partition i's best confirmed local watermark:
// the max over its replicas (absorption is a data property, independent of
// which replicas are currently reachable). Quarantined replicas are
// excluded — rows a replica was never routed are not absorption.
func (co *Coordinator) partitionWatermark(i int) int64 {
	co.mu.Lock()
	var base int64
	if len(co.steps) > i && len(co.steps[i]) > 0 {
		base = co.steps[i][0].Local
	}
	set := append([]*replica(nil), co.sets[i]...)
	co.mu.Unlock()
	best := int64(0)
	for _, r := range set {
		if r.isQuarantined() {
			continue
		}
		if w := r.watermark(base); w > best {
			best = w
		}
	}
	return best
}

// Watermark implements engine.Watermarker on the global axis: the minimum
// over all partitions' translated watermarks. A merged snapshot never
// claims a Watermark above this.
func (co *Coordinator) Watermark() int64 {
	min := int64(math.MaxInt64)
	for i := 0; i < co.Shards(); i++ {
		w := co.partitionWatermark(i)
		co.mu.Lock()
		g := co.translate(i, w)
		co.mu.Unlock()
		if g < min {
			min = g
		}
	}
	if min == math.MaxInt64 {
		return 0
	}
	return min
}

// ShardWatermarks implements engine.ShardObserver: each partition's
// confirmed watermark translated onto the global axis, indexed by
// partition ID.
func (co *Coordinator) ShardWatermarks() []int64 {
	n := co.Shards()
	out := make([]int64, n)
	for i := 0; i < n; i++ {
		w := co.partitionWatermark(i)
		co.mu.Lock()
		out[i] = co.translate(i, w)
		co.mu.Unlock()
	}
	return out
}

// Topology implements engine.TopologyObserver.
func (co *Coordinator) Topology() engine.Topology {
	co.mu.Lock()
	sets := make([][]*replica, len(co.sets))
	bases := make([]int64, len(co.sets))
	for i := range co.sets {
		sets[i] = append([]*replica(nil), co.sets[i]...)
		if len(co.steps) > i && len(co.steps[i]) > 0 {
			bases[i] = co.steps[i][0].Local
		}
	}
	co.mu.Unlock()

	topo := engine.Topology{
		Partitions:            make([]engine.PartitionTopology, len(sets)),
		AntiEntropyChecks:     co.aeChecks.Load(),
		AntiEntropyMismatches: co.aeMismatches.Load(),
		AntiEntropyErrors:     co.aeErrors.Load(),
		MinCoverage:           co.opts.MinCoverage,
	}
	for i, set := range sets {
		pt := engine.PartitionTopology{Replicas: make([]engine.ReplicaTopology, 0, len(set))}
		for _, r := range set {
			healthy, synced := r.state()
			w := r.watermark(bases[i])
			co.mu.Lock()
			g := co.translate(i, w)
			co.mu.Unlock()
			pt.Replicas = append(pt.Replicas, engine.ReplicaTopology{
				Name: r.name, Healthy: healthy, Synced: synced,
				Quarantined: r.isQuarantined(), Addr: r.addr, Watermark: g,
			})
		}
		topo.Partitions[i] = pt
	}
	return topo
}

// Append implements engine.Appender: it reconstructs the wire batch from
// the materialized rows (the inverse the ingest codec defines) and routes
// it. This is what lets an ingest.EngineSink or the durable WAL replay
// treat a coordinator like any other appending engine.
func (co *Coordinator) Append(rows *dataset.Table) error {
	return co.ApplyBatch(ingest.FromTable(rows, 0, rows.NumRows()), nil)
}

// ApplyBatch implements ingest.Sink: route the batch's rows to their home
// partitions, apply every non-empty sub-batch to each in-sync live replica,
// wait until each confirms absorption, then publish the new global version.
// A replica that fails (or is skipped because it is down) is marked
// unsynced — it keeps serving at its honestly stale watermark and only
// rejoins the ingest path once its watermark proves it caught back up (a
// durable restart) or a rebalance hands it the current state. The batch as
// a whole fails only when some partition with routed rows has no live
// replica left to absorb them.
func (co *Coordinator) ApplyBatch(b *ingest.Batch, _ *dataset.Table) error {
	n := co.Shards()
	subs, err := RouteBatch(b, n)
	if err != nil {
		return err
	}

	co.mu.Lock()
	if !co.prepared {
		co.mu.Unlock()
		return engine.ErrNotPrepared
	}
	co.applySeq.Add(1)
	defer co.applyDone.Add(1)
	// Reserve the new steps under the lock: concurrent ApplyBatch calls are
	// the caller's bug, but a racing reader must still see consistent steps.
	targets := make([]int64, n)
	newGlobal := co.global + int64(len(b.Rows))
	sets := make([][]*replica, n)
	for i := range co.sets {
		prev := co.steps[i][len(co.steps[i])-1].Local
		targets[i] = prev + int64(len(subs[i].Rows))
		sets[i] = append([]*replica(nil), co.sets[i]...)
		// A rebalance in flight captures the tail it must replay before the
		// routing flip; the capturing goroutine owns batches appended here.
		if co.capture[i] != nil && len(subs[i].Rows) > 0 {
			co.capture[i] = append(co.capture[i], subs[i])
		}
	}
	timeout := co.opts.ApplyTimeout
	co.mu.Unlock()
	if timeout <= 0 {
		timeout = 15 * time.Second
	}

	for i, set := range sets {
		if len(subs[i].Rows) == 0 {
			continue
		}
		applied := false
		var firstErr error
		for _, r := range set {
			if r.isQuarantined() {
				// Divergent content: never feed it more data. Readmission
				// goes through remove + re-prepare + the rebalance path.
				continue
			}
			healthy, synced := r.state()
			if !healthy || !synced {
				// Down or already behind: this replica misses the batch.
				r.markUnsynced()
				continue
			}
			if err := co.applyToReplica(r, subs[i], targets[i], timeout); err != nil {
				r.setHealthy(false)
				r.markUnsynced()
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			applied = true
		}
		if !applied {
			if firstErr == nil {
				firstErr = fmt.Errorf("no live replica")
			}
			return fmt.Errorf("shard: partition %d cannot absorb ingest: %w", i, firstErr)
		}
	}

	// Journal the step before publishing or acking it: a crash after the
	// journal write recovers to a state that includes this batch (the
	// replicas hold it), a crash before recovers to one that doesn't (the
	// batch was never acked). A journal failure refuses the ack outright.
	if err := co.logStep(targets, newGlobal); err != nil {
		return fmt.Errorf("shard: journal version step: %w", err)
	}

	co.mu.Lock()
	co.global = newGlobal
	for i := range co.steps {
		co.steps[i] = append(co.steps[i], wmStep{Local: targets[i], Global: newGlobal})
	}
	co.mu.Unlock()
	return nil
}

// applyToReplica ships one routed sub-batch to one replica and waits for
// its confirmed absorption.
func (co *Coordinator) applyToReplica(r *replica, sub *ingest.Batch, target int64, timeout time.Duration) error {
	if sink, ok := r.be.(ingest.Sink); ok {
		// Remote replica: ship the wire batch; the shard server materializes
		// and validates against its own partition.
		if err := sink.ApplyBatch(sub, nil); err != nil {
			return fmt.Errorf("apply to %s: %w", r.name, err)
		}
		return co.waitWatermark(r, target, timeout)
	}
	if r.caps.Appender == nil {
		return fmt.Errorf("%s (%s) cannot absorb ingest", r.name, r.be.Name())
	}
	// In-process replica: materialize against the replica's own database so
	// dictionary interning and FK validation happen in its storage's terms.
	tbl, err := ingest.Materialize(r.matDB, sub)
	if err != nil {
		return fmt.Errorf("materialize for %s: %w", r.name, err)
	}
	if err := r.caps.Appender.Append(tbl); err != nil {
		return fmt.Errorf("append to %s: %w", r.name, err)
	}
	return nil
}

// waitWatermark polls one replica until its confirmed watermark reaches
// target. Remote watermarks advance via the server's post-apply ingest
// broadcast, so this is a short wait in practice; the timeout turns a dead
// replica into an error instead of a hang.
func (co *Coordinator) waitWatermark(r *replica, target int64, timeout time.Duration) error {
	if r.caps.Watermarker == nil {
		return nil
	}
	deadline := time.Now().Add(timeout)
	for r.caps.Watermarker.Watermark() < target {
		if time.Now().After(deadline) {
			return fmt.Errorf("%s watermark stuck at %d, want %d",
				r.name, r.caps.Watermarker.Watermark(), target)
		}
		time.Sleep(500 * time.Microsecond)
	}
	return nil
}

// OpenSession returns a session that fans every call out, creating one
// sub-session per replica on demand (a failover may route a query to a
// replica the session never touched before).
func (co *Coordinator) OpenSession() engine.Session {
	return &coordSession{co: co, subs: make(map[*replica]engine.Session)}
}

// StartQuery runs q via the backends' default sessions and returns a
// merged handle.
func (co *Coordinator) StartQuery(q *query.Query) (engine.Handle, error) {
	co.mu.Lock()
	prepared := co.prepared
	co.mu.Unlock()
	if !prepared {
		return nil, engine.ErrNotPrepared
	}
	h, err := newCoordHandle(co, q, func(r *replica) (engine.Handle, error) {
		return r.be.StartQuery(q)
	})
	if err != nil {
		return nil, err
	}
	return h, nil
}

// LinkVizs forwards the link hint to every replica.
func (co *Coordinator) LinkVizs(from, to string) {
	co.eachReplica(func(r *replica) { r.be.LinkVizs(from, to) })
}

// DeleteViz forwards the discard to every replica.
func (co *Coordinator) DeleteViz(name string) {
	co.eachReplica(func(r *replica) { r.be.DeleteViz(name) })
}

// WorkflowStart forwards to every replica.
func (co *Coordinator) WorkflowStart() {
	co.eachReplica(func(r *replica) { r.be.WorkflowStart() })
}

// WorkflowEnd forwards to every replica.
func (co *Coordinator) WorkflowEnd() {
	co.eachReplica(func(r *replica) { r.be.WorkflowEnd() })
}

func (co *Coordinator) eachReplica(f func(*replica)) {
	co.mu.Lock()
	var all []*replica
	for _, set := range co.sets {
		all = append(all, set...)
	}
	co.mu.Unlock()
	for _, r := range all {
		f(r)
	}
}

// ShedSpeculation implements engine.Shedder by summing over replicas that
// have the capability.
func (co *Coordinator) ShedSpeculation() int {
	n := 0
	co.eachReplica(func(r *replica) {
		if r.caps.Shedder != nil {
			n += r.caps.Shedder.ShedSpeculation()
		}
	})
	return n
}

// ActiveScanConsumers implements engine.ScanObserver by summing over
// replicas that have the capability.
func (co *Coordinator) ActiveScanConsumers() int {
	n := 0
	co.eachReplica(func(r *replica) {
		if r.caps.ScanObserver != nil {
			n += r.caps.ScanObserver.ActiveScanConsumers()
		}
	})
	return n
}

// coordSession fans session calls out with one lazily created sub-session
// per replica.
type coordSession struct {
	co *Coordinator

	mu   sync.Mutex
	subs map[*replica]engine.Session
}

// sessionOf returns the cached sub-session for r, creating it on first
// use.
func (s *coordSession) sessionOf(r *replica) engine.Session {
	s.mu.Lock()
	defer s.mu.Unlock()
	if sub, ok := s.subs[r]; ok {
		return sub
	}
	sub := r.be.OpenSession()
	s.subs[r] = sub
	return sub
}

// invalidate drops a sub-session whose connection died so the next
// failover attempt on that replica dials fresh.
func (s *coordSession) invalidate(r *replica, sub engine.Session) {
	s.mu.Lock()
	if s.subs[r] == sub {
		delete(s.subs, r)
	}
	s.mu.Unlock()
	sub.Close()
}

func (s *coordSession) StartQuery(q *query.Query) (engine.Handle, error) {
	s.co.mu.Lock()
	prepared := s.co.prepared
	s.co.mu.Unlock()
	if !prepared {
		return nil, engine.ErrNotPrepared
	}
	h, err := newCoordHandle(s.co, q, func(r *replica) (engine.Handle, error) {
		sub := s.sessionOf(r)
		sh, err := sub.StartQuery(q)
		if err != nil {
			// A session pinned to a dead connection stays dead; retry once on
			// a fresh one so a recovered replica is actually reachable.
			s.invalidate(r, sub)
			return s.sessionOf(r).StartQuery(q)
		}
		return sh, nil
	})
	if err != nil {
		return nil, err
	}
	return h, nil
}

func (s *coordSession) each(f func(engine.Session)) {
	s.mu.Lock()
	subs := make([]engine.Session, 0, len(s.subs))
	for _, sub := range s.subs {
		subs = append(subs, sub)
	}
	s.mu.Unlock()
	for _, sub := range subs {
		f(sub)
	}
}

func (s *coordSession) LinkVizs(from, to string) {
	s.each(func(sub engine.Session) { sub.LinkVizs(from, to) })
}

func (s *coordSession) DeleteViz(name string) {
	s.each(func(sub engine.Session) { sub.DeleteViz(name) })
}

func (s *coordSession) WorkflowStart() {
	s.each(func(sub engine.Session) { sub.WorkflowStart() })
}

func (s *coordSession) WorkflowEnd() {
	s.each(func(sub engine.Session) { sub.WorkflowEnd() })
}

func (s *coordSession) Close() {
	s.mu.Lock()
	subs := s.subs
	s.subs = make(map[*replica]engine.Session)
	s.mu.Unlock()
	for _, sub := range subs {
		sub.Close()
	}
}
