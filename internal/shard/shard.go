// Package shard implements the scatter-gather serving tier: a hash
// partitioner that splits the fact table across N shards, a router that
// splits live ingest batches the same way, and a Coordinator that
// implements engine.Engine by fanning queries out to the shards and
// merging their raw accumulator fragments (engine.Partial) back into one
// progressive result.
//
// # Topology
//
// Each shard is the ordinary prepared engine — typically the shared-scan
// progressive engine behind a serve process — holding one partition of the
// fact table plus the full (small) dimension tables. The coordinator sits
// in front, speaks engine.Engine to the driver/serving layer, and owns two
// responsibilities: deterministic merging and watermark alignment.
//
// # Deterministic merging
//
// Shards expose raw accumulator state, not rendered estimates, through the
// engine.PartialSnapshotter capability. The coordinator buffers one Partial
// per shard (whatever order they arrive in), then folds them in fixed
// shard-ID order and renders once with the same float operations a local
// parallel scan uses (engine.renderScaled). Fixed fold order is what keeps
// float accumulation bitwise-deterministic across runs: addition is not
// associative in IEEE-754, so "merge in arrival order" would make results
// depend on network timing.
//
// # Routing and the min-watermark rule
//
// Ingest batches are split by the same row hash that built the partitions,
// so a row's home shard is a pure function of its values. Shard watermarks
// live on per-shard row axes; the coordinator records, for every globally
// applied batch, the (local watermark → global version) step of each shard
// and translates by flooring. A merged snapshot's Result.Watermark is the
// MINIMUM over its constituent shards' translated watermarks: the merged
// answer is only as fresh as its stalest fragment.
//
// # Elasticity
//
// Each partition may be served by a replica set rather than a single
// engine (NewReplicated). Replicas of a partition hold identical data, so
// any healthy, synced replica can answer for it; the coordinator
// health-checks replicas (StartHealthLoop), fails a mid-stream query over
// to a sibling replica without surfacing an error, and keeps ingesting to
// the survivors while a dead replica is down. A replica that rejoins is
// only promoted back to query duty once its watermark proves it has
// re-applied everything it missed.
//
// When every replica of a partition is down, queries do not fail and do
// not silently pretend to be complete: the merged result carries a
// query.Coverage block naming how many partitions answered and what
// fraction of the population they hold, and Options.MinCoverage lets an
// operator refuse answers below a floor instead. AddReplica/RemoveReplica
// and Rebalance grow, shrink and re-split the tier at runtime; handoff
// reuses the durable-checkpoint transfer format plus a capture-window tail
// replay so the moved partition attaches at a version barrier with no row
// loss. StartAntiEntropyLoop cross-checks replica sets bitwise in the
// background and reports divergence before users can observe it.
package shard

import (
	"fmt"
	"math"

	"idebench/internal/dataset"
	"idebench/internal/ingest"
)

// FNV-1a 64-bit constants.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Per-cell kind tags keep string and numeric bytes from colliding and
// delimit variable-length string cells. They must match between table-row
// hashing (Partition) and ingest-row hashing (RouteBatch) or a row would
// change shards between bulk load and live ingest.
const (
	tagStr = 0x01
	tagNum = 0x02
)

func hashByte(h uint64, b byte) uint64 {
	h ^= uint64(b)
	h *= fnvPrime64
	return h
}

func hashString(h uint64, s string) uint64 {
	h = hashByte(h, tagStr)
	for i := 0; i < len(s); i++ {
		h = hashByte(h, s[i])
	}
	// Terminator so "ab"+"c" and "a"+"bc" in adjacent cells differ.
	return hashByte(h, 0x00)
}

func hashNum(h uint64, f float64) uint64 {
	h = hashByte(h, tagNum)
	bits := math.Float64bits(f)
	for k := 0; k < 8; k++ {
		h = hashByte(h, byte(bits>>(8*k)))
	}
	return h
}

// rowHashTable hashes one physical row of a materialized table. Nominal
// cells hash their dictionary STRING, never the code: codes are an artifact
// of interning order and would differ between a shard's private dictionary
// and the coordinator's.
func rowHashTable(t *dataset.Table, r int) uint64 {
	h := uint64(fnvOffset64)
	for _, col := range t.Columns {
		if col.Field.Kind == dataset.Nominal {
			h = hashString(h, col.Dict.Value(col.Codes[r]))
		} else {
			h = hashNum(h, col.Nums[r])
		}
	}
	return h
}

// rowHashIngest hashes one wire-format ingest row. The ingest codec carries
// nominal cells as bare strings and quantitative cells as numbers, so the
// byte stream fed to FNV is identical to rowHashTable's for the same row.
func rowHashIngest(row ingest.Row) uint64 {
	h := uint64(fnvOffset64)
	for _, v := range row {
		if v.IsStr {
			h = hashString(h, v.Str)
		} else {
			h = hashNum(h, v.Num)
		}
	}
	return h
}

// HomeShard returns the shard index for one ingest row under an n-way
// partitioning.
func HomeShard(row ingest.Row, n int) int {
	return int(rowHashIngest(row) % uint64(n))
}

// Partition splits db's fact table into n hash partitions. Each returned
// database holds one partition as its fact table and shares db's dimension
// tables (dimensions are small and every shard needs all of them to resolve
// foreign keys). Nominal partition columns share the parent dictionaries,
// so codes remain comparable across shards prepared from the same build —
// but the merge path never relies on that: routing and merging go through
// values, not codes.
func Partition(db *dataset.Database, n int) ([]*dataset.Database, error) {
	if n <= 0 {
		return nil, fmt.Errorf("shard: partition count %d, want >= 1", n)
	}
	fact := db.Fact
	rows := make([][]uint32, n)
	for r := 0; r < fact.NumRows(); r++ {
		i := int(rowHashTable(fact, r) % uint64(n))
		rows[i] = append(rows[i], uint32(r))
	}
	out := make([]*dataset.Database, n)
	for i := range out {
		t, err := dataset.SelectRows(fact, rows[i])
		if err != nil {
			return nil, fmt.Errorf("shard: partition %d/%d: %w", i, n, err)
		}
		out[i] = &dataset.Database{Fact: t, Dimensions: db.Dimensions}
	}
	return out, nil
}

// RouteBatch splits one ingest batch into n per-shard sub-batches by row
// hash. Sub-batches keep the parent's table name and sequence number; a
// shard whose slice of the batch is empty gets a zero-row sub-batch (never
// nil) so callers can still advance that shard's watermark bookkeeping.
func RouteBatch(b *ingest.Batch, n int) ([]*ingest.Batch, error) {
	if n <= 0 {
		return nil, fmt.Errorf("shard: route across %d shards, want >= 1", n)
	}
	out := make([]*ingest.Batch, n)
	for i := range out {
		out[i] = &ingest.Batch{Table: b.Table, Seq: b.Seq}
	}
	for _, row := range b.Rows {
		i := HomeShard(row, n)
		out[i].Rows = append(out[i].Rows, row)
	}
	return out, nil
}
