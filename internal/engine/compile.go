package engine

import (
	"fmt"
	"math"

	"idebench/internal/dataset"
	"idebench/internal/query"
)

// Compiled is a query plan bound to a concrete database. It carries two
// equivalent forms of every operator: vectorized kernels (vectorize.go) that
// evaluate whole batches against raw column slices — the form the scan hot
// path uses — and per-row closures kept as the scalar reference
// implementation (property tests assert the two are bitwise identical).
// Dimension attributes resolve through the fact table's FK column (a
// positional join — the star-schema FK holds the dimension row index).
//
// A Compiled plan is immutable and safe for concurrent use by many scan
// goroutines.
type Compiled struct {
	Query *query.Query
	// NumRows is the fact-table row count.
	NumRows int
	// binGet[d] maps a physical row to the d-th bin key component.
	binGet []func(row int) int64
	// aggGet[a] reads the a-th aggregate's input (nil for COUNT).
	aggGet []func(row int) float64
	// filter reports whether a physical row passes all predicates
	// (nil means match-all).
	filter func(row int) bool
	// BinDicts holds the dictionary for nominal binning dimensions (nil for
	// quantitative), used to render bin labels in reports.
	BinDicts []*dataset.Dict

	// Vectorized form: one kernel per bin dimension, one gather kernel per
	// non-COUNT aggregate (nil for COUNT slots), one predicate kernel per
	// filter conjunct (empty means match-all).
	binKern  []binKernel
	aggKern  []aggKernel
	predKern []predKernel
	// aggOps lists the non-COUNT accumulation steps (COUNT needs only the
	// per-bin row count, which accumulate maintains unconditionally).
	aggOps []aggOp

	// Dense group-by fast path: when every bin dimension has a known,
	// small domain (nominal dictionary cardinality, or quantitative bounds
	// from Column.MinMax), bin keys map to slots of a flat array of size
	// denseSizeA*denseSizeB instead of hashing into the Groups map.
	denseOK            bool
	denseLoA, denseLoB int64
	denseSizeA         int64
	denseSizeB         int64 // 1 for 1D plans
}

// aggOp is one pre-decoded accumulation step, replacing the per-row switch
// on the aggregate function name of the scalar path.
type aggOp struct {
	code uint8 // aggOp* opcode
	slot int   // aggregate index (accumulator and gather-buffer slot)
}

const (
	aggOpWelford = uint8(iota) // Sum and Avg share the Welford accumulator
	aggOpMin
	aggOpMax
)

// denseMaxSlots caps the dense array size (slots are one pointer each, so
// the worst case is 64 KiB per GroupState — small enough for the
// progressive engine's dozens of speculative states).
const denseMaxSlots = 1 << 13

// Compile validates q against db and builds the plan.
func Compile(db *dataset.Database, q *query.Query) (*Compiled, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if db.Fact.Name != q.Table {
		return nil, fmt.Errorf("%w: %q (prepared: %q)", ErrUnknownTable, q.Table, db.Fact.Name)
	}
	if int64(db.Fact.NumRows()) > math.MaxUint32 {
		// Selection vectors (and the engines' permutations) hold row
		// indices as uint32; refuse rather than silently wrap.
		return nil, fmt.Errorf("engine: table %q has %d rows, max supported is %d",
			q.Table, db.Fact.NumRows(), uint32(math.MaxUint32))
	}
	c := &Compiled{Query: q, NumRows: db.Fact.NumRows()}

	var domains []binDomain
	for _, b := range q.Bins {
		getter, kern, dom, dict, err := binAccessor(db, b)
		if err != nil {
			return nil, err
		}
		c.binGet = append(c.binGet, getter)
		c.binKern = append(c.binKern, kern)
		domains = append(domains, dom)
		c.BinDicts = append(c.BinDicts, dict)
	}
	for i, a := range q.Aggs {
		if a.Func == query.Count && a.Field == "" {
			c.aggGet = append(c.aggGet, nil)
			c.aggKern = append(c.aggKern, nil)
			continue
		}
		getter, kern, err := numAccessor(db, a.Field)
		if err != nil {
			return nil, fmt.Errorf("engine: aggregate %s: %w", a, err)
		}
		c.aggGet = append(c.aggGet, getter)
		c.aggKern = append(c.aggKern, kern)
		switch a.Func {
		case query.Min:
			c.aggOps = append(c.aggOps, aggOp{code: aggOpMin, slot: i})
		case query.Max:
			c.aggOps = append(c.aggOps, aggOp{code: aggOpMax, slot: i})
		case query.Sum, query.Avg:
			c.aggOps = append(c.aggOps, aggOp{code: aggOpWelford, slot: i})
		}
		// COUNT(field) gathers nothing: the row count is all it needs.
	}
	f, preds, err := compileFilter(db, q.Filter)
	if err != nil {
		return nil, err
	}
	c.filter = f
	c.predKern = preds
	c.planDense(domains)
	return c, nil
}

// planDense activates the dense group-by path when the total key domain is
// known and fits denseMaxSlots.
func (c *Compiled) planDense(domains []binDomain) {
	for _, d := range domains {
		if !d.known || d.size <= 0 {
			return
		}
	}
	slots := domains[0].size
	c.denseLoA, c.denseSizeA = domains[0].lo, domains[0].size
	c.denseLoB, c.denseSizeB = 0, 1
	if len(domains) > 1 {
		c.denseLoB, c.denseSizeB = domains[1].lo, domains[1].size
		if slots > denseMaxSlots/domains[1].size {
			return // product overflow or over budget
		}
		slots *= domains[1].size
	}
	if slots > denseMaxSlots {
		return
	}
	c.denseOK = true
}

// denseSlots returns the dense array size (0 when the path is inactive).
func (c *Compiled) denseSlots() int {
	if !c.denseOK {
		return 0
	}
	return int(c.denseSizeA * c.denseSizeB)
}

// denseSlot maps a bin key to its dense array slot; ok is false for keys
// outside the planned domain (possible only if column invariants are
// violated — the caller then falls back to the hash map).
func (c *Compiled) denseSlot(key query.BinKey) (int, bool) {
	a := key.A - c.denseLoA
	if uint64(a) >= uint64(c.denseSizeA) {
		return 0, false
	}
	b := key.B - c.denseLoB
	if uint64(b) >= uint64(c.denseSizeB) {
		return 0, false
	}
	return int(a*c.denseSizeB + b), true
}

// denseKey is the inverse of denseSlot.
func (c *Compiled) denseKey(slot int) query.BinKey {
	return query.BinKey{
		A: int64(slot)/c.denseSizeB + c.denseLoA,
		B: int64(slot)%c.denseSizeB + c.denseLoB,
	}
}

// disableDense deactivates the dense group-by path; benchmarks and property
// tests use it to exercise the hash-map path on plans that would qualify.
func (c *Compiled) disableDense() { c.denseOK = false }

// BinKey computes the bin key of a physical row.
func (c *Compiled) BinKey(row int) query.BinKey {
	k := query.BinKey{A: c.binGet[0](row)}
	if len(c.binGet) > 1 {
		k.B = c.binGet[1](row)
	}
	return k
}

// Matches reports whether a physical row passes the filter.
func (c *Compiled) Matches(row int) bool {
	if c.filter == nil {
		return true
	}
	return c.filter(row)
}

// AggInput reads the aggregate input values of a row into dst (one slot per
// aggregate; COUNT slots are left untouched). dst must have len == number of
// aggregates.
func (c *Compiled) AggInput(row int, dst []float64) {
	for i, g := range c.aggGet {
		if g != nil {
			dst[i] = g(row)
		}
	}
}

// NumAggs returns the number of aggregates in the plan.
func (c *Compiled) NumAggs() int { return len(c.aggGet) }

// binAccessor builds the per-row bin-key component reader for one binning,
// plus its vectorized kernel and key domain.
func binAccessor(db *dataset.Database, b query.Binning) (func(int) int64, binKernel, binDomain, *dataset.Dict, error) {
	col, _, fk, err := db.ResolveColumn(b.Field)
	if err != nil {
		return nil, nil, binDomain{}, nil, err
	}
	if col.Field.Kind != b.Kind {
		return nil, nil, binDomain{}, nil, fmt.Errorf("engine: binning on %q declares %v but column is %v",
			b.Field, b.Kind, col.Field.Kind)
	}
	kern, dom := newBinKernel(col, fk, binShape{width: b.Width, origin: b.Origin})
	switch {
	case b.Kind == dataset.Nominal && fk == nil:
		codes := col.Codes
		return func(row int) int64 { return int64(codes[row]) }, kern, dom, col.Dict, nil
	case b.Kind == dataset.Nominal:
		codes, fkNums := col.Codes, fk.Nums
		return func(row int) int64 { return int64(codes[int(fkNums[row])]) }, kern, dom, col.Dict, nil
	case fk == nil:
		nums, width, origin := col.Nums, b.Width, b.Origin
		return func(row int) int64 { return binIdx(nums[row], width, origin) }, kern, dom, nil, nil
	default:
		nums, fkNums, width, origin := col.Nums, fk.Nums, b.Width, b.Origin
		return func(row int) int64 { return binIdx(nums[int(fkNums[row])], width, origin) }, kern, dom, nil, nil
	}
}

func binIdx(v, width, origin float64) int64 {
	d := (v - origin) / width
	i := int64(d)
	if d < 0 && float64(i) != d {
		i--
	}
	return i
}

// numAccessor builds a float64 reader for a quantitative attribute, plus
// its vectorized gather kernel.
func numAccessor(db *dataset.Database, field string) (func(int) float64, aggKernel, error) {
	col, _, fk, err := db.ResolveColumn(field)
	if err != nil {
		return nil, nil, err
	}
	if col.Field.Kind != dataset.Quantitative {
		return nil, nil, fmt.Errorf("engine: field %q is nominal, aggregates need quantitative input", field)
	}
	kern := newAggKernel(col, fk)
	nums := col.Nums
	if fk == nil {
		return func(row int) float64 { return nums[row] }, kern, nil
	}
	fkNums := fk.Nums
	return func(row int) float64 { return nums[int(fkNums[row])] }, kern, nil
}

// compileFilter builds the conjunction closure (nil for an empty filter)
// and the per-conjunct predicate kernels.
func compileFilter(db *dataset.Database, f query.Filter) (func(int) bool, []predKernel, error) {
	if f.IsEmpty() {
		return nil, nil, nil
	}
	preds := make([]func(int) bool, 0, len(f.Predicates))
	kerns := make([]predKernel, 0, len(f.Predicates))
	for _, p := range f.Predicates {
		fn, kern, err := compilePredicate(db, p)
		if err != nil {
			return nil, nil, err
		}
		preds = append(preds, fn)
		kerns = append(kerns, kern)
	}
	if len(preds) == 1 {
		return preds[0], kerns, nil
	}
	return func(row int) bool {
		for _, p := range preds {
			if !p(row) {
				return false
			}
		}
		return true
	}, kerns, nil
}

func compilePredicate(db *dataset.Database, p query.Predicate) (func(int) bool, predKernel, error) {
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	col, _, fk, err := db.ResolveColumn(p.Field)
	if err != nil {
		return nil, nil, err
	}
	switch p.Op {
	case query.OpIn:
		if col.Field.Kind != dataset.Nominal {
			return nil, nil, fmt.Errorf("engine: IN predicate on quantitative field %q", p.Field)
		}
		// Resolve values to codes; unknown values simply never match.
		want := make(map[uint32]struct{}, len(p.Values))
		for _, v := range p.Values {
			if code, ok := col.Dict.Lookup(v); ok {
				want[code] = struct{}{}
			}
		}
		kern := newInPredKernel(col, fk, want)
		codes := col.Codes
		if len(want) == 1 {
			var only uint32
			for c := range want {
				only = c
			}
			if fk == nil {
				return func(row int) bool { return codes[row] == only }, kern, nil
			}
			fkNums := fk.Nums
			return func(row int) bool { return codes[int(fkNums[row])] == only }, kern, nil
		}
		if fk == nil {
			return func(row int) bool { _, ok := want[codes[row]]; return ok }, kern, nil
		}
		fkNums := fk.Nums
		return func(row int) bool { _, ok := want[codes[int(fkNums[row])]]; return ok }, kern, nil

	case query.OpRange:
		if col.Field.Kind != dataset.Quantitative {
			return nil, nil, fmt.Errorf("engine: range predicate on nominal field %q", p.Field)
		}
		kern := newRangePredKernel(col, fk, p.Lo, p.Hi)
		nums, lo, hi := col.Nums, p.Lo, p.Hi
		if fk == nil {
			return func(row int) bool { v := nums[row]; return v >= lo && v < hi }, kern, nil
		}
		fkNums := fk.Nums
		return func(row int) bool { v := nums[int(fkNums[row])]; return v >= lo && v < hi }, kern, nil

	default:
		return nil, nil, fmt.Errorf("engine: unknown predicate op %q", p.Op)
	}
}
