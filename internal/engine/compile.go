package engine

import (
	"fmt"

	"idebench/internal/dataset"
	"idebench/internal/query"
)

// Compiled is a query plan bound to a concrete database: closures that read
// bin keys, aggregate inputs and filter verdicts straight from column
// storage. Dimension attributes resolve through the fact table's FK column
// (a positional join — the star-schema FK holds the dimension row index).
//
// A Compiled plan is immutable and safe for concurrent use by many scan
// goroutines.
type Compiled struct {
	Query *query.Query
	// NumRows is the fact-table row count.
	NumRows int
	// binGet[d] maps a physical row to the d-th bin key component.
	binGet []func(row int) int64
	// aggGet[a] reads the a-th aggregate's input (nil for COUNT).
	aggGet []func(row int) float64
	// filter reports whether a physical row passes all predicates
	// (nil means match-all).
	filter func(row int) bool
	// BinDicts holds the dictionary for nominal binning dimensions (nil for
	// quantitative), used to render bin labels in reports.
	BinDicts []*dataset.Dict
}

// Compile validates q against db and builds the plan.
func Compile(db *dataset.Database, q *query.Query) (*Compiled, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if db.Fact.Name != q.Table {
		return nil, fmt.Errorf("%w: %q (prepared: %q)", ErrUnknownTable, q.Table, db.Fact.Name)
	}
	c := &Compiled{Query: q, NumRows: db.Fact.NumRows()}

	for _, b := range q.Bins {
		getter, dict, err := binAccessor(db, b)
		if err != nil {
			return nil, err
		}
		c.binGet = append(c.binGet, getter)
		c.BinDicts = append(c.BinDicts, dict)
	}
	for _, a := range q.Aggs {
		if a.Func == query.Count && a.Field == "" {
			c.aggGet = append(c.aggGet, nil)
			continue
		}
		getter, err := numAccessor(db, a.Field)
		if err != nil {
			return nil, fmt.Errorf("engine: aggregate %s: %w", a, err)
		}
		c.aggGet = append(c.aggGet, getter)
	}
	f, err := compileFilter(db, q.Filter)
	if err != nil {
		return nil, err
	}
	c.filter = f
	return c, nil
}

// BinKey computes the bin key of a physical row.
func (c *Compiled) BinKey(row int) query.BinKey {
	k := query.BinKey{A: c.binGet[0](row)}
	if len(c.binGet) > 1 {
		k.B = c.binGet[1](row)
	}
	return k
}

// Matches reports whether a physical row passes the filter.
func (c *Compiled) Matches(row int) bool {
	if c.filter == nil {
		return true
	}
	return c.filter(row)
}

// AggInput reads the aggregate input values of a row into dst (one slot per
// aggregate; COUNT slots are left untouched). dst must have len == number of
// aggregates.
func (c *Compiled) AggInput(row int, dst []float64) {
	for i, g := range c.aggGet {
		if g != nil {
			dst[i] = g(row)
		}
	}
}

// NumAggs returns the number of aggregates in the plan.
func (c *Compiled) NumAggs() int { return len(c.aggGet) }

// binAccessor builds the per-row bin-key component reader for one binning.
func binAccessor(db *dataset.Database, b query.Binning) (func(int) int64, *dataset.Dict, error) {
	col, _, fk, err := db.ResolveColumn(b.Field)
	if err != nil {
		return nil, nil, err
	}
	if col.Field.Kind != b.Kind {
		return nil, nil, fmt.Errorf("engine: binning on %q declares %v but column is %v",
			b.Field, b.Kind, col.Field.Kind)
	}
	switch {
	case b.Kind == dataset.Nominal && fk == nil:
		codes := col.Codes
		return func(row int) int64 { return int64(codes[row]) }, col.Dict, nil
	case b.Kind == dataset.Nominal:
		codes, fkNums := col.Codes, fk.Nums
		return func(row int) int64 { return int64(codes[int(fkNums[row])]) }, col.Dict, nil
	case fk == nil:
		nums, width, origin := col.Nums, b.Width, b.Origin
		return func(row int) int64 { return binIdx(nums[row], width, origin) }, nil, nil
	default:
		nums, fkNums, width, origin := col.Nums, fk.Nums, b.Width, b.Origin
		return func(row int) int64 { return binIdx(nums[int(fkNums[row])], width, origin) }, nil, nil
	}
}

func binIdx(v, width, origin float64) int64 {
	d := (v - origin) / width
	i := int64(d)
	if d < 0 && float64(i) != d {
		i--
	}
	return i
}

// numAccessor builds a float64 reader for a quantitative attribute.
func numAccessor(db *dataset.Database, field string) (func(int) float64, error) {
	col, _, fk, err := db.ResolveColumn(field)
	if err != nil {
		return nil, err
	}
	if col.Field.Kind != dataset.Quantitative {
		return nil, fmt.Errorf("engine: field %q is nominal, aggregates need quantitative input", field)
	}
	nums := col.Nums
	if fk == nil {
		return func(row int) float64 { return nums[row] }, nil
	}
	fkNums := fk.Nums
	return func(row int) float64 { return nums[int(fkNums[row])] }, nil
}

// compileFilter builds the conjunction closure (nil for an empty filter).
func compileFilter(db *dataset.Database, f query.Filter) (func(int) bool, error) {
	if f.IsEmpty() {
		return nil, nil
	}
	preds := make([]func(int) bool, 0, len(f.Predicates))
	for _, p := range f.Predicates {
		fn, err := compilePredicate(db, p)
		if err != nil {
			return nil, err
		}
		preds = append(preds, fn)
	}
	if len(preds) == 1 {
		return preds[0], nil
	}
	return func(row int) bool {
		for _, p := range preds {
			if !p(row) {
				return false
			}
		}
		return true
	}, nil
}

func compilePredicate(db *dataset.Database, p query.Predicate) (func(int) bool, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	col, _, fk, err := db.ResolveColumn(p.Field)
	if err != nil {
		return nil, err
	}
	switch p.Op {
	case query.OpIn:
		if col.Field.Kind != dataset.Nominal {
			return nil, fmt.Errorf("engine: IN predicate on quantitative field %q", p.Field)
		}
		// Resolve values to codes; unknown values simply never match.
		want := make(map[uint32]struct{}, len(p.Values))
		for _, v := range p.Values {
			if code, ok := col.Dict.Lookup(v); ok {
				want[code] = struct{}{}
			}
		}
		codes := col.Codes
		if len(want) == 1 {
			var only uint32
			for c := range want {
				only = c
			}
			if fk == nil {
				return func(row int) bool { return codes[row] == only }, nil
			}
			fkNums := fk.Nums
			return func(row int) bool { return codes[int(fkNums[row])] == only }, nil
		}
		if fk == nil {
			return func(row int) bool { _, ok := want[codes[row]]; return ok }, nil
		}
		fkNums := fk.Nums
		return func(row int) bool { _, ok := want[codes[int(fkNums[row])]]; return ok }, nil

	case query.OpRange:
		if col.Field.Kind != dataset.Quantitative {
			return nil, fmt.Errorf("engine: range predicate on nominal field %q", p.Field)
		}
		nums, lo, hi := col.Nums, p.Lo, p.Hi
		if fk == nil {
			return func(row int) bool { v := nums[row]; return v >= lo && v < hi }, nil
		}
		fkNums := fk.Nums
		return func(row int) bool { v := nums[int(fkNums[row])]; return v >= lo && v < hi }, nil

	default:
		return nil, fmt.Errorf("engine: unknown predicate op %q", p.Op)
	}
}
