package engine

import "idebench/internal/query"

// Session is one simulated user's scope on a prepared engine. The prepared
// data and the engine's scan infrastructure (e.g. the shared-scan scheduler)
// are engine-wide and serve every session, while everything an analyst
// accumulates during exploration — the visualization namespace, link hints,
// reuse caches and speculation targets — is session-local. Concurrent
// sessions therefore share scans but never observe each other's
// visualizations.
//
// Sessions are safe to use from one goroutine each; distinct sessions may
// run fully concurrently. The zero-session convenience path (calling the
// query methods directly on an Engine) remains available for single-user
// replays and operates on the engine's shared default session.
type Session interface {
	// StartQuery begins asynchronous execution and returns immediately.
	StartQuery(q *query.Query) (Handle, error)
	// LinkVizs hints that selections on viz `from` will re-query viz `to`
	// within this session.
	LinkVizs(from, to string)
	// DeleteViz tells the session a visualization was discarded.
	DeleteViz(name string)
	// WorkflowStart is called before a workflow begins; session-local caches
	// start cold.
	WorkflowStart()
	// WorkflowEnd is called after a workflow completes.
	WorkflowEnd()
	// Close releases session-held resources (detaches any standing scan
	// consumers). Using a session after Close is undefined.
	Close()
}

// engineSession adapts an Engine's own query methods into a Session. It is
// the correct session implementation for engines whose execution carries no
// per-visualization state (blocking scans, offline samples, SQL adapters):
// every session is behaviourally identical, so all of them may share the
// engine's methods directly.
type engineSession struct{ e Engine }

// NewEngineSession wraps e's engine-level query methods as a Session.
// Engines with genuinely session-scoped state (reuse caches, speculation)
// must implement their own Session instead of using this helper.
func NewEngineSession(e Engine) Session { return engineSession{e} }

func (s engineSession) StartQuery(q *query.Query) (Handle, error) { return s.e.StartQuery(q) }
func (s engineSession) LinkVizs(from, to string)                  { s.e.LinkVizs(from, to) }
func (s engineSession) DeleteViz(name string)                     { s.e.DeleteViz(name) }
func (s engineSession) WorkflowStart()                            { s.e.WorkflowStart() }
func (s engineSession) WorkflowEnd()                              { s.e.WorkflowEnd() }
func (s engineSession) Close()                                    {}
