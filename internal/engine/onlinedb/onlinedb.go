// Package onlinedb implements the paper's approXimateDB/XDB analogue: a
// PostgreSQL-based system with wander-join online aggregation. Three
// properties of XDB shape its benchmark profile and are modelled here:
//
//  1. Online aggregation supports only COUNT and SUM with a single
//     aggregate per query; AVG, MIN/MAX and multi-aggregate queries fall
//     back to a regular blocking scan (paper Sec. 5.2: "it does not provide
//     online support for AVG nor for multiple aggregates in a single
//     query... any query that cannot be executed online will fall back to a
//     regular Postgres query").
//  2. Intermediate results are retrieved at a fixed report interval, not at
//     arbitrary poll times.
//  3. Execution is row-at-a-time over a Postgres-style executor, which we
//     model with a per-row tuple-materialization overhead; this makes both
//     the online path and the blocking fallback markedly slower than the
//     columnar engines, as in the paper.
//
// On a normalized star schema the online path resolves dimension attributes
// per sampled fact row (the single-walk wander join of a star schema), so
// online queries keep working at the same rate regardless of normalization —
// the effect Exp. 2 (Fig. 6e) measures.
package onlinedb

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"idebench/internal/dataset"
	"idebench/internal/engine"
	"idebench/internal/query"
	"idebench/internal/stats"
)

// Config tunes the engine.
type Config struct {
	// ReportInterval is how often the online path publishes an intermediate
	// estimate. Default 1ms (the paper's XDB report interval, scaled).
	ReportInterval time.Duration
	// TupleOverhead is the per-row executor overhead in abstract work units
	// (see tupleWork); it calibrates the row-at-a-time execution model to
	// roughly 2-3× the cost of the columnar kernels, mirroring the gap
	// between a row store and a column store on aggregation scans.
	// Default 64.
	TupleOverhead int
	// ChunkRows is the scan granularity between cancellation checks.
	// Default engine.BatchRows/2 (2048), half a vectorized batch — the
	// row-store model reports at finer granularity than the column stores.
	ChunkRows int
}

func (c Config) withDefaults() Config {
	if c.ReportInterval <= 0 {
		c.ReportInterval = time.Millisecond
	}
	if c.TupleOverhead <= 0 {
		c.TupleOverhead = 64
	}
	if c.ChunkRows <= 0 {
		c.ChunkRows = engine.BatchRows / 2
	}
	return c
}

// Engine is the online-aggregation engine with blocking fallback.
type Engine struct {
	cfg Config

	mu sync.RWMutex
	db *dataset.Database
	z  float64
	// permDB is the database with the fact table materialized in the online
	// sampling order (dataset.ReorderFact), so the online path's "next
	// sample chunk" is a sequential range scan instead of a permutation
	// gather. Dimension tables are shared with db. Keeping both fact copies
	// doubles resident fact storage; that is deliberate — the blocking
	// fallback models a regular Postgres heap scan and must read (and
	// accumulate) rows in storage order, while the online path owns the
	// sample order, mirroring a row store whose heap and sample index
	// coexist.
	permDB *dataset.Database
	// heapApp/permApp own the two lineages under live ingestion. The heap
	// lineage is created lazily on the first Append — Prepare shares the
	// caller's table, and the one-time private copy (a heap that must own
	// its pages once writes begin) should only be paid by ingesting runs.
	heapApp *dataset.TableAppender
	permApp *dataset.TableAppender
}

// New returns an unprepared engine.
func New(cfg Config) *Engine { return &Engine{cfg: cfg.withDefaults()} }

// Name implements engine.Engine.
func (e *Engine) Name() string { return "onlinedb" }

// Prepare ingests the database. XDB's load is by far the slowest of the
// paper's systems (130 min for 500M rows: COPY plus primary-key build); we
// model it as a row-at-a-time ingest pass with tuple overhead plus
// materializing the fact table in the online-sampling permutation order, so
// the online path later scans its samples sequentially.
func (e *Engine) Prepare(db *dataset.Database, opts engine.Options) error {
	opts = opts.Normalize()
	z, err := stats.ZScore(opts.Confidence)
	if err != nil {
		return fmt.Errorf("onlinedb: %w", err)
	}
	// Row-at-a-time ingest: touch every cell the way a heap-tuple insert
	// would, paying the executor overhead per row (and per dimension row).
	ingestTable(db.Fact, e.cfg.TupleOverhead)
	for _, d := range db.Dimensions {
		ingestTable(d.Table, e.cfg.TupleOverhead)
	}
	rng := rand.New(rand.NewSource(opts.Seed + 29))
	perm := stats.Permutation(rng, db.Fact.NumRows())
	permDB, err := db.ReorderFact(perm)
	if err != nil {
		return fmt.Errorf("onlinedb: %w", err)
	}

	e.mu.Lock()
	e.db = db
	e.z = z
	e.permDB = permDB
	e.heapApp = nil
	e.permApp = nil
	e.mu.Unlock()
	return nil
}

// Append implements engine.Appender: the batch is ingested row-at-a-time
// with the modelled tuple overhead (a heap insert pays executor cost per
// row, unlike the columnar engines' memcpy), then lands on both lineages —
// the heap in arrival order for the blocking fallback, the sampling-order
// copy as a tail for the online path. New queries see the grown views;
// in-flight ones finish on the version they compiled against.
func (e *Engine) Append(rows *dataset.Table) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.db == nil {
		return engine.ErrNotPrepared
	}
	ingestTable(rows, e.cfg.TupleOverhead)
	if e.heapApp == nil {
		// The heap table was shared with the caller at Prepare; own it now.
		e.heapApp = dataset.NewTableAppender(e.db.Fact, false)
		e.permApp = dataset.NewTableAppender(e.permDB.Fact, true) // reorder copy is private
	}
	heapFact, err := e.heapApp.Append(rows)
	if err != nil {
		return fmt.Errorf("onlinedb: append: %w", err)
	}
	permFact, err := e.permApp.Append(rows)
	if err != nil {
		return fmt.Errorf("onlinedb: append: %w", err)
	}
	e.db = &dataset.Database{Fact: heapFact, Dimensions: e.db.Dimensions}
	e.permDB = &dataset.Database{Fact: permFact, Dimensions: e.permDB.Dimensions}
	return nil
}

// Watermark implements engine.Appender.
func (e *Engine) Watermark() int64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.db == nil {
		return 0
	}
	return int64(e.db.Fact.NumRows())
}

// SupportsOnline reports whether q can run as online aggregation: exactly
// one aggregate, COUNT or SUM.
func SupportsOnline(q *query.Query) bool {
	if len(q.Aggs) != 1 {
		return false
	}
	switch q.Aggs[0].Func {
	case query.Count, query.Sum:
		return true
	}
	return false
}

// StartQuery implements engine.Engine. Online-capable queries compile
// against the permutation-ordered copy of the fact table; the blocking
// fallback scans the original in storage order (a regular Postgres query has
// no sampling order to honour).
func (e *Engine) StartQuery(q *query.Query) (engine.Handle, error) {
	e.mu.RLock()
	db, z, permDB := e.db, e.z, e.permDB
	e.mu.RUnlock()
	if db == nil {
		return nil, engine.ErrNotPrepared
	}
	h := engine.NewAsyncHandle()
	if SupportsOnline(q) {
		plan, err := engine.Compile(permDB, q)
		if err != nil {
			return nil, err
		}
		go e.runOnline(plan, h, z)
	} else {
		plan, err := engine.Compile(db, q)
		if err != nil {
			return nil, err
		}
		go e.runBlocking(plan, h)
	}
	return h, nil
}

// clockCheckChunks is how many scan chunks the online loop folds between
// time.Now calls. The previous implementation read the clock after every
// chunk — tens of thousands of clock reads per query for a loop whose whole
// point is to be row-store CPU bound. Reports land within
// clockCheckChunks*ChunkRows rows of the interval boundary, far finer than
// the report interval at realistic scan rates.
const clockCheckChunks = 4

// runOnline executes wander-join style online aggregation: single-threaded
// row-at-a-time sampling over the permutation-ordered fact copy (a
// sequential scan of sample order), publishing a scaled estimate with
// margins at every report interval. The report cadence is driven by rows
// scanned, checking the clock only every clockCheckChunks chunks so the hot
// loop stays clock-free.
func (e *Engine) runOnline(plan *engine.Compiled, h *engine.AsyncHandle, z float64) {
	defer h.Finish()
	gs := engine.NewGroupState(plan)
	n := plan.NumRows
	total := int64(plan.NumRows)
	nextReport := time.Now().Add(e.cfg.ReportInterval)
	pos := 0
	for chunk := 0; pos < n; chunk++ {
		if h.Cancelled() {
			return
		}
		hi := pos + e.cfg.ChunkRows
		if hi > n {
			hi = n
		}
		scanRangeWithOverhead(gs, plan, pos, hi, e.cfg.TupleOverhead)
		pos = hi
		if chunk%clockCheckChunks != 0 {
			continue
		}
		if now := time.Now(); now.After(nextReport) {
			h.Publish(gs.SnapshotScaled(int64(pos), total, total, 0, z))
			nextReport = now.Add(e.cfg.ReportInterval)
		}
	}
	h.Publish(gs.SnapshotExact())
}

// runBlocking is the Postgres fallback: a single-threaded full scan with
// tuple overhead; no result exists until it completes.
func (e *Engine) runBlocking(plan *engine.Compiled, h *engine.AsyncHandle) {
	defer h.Finish()
	gs := engine.NewGroupState(plan)
	n := plan.NumRows
	for lo := 0; lo < n; lo += e.cfg.ChunkRows {
		if h.Cancelled() {
			return
		}
		hi := lo + e.cfg.ChunkRows
		if hi > n {
			hi = n
		}
		scanRangeWithOverhead(gs, plan, lo, hi, e.cfg.TupleOverhead)
	}
	if h.Cancelled() {
		return
	}
	h.Publish(gs.SnapshotExact())
}

// OpenSession implements engine.Engine. Online aggregation runs one
// goroutine per query with no cross-query state, so every session shares the
// engine directly (concurrent sessions model concurrent XDB connections).
func (e *Engine) OpenSession() engine.Session { return engine.NewEngineSession(e) }

// LinkVizs implements engine.Engine; XDB has no speculative layer.
func (e *Engine) LinkVizs(from, to string) {}

// DeleteViz implements engine.Engine.
func (e *Engine) DeleteViz(name string) {}

// WorkflowStart implements engine.Engine.
func (e *Engine) WorkflowStart() {}

// WorkflowEnd implements engine.Engine.
func (e *Engine) WorkflowEnd() {}

var (
	_ engine.Engine   = (*Engine)(nil)
	_ engine.Appender = (*Engine)(nil)
)

// tupleSink defeats dead-code elimination of the overhead loop; updated
// atomically because scans run on multiple goroutines.
var tupleSink atomic.Uint64

// tupleWork models the per-tuple executor cost of a row store: header
// decoding, MVCC visibility checks and tuple deformation. k iterations of a
// simple mix keep the cost deterministic and architecture-independent.
func tupleWork(row int, k int) uint64 {
	v := uint64(row) | 1
	for i := 0; i < k; i++ {
		v ^= v << 13
		v ^= v >> 7
		v ^= v << 17
	}
	return v
}

// scanRangeWithOverhead pays the modelled per-tuple cost for every row, then
// folds the chunk through the shared vectorized kernels. The tupleWork loop
// is what keeps this engine row-store slow; the fold itself rides the batch
// API like every other engine so its group-by semantics stay identical.
func scanRangeWithOverhead(gs *engine.GroupState, plan *engine.Compiled, lo, hi, overhead int) {
	var acc uint64
	for r := lo; r < hi; r++ {
		acc += tupleWork(r, overhead)
	}
	tupleSink.Add(acc)
	gs.ScanRange(lo, hi)
}

// ingestTable simulates the row-at-a-time load + primary key build.
func ingestTable(t *dataset.Table, overhead int) {
	var acc uint64
	for i := 0; i < t.NumRows(); i++ {
		acc += tupleWork(i, overhead+8)
	}
	tupleSink.Add(acc)
}
