package onlinedb

import (
	"testing"
	"time"

	"idebench/internal/engine"
	"idebench/internal/enginetest"
	"idebench/internal/query"
)

func TestConformance(t *testing.T) {
	enginetest.Conformance(t, func() engine.Engine { return New(Config{}) }, true)
}

func TestMultiUserScenario(t *testing.T) {
	enginetest.MultiUserScenario(t, func() engine.Engine { return New(Config{}) }, true)
}

func TestIngestScenario(t *testing.T) {
	enginetest.IngestScenario(t, func() engine.Engine { return New(Config{}) }, true)
}

func TestName(t *testing.T) {
	if New(Config{}).Name() != "onlinedb" {
		t.Error("name wrong")
	}
}

func TestSupportsOnline(t *testing.T) {
	count := enginetest.CountByCarrier()
	if !SupportsOnline(count) {
		t.Error("single COUNT should be online")
	}
	sum := enginetest.CountByCarrier()
	sum.Aggs = []query.Aggregate{{Func: query.Sum, Field: "distance"}}
	if !SupportsOnline(sum) {
		t.Error("single SUM should be online")
	}
	avg := enginetest.AvgDelayByDistance()
	if SupportsOnline(avg) {
		t.Error("AVG must fall back to blocking (XDB limitation)")
	}
	multi := enginetest.CountByCarrier()
	multi.Aggs = append(multi.Aggs, query.Aggregate{Func: query.Sum, Field: "distance"})
	if SupportsOnline(multi) {
		t.Error("multi-aggregate must fall back to blocking")
	}
	mn := enginetest.CountByCarrier()
	mn.Aggs = []query.Aggregate{{Func: query.Min, Field: "distance"}}
	if SupportsOnline(mn) {
		t.Error("MIN must fall back to blocking")
	}
}

func TestOnlineQueryPublishesIntermediateReports(t *testing.T) {
	db := enginetest.SmallDB(400000, 3)
	e := New(Config{ReportInterval: 200 * time.Microsecond})
	if err := e.Prepare(db, engine.Options{}); err != nil {
		t.Fatal(err)
	}
	h, err := e.StartQuery(enginetest.CountByCarrier())
	if err != nil {
		t.Fatal(err)
	}
	// Watch for an intermediate (incomplete) result before completion.
	sawPartial := false
	for {
		select {
		case <-h.Done():
			goto done
		default:
		}
		if snap := h.Snapshot(); snap != nil && !snap.Complete && snap.RowsSeen > 0 {
			sawPartial = true
			if !snap.FiniteMargins() {
				t.Error("online report should carry finite margins")
			}
			goto done
		}
	}
done:
	h.Cancel()
	<-h.Done()
	if !sawPartial {
		// Final result still proves the path works; only warn when the
		// machine raced past all report intervals.
		t.Log("no intermediate report observed (machine too fast); final-only")
	}
}

func TestBlockingFallbackDeliversNothingEarly(t *testing.T) {
	db := enginetest.SmallDB(400000, 7)
	e := New(Config{})
	if err := e.Prepare(db, engine.Options{}); err != nil {
		t.Fatal(err)
	}
	h, err := e.StartQuery(enginetest.AvgDelayByDistance())
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-h.Done():
		// Finished before we sampled it; acceptable on fast machines.
	default:
		if h.Snapshot() != nil {
			t.Error("blocking fallback must not expose partial results")
		}
	}
	res := enginetest.WaitResult(t, h, 60*time.Second)
	gt, _ := enginetest.Exact(db, enginetest.AvgDelayByDistance())
	if err := enginetest.ResultsEqual(gt, res, 0); err != nil {
		t.Errorf("fallback result mismatch: %v", err)
	}
}

func TestOnlineCompleteIsExact(t *testing.T) {
	db := enginetest.SmallDB(100000, 9)
	e := New(Config{})
	if err := e.Prepare(db, engine.Options{}); err != nil {
		t.Fatal(err)
	}
	h, err := e.StartQuery(enginetest.CountByCarrier())
	if err != nil {
		t.Fatal(err)
	}
	res := enginetest.WaitResult(t, h, 60*time.Second)
	gt, _ := enginetest.Exact(db, enginetest.CountByCarrier())
	if err := enginetest.ResultsEqual(gt, res, 0); err != nil {
		t.Errorf("completed online result mismatch: %v", err)
	}
	if !res.Complete {
		t.Error("full-scan online result should be complete")
	}
}

func TestOnlineJoinOnNormalizedSchema(t *testing.T) {
	db := enginetest.NormalizedDB(150000, 11)
	e := New(Config{})
	if err := e.Prepare(db, engine.Options{}); err != nil {
		t.Fatal(err)
	}
	q := &query.Query{
		VizName: "v",
		Table:   "flights",
		Bins:    []query.Binning{{Field: "carrier", Kind: 1}}, // dimension attribute
		Aggs:    []query.Aggregate{{Func: query.Count}},
	}
	if !SupportsOnline(q) {
		t.Fatal("count query should be online")
	}
	h, err := e.StartQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	res := enginetest.WaitResult(t, h, 60*time.Second)
	gt, _ := enginetest.Exact(db, q)
	if err := enginetest.ResultsEqual(gt, res, 0); err != nil {
		t.Errorf("online join mismatch: %v", err)
	}
}

func TestRowAtATimeIsSlowerThanColumnar(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	db := enginetest.SmallDB(300000, 13)
	plan, err := engine.Compile(db, enginetest.CountByCarrier())
	if err != nil {
		t.Fatal(err)
	}
	// Columnar scan.
	gs := engine.NewGroupState(plan)
	start := time.Now()
	gs.ScanRange(0, plan.NumRows)
	columnar := time.Since(start)

	// Row-at-a-time scan with tuple overhead.
	gs2 := engine.NewGroupState(plan)
	start = time.Now()
	scanRangeWithOverhead(gs2, plan, 0, plan.NumRows, Config{}.withDefaults().TupleOverhead)
	rowAtATime := time.Since(start)

	if rowAtATime < 3*columnar/2 {
		t.Errorf("tuple overhead too small: columnar %v vs row-at-a-time %v", columnar, rowAtATime)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.ReportInterval != time.Millisecond || c.TupleOverhead != 64 || c.ChunkRows != 2048 {
		t.Errorf("defaults wrong: %+v", c)
	}
}
