package engine

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"idebench/internal/dataset"
	"idebench/internal/query"
	"idebench/internal/stats"
)

// smallDB builds a tiny deterministic database for kernel tests:
// 8 rows, carrier in {AA,UA}, delay known values.
func smallDB(t *testing.T) *dataset.Database {
	t.Helper()
	schema := dataset.MustSchema([]dataset.Field{
		{Name: "carrier", Kind: dataset.Nominal},
		{Name: "delay", Kind: dataset.Quantitative},
	})
	b := dataset.NewBuilder("flights", schema, 8)
	rows := []struct {
		c string
		d float64
	}{
		{"AA", 5}, {"AA", 15}, {"UA", -5}, {"UA", 25},
		{"AA", 10}, {"UA", 0}, {"AA", -10}, {"UA", 30},
	}
	for _, r := range rows {
		b.AppendString(0, r.c)
		b.AppendNum(1, r.d)
	}
	fact, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return &dataset.Database{Fact: fact}
}

// normDB builds a 2-row-dimension star schema version.
func normDB(t *testing.T) *dataset.Database {
	t.Helper()
	factSchema := dataset.MustSchema([]dataset.Field{
		{Name: "carrier_fk", Kind: dataset.Quantitative},
		{Name: "delay", Kind: dataset.Quantitative},
	})
	fb := dataset.NewBuilder("flights", factSchema, 4)
	for _, r := range []struct {
		fk, d float64
	}{{0, 5}, {1, 15}, {0, 25}, {1, -5}} {
		fb.AppendNum(0, r.fk)
		fb.AppendNum(1, r.d)
	}
	fact, err := fb.Build()
	if err != nil {
		t.Fatal(err)
	}
	dimSchema := dataset.MustSchema([]dataset.Field{
		{Name: "carrier", Kind: dataset.Nominal},
		{Name: "hub_delay", Kind: dataset.Quantitative},
	})
	db := dataset.NewBuilder("carriers", dimSchema, 2)
	db.AppendString(0, "AA")
	db.AppendNum(1, 100)
	db.AppendString(0, "UA")
	db.AppendNum(1, 200)
	dim, err := db.Build()
	if err != nil {
		t.Fatal(err)
	}
	return &dataset.Database{
		Fact:       fact,
		Dimensions: []*dataset.Dimension{{Table: dim, FKColumn: "carrier_fk"}},
	}
}

func countByCarrier() *query.Query {
	return &query.Query{
		VizName: "v",
		Table:   "flights",
		Bins:    []query.Binning{{Field: "carrier", Kind: dataset.Nominal}},
		Aggs:    []query.Aggregate{{Func: query.Count}},
	}
}

func TestCompileAndExactCount(t *testing.T) {
	db := smallDB(t)
	plan, err := Compile(db, countByCarrier())
	if err != nil {
		t.Fatal(err)
	}
	gs := NewGroupState(plan)
	gs.ScanRange(0, plan.NumRows)
	res := gs.SnapshotExact()
	if !res.Complete {
		t.Error("exact snapshot should be complete")
	}
	dict := db.Fact.Column("carrier").Dict
	aa, _ := dict.Lookup("AA")
	ua, _ := dict.Lookup("UA")
	if v, _ := res.ValueAt(query.BinKey{A: int64(aa)}, 0); v != 4 {
		t.Errorf("AA count = %v, want 4", v)
	}
	if v, _ := res.ValueAt(query.BinKey{A: int64(ua)}, 0); v != 4 {
		t.Errorf("UA count = %v, want 4", v)
	}
}

func TestCompileAllAggregates(t *testing.T) {
	db := smallDB(t)
	q := &query.Query{
		Table: "flights",
		Bins:  []query.Binning{{Field: "carrier", Kind: dataset.Nominal}},
		Aggs: []query.Aggregate{
			{Func: query.Count},
			{Func: query.Sum, Field: "delay"},
			{Func: query.Avg, Field: "delay"},
			{Func: query.Min, Field: "delay"},
			{Func: query.Max, Field: "delay"},
		},
	}
	plan, err := Compile(db, q)
	if err != nil {
		t.Fatal(err)
	}
	gs := NewGroupState(plan)
	gs.ScanRange(0, plan.NumRows)
	res := gs.SnapshotExact()
	dict := db.Fact.Column("carrier").Dict
	aa, _ := dict.Lookup("AA")
	bv := res.Bins[query.BinKey{A: int64(aa)}]
	// AA delays: 5, 15, 10, -10 → count 4, sum 20, avg 5, min -10, max 15.
	want := []float64{4, 20, 5, -10, 15}
	for i, w := range want {
		if math.Abs(bv.Values[i]-w) > 1e-9 {
			t.Errorf("agg %d = %v, want %v", i, bv.Values[i], w)
		}
	}
}

func TestCompileQuantitativeBinning(t *testing.T) {
	db := smallDB(t)
	q := &query.Query{
		Table: "flights",
		Bins:  []query.Binning{{Field: "delay", Kind: dataset.Quantitative, Width: 10}},
		Aggs:  []query.Aggregate{{Func: query.Count}},
	}
	plan, err := Compile(db, q)
	if err != nil {
		t.Fatal(err)
	}
	gs := NewGroupState(plan)
	gs.ScanRange(0, plan.NumRows)
	res := gs.SnapshotExact()
	// delays: 5,15,-5,25,10,0,-10,30 → bins: 0:{5,0}, 1:{15,10}, -1:{-5,-10}, 2:{25}, 3:{30}
	wants := map[int64]float64{0: 2, 1: 2, -1: 2, 2: 1, 3: 1}
	for bin, w := range wants {
		if v, _ := res.ValueAt(query.BinKey{A: bin}, 0); v != w {
			t.Errorf("bin %d count = %v, want %v", bin, v, w)
		}
	}
	if len(res.Bins) != len(wants) {
		t.Errorf("bin count %d, want %d", len(res.Bins), len(wants))
	}
}

func TestCompile2D(t *testing.T) {
	db := smallDB(t)
	q := &query.Query{
		Table: "flights",
		Bins: []query.Binning{
			{Field: "carrier", Kind: dataset.Nominal},
			{Field: "delay", Kind: dataset.Quantitative, Width: 20},
		},
		Aggs: []query.Aggregate{{Func: query.Count}},
	}
	plan, err := Compile(db, q)
	if err != nil {
		t.Fatal(err)
	}
	gs := NewGroupState(plan)
	gs.ScanRange(0, plan.NumRows)
	res := gs.SnapshotExact()
	dict := db.Fact.Column("carrier").Dict
	ua, _ := dict.Lookup("UA")
	// UA delays: -5 (bin -1), 25 (bin 1), 0 (bin 0), 30 (bin 1).
	if v, _ := res.ValueAt(query.BinKey{A: int64(ua), B: 1}, 0); v != 2 {
		t.Errorf("UA bin1 = %v, want 2", v)
	}
}

func TestCompileFilters(t *testing.T) {
	db := smallDB(t)
	q := countByCarrier()
	q.Filter = query.Filter{Predicates: []query.Predicate{
		{Field: "delay", Op: query.OpRange, Lo: 0, Hi: 20},
	}}
	plan, err := Compile(db, q)
	if err != nil {
		t.Fatal(err)
	}
	gs := NewGroupState(plan)
	gs.ScanRange(0, plan.NumRows)
	res := gs.SnapshotExact()
	// delays in [0,20): AA:5, AA:15, AA:10; UA:0 → AA 3, UA 1.
	dict := db.Fact.Column("carrier").Dict
	aa, _ := dict.Lookup("AA")
	ua, _ := dict.Lookup("UA")
	if v, _ := res.ValueAt(query.BinKey{A: int64(aa)}, 0); v != 3 {
		t.Errorf("AA = %v, want 3", v)
	}
	if v, _ := res.ValueAt(query.BinKey{A: int64(ua)}, 0); v != 1 {
		t.Errorf("UA = %v, want 1", v)
	}

	// IN filter + range conjunction.
	q2 := countByCarrier()
	q2.Filter = query.Filter{Predicates: []query.Predicate{
		{Field: "carrier", Op: query.OpIn, Values: []string{"UA"}},
		{Field: "delay", Op: query.OpRange, Lo: 0, Hi: 100},
	}}
	plan2, err := Compile(db, q2)
	if err != nil {
		t.Fatal(err)
	}
	gs2 := NewGroupState(plan2)
	gs2.ScanRange(0, plan2.NumRows)
	res2 := gs2.SnapshotExact()
	if len(res2.Bins) != 1 {
		t.Fatalf("bins = %d, want 1", len(res2.Bins))
	}
	if v, _ := res2.ValueAt(query.BinKey{A: int64(ua)}, 0); v != 3 {
		t.Errorf("UA filtered = %v, want 3 (0,25,30)", v)
	}
}

func TestCompileInFilterUnknownValue(t *testing.T) {
	db := smallDB(t)
	q := countByCarrier()
	q.Filter = query.Filter{Predicates: []query.Predicate{
		{Field: "carrier", Op: query.OpIn, Values: []string{"ZZ"}},
	}}
	plan, err := Compile(db, q)
	if err != nil {
		t.Fatal(err)
	}
	gs := NewGroupState(plan)
	gs.ScanRange(0, plan.NumRows)
	if gs.NumGroups() != 0 {
		t.Error("unknown IN value should match nothing")
	}
}

func TestCompileMultiValueIn(t *testing.T) {
	db := smallDB(t)
	q := countByCarrier()
	q.Filter = query.Filter{Predicates: []query.Predicate{
		{Field: "carrier", Op: query.OpIn, Values: []string{"AA", "UA"}},
	}}
	plan, err := Compile(db, q)
	if err != nil {
		t.Fatal(err)
	}
	gs := NewGroupState(plan)
	gs.ScanRange(0, plan.NumRows)
	if gs.NumGroups() != 2 {
		t.Errorf("groups = %d, want 2", gs.NumGroups())
	}
}

func TestCompileErrors(t *testing.T) {
	db := smallDB(t)
	cases := []struct {
		name string
		q    *query.Query
	}{
		{"unknown table", &query.Query{Table: "x",
			Bins: []query.Binning{{Field: "carrier", Kind: dataset.Nominal}},
			Aggs: []query.Aggregate{{Func: query.Count}}}},
		{"unknown bin field", &query.Query{Table: "flights",
			Bins: []query.Binning{{Field: "ghost", Kind: dataset.Nominal}},
			Aggs: []query.Aggregate{{Func: query.Count}}}},
		{"kind mismatch", &query.Query{Table: "flights",
			Bins: []query.Binning{{Field: "carrier", Kind: dataset.Quantitative, Width: 5}},
			Aggs: []query.Aggregate{{Func: query.Count}}}},
		{"agg on nominal", &query.Query{Table: "flights",
			Bins: []query.Binning{{Field: "carrier", Kind: dataset.Nominal}},
			Aggs: []query.Aggregate{{Func: query.Avg, Field: "carrier"}}}},
		{"agg unknown field", &query.Query{Table: "flights",
			Bins: []query.Binning{{Field: "carrier", Kind: dataset.Nominal}},
			Aggs: []query.Aggregate{{Func: query.Sum, Field: "ghost"}}}},
		{"range on nominal", &query.Query{Table: "flights",
			Bins: []query.Binning{{Field: "carrier", Kind: dataset.Nominal}},
			Aggs: []query.Aggregate{{Func: query.Count}},
			Filter: query.Filter{Predicates: []query.Predicate{
				{Field: "carrier", Op: query.OpRange, Lo: 0, Hi: 1}}}}},
		{"in on quantitative", &query.Query{Table: "flights",
			Bins: []query.Binning{{Field: "carrier", Kind: dataset.Nominal}},
			Aggs: []query.Aggregate{{Func: query.Count}},
			Filter: query.Filter{Predicates: []query.Predicate{
				{Field: "delay", Op: query.OpIn, Values: []string{"5"}}}}}},
		{"filter unknown field", &query.Query{Table: "flights",
			Bins: []query.Binning{{Field: "carrier", Kind: dataset.Nominal}},
			Aggs: []query.Aggregate{{Func: query.Count}},
			Filter: query.Filter{Predicates: []query.Predicate{
				{Field: "ghost", Op: query.OpRange, Lo: 0, Hi: 1}}}}},
	}
	for _, c := range cases {
		if _, err := Compile(db, c.q); err == nil {
			t.Errorf("%s: expected compile error", c.name)
		}
	}
}

func TestCompileNormalizedJoin(t *testing.T) {
	db := normDB(t)
	q := &query.Query{
		Table: "flights",
		Bins:  []query.Binning{{Field: "carrier", Kind: dataset.Nominal}},
		Aggs: []query.Aggregate{
			{Func: query.Count},
			{Func: query.Avg, Field: "delay"},
			{Func: query.Sum, Field: "hub_delay"}, // dimension attribute aggregate
		},
	}
	plan, err := Compile(db, q)
	if err != nil {
		t.Fatal(err)
	}
	gs := NewGroupState(plan)
	gs.ScanRange(0, plan.NumRows)
	res := gs.SnapshotExact()
	dict := db.Dimensions[0].Table.Column("carrier").Dict
	aa, _ := dict.Lookup("AA")
	bv := res.Bins[query.BinKey{A: int64(aa)}]
	// AA fact rows: delays 5, 25 → count 2, avg 15, hub_delay sum 200.
	if bv.Values[0] != 2 || bv.Values[1] != 15 || bv.Values[2] != 200 {
		t.Errorf("join aggregates = %v", bv.Values)
	}

	// Filter on dimension attribute.
	q2 := &query.Query{
		Table: "flights",
		Bins:  []query.Binning{{Field: "delay", Kind: dataset.Quantitative, Width: 100}},
		Aggs:  []query.Aggregate{{Func: query.Count}},
		Filter: query.Filter{Predicates: []query.Predicate{
			{Field: "carrier", Op: query.OpIn, Values: []string{"UA"}},
		}},
	}
	plan2, err := Compile(db, q2)
	if err != nil {
		t.Fatal(err)
	}
	gs2 := NewGroupState(plan2)
	gs2.ScanRange(0, plan2.NumRows)
	var total float64
	for _, bv := range gs2.SnapshotExact().Bins {
		total += bv.Values[0]
	}
	if total != 2 {
		t.Errorf("UA rows = %v, want 2", total)
	}

	// Range filter on dimension quantitative attribute.
	q3 := &query.Query{
		Table: "flights",
		Bins:  []query.Binning{{Field: "carrier", Kind: dataset.Nominal}},
		Aggs:  []query.Aggregate{{Func: query.Count}},
		Filter: query.Filter{Predicates: []query.Predicate{
			{Field: "hub_delay", Op: query.OpRange, Lo: 150, Hi: 300},
		}},
	}
	plan3, err := Compile(db, q3)
	if err != nil {
		t.Fatal(err)
	}
	gs3 := NewGroupState(plan3)
	gs3.ScanRange(0, plan3.NumRows)
	if gs3.NumGroups() != 1 {
		t.Errorf("hub_delay filter groups = %d, want 1 (UA only)", gs3.NumGroups())
	}
}

func TestGroupStateMerge(t *testing.T) {
	db := smallDB(t)
	q := &query.Query{
		Table: "flights",
		Bins:  []query.Binning{{Field: "carrier", Kind: dataset.Nominal}},
		Aggs: []query.Aggregate{
			{Func: query.Count},
			{Func: query.Avg, Field: "delay"},
			{Func: query.Min, Field: "delay"},
			{Func: query.Max, Field: "delay"},
		},
	}
	plan, err := Compile(db, q)
	if err != nil {
		t.Fatal(err)
	}
	whole := NewGroupState(plan)
	whole.ScanRange(0, 8)
	a := NewGroupState(plan)
	a.ScanRange(0, 3)
	b := NewGroupState(plan)
	b.ScanRange(3, 8)
	a.Merge(b)
	ra, rw := a.SnapshotExact(), whole.SnapshotExact()
	if err := compareResults(ra, rw); err != nil {
		t.Error(err)
	}
}

func compareResults(a, b *query.Result) error {
	if len(a.Bins) != len(b.Bins) {
		return errMismatch("bin count", len(a.Bins), len(b.Bins))
	}
	for k, av := range a.Bins {
		bv, ok := b.Bins[k]
		if !ok {
			return errMismatch("missing bin", k, nil)
		}
		for i := range av.Values {
			if math.Abs(av.Values[i]-bv.Values[i]) > 1e-9 {
				return errMismatch("value", av.Values[i], bv.Values[i])
			}
		}
	}
	return nil
}

type mismatchError struct{ msg string }

func (e mismatchError) Error() string { return e.msg }

func errMismatch(what string, a, b interface{}) error {
	return mismatchError{msg: what + " mismatch"}
}

// Property: merging a randomly split scan equals a whole scan.
func TestGroupStateMergeProperty(t *testing.T) {
	db := smallDB(t)
	plan, err := Compile(db, countByCarrier())
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		split := rng.Intn(9)
		whole := NewGroupState(plan)
		whole.ScanRange(0, 8)
		a := NewGroupState(plan)
		a.ScanRange(0, split)
		b := NewGroupState(plan)
		b.ScanRange(split, 8)
		a.Merge(b)
		return compareResults(a.SnapshotExact(), whole.SnapshotExact()) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSnapshotScaledEstimates(t *testing.T) {
	// 1000 rows, half "AA" half "UA"; sample the first 100 (known order).
	schema := dataset.MustSchema([]dataset.Field{
		{Name: "carrier", Kind: dataset.Nominal},
		{Name: "delay", Kind: dataset.Quantitative},
	})
	b := dataset.NewBuilder("flights", schema, 1000)
	for i := 0; i < 1000; i++ {
		if i%2 == 0 {
			b.AppendString(0, "AA")
		} else {
			b.AppendString(0, "UA")
		}
		b.AppendNum(1, float64(i%10))
	}
	fact, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	db := &dataset.Database{Fact: fact}
	q := &query.Query{
		Table: "flights",
		Bins:  []query.Binning{{Field: "carrier", Kind: dataset.Nominal}},
		Aggs: []query.Aggregate{
			{Func: query.Count},
			{Func: query.Sum, Field: "delay"},
			{Func: query.Avg, Field: "delay"},
		},
	}
	plan, err := Compile(db, q)
	if err != nil {
		t.Fatal(err)
	}
	gs := NewGroupState(plan)
	gs.ScanRange(0, 100) // first 100 rows: 50 AA, 50 UA
	z := stats.MustZScore(0.95)
	res := gs.SnapshotScaled(100, 1000, 700, 0, z)
	if res.Complete {
		t.Error("partial snapshot should not be complete")
	}
	// The watermark is the absorbed-rows data version, threaded explicitly —
	// not the scaling population (the regression this guards: SnapshotScaled
	// used to stamp populationRows, so a stratified engine's result claimed a
	// freshness its absorbed rows did not back).
	if res.Watermark != 700 {
		t.Errorf("watermark = %d, want the explicit 700, not population 1000", res.Watermark)
	}
	dict := fact.Column("carrier").Dict
	aa, _ := dict.Lookup("AA")
	bv := res.Bins[query.BinKey{A: int64(aa)}]
	// Count estimate: 50 * (1000/100) = 500 (true 500).
	if math.Abs(bv.Values[0]-500) > 1e-9 {
		t.Errorf("count estimate = %v, want 500", bv.Values[0])
	}
	if bv.Margins[0] <= 0 {
		t.Error("count margin should be positive")
	}
	// Sum estimate scales the partial sum by 10.
	var rawSum float64
	for i := 0; i < 100; i += 2 {
		rawSum += float64(i % 10)
	}
	if math.Abs(bv.Values[1]-rawSum*10) > 1e-9 {
		t.Errorf("sum estimate = %v, want %v", bv.Values[1], rawSum*10)
	}
	if bv.Margins[1] <= 0 {
		t.Error("sum margin should be positive")
	}
	// Avg is the within-group mean.
	if math.Abs(bv.Values[2]-rawSum/50) > 1e-9 {
		t.Errorf("avg estimate = %v, want %v", bv.Values[2], rawSum/50)
	}
	if !res.FiniteMargins() {
		t.Error("margins should be finite")
	}
}

func TestSnapshotScaledComplete(t *testing.T) {
	db := smallDB(t)
	plan, err := Compile(db, countByCarrier())
	if err != nil {
		t.Fatal(err)
	}
	gs := NewGroupState(plan)
	gs.ScanRange(0, plan.NumRows)
	res := gs.SnapshotScaled(int64(plan.NumRows), int64(plan.NumRows), int64(plan.NumRows), 0, 1.96)
	if !res.Complete {
		t.Error("full scan snapshot should be complete")
	}
	for _, bv := range res.Bins {
		for _, m := range bv.Margins {
			if m != 0 {
				t.Error("complete snapshot should have zero margins")
			}
		}
	}
}

func TestSnapshotScaledEmpty(t *testing.T) {
	db := smallDB(t)
	plan, err := Compile(db, countByCarrier())
	if err != nil {
		t.Fatal(err)
	}
	gs := NewGroupState(plan)
	res := gs.SnapshotScaled(0, 8, 8, 0, 1.96)
	if len(res.Bins) != 0 || res.Complete {
		t.Error("empty snapshot should have no bins and not be complete")
	}
}

func TestScanRows(t *testing.T) {
	db := smallDB(t)
	plan, err := Compile(db, countByCarrier())
	if err != nil {
		t.Fatal(err)
	}
	gs := NewGroupState(plan)
	gs.ScanRows([]uint32{0, 1, 4, 6}) // all AA rows
	if gs.NumGroups() != 1 {
		t.Errorf("groups = %d, want 1", gs.NumGroups())
	}
}

func TestBinIdxMatchesQueryBinIndex(t *testing.T) {
	f := func(v, width, origin float64) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) || math.IsNaN(width) || math.IsInf(width, 0) ||
			math.IsNaN(origin) || math.IsInf(origin, 0) {
			return true
		}
		w := math.Abs(width)
		if w < 1e-6 || w > 1e9 || math.Abs(v) > 1e12 || math.Abs(origin) > 1e12 {
			return true
		}
		b := query.Binning{Field: "x", Kind: dataset.Quantitative, Width: w, Origin: origin}
		return binIdx(v, w, origin) == b.BinIndex(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestOptionsNormalize(t *testing.T) {
	o := Options{}.Normalize()
	if o.Confidence != 0.95 || o.Parallelism < 1 || o.Seed == 0 {
		t.Errorf("defaults not applied: %+v", o)
	}
	o2 := Options{Confidence: 0.9, Seed: 7, Parallelism: 3}.Normalize()
	if o2.Confidence != 0.9 || o2.Seed != 7 || o2.Parallelism != 3 {
		t.Error("explicit options overwritten")
	}
}

func TestAsyncHandle(t *testing.T) {
	h := NewAsyncHandle()
	if h.Snapshot() != nil {
		t.Error("fresh handle should have nil snapshot")
	}
	res := query.NewResult()
	h.Publish(res)
	if h.Snapshot() != res {
		t.Error("published result not returned")
	}
	select {
	case <-h.Done():
		t.Error("done before Finish")
	default:
	}
	h.Finish()
	h.Finish() // idempotent
	select {
	case <-h.Done():
	default:
		t.Error("Done not closed after Finish")
	}
	if h.Cancelled() {
		t.Error("not cancelled yet")
	}
	h.Cancel()
	if !h.Cancelled() {
		t.Error("Cancel not observed")
	}

	h2 := NewAsyncHandle()
	called := false
	h2.SetSnapshotFunc(func() *query.Result { called = true; return query.NewResult() })
	if h2.Snapshot() == nil || !called {
		t.Error("snapshot func not invoked")
	}
}
