package engine

import (
	"sync"
	"sync/atomic"

	"idebench/internal/query"
)

// AsyncHandle is the Handle implementation shared by all engines. Execution
// goroutines either Publish result snapshots into it (blocking and
// report-interval engines) or install a SnapshotFunc that materializes the
// current estimate on demand (fully progressive engines).
type AsyncHandle struct {
	mu        sync.RWMutex
	result    *query.Result
	snapFn    func() *query.Result
	partialFn func() *Partial
	cancelFn  func()
	done      chan struct{}
	doneOnce  sync.Once
	cancelled atomic.Bool
}

// NewAsyncHandle returns a handle with no result yet.
func NewAsyncHandle() *AsyncHandle {
	return &AsyncHandle{done: make(chan struct{})}
}

// Publish stores a result snapshot for subsequent Snapshot calls. The
// caller must hand over ownership (pass a clone if it keeps mutating).
func (h *AsyncHandle) Publish(r *query.Result) {
	h.mu.Lock()
	h.result = r
	h.mu.Unlock()
}

// SetSnapshotFunc makes Snapshot compute results on demand; used by
// progressive engines where any poll should reflect all rows seen so far.
func (h *AsyncHandle) SetSnapshotFunc(fn func() *query.Result) {
	h.mu.Lock()
	h.snapFn = fn
	h.mu.Unlock()
}

// SetPartialFunc makes the handle capable of raw partial snapshots (the
// PartialSnapshotter capability): fn materializes the query's current
// accumulator state in wire form. Engines that serve as scatter-gather
// shards install it alongside SetSnapshotFunc.
func (h *AsyncHandle) SetPartialFunc(fn func() *Partial) {
	h.mu.Lock()
	h.partialFn = fn
	h.mu.Unlock()
}

// PartialSnapshot implements PartialSnapshotter. It returns nil when the
// engine did not install a partial func — the handle then has no shard
// capability, and a serving tier asked for partials reports that instead of
// merging rendered floats.
func (h *AsyncHandle) PartialSnapshot() *Partial {
	h.mu.RLock()
	fn := h.partialFn
	h.mu.RUnlock()
	if fn == nil {
		return nil
	}
	return fn()
}

// Snapshot implements Handle.
func (h *AsyncHandle) Snapshot() *query.Result {
	h.mu.RLock()
	fn, res := h.snapFn, h.result
	h.mu.RUnlock()
	if fn != nil {
		return fn()
	}
	return res
}

// Done implements Handle.
func (h *AsyncHandle) Done() <-chan struct{} { return h.done }

// Finish marks execution complete; idempotent.
func (h *AsyncHandle) Finish() {
	h.doneOnce.Do(func() { close(h.done) })
}

// SetCancelFunc registers fn to run once on the first Cancel call. Engines
// without a per-query goroutine (shared-scan execution) use it to detach
// their consumer state and finish the handle; engines with a scan goroutine
// keep polling Cancelled instead. Must be set before the handle is returned
// to the driver.
func (h *AsyncHandle) SetCancelFunc(fn func()) {
	h.mu.Lock()
	h.cancelFn = fn
	h.mu.Unlock()
}

// Cancel implements Handle. It requests execution to stop: goroutine-driven
// engines observe Cancelled and call Finish; shared-scan handles run the
// registered cancel func.
func (h *AsyncHandle) Cancel() {
	if !h.cancelled.CompareAndSwap(false, true) {
		return
	}
	h.mu.RLock()
	fn := h.cancelFn
	h.mu.RUnlock()
	if fn != nil {
		fn()
	}
}

// Cancelled reports whether Cancel was called. Scan loops poll this between
// chunks so cancellation latency is bounded by the chunk cost.
func (h *AsyncHandle) Cancelled() bool { return h.cancelled.Load() }

var _ Handle = (*AsyncHandle)(nil)
