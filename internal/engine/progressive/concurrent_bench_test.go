package progressive

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"idebench/internal/dataset"
	"idebench/internal/engine"
	"idebench/internal/enginetest"
	"idebench/internal/query"
	"idebench/internal/stats"
)

// benchRows sizes the concurrent benchmark's fact table well past LLC
// (5 columns ≈ 130 MB at 4M rows) so the permutation-gather baseline pays
// real cache misses, as it would at paper scale.
const benchRows = 1 << 22

var benchDBOnce struct {
	sync.Once
	db *dataset.Database
}

func benchDB(b *testing.B) *dataset.Database {
	b.Helper()
	benchDBOnce.Do(func() { benchDBOnce.db = enginetest.SmallDB(benchRows, 1234) })
	return benchDBOnce.db
}

// benchQueries returns eight distinct-signature dashboard queries — the
// linked-visualization re-query burst the shared scan is built for. All
// signatures differ so the reuse cache cannot collapse them; the comparison
// measures scan architecture, not deduplication.
func benchQueries() []*query.Query {
	qs := make([]*query.Query, 0, 8)
	for i, st := range []string{"CA", "TX", "NY", "FL"} {
		q := enginetest.CountByCarrier()
		q.VizName = fmt.Sprintf("viz_count_%d", i)
		q.Filter = query.Filter{Predicates: []query.Predicate{
			{Field: "origin_state", Op: query.OpIn, Values: []string{st}},
		}}
		qs = append(qs, q)
	}
	for i := 0; i < 4; i++ {
		q := enginetest.AvgDelayByDistance()
		q.VizName = fmt.Sprintf("viz_avg_%d", i)
		q.Filter = query.Filter{Predicates: []query.Predicate{
			{Field: "dep_delay", Op: query.OpRange, Lo: float64(-30 + 10*i), Hi: 120},
		}}
		qs = append(qs, q)
	}
	return qs
}

// BenchmarkProgressiveConcurrent8 is the acceptance benchmark for shared-scan
// execution: eight concurrent progressive queries over the same fact table,
// run cold (no reuse), to completion.
//
//   - shared: the engine as shipped — permuted materialization at Prepare and
//     one circular cursor folding every chunk through all eight states.
//   - independent_gather: the pre-shared-scan architecture, reconstructed on
//     the same kernels — one goroutine per query, each streaming the whole
//     row permutation through GroupState.ScanRows on the original table.
func BenchmarkProgressiveConcurrent8(b *testing.B) {
	db := benchDB(b)
	queries := benchQueries()

	b.Run("shared", func(b *testing.B) {
		e := New(Config{})
		if err := e.Prepare(db, engine.Options{}); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.WorkflowStart() // cold cache: every query scans
			handles := make([]engine.Handle, len(queries))
			for j, q := range queries {
				h, err := e.StartQuery(q)
				if err != nil {
					b.Fatal(err)
				}
				handles[j] = h
			}
			for _, h := range handles {
				<-h.Done()
			}
		}
		b.StopTimer()
		reportRowRate(b, len(queries))
	})

	b.Run("independent_gather", func(b *testing.B) {
		rng := rand.New(rand.NewSource(engine.Options{}.Normalize().Seed))
		perm := stats.Permutation(rng, db.Fact.NumRows())
		chunk := Config{}.withDefaults().ChunkRows
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var wg sync.WaitGroup
			for _, q := range queries {
				wg.Add(1)
				go func(q *query.Query) {
					defer wg.Done()
					plan, err := engine.Compile(db, q)
					if err != nil {
						b.Error(err)
						return
					}
					gs := engine.NewGroupState(plan)
					for pos := 0; pos < len(perm); pos += chunk {
						hi := pos + chunk
						if hi > len(perm) {
							hi = len(perm)
						}
						gs.ScanRows(perm[pos:hi])
					}
				}(q)
			}
			wg.Wait()
		}
		b.StopTimer()
		reportRowRate(b, len(queries))
	})
}

func reportRowRate(b *testing.B, numQueries int) {
	b.Helper()
	rows := float64(benchRows) * float64(numQueries) * float64(b.N)
	b.ReportMetric(rows/b.Elapsed().Seconds()/1e6, "Mrows/s")
}

// BenchmarkProgressiveFirstSnapshot measures single-query time to the first
// non-empty partial snapshot — the latency the paper's progressive
// interactions live on. Shared-scan execution must not regress it versus the
// old architecture's first gather chunk (the gather_chunk baseline folds one
// permutation chunk and snapshots, which is everything the old engine did
// before its first answer).
func BenchmarkProgressiveFirstSnapshot(b *testing.B) {
	db := benchDB(b)

	b.Run("shared", func(b *testing.B) {
		// Parallelism 1 matches the old architecture's one scan goroutine per
		// query, so the numbers compare first-chunk latency, not worker count.
		e := New(Config{})
		if err := e.Prepare(db, engine.Options{Parallelism: 1}); err != nil {
			b.Fatal(err)
		}
		q := enginetest.CountByCarrier()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.WorkflowStart()
			h, err := e.StartQuery(q)
			if err != nil {
				b.Fatal(err)
			}
			for {
				snap := h.Snapshot()
				if snap != nil && snap.RowsSeen > 0 {
					break // first estimate available (complete counts too, on
					// machines that race the poll loop to the full scan)
				}
				select {
				case <-h.Done():
					if snap := h.Snapshot(); snap == nil || snap.RowsSeen == 0 {
						b.Fatal("query finished without a result")
					}
				default:
					// Yield so the scan worker gets the core on single-CPU
					// machines; a hot spin would measure preemption quanta.
					runtime.Gosched()
					continue
				}
				break
			}
			h.Cancel()
			<-h.Done()
		}
	})

	b.Run("gather_chunk", func(b *testing.B) {
		rng := rand.New(rand.NewSource(engine.Options{}.Normalize().Seed))
		perm := stats.Permutation(rng, db.Fact.NumRows())
		chunk := Config{}.withDefaults().ChunkRows
		q := enginetest.CountByCarrier()
		z := 1.96
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			plan, err := engine.Compile(db, q)
			if err != nil {
				b.Fatal(err)
			}
			gs := engine.NewGroupState(plan)
			gs.ScanRows(perm[:chunk])
			if snap := gs.SnapshotScaled(int64(chunk), int64(plan.NumRows), int64(plan.NumRows), 0, z); snap.RowsSeen == 0 {
				b.Fatal("no snapshot")
			}
		}
	})
}

// BenchmarkProgressivePrepare records the data-preparation cost of permuted
// materialization (permutation build + column gather), the price paid once
// per dataset for sequential progressive scans.
func BenchmarkProgressivePrepare(b *testing.B) {
	db := benchDB(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := New(Config{})
		if err := e.Prepare(db, engine.Options{}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(benchRows)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mrows/s")
}

// Guard: the benchmarks above assume partial snapshots appear before
// completion on this table size; keep a cheap sanity test so a future chunk
// default change does not silently turn FirstSnapshot into a completion
// benchmark.
func TestBenchTableYieldsPartialSnapshots(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a 4M-row table")
	}
	db := enginetest.SmallDB(benchRows/8, 1234)
	e := New(Config{})
	if err := e.Prepare(db, engine.Options{}); err != nil {
		t.Fatal(err)
	}
	h, err := e.StartQuery(enginetest.CountByCarrier())
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if snap := h.Snapshot(); snap != nil && snap.RowsSeen > 0 {
			h.Cancel()
			<-h.Done()
			return
		}
		select {
		case <-h.Done():
			return // completed: also fine, snapshots were available throughout
		default:
		}
	}
	t.Fatal("no snapshot observed")
}
