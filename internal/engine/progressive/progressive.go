// Package progressive implements the paper's IDEA analogue: a fully
// progressive online-aggregation engine. A query's result can be polled at
// any time and carries CLT confidence margins; completed and partial
// per-query states are cached by query signature and reused when the same
// query is issued again (Galakatos et al., "Revisiting Reuse for Approximate
// Query Processing"), and an experimental extension speculatively executes
// the queries every possible single-bin selection on a linked source
// visualization would trigger (paper Sec. 5.4 / Exp. 3).
//
// # Permuted materialization
//
// Prepare draws one fixed random row permutation and materializes the fact
// table in that order (dataset.ReorderTable), so "scan the next chunk of the
// sampling order" is a sequential range scan over dense column storage
// rather than a random-order gather that cache-misses on every column read.
// Any contiguous window of a fixed random permutation is still a uniform
// random sample of the table, so the CLT math behind partial snapshots
// (engine.GroupState.SnapshotScaled) is unchanged.
//
// # Shared-scan execution
//
// All execution rides one sharedscan.Scanner: a circular scan cursor over
// the permuted storage, driven by up to Options.Parallelism workers, that
// folds each chunk through every attached query state. Foreground handles,
// reuse-cached states and speculation targets are all consumers of the same
// scheduler — N concurrent queries cost roughly one memory sweep instead of
// N independent passes, a query attaches at the cursor's current offset and
// completes when the cursor wraps past its start, and a cancelled query's
// partial state resumes from the cache without re-reading a row.
//
// # Sessions
//
// OpenSession scopes reuse caches, viz-name maps and speculation rounds to
// one simulated analyst. All sessions attach their consumers to the same
// scanner, so concurrent users share memory sweeps — the multi-user driver's
// scaling lever — while keeping their exploration state invisible to each
// other.
package progressive

import (
	"fmt"
	"math/rand"
	"sync"

	"idebench/internal/dataset"
	"idebench/internal/engine"
	"idebench/internal/engine/sharedscan"
	"idebench/internal/query"
	"idebench/internal/stats"
)

// Config tunes the engine.
type Config struct {
	// ChunkRows is the number of sequential rows the shared scanner claims
	// per dispatch (the granularity of snapshot opportunities and
	// cancellation). Default engine.BatchRows, so each dispatch is exactly
	// one vectorized batch.
	ChunkRows int
	// Speculate enables the think-time speculation extension.
	Speculate bool
	// MaxSpeculations caps how many single-bin selections are speculated per
	// link (the source visualization may have hundreds of bins). Default 64.
	MaxSpeculations int
}

func (c Config) withDefaults() Config {
	if c.ChunkRows <= 0 {
		c.ChunkRows = engine.BatchRows
	}
	if c.MaxSpeculations <= 0 {
		c.MaxSpeculations = 64
	}
	return c
}

// Engine is the progressive engine. The prepared permuted storage and the
// shared-scan scheduler are engine-wide; everything an analyst accumulates —
// reuse caches, the viz-name → query map speculation derives selections
// from, and the current round of speculation targets — lives in a Session.
// Concurrent sessions ride the same scan cursor (N users' queries still cost
// about one memory sweep) without sharing viz namespaces or caches.
type Engine struct {
	cfg Config

	mu   sync.Mutex
	db   *dataset.Database // fact table materialized in permutation order
	opts engine.Options
	z    float64
	perm []uint32 // sampling permutation the prepared fact rows are stored in
	scan *sharedscan.Scanner
	app  *dataset.TableAppender // owns the permuted fact lineage
	def  *session               // shared default session for engine-level query methods
}

// New returns an unprepared engine.
func New(cfg Config) *Engine { return &Engine{cfg: cfg.withDefaults()} }

// Name implements engine.Engine.
func (e *Engine) Name() string { return "progressive" }

// Prepare implements engine.Engine. IDEA ingests the raw data without
// pre-processing beyond loading; here that is materializing the fact table
// in one fixed random permutation (the online-sampling order) so progressive
// scans run sequentially over dense storage. Normalized schemas are rejected
// — the paper excludes IDEA from the join experiment because it does not
// support joins.
func (e *Engine) Prepare(db *dataset.Database, opts engine.Options) error {
	if db.IsNormalized() {
		return fmt.Errorf("progressive: joins (normalized schemas) are not supported")
	}
	opts = opts.Normalize()
	z, err := stats.ZScore(opts.Confidence)
	if err != nil {
		return fmt.Errorf("progressive: %w", err)
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	perm := stats.Permutation(rng, db.Fact.NumRows())
	permDB, err := db.ReorderFact(perm)
	if err != nil {
		return fmt.Errorf("progressive: %w", err)
	}

	e.adopt(permDB, perm, opts, z)
	return nil
}

// PrepareReordered implements engine.ReorderedPreparer: db's fact table is
// already materialized in the sampling permutation perm — a durable
// checkpoint written from this engine's own SnapshotView — so the
// permutation draw and the reorder pass are skipped and the storage is
// adopted as-is. This is the warm-restart fast path: prepare cost becomes
// O(1) in the row count (plus the caller's checkpoint read).
func (e *Engine) PrepareReordered(db *dataset.Database, perm []uint32, opts engine.Options) error {
	if db.IsNormalized() {
		return fmt.Errorf("progressive: joins (normalized schemas) are not supported")
	}
	// The permutation covers the originally prepared prefix; rows beyond it
	// are post-checkpoint appends stored in arrival order, exactly as the
	// live Append path lays them out.
	if len(perm) > db.Fact.NumRows() {
		return fmt.Errorf("progressive: warm prepare: permutation has %d entries for %d rows", len(perm), db.Fact.NumRows())
	}
	opts = opts.Normalize()
	z, err := stats.ZScore(opts.Confidence)
	if err != nil {
		return fmt.Errorf("progressive: %w", err)
	}
	e.adopt(db, perm, opts, z)
	return nil
}

// adopt installs prepared (permutation-ordered) storage as the engine's
// current lineage; shared tail of Prepare and PrepareReordered.
func (e *Engine) adopt(permDB *dataset.Database, perm []uint32, opts engine.Options, z float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.db = permDB
	e.opts = opts
	e.z = z
	e.perm = perm
	e.scan = sharedscan.New(permDB.Fact.NumRows(), e.cfg.ChunkRows, opts.Parallelism)
	e.app = dataset.NewTableAppender(permDB.Fact, true) // caller hands over private storage
	e.def = nil                                         // default session re-opens lazily against the new scan
}

// SnapshotView implements engine.ViewSnapshotter: the current immutable
// database view plus the sampling permutation its prepared prefix is stored
// in. Appended batches land as arrival-order tail segments beyond the
// permuted prefix, matching exactly what PrepareReordered accepts back (the
// warm path re-adopts prefix + tail as the new prepared storage, with the
// permutation covering only the prefix — the documented ViewSnapshotter
// contract). Views are copy-on-write, so callers may serialize the result
// while ingestion continues.
func (e *Engine) SnapshotView() (*dataset.Database, []uint32) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.db, e.perm
}

// Append implements engine.Appender: the batch lands as a tail segment of
// the permuted storage (arrival order — the tail is not re-permuted, so the
// sequential-scan property of every chunk dispatch is preserved), the
// current view advances, and the shared scanner extends every registered
// query state with the tail as one more uncovered interval. Active queries
// therefore fold the new rows exactly once mid-sweep via the ordinary
// interval clipping, cached complete states re-arm and absorb just the
// delta, and quiesced results are exact over the grown table.
func (e *Engine) Append(rows *dataset.Table) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.db == nil {
		return engine.ErrNotPrepared
	}
	newFact, err := e.app.Append(rows)
	if err != nil {
		return fmt.Errorf("progressive: append: %w", err)
	}
	e.db = &dataset.Database{Fact: newFact, Dimensions: e.db.Dimensions}
	if err := e.scan.Extend(e.db, newFact.NumRows()); err != nil {
		return fmt.Errorf("progressive: append: %w", err)
	}
	return nil
}

// Watermark implements engine.Appender.
func (e *Engine) Watermark() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.db == nil {
		return 0
	}
	return int64(e.db.Fact.NumRows())
}

// OpenSession implements engine.Engine: the session captures the prepared
// storage and scanner, so sessions opened across a re-Prepare stay
// internally consistent (they keep riding the scan they were opened on).
func (e *Engine) OpenSession() engine.Session {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.newSessionLocked()
}

// newSessionLocked builds a session against the current prepared state.
// Caller holds e.mu.
func (e *Engine) newSessionLocked() *session {
	return &session{
		e:          e,
		cfg:        e.cfg,
		db:         e.db,
		z:          e.z,
		scan:       e.scan,
		states:     make(map[string]*sharedscan.Consumer),
		vizQueries: make(map[string]*query.Query),
	}
}

// defaultSession returns the engine-level shared session, opening it on
// first use after Prepare.
func (e *Engine) defaultSession() *session {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.def == nil {
		e.def = e.newSessionLocked()
	}
	return e.def
}

// StartQuery implements engine.Engine on the shared default session.
func (e *Engine) StartQuery(q *query.Query) (engine.Handle, error) {
	return e.defaultSession().StartQuery(q)
}

// LinkVizs implements engine.Engine on the shared default session.
func (e *Engine) LinkVizs(from, to string) { e.defaultSession().LinkVizs(from, to) }

// DeleteViz implements engine.Engine on the shared default session.
func (e *Engine) DeleteViz(name string) { e.defaultSession().DeleteViz(name) }

// WorkflowStart implements engine.Engine on the shared default session.
func (e *Engine) WorkflowStart() { e.defaultSession().WorkflowStart() }

// WorkflowEnd implements engine.Engine on the shared default session.
func (e *Engine) WorkflowEnd() { e.defaultSession().WorkflowEnd() }

// StateProgress reports the scan progress of the default session's cached
// state for q, used by tests and the speculation example to observe reuse.
func (e *Engine) StateProgress(q *query.Query) float64 {
	return e.defaultSession().stateProgress(q)
}

// ActiveScanConsumers reports how many consumers (across all sessions) are
// attached to the shared scanner right now. The serving layer's lifecycle
// tests use it to assert a disconnected client's queries left the scan.
func (e *Engine) ActiveScanConsumers() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.scan == nil {
		return 0
	}
	return e.scan.ActiveConsumers()
}

// ShedSpeculation implements the engine.Shedder overload capability: it
// detaches every purely speculative consumer (across all sessions) from the
// shared scan and returns how many were shed. Foreground queries keep their
// strict priority untouched; shed consumers retain their coverage and
// resume if re-speculated or acquired later.
func (e *Engine) ShedSpeculation() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.scan == nil {
		return 0
	}
	return e.scan.ShedSpeculative()
}

var (
	_ engine.Engine       = (*Engine)(nil)
	_ engine.Appender     = (*Engine)(nil)
	_ engine.Shedder      = (*Engine)(nil)
	_ engine.ScanObserver = (*Engine)(nil)
)

// session is one analyst's scope on the prepared engine: its own reuse
// cache, viz-name map and speculation round, all riding the engine's shared
// scanner. Consumers are keyed by query signature per session, so two users
// issuing the same query keep separate states (each costs only a per-chunk
// fold on the shared sweep) and one user cancelling or reusing never
// surprises another.
type session struct {
	e   *Engine
	cfg Config

	mu sync.Mutex
	// db/z/scan bind to the engine's prepared state: at OpenSession when
	// the engine is already prepared, otherwise lazily on first use (a
	// session opened at connection time, before the data loads, starts
	// working once Prepare succeeds — the same contract as the stateless
	// engines). Once bound, a session keeps riding the scan it bound to
	// even across a re-Prepare.
	db         *dataset.Database
	z          float64
	scan       *sharedscan.Scanner
	states     map[string]*sharedscan.Consumer
	vizQueries map[string]*query.Query
	specs      []*sharedscan.Consumer // current round of speculation targets
}

// bindLocked late-binds an unprepared-at-open session to the engine's
// current prepared state, and refreshes the table view of a session bound
// to the engine's current scan — live ingestion publishes a grown view per
// batch, and new queries must compile against it (a plan compiled on a
// stale view could not cover the scanner's extended row range). A session
// bound to an older scan (opened before a re-Prepare) keeps its state.
// Caller holds s.mu.
func (s *session) bindLocked() {
	s.e.mu.Lock()
	if s.db == nil || s.scan == s.e.scan {
		s.db, s.z, s.scan = s.e.db, s.e.z, s.e.scan
	}
	s.e.mu.Unlock()
}

// StartQuery implements engine.Session. If the session caches a state for
// the same query signature (from reuse or speculation) execution resumes
// from it, otherwise a fresh consumer attaches to the shared scan at the
// cursor's current offset. There is no per-query goroutine: the handle holds
// a foreground reference on the consumer, and the scheduler's workers drive
// it to completion.
func (s *session) StartQuery(q *query.Query) (engine.Handle, error) {
	s.mu.Lock()
	s.bindLocked()
	if s.db == nil {
		s.mu.Unlock()
		return nil, engine.ErrNotPrepared
	}
	st, err := s.stateLocked(q)
	if err != nil {
		s.mu.Unlock()
		return nil, err
	}
	qc := *q
	s.vizQueries[q.VizName] = &qc
	z := s.z
	s.mu.Unlock()

	h := engine.NewAsyncHandle()
	h.SetSnapshotFunc(func() *query.Result { return st.Snapshot(z) })
	h.SetPartialFunc(st.PartialSnapshot)
	if st.IsDone() {
		// Full reuse: the cached state already covers every row.
		h.Finish()
		return h, nil
	}
	st.Acquire()
	var once sync.Once
	finish := func() {
		once.Do(func() {
			st.Release()
			h.Finish()
		})
	}
	deregister := st.WhenDone(finish)
	h.SetCancelFunc(func() {
		// Cancel: drop the reference (coverage stays cached) and withdraw
		// the completion callback so cancelled handles do not pile up on a
		// consumer that may never finish.
		finish()
		deregister()
	})
	return h, nil
}

// stateLocked returns the session's cached consumer for q's signature,
// creating it if needed. Caller holds s.mu.
func (s *session) stateLocked(q *query.Query) (*sharedscan.Consumer, error) {
	sig := q.Signature()
	if st, ok := s.states[sig]; ok {
		return st, nil
	}
	plan, err := engine.Compile(s.db, q)
	if err != nil {
		return nil, err
	}
	st := s.scan.NewConsumer(plan)
	s.states[sig] = st
	return st, nil
}

// LinkVizs implements engine.Session. With speculation enabled, establishing
// a link attaches the queries each single-bin selection on the source would
// trigger on the target as background consumers of the shared scan: they
// ride the same cursor as user queries but are suspended whenever a
// foreground query is attached (IDEA's scheduler gives user queries
// priority, so speculation consumes only think time), and cost one shared
// per-chunk fold instead of a competing full pass. A new link withdraws the
// previous round's targets (their partial coverage stays cached for reuse).
func (s *session) LinkVizs(from, to string) {
	if !s.cfg.Speculate {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	srcQ := s.vizQueries[from]
	dstQ := s.vizQueries[to]
	if srcQ == nil || dstQ == nil {
		return
	}
	if len(srcQ.Bins) == 0 {
		// A malformed or not-yet-validated source viz query has no bins to
		// derive selections from; speculating on it would panic below.
		return
	}
	srcState, ok := s.states[srcQ.Signature()]
	if !ok {
		return
	}
	srcSnap := srcState.Snapshot(s.z)
	srcBin := srcQ.Bins[0]
	dict := srcState.Plan().BinDicts[0]

	var targets []*sharedscan.Consumer
	for _, key := range srcSnap.SortedKeys() {
		if len(targets) >= s.cfg.MaxSpeculations {
			break
		}
		pred := query.SelectionPredicate(srcBin, key.A, dict)
		specQ := *dstQ
		specQ.Filter = dstQ.Filter.And(pred)
		st, err := s.stateLocked(&specQ)
		if err != nil {
			continue
		}
		targets = append(targets, st)
	}
	for _, old := range s.specs {
		old.Unspeculate()
	}
	s.specs = targets
	for _, st := range targets {
		st.Speculate()
	}
}

// DeleteViz implements engine.Session.
func (s *session) DeleteViz(name string) {
	s.mu.Lock()
	delete(s.vizQueries, name)
	s.mu.Unlock()
}

// WorkflowStart implements engine.Session: caches are per exploration
// workflow, so each workflow starts cold. Speculation targets are withdrawn
// and the dropped states are discarded from the scanner's extension
// registry (they will not be asked to absorb future ingest batches);
// consumers still referenced by in-flight handles finish their scan and
// then fall off the scheduler.
func (s *session) WorkflowStart() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, st := range s.specs {
		st.Unspeculate()
	}
	s.specs = nil
	if s.db != nil {
		for _, st := range s.states {
			st.Discard()
		}
		s.states = make(map[string]*sharedscan.Consumer)
		s.vizQueries = make(map[string]*query.Query)
	}
}

// WorkflowEnd implements engine.Session.
func (s *session) WorkflowEnd() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, st := range s.specs {
		st.Unspeculate()
	}
	s.specs = nil
}

// Close implements engine.Session: the session's speculation targets leave
// the scan and its cached states drop out of the extension registry; states
// referenced by in-flight handles finish on their own.
func (s *session) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, st := range s.specs {
		st.Unspeculate()
	}
	s.specs = nil
	for _, st := range s.states {
		st.Discard()
	}
	s.states = make(map[string]*sharedscan.Consumer)
}

// stateProgress reports the scan progress of the session's cached state.
func (s *session) stateProgress(q *query.Query) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.states[q.Signature()]
	if !ok {
		return 0
	}
	return st.Progress()
}

var _ engine.Session = (*session)(nil)
