// Package progressive implements the paper's IDEA analogue: a fully
// progressive online-aggregation engine. Data is scanned in a fixed random
// permutation so that any prefix is a uniform sample; a query's result can
// be polled at any time and carries CLT confidence margins. Completed and
// partial per-query states are cached by query signature and reused when the
// same query is issued again (Galakatos et al., "Revisiting Reuse for
// Approximate Query Processing"), and an experimental extension
// speculatively executes the queries every possible single-bin selection on
// a linked source visualization would trigger (paper Sec. 5.4 / Exp. 3).
package progressive

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"idebench/internal/dataset"
	"idebench/internal/engine"
	"idebench/internal/query"
	"idebench/internal/stats"
)

// Config tunes the engine.
type Config struct {
	// ChunkRows is the number of permuted rows folded between snapshot
	// opportunities (and cancellation checks). Default engine.BatchRows, so
	// each advance step is exactly one vectorized batch.
	ChunkRows int
	// Speculate enables the think-time speculation extension.
	Speculate bool
	// MaxSpeculations caps how many single-bin selections are speculated per
	// link (the source visualization may have hundreds of bins). Default 64.
	MaxSpeculations int
}

func (c Config) withDefaults() Config {
	if c.ChunkRows <= 0 {
		c.ChunkRows = engine.BatchRows
	}
	if c.MaxSpeculations <= 0 {
		c.MaxSpeculations = 64
	}
	return c
}

// Engine is the progressive engine.
type Engine struct {
	cfg Config

	mu         sync.Mutex
	db         *dataset.Database
	opts       engine.Options
	z          float64
	perm       []uint32
	states     map[string]*execState
	vizQueries map[string]*query.Query
	spec       *speculator

	// foreground counts in-flight StartQuery executions; the speculator
	// yields while it is non-zero so speculation only consumes think time,
	// never query time (IDEA's scheduler gives user queries priority).
	foreground atomic.Int64
}

// New returns an unprepared engine.
func New(cfg Config) *Engine { return &Engine{cfg: cfg.withDefaults()} }

// Name implements engine.Engine.
func (e *Engine) Name() string { return "progressive" }

// Prepare implements engine.Engine. IDEA ingests the raw data without
// pre-processing beyond loading; here that is one row permutation (the
// online-sampling order). Normalized schemas are rejected — the paper
// excludes IDEA from the join experiment because it does not support joins.
func (e *Engine) Prepare(db *dataset.Database, opts engine.Options) error {
	if db.IsNormalized() {
		return fmt.Errorf("progressive: joins (normalized schemas) are not supported")
	}
	opts = opts.Normalize()
	z, err := stats.ZScore(opts.Confidence)
	if err != nil {
		return fmt.Errorf("progressive: %w", err)
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	perm := stats.Permutation(rng, db.Fact.NumRows())

	e.mu.Lock()
	defer e.mu.Unlock()
	e.db = db
	e.opts = opts
	e.z = z
	e.perm = perm
	e.states = make(map[string]*execState)
	e.vizQueries = make(map[string]*query.Query)
	return nil
}

// StartQuery implements engine.Engine. If a cached state for the same query
// signature exists (from reuse or speculation) execution resumes from it,
// otherwise a fresh state starts from the beginning of the permutation.
func (e *Engine) StartQuery(q *query.Query) (engine.Handle, error) {
	e.mu.Lock()
	if e.db == nil {
		e.mu.Unlock()
		return nil, engine.ErrNotPrepared
	}
	st, err := e.stateLocked(q)
	if err != nil {
		e.mu.Unlock()
		return nil, err
	}
	qc := *q
	e.vizQueries[q.VizName] = &qc
	z, perm, chunk := e.z, e.perm, e.cfg.ChunkRows
	e.mu.Unlock()

	h := engine.NewAsyncHandle()
	h.SetSnapshotFunc(func() *query.Result { return st.snapshot(z) })
	e.foreground.Add(1)
	go func() {
		defer e.foreground.Add(-1)
		defer h.Finish()
		for !h.Cancelled() {
			if done := st.advance(perm, chunk); done {
				return
			}
		}
	}()
	return h, nil
}

// stateLocked returns the cached state for q's signature, creating it if
// needed. Caller holds e.mu.
func (e *Engine) stateLocked(q *query.Query) (*execState, error) {
	sig := q.Signature()
	if st, ok := e.states[sig]; ok {
		return st, nil
	}
	plan, err := engine.Compile(e.db, q)
	if err != nil {
		return nil, err
	}
	st := newExecState(plan)
	e.states[sig] = st
	return st, nil
}

// LinkVizs implements engine.Engine. With speculation enabled, establishing
// a link triggers background execution of the queries each single-bin
// selection on the source would cause on the target, exploiting think time.
func (e *Engine) LinkVizs(from, to string) {
	if !e.cfg.Speculate {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	srcQ := e.vizQueries[from]
	dstQ := e.vizQueries[to]
	if srcQ == nil || dstQ == nil {
		return
	}
	if len(srcQ.Bins) == 0 {
		// A malformed or not-yet-validated source viz query has no bins to
		// derive selections from; speculating on it would panic below.
		return
	}
	srcState, ok := e.states[srcQ.Signature()]
	if !ok {
		return
	}
	srcSnap := srcState.snapshot(e.z)
	srcBin := srcQ.Bins[0]
	dict := srcState.plan.BinDicts[0]

	var targets []*execState
	for _, key := range srcSnap.SortedKeys() {
		if len(targets) >= e.cfg.MaxSpeculations {
			break
		}
		pred := query.SelectionPredicate(srcBin, key.A, dict)
		specQ := *dstQ
		specQ.Filter = dstQ.Filter.And(pred)
		st, err := e.stateLocked(&specQ)
		if err != nil {
			continue
		}
		targets = append(targets, st)
	}
	if len(targets) == 0 {
		return
	}
	if e.spec == nil {
		e.spec = newSpeculator(e.perm, e.cfg.ChunkRows, &e.foreground)
	}
	e.spec.setTargets(targets)
}

// DeleteViz implements engine.Engine.
func (e *Engine) DeleteViz(name string) {
	e.mu.Lock()
	delete(e.vizQueries, name)
	e.mu.Unlock()
}

// WorkflowStart implements engine.Engine: caches are per exploration
// session, so each workflow starts cold.
func (e *Engine) WorkflowStart() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.spec != nil {
		e.spec.stop()
		e.spec = nil
	}
	if e.db != nil {
		e.states = make(map[string]*execState)
		e.vizQueries = make(map[string]*query.Query)
	}
}

// WorkflowEnd implements engine.Engine.
func (e *Engine) WorkflowEnd() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.spec != nil {
		e.spec.stop()
		e.spec = nil
	}
}

// StateProgress reports the scan progress of the cached state for q, used
// by tests and the speculation example to observe reuse.
func (e *Engine) StateProgress(q *query.Query) float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	st, ok := e.states[q.Signature()]
	if !ok {
		return 0
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if len(e.perm) == 0 {
		return 0
	}
	return float64(st.pos) / float64(len(e.perm))
}

var _ engine.Engine = (*Engine)(nil)

// execState is the shared, resumable execution state of one query
// signature. Multiple workers (foreground queries and the speculator) may
// advance the same state; the mutex serializes them and pos guarantees no
// row is folded twice.
type execState struct {
	mu   sync.Mutex
	plan *engine.Compiled
	gs   *engine.GroupState
	pos  int
}

func newExecState(plan *engine.Compiled) *execState {
	return &execState{plan: plan, gs: engine.NewGroupState(plan)}
}

// advance folds the next chunk of the permutation; it reports whether the
// scan is complete.
func (s *execState) advance(perm []uint32, chunk int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pos >= len(perm) {
		return true
	}
	hi := s.pos + chunk
	if hi > len(perm) {
		hi = len(perm)
	}
	s.gs.ScanRows(perm[s.pos:hi])
	s.pos = hi
	return s.pos >= len(perm)
}

// snapshot renders the current estimate with margins at critical value z.
func (s *execState) snapshot(z float64) *query.Result {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pos >= s.plan.NumRows {
		return s.gs.SnapshotExact()
	}
	return s.gs.SnapshotScaled(int64(s.pos), int64(s.plan.NumRows), 0, z)
}

// speculator advances a set of states round-robin on one background
// goroutine until stopped or all targets complete. One goroutine keeps the
// CPU cost of speculation bounded and predictable, and it yields whenever a
// foreground query is executing so speculation consumes only think time.
type speculator struct {
	mu         sync.Mutex
	targets    []*execState
	stopCh     chan struct{}
	once       sync.Once
	foreground *atomic.Int64
}

func newSpeculator(perm []uint32, chunk int, foreground *atomic.Int64) *speculator {
	sp := &speculator{stopCh: make(chan struct{}), foreground: foreground}
	go sp.loop(perm, chunk)
	return sp
}

func (sp *speculator) setTargets(ts []*execState) {
	sp.mu.Lock()
	sp.targets = ts
	sp.mu.Unlock()
}

func (sp *speculator) stop() { sp.once.Do(func() { close(sp.stopCh) }) }

func (sp *speculator) loop(perm []uint32, chunk int) {
	// One reusable timer serves every idle wait. The previous time.After
	// calls allocated a fresh timer per 50-100µs tick, which at idle-loop
	// frequency produced a steady garbage stream during think time — exactly
	// when speculation is supposed to be cheap.
	idle := time.NewTimer(time.Hour)
	if !idle.Stop() {
		<-idle.C
	}
	defer idle.Stop()
	// wait sleeps for d; it reports false when the speculator was stopped.
	wait := func(d time.Duration) bool {
		idle.Reset(d)
		select {
		case <-sp.stopCh:
			if !idle.Stop() {
				<-idle.C
			}
			return false
		case <-idle.C:
			return true
		}
	}
	for {
		select {
		case <-sp.stopCh:
			return
		default:
		}
		if sp.foreground.Load() > 0 {
			// A user query is running: stay out of its way.
			if !wait(50 * time.Microsecond) {
				return
			}
			continue
		}
		sp.mu.Lock()
		ts := sp.targets
		sp.mu.Unlock()
		if len(ts) == 0 {
			// No work yet; yield briefly without burning a core.
			if !wait(100 * time.Microsecond) {
				return
			}
			continue
		}
		allDone := true
		for _, st := range ts {
			select {
			case <-sp.stopCh:
				return
			default:
			}
			if sp.foreground.Load() > 0 {
				allDone = false
				break
			}
			if !st.advance(perm, chunk) {
				allDone = false
			}
		}
		if allDone {
			return
		}
	}
}
