package progressive

import (
	"testing"
	"time"

	"idebench/internal/engine"
	"idebench/internal/enginetest"
	"idebench/internal/query"
)

// TestMarginCoverage is a statistical validity check (the paper's
// "out of margin" sanity metric, Sec. 4.7): at a 95% confidence level the
// true value must fall inside the reported margin for roughly 95% of bins.
// We allow generous slack (>= 80%) because one partial snapshot yields few
// bins and the CLT is approximate for small per-bin counts.
func TestMarginCoverage(t *testing.T) {
	db := enginetest.SmallDB(400000, 99)
	e := New(Config{ChunkRows: 512})
	if err := e.Prepare(db, engine.Options{Confidence: 0.95, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	e.WorkflowStart()
	defer e.WorkflowEnd()

	q := enginetest.CountByCarrier()
	gt, err := enginetest.Exact(db, q)
	if err != nil {
		t.Fatal(err)
	}

	inMargin, total := 0, 0
	// Repeat over several fresh partial snapshots for statistical power.
	for rep := 0; rep < 10; rep++ {
		e.WorkflowStart() // cold state each repetition
		h, err := e.StartQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		var snap *query.Result
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			snap = h.Snapshot()
			if snap != nil && snap.RowsSeen > 5000 {
				break
			}
		}
		h.Cancel()
		<-h.Done()
		if snap == nil || snap.Complete || snap.RowsSeen == 0 {
			continue // machine raced to completion; skip this rep
		}
		for k, bv := range snap.Bins {
			gv, ok := gt.Bins[k]
			if !ok {
				continue
			}
			diff := bv.Values[0] - gv.Values[0]
			if diff < 0 {
				diff = -diff
			}
			if diff <= bv.Margins[0] {
				inMargin++
			}
			total++
		}
	}
	if total == 0 {
		t.Skip("no partial snapshots observed (machine too fast)")
	}
	coverage := float64(inMargin) / float64(total)
	if coverage < 0.80 {
		t.Errorf("margin coverage %.2f (%d/%d), want >= 0.80 at 95%% confidence",
			coverage, inMargin, total)
	}
}
