package progressive

import (
	"testing"
	"time"

	"idebench/internal/dataset"
	"idebench/internal/engine"
	"idebench/internal/enginetest"
	"idebench/internal/query"
)

func TestConformance(t *testing.T) {
	enginetest.Conformance(t, func() engine.Engine { return New(Config{}) }, true)
}

func TestMultiUserScenario(t *testing.T) {
	enginetest.MultiUserScenario(t, func() engine.Engine { return New(Config{}) }, true)
}

// A session opened before Prepare must start working once the engine is
// prepared (the stateless engines behave this way via NewEngineSession, so
// the progressive session late-binds to match).
func TestSessionOpenedBeforePrepare(t *testing.T) {
	e := New(Config{})
	sess := e.OpenSession()
	defer sess.Close()
	if _, err := sess.StartQuery(enginetest.CountByCarrier()); err == nil {
		t.Fatal("StartQuery on an unprepared engine should fail")
	}
	db := enginetest.SmallDB(5000, 13)
	if err := e.Prepare(db, engine.Options{}); err != nil {
		t.Fatal(err)
	}
	h, err := sess.StartQuery(enginetest.CountByCarrier())
	if err != nil {
		t.Fatalf("session opened before Prepare still unusable after Prepare: %v", err)
	}
	if res := enginetest.WaitResult(t, h, 30*time.Second); res == nil {
		t.Fatal("no result from late-bound session")
	}
}

func TestMultiUserScenarioSpeculative(t *testing.T) {
	enginetest.MultiUserScenario(t, func() engine.Engine { return New(Config{Speculate: true}) }, true)
}

func TestIngestScenario(t *testing.T) {
	enginetest.IngestScenario(t, func() engine.Engine { return New(Config{}) }, true)
}

func TestIngestScenarioSpeculative(t *testing.T) {
	enginetest.IngestScenario(t, func() engine.Engine { return New(Config{Speculate: true}) }, true)
}

func TestName(t *testing.T) {
	if New(Config{}).Name() != "progressive" {
		t.Error("name wrong")
	}
}

func TestRejectsNormalizedSchema(t *testing.T) {
	db := enginetest.NormalizedDB(100, 1)
	if err := New(Config{}).Prepare(db, engine.Options{}); err == nil {
		t.Error("progressive should reject normalized schemas (IDEA does not support joins)")
	}
}

func TestPartialSnapshotsImprove(t *testing.T) {
	db := enginetest.SmallDB(500000, 13)
	e := New(Config{ChunkRows: 1024})
	if err := e.Prepare(db, engine.Options{Seed: 2}); err != nil {
		t.Fatal(err)
	}
	e.WorkflowStart()
	defer e.WorkflowEnd()
	h, err := e.StartQuery(enginetest.CountByCarrier())
	if err != nil {
		t.Fatal(err)
	}
	// Poll immediately: should get a (possibly empty) snapshot without error.
	first := h.Snapshot()
	if first == nil {
		t.Fatal("progressive engine must always answer polls")
	}
	res := enginetest.WaitResult(t, h, 30*time.Second)
	if !res.Complete {
		t.Error("finished progressive query should be complete")
	}
	if res.RowsSeen < first.RowsSeen {
		t.Error("progress went backwards")
	}
	gt, _ := enginetest.Exact(db, enginetest.CountByCarrier())
	if err := enginetest.ResultsEqual(gt, res, 0); err != nil {
		t.Errorf("completed progressive result should be exact: %v", err)
	}
}

func TestPartialEstimateIsUnbiasedish(t *testing.T) {
	db := enginetest.SmallDB(200000, 17)
	e := New(Config{ChunkRows: 512})
	if err := e.Prepare(db, engine.Options{Seed: 3}); err != nil {
		t.Fatal(err)
	}
	e.WorkflowStart()
	defer e.WorkflowEnd()
	h, err := e.StartQuery(enginetest.CountByCarrier())
	if err != nil {
		t.Fatal(err)
	}
	// Grab an early snapshot, then cancel.
	var snap *query.Result
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		snap = h.Snapshot()
		if snap != nil && snap.RowsSeen > 1000 && !snap.Complete {
			break
		}
	}
	h.Cancel()
	<-h.Done()
	if snap == nil || snap.RowsSeen == 0 {
		t.Skip("machine too fast to catch a partial snapshot")
	}
	gt, _ := enginetest.Exact(db, enginetest.CountByCarrier())
	// Estimates should be within 25% of truth with >1000 random rows.
	if err := enginetest.ResultsEqual(gt, snap, 0.25); err != nil {
		t.Errorf("partial estimate too far off: %v", err)
	}
	if !snap.FiniteMargins() {
		t.Error("partial snapshot must carry finite margins")
	}
}

func TestResultReuseWithinWorkflow(t *testing.T) {
	db := enginetest.SmallDB(300000, 19)
	e := New(Config{})
	if err := e.Prepare(db, engine.Options{}); err != nil {
		t.Fatal(err)
	}
	e.WorkflowStart()
	q := enginetest.CountByCarrier()
	h1, err := e.StartQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	<-h1.Done()
	if p := e.StateProgress(q); p != 1 {
		t.Fatalf("state progress = %v, want 1", p)
	}
	// Re-issuing the same query must complete instantly from cache.
	start := time.Now()
	h2, err := e.StartQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	<-h2.Done()
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("reuse took %v, expected near-instant", elapsed)
	}
	res := h2.Snapshot()
	if res == nil || !res.Complete {
		t.Error("reused result should be complete")
	}

	// WorkflowStart clears the cache.
	e.WorkflowStart()
	if p := e.StateProgress(q); p != 0 {
		t.Errorf("cache survived WorkflowStart: progress %v", p)
	}
	e.WorkflowEnd()
}

func TestSpeculationWarmsLinkedQueries(t *testing.T) {
	db := enginetest.SmallDB(400000, 23)
	e := New(Config{Speculate: true, ChunkRows: 2048})
	if err := e.Prepare(db, engine.Options{}); err != nil {
		t.Fatal(err)
	}
	e.WorkflowStart()
	defer e.WorkflowEnd()

	// Source: count by carrier. Target: avg delay by distance.
	src := enginetest.CountByCarrier()
	dst := enginetest.AvgDelayByDistance()
	h1, _ := e.StartQuery(src)
	<-h1.Done()
	h2, _ := e.StartQuery(dst)
	<-h2.Done()

	e.LinkVizs(src.VizName, dst.VizName)
	time.Sleep(100 * time.Millisecond) // think time: speculation runs

	// The query a selection of carrier "AA" would trigger:
	dict := db.Fact.Column("carrier").Dict
	code, _ := dict.Lookup("AA")
	sel := query.SelectionPredicate(src.Bins[0], int64(code), dict)
	selQ := *dst
	selQ.Filter = dst.Filter.And(sel)

	if p := e.StateProgress(&selQ); p <= 0 {
		t.Error("speculation did not warm the selection query")
	}

	// Issuing the actual query picks up the speculative state.
	h3, err := e.StartQuery(&selQ)
	if err != nil {
		t.Fatal(err)
	}
	res := enginetest.WaitResult(t, h3, 30*time.Second)
	gt, _ := enginetest.Exact(db, &selQ)
	// Tolerance: permuted accumulation order shifts float sums in the last bits.
	if err := enginetest.ResultsEqual(gt, res, 1e-9); err != nil {
		t.Errorf("speculatively warmed query wrong: %v", err)
	}
}

// TestSpeculationSurvivesCompletedRound is the regression test for the old
// speculator lifecycle bug: its loop goroutine returned permanently once a
// round of targets finished (allDone), but e.spec stayed non-nil, so every
// later LinkVizs fed targets to a dead goroutine and speculation silently
// stopped for the rest of the run. With shared-scan execution each link
// round attaches fresh consumers, so a second link after a completed first
// round must still make progress.
func TestSpeculationSurvivesCompletedRound(t *testing.T) {
	db := enginetest.SmallDB(300000, 41)
	e := New(Config{Speculate: true, ChunkRows: 2048})
	if err := e.Prepare(db, engine.Options{}); err != nil {
		t.Fatal(err)
	}
	e.WorkflowStart()
	defer e.WorkflowEnd()

	src := enginetest.CountByCarrier()
	dst := enginetest.AvgDelayByDistance()
	h1, _ := e.StartQuery(src)
	<-h1.Done()
	h2, _ := e.StartQuery(dst)
	<-h2.Done()

	// Round 1: link src -> dst and wait until every speculated selection
	// completes (the condition that killed the old speculator).
	e.LinkVizs(src.VizName, dst.VizName)
	dict := db.Fact.Column("carrier").Dict
	round1 := make([]*query.Query, 0, len(enginetest.Carriers))
	for _, c := range enginetest.Carriers {
		code, _ := dict.Lookup(c)
		selQ := *dst
		selQ.Filter = dst.Filter.And(query.SelectionPredicate(src.Bins[0], int64(code), dict))
		round1 = append(round1, &selQ)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		done := 0
		for _, q := range round1 {
			if e.StateProgress(q) == 1 {
				done++
			}
		}
		if done == len(round1) {
			break
		}
		if !time.Now().Before(deadline) {
			t.Fatalf("round 1 speculation incomplete: %d/%d targets", done, len(round1))
		}
		time.Sleep(time.Millisecond)
	}

	// Round 2: link the other way. The old engine would silently do nothing.
	e.LinkVizs(dst.VizName, src.VizName)
	gt, err := enginetest.Exact(db, dst)
	if err != nil {
		t.Fatal(err)
	}
	keys := gt.SortedKeys()
	if len(keys) == 0 {
		t.Fatal("no distance bins in ground truth")
	}
	selQ2 := *src
	selQ2.Filter = src.Filter.And(query.SelectionPredicate(dst.Bins[0], keys[0].A, nil))
	deadline = time.Now().Add(30 * time.Second)
	for e.StateProgress(&selQ2) == 0 {
		if !time.Now().Before(deadline) {
			t.Fatal("second speculation round made no progress (speculator lifecycle bug)")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSpeculationDisabledByDefault(t *testing.T) {
	db := enginetest.SmallDB(50000, 29)
	e := New(Config{})
	if err := e.Prepare(db, engine.Options{}); err != nil {
		t.Fatal(err)
	}
	e.WorkflowStart()
	defer e.WorkflowEnd()
	src := enginetest.CountByCarrier()
	dst := enginetest.AvgDelayByDistance()
	h1, _ := e.StartQuery(src)
	<-h1.Done()
	h2, _ := e.StartQuery(dst)
	<-h2.Done()
	e.LinkVizs(src.VizName, dst.VizName)
	time.Sleep(20 * time.Millisecond)

	dict := db.Fact.Column("carrier").Dict
	code, _ := dict.Lookup("AA")
	selQ := *dst
	selQ.Filter = dst.Filter.And(query.SelectionPredicate(src.Bins[0], int64(code), dict))
	if p := e.StateProgress(&selQ); p != 0 {
		t.Error("speculation ran despite being disabled")
	}
}

func TestDeleteVizForgetsQuery(t *testing.T) {
	db := enginetest.SmallDB(10000, 31)
	e := New(Config{Speculate: true})
	if err := e.Prepare(db, engine.Options{}); err != nil {
		t.Fatal(err)
	}
	e.WorkflowStart()
	defer e.WorkflowEnd()
	src := enginetest.CountByCarrier()
	h, _ := e.StartQuery(src)
	<-h.Done()
	e.DeleteViz(src.VizName)
	// Linking a deleted viz must be a no-op (no panic, no speculation).
	e.LinkVizs(src.VizName, "ghost")
}

func TestMinMaxAggProgressive(t *testing.T) {
	db := enginetest.SmallDB(50000, 37)
	e := New(Config{})
	if err := e.Prepare(db, engine.Options{}); err != nil {
		t.Fatal(err)
	}
	q := &query.Query{
		VizName: "v",
		Table:   "flights",
		Bins:    []query.Binning{{Field: "carrier", Kind: dataset.Nominal}},
		Aggs: []query.Aggregate{
			{Func: query.Min, Field: "dep_delay"},
			{Func: query.Max, Field: "dep_delay"},
		},
	}
	h, err := e.StartQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	res := enginetest.WaitResult(t, h, 30*time.Second)
	gt, _ := enginetest.Exact(db, q)
	if err := enginetest.ResultsEqual(gt, res, 0); err != nil {
		t.Errorf("min/max mismatch: %v", err)
	}
}
