package exactdb

import (
	"testing"
	"time"

	"idebench/internal/engine"
	"idebench/internal/enginetest"
	"idebench/internal/query"
)

func TestConformance(t *testing.T) {
	enginetest.Conformance(t, func() engine.Engine { return New() }, true)
}

func TestMultiUserScenario(t *testing.T) {
	enginetest.MultiUserScenario(t, func() engine.Engine { return New() }, true)
}

func TestIngestScenario(t *testing.T) {
	enginetest.IngestScenario(t, func() engine.Engine { return New() }, true)
}

func TestName(t *testing.T) {
	if New().Name() != "exactdb" {
		t.Error("name wrong")
	}
}

func TestExactMatchesGroundTruthOnNormalized(t *testing.T) {
	db := enginetest.NormalizedDB(20000, 7)
	e := New()
	if err := e.Prepare(db, engine.Options{Parallelism: 4}); err != nil {
		t.Fatal(err)
	}
	q := &query.Query{
		VizName: "v",
		Table:   "flights",
		Bins:    []query.Binning{{Field: "carrier", Kind: 1}},
		Aggs: []query.Aggregate{
			{Func: query.Count},
			{Func: query.Avg, Field: "dep_delay"},
		},
	}
	h, err := e.StartQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	res := enginetest.WaitResult(t, h, 30*time.Second)
	gt, err := enginetest.Exact(db, q)
	if err != nil {
		t.Fatal(err)
	}
	if err := enginetest.ResultsEqual(gt, res, 1e-9); err != nil {
		t.Errorf("normalized join result mismatch: %v", err)
	}
	if !res.Complete {
		t.Error("exact result should be complete")
	}
	if !res.FiniteMargins() {
		t.Error("margins should be finite (zero)")
	}
}

func TestCancelledQueryYieldsNothing(t *testing.T) {
	db := enginetest.SmallDB(300000, 3)
	e := New()
	if err := e.Prepare(db, engine.Options{Parallelism: 2}); err != nil {
		t.Fatal(err)
	}
	h, err := e.StartQuery(enginetest.AvgDelayByDistance())
	if err != nil {
		t.Fatal(err)
	}
	h.Cancel() // cancel immediately; blocking model must not publish partials
	select {
	case <-h.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("cancel did not stop the query")
	}
	if h.Snapshot() != nil {
		t.Error("cancelled blocking query should have no result")
	}
}

func TestParallelismOne(t *testing.T) {
	db := enginetest.SmallDB(10000, 5)
	e := New()
	if err := e.Prepare(db, engine.Options{Parallelism: 1}); err != nil {
		t.Fatal(err)
	}
	h, err := e.StartQuery(enginetest.CountByCarrier())
	if err != nil {
		t.Fatal(err)
	}
	res := enginetest.WaitResult(t, h, 30*time.Second)
	gt, _ := enginetest.Exact(db, enginetest.CountByCarrier())
	if err := enginetest.ResultsEqual(gt, res, 0); err != nil {
		t.Error(err)
	}
}

func TestPrepareCopiesData(t *testing.T) {
	db := enginetest.SmallDB(100, 11)
	e := New()
	if err := e.Prepare(db, engine.Options{}); err != nil {
		t.Fatal(err)
	}
	// Mutating the caller's storage must not affect the engine's copy.
	orig := db.Fact.Column("dep_delay").Nums[0]
	db.Fact.Column("dep_delay").Nums[0] = 1e9
	q := &query.Query{
		VizName: "v",
		Table:   "flights",
		Bins:    []query.Binning{{Field: "dep_delay", Kind: 0, Width: 1e12}},
		Aggs:    []query.Aggregate{{Func: query.Max, Field: "dep_delay"}},
	}
	h, err := e.StartQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	res := enginetest.WaitResult(t, h, 10*time.Second)
	for _, bv := range res.Bins {
		if bv.Values[0] >= 1e9 {
			t.Error("engine saw caller mutation: data not copied")
		}
	}
	db.Fact.Column("dep_delay").Nums[0] = orig
}
