// Package exactdb implements the benchmark's analytical-column-store
// analogue (the paper's MonetDB): a blocking execution model where a query
// scans all rows in parallel and a result exists only once the exact answer
// is complete. Upon initiating a query its run time is unknown; if the
// driver's time requirement fires first, the query is cancelled and counts
// as a TR violation with no partial result.
package exactdb

import (
	"fmt"
	"sync"
	"sync/atomic"

	"idebench/internal/dataset"
	"idebench/internal/engine"
	"idebench/internal/query"
)

// chunkRows is the scan granularity: cancellation latency and work-stealing
// slice size. 64k rows (16 vectorized batches of engine.BatchRows) keeps
// cancellation in the tens of microseconds while amortizing the atomic
// fetch.
const chunkRows = 16 * engine.BatchRows

// Engine is a blocking, parallel, exact columnar engine.
type Engine struct {
	mu   sync.RWMutex
	db   *dataset.Database
	opts engine.Options
	app  *dataset.TableAppender // owns the private fact-copy lineage
}

// New returns an unprepared engine.
func New() *Engine { return &Engine{} }

// Name implements engine.Engine.
func (e *Engine) Name() string { return "exactdb" }

// Prepare ingests the database. Like a column store's CSV load, it
// materializes a private copy of every column; the copy dominates the data
// preparation time the driver reports.
func (e *Engine) Prepare(db *dataset.Database, opts engine.Options) error {
	copied, err := copyDatabase(db)
	if err != nil {
		return fmt.Errorf("exactdb: prepare: %w", err)
	}
	e.mu.Lock()
	e.db = copied
	e.opts = opts.Normalize()
	e.app = dataset.NewTableAppender(copied.Fact, true) // Prepare's copy is private
	e.mu.Unlock()
	return nil
}

// PrepareReordered implements engine.ReorderedPreparer. A blocking exact
// engine scans whatever order the storage is in, so a durable checkpoint
// (arrival order, perm ignored) is adopted without the defensive copy
// Prepare makes — the loader's freshly decoded storage is already private.
func (e *Engine) PrepareReordered(db *dataset.Database, _ []uint32, opts engine.Options) error {
	e.mu.Lock()
	e.db = db
	e.opts = opts.Normalize()
	e.app = dataset.NewTableAppender(db.Fact, true)
	e.mu.Unlock()
	return nil
}

// SnapshotView implements engine.ViewSnapshotter: the current immutable
// view in arrival order; there is no sampling permutation (nil).
func (e *Engine) SnapshotView() (*dataset.Database, []uint32) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.db, nil
}

// Append implements engine.Appender. A column store absorbs appends as
// storage growth: the batch lands on the fact columns and the next query's
// full exact scan recomputes over the grown table (the blocking execution
// model has no standing per-query state to maintain incrementally).
// In-flight scans keep reading the view they compiled against — their
// results carry the pre-append watermark.
func (e *Engine) Append(rows *dataset.Table) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.db == nil {
		return engine.ErrNotPrepared
	}
	newFact, err := e.app.Append(rows)
	if err != nil {
		return fmt.Errorf("exactdb: append: %w", err)
	}
	e.db = &dataset.Database{Fact: newFact, Dimensions: e.db.Dimensions}
	return nil
}

// Watermark implements engine.Appender.
func (e *Engine) Watermark() int64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.db == nil {
		return 0
	}
	return int64(e.db.Fact.NumRows())
}

// StartQuery implements engine.Engine: it launches a parallel scan and
// publishes the exact result when every worker finishes.
func (e *Engine) StartQuery(q *query.Query) (engine.Handle, error) {
	e.mu.RLock()
	db, opts := e.db, e.opts
	e.mu.RUnlock()
	if db == nil {
		return nil, engine.ErrNotPrepared
	}
	plan, err := engine.Compile(db, q)
	if err != nil {
		return nil, err
	}

	h := engine.NewAsyncHandle()
	go e.run(plan, h, opts.Parallelism)
	return h, nil
}

func (e *Engine) run(plan *engine.Compiled, h *engine.AsyncHandle, workers int) {
	defer h.Finish()
	n := plan.NumRows
	numChunks := (n + chunkRows - 1) / chunkRows
	if workers > numChunks {
		workers = numChunks
	}
	if workers < 1 {
		workers = 1
	}

	var next atomic.Int64
	states := make([]*engine.GroupState, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		states[w] = engine.NewGroupState(plan)
		wg.Add(1)
		go func(gs *engine.GroupState) {
			defer wg.Done()
			for {
				if h.Cancelled() {
					return
				}
				c := int(next.Add(1)) - 1
				if c >= numChunks {
					return
				}
				lo := c * chunkRows
				hi := lo + chunkRows
				if hi > n {
					hi = n
				}
				gs.ScanRange(lo, hi)
			}
		}(states[w])
	}
	wg.Wait()
	if h.Cancelled() {
		return // blocking model: a cancelled query yields nothing
	}
	merged := states[0]
	for _, s := range states[1:] {
		merged.Merge(s)
	}
	h.Publish(merged.SnapshotExact())
}

// OpenSession implements engine.Engine. Blocking exact scans carry no
// per-visualization state, so every session shares the engine directly.
func (e *Engine) OpenSession() engine.Session { return engine.NewEngineSession(e) }

// LinkVizs implements engine.Engine; a blocking engine ignores link hints.
func (e *Engine) LinkVizs(from, to string) {}

// DeleteViz implements engine.Engine; nothing is cached per visualization.
func (e *Engine) DeleteViz(name string) {}

// WorkflowStart implements engine.Engine.
func (e *Engine) WorkflowStart() {}

// WorkflowEnd implements engine.Engine.
func (e *Engine) WorkflowEnd() {}

var (
	_ engine.Engine   = (*Engine)(nil)
	_ engine.Appender = (*Engine)(nil)
)

// copyDatabase deep-copies column storage (dictionaries are shared: they are
// append-only and the engine never mutates them).
func copyDatabase(db *dataset.Database) (*dataset.Database, error) {
	fact, err := copyTable(db.Fact)
	if err != nil {
		return nil, err
	}
	out := &dataset.Database{Fact: fact}
	for _, d := range db.Dimensions {
		t, err := copyTable(d.Table)
		if err != nil {
			return nil, err
		}
		out.Dimensions = append(out.Dimensions, &dataset.Dimension{Table: t, FKColumn: d.FKColumn})
	}
	return out, nil
}

func copyTable(t *dataset.Table) (*dataset.Table, error) {
	cols := make([]*dataset.Column, len(t.Columns))
	for i, c := range t.Columns {
		nc := &dataset.Column{Field: c.Field, Dict: c.Dict}
		if c.Field.Kind == dataset.Nominal {
			nc.Codes = append([]uint32(nil), c.Codes...)
		} else {
			nc.Nums = append([]float64(nil), c.Nums...)
		}
		cols[i] = nc
	}
	return dataset.NewTable(t.Name, t.Schema, cols)
}
