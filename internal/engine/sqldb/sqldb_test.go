package sqldb

import (
	"database/sql"
	"testing"
	"time"

	"idebench/internal/dataset"
	"idebench/internal/engine"
	"idebench/internal/enginetest"
	"idebench/internal/query"
)

func TestConformance(t *testing.T) {
	enginetest.Conformance(t, func() engine.Engine { return NewSQLMem() }, true)
}

func TestMultiUserScenario(t *testing.T) {
	enginetest.MultiUserScenario(t, func() engine.Engine { return NewSQLMem() }, true)
}

func TestName(t *testing.T) {
	if NewSQLMem().Name() != "sqldb" {
		t.Error("name wrong")
	}
}

func TestMatchesGroundTruth2D(t *testing.T) {
	db := enginetest.SmallDB(25000, 3)
	e := NewSQLMem()
	if err := e.Prepare(db, engine.Options{}); err != nil {
		t.Fatal(err)
	}
	q := &query.Query{
		VizName: "v",
		Table:   "flights",
		Bins: []query.Binning{
			{Field: "carrier", Kind: dataset.Nominal},
			{Field: "distance", Kind: dataset.Quantitative, Width: 500},
		},
		Aggs: []query.Aggregate{
			{Func: query.Count},
			{Func: query.Avg, Field: "arr_delay"},
		},
		Filter: query.Filter{Predicates: []query.Predicate{
			{Field: "origin_state", Op: query.OpIn, Values: []string{"CA", "TX"}},
		}},
	}
	h, err := e.StartQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	res := enginetest.WaitResult(t, h, 30*time.Second)
	gt, err := enginetest.Exact(db, q)
	if err != nil {
		t.Fatal(err)
	}
	if err := enginetest.ResultsEqual(gt, res, 1e-9); err != nil {
		t.Errorf("sql round trip mismatch: %v", err)
	}
	if !res.Complete {
		t.Error("SQL result should be complete")
	}
}

func TestCancelledQueryDeliversNothing(t *testing.T) {
	db := enginetest.SmallDB(400000, 5)
	e := NewSQLMem()
	if err := e.Prepare(db, engine.Options{}); err != nil {
		t.Fatal(err)
	}
	h, err := e.StartQuery(enginetest.AvgDelayByDistance())
	if err != nil {
		t.Fatal(err)
	}
	h.Cancel()
	select {
	case <-h.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("cancel did not finish the query")
	}
	if h.Snapshot() != nil {
		t.Error("cancelled SQL query should deliver nothing")
	}
}

func TestBrokenBackend(t *testing.T) {
	e := New(func(db *dataset.Database) (*sql.DB, error) {
		return sql.Open("sqlmem", "nonexistent-dsn")
	})
	db := enginetest.SmallDB(100, 7)
	if err := e.Prepare(db, engine.Options{}); err == nil {
		t.Error("unreachable backend should fail Prepare")
	}
}

func TestDriverTRSemantics(t *testing.T) {
	// The SQL adapter behaves like a blocking engine under the benchmark
	// driver: an impossible TR yields a violation, a generous one an exact
	// result.
	db := enginetest.SmallDB(50000, 9)
	e := NewSQLMem()
	if err := e.Prepare(db, engine.Options{}); err != nil {
		t.Fatal(err)
	}
	h, err := e.StartQuery(enginetest.CountByCarrier())
	if err != nil {
		t.Fatal(err)
	}
	res := enginetest.WaitResult(t, h, 30*time.Second)
	gt, _ := enginetest.Exact(db, enginetest.CountByCarrier())
	if err := enginetest.ResultsEqual(gt, res, 0); err != nil {
		t.Error(err)
	}
}
