// Package sqldb is the benchmark's generic SQL system adapter: it drives
// any database reachable through database/sql by rendering each
// visualization query to SQL text (paper Fig. 4), executing it with
// QueryContext on its own goroutine, and parsing the rows back into a
// result. Execution is blocking (a classical analytical SQL system);
// cancellation propagates through the context, so TR-cancelled queries stop
// consuming backend resources.
//
// The package ships with a constructor for the in-process sqlmem backend —
// the configuration the test suite and experiments use — but any *sql.DB
// works: implement Opener to point it at PostgreSQL, MonetDB, etc.
package sqldb

import (
	"context"
	"database/sql"
	"fmt"
	"sync"
	"sync/atomic"

	"idebench/internal/dataset"
	"idebench/internal/engine"
	"idebench/internal/query"
	"idebench/internal/sqlmem"
)

// Opener connects the adapter to a concrete SQL backend: given the
// benchmark database (for schema/dictionary information and, for embedded
// backends, the data itself), it returns a live *sql.DB.
type Opener func(db *dataset.Database) (*sql.DB, error)

// counter disambiguates sqlmem DSNs across engine instances.
var counter atomic.Int64

// NewSQLMem returns an adapter backed by the in-process sqlmem driver.
func NewSQLMem() *Engine {
	return New(func(db *dataset.Database) (*sql.DB, error) {
		dsn := fmt.Sprintf("idebench-%d", counter.Add(1))
		return sqlmem.Register(dsn, db)
	})
}

// New returns an adapter using the given backend opener.
func New(open Opener) *Engine { return &Engine{open: open} }

// Engine is the database/sql-backed system adapter.
type Engine struct {
	open Opener

	mu   sync.RWMutex
	db   *dataset.Database
	sqdb *sql.DB
}

// Name implements engine.Engine.
func (e *Engine) Name() string { return "sqldb" }

// Prepare implements engine.Engine: open the backend connection pool.
func (e *Engine) Prepare(db *dataset.Database, opts engine.Options) error {
	sqdb, err := e.open(db)
	if err != nil {
		return fmt.Errorf("sqldb: open backend: %w", err)
	}
	if err := sqdb.Ping(); err != nil {
		return fmt.Errorf("sqldb: ping backend: %w", err)
	}
	e.mu.Lock()
	e.db = db
	e.sqdb = sqdb
	e.mu.Unlock()
	return nil
}

// StartQuery implements engine.Engine.
func (e *Engine) StartQuery(q *query.Query) (engine.Handle, error) {
	e.mu.RLock()
	db, sqdb := e.db, e.sqdb
	e.mu.RUnlock()
	if sqdb == nil {
		return nil, engine.ErrNotPrepared
	}
	// Validate eagerly so malformed queries fail at StartQuery like every
	// other engine, not asynchronously.
	if _, err := engine.Compile(db, q); err != nil {
		return nil, err
	}

	sqlText := q.ToSQL()
	h := engine.NewAsyncHandle()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		defer h.Finish()
		defer cancel()
		go func() { // propagate driver-side cancellation into the context
			<-h.Done()
			cancel()
		}()
		res, err := runSQL(ctx, sqdb, db, q, sqlText)
		if err != nil || h.Cancelled() {
			return // blocking model: nothing delivered on failure/cancel
		}
		h.Publish(res)
	}()
	return h, nil
}

// runSQL executes the text and converts rows back into a Result.
func runSQL(ctx context.Context, sqdb *sql.DB, db *dataset.Database, q *query.Query, sqlText string) (*query.Result, error) {
	rows, err := sqdb.QueryContext(ctx, sqlText)
	if err != nil {
		return nil, err
	}
	defer rows.Close()

	res := query.NewResult()
	res.TotalRows = int64(db.Fact.NumRows())
	res.RowsSeen = res.TotalRows
	res.Complete = true

	nBins, nAggs := len(q.Bins), len(q.Aggs)
	scan := make([]any, nBins+nAggs)
	binStr := make([]sql.NullString, nBins)
	binNum := make([]sql.NullInt64, nBins)
	aggVal := make([]float64, nAggs)
	for i, b := range q.Bins {
		if b.Kind == dataset.Nominal {
			scan[i] = &binStr[i]
		} else {
			scan[i] = &binNum[i]
		}
	}
	for i := range aggVal {
		scan[nBins+i] = &aggVal[i]
	}

	for rows.Next() {
		if err := rows.Scan(scan...); err != nil {
			return nil, fmt.Errorf("sqldb: scan: %w", err)
		}
		key, err := binKeyOf(db, q, binStr, binNum)
		if err != nil {
			return nil, err
		}
		bv := &query.BinValue{
			Values:  append([]float64(nil), aggVal...),
			Margins: make([]float64, nAggs),
		}
		res.Bins[key] = bv
	}
	if err := rows.Err(); err != nil {
		return nil, err
	}
	return res, nil
}

// binKeyOf maps returned bin columns onto the benchmark's bin keys:
// quantitative dimensions return the FLOOR() index directly; nominal
// dimensions return the value string, resolved through the column's
// dictionary so keys are comparable with ground truth.
func binKeyOf(db *dataset.Database, q *query.Query, binStr []sql.NullString, binNum []sql.NullInt64) (query.BinKey, error) {
	var comps [2]int64
	for i, b := range q.Bins {
		if b.Kind == dataset.Nominal {
			col, _, _, err := db.ResolveColumn(b.Field)
			if err != nil {
				return query.BinKey{}, err
			}
			code, ok := col.Dict.Lookup(binStr[i].String)
			if !ok {
				return query.BinKey{}, fmt.Errorf("sqldb: backend returned unknown value %q for %s",
					binStr[i].String, b.Field)
			}
			comps[i] = int64(code)
		} else {
			comps[i] = binNum[i].Int64
		}
	}
	return query.BinKey{A: comps[0], B: comps[1]}, nil
}

// OpenSession implements engine.Engine. database/sql connection pools are
// already safe for concurrent use, and the adapter keeps no per-viz state,
// so every session shares the engine (and the pool) directly.
func (e *Engine) OpenSession() engine.Session { return engine.NewEngineSession(e) }

// LinkVizs implements engine.Engine; a plain SQL backend ignores hints.
func (e *Engine) LinkVizs(from, to string) {}

// DeleteViz implements engine.Engine.
func (e *Engine) DeleteViz(name string) {}

// WorkflowStart implements engine.Engine.
func (e *Engine) WorkflowStart() {}

// WorkflowEnd implements engine.Engine.
func (e *Engine) WorkflowEnd() {}

var _ engine.Engine = (*Engine)(nil)
