package engine

import (
	"fmt"
	"math"
	"sort"
	"strconv"

	"idebench/internal/query"
	"idebench/internal/stats"
)

// Partial is the wire form of a GroupState: the raw per-bin accumulator
// moments of one execution fragment, before any estimator rendering. A shard
// ships Partials instead of rendered Results so the coordinator can merge
// fragments exactly as a local parallel scan merges its worker states —
// Welford parallel merge per aggregate, min/max folds, count sums — and then
// render once. Folding shards in a fixed order (sorted by shard ID) makes the
// merged accumulators, and therefore the rendered floats, bitwise-identical
// across runs regardless of which shard answered first.
//
// Bins are sorted by key so the encoding is canonical: two Partials of the
// same state marshal to the same bytes.
type Partial struct {
	// RowsSeen is the fragment's folded row count (the progressive scan
	// position); Population is the fragment's total row count at the version
	// it answers against.
	RowsSeen   int64 `json:"rows_seen"`
	Population int64 `json:"population"`
	// Watermark is the fragment's data version in absorbed fact rows — the
	// shard-local engine.Appender.Watermark axis. Coordinators translate it
	// to their global axis before applying the min-watermark rule.
	Watermark int64 `json:"watermark"`
	// Complete marks a fragment that has folded every row of its version.
	Complete bool         `json:"complete"`
	Bins     []PartialBin `json:"bins,omitempty"`
}

// PartialBin carries one bin's accumulator state.
type PartialBin struct {
	Key query.BinKey  `json:"key"`
	N   int64         `json:"n"`
	W   []WelfordWire `json:"w,omitempty"`
	// Mins/Maxs use F64 because untouched slots hold ±Inf, which
	// encoding/json rejects as bare floats.
	Mins []F64 `json:"mins,omitempty"`
	Maxs []F64 `json:"maxs,omitempty"`
}

// WelfordWire is the serialized form of stats.Welford's raw moments.
type WelfordWire struct {
	N    int64 `json:"n"`
	Mean F64   `json:"mean"`
	M2   F64   `json:"m2"`
}

// F64 is a float64 that marshals as its IEEE-754 bit pattern (a decimal
// uint64). JSON's decimal float syntax cannot represent ±Inf or NaN and a
// shortest-round-trip formatter is not guaranteed bit-stable across
// implementations; partial snapshots must survive the wire bit-for-bit or
// the scatter-gather determinism guarantee dies in transport.
type F64 float64

// MarshalJSON implements json.Marshaler.
func (f F64) MarshalJSON() ([]byte, error) {
	return strconv.AppendUint(nil, math.Float64bits(float64(f)), 10), nil
}

// UnmarshalJSON implements json.Unmarshaler.
func (f *F64) UnmarshalJSON(b []byte) error {
	u, err := strconv.ParseUint(string(b), 10, 64)
	if err != nil {
		return fmt.Errorf("engine: F64 wants IEEE-754 bits as a decimal uint64: %w", err)
	}
	*f = F64(math.Float64frombits(u))
	return nil
}

// Partial extracts the state's accumulators in wire form. rowsSeen,
// populationRows and watermark carry the same semantics as SnapshotScaled;
// complete marks a fully folded fragment.
func (g *GroupState) Partial(rowsSeen, populationRows, watermark int64, complete bool) *Partial {
	p := &Partial{
		RowsSeen:   rowsSeen,
		Population: populationRows,
		Watermark:  watermark,
		Complete:   complete,
		Bins:       make([]PartialBin, 0, len(g.Groups)),
	}
	for key, acc := range g.Groups {
		pb := PartialBin{
			Key:  key,
			N:    acc.N,
			W:    make([]WelfordWire, len(acc.W)),
			Mins: make([]F64, len(acc.Mins)),
			Maxs: make([]F64, len(acc.Maxs)),
		}
		for i := range acc.W {
			n, mean, m2 := acc.W[i].State()
			pb.W[i] = WelfordWire{N: n, Mean: F64(mean), M2: F64(m2)}
		}
		for i := range acc.Mins {
			pb.Mins[i] = F64(acc.Mins[i])
			pb.Maxs[i] = F64(acc.Maxs[i])
		}
		p.Bins = append(p.Bins, pb)
	}
	sort.Slice(p.Bins, func(i, j int) bool {
		a, b := p.Bins[i].Key, p.Bins[j].Key
		if a.A != b.A {
			return a.A < b.A
		}
		return a.B < b.B
	})
	return p
}

// PartialFold merges Partials back into an accumulator table and renders the
// merged state with the same estimator math a local GroupState uses. The
// caller controls fold order: feeding shards sorted by ID gives the
// bitwise-deterministic merge the serving tier promises. Not safe for
// concurrent use.
type PartialFold struct {
	aggs   []query.Aggregate
	groups map[query.BinKey]*Accum

	rowsSeen   int64
	population int64
	watermark  int64
	complete   bool
	added      int
}

// NewPartialFold starts an empty fold for a query with the given aggregates
// (ordering must match the Partials' producers — same query, same plan).
func NewPartialFold(aggs []query.Aggregate) *PartialFold {
	return &PartialFold{
		aggs:     aggs,
		groups:   make(map[query.BinKey]*Accum),
		complete: true,
	}
}

// Add folds one fragment in. Row counts and populations sum; Complete ANDs;
// the tracked watermark is the min over added fragments (callers merging
// across shards usually translate each shard's watermark to the global axis
// first and override via Render's return, but the raw min is the right
// default for fragments sharing one axis).
func (f *PartialFold) Add(p *Partial) {
	for _, pb := range p.Bins {
		acc, ok := f.groups[pb.Key]
		if !ok {
			acc = newAccum(len(f.aggs))
			f.groups[pb.Key] = acc
		}
		acc.N += pb.N
		for i := range acc.W {
			if i < len(pb.W) {
				acc.W[i].Merge(stats.WelfordFromState(pb.W[i].N, float64(pb.W[i].Mean), float64(pb.W[i].M2)))
			}
			if i < len(pb.Mins) && float64(pb.Mins[i]) < acc.Mins[i] {
				acc.Mins[i] = float64(pb.Mins[i])
			}
			if i < len(pb.Maxs) && float64(pb.Maxs[i]) > acc.Maxs[i] {
				acc.Maxs[i] = float64(pb.Maxs[i])
			}
		}
	}
	f.rowsSeen += p.RowsSeen
	f.population += p.Population
	f.complete = f.complete && p.Complete
	if f.added == 0 || p.Watermark < f.watermark {
		f.watermark = p.Watermark
	}
	f.added++
}

// Added reports how many fragments have been folded.
func (f *PartialFold) Added() int { return f.added }

// Watermark returns the minimum watermark over added fragments (0 before any
// Add).
func (f *PartialFold) Watermark() int64 { return f.watermark }

// Render materializes the merged state as a query.Result at the z critical
// value, sharing SnapshotScaled's estimator path bit-for-bit. The result's
// Watermark is the fold's min watermark; coordinators that translate shard
// watermarks onto a global axis overwrite it.
func (f *PartialFold) Render(z float64) *query.Result {
	res := renderScaled(f.groups, f.aggs, f.rowsSeen, f.population, f.watermark, 0, z)
	if !f.complete {
		res.Complete = false
	}
	return res
}
