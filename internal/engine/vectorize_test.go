package engine

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"idebench/internal/dataset"
	"idebench/internal/query"
)

// randomDB builds a randomized database: a fact table with two nominal and
// two quantitative columns, optionally normalized into a star schema with a
// dimension table reached through an FK column.
func randomDB(t *testing.T, rng *rand.Rand, rows int, normalized bool) *dataset.Database {
	t.Helper()
	card := 1 + rng.Intn(40)
	factSchema := dataset.MustSchema([]dataset.Field{
		{Name: "cat_a", Kind: dataset.Nominal},
		{Name: "cat_b", Kind: dataset.Nominal},
		{Name: "x", Kind: dataset.Quantitative},
		{Name: "y", Kind: dataset.Quantitative},
		{Name: "dim_fk", Kind: dataset.Quantitative},
	})
	dimRows := 1 + rng.Intn(12)
	fb := dataset.NewBuilder("fact", factSchema, rows)
	for i := 0; i < rows; i++ {
		fb.AppendString(0, fmt.Sprintf("a%d", rng.Intn(card)))
		fb.AppendString(1, fmt.Sprintf("b%d", rng.Intn(5)))
		fb.AppendNum(2, rng.NormFloat64()*100)
		fb.AppendNum(3, rng.Float64()*1e4-5e3)
		fb.AppendNum(4, float64(rng.Intn(dimRows)))
	}
	fact, err := fb.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !normalized {
		return &dataset.Database{Fact: fact}
	}
	dimSchema := dataset.MustSchema([]dataset.Field{
		{Name: "dim_cat", Kind: dataset.Nominal},
		{Name: "dim_q", Kind: dataset.Quantitative},
	})
	db := dataset.NewBuilder("dim", dimSchema, dimRows)
	for i := 0; i < dimRows; i++ {
		db.AppendString(0, fmt.Sprintf("d%d", i%7))
		db.AppendNum(1, float64(i)*3.5-10)
	}
	dim, err := db.Build()
	if err != nil {
		t.Fatal(err)
	}
	return &dataset.Database{
		Fact:       fact,
		Dimensions: []*dataset.Dimension{{Table: dim, FKColumn: "dim_fk"}},
	}
}

// randomQuery draws a query against randomDB's schema.
func randomQuery(rng *rand.Rand, normalized bool) *query.Query {
	nominals := []string{"cat_a", "cat_b"}
	quants := []string{"x", "y"}
	if normalized {
		nominals = append(nominals, "dim_cat")
		quants = append(quants, "dim_q")
	}
	randBin := func() query.Binning {
		if rng.Intn(2) == 0 {
			return query.Binning{Field: nominals[rng.Intn(len(nominals))], Kind: dataset.Nominal}
		}
		return query.Binning{
			Field:  quants[rng.Intn(len(quants))],
			Kind:   dataset.Quantitative,
			Width:  []float64{10, 250, 1e3}[rng.Intn(3)],
			Origin: []float64{0, -37.5}[rng.Intn(2)],
		}
	}
	q := &query.Query{
		VizName: "v",
		Table:   "fact",
		Bins:    []query.Binning{randBin()},
	}
	if rng.Intn(2) == 0 {
		q.Bins = append(q.Bins, randBin())
	}
	funcs := []query.AggFunc{query.Count, query.Sum, query.Avg, query.Min, query.Max}
	for n := 1 + rng.Intn(3); n > 0; n-- {
		f := funcs[rng.Intn(len(funcs))]
		agg := query.Aggregate{Func: f}
		if f != query.Count || rng.Intn(2) == 0 {
			agg.Field = quants[rng.Intn(len(quants))]
		}
		if f == query.Count && rng.Intn(2) == 0 {
			agg.Field = ""
		}
		q.Aggs = append(q.Aggs, agg)
	}
	for n := rng.Intn(3); n > 0; n-- {
		if rng.Intn(2) == 0 {
			vals := []string{fmt.Sprintf("a%d", rng.Intn(50)), "b1", "nope"}
			q.Filter.Predicates = append(q.Filter.Predicates, query.Predicate{
				Field: nominals[rng.Intn(len(nominals))], Op: query.OpIn,
				Values: vals[:1+rng.Intn(len(vals))],
			})
		} else {
			lo := rng.Float64()*400 - 200
			q.Filter.Predicates = append(q.Filter.Predicates, query.Predicate{
				Field: quants[rng.Intn(len(quants))], Op: query.OpRange,
				Lo: lo, Hi: lo + rng.Float64()*500 + 1,
			})
		}
	}
	return q
}

// fixFilterFields rewrites IN/range predicates whose field kind does not
// match the randomly drawn operator (the generator may pair them wrongly).
func fixFilterFields(q *query.Query) {
	for i, p := range q.Filter.Predicates {
		switch p.Op {
		case query.OpIn:
			switch p.Field {
			case "x", "y", "dim_q":
				q.Filter.Predicates[i].Field = "cat_a"
			}
		case query.OpRange:
			switch p.Field {
			case "cat_a", "cat_b", "dim_cat":
				q.Filter.Predicates[i].Field = "x"
			}
		}
	}
}

// assertStatesEqual compares two group states bitwise: identical bin keys
// and identical accumulator contents (counts, Welford moments, min/max).
func assertStatesEqual(t *testing.T, label string, want, got *GroupState) {
	t.Helper()
	if len(want.Groups) != len(got.Groups) {
		t.Fatalf("%s: %d groups, want %d", label, len(got.Groups), len(want.Groups))
	}
	for key, wa := range want.Groups {
		ga, ok := got.Groups[key]
		if !ok {
			t.Fatalf("%s: missing bin %v", label, key)
		}
		if !reflect.DeepEqual(wa, ga) {
			t.Fatalf("%s: bin %v accumulators differ:\n want %+v\n  got %+v", label, key, wa, ga)
		}
	}
}

// TestVectorizedMatchesScalar is the kernel property test: on randomized
// schemas, queries and filters, the batch path (dense and hash-map
// variants), the scalar reference path, and a chunk-split + Merge run all
// produce bitwise-identical group states.
func TestVectorizedMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		normalized := rng.Intn(3) == 0
		rows := rng.Intn(3 * BatchRows) // covers empty, sub-batch and multi-batch
		db := randomDB(t, rng, rows, normalized)
		q := randomQuery(rng, normalized)
		fixFilterFields(q)
		if err := q.Validate(); err != nil {
			t.Fatalf("trial %d: invalid query: %v", trial, err)
		}
		plan, err := Compile(db, q)
		if err != nil {
			t.Fatalf("trial %d: compile: %v", trial, err)
		}
		planMap, err := Compile(db, q)
		if err != nil {
			t.Fatal(err)
		}
		planMap.disableDense()

		ref := NewGroupState(plan)
		ref.ScanRangeScalar(0, plan.NumRows)

		vec := NewGroupState(plan)
		vec.ScanRange(0, plan.NumRows)
		assertStatesEqual(t, fmt.Sprintf("trial %d range (dense=%v)", trial, plan.denseOK), ref, vec)

		viaMap := NewGroupState(planMap)
		viaMap.ScanRange(0, plan.NumRows)
		assertStatesEqual(t, fmt.Sprintf("trial %d range map-path", trial), ref, viaMap)

		// Explicit row lists in permuted order (the progressive engines'
		// access pattern): scalar and batch must agree row-for-row.
		perm := rng.Perm(plan.NumRows)
		rowsList := make([]uint32, len(perm))
		for i, p := range perm {
			rowsList[i] = uint32(p)
		}
		prefix := rowsList[:rng.Intn(len(rowsList)+1)]
		refRows := NewGroupState(plan)
		refRows.ScanRowsScalar(prefix)
		vecRows := NewGroupState(plan)
		vecRows.ScanRows(prefix)
		assertStatesEqual(t, fmt.Sprintf("trial %d rows", trial), refRows, vecRows)

		// Chunked parallel-scan shape: split into worker states and Merge.
		// Merged Welford moments differ bitwise from a sequential whole
		// scan (parallel-merge vs sequential folding), so the whole-scan
		// comparison checks counts; the full accumulator contents are
		// checked dense-vs-map, where the op order is identical.
		if plan.NumRows > 1 {
			split := 1 + rng.Intn(plan.NumRows-1)
			a, b := NewGroupState(plan), NewGroupState(planMap)
			a.ScanRange(0, split)
			b.ScanRange(split, plan.NumRows)
			a.Merge(b)
			am, bm := NewGroupState(planMap), NewGroupState(plan)
			am.ScanRange(0, split)
			bm.ScanRange(split, plan.NumRows)
			am.Merge(bm)
			assertStatesEqual(t, fmt.Sprintf("trial %d merge dense-vs-map", trial), a, am)
			whole := NewGroupState(plan)
			whole.ScanRange(0, plan.NumRows)
			if len(a.Groups) != len(whole.Groups) {
				t.Fatalf("trial %d merge: %d groups, want %d", trial, len(a.Groups), len(whole.Groups))
			}
			for key, wa := range whole.Groups {
				ga, ok := a.Groups[key]
				if !ok {
					t.Fatalf("trial %d merge: missing bin %v", trial, key)
				}
				if wa.N != ga.N {
					t.Fatalf("trial %d merge: bin %v N=%d, want %d", trial, key, ga.N, wa.N)
				}
			}
		}
	}
}

// TestInMapPredKernel exercises the map-fallback IN kernel directly: it is
// only selected for dictionaries beyond inBitmapMax, far larger than the
// randomized property test builds, so it gets a dedicated check — in both
// its direct and FK-indirected forms, against the equivalent bitmap kernel.
func TestInMapPredKernel(t *testing.T) {
	// Fact rows 0..5 carry codes into a 4-entry "dictionary"; FK rows remap
	// fact rows onto a 4-row dimension whose codes slice is SHORTER than the
	// fact table, catching any kernel that indexes codes by fact row.
	factCodes := []uint32{0, 2, 1, 3, 2, 0}
	dimCodes := []uint32{3, 0, 2, 1}
	fk := []float64{3, 1, 0, 2, 3, 1}
	want := map[uint32]struct{}{0: {}, 2: {}}
	bits := []bool{true, false, true, false}

	check := func(label string, got, exp predKernel) {
		t.Helper()
		g := got.selectRange(0, 6, nil)
		e := exp.selectRange(0, 6, nil)
		if !reflect.DeepEqual(g, e) {
			t.Errorf("%s selectRange = %v, want %v", label, g, e)
		}
		rows := []uint32{5, 3, 0, 4, 1, 2}
		g = got.selectRows(rows, nil)
		e = exp.selectRows(rows, nil)
		if !reflect.DeepEqual(g, e) {
			t.Errorf("%s selectRows = %v, want %v", label, g, e)
		}
		g = got.refine(append([]uint32(nil), rows...))
		e = exp.refine(append([]uint32(nil), rows...))
		if !reflect.DeepEqual(g, e) {
			t.Errorf("%s refine = %v, want %v", label, g, e)
		}
	}
	check("direct",
		inMapPred{codes: factCodes, want: want},
		inBitmapDirectPred{codes: factCodes, want: bits})
	check("fk",
		inMapPred{codes: dimCodes, fk: fk, want: want},
		inBitmapFKPred{codes: dimCodes, fk: fk, want: bits})
}

// TestDenseSlotRoundTrip checks the dense key<->slot mapping on 1D and 2D
// plans, including negative quantitative bin indices.
func TestDenseSlotRoundTrip(t *testing.T) {
	c := &Compiled{denseOK: true, denseLoA: -3, denseSizeA: 10, denseLoB: 0, denseSizeB: 1}
	for a := int64(-3); a < 7; a++ {
		slot, ok := c.denseSlot(query.BinKey{A: a})
		if !ok {
			t.Fatalf("key %d not in domain", a)
		}
		if got := c.denseKey(slot); got.A != a || got.B != 0 {
			t.Fatalf("roundtrip %d -> %d -> %v", a, slot, got)
		}
	}
	if _, ok := c.denseSlot(query.BinKey{A: 7}); ok {
		t.Fatal("key above domain accepted")
	}
	if _, ok := c.denseSlot(query.BinKey{A: -4}); ok {
		t.Fatal("key below domain accepted")
	}

	c2 := &Compiled{denseOK: true, denseLoA: 0, denseSizeA: 4, denseLoB: -2, denseSizeB: 5}
	seen := make(map[int]bool)
	for a := int64(0); a < 4; a++ {
		for b := int64(-2); b < 3; b++ {
			key := query.BinKey{A: a, B: b}
			slot, ok := c2.denseSlot(key)
			if !ok {
				t.Fatalf("key %v not in domain", key)
			}
			if seen[slot] {
				t.Fatalf("slot %d reused", slot)
			}
			seen[slot] = true
			if got := c2.denseKey(slot); got != key {
				t.Fatalf("roundtrip %v -> %d -> %v", key, slot, got)
			}
		}
	}
	if len(seen) != 20 {
		t.Fatalf("%d distinct slots, want 20", len(seen))
	}
}
