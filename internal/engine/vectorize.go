package engine

import "idebench/internal/dataset"

// This file holds the vectorized execution kernels: type-specialized loops
// that evaluate one query operator over a whole batch of rows at a time,
// reading raw column slices directly. They replace the per-row closure calls
// of the scalar reference path (compile.go) on the hot scan path.
//
// Execution model per batch (≤ BatchRows rows, a range [lo,hi) or an
// explicit row list):
//
//  1. Predicate kernels produce a selection vector — the absolute row
//     indices that pass the filter. The first predicate materializes the
//     vector; the remaining predicates refine it in place.
//  2. Bin-key kernels fill an []int64 key buffer for the selected rows.
//  3. Aggregate kernels gather input values into []float64 buffers.
//  4. GroupState.accumulate folds the buffers into per-bin accumulators,
//     through a flat array when the bin-key domain is small (dense fast
//     path) and through the hash map otherwise.
//
// All kernels preserve row order, so every bin's accumulator observes the
// exact same value sequence as the scalar path and results are bitwise
// identical (vectorize_test.go asserts this on randomized schemas).

// BatchRows is the batch granularity: large enough to amortize per-batch
// overhead, small enough that selection vectors and key/value buffers stay
// L1/L2-resident (4096 rows ≈ 32 KiB per float64 buffer).
const BatchRows = 4096

// inBitmapMax caps the dictionary cardinality for which IN predicates build
// a []bool lookup table; beyond it they fall back to a map.
const inBitmapMax = 1 << 21

// ---------------------------------------------------------------------------
// Bin-key kernels

// binKernel computes bin-key components for a batch of rows.
type binKernel interface {
	// keysRange writes the keys of rows [lo, lo+len(dst)) into dst.
	keysRange(lo int, dst []int64)
	// keysSel writes the keys of the selected rows into dst
	// (len(dst) == len(sel)).
	keysSel(sel []uint32, dst []int64)
}

// nominalDirectBin bins by dictionary code of a fact-table column.
type nominalDirectBin struct{ codes []uint32 }

func (k nominalDirectBin) keysRange(lo int, dst []int64) {
	src := k.codes[lo : lo+len(dst)]
	for i, c := range src {
		dst[i] = int64(c)
	}
}

func (k nominalDirectBin) keysSel(sel []uint32, dst []int64) {
	for i, r := range sel {
		dst[i] = int64(k.codes[r])
	}
}

// nominalFKBin bins by dictionary code of a dimension column reached through
// the fact table's positional FK column.
type nominalFKBin struct {
	codes []uint32
	fk    []float64
}

func (k nominalFKBin) keysRange(lo int, dst []int64) {
	src := k.fk[lo : lo+len(dst)]
	for i, f := range src {
		dst[i] = int64(k.codes[int(f)])
	}
}

func (k nominalFKBin) keysSel(sel []uint32, dst []int64) {
	for i, r := range sel {
		dst[i] = int64(k.codes[int(k.fk[r])])
	}
}

// quantDirectBin bins a fact-table quantitative column by fixed width.
type quantDirectBin struct {
	nums          []float64
	width, origin float64
}

func (k quantDirectBin) keysRange(lo int, dst []int64) {
	src := k.nums[lo : lo+len(dst)]
	for i, v := range src {
		dst[i] = binIdx(v, k.width, k.origin)
	}
}

func (k quantDirectBin) keysSel(sel []uint32, dst []int64) {
	for i, r := range sel {
		dst[i] = binIdx(k.nums[r], k.width, k.origin)
	}
}

// quantFKBin bins an FK-indirected dimension quantitative column.
type quantFKBin struct {
	nums          []float64
	fk            []float64
	width, origin float64
}

func (k quantFKBin) keysRange(lo int, dst []int64) {
	src := k.fk[lo : lo+len(dst)]
	for i, f := range src {
		dst[i] = binIdx(k.nums[int(f)], k.width, k.origin)
	}
}

func (k quantFKBin) keysSel(sel []uint32, dst []int64) {
	for i, r := range sel {
		dst[i] = binIdx(k.nums[int(k.fk[r])], k.width, k.origin)
	}
}

// ---------------------------------------------------------------------------
// Aggregate-input kernels

// aggKernel gathers aggregate input values for a batch of rows.
type aggKernel interface {
	gatherRange(lo int, dst []float64)
	gatherSel(sel []uint32, dst []float64)
}

// numDirectAgg reads a fact-table quantitative column.
type numDirectAgg struct{ nums []float64 }

func (k numDirectAgg) gatherRange(lo int, dst []float64) {
	copy(dst, k.nums[lo:lo+len(dst)])
}

func (k numDirectAgg) gatherSel(sel []uint32, dst []float64) {
	for i, r := range sel {
		dst[i] = k.nums[r]
	}
}

// numFKAgg reads an FK-indirected dimension quantitative column.
type numFKAgg struct{ nums, fk []float64 }

func (k numFKAgg) gatherRange(lo int, dst []float64) {
	src := k.fk[lo : lo+len(dst)]
	for i, f := range src {
		dst[i] = k.nums[int(f)]
	}
}

func (k numFKAgg) gatherSel(sel []uint32, dst []float64) {
	for i, r := range sel {
		dst[i] = k.nums[int(k.fk[r])]
	}
}

// ---------------------------------------------------------------------------
// Predicate kernels

// predKernel evaluates one filter conjunct over a batch.
type predKernel interface {
	// selectRange appends the rows of [lo, hi) that pass to sel.
	selectRange(lo, hi int, sel []uint32) []uint32
	// selectRows appends the rows of the explicit list that pass to sel.
	selectRows(rows []uint32, sel []uint32) []uint32
	// refine keeps only the passing rows of sel, in place.
	refine(sel []uint32) []uint32
}

// rangeDirectPred is [lo, hi) on a fact-table quantitative column.
type rangeDirectPred struct {
	nums   []float64
	lo, hi float64
}

func (p rangeDirectPred) selectRange(lo, hi int, sel []uint32) []uint32 {
	src := p.nums[lo:hi]
	for i, v := range src {
		if v >= p.lo && v < p.hi {
			sel = append(sel, uint32(lo+i))
		}
	}
	return sel
}

func (p rangeDirectPred) selectRows(rows []uint32, sel []uint32) []uint32 {
	for _, r := range rows {
		if v := p.nums[r]; v >= p.lo && v < p.hi {
			sel = append(sel, r)
		}
	}
	return sel
}

func (p rangeDirectPred) refine(sel []uint32) []uint32 {
	out := sel[:0]
	for _, r := range sel {
		if v := p.nums[r]; v >= p.lo && v < p.hi {
			out = append(out, r)
		}
	}
	return out
}

// rangeFKPred is [lo, hi) on an FK-indirected dimension column.
type rangeFKPred struct {
	nums   []float64
	fk     []float64
	lo, hi float64
}

func (p rangeFKPred) selectRange(lo, hi int, sel []uint32) []uint32 {
	src := p.fk[lo:hi]
	for i, f := range src {
		if v := p.nums[int(f)]; v >= p.lo && v < p.hi {
			sel = append(sel, uint32(lo+i))
		}
	}
	return sel
}

func (p rangeFKPred) selectRows(rows []uint32, sel []uint32) []uint32 {
	for _, r := range rows {
		if v := p.nums[int(p.fk[r])]; v >= p.lo && v < p.hi {
			sel = append(sel, r)
		}
	}
	return sel
}

func (p rangeFKPred) refine(sel []uint32) []uint32 {
	out := sel[:0]
	for _, r := range sel {
		if v := p.nums[int(p.fk[r])]; v >= p.lo && v < p.hi {
			out = append(out, r)
		}
	}
	return out
}

// inOneDirectPred is the single-value IN — the shape every cross-viz brush
// selection produces — on a fact-table column.
type inOneDirectPred struct {
	codes []uint32
	only  uint32
}

func (p inOneDirectPred) selectRange(lo, hi int, sel []uint32) []uint32 {
	src := p.codes[lo:hi]
	for i, c := range src {
		if c == p.only {
			sel = append(sel, uint32(lo+i))
		}
	}
	return sel
}

func (p inOneDirectPred) selectRows(rows []uint32, sel []uint32) []uint32 {
	for _, r := range rows {
		if p.codes[r] == p.only {
			sel = append(sel, r)
		}
	}
	return sel
}

func (p inOneDirectPred) refine(sel []uint32) []uint32 {
	out := sel[:0]
	for _, r := range sel {
		if p.codes[r] == p.only {
			out = append(out, r)
		}
	}
	return out
}

// inOneFKPred is the single-value IN on an FK-indirected dimension column.
type inOneFKPred struct {
	codes []uint32
	fk    []float64
	only  uint32
}

func (p inOneFKPred) selectRange(lo, hi int, sel []uint32) []uint32 {
	src := p.fk[lo:hi]
	for i, f := range src {
		if p.codes[int(f)] == p.only {
			sel = append(sel, uint32(lo+i))
		}
	}
	return sel
}

func (p inOneFKPred) selectRows(rows []uint32, sel []uint32) []uint32 {
	for _, r := range rows {
		if p.codes[int(p.fk[r])] == p.only {
			sel = append(sel, r)
		}
	}
	return sel
}

func (p inOneFKPred) refine(sel []uint32) []uint32 {
	out := sel[:0]
	for _, r := range sel {
		if p.codes[int(p.fk[r])] == p.only {
			out = append(out, r)
		}
	}
	return out
}

// inBitmapDirectPred is the multi-value IN as a code-indexed lookup table.
type inBitmapDirectPred struct {
	codes []uint32
	want  []bool
}

func (p inBitmapDirectPred) selectRange(lo, hi int, sel []uint32) []uint32 {
	src := p.codes[lo:hi]
	for i, c := range src {
		if p.want[c] {
			sel = append(sel, uint32(lo+i))
		}
	}
	return sel
}

func (p inBitmapDirectPred) selectRows(rows []uint32, sel []uint32) []uint32 {
	for _, r := range rows {
		if p.want[p.codes[r]] {
			sel = append(sel, r)
		}
	}
	return sel
}

func (p inBitmapDirectPred) refine(sel []uint32) []uint32 {
	out := sel[:0]
	for _, r := range sel {
		if p.want[p.codes[r]] {
			out = append(out, r)
		}
	}
	return out
}

// inBitmapFKPred is the multi-value IN on an FK-indirected dimension column.
type inBitmapFKPred struct {
	codes []uint32
	fk    []float64
	want  []bool
}

func (p inBitmapFKPred) selectRange(lo, hi int, sel []uint32) []uint32 {
	src := p.fk[lo:hi]
	for i, f := range src {
		if p.want[p.codes[int(f)]] {
			sel = append(sel, uint32(lo+i))
		}
	}
	return sel
}

func (p inBitmapFKPred) selectRows(rows []uint32, sel []uint32) []uint32 {
	for _, r := range rows {
		if p.want[p.codes[int(p.fk[r])]] {
			sel = append(sel, r)
		}
	}
	return sel
}

func (p inBitmapFKPred) refine(sel []uint32) []uint32 {
	out := sel[:0]
	for _, r := range sel {
		if p.want[p.codes[int(p.fk[r])]] {
			out = append(out, r)
		}
	}
	return out
}

// inMapPred is the multi-value IN fallback for dictionaries too large for a
// lookup table; fk is nil for fact-table columns.
type inMapPred struct {
	codes []uint32
	fk    []float64
	want  map[uint32]struct{}
}

func (p inMapPred) match(r uint32) bool {
	idx := int(r)
	if p.fk != nil {
		idx = int(p.fk[r])
	}
	_, ok := p.want[p.codes[idx]]
	return ok
}

func (p inMapPred) selectRange(lo, hi int, sel []uint32) []uint32 {
	for r := lo; r < hi; r++ {
		if p.match(uint32(r)) {
			sel = append(sel, uint32(r))
		}
	}
	return sel
}

func (p inMapPred) selectRows(rows []uint32, sel []uint32) []uint32 {
	for _, r := range rows {
		if p.match(r) {
			sel = append(sel, r)
		}
	}
	return sel
}

func (p inMapPred) refine(sel []uint32) []uint32 {
	out := sel[:0]
	for _, r := range sel {
		if p.match(r) {
			out = append(out, r)
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Kernel construction (mirrors the closure builders in compile.go; both are
// derived from the same resolved column so they cannot disagree)

// binDomain is the compile-time key domain of one binning dimension, used to
// size the dense group-by array. known is false when the domain cannot be
// bounded (e.g. a quantitative column containing NaN).
type binDomain struct {
	lo    int64
	size  int64
	known bool
}

func newBinKernel(col *dataset.Column, fk *dataset.Column, b binShape) (binKernel, binDomain) {
	switch {
	case col.Field.Kind == dataset.Nominal && fk == nil:
		return nominalDirectBin{codes: col.Codes},
			binDomain{lo: 0, size: int64(col.Dict.Len()), known: true}
	case col.Field.Kind == dataset.Nominal:
		return nominalFKBin{codes: col.Codes, fk: fk.Nums},
			binDomain{lo: 0, size: int64(col.Dict.Len()), known: true}
	default:
		var k binKernel
		if fk == nil {
			k = quantDirectBin{nums: col.Nums, width: b.width, origin: b.origin}
		} else {
			k = quantFKBin{nums: col.Nums, fk: fk.Nums, width: b.width, origin: b.origin}
		}
		mn, mx, ok := col.MinMax()
		if !ok {
			return k, binDomain{}
		}
		lo := binIdx(mn, b.width, b.origin)
		hi := binIdx(mx, b.width, b.origin)
		return k, binDomain{lo: lo, size: hi - lo + 1, known: hi >= lo}
	}
}

// binShape carries the quantitative binning parameters into newBinKernel.
type binShape struct{ width, origin float64 }

func newAggKernel(col *dataset.Column, fk *dataset.Column) aggKernel {
	if fk == nil {
		return numDirectAgg{nums: col.Nums}
	}
	return numFKAgg{nums: col.Nums, fk: fk.Nums}
}

// newInPredKernel builds the IN kernel for resolved codes (already looked up
// in the column's dictionary; unknown values are absent).
func newInPredKernel(col *dataset.Column, fk *dataset.Column, want map[uint32]struct{}) predKernel {
	var fkNums []float64
	if fk != nil {
		fkNums = fk.Nums
	}
	if len(want) == 1 {
		var only uint32
		for c := range want {
			only = c
		}
		if fk == nil {
			return inOneDirectPred{codes: col.Codes, only: only}
		}
		return inOneFKPred{codes: col.Codes, fk: fkNums, only: only}
	}
	if n := col.Dict.Len(); n <= inBitmapMax {
		bits := make([]bool, n)
		for c := range want {
			if int(c) < n {
				bits[c] = true
			}
		}
		if fk == nil {
			return inBitmapDirectPred{codes: col.Codes, want: bits}
		}
		return inBitmapFKPred{codes: col.Codes, fk: fkNums, want: bits}
	}
	return inMapPred{codes: col.Codes, fk: fkNums, want: want}
}

func newRangePredKernel(col *dataset.Column, fk *dataset.Column, lo, hi float64) predKernel {
	if fk == nil {
		return rangeDirectPred{nums: col.Nums, lo: lo, hi: hi}
	}
	return rangeFKPred{nums: col.Nums, fk: fk.Nums, lo: lo, hi: hi}
}
