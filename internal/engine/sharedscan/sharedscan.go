// Package sharedscan implements a cooperative shared-scan scheduler for the
// progressive engines: one circular scan cursor per prepared table, driven by
// a bounded worker pool, that folds each chunk of sequential (permutation-
// ordered) storage through every attached consumer state.
//
// # Why a shared cursor
//
// Progressive execution previously ran one goroutine per in-flight query,
// each streaming the whole row permutation on its own. An interaction that
// re-queries N linked visualizations therefore made N independent full
// passes over memory. With a shared cursor, all concurrent consumers ride
// the same pass: a worker claims the next chunk [lo, hi) once and folds it
// through every attached consumer, so N-query throughput is bounded by one
// memory sweep plus N cheap per-chunk folds instead of N sweeps.
//
// # Wrap-around completion and uniformity
//
// A consumer attaches at the cursor's current offset and completes after the
// cursor wraps past its start — it observes the circular window
// [start, start+numRows) mod numRows, i.e. every row exactly once. Because
// the underlying storage holds rows in a fixed random permutation, any
// contiguous window of the scan order is still a uniform random sample of
// the table, so partial snapshots keep the same CLT confidence math as a
// from-the-front prefix scan (engine.GroupState.SnapshotScaled).
//
// Exactly-once folding does not depend on chunk alignment: each consumer
// tracks its uncovered row ranges, and the dispatcher clips every claimed
// chunk against them under the scheduler lock. That also gives pause/resume
// for free — a consumer detached mid-scan (a cancelled query whose partial
// state stays in the reuse cache) keeps its coverage and continues from
// wherever the cursor is when it reattaches, never folding a row twice.
//
// # Parallelism
//
// Up to the configured number of workers claim chunks concurrently; each
// worker folds into its own per-consumer engine.GroupState shard, so the hot
// loop takes no shared locks beyond chunk dispatch. Snapshots briefly lock
// all shards of one consumer and combine them with engine.GroupState.Merge.
//
// Foreground consumers (user queries) have strict priority: while any is
// attached, purely speculative consumers are suspended — not dispatched at
// all, coverage intact — and resume the moment foreground work drains. So
// speculation consumes think time, never query time, and costs one shared
// per-chunk fold instead of a competing full scan.
//
// # Live ingestion: Extend and delta consumers
//
// Extend grows the scanned table mid-flight: appended rows land as a tail
// segment of the sequential storage, the cursor's wrap point moves, and
// every registered consumer — attached or paused, mid-sweep or already
// complete — gains the tail as one more uncovered interval. The existing
// uncovered-interval clipping then delivers the new rows to each consumer
// exactly once, interleaved with whatever of the old region it had left; a
// consumer that had already completed is re-armed (fresh done epoch, stale
// cached final dropped) and finishes again once the tail is folded. Because
// the table view changed, Extend rebinds each consumer's compiled plan to
// the new view; worker shards migrate their accumulated state to the new
// plan on first touch (bin keys are plan-independent, so the merge is
// exact). Partial snapshots taken mid-extension scale against the extended
// population — the covered window is no longer a perfectly uniform sample
// of old+tail, an approximation the staleness metric (not the CLT margins)
// is the honest lens on; completed snapshots are exact regardless.
package sharedscan

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"idebench/internal/dataset"
	"idebench/internal/engine"
	"idebench/internal/query"
)

// span is a half-open row range [lo, hi).
type span struct{ lo, hi int }

// Scanner is the shared circular-scan scheduler for one prepared table. Its
// storage-facing contract is engine.GroupState.ScanRange, so it assumes the
// table rows are already materialized in scan (permutation) order.
type Scanner struct {
	numRows int
	chunk   int
	workers int

	mu     sync.Mutex
	pos    int         // next chunk start in [0, numRows)
	active []*Consumer // attached, with unassigned rows; foreground first
	idle   []int       // free worker ids; workers exit when active drains
	all    map[*Consumer]struct{}
}

// New returns a scheduler over numRows rows of sequential storage, claiming
// chunkRows rows per dispatch (default engine.BatchRows) and running at most
// workers scan goroutines (minimum 1).
func New(numRows, chunkRows, workers int) *Scanner {
	if chunkRows <= 0 {
		chunkRows = engine.BatchRows
	}
	if workers < 1 {
		workers = 1
	}
	s := &Scanner{numRows: numRows, chunk: chunkRows, workers: workers,
		all: make(map[*Consumer]struct{})}
	s.idle = make([]int, workers)
	for i := range s.idle {
		s.idle[i] = i
	}
	return s
}

// NumRows returns the scheduler's current row count (grows under Extend).
func (s *Scanner) NumRows() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.numRows
}

// Extend grows the scan to newRows rows: db must be the extended table view
// the appended tail belongs to. Every registered consumer's plan is rebound
// to the new view and its uncovered ranges gain the rows between its old
// target and newRows, so active states absorb the delta exactly once and
// already-complete states re-arm and run again over just the tail. Callers
// serialize Extend with their append path (one data version at a time).
func (s *Scanner) Extend(db *dataset.Database, newRows int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if newRows < s.numRows {
		return fmt.Errorf("sharedscan: extend to %d rows below current %d", newRows, s.numRows)
	}
	if newRows > s.numRows {
		s.numRows = newRows
	}
	var firstErr error
	// Plans are deduplicated by query signature: sessions routinely cache
	// the same query, and this loop runs under the scheduler lock every
	// worker needs per chunk claim — one compile per distinct query keeps
	// the scan stall per batch proportional to the query mix, not the
	// consumer count.
	plans := make(map[string]*engine.Compiled)
	for c := range s.all {
		oldTarget := int(c.target.Load())
		if oldTarget >= newRows {
			continue // already bound to this version (or a newer view)
		}
		q := c.plan.Load().Query
		sig := q.Signature()
		plan, ok := plans[sig]
		if !ok {
			var err error
			plan, err = engine.Compile(db, q)
			if err != nil {
				// A query that compiled against the old view failing against
				// the grown one means the append broke an invariant; surface
				// it and leave the consumer at its old version rather than
				// corrupting it.
				if firstErr == nil {
					firstErr = fmt.Errorf("sharedscan: extend consumer: %w", err)
				}
				continue
			}
			plans[sig] = plan
		}
		c.extendLocked(plan, oldTarget, newRows)
	}
	return firstErr
}

// ActiveConsumers returns how many consumers are currently attached to the
// scan (foreground and speculative). Observability for the serving layer's
// lifecycle tests: a disconnected client's queries must leave the scan.
func (s *Scanner) ActiveConsumers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.active)
}

// ShedSpeculative detaches every purely speculative consumer from the scan
// and withdraws its standing attachment, returning how many were shed. This
// is the overload valve: under admission pressure the serving layer drops
// background prefetch work before it rejects foreground queries. Coverage
// is retained — a shed consumer stays registered for Extend and resumes
// from where it left off on the next Acquire or Speculate — so shedding
// costs deferred speculation, never folded rows.
func (s *Scanner) ShedSpeculative() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for i := 0; i < len(s.active); {
		c := s.active[i]
		if c.fgRefs == 0 {
			c.spec = false
			c.attached = false
			s.active = append(s.active[:i], s.active[i+1:]...)
			n++
			continue
		}
		i++
	}
	return n
}

// NewConsumer creates a detached consumer for plan, which must be compiled
// against the current view of the scanner's table. The consumer's coverage
// target is the plan's row count: if the scan is extended before the plan's
// rows are fully dispatched the consumer rides along via Extend, and if the
// plan was compiled against a view slightly ahead of the scanner (a query
// racing an append) the cursor simply reaches the tail once Extend lands.
func (s *Scanner) NewConsumer(plan *engine.Compiled) *Consumer {
	c := &Consumer{
		s:      s,
		shards: make([]shard, s.workers),
		done:   make(chan struct{}),
	}
	c.plan.Store(plan)
	c.target.Store(int64(plan.NumRows))
	if plan.NumRows == 0 {
		c.completed = true
		close(c.done)
	} else {
		c.needed = []span{{0, plan.NumRows}}
	}
	// Publish only once fully initialized: from the moment the consumer is
	// in s.all, a concurrent Extend may mutate needed/target/done under
	// s.mu, and any state written here afterwards would race it (and could
	// overwrite an already-granted tail span, wedging the consumer short of
	// its target forever).
	s.mu.Lock()
	s.all[c] = struct{}{}
	s.mu.Unlock()
	return c
}

// spawnLocked starts workers while there are free ids and pending consumers.
func (s *Scanner) spawnLocked() {
	for len(s.idle) > 0 && len(s.active) > 0 {
		id := s.idle[len(s.idle)-1]
		s.idle = s.idle[:len(s.idle)-1]
		go s.worker(id)
	}
}

// worker claims chunks and folds them through the attached consumers until
// no consumer has unassigned rows left.
func (s *Scanner) worker(id int) {
	type task struct {
		c     *Consumer
		parts []span
	}
	var tasks []task
	for {
		s.mu.Lock()
		if len(s.active) == 0 {
			s.idle = append(s.idle, id)
			s.mu.Unlock()
			return
		}
		lo := s.pos
		hi := lo + s.chunk
		if hi > s.numRows {
			hi = s.numRows
		}
		// IDEA's scheduler gives user queries strict priority: while any
		// foreground consumer is attached, purely speculative consumers are
		// not dispatched at all — they stay attached with their coverage
		// intact and resume the moment foreground work drains, so
		// speculation consumes think time, never query time.
		fgActive := false
		for _, c := range s.active {
			if c.fgRefs > 0 {
				fgActive = true
				break
			}
		}
		tasks = tasks[:0]
		for i := 0; i < len(s.active); {
			c := s.active[i]
			if fgActive && c.fgRefs == 0 {
				i++ // suspended speculation target
				continue
			}
			if parts := c.takeLocked(lo, hi); len(parts) > 0 {
				tasks = append(tasks, task{c, parts})
			}
			if len(c.needed) == 0 {
				// Fully assigned: no more chunks for this consumer. Its
				// in-flight folds complete it.
				c.attached = false
				s.active = append(s.active[:i], s.active[i+1:]...)
				continue
			}
			i++
		}
		if hi == s.numRows {
			s.pos = 0
		} else {
			s.pos = hi
		}
		if len(tasks) == 0 {
			// Nobody dispatchable needed this chunk (resumed consumers
			// waiting for the cursor to reach their uncovered window): jump
			// straight to the nearest needed offset instead of sweeping dead
			// rows. Suspended speculation targets are excluded so the cursor
			// keeps serving foreground windows first.
			s.pos = s.nextNeededLocked(s.pos, fgActive)
		}
		s.mu.Unlock()
		for _, t := range tasks {
			t.c.fold(id, t.parts)
		}
		// Yield between dispatches so pollers (snapshot loops, the driver's
		// deadline checks) get the core promptly even when scan workers
		// saturate the machine: one voluntary reschedule per chunk costs
		// ~100ns against thousands of rows folded, and on a single-CPU host
		// it is the difference between first-snapshot latency of one chunk
		// and one preemption quantum (~10ms).
		runtime.Gosched()
	}
}

// nextNeededLocked returns the uncovered offset with the smallest circular
// distance from pos across the dispatchable consumers (pos itself if none):
// all of them normally, foreground ones only while foreground work exists.
func (s *Scanner) nextNeededLocked(pos int, fgOnly bool) int {
	best := -1
	for _, c := range s.active {
		if fgOnly && c.fgRefs == 0 {
			continue
		}
		for _, sp := range c.needed {
			d := sp.lo - pos
			if d < 0 {
				d += s.numRows
			}
			if best < 0 || d < best {
				best = d
			}
		}
	}
	if best < 0 {
		return pos
	}
	next := pos + best
	if next >= s.numRows {
		next -= s.numRows
	}
	return next
}

// shard is one worker's private accumulator for one consumer. Only worker w
// folds into shards[w], so the lock is uncontended on the hot path; snapshots
// take all shard locks of a consumer to get a consistent merge. plan records
// which view gs's kernels read: when an Extend rebinds the consumer, the
// shard migrates its accumulated state into a fresh state on the new plan
// the next time it folds (bin keys are plan-independent, so Merge is exact).
type shard struct {
	mu   sync.Mutex
	gs   *engine.GroupState
	plan *engine.Compiled
}

// Consumer is one query state riding the shared scan: the progressive
// engine's unit of reuse and speculation. It accumulates rows exactly once
// across attach/detach cycles (and across Extend-grown tails) and completes
// when every row of its current target version has been folded.
type Consumer struct {
	s      *Scanner
	plan   atomic.Pointer[engine.Compiled]
	target atomic.Int64 // rows of the data version this consumer covers

	// Scheduling state, guarded by s.mu.
	needed   []span // uncovered, unassigned row ranges
	attached bool
	fgRefs   int  // live foreground handles
	spec     bool // standing speculation target

	folded atomic.Int64 // rows folded into shards
	shards []shard
	// gate is the snapshot turnstile. Workers pass through it (lock+unlock,
	// uncontended in steady state) before taking their shard lock; snapshot
	// merges hold it while collecting every shard. Without it a poller can
	// starve: a worker re-acquires its shard lock back-to-back with ~100%
	// duty cycle, and mutex barging keeps the waiting snapshotter parked for
	// tens of milliseconds. The gate's duty cycle is near zero, so a waiting
	// merge gets in within one chunk fold.
	gate sync.Mutex

	// done is the current completion epoch's channel: closed when every row
	// of the current target is folded, replaced by Extend when a completed
	// consumer gains a tail to absorb. completed tracks the same condition
	// for polling. Both are guarded by doneMu.
	done      chan struct{}
	completed bool
	doneMu    sync.Mutex
	doneCbs   map[int]func()
	cbSeq     int
	finalMu   sync.Mutex
	final     *engine.GroupState // merged shards, cached after completion
}

// Plan returns the compiled plan the consumer currently accumulates for.
func (c *Consumer) Plan() *engine.Compiled { return c.plan.Load() }

// extendLocked grows the consumer's coverage to the new data version:
// rebind the plan, add the uncovered tail, re-arm completion. Caller holds
// s.mu.
func (c *Consumer) extendLocked(plan *engine.Compiled, oldTarget, newRows int) {
	c.plan.Store(plan)
	c.needed = append(c.needed, span{oldTarget, newRows})
	// Target store and final-cache clear share finalMu so a concurrent
	// Snapshot can never observe the old target and then cache its merge as
	// the (now stale) final state after this clear.
	c.finalMu.Lock()
	c.target.Store(int64(newRows))
	c.final = nil
	c.finalMu.Unlock()
	c.doneMu.Lock()
	if c.completed {
		c.completed = false
		c.done = make(chan struct{})
	}
	c.doneMu.Unlock()
	if c.fgRefs > 0 || c.spec {
		c.ensureAttachedLocked()
	}
}

// Discard unregisters the consumer from the scan's extension registry (a
// session dropping its cache): it receives no future data versions. An
// in-flight foreground handle keeps the consumer scanning to its current
// target; otherwise it detaches immediately.
func (c *Consumer) Discard() {
	s := c.s
	s.mu.Lock()
	delete(s.all, c)
	c.spec = false
	if c.fgRefs == 0 {
		c.detachLocked()
	}
	s.mu.Unlock()
}

// takeLocked claims the intersection of [lo, hi) with the consumer's
// uncovered ranges, removing it from needed. Caller holds s.mu.
func (c *Consumer) takeLocked(lo, hi int) []span {
	var out, rest []span
	touched := false
	for _, sp := range c.needed {
		if sp.hi <= lo || sp.lo >= hi {
			rest = append(rest, sp)
			continue
		}
		touched = true
		ilo, ihi := sp.lo, sp.hi
		if ilo < lo {
			rest = append(rest, span{ilo, lo})
			ilo = lo
		}
		if ihi > hi {
			ihi = hi
		}
		out = append(out, span{ilo, ihi})
		if ihi < sp.hi {
			rest = append(rest, span{ihi, sp.hi})
		}
	}
	if touched {
		c.needed = rest
	}
	return out
}

// fold accumulates the claimed spans into worker w's shard and completes the
// consumer when the last row of its current target lands. The shard's state
// migrates to the consumer's current plan first, so spans from an extended
// tail are always folded with kernels bound to the view that contains them.
func (c *Consumer) fold(w int, parts []span) {
	// Turnstile: let a pending snapshot merge cut in (see gate).
	c.gate.Lock()
	//lint:ignore SA2001 empty critical section is the turnstile handoff
	c.gate.Unlock()
	plan := c.plan.Load()
	sh := &c.shards[w]
	sh.mu.Lock()
	if sh.gs == nil {
		sh.gs = engine.NewGroupState(plan)
		sh.plan = plan
	} else if sh.plan != plan {
		ngs := engine.NewGroupState(plan)
		ngs.Merge(sh.gs)
		sh.gs = ngs
		sh.plan = plan
	}
	n := 0
	for _, sp := range parts {
		sh.gs.ScanRange(sp.lo, sp.hi)
		n += sp.hi - sp.lo
	}
	total := c.folded.Add(int64(n))
	sh.mu.Unlock()
	if total == c.target.Load() {
		c.finish()
	}
}

// finish closes the current done epoch and runs completion callbacks, once
// per epoch. Completion is re-validated under doneMu: the caller observed
// folded == target, but an Extend may have grown the target in between —
// completing then would close the re-armed epoch with the tail still
// uncovered and deliver a partial snapshot as final. (If the Extend lands
// after this validation instead, its re-arm runs behind the same mutex and
// reopens the epoch — the old version genuinely had completed.)
func (c *Consumer) finish() {
	c.doneMu.Lock()
	if c.completed || c.folded.Load() != c.target.Load() {
		c.doneMu.Unlock()
		return
	}
	c.completed = true
	close(c.done)
	cbs := make([]func(), 0, len(c.doneCbs))
	for _, fn := range c.doneCbs {
		cbs = append(cbs, fn)
	}
	c.doneCbs = nil
	c.doneMu.Unlock()
	for _, fn := range cbs {
		fn()
	}
}

// Done returns the current completion epoch's channel, closed when every
// row of the current target version has been folded. After an Extend the
// channel is a fresh one; callers holding a channel from a previous version
// were truthfully told that version completed.
func (c *Consumer) Done() <-chan struct{} {
	c.doneMu.Lock()
	defer c.doneMu.Unlock()
	return c.done
}

// IsDone reports whether the consumer has folded every row of its current
// target version.
func (c *Consumer) IsDone() bool {
	c.doneMu.Lock()
	defer c.doneMu.Unlock()
	return c.completed
}

// WhenDone registers fn to run at completion (immediately if already done).
// A callback registered before an Extend fires when the extended target
// completes — the handle it finishes then reflects the newest absorbed data
// version. The returned func deregisters fn if it has not yet run — callers
// whose interest ends early (a cancelled handle) must call it, or the
// closure and everything it retains would sit in the callback list of a
// consumer that may never complete.
func (c *Consumer) WhenDone(fn func()) (deregister func()) {
	c.doneMu.Lock()
	if c.completed {
		c.doneMu.Unlock()
		fn()
		return func() {}
	}
	if c.doneCbs == nil {
		c.doneCbs = make(map[int]func())
	}
	id := c.cbSeq
	c.cbSeq++
	c.doneCbs[id] = fn
	c.doneMu.Unlock()
	return func() {
		c.doneMu.Lock()
		delete(c.doneCbs, id)
		c.doneMu.Unlock()
	}
}

// RowsSeen returns the number of rows folded so far.
func (c *Consumer) RowsSeen() int64 { return c.folded.Load() }

// Target returns the row count of the data version the consumer is folding
// toward — its result watermark.
func (c *Consumer) Target() int64 { return c.target.Load() }

// Progress returns the folded fraction of the current target in [0, 1].
func (c *Consumer) Progress() float64 {
	target := c.target.Load()
	if target == 0 {
		return 1
	}
	return float64(c.folded.Load()) / float64(target)
}

// Acquire attaches the consumer on behalf of a foreground handle. Each
// Acquire must be balanced by Release.
func (c *Consumer) Acquire() {
	s := c.s
	s.mu.Lock()
	c.fgRefs++
	c.ensureAttachedLocked()
	s.mu.Unlock()
}

// Release drops one foreground reference. With no foreground handles left
// the consumer detaches — unless it is a standing speculation target, which
// keeps riding the scan through think time.
func (c *Consumer) Release() {
	s := c.s
	s.mu.Lock()
	if c.fgRefs > 0 {
		c.fgRefs--
	}
	if c.fgRefs == 0 && !c.spec {
		c.detachLocked()
	}
	s.mu.Unlock()
}

// Speculate attaches the consumer as a standing background target: it stays
// on the scan until complete, yielding dispatch order to foreground states.
func (c *Consumer) Speculate() {
	s := c.s
	s.mu.Lock()
	c.spec = true
	c.ensureAttachedLocked()
	s.mu.Unlock()
}

// Unspeculate withdraws the standing speculation attachment (a new link
// replaced this round's targets). The consumer stays attached while
// foreground handles still reference it, and its coverage is retained for
// reuse either way.
func (c *Consumer) Unspeculate() {
	s := c.s
	s.mu.Lock()
	c.spec = false
	if c.fgRefs == 0 {
		c.detachLocked()
	}
	s.mu.Unlock()
}

// Detach removes the consumer from the scan (cancelled query, discarded
// speculation). Coverage is retained; a later Acquire or Speculate resumes.
func (c *Consumer) Detach() {
	s := c.s
	s.mu.Lock()
	c.fgRefs = 0
	c.spec = false
	c.detachLocked()
	s.mu.Unlock()
}

// ensureAttachedLocked puts the consumer on the active list (foreground
// states ahead of speculative ones) and wakes workers. Caller holds s.mu.
func (c *Consumer) ensureAttachedLocked() {
	if len(c.needed) == 0 {
		return // fully assigned; in-flight folds (or done) finish it
	}
	s := c.s
	if c.attached {
		return
	}
	c.attached = true
	if c.fgRefs > 0 {
		i := 0
		for i < len(s.active) && s.active[i].fgRefs > 0 {
			i++
		}
		s.active = append(s.active, nil)
		copy(s.active[i+1:], s.active[i:])
		s.active[i] = c
	} else {
		s.active = append(s.active, c)
	}
	s.spawnLocked()
}

// detachLocked removes the consumer from the active list. Caller holds s.mu.
func (c *Consumer) detachLocked() {
	if !c.attached {
		return
	}
	c.attached = false
	for i, o := range c.s.active {
		if o == c {
			c.s.active = append(c.s.active[:i], c.s.active[i+1:]...)
			return
		}
	}
}

// mergeShards combines all worker shards into a fresh state, together with
// the rows-seen count the merge reflects. Holding every shard lock means no
// fold is in flight, so the count and the contents are consistent.
func (c *Consumer) mergeShards() (*engine.GroupState, int64) {
	c.gate.Lock()
	defer c.gate.Unlock()
	for i := range c.shards {
		c.shards[i].mu.Lock()
	}
	seen := c.folded.Load()
	merged := engine.NewGroupState(c.plan.Load())
	for i := range c.shards {
		if gs := c.shards[i].gs; gs != nil {
			merged.Merge(gs)
		}
	}
	for i := len(c.shards) - 1; i >= 0; i-- {
		c.shards[i].mu.Unlock()
	}
	return merged, seen
}

// Snapshot renders the current estimate: exact once every row of the
// current target version is folded, otherwise scaled with CLT margins at
// critical value z over the window seen so far. The result's watermark is
// the target version's row count.
func (c *Consumer) Snapshot(z float64) *query.Result {
	c.finalMu.Lock()
	final := c.final
	c.finalMu.Unlock()
	if final != nil {
		return final.SnapshotExact()
	}
	merged, seen := c.mergeShards()
	// Cache-or-scale decision under finalMu: extendLocked stores the grown
	// target and clears the stale final atomically with respect to this
	// block, so a merge of the old version can never be cached as the final
	// state of the new one.
	c.finalMu.Lock()
	target := c.target.Load()
	if seen == target {
		if c.final == nil {
			c.final = merged
		}
		c.finalMu.Unlock()
		return merged.SnapshotExact()
	}
	c.finalMu.Unlock()
	// The target version's row count is both the scaling population and the
	// absorbed-rows watermark: the consumer folds toward exactly the rows of
	// that data version.
	return merged.SnapshotScaled(seen, target, target, 0, z)
}

// PartialSnapshot extracts the consumer's current accumulator state in wire
// form (the engine.PartialSnapshotter capability): the merged worker shards,
// unrendered, for a scatter-gather coordinator to fold with other shards'
// fragments before estimating once. The fragment's population and watermark
// are the consumer's target version, exactly as in Snapshot.
func (c *Consumer) PartialSnapshot() *engine.Partial {
	c.finalMu.Lock()
	final := c.final
	c.finalMu.Unlock()
	if final != nil {
		t := c.target.Load()
		return final.Partial(t, t, t, true)
	}
	merged, seen := c.mergeShards()
	target := c.target.Load()
	return merged.Partial(seen, target, target, seen == target)
}
