package sharedscan

import (
	"testing"
)

// TestShedSpeculativeDetachesOnlyBackground pins the overload valve: shedding
// removes purely speculative consumers from the active scan, never foreground
// ones, and a shed consumer resumes with full coverage on its next Acquire.
func TestShedSpeculativeDetachesOnlyBackground(t *testing.T) {
	f := newFixture(t, 200_000, 1)
	s := New(f.db.Fact.NumRows(), 512, 1)

	fg := s.NewConsumer(f.plan(t, 0))
	fg.Acquire()
	spec := s.NewConsumer(f.plan(t, 1))
	spec.Speculate()
	spec2 := s.NewConsumer(f.plan(t, 2))
	spec2.Speculate()
	// A consumer that is both foreground and speculative counts as foreground.
	both := s.NewConsumer(f.plan(t, 0))
	both.Acquire()
	both.Speculate()

	if got := s.ActiveConsumers(); got != 4 {
		t.Fatalf("active consumers = %d, want 4", got)
	}
	if n := s.ShedSpeculative(); n != 2 {
		t.Fatalf("shed %d consumers, want 2 (the purely speculative pair)", n)
	}
	if got := s.ActiveConsumers(); got != 2 {
		t.Fatalf("active consumers after shed = %d, want 2 foreground", got)
	}
	if n := s.ShedSpeculative(); n != 0 {
		t.Fatalf("second shed removed %d consumers, want 0", n)
	}

	// Foreground work is untouched: both foreground consumers complete
	// exactly.
	waitDone(t, fg)
	fg.Release()
	resultsIdentical(t, "fg", f.exact(t, 0), fg.Snapshot(1.96))
	waitDone(t, both)
	both.Release()
	resultsIdentical(t, "both", f.exact(t, 0), both.Snapshot(1.96))

	// A shed consumer kept its coverage: re-acquiring resumes the scan from
	// where it stopped and still produces the exact result.
	spec.Acquire()
	waitDone(t, spec)
	spec.Release()
	resultsIdentical(t, "resumed", f.exact(t, 1), spec.Snapshot(1.96))

	// The other shed consumer resumes via speculation just as well.
	spec2.Speculate()
	waitDone(t, spec2)
	spec2.Unspeculate()
	resultsIdentical(t, "resumed-spec", f.exact(t, 2), spec2.Snapshot(1.96))
}
