package sharedscan

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"idebench/internal/dataset"
)

// ingestFixture wraps the shared-scan fixture with an append lineage, the
// shape the progressive engine drives under live ingestion.
type ingestFixture struct {
	*fixture
	app *dataset.TableAppender
}

func newIngestFixture(t testing.TB, rows int, seed int64) *ingestFixture {
	f := newFixture(t, rows, seed)
	return &ingestFixture{fixture: f, app: dataset.NewTableAppender(f.db.Fact, true)}
}

// appendBatch grows the fixture's table by n deterministic rows and returns
// the new view.
func (f *ingestFixture) appendBatch(t testing.TB, n int, seed int64) *dataset.Database {
	t.Helper()
	fact := f.db.Fact
	b := dataset.NewBuilder(fact.Name, fact.Schema, n)
	b.SetDict(0, fact.Columns[0].Dict)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		b.AppendString(0, fmt.Sprintf("c%d", rng.Intn(9))) // incl. codes new to the dict
		b.AppendNum(1, rng.NormFloat64()*80-5)
	}
	batch, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	view, err := f.app.Append(batch)
	if err != nil {
		t.Fatal(err)
	}
	f.db = &dataset.Database{Fact: view}
	return f.db
}

// TestExtendMidSweepExactlyOnce appends while a consumer is mid-sweep: the
// completed result must equal an independent scan of the final table — every
// old row and every tail row folded exactly once.
func TestExtendMidSweepExactlyOnce(t *testing.T) {
	f := newIngestFixture(t, 300000, 21)
	s := New(f.db.Fact.NumRows(), 256, 2)
	c := s.NewConsumer(f.plan(t, 0))
	c.Acquire()
	deadline := time.Now().Add(10 * time.Second)
	for c.RowsSeen() == 0 && time.Now().Before(deadline) {
	}
	if c.IsDone() {
		t.Skip("scan finished before the append could land mid-sweep")
	}
	db := f.appendBatch(t, 5000, 100)
	if err := s.Extend(db, db.Fact.NumRows()); err != nil {
		t.Fatal(err)
	}
	waitDone(t, c)
	c.Release()
	res := c.Snapshot(1.96)
	if !res.Complete {
		t.Fatal("extended consumer should complete over the grown table")
	}
	if res.Watermark != int64(db.Fact.NumRows()) {
		t.Fatalf("watermark %d, want %d", res.Watermark, db.Fact.NumRows())
	}
	resultsIdentical(t, "mid-sweep extend", f.exact(t, 0), res)
}

// TestExtendReArmsCompletedConsumer: a consumer that already completed must
// re-arm on Extend, absorb only the tail, and complete again with an exact
// result over the grown table.
func TestExtendReArmsCompletedConsumer(t *testing.T) {
	f := newIngestFixture(t, 50000, 22)
	s := New(f.db.Fact.NumRows(), 1024, 2)
	c := s.NewConsumer(f.plan(t, 0))
	c.Acquire()
	waitDone(t, c)
	c.Release()
	if !c.IsDone() {
		t.Fatal("consumer should be complete before the append")
	}
	firstFolded := c.RowsSeen()

	db := f.appendBatch(t, 3000, 200)
	if err := s.Extend(db, db.Fact.NumRows()); err != nil {
		t.Fatal(err)
	}
	if c.IsDone() {
		t.Fatal("extend must re-arm a completed consumer")
	}
	c.Acquire()
	waitDone(t, c)
	c.Release()
	if folded := c.RowsSeen(); folded != firstFolded+3000 {
		t.Fatalf("folded %d rows after extension, want %d (old coverage + tail only)",
			folded, firstFolded+3000)
	}
	resultsIdentical(t, "re-armed consumer", f.exact(t, 0), c.Snapshot(1.96))
}

// TestExtendDetachedConsumerResumes: a cancelled (detached) partial state
// gains the tail while detached and completes exactly after reattaching.
func TestExtendDetachedConsumerResumes(t *testing.T) {
	f := newIngestFixture(t, 300000, 23)
	s := New(f.db.Fact.NumRows(), 256, 1)
	c := s.NewConsumer(f.plan(t, 2))
	c.Acquire()
	deadline := time.Now().Add(10 * time.Second)
	for c.RowsSeen() < 1000 && time.Now().Before(deadline) {
	}
	c.Release() // detach with partial coverage
	if c.IsDone() {
		t.Skip("scan finished before detach")
	}
	db := f.appendBatch(t, 2000, 300)
	if err := s.Extend(db, db.Fact.NumRows()); err != nil {
		t.Fatal(err)
	}
	c.Acquire()
	waitDone(t, c)
	c.Release()
	resultsIdentical(t, "detached extend", f.exact(t, 2), c.Snapshot(1.96))
}

// TestExtendManyConsumersManyBatches stresses repeated extension with a mix
// of attached and completed consumers across several appends under worker
// parallelism; every consumer must land on the final table's exact answer.
func TestExtendManyConsumersManyBatches(t *testing.T) {
	f := newIngestFixture(t, 120000, 24)
	s := New(f.db.Fact.NumRows(), 512, 4)
	const n = 6
	consumers := make([]*Consumer, n)
	for i := range consumers {
		consumers[i] = s.NewConsumer(f.plan(t, i))
		consumers[i].Acquire()
	}
	for round := 0; round < 4; round++ {
		db := f.appendBatch(t, 1500+500*round, int64(400+round))
		if err := s.Extend(db, db.Fact.NumRows()); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
	for i, c := range consumers {
		waitDone(t, c)
		c.Release()
		resultsIdentical(t, fmt.Sprintf("consumer %d after 4 batches", i), f.exact(t, i), c.Snapshot(1.96))
	}
}

// TestDiscardStopsExtensions: a discarded consumer keeps its coverage but
// is no longer grown by later appends.
func TestDiscardStopsExtensions(t *testing.T) {
	f := newIngestFixture(t, 40000, 25)
	s := New(f.db.Fact.NumRows(), 1024, 2)
	c := s.NewConsumer(f.plan(t, 0))
	c.Acquire()
	waitDone(t, c)
	c.Release()
	oldRows := int64(f.db.Fact.NumRows())
	c.Discard()
	db := f.appendBatch(t, 1000, 500)
	if err := s.Extend(db, db.Fact.NumRows()); err != nil {
		t.Fatal(err)
	}
	if !c.IsDone() {
		t.Fatal("discarded consumer must stay complete at its own version")
	}
	if res := c.Snapshot(1.96); res.Watermark != oldRows {
		t.Fatalf("discarded consumer watermark %d, want %d", res.Watermark, oldRows)
	}
}

// TestExtendSnapshotWatermarks polls snapshots across an append: the
// watermark must move from the old to the new version exactly once and
// partial snapshots must stay internally consistent.
func TestExtendSnapshotWatermarks(t *testing.T) {
	f := newIngestFixture(t, 200000, 26)
	oldRows := int64(f.db.Fact.NumRows())
	s := New(f.db.Fact.NumRows(), 256, 2)
	c := s.NewConsumer(f.plan(t, 1))
	c.Acquire()
	defer c.Release()
	if w := c.Snapshot(1.96).Watermark; w != oldRows {
		t.Fatalf("pre-append watermark %d, want %d", w, oldRows)
	}
	db := f.appendBatch(t, 4000, 600)
	if err := s.Extend(db, db.Fact.NumRows()); err != nil {
		t.Fatal(err)
	}
	newRows := int64(db.Fact.NumRows())
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		snap := c.Snapshot(1.96)
		if snap.Watermark != newRows {
			t.Fatalf("post-append watermark %d, want %d", snap.Watermark, newRows)
		}
		if snap.RowsSeen > snap.TotalRows {
			t.Fatalf("rows seen %d beyond population %d", snap.RowsSeen, snap.TotalRows)
		}
		if c.IsDone() {
			break
		}
		time.Sleep(time.Millisecond)
	}
	waitDone(t, c)
	resultsIdentical(t, "watermark poll", f.exact(t, 1), c.Snapshot(1.96))
}

// TestExtendCountBitwise pins the acceptance-criterion contract on the
// scheduler itself: for a COUNT query, the quiesced post-ingest state is
// bitwise identical to a cold scan of the final table (counts are integers,
// so no fold-order slack applies).
func TestExtendCountBitwise(t *testing.T) {
	f := newIngestFixture(t, 60000, 27)
	s := New(f.db.Fact.NumRows(), 512, 3)
	c := s.NewConsumer(f.plan(t, 0))
	c.Acquire()
	db := f.appendBatch(t, 2500, 700)
	if err := s.Extend(db, db.Fact.NumRows()); err != nil {
		t.Fatal(err)
	}
	waitDone(t, c)
	c.Release()
	got := c.Snapshot(1.96)
	want := f.exact(t, 0)
	if len(got.Bins) != len(want.Bins) {
		t.Fatalf("%d bins, want %d", len(got.Bins), len(want.Bins))
	}
	for k, wv := range want.Bins {
		gv, ok := got.Bins[k]
		if !ok || gv.Values[0] != wv.Values[0] {
			t.Fatalf("bin %v: %v, want exactly %v", k, gv, wv.Values[0])
		}
	}
}
