package sharedscan

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"idebench/internal/dataset"
	"idebench/internal/engine"
	"idebench/internal/query"
	"idebench/internal/stats"
)

// fixture builds a permutation-ordered copy of a small table plus compiled
// plans for a few query shapes, mirroring how the progressive engine feeds
// the scheduler.
type fixture struct {
	db      *dataset.Database // permutation-ordered
	queries []*query.Query
}

func newFixture(t testing.TB, rows int, seed int64) *fixture {
	t.Helper()
	schema := dataset.MustSchema([]dataset.Field{
		{Name: "cat", Kind: dataset.Nominal},
		{Name: "val", Kind: dataset.Quantitative},
	})
	rng := rand.New(rand.NewSource(seed))
	b := dataset.NewBuilder("tbl", schema, rows)
	for i := 0; i < rows; i++ {
		b.AppendString(0, fmt.Sprintf("c%d", rng.Intn(7)))
		b.AppendNum(1, rng.NormFloat64()*50+10)
	}
	tbl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	perm := stats.Permutation(rng, rows)
	re, err := dataset.ReorderTable(tbl, perm)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{
		db: &dataset.Database{Fact: re},
		queries: []*query.Query{
			{
				VizName: "count", Table: "tbl",
				Bins: []query.Binning{{Field: "cat", Kind: dataset.Nominal}},
				Aggs: []query.Aggregate{{Func: query.Count}},
			},
			{
				VizName: "avg", Table: "tbl",
				Bins: []query.Binning{{Field: "cat", Kind: dataset.Nominal}},
				Aggs: []query.Aggregate{{Func: query.Avg, Field: "val"}},
			},
			{
				VizName: "filtered", Table: "tbl",
				Bins: []query.Binning{{Field: "cat", Kind: dataset.Nominal}},
				Aggs: []query.Aggregate{{Func: query.Sum, Field: "val"}},
				Filter: query.Filter{Predicates: []query.Predicate{
					{Field: "val", Op: query.OpRange, Lo: -20, Hi: 60},
				}},
			},
		},
	}
}

func (f *fixture) plan(t testing.TB, i int) *engine.Compiled {
	t.Helper()
	p, err := engine.Compile(f.db, f.queries[i%len(f.queries)])
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func (f *fixture) exact(t testing.TB, i int) *query.Result {
	t.Helper()
	p := f.plan(t, i)
	gs := engine.NewGroupState(p)
	gs.ScanRange(0, p.NumRows)
	return gs.SnapshotExact()
}

func waitDone(t *testing.T, c *Consumer) {
	t.Helper()
	select {
	case <-c.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("consumer did not complete")
	}
}

// resultsIdentical compares COUNT-style results exactly and value-carrying
// results within floating tolerance from fold-order differences.
func resultsIdentical(t *testing.T, label string, want, got *query.Result) {
	t.Helper()
	if len(want.Bins) != len(got.Bins) {
		t.Fatalf("%s: %d bins, want %d", label, len(got.Bins), len(want.Bins))
	}
	for k, wv := range want.Bins {
		gv, ok := got.Bins[k]
		if !ok {
			t.Fatalf("%s: missing bin %v", label, k)
		}
		for i := range wv.Values {
			diff := wv.Values[i] - gv.Values[i]
			if diff < 0 {
				diff = -diff
			}
			if diff > 1e-9*(1+absf(wv.Values[i])) {
				t.Fatalf("%s: bin %v agg %d: %v vs %v", label, k, i, gv.Values[i], wv.Values[i])
			}
		}
	}
}

func absf(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func TestSingleConsumerCompletesExactly(t *testing.T) {
	f := newFixture(t, 50000, 1)
	s := New(f.db.Fact.NumRows(), 1024, 4)
	c := s.NewConsumer(f.plan(t, 0))
	c.Acquire()
	waitDone(t, c)
	c.Release()
	res := c.Snapshot(1.96)
	if !res.Complete {
		t.Fatal("completed consumer should report a complete result")
	}
	resultsIdentical(t, "single", f.exact(t, 0), res)
	if c.Progress() != 1 {
		t.Errorf("progress %v, want 1", c.Progress())
	}
}

func TestConcurrentConsumersMatchIndependentScans(t *testing.T) {
	f := newFixture(t, 80000, 2)
	s := New(f.db.Fact.NumRows(), 2048, 4)
	const n = 9
	consumers := make([]*Consumer, n)
	for i := range consumers {
		consumers[i] = s.NewConsumer(f.plan(t, i))
		consumers[i].Acquire()
	}
	for i, c := range consumers {
		waitDone(t, c)
		c.Release()
		resultsIdentical(t, fmt.Sprintf("consumer %d", i), f.exact(t, i), c.Snapshot(1.96))
	}
}

// TestLateAttachWrapsAround attaches a second consumer after the cursor has
// advanced, forcing a mid-table start and wrap-around completion.
func TestLateAttachWrapsAround(t *testing.T) {
	f := newFixture(t, 200000, 3)
	s := New(f.db.Fact.NumRows(), 512, 2)
	first := s.NewConsumer(f.plan(t, 0))
	first.Acquire()
	// Wait until the cursor has moved before attaching the second consumer.
	deadline := time.Now().Add(5 * time.Second)
	for first.RowsSeen() == 0 && time.Now().Before(deadline) {
	}
	second := s.NewConsumer(f.plan(t, 1))
	second.Acquire()
	waitDone(t, first)
	waitDone(t, second)
	first.Release()
	second.Release()
	resultsIdentical(t, "late attach", f.exact(t, 1), second.Snapshot(1.96))
}

// TestDetachResume cancels a consumer mid-scan, verifies its coverage is
// retained, then reattaches and checks the completed result is exact — the
// reuse-cache semantics of the progressive engine.
func TestDetachResume(t *testing.T) {
	f := newFixture(t, 300000, 4)
	s := New(f.db.Fact.NumRows(), 256, 1)
	c := s.NewConsumer(f.plan(t, 2))
	c.Acquire()
	deadline := time.Now().Add(10 * time.Second)
	for c.RowsSeen() < 1000 && time.Now().Before(deadline) {
	}
	c.Release() // no foreground refs left: detaches
	seen := c.RowsSeen()
	if seen == 0 {
		t.Skip("machine too fast to catch a partial state")
	}
	if c.IsDone() {
		t.Skip("scan finished before detach")
	}
	// Detached: progress must stop (allow in-flight folds to drain first).
	time.Sleep(20 * time.Millisecond)
	settled := c.RowsSeen()
	time.Sleep(50 * time.Millisecond)
	if c.RowsSeen() != settled {
		t.Fatalf("detached consumer kept scanning: %d -> %d", settled, c.RowsSeen())
	}
	snap := c.Snapshot(1.96)
	if snap.Complete || snap.RowsSeen != settled {
		t.Fatalf("partial snapshot rows %d complete=%v, want %d rows partial",
			snap.RowsSeen, snap.Complete, settled)
	}
	// Resume and complete; every row must be folded exactly once.
	c.Acquire()
	waitDone(t, c)
	c.Release()
	resultsIdentical(t, "resume", f.exact(t, 2), c.Snapshot(1.96))
}

// TestSpeculativeConsumerRunsInThinkTime verifies a Speculate-attached
// consumer makes progress with no foreground handles and survives
// foreground Release (the regression shape of the old speculator lifecycle
// bug, where a finished round left speculation dead forever).
func TestSpeculativeConsumerRunsInThinkTime(t *testing.T) {
	f := newFixture(t, 100000, 5)
	s := New(f.db.Fact.NumRows(), 1024, 2)
	spec := s.NewConsumer(f.plan(t, 1))
	spec.Speculate()
	waitDone(t, spec)
	resultsIdentical(t, "speculative round 1", f.exact(t, 1), spec.Snapshot(1.96))

	// A second speculation round after the first completed must still run.
	spec2 := s.NewConsumer(f.plan(t, 2))
	spec2.Speculate()
	waitDone(t, spec2)
	resultsIdentical(t, "speculative round 2", f.exact(t, 2), spec2.Snapshot(1.96))
}

// TestSpeculationYieldsToForeground pins IDEA's scheduling invariant:
// speculative consumers are suspended while a foreground consumer is
// attached, and resume afterwards. One worker keeps fold ordering
// deterministic: a foreground consumer's final fold (and finish) lands
// before any resumed speculative fold, so observed speculative progress
// while the foreground query is incomplete is bounded by folds that were
// already in flight when the query arrived.
func TestSpeculationYieldsToForeground(t *testing.T) {
	f := newFixture(t, 400000, 9)
	s := New(f.db.Fact.NumRows(), 256, 1)
	spec := s.NewConsumer(f.plan(t, 1))
	spec.Speculate()
	deadline := time.Now().Add(10 * time.Second)
	for spec.RowsSeen() == 0 && time.Now().Before(deadline) {
		time.Sleep(50 * time.Microsecond)
	}
	if spec.IsDone() {
		t.Skip("speculation finished before the foreground query could interrupt")
	}
	fg := s.NewConsumer(f.plan(t, 0))
	fg.Acquire()
	base := spec.RowsSeen()
	const slackRows = 10 * 256 // dispatches already in flight at Acquire
	for !fg.IsDone() {
		cur := spec.RowsSeen()
		if fg.IsDone() {
			break
		}
		if cur > base+slackRows {
			t.Fatalf("speculation advanced %d rows while a foreground query was active", cur-base)
		}
		time.Sleep(50 * time.Microsecond)
	}
	fg.Release()
	waitDone(t, spec) // suspended targets must resume once foreground drains
	resultsIdentical(t, "resumed speculation", f.exact(t, 1), spec.Snapshot(1.96))
}

func TestEmptyTableConsumerIsDoneImmediately(t *testing.T) {
	schema := dataset.MustSchema([]dataset.Field{{Name: "v", Kind: dataset.Quantitative}})
	tbl, err := dataset.NewBuilder("tbl", schema, 0).Build()
	if err != nil {
		t.Fatal(err)
	}
	db := &dataset.Database{Fact: tbl}
	plan, err := engine.Compile(db, &query.Query{
		VizName: "v", Table: "tbl",
		Bins: []query.Binning{{Field: "v", Kind: dataset.Quantitative, Width: 1}},
		Aggs: []query.Aggregate{{Func: query.Count}},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := New(0, 0, 4)
	c := s.NewConsumer(plan)
	if !c.IsDone() {
		t.Fatal("empty-table consumer should be born complete")
	}
	c.Acquire()
	c.Release()
	if res := c.Snapshot(1.96); !res.Complete {
		t.Error("empty-table snapshot should be complete")
	}
}

// TestPartialSnapshotConsistency asserts RowsSeen in a partial snapshot
// always equals the rows actually merged: total COUNT across bins of an
// unfiltered COUNT query scaled back must equal RowsSeen exactly.
func TestPartialSnapshotConsistency(t *testing.T) {
	f := newFixture(t, 400000, 6)
	s := New(f.db.Fact.NumRows(), 512, 4)
	c := s.NewConsumer(f.plan(t, 0))
	c.Acquire()
	defer c.Release()
	polls := 0
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && !c.IsDone() && polls < 50 {
		snap := c.Snapshot(1.96)
		if snap.RowsSeen == 0 {
			continue
		}
		polls++
		var rawCount float64
		for _, bv := range snap.Bins {
			rawCount += bv.Values[0]
		}
		// Values are scaled by total/seen; unscale to recover raw rows.
		raw := rawCount * float64(snap.RowsSeen) / float64(snap.TotalRows)
		diff := raw - float64(snap.RowsSeen)
		if diff < -0.5 || diff > 0.5 {
			t.Fatalf("snapshot merged %v raw rows but reports RowsSeen %d", raw, snap.RowsSeen)
		}
	}
	waitDone(t, c)
}

// TestWhenDoneFiresOnceEvenWhenAlreadyDone covers both callback paths.
func TestWhenDoneFiresOnceEvenWhenAlreadyDone(t *testing.T) {
	f := newFixture(t, 20000, 7)
	s := New(f.db.Fact.NumRows(), 0, 2)
	c := s.NewConsumer(f.plan(t, 0))
	fired := make(chan struct{}, 2)
	c.WhenDone(func() { fired <- struct{}{} })
	c.Acquire()
	waitDone(t, c)
	c.Release()
	c.WhenDone(func() { fired <- struct{}{} }) // already done: immediate
	for i := 0; i < 2; i++ {
		select {
		case <-fired:
		case <-time.After(5 * time.Second):
			t.Fatal("WhenDone callback did not fire")
		}
	}
}

// TestWhenDoneDeregister asserts a withdrawn callback never fires and that
// deregistration after completion is a harmless no-op — the cancelled-handle
// hygiene path of the progressive engine.
func TestWhenDoneDeregister(t *testing.T) {
	f := newFixture(t, 30000, 10)
	s := New(f.db.Fact.NumRows(), 0, 2)
	c := s.NewConsumer(f.plan(t, 0))
	fired := false
	deregister := c.WhenDone(func() { fired = true })
	deregister()
	kept := make(chan struct{})
	deregLate := c.WhenDone(func() { close(kept) })
	c.Acquire()
	waitDone(t, c)
	c.Release()
	select {
	case <-kept:
	case <-time.After(5 * time.Second):
		t.Fatal("registered callback did not fire")
	}
	if fired {
		t.Error("deregistered callback fired anyway")
	}
	deregLate() // after completion: must be a no-op
}

// TestMergeShardsBitwiseAgainstSequential checks that when only one worker
// runs, the shared-scan accumulation is bitwise identical to a plain
// sequential ScanRange (same fold order, single shard).
func TestMergeShardsBitwiseAgainstSequential(t *testing.T) {
	f := newFixture(t, 60000, 8)
	plan := f.plan(t, 1)
	s := New(f.db.Fact.NumRows(), 4096, 1)
	c := s.NewConsumer(plan)
	c.Acquire()
	waitDone(t, c)
	c.Release()
	ref := engine.NewGroupState(f.plan(t, 1))
	ref.ScanRange(0, plan.NumRows)
	merged, _ := c.mergeShards()
	if len(ref.Groups) != len(merged.Groups) {
		t.Fatalf("%d groups, want %d", len(merged.Groups), len(ref.Groups))
	}
	for k, want := range ref.Groups {
		got, ok := merged.Groups[k]
		if !ok {
			t.Fatalf("missing bin %v", k)
		}
		if got.N != want.N {
			t.Fatalf("bin %v: N %d, want %d", k, got.N, want.N)
		}
	}
}
