// Package engine defines the system-adapter interface of the benchmark
// (paper Sec. 4.5) and the shared execution kernels — compiled plans,
// vectorized filter/bin/aggregate kernels and group-by states — that the
// concrete engines under internal/engine/... build their execution models
// from.
//
// # Vectorized execution
//
// Compile lowers a query to a Compiled plan holding two equivalent
// operator forms: per-row closures (the scalar reference path, exercised
// by GroupState.ScanRangeScalar/ScanRowsScalar) and type-specialized batch
// kernels (vectorize.go). GroupState.ScanRange and ScanRows run the batch
// form: each batch of up to BatchRows rows flows through predicate kernels
// that build a selection vector, bin-key kernels that fill an []int64 key
// buffer, and gather kernels that copy aggregate inputs into []float64
// buffers — tight loops over raw column storage with no per-row closure
// calls.
//
// # Dense group-by fast path
//
// When every bin dimension has a known, small key domain — the dictionary
// cardinality of a nominal column, or quantitative bin bounds derived from
// the column's memoized min/max — accumulators live in a flat array indexed
// by bin key instead of the hash map. Dense accumulators are mirrored into
// GroupState.Groups on first touch, so Merge, SnapshotExact and
// SnapshotScaled are oblivious to which path filled the state; parallel
// scans and the progressive engine's resumable states work unchanged.
// See README.md in this directory for the full architecture.
package engine

import (
	"errors"
	"runtime"

	"idebench/internal/dataset"
	"idebench/internal/query"
)

// Handle represents one in-flight query. The driver polls it once at the
// time-requirement deadline; progressive engines may be polled at any time.
type Handle interface {
	// Snapshot returns the best result currently available, or nil when the
	// engine has nothing to deliver yet (a blocking engine mid-scan).
	Snapshot() *query.Result
	// Done is closed when execution finishes (successfully or cancelled).
	Done() <-chan struct{}
	// Cancel stops execution as soon as possible. Idempotent; the paper's
	// driver cancels every query whose run time exceeds the TR.
	Cancel()
}

// Options carries the benchmark settings every engine needs at prepare time
// (paper Sec. 4.6).
type Options struct {
	// Confidence is the confidence level for margins of error (default 0.95).
	Confidence float64
	// Seed drives all engine-internal randomness (permutations, samples).
	Seed int64
	// Parallelism caps worker goroutines for parallel engines; 0 means
	// runtime.NumCPU().
	Parallelism int
}

// Normalize fills defaults.
func (o Options) Normalize() Options {
	if o.Confidence <= 0 || o.Confidence >= 1 {
		o.Confidence = 0.95
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.NumCPU()
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Engine is the system-adapter interface (paper Listing 1). One Engine
// instance serves one benchmark run; Prepare is called once per dataset and
// its duration is the reported "data preparation time".
//
// Prepared engines are multi-user: OpenSession hands out independent
// Sessions, one per concurrent simulated analyst, which share the prepared
// data (and any shared-scan scheduling) but keep visualization namespaces,
// link hints and reuse caches apart. The query methods declared directly on
// Engine operate on a shared default session and exist for single-user
// replays and as the simplest adapter surface; the multi-user driver always
// goes through OpenSession.
type Engine interface {
	// Name identifies the engine in reports.
	Name() string
	// Prepare ingests the database. Engines copy/derive whatever internal
	// representation they need; the driver times this call.
	Prepare(db *dataset.Database, opts Options) error
	// OpenSession returns a new session on the prepared engine. Sessions
	// opened before Prepare fail their first StartQuery with ErrNotPrepared.
	OpenSession() Session
	// StartQuery begins asynchronous execution on the default session and
	// returns immediately.
	StartQuery(q *query.Query) (Handle, error)
	// LinkVizs hints that selections on viz `from` will re-query viz `to`
	// (speculative engines exploit this; others ignore it).
	LinkVizs(from, to string)
	// DeleteViz tells the engine a visualization was discarded so it can
	// free cached state.
	DeleteViz(name string)
	// WorkflowStart is called before a workflow begins.
	WorkflowStart()
	// WorkflowEnd is called after a workflow completes.
	WorkflowEnd()
}

// Watermarker is the optional data-version observability capability:
// anything that can report the fact-row count it has absorbed — the data
// version new queries answer against. Every Appender is a Watermarker, but
// not every Watermarker can absorb rows locally: a *server.Remote has a
// watermark (mirrored from the shard's ingest broadcasts) while its ingest
// travels as wire batches, and the shard coordinator observes backends
// through exactly this interface.
type Watermarker interface {
	// Watermark reports the fact-row count the engine has absorbed: the
	// data version new queries answer against.
	Watermark() int64
}

// Appender is the optional live-ingestion capability: engines that can
// absorb append-only row batches after Prepare implement it. rows is a
// materialized batch — a small table with the fact schema whose nominal
// columns share the prepared fact table's dictionaries and whose foreign
// keys (on a star schema) resolve in the dimension tables — appended
// atomically. ingest.Materialize produces and fully validates exactly this
// shape; engines trust it rather than re-scanning the batch per append
// (the dictionary-sharing part is still cheaply re-checked by the storage
// appender).
//
// Semantics are per-engine: a blocking engine grows its storage so new
// queries see the new rows; a sampling engine re-stratifies the tail into
// its sample; a shared-scan progressive engine additionally folds the new
// rows into every active query state exactly once, mid-sweep. In-flight
// queries that cannot absorb the batch keep answering from the data version
// they compiled against — which is why snapshots carry a Watermark.
//
// Append must be safe to call concurrently with queries and with other
// sessions; calls for one engine are serialized by the caller (the ingest
// harness applies batches one at a time).
type Appender interface {
	Watermarker
	Append(rows *dataset.Table) error
}

// Shedder is the optional overload capability: engines whose background
// work can be cancelled under pressure implement it. ShedSpeculation drops
// every purely speculative unit of work — queries prefetched on link hints
// that no foreground consumer currently needs — and returns how many were
// shed. Foreground queries are never touched: the shedding policy is
// strictly "speculation first, admission control second, foreground never".
// The serving layer calls this when admission pressure builds, before it
// starts rejecting queries.
type Shedder interface {
	ShedSpeculation() int
}

// ScanObserver is the optional observability capability: engines built on a
// shared scan report how many consumers are currently attached. The serving
// layer surfaces it on /healthz and the chaos tests assert it returns to
// zero after every injected fault (no leaked consumers).
type ScanObserver interface {
	ActiveScanConsumers() int
}

// ViewSnapshotter is the optional durability capability: engines that can
// expose their current prepared storage implement it. SnapshotView returns
// the engine's live immutable database view — the prepared fact table plus
// any batches absorbed since, in the engine's own storage order — and the
// sampling permutation its first len(perm) fact rows were materialized in
// (nil when the engine stores rows in arrival order). Views are
// copy-on-write, so the returned database is safe to serialize concurrently
// with queries and further appends; the durable checkpointer calls this from
// a background goroutine without stopping ingestion.
type ViewSnapshotter interface {
	SnapshotView() (db *dataset.Database, perm []uint32)
}

// ReorderedPreparer is the optional warm-restart capability: engines whose
// Prepare materializes storage in a non-arrival order (the progressive
// engine's sampling permutation) implement it so a durable checkpoint
// written from their own SnapshotView can be adopted directly.
// PrepareReordered behaves like Prepare except that db's fact table is
// already in the engine's prepared order — the permutation draw and the
// O(n·cols) reorder pass are skipped, which is what makes a warm restart
// cheaper than a cold one. perm is the sampling permutation the storage was
// materialized in, exactly as returned by SnapshotView. The engine takes
// ownership of db's storage.
type ReorderedPreparer interface {
	PrepareReordered(db *dataset.Database, perm []uint32, opts Options) error
}

// ShardObserver is the optional scatter-gather observability capability:
// coordinator engines report the confirmed watermark of each shard they
// serve over, translated onto the coordinator's global row axis and indexed
// by shard ID. The serving layer surfaces them (and their min — the bound
// every merged snapshot's Watermark obeys) on /healthz.
type ShardObserver interface {
	ShardWatermarks() []int64
}

// PartialSnapshotter is the optional scatter-gather capability on a query
// handle: it exposes the query's raw accumulator state (a Partial) instead
// of a rendered estimate, so a coordinator can merge fragments from many
// shards with the exact float operations of a local parallel scan and render
// once. Handles that implement it may still return nil (the engine behind
// them has no partial support); callers must treat nil as "capability
// absent", not "empty result".
type PartialSnapshotter interface {
	PartialSnapshot() *Partial
}

// ErrNotPrepared is returned by StartQuery before Prepare.
var ErrNotPrepared = errors.New("engine: not prepared")

// ErrUnknownTable is returned when a query references a table the prepared
// database does not contain.
var ErrUnknownTable = errors.New("engine: unknown table")
