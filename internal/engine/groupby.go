package engine

import (
	"math"

	"idebench/internal/query"
	"idebench/internal/stats"
)

// Accum is the per-bin accumulator: row count, per-aggregate running
// moments (Welford) and min/max. It contains everything any engine needs to
// produce exact values, scaled estimates, and CLT margins.
type Accum struct {
	N    int64
	W    []stats.Welford // one per aggregate; unused slots stay zero
	Mins []float64
	Maxs []float64
}

func newAccum(numAggs int) *Accum {
	a := &Accum{
		W:    make([]stats.Welford, numAggs),
		Mins: make([]float64, numAggs),
		Maxs: make([]float64, numAggs),
	}
	for i := range a.Mins {
		a.Mins[i] = math.Inf(1)
		a.Maxs[i] = math.Inf(-1)
	}
	return a
}

// GroupState is the group-by accumulator table for one query execution (or
// one execution fragment). Scans run vectorized: ScanRange/ScanRows process
// batches of up to BatchRows rows through the plan's kernels, folding the
// selected rows into per-bin accumulators — through a flat slot array when
// the plan's dense fast path is active, through the Groups hash map
// otherwise. Dense-path accumulators are registered in Groups too, so
// Merge and the Snapshot* methods see one canonical view either way.
//
// It is not safe for concurrent use; parallel scans keep one GroupState per
// worker and Merge them.
type GroupState struct {
	plan    *Compiled
	Groups  map[query.BinKey]*Accum
	scratch []float64

	// dense[slot] aliases Groups[plan.denseKey(slot)]; nil when the dense
	// path is inactive or the slot's bin has not been touched yet.
	dense []*Accum

	// Reusable batch buffers, allocated on first scan.
	selBuf []uint32
	keysA  []int64
	keysB  []int64
	vals   [][]float64
}

// NewGroupState allocates an empty state for the plan.
func NewGroupState(plan *Compiled) *GroupState {
	g := &GroupState{
		plan:    plan,
		Groups:  make(map[query.BinKey]*Accum),
		scratch: make([]float64, plan.NumAggs()),
	}
	if n := plan.denseSlots(); n > 0 {
		g.dense = make([]*Accum, n)
	}
	return g
}

// lookup returns the accumulator for key, creating it if needed. It is the
// single creation point shared by the batch path, the scalar reference path
// and Merge, so the dense array and the Groups map never diverge.
func (g *GroupState) lookup(key query.BinKey) *Accum {
	if g.dense != nil {
		if slot, ok := g.plan.denseSlot(key); ok {
			acc := g.dense[slot]
			if acc == nil {
				acc = g.registerDense(slot, key)
			}
			return acc
		}
	}
	return g.mapLookup(key)
}

// registerDense creates the accumulator for a first-touched dense slot and
// mirrors it into Groups (called once per distinct bin, off the hot loop).
func (g *GroupState) registerDense(slot int, key query.BinKey) *Accum {
	acc := newAccum(g.plan.NumAggs())
	g.dense[slot] = acc
	g.Groups[key] = acc
	return acc
}

// mapLookup is the hash-map accumulator lookup.
func (g *GroupState) mapLookup(key query.BinKey) *Accum {
	acc, ok := g.Groups[key]
	if !ok {
		acc = newAccum(g.plan.NumAggs())
		g.Groups[key] = acc
	}
	return acc
}

// observe folds a single matching row (scalar reference path).
func (g *GroupState) observe(row int) {
	acc := g.lookup(g.plan.BinKey(row))
	acc.N++
	g.plan.AggInput(row, g.scratch)
	for i, a := range g.plan.Query.Aggs {
		switch a.Func {
		case query.Count:
			// N is the count; nothing more to track.
		case query.Min:
			if v := g.scratch[i]; v < acc.Mins[i] {
				acc.Mins[i] = v
			}
		case query.Max:
			if v := g.scratch[i]; v > acc.Maxs[i] {
				acc.Maxs[i] = v
			}
		default: // Sum, Avg
			acc.W[i].Add(g.scratch[i])
		}
	}
}

// ensureBatch allocates the reusable batch buffers.
func (g *GroupState) ensureBatch() {
	if g.keysA != nil {
		return
	}
	g.keysA = make([]int64, BatchRows)
	if len(g.plan.binKern) > 1 {
		g.keysB = make([]int64, BatchRows)
	}
	if len(g.plan.predKern) > 0 {
		g.selBuf = make([]uint32, 0, BatchRows)
	}
	g.vals = make([][]float64, g.plan.NumAggs())
	for _, op := range g.plan.aggOps {
		g.vals[op.slot] = make([]float64, BatchRows)
	}
}

// ScanRange folds physical rows [lo, hi) that match the filter.
func (g *GroupState) ScanRange(lo, hi int) {
	g.ensureBatch()
	for lo < hi {
		n := hi - lo
		if n > BatchRows {
			n = BatchRows
		}
		g.scanRangeBatch(lo, lo+n)
		lo += n
	}
}

// ScanRows folds an explicit list of physical row indices (a permutation
// chunk or a sample).
func (g *GroupState) ScanRows(rows []uint32) {
	g.ensureBatch()
	for len(rows) > 0 {
		n := len(rows)
		if n > BatchRows {
			n = BatchRows
		}
		g.scanRowsBatch(rows[:n])
		rows = rows[n:]
	}
}

// ScanRangeScalar is the row-at-a-time reference implementation of
// ScanRange. Property tests assert it is bitwise-identical to the batch
// path, and the scan benchmarks use it as the interpreted baseline.
func (g *GroupState) ScanRangeScalar(lo, hi int) {
	for row := lo; row < hi; row++ {
		if g.plan.Matches(row) {
			g.observe(row)
		}
	}
}

// ScanRowsScalar is the row-at-a-time reference implementation of ScanRows.
func (g *GroupState) ScanRowsScalar(rows []uint32) {
	for _, r := range rows {
		row := int(r)
		if g.plan.Matches(row) {
			g.observe(row)
		}
	}
}

// scanRangeBatch runs the kernel pipeline for one batch [lo, hi),
// hi-lo <= BatchRows.
func (g *GroupState) scanRangeBatch(lo, hi int) {
	preds := g.plan.predKern
	if len(preds) == 0 {
		// Unfiltered range: key and gather kernels read the column slices
		// contiguously, no selection vector needed.
		n := hi - lo
		g.plan.binKern[0].keysRange(lo, g.keysA[:n])
		if g.keysB != nil {
			g.plan.binKern[1].keysRange(lo, g.keysB[:n])
		}
		for _, op := range g.plan.aggOps {
			g.plan.aggKern[op.slot].gatherRange(lo, g.vals[op.slot][:n])
		}
		g.accumulate(n)
		return
	}
	sel := preds[0].selectRange(lo, hi, g.selBuf[:0])
	for _, p := range preds[1:] {
		if len(sel) == 0 {
			return
		}
		sel = p.refine(sel)
	}
	if len(sel) > 0 {
		g.foldSel(sel)
	}
}

// scanRowsBatch runs the kernel pipeline for one explicit-row batch,
// len(rows) <= BatchRows.
func (g *GroupState) scanRowsBatch(rows []uint32) {
	sel := rows
	if preds := g.plan.predKern; len(preds) > 0 {
		sel = preds[0].selectRows(rows, g.selBuf[:0])
		for _, p := range preds[1:] {
			if len(sel) == 0 {
				return
			}
			sel = p.refine(sel)
		}
		if len(sel) == 0 {
			return
		}
	}
	g.foldSel(sel)
}

// foldSel computes keys and aggregate inputs for the selected rows and
// accumulates them.
func (g *GroupState) foldSel(sel []uint32) {
	n := len(sel)
	g.plan.binKern[0].keysSel(sel, g.keysA[:n])
	if g.keysB != nil {
		g.plan.binKern[1].keysSel(sel, g.keysB[:n])
	}
	for _, op := range g.plan.aggOps {
		g.plan.aggKern[op.slot].gatherSel(sel, g.vals[op.slot][:n])
	}
	g.accumulate(n)
}

// accumulate folds the first n entries of the key/value buffers, in order,
// so results stay bitwise-identical to the scalar path.
func (g *GroupState) accumulate(n int) {
	keysA := g.keysA[:n]
	ops := g.plan.aggOps
	if dense := g.dense; dense != nil && g.keysB == nil {
		loA := g.plan.denseLoA
		switch {
		case len(ops) == 0:
			// Dense 1D COUNT: the dominant dashboard shape, branch-lean.
			for _, ka := range keysA {
				slot := ka - loA
				if uint64(slot) < uint64(len(dense)) {
					acc := dense[slot]
					if acc == nil {
						acc = g.registerDense(int(slot), query.BinKey{A: ka})
					}
					acc.N++
				} else {
					g.mapLookup(query.BinKey{A: ka}).N++
				}
			}
			return
		case len(ops) == 1 && ops[0].code == aggOpWelford:
			// Dense 1D single SUM/AVG: the other dominant shape.
			s := ops[0].slot
			vals := g.vals[s][:n]
			for i, ka := range keysA {
				var acc *Accum
				slot := ka - loA
				if uint64(slot) < uint64(len(dense)) {
					acc = dense[slot]
					if acc == nil {
						acc = g.registerDense(int(slot), query.BinKey{A: ka})
					}
				} else {
					acc = g.mapLookup(query.BinKey{A: ka})
				}
				acc.N++
				acc.W[s].Add(vals[i])
			}
			return
		}
	}
	var keysB []int64
	if g.keysB != nil {
		keysB = g.keysB[:n]
	}
	for i := 0; i < n; i++ {
		key := query.BinKey{A: keysA[i]}
		if keysB != nil {
			key.B = keysB[i]
		}
		var acc *Accum
		if g.dense != nil {
			if slot, ok := g.plan.denseSlot(key); ok {
				if acc = g.dense[slot]; acc == nil {
					acc = g.registerDense(slot, key)
				}
			}
		}
		if acc == nil {
			acc = g.mapLookup(key)
		}
		acc.N++
		for _, op := range ops {
			v := g.vals[op.slot][i]
			switch op.code {
			case aggOpWelford:
				acc.W[op.slot].Add(v)
			case aggOpMin:
				if v < acc.Mins[op.slot] {
					acc.Mins[op.slot] = v
				}
			case aggOpMax:
				if v > acc.Maxs[op.slot] {
					acc.Maxs[op.slot] = v
				}
			}
		}
	}
}

// Merge folds another state (same plan) into g.
func (g *GroupState) Merge(o *GroupState) {
	for key, oa := range o.Groups {
		acc := g.lookup(key)
		acc.N += oa.N
		for i := range acc.W {
			acc.W[i].Merge(oa.W[i])
			if oa.Mins[i] < acc.Mins[i] {
				acc.Mins[i] = oa.Mins[i]
			}
			if oa.Maxs[i] > acc.Maxs[i] {
				acc.Maxs[i] = oa.Maxs[i]
			}
		}
	}
}

// NumGroups returns the current number of bins.
func (g *GroupState) NumGroups() int { return len(g.Groups) }

// SnapshotExact renders the state as a complete, exact result (margins 0).
// Blocking engines use this after a full scan.
func (g *GroupState) SnapshotExact() *query.Result {
	res := query.NewResult()
	res.TotalRows = int64(g.plan.NumRows)
	res.RowsSeen = int64(g.plan.NumRows)
	res.Complete = true
	res.Watermark = int64(g.plan.NumRows)
	aggs := g.plan.Query.Aggs
	for key, acc := range g.Groups {
		bv := &query.BinValue{
			Values:  make([]float64, len(aggs)),
			Margins: make([]float64, len(aggs)),
		}
		for i, a := range aggs {
			switch a.Func {
			case query.Count:
				bv.Values[i] = float64(acc.N)
			case query.Sum:
				bv.Values[i] = acc.W[i].Sum()
			case query.Avg:
				bv.Values[i] = acc.W[i].Mean()
			case query.Min:
				bv.Values[i] = acc.Mins[i]
			case query.Max:
				bv.Values[i] = acc.Maxs[i]
			}
		}
		res.Bins[key] = bv
	}
	return res
}

// SnapshotScaled renders the state as an estimate from a uniform random
// sample of rowsSeen rows out of populationRows, with CLT margins at the
// z critical value. weight scales beyond the uniform factor for stratified
// engines (weight = N_h / n_h per stratum; pass 0 to use
// populationRows/rowsSeen).
//
// watermark is the data version the estimate reflects, in absorbed fact
// rows (the engine.Appender.Watermark axis). It is a separate parameter
// because populationRows is not always that number: a stratified engine
// estimates for a represented population counted on the same axis, but a
// weighted stratum estimate's population and its absorbed-row version are
// distinct quantities, and conflating them let a sampled shard claim
// freshness it did not have under min-watermark merging.
//
// Estimators (per bin g, sample size m, population N):
//
//	COUNT:  N·(n_g/m),          margin = z·N·sqrt(p̂(1-p̂)/m)
//	SUM:    N·(Σ_g x)/m,        margin = z·N·sqrt(Var(x·1_g)/m)
//	AVG:    mean_g(x),          margin = z·sqrt(Var_g(x)/n_g)
//	MIN/MAX: sample min/max (biased; no margin reported)
func (g *GroupState) SnapshotScaled(rowsSeen, populationRows, watermark int64, weight, z float64) *query.Result {
	return renderScaled(g.Groups, g.plan.Query.Aggs, rowsSeen, populationRows, watermark, weight, z)
}

// renderScaled is the estimator math of SnapshotScaled over a bare
// accumulator table. PartialFold.Render shares it, so a scatter-gather
// coordinator rendering merged shard partials runs the exact float operations
// a local GroupState snapshot would — same inputs, same bits.
func renderScaled(groups map[query.BinKey]*Accum, aggs []query.Aggregate, rowsSeen, populationRows, watermark int64, weight, z float64) *query.Result {
	res := query.NewResult()
	res.TotalRows = populationRows
	res.RowsSeen = rowsSeen
	res.Complete = rowsSeen >= populationRows && weight == 0
	res.Watermark = watermark
	if rowsSeen == 0 {
		return res
	}
	m := float64(rowsSeen)
	n := float64(populationRows)
	scale := n / m
	if weight > 0 {
		scale = weight
	}
	for key, acc := range groups {
		bv := &query.BinValue{
			Values:  make([]float64, len(aggs)),
			Margins: make([]float64, len(aggs)),
		}
		for i, a := range aggs {
			switch a.Func {
			case query.Count:
				bv.Values[i] = float64(acc.N) * scale
				bv.Margins[i] = stats.FractionCI(acc.N, rowsSeen, m*scale, z)
			case query.Sum:
				sum := acc.W[i].Sum()
				bv.Values[i] = sum * scale
				// Var over all m rows of z_i = x_i·1[i∈bin]:
				// Σz² = Σ_g x², z̄ = Σ_g x / m.
				zbar := sum / m
				varz := (acc.W[i].SumSquares() - m*zbar*zbar) / math.Max(m-1, 1)
				if varz < 0 {
					varz = 0
				}
				bv.Margins[i] = z * m * scale * math.Sqrt(varz/m)
			case query.Avg:
				bv.Values[i] = acc.W[i].Mean()
				bv.Margins[i] = acc.W[i].MeanCI(z)
			case query.Min:
				bv.Values[i] = acc.Mins[i]
			case query.Max:
				bv.Values[i] = acc.Maxs[i]
			}
		}
		res.Bins[key] = bv
	}
	if res.Complete {
		for _, bv := range res.Bins {
			for i := range bv.Margins {
				bv.Margins[i] = 0
			}
		}
	}
	return res
}
