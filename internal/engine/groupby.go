package engine

import (
	"math"

	"idebench/internal/query"
	"idebench/internal/stats"
)

// Accum is the per-bin accumulator: row count, per-aggregate running
// moments (Welford) and min/max. It contains everything any engine needs to
// produce exact values, scaled estimates, and CLT margins.
type Accum struct {
	N    int64
	W    []stats.Welford // one per aggregate; unused slots stay zero
	Mins []float64
	Maxs []float64
}

func newAccum(numAggs int) *Accum {
	a := &Accum{
		W:    make([]stats.Welford, numAggs),
		Mins: make([]float64, numAggs),
		Maxs: make([]float64, numAggs),
	}
	for i := range a.Mins {
		a.Mins[i] = math.Inf(1)
		a.Maxs[i] = math.Inf(-1)
	}
	return a
}

// GroupState is a group-by hash table for one query execution (or one
// execution fragment). It is not safe for concurrent use; parallel scans
// keep one GroupState per worker and Merge them.
type GroupState struct {
	plan    *Compiled
	Groups  map[query.BinKey]*Accum
	scratch []float64
}

// NewGroupState allocates an empty state for the plan.
func NewGroupState(plan *Compiled) *GroupState {
	return &GroupState{
		plan:    plan,
		Groups:  make(map[query.BinKey]*Accum),
		scratch: make([]float64, plan.NumAggs()),
	}
}

// observe folds a single matching row.
func (g *GroupState) observe(row int) {
	key := g.plan.BinKey(row)
	acc, ok := g.Groups[key]
	if !ok {
		acc = newAccum(g.plan.NumAggs())
		g.Groups[key] = acc
	}
	acc.N++
	g.plan.AggInput(row, g.scratch)
	for i, a := range g.plan.Query.Aggs {
		switch a.Func {
		case query.Count:
			// N is the count; nothing more to track.
		case query.Min:
			if v := g.scratch[i]; v < acc.Mins[i] {
				acc.Mins[i] = v
			}
		case query.Max:
			if v := g.scratch[i]; v > acc.Maxs[i] {
				acc.Maxs[i] = v
			}
		default: // Sum, Avg
			acc.W[i].Add(g.scratch[i])
		}
	}
}

// ScanRange folds physical rows [lo, hi) that match the filter.
func (g *GroupState) ScanRange(lo, hi int) {
	for row := lo; row < hi; row++ {
		if g.plan.Matches(row) {
			g.observe(row)
		}
	}
}

// ScanRows folds an explicit list of physical row indices (a permutation
// chunk or a sample).
func (g *GroupState) ScanRows(rows []uint32) {
	for _, r := range rows {
		row := int(r)
		if g.plan.Matches(row) {
			g.observe(row)
		}
	}
}

// Merge folds another state (same plan) into g.
func (g *GroupState) Merge(o *GroupState) {
	for key, oa := range o.Groups {
		acc, ok := g.Groups[key]
		if !ok {
			acc = newAccum(g.plan.NumAggs())
			g.Groups[key] = acc
		}
		acc.N += oa.N
		for i := range acc.W {
			acc.W[i].Merge(oa.W[i])
			if oa.Mins[i] < acc.Mins[i] {
				acc.Mins[i] = oa.Mins[i]
			}
			if oa.Maxs[i] > acc.Maxs[i] {
				acc.Maxs[i] = oa.Maxs[i]
			}
		}
	}
}

// NumGroups returns the current number of bins.
func (g *GroupState) NumGroups() int { return len(g.Groups) }

// SnapshotExact renders the state as a complete, exact result (margins 0).
// Blocking engines use this after a full scan.
func (g *GroupState) SnapshotExact() *query.Result {
	res := query.NewResult()
	res.TotalRows = int64(g.plan.NumRows)
	res.RowsSeen = int64(g.plan.NumRows)
	res.Complete = true
	aggs := g.plan.Query.Aggs
	for key, acc := range g.Groups {
		bv := &query.BinValue{
			Values:  make([]float64, len(aggs)),
			Margins: make([]float64, len(aggs)),
		}
		for i, a := range aggs {
			switch a.Func {
			case query.Count:
				bv.Values[i] = float64(acc.N)
			case query.Sum:
				bv.Values[i] = acc.W[i].Sum()
			case query.Avg:
				bv.Values[i] = acc.W[i].Mean()
			case query.Min:
				bv.Values[i] = acc.Mins[i]
			case query.Max:
				bv.Values[i] = acc.Maxs[i]
			}
		}
		res.Bins[key] = bv
	}
	return res
}

// SnapshotScaled renders the state as an estimate from a uniform random
// sample of rowsSeen rows out of populationRows, with CLT margins at the
// z critical value. weight scales beyond the uniform factor for stratified
// engines (weight = N_h / n_h per stratum; pass 0 to use
// populationRows/rowsSeen).
//
// Estimators (per bin g, sample size m, population N):
//
//	COUNT:  N·(n_g/m),          margin = z·N·sqrt(p̂(1-p̂)/m)
//	SUM:    N·(Σ_g x)/m,        margin = z·N·sqrt(Var(x·1_g)/m)
//	AVG:    mean_g(x),          margin = z·sqrt(Var_g(x)/n_g)
//	MIN/MAX: sample min/max (biased; no margin reported)
func (g *GroupState) SnapshotScaled(rowsSeen, populationRows int64, weight, z float64) *query.Result {
	res := query.NewResult()
	res.TotalRows = populationRows
	res.RowsSeen = rowsSeen
	res.Complete = rowsSeen >= populationRows && weight == 0
	if rowsSeen == 0 {
		return res
	}
	m := float64(rowsSeen)
	n := float64(populationRows)
	scale := n / m
	if weight > 0 {
		scale = weight
	}
	aggs := g.plan.Query.Aggs
	for key, acc := range g.Groups {
		bv := &query.BinValue{
			Values:  make([]float64, len(aggs)),
			Margins: make([]float64, len(aggs)),
		}
		for i, a := range aggs {
			switch a.Func {
			case query.Count:
				bv.Values[i] = float64(acc.N) * scale
				bv.Margins[i] = stats.FractionCI(acc.N, rowsSeen, m*scale, z)
			case query.Sum:
				sum := acc.W[i].Sum()
				bv.Values[i] = sum * scale
				// Var over all m rows of z_i = x_i·1[i∈bin]:
				// Σz² = Σ_g x², z̄ = Σ_g x / m.
				zbar := sum / m
				varz := (acc.W[i].SumSquares() - m*zbar*zbar) / math.Max(m-1, 1)
				if varz < 0 {
					varz = 0
				}
				bv.Margins[i] = z * m * scale * math.Sqrt(varz/m)
			case query.Avg:
				bv.Values[i] = acc.W[i].Mean()
				bv.Margins[i] = acc.W[i].MeanCI(z)
			case query.Min:
				bv.Values[i] = acc.Mins[i]
			case query.Max:
				bv.Values[i] = acc.Maxs[i]
			}
		}
		res.Bins[key] = bv
	}
	if res.Complete {
		for _, bv := range res.Bins {
			for i := range bv.Margins {
				bv.Margins[i] = 0
			}
		}
	}
	return res
}
