package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"idebench/internal/dataset"
	"idebench/internal/query"
)

// benchDB builds the benchmark fact table: benchRows flights with a
// 12-carrier nominal column and two quantitative columns, the column mix the
// paper's dashboard workloads scan.
const benchRows = 1 << 18

func benchDB(b *testing.B) *dataset.Database {
	b.Helper()
	schema := dataset.MustSchema([]dataset.Field{
		{Name: "carrier", Kind: dataset.Nominal},
		{Name: "distance", Kind: dataset.Quantitative},
		{Name: "delay", Kind: dataset.Quantitative},
	})
	rng := rand.New(rand.NewSource(42))
	tb := dataset.NewBuilder("flights", schema, benchRows)
	for i := 0; i < benchRows; i++ {
		tb.AppendString(0, fmt.Sprintf("C%d", rng.Intn(12)))
		tb.AppendNum(1, rng.Float64()*3000)
		tb.AppendNum(2, rng.NormFloat64()*30)
	}
	fact, err := tb.Build()
	if err != nil {
		b.Fatal(err)
	}
	return &dataset.Database{Fact: fact}
}

// benchPlans compiles q three ways: the scalar baseline (dense disabled so
// it measures the original closure + hash-map pipeline), the vectorized
// hash-map path, and the full vectorized + dense path.
func benchPlans(b *testing.B, db *dataset.Database, q *query.Query) (scalar, vecMap, vecDense *Compiled) {
	b.Helper()
	compile := func() *Compiled {
		p, err := Compile(db, q)
		if err != nil {
			b.Fatal(err)
		}
		return p
	}
	scalar, vecMap, vecDense = compile(), compile(), compile()
	scalar.disableDense()
	vecMap.disableDense()
	return
}

func runScanBench(b *testing.B, plan *Compiled, scalar bool) {
	b.Helper()
	b.ReportAllocs()
	b.SetBytes(int64(plan.NumRows))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gs := NewGroupState(plan)
		if scalar {
			gs.ScanRangeScalar(0, plan.NumRows)
		} else {
			gs.ScanRange(0, plan.NumRows)
		}
		if gs.NumGroups() == 0 && plan.NumRows > 0 && len(plan.predKern) == 0 {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkScanCountByNominal is the COUNT(*) GROUP BY carrier shape — the
// most common dashboard query. bytes/s counts rows/s (SetBytes(rows)).
func BenchmarkScanCountByNominal(b *testing.B) {
	db := benchDB(b)
	q := &query.Query{
		VizName: "v", Table: "flights",
		Bins: []query.Binning{{Field: "carrier", Kind: dataset.Nominal}},
		Aggs: []query.Aggregate{{Func: query.Count}},
	}
	scalar, vecMap, vecDense := benchPlans(b, db, q)
	b.Run("scalar", func(b *testing.B) { runScanBench(b, scalar, true) })
	b.Run("vec_map", func(b *testing.B) { runScanBench(b, vecMap, false) })
	b.Run("vec_dense", func(b *testing.B) { runScanBench(b, vecDense, false) })
}

// BenchmarkScanFilteredSum is the filtered SUM shape: range predicate on one
// quantitative column, SUM of another, grouped by carrier.
func BenchmarkScanFilteredSum(b *testing.B) {
	db := benchDB(b)
	q := &query.Query{
		VizName: "v", Table: "flights",
		Bins: []query.Binning{{Field: "carrier", Kind: dataset.Nominal}},
		Aggs: []query.Aggregate{{Func: query.Sum, Field: "delay"}},
		Filter: query.Filter{Predicates: []query.Predicate{
			{Field: "distance", Op: query.OpRange, Lo: 500, Hi: 1500},
		}},
	}
	scalar, vecMap, vecDense := benchPlans(b, db, q)
	b.Run("scalar", func(b *testing.B) { runScanBench(b, scalar, true) })
	b.Run("vec_map", func(b *testing.B) { runScanBench(b, vecMap, false) })
	b.Run("vec_dense", func(b *testing.B) { runScanBench(b, vecDense, false) })
}

// BenchmarkScanQuantBin2D is the binned-heatmap shape: 2D quantitative
// binning with AVG, no filter.
func BenchmarkScanQuantBin2D(b *testing.B) {
	db := benchDB(b)
	q := &query.Query{
		VizName: "v", Table: "flights",
		Bins: []query.Binning{
			{Field: "distance", Kind: dataset.Quantitative, Width: 100},
			{Field: "delay", Kind: dataset.Quantitative, Width: 20},
		},
		Aggs: []query.Aggregate{{Func: query.Avg, Field: "delay"}},
	}
	scalar, vecMap, vecDense := benchPlans(b, db, q)
	b.Run("scalar", func(b *testing.B) { runScanBench(b, scalar, true) })
	b.Run("vec_map", func(b *testing.B) { runScanBench(b, vecMap, false) })
	b.Run("vec_dense", func(b *testing.B) { runScanBench(b, vecDense, false) })
}

// BenchmarkScanRowsPermuted is the progressive engines' access pattern: an
// explicit permuted row list with a single-value IN selection, the query
// shape cross-viz brushing produces.
func BenchmarkScanRowsPermuted(b *testing.B) {
	db := benchDB(b)
	q := &query.Query{
		VizName: "v", Table: "flights",
		Bins: []query.Binning{{Field: "carrier", Kind: dataset.Nominal}},
		Aggs: []query.Aggregate{{Func: query.Count}},
		Filter: query.Filter{Predicates: []query.Predicate{
			{Field: "carrier", Op: query.OpIn, Values: []string{"C3"}},
		}},
	}
	rng := rand.New(rand.NewSource(7))
	perm := make([]uint32, benchRows)
	for i, p := range rng.Perm(benchRows) {
		perm[i] = uint32(p)
	}
	scalar, _, vecDense := benchPlans(b, db, q)
	b.Run("scalar", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(benchRows)
		for i := 0; i < b.N; i++ {
			gs := NewGroupState(scalar)
			gs.ScanRowsScalar(perm)
		}
	})
	b.Run("vec_dense", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(benchRows)
		for i := 0; i < b.N; i++ {
			gs := NewGroupState(vecDense)
			gs.ScanRows(perm)
		}
	})
}
