package idelayer

import (
	"testing"
	"time"

	"idebench/internal/engine"
	"idebench/internal/engine/exactdb"
	"idebench/internal/enginetest"
)

func TestConformance(t *testing.T) {
	enginetest.Conformance(t, func() engine.Engine {
		return New(exactdb.New(), Config{RenderDelay: time.Millisecond})
	}, true)
}

func TestMultiUserScenario(t *testing.T) {
	enginetest.MultiUserScenario(t, func() engine.Engine {
		return New(exactdb.New(), Config{RenderDelay: time.Millisecond})
	}, true)
}

func TestIngestScenario(t *testing.T) {
	enginetest.IngestScenario(t, func() engine.Engine {
		return New(exactdb.New(), Config{RenderDelay: time.Millisecond})
	}, true)
}

func TestName(t *testing.T) {
	e := New(exactdb.New(), Config{})
	if e.Name() != "idelayer(exactdb)" {
		t.Errorf("name = %q", e.Name())
	}
}

func TestRenderDelayHidesResult(t *testing.T) {
	db := enginetest.SmallDB(5000, 3)
	delay := 80 * time.Millisecond
	e := New(exactdb.New(), Config{RenderDelay: delay})
	if err := e.Prepare(db, engine.Options{}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	h, err := e.StartQuery(enginetest.CountByCarrier())
	if err != nil {
		t.Fatal(err)
	}
	// Shortly after the backend finishes (small table → fast) the result
	// must still be hidden by the render delay.
	time.Sleep(delay / 4)
	if h.Snapshot() != nil {
		t.Error("result visible before render delay elapsed")
	}
	res := enginetest.WaitResult(t, h, 10*time.Second)
	if res == nil {
		t.Fatal("no result after render delay")
	}
	if elapsed := time.Since(start); elapsed < delay {
		t.Errorf("completed after %v, render delay is %v", elapsed, delay)
	}
	gt, _ := enginetest.Exact(db, enginetest.CountByCarrier())
	if err := enginetest.ResultsEqual(gt, res, 0); err != nil {
		t.Errorf("wrapped result mismatch: %v", err)
	}
}

func TestCancelShortCircuitsDelay(t *testing.T) {
	db := enginetest.SmallDB(5000, 5)
	e := New(exactdb.New(), Config{RenderDelay: 10 * time.Second})
	if err := e.Prepare(db, engine.Options{}); err != nil {
		t.Fatal(err)
	}
	h, err := e.StartQuery(enginetest.CountByCarrier())
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	h.Cancel()
	select {
	case <-h.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("cancel did not short-circuit the render delay")
	}
	if h.Snapshot() != nil {
		t.Error("cancelled render should expose no result")
	}
}

func TestDefaultRenderDelay(t *testing.T) {
	if (Config{}).withDefaults().RenderDelay != 6*time.Millisecond {
		t.Error("default render delay wrong")
	}
}

func TestDelegation(t *testing.T) {
	db := enginetest.SmallDB(1000, 7)
	e := New(exactdb.New(), Config{RenderDelay: time.Millisecond})
	if err := e.Prepare(db, engine.Options{}); err != nil {
		t.Fatal(err)
	}
	// These must all pass through without panics.
	e.WorkflowStart()
	e.LinkVizs("a", "b")
	e.DeleteViz("a")
	e.WorkflowEnd()
}
