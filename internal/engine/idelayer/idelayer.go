// Package idelayer implements the paper's "System Y" analogue: a commercial
// IDE frontend layer that delegates query execution to a DBMS backend
// (MonetDB in Exp. 5) and adds a per-query rendering/marshalling overhead of
// 1–2 seconds ("System Y renders and updates the visualizations ... roughly
// at the same speed as when one uses MonetDB directly, with an added delay
// of about 1-2s per query"). The paper found no evidence of a speculative
// pre-fetching layer, so none is modelled.
package idelayer

import (
	"fmt"
	"sync"
	"time"

	"idebench/internal/dataset"
	"idebench/internal/engine"
	"idebench/internal/query"
)

// Config tunes the wrapper.
type Config struct {
	// RenderDelay is the per-query overhead before a backend result becomes
	// visible. Default 6ms (≈1.5s at the paper's scale, 250× scaled).
	RenderDelay time.Duration
}

func (c Config) withDefaults() Config {
	if c.RenderDelay <= 0 {
		c.RenderDelay = 6 * time.Millisecond
	}
	return c
}

// Engine wraps a backend engine and delays result visibility.
type Engine struct {
	cfg     Config
	backend engine.Engine
}

// New wraps backend; a nil backend panics at Prepare, not here, so
// construction stays infallible.
func New(backend engine.Engine, cfg Config) *Engine {
	return &Engine{cfg: cfg.withDefaults(), backend: backend}
}

// Name implements engine.Engine.
func (e *Engine) Name() string { return "idelayer(" + e.backend.Name() + ")" }

// Prepare implements engine.Engine by delegating to the backend.
func (e *Engine) Prepare(db *dataset.Database, opts engine.Options) error {
	return e.backend.Prepare(db, opts)
}

// Append implements engine.Appender when the backend does: the IDE layer
// adds rendering latency, not storage, so live ingestion passes straight
// through to the DBMS.
func (e *Engine) Append(rows *dataset.Table) error {
	a, ok := e.backend.(engine.Appender)
	if !ok {
		return fmt.Errorf("idelayer: backend %s does not support append", e.backend.Name())
	}
	return a.Append(rows)
}

// Watermark implements engine.Appender (0 when the backend cannot append).
func (e *Engine) Watermark() int64 {
	if a, ok := e.backend.(engine.Appender); ok {
		return a.Watermark()
	}
	return 0
}

// StartQuery delegates to the backend and wraps the handle so the result
// (and completion) surface only after the render delay has elapsed on top
// of backend completion.
func (e *Engine) StartQuery(q *query.Query) (engine.Handle, error) {
	inner, err := e.backend.StartQuery(q)
	if err != nil {
		return nil, err
	}
	return e.delay(inner), nil
}

// delay wraps a backend handle with the render-delay visibility rule.
func (e *Engine) delay(inner engine.Handle) engine.Handle {
	h := &delayedHandle{
		inner:  inner,
		done:   make(chan struct{}),
		cancel: make(chan struct{}),
	}
	go func() {
		defer close(h.done)
		select {
		case <-inner.Done():
		case <-h.cancel:
			return
		}
		select {
		case <-time.After(e.cfg.RenderDelay):
		case <-h.cancel:
			return
		}
		h.mu.Lock()
		h.visible = true
		h.mu.Unlock()
	}()
	return h
}

// OpenSession implements engine.Engine: each IDE session wraps one backend
// session, adding the same render delay to every query the session issues.
func (e *Engine) OpenSession() engine.Session {
	return &session{e: e, inner: e.backend.OpenSession()}
}

// session is one IDE frontend connection over a backend session.
type session struct {
	e     *Engine
	inner engine.Session
}

func (s *session) StartQuery(q *query.Query) (engine.Handle, error) {
	inner, err := s.inner.StartQuery(q)
	if err != nil {
		return nil, err
	}
	return s.e.delay(inner), nil
}

func (s *session) LinkVizs(from, to string) { s.inner.LinkVizs(from, to) }
func (s *session) DeleteViz(name string)    { s.inner.DeleteViz(name) }
func (s *session) WorkflowStart()           { s.inner.WorkflowStart() }
func (s *session) WorkflowEnd()             { s.inner.WorkflowEnd() }
func (s *session) Close()                   { s.inner.Close() }

var _ engine.Session = (*session)(nil)

// LinkVizs implements engine.Engine.
func (e *Engine) LinkVizs(from, to string) { e.backend.LinkVizs(from, to) }

// DeleteViz implements engine.Engine.
func (e *Engine) DeleteViz(name string) { e.backend.DeleteViz(name) }

// WorkflowStart implements engine.Engine.
func (e *Engine) WorkflowStart() { e.backend.WorkflowStart() }

// WorkflowEnd implements engine.Engine.
func (e *Engine) WorkflowEnd() { e.backend.WorkflowEnd() }

var _ engine.Engine = (*Engine)(nil)

// delayedHandle hides the backend result until the render delay passed.
type delayedHandle struct {
	inner engine.Handle

	mu      sync.Mutex
	visible bool
	done    chan struct{}

	cancelOnce sync.Once
	cancel     chan struct{}
}

// Snapshot implements engine.Handle: nothing is visible until the render
// delay after backend completion (cancellation short-circuits the delay so
// benchmark runs do not accumulate stragglers).
func (h *delayedHandle) Snapshot() *query.Result {
	h.mu.Lock()
	v := h.visible
	h.mu.Unlock()
	if !v {
		return nil
	}
	return h.inner.Snapshot()
}

// Done implements engine.Handle.
func (h *delayedHandle) Done() <-chan struct{} { return h.done }

// Cancel implements engine.Handle.
func (h *delayedHandle) Cancel() {
	h.cancelOnce.Do(func() { close(h.cancel) })
	h.inner.Cancel()
}

var _ engine.Handle = (*delayedHandle)(nil)
