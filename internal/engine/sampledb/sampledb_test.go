package sampledb

import (
	"math"
	"testing"
	"time"

	"idebench/internal/dataset"
	"idebench/internal/engine"
	"idebench/internal/enginetest"
	"idebench/internal/ingest"
	"idebench/internal/query"
)

func TestConformance(t *testing.T) {
	enginetest.Conformance(t, func() engine.Engine { return New(Config{}) }, false)
}

func TestMultiUserScenario(t *testing.T) {
	enginetest.MultiUserScenario(t, func() engine.Engine { return New(Config{}) }, false)
}

func TestIngestScenario(t *testing.T) {
	enginetest.IngestScenario(t, func() engine.Engine { return New(Config{}) }, false)
}

func TestName(t *testing.T) {
	if New(Config{}).Name() != "sampledb" {
		t.Error("name wrong")
	}
}

func TestRejectsNormalizedSchema(t *testing.T) {
	db := enginetest.NormalizedDB(100, 1)
	if err := New(Config{}).Prepare(db, engine.Options{}); err == nil {
		t.Error("sampledb should reject normalized schemas (System X works on de-normalized data)")
	}
}

func TestSampleSizeMatchesRate(t *testing.T) {
	db := enginetest.SmallDB(100000, 5)
	e := New(Config{SampleRate: 0.05})
	if err := e.Prepare(db, engine.Options{Seed: 9}); err != nil {
		t.Fatal(err)
	}
	got := e.SampleRows()
	if math.Abs(float64(got)-5000) > 500 {
		t.Errorf("sample rows = %d, want ~5000", got)
	}
}

func TestStratificationKeepsRareGroups(t *testing.T) {
	// Build a table where one carrier has only 3 of 50000 rows; a 1%
	// uniform sample would miss it ~60% of the time, stratification never.
	schema := dataset.MustSchema([]dataset.Field{
		{Name: "carrier", Kind: dataset.Nominal},
		{Name: "delay", Kind: dataset.Quantitative},
	})
	b := dataset.NewBuilder("flights", schema, 50000)
	for i := 0; i < 50000; i++ {
		if i < 3 {
			b.AppendString(0, "RARE")
		} else if i%2 == 0 {
			b.AppendString(0, "AA")
		} else {
			b.AppendString(0, "UA")
		}
		b.AppendNum(1, float64(i%100))
	}
	fact, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	db := &dataset.Database{Fact: fact}
	e := New(Config{SampleRate: 0.01})
	if err := e.Prepare(db, engine.Options{Seed: 4}); err != nil {
		t.Fatal(err)
	}
	q := &query.Query{
		VizName: "v",
		Table:   "flights",
		Bins:    []query.Binning{{Field: "carrier", Kind: dataset.Nominal}},
		Aggs:    []query.Aggregate{{Func: query.Count}},
	}
	h, err := e.StartQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	res := enginetest.WaitResult(t, h, 30*time.Second)
	dict := fact.Column("carrier").Dict
	rare, _ := dict.Lookup("RARE")
	if _, ok := res.Bins[query.BinKey{A: int64(rare)}]; !ok {
		t.Error("stratified sample lost the rare carrier")
	}
}

func TestQualityConstantAcrossPolls(t *testing.T) {
	// The sample is fixed offline: re-running the same query returns the
	// same estimate every time (paper: quality constant across TRs).
	db := enginetest.SmallDB(50000, 21)
	e := New(Config{SampleRate: 0.1})
	if err := e.Prepare(db, engine.Options{Seed: 8}); err != nil {
		t.Fatal(err)
	}
	q := enginetest.CountByCarrier()
	h1, _ := e.StartQuery(q)
	r1 := enginetest.WaitResult(t, h1, 30*time.Second)
	h2, _ := e.StartQuery(q)
	r2 := enginetest.WaitResult(t, h2, 30*time.Second)
	if err := enginetest.ResultsEqual(r1, r2, 0); err != nil {
		t.Errorf("offline-sample estimates should be deterministic: %v", err)
	}
	if r1.Complete {
		t.Error("sample-based estimate must not claim to be exact")
	}
	if !r1.FiniteMargins() {
		t.Error("margins should be finite")
	}
	// Margins must be positive for a genuine sample.
	for _, bv := range r1.Bins {
		if bv.Margins[0] <= 0 {
			t.Error("count margins should be positive for sampled estimates")
		}
	}
}

func TestEstimatesScaleToPopulation(t *testing.T) {
	db := enginetest.SmallDB(80000, 25)
	e := New(Config{SampleRate: 0.1})
	if err := e.Prepare(db, engine.Options{Seed: 6}); err != nil {
		t.Fatal(err)
	}
	q := enginetest.CountByCarrier()
	h, _ := e.StartQuery(q)
	res := enginetest.WaitResult(t, h, 30*time.Second)
	var total float64
	for _, bv := range res.Bins {
		total += bv.Values[0]
	}
	if math.Abs(total-80000) > 0.02*80000 {
		t.Errorf("scaled total = %v, want ~80000", total)
	}
}

func TestResultWatermarkIsAbsorbedRows(t *testing.T) {
	// Regression for the watermark-semantics mismatch: SnapshotScaled used
	// to stamp the result with its scaling population, which for sampledb is
	// the represented population — numerically equal to the absorbed rows,
	// but only because Append grows both together. This pins the contract on
	// the engine.Appender axis: after live appends, a result's Watermark must
	// equal exactly what Watermark() reported for the version the query
	// captured, or min-watermark merging would let a sampled shard claim
	// freshness it doesn't have.
	const base = 40000
	db := enginetest.SmallDB(base, 11)
	e := New(Config{SampleRate: 0.1})
	if err := e.Prepare(db, engine.Options{Seed: 3}); err != nil {
		t.Fatal(err)
	}
	if w := e.Watermark(); w != base {
		t.Fatalf("prepared watermark = %d, want %d", w, base)
	}
	// Absorb two batches; the represented population and the absorbed-rows
	// watermark must advance in lockstep.
	absorbed := int64(base)
	for _, n := range []int{700, 300} {
		b := ingest.FromTable(db.Fact, 0, n)
		tbl, err := ingest.Materialize(db, b)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Append(tbl); err != nil {
			t.Fatal(err)
		}
		absorbed += int64(n)
		if w := e.Watermark(); w != absorbed {
			t.Fatalf("watermark after append = %d, want %d", w, absorbed)
		}
	}
	h, err := e.StartQuery(enginetest.CountByCarrier())
	if err != nil {
		t.Fatal(err)
	}
	res := enginetest.WaitResult(t, h, 30*time.Second)
	if res.Watermark != absorbed {
		t.Errorf("result watermark = %d, want absorbed rows %d", res.Watermark, absorbed)
	}
	if res.TotalRows != absorbed {
		t.Errorf("represented population = %d, want %d", res.TotalRows, absorbed)
	}
}

func TestUniformFallbackWithoutStrataColumn(t *testing.T) {
	schema := dataset.MustSchema([]dataset.Field{
		{Name: "x", Kind: dataset.Quantitative},
	})
	b := dataset.NewBuilder("flights", schema, 10000)
	for i := 0; i < 10000; i++ {
		b.AppendNum(0, float64(i))
	}
	fact, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	e := New(Config{SampleRate: 0.02})
	if err := e.Prepare(&dataset.Database{Fact: fact}, engine.Options{}); err != nil {
		t.Fatal(err)
	}
	if got := e.SampleRows(); math.Abs(float64(got)-200) > 50 {
		t.Errorf("uniform fallback sample = %d, want ~200", got)
	}
}

func TestEmptyTableRejected(t *testing.T) {
	schema := dataset.MustSchema([]dataset.Field{{Name: "x", Kind: dataset.Quantitative}})
	fact, err := dataset.NewBuilder("flights", schema, 0).Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := New(Config{}).Prepare(&dataset.Database{Fact: fact}, engine.Options{}); err == nil {
		t.Error("empty table should be rejected")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.SampleRate != 0.10 || c.StrataColumn != "carrier" {
		t.Errorf("defaults wrong: %+v", c)
	}
	c2 := Config{SampleRate: 1.5}.withDefaults()
	if c2.SampleRate != 0.10 {
		t.Error("out-of-range rate should fall back to default")
	}
}
