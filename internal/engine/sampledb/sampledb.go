// Package sampledb implements the paper's "System X" analogue: an in-memory
// AQP engine operating on stratified sample tables created offline. The run
// time of a query cannot be set; it is determined by the sample size chosen
// at preparation time. Consequently result quality is constant across time
// requirements — the paper's key observation about offline sampling — and
// the per-query behaviour is blocking: the (approximate) result appears only
// once the full sample has been scanned.
package sampledb

import (
	"fmt"
	"math/rand"
	"sync"

	"idebench/internal/dataset"
	"idebench/internal/engine"
	"idebench/internal/query"
	"idebench/internal/stats"
)

// Config tunes the engine.
type Config struct {
	// SampleRate is the fraction of fact rows materialized into the offline
	// stratified sample (paper: "We used a sample size of 1% of the data
	// size"; our scaled default is 10% because the absolute scale is ~250×
	// smaller — see DESIGN.md). Default 0.10.
	SampleRate float64
	// StrataColumn is the nominal column defining strata. Every stratum is
	// guaranteed at least one sampled row, which is what keeps rare groups
	// visible. Default "carrier"; falls back to plain uniform sampling when
	// the column does not exist.
	StrataColumn string
}

func (c Config) withDefaults() Config {
	if c.SampleRate <= 0 || c.SampleRate > 1 {
		c.SampleRate = 0.10
	}
	if c.StrataColumn == "" {
		c.StrataColumn = "carrier"
	}
	return c
}

// Engine is the offline stratified sampling engine.
type Engine struct {
	cfg Config

	mu       sync.RWMutex
	sample   *dataset.Database // materialized sample table (same schema/name)
	origRows int
	z        float64
	app      *dataset.TableAppender // owns the sample-table lineage
	seed     int64
	batchSeq int64 // appended batches, seeding each tail re-stratification
}

// New returns an unprepared engine.
func New(cfg Config) *Engine { return &Engine{cfg: cfg.withDefaults()} }

// Name implements engine.Engine.
func (e *Engine) Name() string { return "sampledb" }

// Prepare builds the offline stratified sample tables and runs a warm-up
// query, both of which dominate this engine's data preparation time (paper
// Sec. 5.2: System X "requires ... that each connection must execute a
// warm-up query"). Normalized schemas are rejected: System X "only works on
// de-normalized data".
func (e *Engine) Prepare(db *dataset.Database, opts engine.Options) error {
	if db.IsNormalized() {
		return fmt.Errorf("sampledb: normalized schemas are not supported")
	}
	opts = opts.Normalize()
	z, err := stats.ZScore(opts.Confidence)
	if err != nil {
		return fmt.Errorf("sampledb: %w", err)
	}
	rows, err := e.stratifiedRows(db.Fact, opts.Seed)
	if err != nil {
		return fmt.Errorf("sampledb: %w", err)
	}
	sampleTable, err := dataset.SelectRows(db.Fact, rows)
	if err != nil {
		return fmt.Errorf("sampledb: materialize sample: %w", err)
	}

	e.mu.Lock()
	e.sample = &dataset.Database{Fact: sampleTable}
	e.origRows = db.Fact.NumRows()
	e.z = z
	e.app = dataset.NewTableAppender(sampleTable, true) // SelectRows materialized a private copy
	e.seed = opts.Seed
	e.batchSeq = 0
	e.mu.Unlock()

	// Warm-up query: touch every sampled row once.
	warm := &query.Query{
		VizName: "warmup",
		Table:   db.Fact.Name,
		Bins:    []query.Binning{warmupBinning(db.Fact)},
		Aggs:    []query.Aggregate{{Func: query.Count}},
	}
	if h, err := e.StartQuery(warm); err == nil {
		<-h.Done()
	}
	return nil
}

// stratifiedRows picks sample row indices: proportional allocation per
// stratum with a minimum of one row, so rare strata survive.
func (e *Engine) stratifiedRows(fact *dataset.Table, seed int64) ([]uint32, error) {
	n := fact.NumRows()
	if n == 0 {
		return nil, dataset.ErrNoRows
	}
	rng := rand.New(rand.NewSource(seed + 17))
	col := fact.Column(e.cfg.StrataColumn)
	if col == nil || col.Field.Kind != dataset.Nominal {
		// No usable strata column: uniform sample.
		k := max(1, int(float64(n)*e.cfg.SampleRate))
		idx := stats.ReservoirSample(rng, n, k)
		out := make([]uint32, len(idx))
		for i, v := range idx {
			out[i] = uint32(v)
		}
		return out, nil
	}

	// Partition row indices by stratum.
	strata := make(map[uint32][]uint32)
	for i, code := range col.Codes {
		strata[code] = append(strata[code], uint32(i))
	}
	var out []uint32
	for _, rows := range strata {
		k := max(1, int(float64(len(rows))*e.cfg.SampleRate))
		picked := stats.ReservoirSample(rng, len(rows), k)
		for _, p := range picked {
			out = append(out, rows[p])
		}
	}
	return out, nil
}

// Append implements engine.Appender by re-stratifying the tail: the batch
// is sampled with the same per-stratum rule the offline sample was built
// with (proportional allocation at SampleRate, minimum one row per stratum
// present in the batch, deterministic per batch sequence number), and the
// chosen rows join the materialized sample while the represented population
// grows by the whole batch. Estimates therefore keep tracking the live
// table at the engine's fixed sampling rate — the offline-sampling
// trade-off the paper measures, extended to a moving target.
func (e *Engine) Append(rows *dataset.Table) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.sample == nil {
		return engine.ErrNotPrepared
	}
	e.batchSeq++
	picked, err := e.tailRows(rows, e.seed+17+31*e.batchSeq)
	if err != nil {
		return fmt.Errorf("sampledb: append: %w", err)
	}
	if len(picked) > 0 {
		sub, err := dataset.SelectRows(rows, picked)
		if err != nil {
			return fmt.Errorf("sampledb: append: %w", err)
		}
		newSample, err := e.app.Append(sub)
		if err != nil {
			return fmt.Errorf("sampledb: append: %w", err)
		}
		e.sample = &dataset.Database{Fact: newSample}
	}
	e.origRows += rows.NumRows()
	return nil
}

// tailRows picks the batch row indices to fold into the sample, mirroring
// stratifiedRows on the batch alone.
func (e *Engine) tailRows(batch *dataset.Table, seed int64) ([]uint32, error) {
	n := batch.NumRows()
	if n == 0 {
		return nil, nil
	}
	rng := rand.New(rand.NewSource(seed))
	col := batch.Column(e.cfg.StrataColumn)
	if col == nil || col.Field.Kind != dataset.Nominal {
		k := max(1, int(float64(n)*e.cfg.SampleRate))
		idx := stats.ReservoirSample(rng, n, k)
		out := make([]uint32, len(idx))
		for i, v := range idx {
			out[i] = uint32(v)
		}
		return out, nil
	}
	strata := make(map[uint32][]uint32)
	var codes []uint32
	for i, code := range col.Codes {
		if _, ok := strata[code]; !ok {
			codes = append(codes, code)
		}
		strata[code] = append(strata[code], uint32(i))
	}
	// Iterate strata in first-appearance order so the picked set is
	// deterministic for a given batch (map order would jitter replays).
	var out []uint32
	for _, code := range codes {
		rows := strata[code]
		k := max(1, int(float64(len(rows))*e.cfg.SampleRate))
		for _, p := range stats.ReservoirSample(rng, len(rows), k) {
			out = append(out, rows[p])
		}
	}
	return out, nil
}

// Watermark implements engine.Appender: the represented population.
func (e *Engine) Watermark() int64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return int64(e.origRows)
}

// scanChunk is the number of sample rows folded between cancellation
// checks: two vectorized batches.
const scanChunk = 2 * engine.BatchRows

// StartQuery implements engine.Engine: a single-threaded blocking scan over
// the sample table (vectorized batch kernels, like the column stores the
// engine models), published as a scaled estimate with CLT margins.
func (e *Engine) StartQuery(q *query.Query) (engine.Handle, error) {
	e.mu.RLock()
	sample, origRows, z := e.sample, e.origRows, e.z
	e.mu.RUnlock()
	if sample == nil {
		return nil, engine.ErrNotPrepared
	}
	plan, err := engine.Compile(sample, q)
	if err != nil {
		return nil, err
	}

	h := engine.NewAsyncHandle()
	go func() {
		defer h.Finish()
		gs := engine.NewGroupState(plan)
		n := plan.NumRows
		for lo := 0; lo < n; lo += scanChunk {
			if h.Cancelled() {
				return // blocking model: nothing delivered before completion
			}
			hi := lo + scanChunk
			if hi > n {
				hi = n
			}
			gs.ScanRange(lo, hi)
		}
		if h.Cancelled() {
			return
		}
		// origRows is both the represented population and the absorbed-rows
		// watermark: Append grows origRows by every batch row, so the pair
		// captured above names one consistent data version.
		res := gs.SnapshotScaled(int64(n), int64(origRows), int64(origRows), 0, z)
		// The sample is fixed: the estimate is final but never exact.
		res.Complete = false
		h.Publish(res)
	}()
	return h, nil
}

// OpenSession implements engine.Engine. The offline sample is immutable and
// queries are stateless, so every session shares the engine directly.
func (e *Engine) OpenSession() engine.Session { return engine.NewEngineSession(e) }

// LinkVizs implements engine.Engine; offline sampling ignores link hints.
func (e *Engine) LinkVizs(from, to string) {}

// DeleteViz implements engine.Engine.
func (e *Engine) DeleteViz(name string) {}

// WorkflowStart implements engine.Engine.
func (e *Engine) WorkflowStart() {}

// WorkflowEnd implements engine.Engine.
func (e *Engine) WorkflowEnd() {}

// SampleRows reports the materialized sample size (for tests and the data
// preparation report).
func (e *Engine) SampleRows() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.sample == nil {
		return 0
	}
	return e.sample.Fact.NumRows()
}

var (
	_ engine.Engine   = (*Engine)(nil)
	_ engine.Appender = (*Engine)(nil)
)

// warmupBinning picks any column for the warm-up scan.
func warmupBinning(t *dataset.Table) query.Binning {
	for _, f := range t.Schema.Fields {
		if f.Kind == dataset.Nominal {
			return query.Binning{Field: f.Name, Kind: dataset.Nominal}
		}
	}
	return query.Binning{Field: t.Schema.Fields[0].Name, Kind: dataset.Quantitative, Width: 1e9}
}
