package engine

// Capabilities is the resolved set of optional interfaces an Engine
// implements. Engines opt into extra behavior — live ingest, load shedding,
// durability, scatter-gather observability — by implementing small optional
// interfaces; before this struct existed every consumer re-discovered them
// with ad-hoc type assertions scattered across the serving layer, the
// coordinator, the durable wiring and the CLI. CapabilitiesOf performs that
// discovery once; a nil field means the capability is absent.
//
// The struct is a snapshot of the engine's static type, so it is safe to
// resolve at construction time and keep for the engine's lifetime: Go
// interface satisfaction cannot change at runtime.
type Capabilities struct {
	// Appender absorbs live append batches (implies Watermarker).
	Appender Appender
	// Watermarker reports the absorbed data version. Set whenever the
	// engine has a Watermark method — including watermark-only backends
	// like *server.Remote that cannot Append locally.
	Watermarker Watermarker
	// Shedder cancels speculative work under overload pressure.
	Shedder Shedder
	// ScanObserver reports attached shared-scan consumers.
	ScanObserver ScanObserver
	// ViewSnapshotter exposes the prepared storage for checkpointing and
	// hash-range handoff.
	ViewSnapshotter ViewSnapshotter
	// ReorderedPreparer adopts already-reordered storage (warm restart,
	// rebalance target).
	ReorderedPreparer ReorderedPreparer
	// ShardObserver reports per-shard watermarks (coordinator engines).
	ShardObserver ShardObserver
	// TopologyObserver reports replica-set topology and health
	// (replicated coordinator engines).
	TopologyObserver TopologyObserver
	// PartialSnapshotter exposes raw accumulator fragments. Note this is
	// normally a capability of query *handles*, not engines; it is resolved
	// here too for the rare engine that implements it directly, and so the
	// conformance suite can assert the full set in one place.
	PartialSnapshotter PartialSnapshotter
}

// CapabilitiesOf resolves every optional capability of e in one pass.
// Callers resolve once (at server construction, coordinator construction,
// CLI wiring) instead of asserting per call site.
func CapabilitiesOf(e Engine) Capabilities {
	var c Capabilities
	if e == nil {
		return c
	}
	if v, ok := e.(Appender); ok {
		c.Appender = v
	}
	if v, ok := e.(Watermarker); ok {
		c.Watermarker = v
	}
	if v, ok := e.(Shedder); ok {
		c.Shedder = v
	}
	if v, ok := e.(ScanObserver); ok {
		c.ScanObserver = v
	}
	if v, ok := e.(ViewSnapshotter); ok {
		c.ViewSnapshotter = v
	}
	if v, ok := e.(ReorderedPreparer); ok {
		c.ReorderedPreparer = v
	}
	if v, ok := e.(ShardObserver); ok {
		c.ShardObserver = v
	}
	if v, ok := e.(TopologyObserver); ok {
		c.TopologyObserver = v
	}
	if v, ok := e.(PartialSnapshotter); ok {
		c.PartialSnapshotter = v
	}
	return c
}

// TopologyObserver is the optional elasticity observability capability:
// replicated coordinator engines report their replica-set topology — which
// replicas serve each hash partition, their health, their translated
// watermarks — plus the anti-entropy counters. The serving layer embeds it
// in /healthz so operators (and the chaos e2e) can see failover state
// without querying.
type TopologyObserver interface {
	Topology() Topology
}

// Topology describes a replicated scatter-gather tier at one instant.
type Topology struct {
	// Partitions lists the replica set of each hash partition, indexed by
	// partition ID.
	Partitions []PartitionTopology `json:"partitions"`
	// AntiEntropyChecks counts completed background divergence checks.
	AntiEntropyChecks int64 `json:"anti_entropy_checks"`
	// AntiEntropyMismatches counts checks whose two replicas disagreed
	// bitwise at the same watermark — the replica-divergence alarm. Any
	// non-zero value is an alarm condition.
	AntiEntropyMismatches int64 `json:"anti_entropy_mismatches"`
	// AntiEntropyErrors counts fragment runs the anti-entropy sweep could
	// not complete (replica unreachable, query failed). A climbing value
	// with flat AntiEntropyChecks means the divergence watch is wedged,
	// not quiet.
	AntiEntropyErrors int64 `json:"anti_entropy_errors"`
	// MinCoverage is the configured population-fraction floor below which
	// degraded merges are refused.
	MinCoverage float64 `json:"min_coverage"`
}

// PartitionTopology is one hash partition's replica set.
type PartitionTopology struct {
	// Replicas in failover-preference order; Replicas[0] is the preferred
	// (primary) serving replica.
	Replicas []ReplicaTopology `json:"replicas"`
}

// ReplicaTopology is one replica's observed state.
type ReplicaTopology struct {
	// Name identifies the replica (a remote address, or the backend
	// engine's name for in-process replicas).
	Name string `json:"name"`
	// Healthy reflects the last health probe / query outcome.
	Healthy bool `json:"healthy"`
	// Synced is false once the replica has missed a routed ingest batch
	// (it still serves, at an honestly stale watermark) — a rebalance
	// handoff is what brings it back in sync.
	Synced bool `json:"synced"`
	// Quarantined marks a replica whose state was caught diverging from
	// its siblings (bitwise mismatch at a common watermark, or rows it was
	// never routed). It is excluded from query fan-out and ingest entirely
	// until re-prepared and readmitted through the rebalance path.
	Quarantined bool `json:"quarantined,omitempty"`
	// Addr is the replica's dialable address, empty for in-process
	// replicas. Persisted with the control-plane topology so a standby
	// coordinator can re-dial the data plane at takeover.
	Addr string `json:"addr,omitempty"`
	// Watermark is the replica's confirmed local watermark translated onto
	// the coordinator's global row axis.
	Watermark int64 `json:"watermark"`
}
