package ingest

import (
	"fmt"
	"sync"

	"idebench/internal/datagen"
)

// Source produces deterministic ingest batches distributed like the
// benchmark's synthetic flights data: a copula scaler is fitted once on a
// generated seed table, and each batch draws fresh rows from it under a
// per-batch seed. The same (seed, batch index, size) always yields the same
// rows, which is what lets a network replay apply identical batches on the
// client (ground-truth lineage) and the server (engine lineage), and what
// the replay-determinism tests pin.
type Source struct {
	mu      sync.Mutex
	scaler  *datagen.Scaler
	seed    int64
	batches int64
}

// NewSource fits a source for the standard flights schema. seedRows sizes
// the generator's seed table (a few thousand is plenty — it only shapes the
// marginals the copula reproduces).
func NewSource(seedRows int, seed int64) (*Source, error) {
	if seedRows < 2000 {
		seedRows = 2000
	}
	seedTbl, err := datagen.GenerateSeed(seedRows, seed)
	if err != nil {
		return nil, fmt.Errorf("ingest: source seed: %w", err)
	}
	sc, err := datagen.NewScaler(seedTbl, seed+1)
	if err != nil {
		return nil, fmt.Errorf("ingest: source scaler: %w", err)
	}
	return &Source{scaler: sc, seed: seed}, nil
}

// Next generates the next batch of n rows. Batches are numbered from 1 in
// generation order; the sequence is part of the wire document.
func (s *Source) Next(n int) (*Batch, error) {
	if n <= 0 {
		return nil, fmt.Errorf("ingest: batch size %d", n)
	}
	s.mu.Lock()
	s.batches++
	seq := s.batches
	s.mu.Unlock()
	tbl, err := s.scaler.Generate(n, s.seed+1_000_000+seq*7919)
	if err != nil {
		return nil, fmt.Errorf("ingest: generate batch %d: %w", seq, err)
	}
	b := FromTable(tbl, 0, tbl.NumRows())
	b.Seq = seq
	return b, nil
}

var _ BatchSource = (*Source)(nil)

// BatchSource abstracts where ingest events' rows come from; tests inject
// fixed streams, benchmarks use the datagen-backed Source.
type BatchSource interface {
	Next(n int) (*Batch, error)
}

// FixedSource replays a pre-built list of batches in order (tests).
type FixedSource struct {
	mu      sync.Mutex
	batches []*Batch
	next    int
}

// NewFixedSource returns a source that hands out the given batches. Next's
// size argument is ignored; running past the end is an error.
func NewFixedSource(batches ...*Batch) *FixedSource {
	return &FixedSource{batches: batches}
}

// Next implements BatchSource.
func (s *FixedSource) Next(int) (*Batch, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.next >= len(s.batches) {
		return nil, fmt.Errorf("ingest: fixed source exhausted after %d batches", len(s.batches))
	}
	b := s.batches[s.next]
	s.next++
	return b, nil
}
