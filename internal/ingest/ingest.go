// Package ingest is the live-ingestion subsystem: the wire format for
// append-only row batches, their materialization against a prepared
// database (dictionary interning, schema and foreign-key validation), a
// deterministic batch source distributed like the benchmark's synthetic
// data, and the Harness that replays mixed query+ingest timelines — owning
// the versioned ground-truth lineage and fanning each batch out to every
// engine that implements engine.Appender.
//
// The benchmark's static-table assumption is the one IDEBench shares with
// most of the systems it measures; this subsystem removes it. Batches are
// strictly append-only (no updates or deletes), which keeps every engine's
// incremental-maintenance story monotone: absorbing a batch can only add
// rows to bins, never retract them.
package ingest

import (
	"encoding/json"
	"fmt"
	"strconv"

	"idebench/internal/dataset"
)

// Value is one cell of an ingested row: a nominal string or a quantitative
// number, discriminated by IsStr. On the wire it is a bare JSON string or
// number, so a batch document reads like a row dump:
//
//	{"table":"flights","rows":[["AA","SFO",12.5,430], ...]}
type Value struct {
	Str   string
	Num   float64
	IsStr bool
}

// MarshalJSON implements json.Marshaler.
func (v Value) MarshalJSON() ([]byte, error) {
	if v.IsStr {
		return json.Marshal(v.Str)
	}
	return json.Marshal(v.Num)
}

// UnmarshalJSON implements json.Unmarshaler: accepts exactly a JSON string
// or a finite JSON number.
func (v *Value) UnmarshalJSON(data []byte) error {
	if len(data) == 0 {
		return fmt.Errorf("ingest: empty value")
	}
	if data[0] == '"' {
		v.IsStr = true
		v.Num = 0
		return json.Unmarshal(data, &v.Str)
	}
	// JSON has no NaN/Inf literals and ParseFloat fails (ErrRange) on
	// magnitudes that would saturate to ±Inf, so a successful parse is
	// always a storable finite float64.
	f, err := strconv.ParseFloat(string(data), 64)
	if err != nil {
		return fmt.Errorf("ingest: value %s is neither string nor finite number", data)
	}
	v.IsStr = false
	v.Str = ""
	v.Num = f
	return nil
}

// Row is one ingested row's values in schema field order.
type Row []Value

// Batch is one append-only ingest event: rows appended atomically to one
// table. Seq is the event's position in its stream (informational on the
// wire; the server broadcasts its post-apply watermark separately).
type Batch struct {
	Table string `json:"table"`
	Rows  []Row  `json:"rows"`
	Seq   int64  `json:"seq,omitempty"`
}

// Validate checks structural well-formedness independent of any schema:
// named table, at least one row, rectangular rows with at least one column.
func (b *Batch) Validate() error {
	if b.Table == "" {
		return fmt.Errorf("ingest: batch without table")
	}
	if len(b.Rows) == 0 {
		return fmt.Errorf("ingest: batch with no rows")
	}
	arity := len(b.Rows[0])
	if arity == 0 {
		return fmt.Errorf("ingest: batch rows have no columns")
	}
	for i, r := range b.Rows {
		if len(r) != arity {
			return fmt.Errorf("ingest: batch row %d has %d values, row 0 has %d", i, len(r), arity)
		}
	}
	return nil
}

// DecodeBatch parses and structurally validates one batch document.
func DecodeBatch(data []byte) (*Batch, error) {
	var b Batch
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("ingest: decode batch: %w", err)
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return &b, nil
}

// Encode marshals the batch for the wire.
func (b *Batch) Encode() ([]byte, error) {
	data, err := json.Marshal(b)
	if err != nil {
		return nil, fmt.Errorf("ingest: encode batch: %w", err)
	}
	return data, nil
}

// NumRows returns the batch size.
func (b *Batch) NumRows() int { return len(b.Rows) }

// Materialize converts a batch into an appendable table against db: values
// are validated against the fact schema (arity and kind per field), nominal
// strings are interned into the fact table's dictionaries (shared with
// every engine copy, so the resulting codes are valid everywhere), and on a
// normalized schema the foreign keys are checked against the dimension
// tables. The returned table is exactly what engine.Appender.Append and
// dataset.TableAppender.Append consume.
func Materialize(db *dataset.Database, b *Batch) (*dataset.Table, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	fact := db.Fact
	if b.Table != fact.Name {
		return nil, fmt.Errorf("ingest: batch targets table %q, prepared fact table is %q", b.Table, fact.Name)
	}
	schema := fact.Schema
	bld := dataset.NewBuilder(fact.Name, schema, len(b.Rows))
	for j, f := range schema.Fields {
		if f.Kind == dataset.Nominal {
			bld.SetDict(j, fact.Columns[j].Dict)
		}
	}
	for i, row := range b.Rows {
		if len(row) != schema.Len() {
			return nil, fmt.Errorf("ingest: row %d has %d values for %d fields", i, len(row), schema.Len())
		}
		for j, f := range schema.Fields {
			v := row[j]
			switch {
			case f.Kind == dataset.Nominal && !v.IsStr:
				return nil, fmt.Errorf("ingest: row %d: field %q is nominal, got number %v", i, f.Name, v.Num)
			case f.Kind == dataset.Quantitative && v.IsStr:
				return nil, fmt.Errorf("ingest: row %d: field %q is quantitative, got string %q", i, f.Name, v.Str)
			case f.Kind == dataset.Nominal:
				bld.AppendString(j, v.Str)
			default:
				bld.AppendNum(j, v.Num)
			}
		}
	}
	tbl, err := bld.Build()
	if err != nil {
		return nil, fmt.Errorf("ingest: materialize: %w", err)
	}
	if err := db.ValidateFKBatch(tbl); err != nil {
		return nil, fmt.Errorf("ingest: %w", err)
	}
	return tbl, nil
}

// FromTable converts rows [lo, hi) of t into a batch (the inverse of
// Materialize, used by the deterministic source and as fuzz seeds).
func FromTable(t *dataset.Table, lo, hi int) *Batch {
	if lo < 0 {
		lo = 0
	}
	if hi > t.NumRows() {
		hi = t.NumRows()
	}
	b := &Batch{Table: t.Name}
	for r := lo; r < hi; r++ {
		row := make(Row, len(t.Columns))
		for j, c := range t.Columns {
			if c.Field.Kind == dataset.Nominal {
				row[j] = Value{IsStr: true, Str: c.Dict.Value(c.Codes[r])}
			} else {
				row[j] = Value{Num: c.Nums[r]}
			}
		}
		b.Rows = append(b.Rows, row)
	}
	return b
}
