package ingest_test

import (
	"testing"
	"time"

	"idebench/internal/dataset"
	"idebench/internal/engine"
	"idebench/internal/engine/exactdb"
	"idebench/internal/enginetest"
	"idebench/internal/ingest"
	"idebench/internal/query"
)

// fuzzDB builds the small flights database the materialization tests and
// the fuzz target validate against.
func fuzzDB(tb testing.TB) *dataset.Database {
	return enginetest.SmallDB(2000, 5)
}

func TestMaterializeRoundTrip(t *testing.T) {
	db := fuzzDB(t)
	// A batch cut from the table itself must materialize to identical rows.
	b := ingest.FromTable(db.Fact, 100, 120)
	rows, err := ingest.Materialize(db, b)
	if err != nil {
		t.Fatal(err)
	}
	if rows.NumRows() != 20 {
		t.Fatalf("materialized %d rows, want 20", rows.NumRows())
	}
	for j, col := range rows.Columns {
		orig := db.Fact.Columns[j]
		if col.Field.Kind == dataset.Nominal {
			if col.Dict != orig.Dict {
				t.Fatalf("column %q does not share the fact dictionary", col.Field.Name)
			}
			for i := 0; i < 20; i++ {
				if col.Codes[i] != orig.Codes[100+i] {
					t.Fatalf("column %q row %d: code %d, want %d", col.Field.Name, i, col.Codes[i], orig.Codes[100+i])
				}
			}
		} else {
			for i := 0; i < 20; i++ {
				if col.Nums[i] != orig.Nums[100+i] {
					t.Fatalf("column %q row %d: %v, want %v", col.Field.Name, i, col.Nums[i], orig.Nums[100+i])
				}
			}
		}
	}
}

func TestMaterializeRejects(t *testing.T) {
	db := fuzzDB(t)
	cases := map[string]*ingest.Batch{
		"wrong table": {Table: "nope", Rows: []ingest.Row{{{IsStr: true, Str: "AA"}}}},
		"wrong arity": {Table: "flights", Rows: []ingest.Row{{{IsStr: true, Str: "AA"}}}},
		"kind confusion": {Table: "flights", Rows: []ingest.Row{{
			{Num: 1}, {IsStr: true, Str: "CA"}, {Num: 1}, {Num: 2}, {Num: 3},
		}}},
	}
	for name, b := range cases {
		if _, err := ingest.Materialize(db, b); err == nil {
			t.Errorf("%s: batch accepted", name)
		}
	}
}

func TestMaterializeInternsNewValues(t *testing.T) {
	db := fuzzDB(t)
	dict := db.Fact.Columns[0].Dict
	before := dict.Len()
	b := &ingest.Batch{Table: "flights", Rows: []ingest.Row{{
		{IsStr: true, Str: "ZZ-new-carrier"}, {IsStr: true, Str: "CA"},
		{Num: 1}, {Num: 2}, {Num: 3},
	}}}
	rows, err := ingest.Materialize(db, b)
	if err != nil {
		t.Fatal(err)
	}
	if dict.Len() != before+1 {
		t.Fatalf("dict grew by %d, want 1", dict.Len()-before)
	}
	if got := rows.Columns[0].Dict.Value(rows.Columns[0].Codes[0]); got != "ZZ-new-carrier" {
		t.Fatalf("interned value renders as %q", got)
	}
}

func TestSourceDeterministic(t *testing.T) {
	mk := func() []*ingest.Batch {
		src, err := ingest.NewSource(2000, 42)
		if err != nil {
			t.Fatal(err)
		}
		var out []*ingest.Batch
		for i := 0; i < 3; i++ {
			b, err := src.Next(50)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, b)
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		ea, _ := a[i].Encode()
		eb, _ := b[i].Encode()
		if string(ea) != string(eb) {
			t.Fatalf("batch %d differs across identically-seeded sources", i)
		}
	}
}

// TestHarnessVersionedTruth drives the harness against a real engine and
// checks the versioned ground-truth contract: the truth at an old watermark
// stays frozen while the live watermark advances, and the truth at the
// newest watermark counts the ingested rows.
func TestHarnessVersionedTruth(t *testing.T) {
	db := fuzzDB(t)
	base := int64(db.NumRows())
	eng := exactdb.New()
	if err := eng.Prepare(db, engine.Options{Parallelism: 1}); err != nil {
		t.Fatal(err)
	}
	// A fixed batch cut from the table itself: the source abstraction is
	// schema-agnostic, and the flights-shaped Source is covered elsewhere.
	src := ingest.NewFixedSource(ingest.FromTable(db.Fact, 0, 300))
	h := ingest.NewHarness(db, src, ingest.EngineSink{A: eng})

	q := &query.Query{
		VizName: "v", Table: "flights",
		Bins: []query.Binning{{Field: "carrier", Kind: dataset.Nominal}},
		Aggs: []query.Aggregate{{Func: query.Count}},
	}
	truth0, err := h.TruthAt(q, base)
	if err != nil {
		t.Fatal(err)
	}

	w, err := h.Ingest(300)
	if err != nil {
		t.Fatal(err)
	}
	if w != base+300 {
		t.Fatalf("watermark %d, want %d", w, base+300)
	}
	if h.Watermark() != w || h.IngestedRows() != 300 || h.Batches() != 1 {
		t.Fatalf("harness counters: wm=%d ingested=%d batches=%d", h.Watermark(), h.IngestedRows(), h.Batches())
	}
	if eng.Watermark() != w {
		t.Fatalf("engine watermark %d, want %d", eng.Watermark(), w)
	}

	// Old version stays frozen; total count at the new version covers the
	// ingested rows.
	again, err := h.TruthAt(q, base)
	if err != nil {
		t.Fatal(err)
	}
	total := func(r *query.Result) (s float64) {
		for _, bv := range r.Bins {
			s += bv.Values[0]
		}
		return
	}
	if total(again) != total(truth0) || total(truth0) != float64(base) {
		t.Fatalf("old-version truth moved: %v then %v (want %d)", total(truth0), total(again), base)
	}
	truth1, err := h.TruthAt(q, w)
	if err != nil {
		t.Fatal(err)
	}
	if total(truth1) != float64(base+300) {
		t.Fatalf("new-version truth counts %v rows, want %d", total(truth1), base+300)
	}

	// The engine's fresh query must agree bitwise with the new truth
	// (COUNT: integers, no fold-order slack).
	hdl, err := eng.StartQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	res := enginetest.WaitResult(t, hdl, 30*time.Second)
	if res == nil {
		t.Fatal("no result")
	}
	if res.Watermark != w {
		t.Fatalf("result watermark %d, want %d", res.Watermark, w)
	}
	for k, bv := range truth1.Bins {
		gv, ok := res.Bins[k]
		if !ok || gv.Values[0] != bv.Values[0] {
			t.Fatalf("bin %v: engine %v, truth %v", k, gv, bv.Values[0])
		}
	}

	// A watermark between versions resolves to the nearest version below.
	if v := h.ViewAt(base + 5); int64(v.Fact.NumRows()) != base {
		t.Fatalf("mid-version view has %d rows, want %d", v.Fact.NumRows(), base)
	}
}
