package ingest_test

import (
	"encoding/json"
	"reflect"
	"testing"

	"idebench/internal/ingest"
)

// FuzzIngestRecord fuzzes the ingest-batch wire format: decoding arbitrary
// JSON must never panic, anything DecodeBatch accepts must re-encode to a
// fixpoint (decode→encode→decode is identity), and materialization of an
// accepted batch against a real schema must either succeed or fail with an
// error — never corrupt state. Seeds come from the datagen-backed source,
// so the corpus starts from documents shaped like real ingest traffic.
func FuzzIngestRecord(f *testing.F) {
	src, err := ingest.NewSource(2000, 7)
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		b, err := src.Next(3 + i*5)
		if err != nil {
			f.Fatal(err)
		}
		data, err := b.Encode()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	// Awkward shapes: wrong arity, empty rows, type confusion, huge and
	// tiny numbers, quoting hazards, nulls and nested junk.
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"table":"flights","rows":[]}`))
	f.Add([]byte(`{"table":"flights","rows":[["AA",1],[2]]}`))
	f.Add([]byte(`{"table":"flights","rows":[[null]]}`))
	f.Add([]byte(`{"table":"flights","rows":[[true,{"x":1}]]}`))
	f.Add([]byte(`{"table":"flights","rows":[[1e999]]}`))
	f.Add([]byte(`{"table":"fl'--ights","rows":[["O'Hare",-0.0,5e-324]]}`))
	f.Add([]byte(`{"table":"flights","seq":-9,"rows":[["AA","SFO",12.5,430,1,2,3,4]]}`))

	db := fuzzDB(f)

	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := ingest.DecodeBatch(data)
		if err != nil {
			return // rejected documents are fine; panics are not
		}
		enc, err := b.Encode()
		if err != nil {
			t.Fatalf("accepted batch failed to encode: %v", err)
		}
		b2, err := ingest.DecodeBatch(enc)
		if err != nil {
			t.Fatalf("round-trip decode failed: %v\nencoded: %s", err, enc)
		}
		if !reflect.DeepEqual(b, b2) {
			t.Fatalf("decode→encode→decode changed the batch:\n was: %#v\n now: %#v", b, b2)
		}
		enc2, err := b2.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if string(enc) != string(enc2) {
			t.Fatalf("encoding not a fixpoint:\n was: %s\n now: %s", enc, enc2)
		}
		// Materialization must not panic on any accepted document; it may
		// reject (wrong table, arity, kinds, FK range).
		if rows, err := ingest.Materialize(db, b); err == nil {
			if rows.NumRows() != b.NumRows() {
				t.Fatalf("materialized %d rows from a %d-row batch", rows.NumRows(), b.NumRows())
			}
		}
	})
}

// fuzzJSONEquiv guards against a subtle trap: two JSON documents that
// decode to the same batch must encode identically (the canonical form).
func TestBatchEncodingCanonical(t *testing.T) {
	a, err := ingest.DecodeBatch([]byte(`{"rows":[["x",1]],"table":"t"}`))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ingest.DecodeBatch([]byte(`{"table":"t","rows":[["x",1.0]]}`))
	if err != nil {
		t.Fatal(err)
	}
	ea, _ := a.Encode()
	eb, _ := b.Encode()
	if string(ea) != string(eb) {
		t.Fatalf("equivalent documents encode differently:\n %s\n %s", ea, eb)
	}
	var raw json.RawMessage = ea
	_ = raw
}
