package ingest

import (
	"fmt"
	"sort"
	"sync"

	"idebench/internal/dataset"
	"idebench/internal/engine"
	"idebench/internal/query"
)

// Sink receives each applied ingest event. The harness hands every sink
// both forms of the batch — the wire document and its materialization
// against the live view — so in-process engines append the table while a
// network forwarder ships the document.
type Sink interface {
	ApplyBatch(b *Batch, rows *dataset.Table) error
}

// EngineSink adapts an engine.Appender into a Sink.
type EngineSink struct{ A engine.Appender }

// ApplyBatch implements Sink.
func (s EngineSink) ApplyBatch(_ *Batch, rows *dataset.Table) error { return s.A.Append(rows) }

// Harness owns one live ingestion timeline: the versioned ground-truth
// lineage (a private copy of the base database, grown batch by batch), the
// batch source, and the sinks every event fans out to. It implements the
// driver's IngestSink contract, which is how mixed query+ingest workflows
// replay: ingest interactions call Ingest, and every fetched result is
// evaluated against the ground truth of the data version its watermark
// names — so accuracy metrics stay meaningful under staleness instead of
// comparing a pre-append answer to a post-append truth.
type Harness struct {
	src   BatchSource
	sinks []Sink

	mu       sync.Mutex
	gt       *dataset.TableAppender
	dims     []*dataset.Dimension
	views    map[int64]*dataset.Database // watermark (rows) → view
	truths   map[truthKey]*truthEntry    // (version, signature) → exact result
	marks    []int64                     // sorted watermarks with views
	base     int64                       // rows before any ingestion
	ingested int64                       // rows appended so far
	batches  int64
}

// truthKey identifies one exact reference: a data version and a query
// signature. (The harness keeps its own versioned cache rather than one
// groundtruth.Cache per version — same memoization, no extra dependency.)
type truthKey struct {
	version int64
	sig     string
}

type truthEntry struct {
	once sync.Once
	res  *query.Result
	err  error
}

// NewHarness builds a harness over base. The ground-truth lineage copies
// base's fact storage once (base is typically shared with engines that hold
// it by pointer), then grows by amortized appends.
func NewHarness(base *dataset.Database, src BatchSource, sinks ...Sink) *Harness {
	h := &Harness{
		src:    src,
		sinks:  sinks,
		gt:     dataset.NewTableAppender(base.Fact, false),
		dims:   base.Dimensions,
		views:  make(map[int64]*dataset.Database),
		truths: make(map[truthKey]*truthEntry),
		base:   int64(base.Fact.NumRows()),
	}
	h.recordViewLocked(&dataset.Database{Fact: h.gt.View(), Dimensions: h.dims})
	return h
}

// recordViewLocked indexes a view by its watermark. Caller holds h.mu (or
// is the constructor).
func (h *Harness) recordViewLocked(db *dataset.Database) {
	w := int64(db.Fact.NumRows())
	if _, ok := h.views[w]; !ok {
		h.views[w] = db
		h.marks = append(h.marks, w)
	}
}

// Ingest draws the next batch of n rows from the source, applies it to the
// ground-truth lineage and to every sink, and returns the new watermark.
// Events are serialized: one data version exists at a time, everywhere.
func (h *Harness) Ingest(n int) (int64, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	b, err := h.src.Next(n)
	if err != nil {
		return 0, err
	}
	view := h.views[h.base+h.ingested]
	rows, err := Materialize(view, b)
	if err != nil {
		return 0, err
	}
	newFact, err := h.gt.Append(rows)
	if err != nil {
		return 0, err
	}
	h.recordViewLocked(&dataset.Database{Fact: newFact, Dimensions: h.dims})
	h.ingested += int64(rows.NumRows())
	h.batches++
	for _, s := range h.sinks {
		if err := s.ApplyBatch(b, rows); err != nil {
			return 0, fmt.Errorf("ingest: batch %d: %w", h.batches, err)
		}
	}
	return h.base + h.ingested, nil
}

// Watermark returns the freshest ingested row count: base rows plus
// everything applied so far. The staleness of a result is Watermark minus
// the result's own watermark at fetch time.
func (h *Harness) Watermark() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.base + h.ingested
}

// IngestedRows returns the total rows appended (excluding the base).
func (h *Harness) IngestedRows() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.ingested
}

// Batches returns the number of applied ingest events.
func (h *Harness) Batches() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.batches
}

// ViewAt returns the table view of the given watermark (or the nearest
// version at or below it, for watermarks that are not batch boundaries).
func (h *Harness) ViewAt(watermark int64) *dataset.Database {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.viewAtLocked(watermark)
}

func (h *Harness) viewAtLocked(watermark int64) *dataset.Database {
	if db, ok := h.views[watermark]; ok {
		return db
	}
	// Engines only ever answer at batch boundaries, but be robust: take the
	// nearest recorded version at or below the requested watermark.
	i := sort.Search(len(h.marks), func(i int) bool { return h.marks[i] > watermark })
	if i == 0 {
		return h.views[h.marks[0]]
	}
	return h.views[h.marks[i-1]]
}

// TruthAt computes (and caches) the exact reference for q against the data
// version named by watermark. Concurrent misses for the same (version,
// signature) compute once.
func (h *Harness) TruthAt(q *query.Query, watermark int64) (*query.Result, error) {
	h.mu.Lock()
	db := h.viewAtLocked(watermark)
	key := truthKey{version: int64(db.Fact.NumRows()), sig: q.Signature()}
	e, ok := h.truths[key]
	if !ok {
		e = &truthEntry{}
		h.truths[key] = e
	}
	h.mu.Unlock()
	e.once.Do(func() {
		plan, err := engine.Compile(db, q)
		if err != nil {
			e.err = err
			return
		}
		gs := engine.NewGroupState(plan)
		gs.ScanRange(0, plan.NumRows)
		e.res = gs.SnapshotExact()
	})
	return e.res, e.err
}

// FinalView returns the current (latest) database view — what a cold
// Prepare after quiesce would ingest.
func (h *Harness) FinalView() *dataset.Database {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.views[h.base+h.ingested]
}

// Applier applies wire batches to one engine, serialized: the server-side
// receiving end of the ingest frame type. db provides the schema and the
// shared dictionaries batches are materialized against (its row count may
// be stale; only schema, dictionaries and dimension tables are read).
type Applier struct {
	mu  sync.Mutex
	db  *dataset.Database
	app engine.Appender
	log func(*Batch) error
}

// NewApplier wraps a prepared appender engine.
func NewApplier(db *dataset.Database, app engine.Appender) *Applier {
	return &Applier{db: db, app: app}
}

// SetLog installs a write-ahead hook, called under the apply mutex after a
// batch has fully validated (materialized) but before it reaches the
// engine. The durable serving path points this at the WAL's fsyncing
// append, which yields the two invariants redo recovery needs: a batch is
// never applied (or acked, or broadcast) unless it is already durable, and
// the WAL never contains a batch the engine would reject — validation
// happened first, against the same database the replay will see. Because
// the hook runs under the same mutex that serializes applies, WAL order is
// apply order. A hook error aborts the apply; the batch reaches neither
// the log nor the engine.
func (a *Applier) SetLog(log func(*Batch) error) {
	a.mu.Lock()
	a.log = log
	a.mu.Unlock()
}

// Apply materializes and appends one batch, returning the engine's
// post-apply watermark. With a SetLog hook installed the order is
// strictly validate → log (fsync) → apply.
func (a *Applier) Apply(b *Batch) (int64, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	rows, err := Materialize(a.db, b)
	if err != nil {
		return 0, err
	}
	if a.log != nil {
		if err := a.log(b); err != nil {
			return 0, fmt.Errorf("ingest: write-ahead log: %w", err)
		}
	}
	if err := a.app.Append(rows); err != nil {
		return 0, err
	}
	return a.app.Watermark(), nil
}
