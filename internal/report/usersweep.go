package report

import (
	"fmt"
	"io"
	"math"
	"sort"
	"text/tabwriter"
	"time"

	"idebench/internal/driver"
	"idebench/internal/metrics"
)

// UserScaling is one row of the user-scalability report: the aggregate
// throughput and latency distribution of one (driver, concurrent-user-count)
// group. It is the multi-user analogue of the paper's Fig. 5 row — instead
// of sweeping the time requirement it sweeps how many simulated analysts
// share one engine.
type UserScaling struct {
	Driver string
	Users  int

	// Queries counts executed queries; TRViolatedPct is the share cancelled
	// at the deadline.
	Queries       int
	TRViolatedPct float64

	// WallClockMS spans the group's records (first query issued → last
	// result fetched); QueriesPerSec is Queries over that span — the
	// aggregate throughput of all users together.
	WallClockMS   float64
	QueriesPerSec float64

	// Latency percentiles of the driver-observed per-query latency, in
	// milliseconds. A cancelled query's latency is the time requirement.
	Latency metrics.LatencySummary

	// SpeedupVs1 is this row's QueriesPerSec over the same driver's 1-user
	// row (0 when no 1-user row exists). >1 means concurrent users get more
	// total work done per second than a lone user — on a shared-scan engine
	// because N users' queries ride one memory sweep.
	SpeedupVs1 float64
}

// SummarizeUsers groups records by (driver, users) and aggregates each
// group's throughput and latency distribution, sorted by driver then user
// count. Records written before the multi-user driver existed (users == 0 in
// old CSVs) count as single-user.
func SummarizeUsers(records []driver.Record) []UserScaling {
	type key struct {
		driver string
		users  int
	}
	groups := map[key][]driver.Record{}
	for _, r := range records {
		users := r.Users
		if users <= 0 {
			users = 1
		}
		k := key{r.Driver, users}
		groups[k] = append(groups[k], r)
	}
	keys := make([]key, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].driver != keys[j].driver {
			return keys[i].driver < keys[j].driver
		}
		return keys[i].users < keys[j].users
	})

	base := map[string]float64{} // driver -> 1-user throughput
	out := make([]UserScaling, 0, len(keys))
	for _, k := range keys {
		recs := groups[k]
		row := UserScaling{Driver: k.driver, Users: k.users, Queries: len(recs)}
		var first, last time.Time
		lats := make([]float64, 0, len(recs))
		violated := 0
		for i, r := range recs {
			if i == 0 || r.StartTime.Before(first) {
				first = r.StartTime
			}
			if i == 0 || r.EndTime.After(last) {
				last = r.EndTime
			}
			lats = append(lats, r.LatencyMS())
			if r.Metrics.TRViolated {
				violated++
			}
		}
		row.TRViolatedPct = 100 * float64(violated) / float64(len(recs))
		row.WallClockMS = float64(last.Sub(first)) / float64(time.Millisecond)
		if row.WallClockMS > 0 {
			row.QueriesPerSec = float64(row.Queries) / (row.WallClockMS / 1000)
		}
		row.Latency = metrics.SummarizeLatencies(lats)
		if k.users == 1 {
			base[k.driver] = row.QueriesPerSec
		}
		if b := base[k.driver]; b > 0 {
			row.SpeedupVs1 = row.QueriesPerSec / b
		}
		out = append(out, row)
	}
	return out
}

// RenderUserSweep writes the user-scalability table.
func RenderUserSweep(w io.Writer, rows []UserScaling) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "driver\tusers\tqueries\ttr_violated%\twall_clock_ms\tqueries/s\tp50_ms\tp95_ms\tp99_ms\tspeedup_vs_1user")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.1f\t%.1f\t%.1f\t%s\t%s\t%s\t%s\n",
			r.Driver, r.Users, r.Queries, r.TRViolatedPct, r.WallClockMS, r.QueriesPerSec,
			fmtNaN(r.Latency.P50), fmtNaN(r.Latency.P95), fmtNaN(r.Latency.P99),
			speedupOrDash(r.SpeedupVs1))
	}
	return tw.Flush()
}

func speedupOrDash(v float64) string {
	if v == 0 || math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.2fx", v)
}
