// Package report aggregates driver records into the two artifacts the
// benchmark emits (paper Sec. 4.8): an aggregated summary report (TR
// violations, missing bins, the CDF of mean relative errors with its
// area-above-curve, margins, cosine distance) and a detailed per-query CSV
// report (paper Table 1). It also contains the "other effects" analyzer
// used by Exp. 4.
package report

import (
	"fmt"
	"math"
	"sort"

	"idebench/internal/driver"
	"idebench/internal/workflow"
)

// Key identifies one summary group. Zero-valued fields were collapsed
// (aggregated over).
type Key struct {
	Driver       string
	TimeReqMS    float64
	WorkflowType workflow.Type
	DataSize     string
	ThinkTimeMS  float64
}

// GroupBy selects which record fields become part of the summary key.
type GroupBy struct {
	Driver       bool
	TimeReq      bool
	WorkflowType bool
	DataSize     bool
	ThinkTime    bool
}

// key projects a record onto the grouping fields.
func (g GroupBy) key(r driver.Record) Key {
	var k Key
	if g.Driver {
		k.Driver = r.Driver
	}
	if g.TimeReq {
		k.TimeReqMS = r.TimeReqMS
	}
	if g.WorkflowType {
		k.WorkflowType = r.WorkflowType
	}
	if g.DataSize {
		k.DataSize = r.DataSize
	}
	if g.ThinkTime {
		k.ThinkTimeMS = r.ThinkTimeMS
	}
	return k
}

// Summary aggregates the records of one group (paper Fig. 5 row).
type Summary struct {
	Key     Key
	Queries int

	// TRViolatedPct is the percentage of queries violating the TR.
	TRViolatedPct float64
	// MissingBinsPct is the mean missing-bin ratio (violated queries count
	// as 100% missing), as a percentage.
	MissingBinsPct float64

	// MREs holds the mean relative errors of all non-violating queries,
	// sorted ascending (the CDF's sample).
	MREs []float64
	// AreaAboveCurvePct is the area above the MRE CDF truncated at 100%
	// error: E[min(MRE, 1)]·100. Smaller is better (paper Fig. 5: "the
	// greater the proportion of small errors, the smaller the area above
	// the curve").
	AreaAboveCurvePct float64

	// MedianMargin is the median of per-query mean relative margins.
	MedianMargin float64
	// MeanCosine is the mean cosine distance of delivered results.
	MeanCosine float64
	// MedianCosine is the median cosine distance.
	MedianCosine float64
	// MeanBias averages the per-query bias (delivered/true totals).
	MeanBias float64
	// MeanSMAPE averages the per-query symmetric mean absolute percentage
	// errors (the paper's proposed alternative to the relative error,
	// defined at true value 0 and bounded in [0,1]).
	MeanSMAPE float64
	// OutOfMarginPct is the share of delivered (bin, agg) elements outside
	// their reported confidence interval.
	OutOfMarginPct float64
}

// Summarize groups records and aggregates each group, sorted by key for
// deterministic output.
func Summarize(records []driver.Record, g GroupBy) []Summary {
	groups := map[Key][]driver.Record{}
	for _, r := range records {
		k := g.key(r)
		groups[k] = append(groups[k], r)
	}
	keys := make([]Key, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keyLess(keys[i], keys[j]) })

	out := make([]Summary, 0, len(keys))
	for _, k := range keys {
		out = append(out, aggregate(k, groups[k]))
	}
	return out
}

func keyLess(a, b Key) bool {
	if a.Driver != b.Driver {
		return a.Driver < b.Driver
	}
	if a.DataSize != b.DataSize {
		return a.DataSize < b.DataSize
	}
	if a.WorkflowType != b.WorkflowType {
		return a.WorkflowType < b.WorkflowType
	}
	if a.TimeReqMS != b.TimeReqMS {
		return a.TimeReqMS < b.TimeReqMS
	}
	return a.ThinkTimeMS < b.ThinkTimeMS
}

func aggregate(k Key, recs []driver.Record) Summary {
	s := Summary{Key: k, Queries: len(recs)}
	var violated int
	var missingSum float64
	var margins, cosines, biases, smapes []float64
	var outOfMargin, delivered int
	for _, r := range recs {
		m := r.Metrics
		if m.TRViolated {
			violated++
		}
		missingSum += m.MissingBins
		if m.HasResult {
			if !math.IsNaN(m.RelErrAvg) {
				s.MREs = append(s.MREs, m.RelErrAvg)
			}
			if !math.IsNaN(m.MarginAvg) {
				margins = append(margins, m.MarginAvg)
			}
			if !math.IsNaN(m.CosineDistance) {
				cosines = append(cosines, m.CosineDistance)
			}
			if !math.IsNaN(m.Bias) {
				biases = append(biases, m.Bias)
			}
			if !math.IsNaN(m.SMAPE) {
				smapes = append(smapes, m.SMAPE)
			}
			outOfMargin += m.OutOfMargin
			delivered += m.BinsDelivered
		}
	}
	n := float64(len(recs))
	s.TRViolatedPct = 100 * float64(violated) / n
	s.MissingBinsPct = 100 * missingSum / n
	sort.Float64s(s.MREs)
	s.AreaAboveCurvePct = 100 * meanTruncated(s.MREs, 1)
	s.MedianMargin = median(margins)
	s.MeanCosine = mean(cosines)
	s.MedianCosine = median(cosines)
	s.MeanBias = mean(biases)
	s.MeanSMAPE = mean(smapes)
	if delivered > 0 {
		s.OutOfMarginPct = 100 * float64(outOfMargin) / float64(delivered)
	}
	return s
}

// CDF evaluates the MRE CDF at x: the fraction of non-violating queries
// with mean relative error <= x.
func (s *Summary) CDF(x float64) float64 {
	if len(s.MREs) == 0 {
		return 0
	}
	idx := sort.SearchFloat64s(s.MREs, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(len(s.MREs))
}

// meanTruncated computes E[min(X, limit)] — exactly the area above the CDF
// curve on [0, limit] divided by limit (here limit=1 so they coincide).
func meanTruncated(xs []float64, limit float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		if x > limit {
			x = limit
		}
		s += x
	}
	return s / float64(len(xs))
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	n := len(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// String renders a compact one-line summary.
func (s Summary) String() string {
	return fmt.Sprintf("%s tr=%gms type=%s size=%s think=%gms: queries=%d violated=%.1f%% missing=%.1f%% aac=%.1f%% margin~%.3f cos=%.3f",
		s.Key.Driver, s.Key.TimeReqMS, s.Key.WorkflowType, s.Key.DataSize, s.Key.ThinkTimeMS,
		s.Queries, s.TRViolatedPct, s.MissingBinsPct, s.AreaAboveCurvePct, s.MedianMargin, s.MeanCosine)
}
