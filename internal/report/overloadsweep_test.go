package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestFindKnee(t *testing.T) {
	pts := []OverloadPoint{
		{Rate: 100},
		{Rate: 200, Shed: 3},
		{Rate: 400, Rejected: 50, Shed: 10},
	}
	if got := FindKnee(pts); got != 1 {
		t.Fatalf("knee at %d, want 1 (first point with shedding)", got)
	}
	if got := FindKnee(pts[:1]); got != -1 {
		t.Fatalf("under-capacity sweep knee = %d, want -1", got)
	}
	if got := FindKnee(nil); got != -1 {
		t.Fatalf("empty sweep knee = %d, want -1", got)
	}
}

func TestRenderOverloadSweep(t *testing.T) {
	pts := []OverloadPoint{
		{Rate: 100, Offered: 200, Completed: 200, TTFSP99: 2.5, DoneP99: 8.1, DoneP999: 9.9},
		{Rate: 800, Offered: 1600, Completed: 900, Rejected: 650, RejectedPct: 41.0,
			Shed: 40, ViolationPct: 3.5, TTFSP99: 11.0, DoneP99: 24.0, DoneP999: 31.0},
	}
	var buf bytes.Buffer
	if err := RenderOverloadSweep(&buf, pts); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"rate/s", "done_p99.9", "<- knee", "knee at 800"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render output missing %q:\n%s", want, out)
		}
	}

	buf.Reset()
	if err := RenderOverloadSweep(&buf, pts[:1]); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no knee") {
		t.Fatalf("under-capacity render missing no-knee note:\n%s", buf.String())
	}
}
