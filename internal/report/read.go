package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
	"time"

	"idebench/internal/driver"
	"idebench/internal/metrics"
	"idebench/internal/workflow"
)

// headerWithout derives a historical column set by dropping columns newer
// builds added, so reports saved by older builds still load (`idebench
// analyze` on archived runs) with the dropped annotations defaulting.
func headerWithout(drop ...string) []string {
	skip := make(map[string]bool, len(drop))
	for _, d := range drop {
		skip[d] = true
	}
	out := make([]string, 0, len(DetailedHeader))
	for _, h := range DetailedHeader {
		if skip[h] {
			continue
		}
		out = append(out, h)
	}
	return out
}

// ReadDetailedCSV parses a detailed report written by WriteDetailedCSV back
// into records, so saved runs can be re-aggregated and analyzed offline
// (`idebench analyze`). Empty numeric fields decode as NaN, mirroring the
// writer's NaN handling. Both the current header and the pre-multi-user
// one (no user/users columns) are accepted.
func ReadDetailedCSV(r io.Reader) ([]driver.Record, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("report: read header: %w", err)
	}
	// Current header, the pre-ingestion one (no staleness column) and the
	// pre-multi-user one (neither users nor staleness) are all accepted.
	variants := []struct {
		want                   []string
		hasUsers, hasStaleness bool
	}{
		{DetailedHeader, true, true},
		{headerWithout("staleness_rows"), true, false},
		{headerWithout("staleness_rows", "user", "users"), false, false},
	}
	idx := -1
	for i := range variants {
		if len(header) == len(variants[i].want) {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil, fmt.Errorf("report: header has %d columns, want %d", len(header), len(DetailedHeader))
	}
	match := variants[idx]
	for i, h := range header {
		if h != match.want[i] {
			return nil, fmt.Errorf("report: column %d is %q, want %q", i, h, match.want[i])
		}
	}

	var out []driver.Record
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("report: line %d: %w", line+1, err)
		}
		line++
		row, err := parseDetailedRow(rec, match.hasUsers, match.hasStaleness)
		if err != nil {
			return nil, fmt.Errorf("report: line %d: %w", line, err)
		}
		out = append(out, row)
	}
	return out, nil
}

func parseDetailedRow(rec []string, hasUsers, hasStaleness bool) (driver.Record, error) {
	var r driver.Record
	p := &rowParser{rec: rec}

	r.ID = p.intField("id")
	r.InteractionID = p.intField("interaction")
	r.VizName = p.str()
	r.Driver = p.str()
	r.DataSize = p.str()
	r.ThinkTimeMS = p.floatField("think_time")
	r.TimeReqMS = p.floatField("time_req")
	r.Workflow = p.str()
	r.StartTime = time.UnixMilli(int64(p.floatField("start_time")))
	r.EndTime = time.UnixMilli(int64(p.floatField("end_time")))

	var m metrics.QueryMetrics
	m.TRViolated = p.boolField("tr_violated")
	r.BinDims = p.intField("bin_dims")
	r.BinningType = p.str()
	r.AggType = p.str()
	m.OutOfMargin = p.intField("bins_ofm")
	m.BinsDelivered = p.intField("bins_delivered")
	m.BinsInGT = p.intField("bins_in_gt")
	m.RelErrAvg = p.nanFloat()
	m.RelErrStdev = p.nanFloat()
	m.MissingBins = p.nanFloat()
	m.CosineDistance = p.nanFloat()
	m.MarginAvg = p.nanFloat()
	m.MarginStdev = p.nanFloat()
	m.Bias = p.nanFloat()
	m.SMAPE = p.nanFloat()
	r.ConcurrentQs = p.intField("concurrent_queries")
	if hasUsers {
		r.User = p.intField("user")
		r.Users = p.intField("users")
	}
	if r.Users <= 0 {
		r.Users = 1
	}
	m.StalenessRows = -1
	if hasStaleness {
		if s := p.str(); s != "" {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				p.err = fmt.Errorf("field staleness_rows: %w", err)
			} else {
				m.StalenessRows = v
			}
		}
	}
	r.SQL = p.str()
	m.HasResult = !m.TRViolated
	r.Metrics = m
	r.WorkflowType = workflowTypeOf(r.Workflow)

	if p.err != nil {
		return r, p.err
	}
	return r, nil
}

// workflowTypeOf recovers the type from the generated workflow naming
// convention ("<type>-NN"); hand-written workflows fall back to Mixed.
func workflowTypeOf(name string) workflow.Type {
	for _, t := range append(append([]workflow.Type(nil), workflow.AllTypes...), workflow.Mixed) {
		prefix := string(t) + "-"
		if len(name) >= len(prefix) && name[:len(prefix)] == prefix {
			return t
		}
	}
	return workflow.Mixed
}

// rowParser consumes fields left to right, collecting the first error.
type rowParser struct {
	rec []string
	pos int
	err error
}

func (p *rowParser) str() string {
	s := p.rec[p.pos]
	p.pos++
	return s
}

func (p *rowParser) intField(name string) int {
	s := p.str()
	if p.err != nil || s == "" {
		return 0
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		p.err = fmt.Errorf("field %s: %w", name, err)
	}
	return v
}

func (p *rowParser) floatField(name string) float64 {
	s := p.str()
	if p.err != nil || s == "" {
		return 0
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		p.err = fmt.Errorf("field %s: %w", name, err)
	}
	return v
}

func (p *rowParser) nanFloat() float64 {
	s := p.str()
	if s == "" {
		return math.NaN()
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		p.err = err
		return math.NaN()
	}
	return v
}

func (p *rowParser) boolField(name string) bool {
	s := p.str()
	if p.err != nil {
		return false
	}
	v, err := strconv.ParseBool(s)
	if err != nil {
		p.err = fmt.Errorf("field %s: %w", name, err)
	}
	return v
}
