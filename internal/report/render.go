package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"text/tabwriter"

	"idebench/internal/driver"
)

// RenderSummaries writes an aligned text table of summaries, the console
// form of the paper's Fig. 5 summary report.
func RenderSummaries(w io.Writer, rows []Summary) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "driver\tsize\ttype\ttr(ms)\tthink(ms)\tqueries\ttr_violated%\tmissing_bins%\tarea_above_cdf%\tmedian_margin\tmean_cosine")
	for _, s := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%d\t%.1f\t%.1f\t%.1f\t%s\t%s\n",
			orDash(s.Key.Driver), orDash(s.Key.DataSize), orDash(string(s.Key.WorkflowType)),
			numOrDash(s.Key.TimeReqMS), numOrDash(s.Key.ThinkTimeMS),
			s.Queries, s.TRViolatedPct, s.MissingBinsPct, s.AreaAboveCurvePct,
			fmtNaN(s.MedianMargin), fmtNaN(s.MeanCosine))
	}
	return tw.Flush()
}

// RenderCDF draws an ASCII rendition of the MRE CDF truncated at 100%
// error, the plot embedded in the paper's summary report.
func RenderCDF(w io.Writer, s Summary, width, height int) error {
	if width < 10 {
		width = 40
	}
	if height < 4 {
		height = 8
	}
	fmt.Fprintf(w, "MRE CDF — %s (tr=%gms, %d queries, area above curve %.1f%%)\n",
		s.Key.Driver, s.Key.TimeReqMS, s.Queries, s.AreaAboveCurvePct)
	if len(s.MREs) == 0 {
		_, err := fmt.Fprintln(w, "  (no delivered results)")
		return err
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for c := 0; c < width; c++ {
		x := float64(c) / float64(width-1)
		y := s.CDF(x)
		row := int(math.Round(float64(height-1) * (1 - y)))
		if row < 0 {
			row = 0
		}
		if row >= height {
			row = height - 1
		}
		grid[row][c] = '*'
	}
	for r, line := range grid {
		label := "      "
		switch r {
		case 0:
			label = "1.0 | "
		case height - 1:
			label = "0.0 | "
		default:
			label = "    | "
		}
		fmt.Fprintf(w, "%s%s\n", label, string(line))
	}
	fmt.Fprintf(w, "      0%%%serr=100%%\n", strings.Repeat("-", width-10))
	return nil
}

// DetailedHeader lists the detailed report's CSV columns (paper Table 1,
// extended with the multi-user and live-ingestion annotations).
var DetailedHeader = []string{
	"id", "interaction", "viz_name", "driver", "data_size", "think_time",
	"time_req", "workflow", "start_time", "end_time", "tr_violated",
	"bin_dims", "binning_type", "agg_type", "bins_ofm", "bins_delivered",
	"bins_in_gt", "rel_error_avg", "rel_error_stdev", "missing_bins",
	"cosine_distance", "margin_avg", "margin_stdev", "bias", "smape",
	"concurrent_queries", "user", "users", "staleness_rows", "sql",
}

// WriteDetailedCSV streams records as the detailed per-query report.
func WriteDetailedCSV(w io.Writer, records []driver.Record) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(DetailedHeader); err != nil {
		return err
	}
	for _, r := range records {
		m := r.Metrics
		row := []string{
			strconv.Itoa(r.ID),
			strconv.Itoa(r.InteractionID),
			r.VizName,
			r.Driver,
			r.DataSize,
			fmtMS(r.ThinkTimeMS),
			fmtMS(r.TimeReqMS),
			r.Workflow,
			strconv.FormatInt(r.StartTime.UnixMilli(), 10),
			strconv.FormatInt(r.EndTime.UnixMilli(), 10),
			strconv.FormatBool(m.TRViolated),
			strconv.Itoa(r.BinDims),
			r.BinningType,
			r.AggType,
			strconv.Itoa(m.OutOfMargin),
			strconv.Itoa(m.BinsDelivered),
			strconv.Itoa(m.BinsInGT),
			fmtNaN(m.RelErrAvg),
			fmtNaN(m.RelErrStdev),
			fmtNaN(m.MissingBins),
			fmtNaN(m.CosineDistance),
			fmtNaN(m.MarginAvg),
			fmtNaN(m.MarginStdev),
			fmtNaN(m.Bias),
			fmtNaN(m.SMAPE),
			strconv.Itoa(r.ConcurrentQs),
			strconv.Itoa(r.User),
			strconv.Itoa(r.Users),
			fmtStaleness(m.StalenessRows),
			r.SQL,
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func fmtNaN(v float64) string {
	if math.IsNaN(v) {
		return ""
	}
	return strconv.FormatFloat(v, 'f', 4, 64)
}

// fmtStaleness renders the staleness column: empty for the -1 "not an
// ingest run / nothing delivered" sentinel.
func fmtStaleness(v float64) string {
	if v < 0 || math.IsNaN(v) {
		return ""
	}
	return strconv.FormatFloat(v, 'f', 0, 64)
}

func fmtMS(v float64) string {
	return strconv.FormatFloat(v, 'f', -1, 64)
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func numOrDash(v float64) string {
	if v == 0 {
		return "-"
	}
	return strconv.FormatFloat(v, 'f', -1, 64)
}
