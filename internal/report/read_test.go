package report

import (
	"bytes"
	"encoding/csv"
	"math"
	"strings"
	"testing"

	"idebench/internal/driver"
	"idebench/internal/workflow"
)

func TestDetailedCSVRoundTrip(t *testing.T) {
	in := []driver.Record{
		rec("exact", 10, workflow.Mixed, ok(0.125)),
		rec("exact", 10, workflow.Mixed, violated()),
	}
	in[0].Workflow = "mixed-00"
	in[1].Workflow = "1n-03"
	var buf bytes.Buffer
	if err := WriteDetailedCSV(&buf, in); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDetailedCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("records = %d", len(got))
	}
	r0 := got[0]
	if r0.Driver != "exact" || r0.TimeReqMS != 10 || r0.DataSize != "1m" {
		t.Errorf("metadata mangled: %+v", r0)
	}
	if math.Abs(r0.Metrics.RelErrAvg-0.125) > 1e-9 {
		t.Errorf("rel err = %v", r0.Metrics.RelErrAvg)
	}
	if !r0.Metrics.HasResult || r0.Metrics.TRViolated {
		t.Error("flags mangled")
	}
	if r0.WorkflowType != workflow.Mixed {
		t.Errorf("workflow type = %v", r0.WorkflowType)
	}
	r1 := got[1]
	if !r1.Metrics.TRViolated || r1.Metrics.HasResult {
		t.Error("violated flags mangled")
	}
	if !math.IsNaN(r1.Metrics.RelErrAvg) {
		t.Error("violated record should have NaN error")
	}
	if r1.WorkflowType != workflow.OneToNLinking {
		t.Errorf("workflow type from name = %v", r1.WorkflowType)
	}
}

// TestReadDetailedCSVLegacyHeader: reports saved before the user/users
// columns existed must still load, folding into the single-user default.
func TestReadDetailedCSVLegacyHeader(t *testing.T) {
	in := []driver.Record{rec("exact", 10, workflow.Mixed, ok(0.125))}
	in[0].Workflow = "mixed-00"
	in[0].User = 3 // dropped by the legacy projection below
	in[0].Users = 8
	var buf bytes.Buffer
	if err := WriteDetailedCSV(&buf, in); err != nil {
		t.Fatal(err)
	}
	// Project the current CSV down to the legacy column set.
	rows, err := csv.NewReader(bytes.NewReader(buf.Bytes())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	drop := map[int]bool{}
	for i, h := range DetailedHeader {
		if h == "user" || h == "users" || h == "staleness_rows" {
			drop[i] = true
		}
	}
	var legacy bytes.Buffer
	w := csv.NewWriter(&legacy)
	for _, row := range rows {
		out := make([]string, 0, len(row)-2)
		for i, f := range row {
			if !drop[i] {
				out = append(out, f)
			}
		}
		if err := w.Write(out); err != nil {
			t.Fatal(err)
		}
	}
	w.Flush()

	got, err := ReadDetailedCSV(&legacy)
	if err != nil {
		t.Fatalf("legacy CSV rejected: %v", err)
	}
	if len(got) != 1 {
		t.Fatalf("records = %d", len(got))
	}
	if got[0].User != 0 || got[0].Users != 1 {
		t.Errorf("legacy record should default to single-user: user=%d users=%d",
			got[0].User, got[0].Users)
	}
	if got[0].Driver != "exact" || got[0].SQL != in[0].SQL {
		t.Errorf("legacy columns misaligned: %+v", got[0])
	}
}

func TestReadDetailedCSVErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"empty", ""},
		{"bad header", "a,b,c\n"},
		{"short header", strings.Join(DetailedHeader[:5], ",") + "\n"},
		{"bad int", strings.Join(DetailedHeader, ",") + "\nnotanint" + strings.Repeat(",", len(DetailedHeader)-1) + "\n"},
	}
	for _, c := range cases {
		if _, err := ReadDetailedCSV(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestRoundTripSummariesAgree(t *testing.T) {
	in := []driver.Record{
		rec("a", 5, workflow.Mixed, ok(0.1)),
		rec("a", 5, workflow.Mixed, ok(0.4)),
		rec("a", 5, workflow.Mixed, violated()),
	}
	for i := range in {
		in[i].Workflow = "mixed-00"
	}
	var buf bytes.Buffer
	if err := WriteDetailedCSV(&buf, in); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDetailedCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a := Summarize(in, GroupBy{Driver: true})
	b := Summarize(got, GroupBy{Driver: true})
	if len(a) != 1 || len(b) != 1 {
		t.Fatal("unexpected group counts")
	}
	if math.Abs(a[0].TRViolatedPct-b[0].TRViolatedPct) > 1e-9 ||
		math.Abs(a[0].AreaAboveCurvePct-b[0].AreaAboveCurvePct) > 1e-3 ||
		math.Abs(a[0].MissingBinsPct-b[0].MissingBinsPct) > 1e-3 {
		t.Errorf("summaries diverge after round trip:\n%+v\n%+v", a[0], b[0])
	}
}

func TestWorkflowTypeOf(t *testing.T) {
	cases := map[string]workflow.Type{
		"mixed-00":      workflow.Mixed,
		"1n-05":         workflow.OneToNLinking,
		"n1-01":         workflow.NToOneLinking,
		"sequential-9":  workflow.SequentialLinking,
		"independent-2": workflow.IndependentBrowsing,
		"custom":        workflow.Mixed, // fallback
	}
	for name, want := range cases {
		if got := workflowTypeOf(name); got != want {
			t.Errorf("workflowTypeOf(%q) = %v, want %v", name, got, want)
		}
	}
}
