package report

import (
	"bytes"
	"math"
	"testing"

	"idebench/internal/driver"
	"idebench/internal/metrics"
)

// ingestRecord fabricates one record with a given staleness (negative =
// undefined, the non-ingest sentinel).
func ingestRecord(drv string, users int, staleness float64, violated bool) driver.Record {
	m := metrics.QueryMetrics{HasResult: !violated, TRViolated: violated, StalenessRows: staleness}
	return driver.Record{Driver: drv, Users: users, Metrics: m}
}

func TestSummarizeIngestStaleness(t *testing.T) {
	recs := []driver.Record{
		ingestRecord("prog", 2, 0, false),
		ingestRecord("prog", 2, 0, false),
		ingestRecord("prog", 2, 100, false),
		ingestRecord("prog", 2, 300, false),
		ingestRecord("prog", 2, -1, true), // violated: no staleness sample
		ingestRecord("exact", 2, 500, false),
	}
	rows := SummarizeIngest(recs)
	if len(rows) != 2 {
		t.Fatalf("groups = %d, want 2", len(rows))
	}
	// Sorted by driver: exact first.
	e, p := rows[0], rows[1]
	if e.Driver != "exact" || p.Driver != "prog" {
		t.Fatalf("group order: %s, %s", e.Driver, p.Driver)
	}
	if p.Queries != 5 || p.TRViolatedPct != 20 {
		t.Errorf("prog queries=%d violated=%v", p.Queries, p.TRViolatedPct)
	}
	if p.StalenessMean != 100 { // (0+0+100+300)/4
		t.Errorf("mean staleness = %v, want 100", p.StalenessMean)
	}
	// P95 uses the same interpolated definition as the latency columns
	// (metrics.Percentile): rank 0.95*(4-1)=2.85 → 100 + 0.85*(300-100).
	if p.StalenessMax != 300 || math.Abs(p.StalenessP95-270) > 1e-9 {
		t.Errorf("staleness p95=%v max=%v, want 270/300", p.StalenessP95, p.StalenessMax)
	}
	if p.FreshPct != 50 {
		t.Errorf("fresh%% = %v, want 50", p.FreshPct)
	}
}

func TestSummarizeIngestNoSamples(t *testing.T) {
	rows := SummarizeIngest([]driver.Record{ingestRecord("x", 1, -1, false)})
	if len(rows) != 1 {
		t.Fatalf("groups = %d", len(rows))
	}
	if !math.IsNaN(rows[0].StalenessMean) || !math.IsNaN(rows[0].FreshPct) {
		t.Errorf("staleness stats over no samples should be NaN: %+v", rows[0])
	}
}

// TestRenderIngestSweepGolden pins the ingest sweep report table format.
func TestRenderIngestSweepGolden(t *testing.T) {
	rows := []IngestScaling{
		{Driver: "exactdb", Users: 1, Queries: 40, TRViolatedPct: 2.5,
			StalenessMean: 120.25, StalenessP95: 400, StalenessMax: 500, FreshPct: 25,
			IngestedRows: 8000, IngestRowsPerSec: 16000},
		{Driver: "progressive", Users: 8, Queries: 320, TRViolatedPct: 0,
			StalenessMean: 0, StalenessP95: 0, StalenessMax: 0, FreshPct: 100,
			IngestedRows: 64000, IngestRowsPerSec: 128000},
		{Driver: "progressive", Users: 2, Queries: 80, TRViolatedPct: 0,
			StalenessMean: math.NaN(), StalenessP95: math.NaN(), StalenessMax: math.NaN(),
			FreshPct: math.NaN()},
	}
	var buf bytes.Buffer
	if err := RenderIngestSweep(&buf, rows); err != nil {
		t.Fatal(err)
	}
	golden := "" +
		"driver       users  queries  tr_violated%  ingested_rows  ingest_rows/s  fresh%    stale_mean  stale_p95  stale_max\n" +
		"exactdb      1      40       2.5           8000           16000          25.0000   120.2500    400.0000   500.0000\n" +
		"progressive  8      320      0.0           64000          128000         100.0000  0.0000      0.0000     0.0000\n" +
		"progressive  2      80       0.0           0              0                                               \n"
	if got := buf.String(); got != golden {
		t.Errorf("ingest sweep table drifted:\n got:\n%s\nwant:\n%s", got, golden)
	}
}
