package report

import (
	"bytes"
	"math"
	"testing"
	"time"

	"idebench/internal/driver"
	"idebench/internal/metrics"
)

// sweepRecord fabricates one record with a fixed latency on a fixed
// timeline, so throughput and percentiles are exactly computable.
func sweepRecord(drv string, users, user int, startMS, latencyMS float64, violated bool) driver.Record {
	base := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	start := base.Add(time.Duration(startMS * float64(time.Millisecond)))
	m := metrics.QueryMetrics{HasResult: !violated, TRViolated: violated}
	return driver.Record{
		Driver: drv, Users: users, User: user,
		StartTime: start,
		EndTime:   start.Add(time.Duration(latencyMS * float64(time.Millisecond))),
		Metrics:   m,
	}
}

func TestSummarizeUsersThroughputAndPercentiles(t *testing.T) {
	var recs []driver.Record
	// 1-user group: 4 queries over exactly 2000ms of timeline.
	recs = append(recs,
		sweepRecord("prog", 1, 0, 0, 100, false),
		sweepRecord("prog", 1, 0, 500, 100, false),
		sweepRecord("prog", 1, 0, 1000, 100, false),
		sweepRecord("prog", 1, 0, 1900, 100, false),
	)
	// 2-user group: 8 queries over the same 2000ms → twice the throughput;
	// one TR violation whose latency (the TR) still counts in percentiles.
	for u := 0; u < 2; u++ {
		for i := 0; i < 4; i++ {
			violated := u == 1 && i == 3
			lat := 50.0
			if violated {
				lat = 400
			}
			recs = append(recs, sweepRecord("prog", 2, u, float64(i)*500, lat, violated))
		}
	}
	// The 2-user group must span the same wall-clock as the 1-user group.
	recs[len(recs)-1].EndTime = recs[3].EndTime

	rows := SummarizeUsers(recs)
	if len(rows) != 2 {
		t.Fatalf("got %d groups, want 2", len(rows))
	}
	one, two := rows[0], rows[1]
	if one.Users != 1 || two.Users != 2 {
		t.Fatalf("group order wrong: %+v", rows)
	}
	if one.Queries != 4 || two.Queries != 8 {
		t.Fatalf("query counts wrong: %d, %d", one.Queries, two.Queries)
	}
	if math.Abs(one.WallClockMS-2000) > 1e-9 {
		t.Errorf("1-user wall clock %v, want 2000", one.WallClockMS)
	}
	if math.Abs(one.QueriesPerSec-2) > 1e-9 {
		t.Errorf("1-user throughput %v, want 2 q/s", one.QueriesPerSec)
	}
	if math.Abs(two.QueriesPerSec-4) > 1e-9 {
		t.Errorf("2-user throughput %v, want 4 q/s", two.QueriesPerSec)
	}
	if math.Abs(two.SpeedupVs1-2) > 1e-9 {
		t.Errorf("speedup vs 1 user %v, want 2", two.SpeedupVs1)
	}
	if math.Abs(two.TRViolatedPct-12.5) > 1e-9 {
		t.Errorf("violation pct %v, want 12.5", two.TRViolatedPct)
	}
	if one.Latency.P50 != 100 {
		t.Errorf("1-user P50 %v, want 100", one.Latency.P50)
	}
	// 7×50ms + 1×400ms: the violated query's deadline latency dominates the
	// tail but not the median.
	if two.Latency.P50 != 50 {
		t.Errorf("2-user P50 %v, want 50", two.Latency.P50)
	}
	if two.Latency.P99 <= two.Latency.P50 {
		t.Errorf("tail percentile %v should exceed the median %v", two.Latency.P99, two.Latency.P50)
	}
}

// TestSummarizeUsersLegacyRecords: records from before the multi-user
// driver (Users == 0 in old CSVs) must fold into the 1-user group.
func TestSummarizeUsersLegacyRecords(t *testing.T) {
	recs := []driver.Record{
		sweepRecord("x", 0, 0, 0, 10, false),
		sweepRecord("x", 1, 0, 100, 10, false),
	}
	rows := SummarizeUsers(recs)
	if len(rows) != 1 || rows[0].Users != 1 || rows[0].Queries != 2 {
		t.Fatalf("legacy records not folded into the 1-user group: %+v", rows)
	}
}

// TestRenderUserSweepGolden pins the exact table the user sweep prints.
func TestRenderUserSweepGolden(t *testing.T) {
	rows := []UserScaling{
		{
			Driver: "exactdb", Users: 1, Queries: 40, TRViolatedPct: 12.5,
			WallClockMS: 812.4, QueriesPerSec: 49.2,
			Latency: metrics.LatencySummary{Count: 40, P50: 3.21, P95: 11.08, P99: 12.4},
		},
		{
			Driver: "progressive", Users: 1, Queries: 40,
			WallClockMS: 700, QueriesPerSec: 57.1,
			Latency:    metrics.LatencySummary{Count: 40, P50: 1.5, P95: 4.25, P99: 5},
			SpeedupVs1: 1,
		},
		{
			Driver: "progressive", Users: 8, Queries: 320,
			WallClockMS: 1100.5, QueriesPerSec: 290.8,
			Latency:    metrics.LatencySummary{Count: 320, P50: 2.75, P95: 9.5, P99: 14.125},
			SpeedupVs1: 5.09,
		},
		{
			Driver: "empty", Users: 2, Queries: 0,
			Latency: metrics.LatencySummary{P50: math.NaN(), P95: math.NaN(), P99: math.NaN()},
		},
	}
	var buf bytes.Buffer
	if err := RenderUserSweep(&buf, rows); err != nil {
		t.Fatal(err)
	}
	const golden = "" +
		"driver       users  queries  tr_violated%  wall_clock_ms  queries/s  p50_ms  p95_ms   p99_ms   speedup_vs_1user\n" +
		"exactdb      1      40       12.5          812.4          49.2       3.2100  11.0800  12.4000  -\n" +
		"progressive  1      40       0.0           700.0          57.1       1.5000  4.2500   5.0000   1.00x\n" +
		"progressive  8      320      0.0           1100.5         290.8      2.7500  9.5000   14.1250  5.09x\n" +
		"empty        2      0        0.0           0.0            0.0                                  -\n"
	if got := buf.String(); got != golden {
		t.Errorf("user-sweep table drifted from golden output:\n--- got ---\n%s--- want ---\n%s", got, golden)
	}
}
