package report

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"text/tabwriter"

	"idebench/internal/driver"
)

// Factor names one dimension of the Exp.-4 "other effects" analysis
// (paper Sec. 5.5): bin dimensionality, binning types, aggregate types,
// concurrency, and filter specificity.
type Factor string

// The analyzed factors.
const (
	FactorBinDims     Factor = "bin_dims"
	FactorBinningType Factor = "binning_type"
	FactorAggType     Factor = "agg_type"
	FactorConcurrency Factor = "concurrent_queries"
	FactorSelectivity Factor = "filter_predicates"
)

// AllFactors lists the factors in report order.
var AllFactors = []Factor{
	FactorBinDims, FactorBinningType, FactorAggType, FactorConcurrency, FactorSelectivity,
}

// EffectRow aggregates the records sharing one factor level.
type EffectRow struct {
	Factor  Factor
	Level   string
	Queries int
	// TRViolatedPct and MeanMRE measure whether the level shifts
	// performance; the paper found no significant effect for any factor
	// except filter specificity.
	TRViolatedPct  float64
	MeanMRE        float64
	MeanMissing    float64
	MeanCosineDist float64
}

// Analyze groups records by each factor's levels. Filter specificity is
// approximated by the number of filter predicates in the SQL (0, 1, 2, 3+),
// which tracks how narrow the selected sub-population is.
func Analyze(records []driver.Record) []EffectRow {
	var rows []EffectRow
	for _, f := range AllFactors {
		levels := map[string][]driver.Record{}
		for _, r := range records {
			levels[level(f, r)] = append(levels[level(f, r)], r)
		}
		names := make([]string, 0, len(levels))
		for n := range levels {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			rows = append(rows, effectRow(f, n, levels[n]))
		}
	}
	return rows
}

func level(f Factor, r driver.Record) string {
	switch f {
	case FactorBinDims:
		return fmt.Sprintf("%dD", r.BinDims)
	case FactorBinningType:
		return r.BinningType
	case FactorAggType:
		return r.AggType
	case FactorConcurrency:
		if r.ConcurrentQs >= 3 {
			return "3+"
		}
		return fmt.Sprintf("%d", r.ConcurrentQs)
	case FactorSelectivity:
		n := strings.Count(r.SQL, " AND ") // predicates beyond the first
		if !strings.Contains(r.SQL, "WHERE") {
			return "0 predicates"
		}
		switch {
		case n == 0:
			return "1 predicate"
		case n == 1:
			return "2 predicates"
		default:
			return "3+ predicates"
		}
	}
	return "?"
}

func effectRow(f Factor, lvl string, recs []driver.Record) EffectRow {
	row := EffectRow{Factor: f, Level: lvl, Queries: len(recs)}
	var violated int
	var mres, missing, cosines []float64
	for _, r := range recs {
		if r.Metrics.TRViolated {
			violated++
		}
		missing = append(missing, r.Metrics.MissingBins)
		if r.Metrics.HasResult && !math.IsNaN(r.Metrics.RelErrAvg) {
			mres = append(mres, r.Metrics.RelErrAvg)
		}
		if r.Metrics.HasResult && !math.IsNaN(r.Metrics.CosineDistance) {
			cosines = append(cosines, r.Metrics.CosineDistance)
		}
	}
	row.TRViolatedPct = 100 * float64(violated) / float64(len(recs))
	row.MeanMRE = mean(mres)
	row.MeanMissing = mean(missing)
	row.MeanCosineDist = mean(cosines)
	return row
}

// RenderEffects writes the Exp.-4 analysis as an aligned table.
func RenderEffects(w io.Writer, rows []EffectRow) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "factor\tlevel\tqueries\ttr_violated%\tmean_mre\tmean_missing\tmean_cosine")
	var prev Factor
	for _, r := range rows {
		if r.Factor != prev && prev != "" {
			fmt.Fprintln(tw, "\t\t\t\t\t\t")
		}
		prev = r.Factor
		fmt.Fprintf(tw, "%s\t%s\t%d\t%.1f\t%s\t%s\t%s\n",
			r.Factor, r.Level, r.Queries, r.TRViolatedPct,
			fmtNaN(r.MeanMRE), fmtNaN(r.MeanMissing), fmtNaN(r.MeanCosineDist))
	}
	return tw.Flush()
}
