package report

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"idebench/internal/driver"
	"idebench/internal/metrics"
	"idebench/internal/workflow"
)

func rec(drv string, trMS float64, typ workflow.Type, m metrics.QueryMetrics) driver.Record {
	return driver.Record{
		Driver:       drv,
		TimeReqMS:    trMS,
		WorkflowType: typ,
		DataSize:     "1m",
		StartTime:    time.Unix(0, 0),
		EndTime:      time.Unix(1, 0),
		BinDims:      1,
		BinningType:  "nominal",
		AggType:      "count",
		ConcurrentQs: 1,
		SQL:          "SELECT carrier, COUNT(*) FROM flights GROUP BY carrier",
		Metrics:      m,
	}
}

func ok(mre float64) metrics.QueryMetrics {
	return metrics.QueryMetrics{
		HasResult:      true,
		RelErrAvg:      mre,
		MarginAvg:      mre / 2,
		CosineDistance: mre / 10,
		Bias:           1,
		BinsDelivered:  10,
		BinsInGT:       10,
	}
}

func violated() metrics.QueryMetrics {
	return metrics.QueryMetrics{
		TRViolated:     true,
		MissingBins:    1,
		RelErrAvg:      math.NaN(),
		MarginAvg:      math.NaN(),
		CosineDistance: math.NaN(),
		Bias:           math.NaN(),
	}
}

func TestSummarizeBasics(t *testing.T) {
	records := []driver.Record{
		rec("a", 10, workflow.Mixed, ok(0.1)),
		rec("a", 10, workflow.Mixed, ok(0.3)),
		rec("a", 10, workflow.Mixed, violated()),
		rec("a", 10, workflow.Mixed, ok(2.5)), // truncated at 1 in AAC
	}
	rows := Summarize(records, GroupBy{Driver: true, TimeReq: true})
	if len(rows) != 1 {
		t.Fatalf("groups = %d", len(rows))
	}
	s := rows[0]
	if s.Queries != 4 {
		t.Errorf("queries = %d", s.Queries)
	}
	if s.TRViolatedPct != 25 {
		t.Errorf("violated = %v", s.TRViolatedPct)
	}
	// Missing: violated query contributes 1, others 0 → 25%.
	if s.MissingBinsPct != 25 {
		t.Errorf("missing = %v", s.MissingBinsPct)
	}
	// AAC: mean(min(mre,1)) over {0.1, 0.3, 1.0} → 46.67%.
	want := 100 * (0.1 + 0.3 + 1.0) / 3
	if math.Abs(s.AreaAboveCurvePct-want) > 1e-9 {
		t.Errorf("AAC = %v, want %v", s.AreaAboveCurvePct, want)
	}
	// Median margin of {0.05, 0.15, 1.25}.
	if math.Abs(s.MedianMargin-0.15) > 1e-12 {
		t.Errorf("median margin = %v", s.MedianMargin)
	}
}

func TestSummarizeGrouping(t *testing.T) {
	records := []driver.Record{
		rec("a", 10, workflow.Mixed, ok(0.1)),
		rec("a", 20, workflow.Mixed, ok(0.1)),
		rec("b", 10, workflow.SequentialLinking, ok(0.1)),
	}
	rows := Summarize(records, GroupBy{Driver: true, TimeReq: true})
	if len(rows) != 3 {
		t.Errorf("driver×tr groups = %d, want 3", len(rows))
	}
	rows = Summarize(records, GroupBy{Driver: true})
	if len(rows) != 2 {
		t.Errorf("driver groups = %d, want 2", len(rows))
	}
	rows = Summarize(records, GroupBy{WorkflowType: true})
	if len(rows) != 2 {
		t.Errorf("type groups = %d, want 2", len(rows))
	}
	// Deterministic ordering.
	rows = Summarize(records, GroupBy{Driver: true, TimeReq: true})
	if rows[0].Key.Driver != "a" || rows[0].Key.TimeReqMS != 10 {
		t.Error("rows not sorted")
	}
}

func TestCDFEvaluation(t *testing.T) {
	records := []driver.Record{
		rec("a", 10, workflow.Mixed, ok(0.1)),
		rec("a", 10, workflow.Mixed, ok(0.2)),
		rec("a", 10, workflow.Mixed, ok(0.4)),
		rec("a", 10, workflow.Mixed, ok(0.8)),
	}
	s := Summarize(records, GroupBy{Driver: true})[0]
	cases := []struct{ x, want float64 }{
		{0.05, 0}, {0.1, 0.25}, {0.3, 0.5}, {0.9, 1}, {2, 1},
	}
	for _, c := range cases {
		if got := s.CDF(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("CDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	empty := Summary{}
	if empty.CDF(0.5) != 0 {
		t.Error("empty CDF should be 0")
	}
}

func TestRenderSummaries(t *testing.T) {
	records := []driver.Record{rec("exact", 10, workflow.Mixed, ok(0.1))}
	rows := Summarize(records, GroupBy{Driver: true, TimeReq: true})
	var buf bytes.Buffer
	if err := RenderSummaries(&buf, rows); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"driver", "exact", "tr_violated%"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRenderCDF(t *testing.T) {
	records := []driver.Record{
		rec("exact", 10, workflow.Mixed, ok(0.0)),
		rec("exact", 10, workflow.Mixed, ok(0.5)),
	}
	s := Summarize(records, GroupBy{Driver: true, TimeReq: true})[0]
	var buf bytes.Buffer
	if err := RenderCDF(&buf, s, 40, 8); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "*") {
		t.Error("CDF plot has no curve")
	}
	// Empty summary renders a note, not a panic.
	var buf2 bytes.Buffer
	if err := RenderCDF(&buf2, Summary{}, 40, 8); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf2.String(), "no delivered results") {
		t.Error("empty CDF note missing")
	}
}

func TestWriteDetailedCSV(t *testing.T) {
	records := []driver.Record{
		rec("exact", 10, workflow.Mixed, ok(0.1)),
		rec("exact", 10, workflow.Mixed, violated()),
	}
	var buf bytes.Buffer
	if err := WriteDetailedCSV(&buf, records); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d, want header + 2", len(lines))
	}
	if !strings.HasPrefix(lines[0], "id,interaction,viz_name") {
		t.Errorf("header wrong: %s", lines[0])
	}
	if !strings.Contains(lines[2], "true") {
		t.Error("violated row should contain tr_violated=true")
	}
	// NaN fields render empty, CSV remains parseable.
	if strings.Contains(buf.String(), "NaN") {
		t.Error("NaN leaked into CSV")
	}
}

func TestAnalyzeFactors(t *testing.T) {
	r1 := rec("a", 10, workflow.Mixed, ok(0.1))
	r2 := rec("a", 10, workflow.Mixed, ok(0.2))
	r2.BinDims = 2
	r2.BinningType = "quantitative quantitative"
	r2.ConcurrentQs = 4
	r2.SQL = "SELECT ... WHERE a = 'x' AND b = 'y' AND (c >= 0 AND c < 1) GROUP BY ..."
	rows := Analyze([]driver.Record{r1, r2})
	if len(rows) == 0 {
		t.Fatal("no analysis rows")
	}
	byFactor := map[Factor][]EffectRow{}
	for _, r := range rows {
		byFactor[r.Factor] = append(byFactor[r.Factor], r)
	}
	if len(byFactor[FactorBinDims]) != 2 {
		t.Errorf("bin_dims levels = %d, want 2", len(byFactor[FactorBinDims]))
	}
	if len(byFactor[FactorConcurrency]) != 2 {
		t.Errorf("concurrency levels = %d, want 2", len(byFactor[FactorConcurrency]))
	}
	// Selectivity levels: r1 has no WHERE → "0 predicates"; r2 has 3.
	var sel []string
	for _, r := range byFactor[FactorSelectivity] {
		sel = append(sel, r.Level)
	}
	joined := strings.Join(sel, ",")
	if !strings.Contains(joined, "0 predicates") || !strings.Contains(joined, "3+ predicates") {
		t.Errorf("selectivity levels wrong: %v", sel)
	}

	var buf bytes.Buffer
	if err := RenderEffects(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "bin_dims") {
		t.Error("effects table missing factor")
	}
}

func TestSummaryString(t *testing.T) {
	s := Summary{Key: Key{Driver: "x", TimeReqMS: 5}, Queries: 3}
	if !strings.Contains(s.String(), "x") {
		t.Error("String() missing driver")
	}
}
