package report

import (
	"fmt"
	"io"
	"text/tabwriter"
)

// OverloadPoint is one measured point of the open-loop overload sweep: the
// server's behavior at a fixed offered arrival rate, including the survival
// counters that show whether admission control and shedding engaged and the
// post-drain leak check.
type OverloadPoint struct {
	// Rate is the schedule's target arrival rate (queries/second);
	// OfferedRate is the rate the generator actually achieved.
	Rate        float64 `json:"rate"`
	OfferedRate float64 `json:"offered_rate"`

	// Offered/Started/Completed count scheduled, issued, and finished
	// operations; Rejected the explicit server admission rejections; Dropped
	// the client-side outstanding-cap drops; Errors everything else.
	Offered   int64 `json:"offered"`
	Started   int64 `json:"started"`
	Completed int64 `json:"completed"`
	Rejected  int64 `json:"rejected"`
	Dropped   int64 `json:"dropped"`
	Errors    int64 `json:"errors"`

	// Shed counts finals cut short by deadline-aware shedding; Violations
	// admitted queries with no usable snapshot inside the deadline.
	Shed       int64 `json:"shed"`
	Violations int64 `json:"violations"`

	// RejectedPct is rejections over started ops; ViolationPct violations
	// over completed (admitted) queries.
	RejectedPct  float64 `json:"rejected_pct"`
	ViolationPct float64 `json:"violation_pct"`

	// Admitted-query latency tails, milliseconds. TTFS is time to first
	// usable snapshot; Done time to final.
	TTFSP50  float64 `json:"ttfs_p50_ms"`
	TTFSP99  float64 `json:"ttfs_p99_ms"`
	TTFSP999 float64 `json:"ttfs_p999_ms"`
	DoneP50  float64 `json:"done_p50_ms"`
	DoneP99  float64 `json:"done_p99_ms"`
	DoneP999 float64 `json:"done_p999_ms"`

	// LeakedConsumers is the shared-scan consumer count after the point
	// fully drained — must be zero at every rate.
	LeakedConsumers int `json:"leaked_consumers"`
}

// FindKnee returns the index of the first point where the server's overload
// valves visibly engaged (explicit rejections or deadline shedding), or -1
// when the whole sweep stayed under capacity. Points are assumed ordered by
// increasing offered rate.
func FindKnee(points []OverloadPoint) int {
	for i, p := range points {
		if p.Rejected > 0 || p.Shed > 0 {
			return i
		}
	}
	return -1
}

// RenderOverloadSweep writes the offered-load ladder with its latency tails
// and survival counters, marking the shedding knee.
func RenderOverloadSweep(w io.Writer, points []OverloadPoint) error {
	knee := FindKnee(points)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "rate/s\toffered\tdone\trejected%\tshed\tviol%\tttfs_p99\tdone_p99\tdone_p99.9\tleaked\t")
	for i, p := range points {
		mark := ""
		if i == knee {
			mark = "<- knee"
		}
		fmt.Fprintf(tw, "%.0f\t%d\t%d\t%.1f\t%d\t%.1f\t%s\t%s\t%s\t%d\t%s\n",
			p.Rate, p.Offered, p.Completed, p.RejectedPct, p.Shed, p.ViolationPct,
			fmtNaN(p.TTFSP99), fmtNaN(p.DoneP99), fmtNaN(p.DoneP999),
			p.LeakedConsumers, mark)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if knee < 0 {
		fmt.Fprintln(w, "no knee: the sweep never pushed the server into shedding")
	} else {
		fmt.Fprintf(w, "knee at %.0f arrivals/s: admission control and shedding engaged; past it the server answers what it admits and rejects the rest explicitly\n",
			points[knee].Rate)
	}
	return nil
}
