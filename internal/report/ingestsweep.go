package report

import (
	"fmt"
	"io"
	"math"
	"sort"
	"text/tabwriter"

	"idebench/internal/driver"
	"idebench/internal/metrics"
)

// IngestScaling is one row of the live-ingestion report: how one (driver,
// concurrent-user-count) group behaved while append-only batches landed
// during the replay. Record-derived fields come from SummarizeIngest; the
// ingest throughput fields describe the applied batch stream and are filled
// by the caller that owns the harness (records do not carry them).
type IngestScaling struct {
	Driver string
	Users  int

	// Queries counts executed queries; TRViolatedPct is the share cancelled
	// at the deadline.
	Queries       int
	TRViolatedPct float64

	// Staleness distribution over delivered results, in rows behind the
	// live table at fetch time. FreshPct is the share of delivered results
	// with zero staleness — answered at the newest data version.
	StalenessMean float64
	StalenessP95  float64
	StalenessMax  float64
	FreshPct      float64

	// IngestedRows / IngestRowsPerSec describe the applied ingest stream
	// (caller-filled; zero when unknown).
	IngestedRows     int64
	IngestRowsPerSec float64
}

// SummarizeIngest groups records by (driver, users) and aggregates the
// staleness distribution of each group, sorted by driver then user count.
// Records with negative staleness (nothing delivered, or a non-ingest run)
// are excluded from the staleness stats but still counted as queries.
func SummarizeIngest(records []driver.Record) []IngestScaling {
	type key struct {
		driver string
		users  int
	}
	groups := map[key][]driver.Record{}
	for _, r := range records {
		users := r.Users
		if users <= 0 {
			users = 1
		}
		groups[key{r.Driver, users}] = append(groups[key{r.Driver, users}], r)
	}
	keys := make([]key, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].driver != keys[j].driver {
			return keys[i].driver < keys[j].driver
		}
		return keys[i].users < keys[j].users
	})

	out := make([]IngestScaling, 0, len(keys))
	for _, k := range keys {
		recs := groups[k]
		row := IngestScaling{Driver: k.driver, Users: k.users, Queries: len(recs)}
		violated := 0
		var stale []float64
		fresh := 0
		for _, r := range recs {
			if r.Metrics.TRViolated {
				violated++
			}
			if s := r.Metrics.StalenessRows; s >= 0 {
				stale = append(stale, s)
				if s == 0 {
					fresh++
				}
			}
		}
		row.TRViolatedPct = 100 * float64(violated) / float64(len(recs))
		if len(stale) > 0 {
			sort.Float64s(stale)
			var sum float64
			for _, s := range stale {
				sum += s
			}
			row.StalenessMean = sum / float64(len(stale))
			row.StalenessP95 = metrics.PercentileSorted(stale, 0.95)
			row.StalenessMax = stale[len(stale)-1]
			row.FreshPct = 100 * float64(fresh) / float64(len(stale))
		} else {
			row.StalenessMean = math.NaN()
			row.StalenessP95 = math.NaN()
			row.StalenessMax = math.NaN()
			row.FreshPct = math.NaN()
		}
		out = append(out, row)
	}
	return out
}

// RenderIngestSweep writes the live-ingestion scalability table.
func RenderIngestSweep(w io.Writer, rows []IngestScaling) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "driver\tusers\tqueries\ttr_violated%\tingested_rows\tingest_rows/s\tfresh%\tstale_mean\tstale_p95\tstale_max")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.1f\t%d\t%.0f\t%s\t%s\t%s\t%s\n",
			r.Driver, r.Users, r.Queries, r.TRViolatedPct,
			r.IngestedRows, r.IngestRowsPerSec,
			fmtNaN(r.FreshPct), fmtNaN(r.StalenessMean), fmtNaN(r.StalenessP95), fmtNaN(r.StalenessMax))
	}
	return tw.Flush()
}
