package groundtruth

import (
	"sync"
	"testing"

	"idebench/internal/enginetest"
	"idebench/internal/query"
)

func TestGetComputesAndCaches(t *testing.T) {
	db := enginetest.SmallDB(5000, 1)
	c := New(db)
	q := enginetest.CountByCarrier()
	r1, err := c.Get(q)
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Complete {
		t.Error("ground truth must be complete")
	}
	var total float64
	for _, bv := range r1.Bins {
		total += bv.Values[0]
	}
	if total != 5000 {
		t.Errorf("total = %v, want 5000", total)
	}
	r2, err := c.Get(q)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("second Get should return the cached pointer")
	}
	if c.Size() != 1 {
		t.Errorf("cache size = %d", c.Size())
	}
}

func TestGetDistinguishesSignatures(t *testing.T) {
	db := enginetest.SmallDB(2000, 3)
	c := New(db)
	q1 := enginetest.CountByCarrier()
	q2 := enginetest.CountByCarrier()
	q2.Filter = query.Filter{Predicates: []query.Predicate{
		{Field: "origin_state", Op: query.OpIn, Values: []string{"CA"}},
	}}
	if _, err := c.Get(q1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(q2); err != nil {
		t.Fatal(err)
	}
	if c.Size() != 2 {
		t.Errorf("cache size = %d, want 2", c.Size())
	}
}

func TestGetInvalidQuery(t *testing.T) {
	db := enginetest.SmallDB(100, 5)
	c := New(db)
	q := enginetest.CountByCarrier()
	q.Table = "ghost"
	if _, err := c.Get(q); err == nil {
		t.Error("invalid query should error")
	}
	// The error is cached too.
	if _, err := c.Get(q); err == nil {
		t.Error("cached error should persist")
	}
}

func TestConcurrentGets(t *testing.T) {
	db := enginetest.SmallDB(50000, 7)
	c := New(db)
	q := enginetest.AvgDelayByDistance()
	var wg sync.WaitGroup
	results := make([]*query.Result, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := c.Get(q)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = r
		}(i)
	}
	wg.Wait()
	for i := 1; i < 8; i++ {
		if results[i] != results[0] {
			t.Fatal("concurrent gets should share one computation")
		}
	}
	if c.Size() != 1 {
		t.Errorf("cache size = %d", c.Size())
	}
}
