// Package groundtruth computes and caches exact query results against a
// database. The benchmark driver evaluates every delivered result against
// these references (paper Sec. 4.7); caching by query signature keeps the
// cost of repeated queries (common in workflows) at one scan each.
package groundtruth

import (
	"sync"

	"idebench/internal/dataset"
	"idebench/internal/engine"
	"idebench/internal/query"
)

// Cache memoizes exact results per query signature for one database. It is
// safe for concurrent use; concurrent misses for the same signature compute
// once.
type Cache struct {
	db *dataset.Database

	mu      sync.Mutex
	entries map[string]*entry
}

type entry struct {
	once sync.Once
	res  *query.Result
	err  error
}

// New returns an empty cache bound to db.
func New(db *dataset.Database) *Cache {
	return &Cache{db: db, entries: make(map[string]*entry)}
}

// Get returns the exact result for q, computing it on first use.
func (c *Cache) Get(q *query.Query) (*query.Result, error) {
	sig := q.Signature()
	c.mu.Lock()
	e, ok := c.entries[sig]
	if !ok {
		e = &entry{}
		c.entries[sig] = e
	}
	c.mu.Unlock()

	e.once.Do(func() {
		e.res, e.err = compute(c.db, q)
	})
	return e.res, e.err
}

// Size reports the number of cached signatures (for tests and reports).
func (c *Cache) Size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// compute runs the exact scan.
func compute(db *dataset.Database, q *query.Query) (*query.Result, error) {
	plan, err := engine.Compile(db, q)
	if err != nil {
		return nil, err
	}
	gs := engine.NewGroupState(plan)
	gs.ScanRange(0, plan.NumRows)
	return gs.SnapshotExact(), nil
}
