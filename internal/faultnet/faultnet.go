// Package faultnet is an in-repo fault-injecting TCP proxy for chaos
// testing the serving path. It sits between a client and the WebSocket
// server on loopback and perturbs the byte stream: added latency and
// jitter, mid-stream connection resets after a byte budget, slow-reader
// throttling, and whole-connection drops. Faults apply per direction and
// can be changed while connections are live; the chaos test wall uses it
// to kill clients mid-query and mid-ingest and then assert the server
// leaked nothing (scan consumers return to baseline, watermarks stay
// consistent).
package faultnet

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Faults describes one direction's perturbations. The zero value is a
// transparent pipe.
type Faults struct {
	// Latency is added before each forwarded chunk; Jitter adds a uniform
	// random extra in [0, Jitter).
	Latency time.Duration
	Jitter  time.Duration
	// ResetAfterBytes hard-resets the connection (RST, not FIN) once this
	// many bytes have been forwarded in this direction. 0 disables. The
	// reset models a client dying mid-frame: the peer sees a connection
	// error with no close handshake.
	ResetAfterBytes int64
	// ThrottleBytesPerSec caps this direction's forwarding rate, modeling a
	// slow reader on the other end. 0 disables.
	ThrottleBytesPerSec int64
	// DropEveryNth closes (FIN) every Nth accepted connection immediately
	// after accepting it, before any bytes flow. 0 disables; applies only
	// on the client→server direction's Faults (the accept side).
	DropEveryNth int64
}

// Proxy is a loopback TCP proxy with injectable faults.
type Proxy struct {
	target string
	ln     net.Listener
	rng    *rand.Rand
	rngMu  sync.Mutex

	mu       sync.Mutex
	upstream Faults // client → server
	down     Faults // server → client
	conns    map[*proxyConn]struct{}
	accepted int64
	closed   bool

	// BytesUp/BytesDown count forwarded bytes per direction.
	BytesUp   atomic.Int64
	BytesDown atomic.Int64

	wg sync.WaitGroup
}

// proxyConn is one live client↔server pair.
type proxyConn struct {
	client, server *net.TCPConn
	closeOnce      sync.Once
}

// New starts a proxy on 127.0.0.1:0 forwarding to target (host:port).
func New(target string) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{
		target: target,
		ln:     ln,
		rng:    rand.New(rand.NewSource(1)),
		conns:  map[*proxyConn]struct{}{},
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's dialable address.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// SetFaults replaces both directions' fault configuration. It affects
// bytes forwarded from this point on, including on live connections.
func (p *Proxy) SetFaults(up, down Faults) {
	p.mu.Lock()
	p.upstream, p.down = up, down
	p.mu.Unlock()
}

// ResetAll hard-resets (RST) every live proxied connection, modeling the
// whole client population dying at once.
func (p *Proxy) ResetAll() {
	p.mu.Lock()
	conns := make([]*proxyConn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	for _, c := range conns {
		c.reset()
	}
}

// ActiveConns returns the number of live proxied connections.
func (p *Proxy) ActiveConns() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.conns)
}

// Close stops accepting, resets every live connection, and waits for the
// forwarding goroutines to drain.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	err := p.ln.Close()
	p.ResetAll()
	p.wg.Wait()
	return err
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		client := conn.(*net.TCPConn)
		p.mu.Lock()
		p.accepted++
		n := p.accepted
		drop := p.upstream.DropEveryNth
		closed := p.closed
		p.mu.Unlock()
		if closed {
			client.Close()
			return
		}
		if drop > 0 && n%drop == 0 {
			client.Close()
			continue
		}
		serverConn, err := net.Dial("tcp", p.target)
		if err != nil {
			client.Close()
			continue
		}
		pc := &proxyConn{client: client, server: serverConn.(*net.TCPConn)}
		p.mu.Lock()
		p.conns[pc] = struct{}{}
		p.mu.Unlock()
		p.wg.Add(2)
		go p.pipe(pc, pc.client, pc.server, true)
		go p.pipe(pc, pc.server, pc.client, false)
	}
}

// reset force-closes both legs with an RST on the client side so the
// server observes an abortive close, not an orderly shutdown.
func (c *proxyConn) reset() {
	c.closeOnce.Do(func() {
		// SO_LINGER 0 turns Close into RST on both legs.
		c.client.SetLinger(0)
		c.server.SetLinger(0)
		c.client.Close()
		c.server.Close()
	})
}

// pipe forwards src→dst applying the direction's current faults per chunk.
func (p *Proxy) pipe(pc *proxyConn, src, dst *net.TCPConn, up bool) {
	defer p.wg.Done()
	defer func() {
		pc.reset()
		p.mu.Lock()
		delete(p.conns, pc)
		p.mu.Unlock()
	}()
	buf := make([]byte, 16<<10)
	var forwarded int64
	for {
		n, err := src.Read(buf)
		if n > 0 {
			f := p.faults(up)
			if d := p.delay(f); d > 0 {
				time.Sleep(d)
			}
			if f.ThrottleBytesPerSec > 0 {
				// Pace the chunk: sleep for the time its bytes "cost".
				time.Sleep(time.Duration(float64(n) / float64(f.ThrottleBytesPerSec) * float64(time.Second)))
			}
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return
			}
			forwarded += int64(n)
			if up {
				p.BytesUp.Add(int64(n))
			} else {
				p.BytesDown.Add(int64(n))
			}
			if f.ResetAfterBytes > 0 && forwarded >= f.ResetAfterBytes {
				return // deferred reset() sends the RST
			}
		}
		if err != nil {
			return
		}
	}
}

func (p *Proxy) faults(up bool) Faults {
	p.mu.Lock()
	defer p.mu.Unlock()
	if up {
		return p.upstream
	}
	return p.down
}

func (p *Proxy) delay(f Faults) time.Duration {
	d := f.Latency
	if f.Jitter > 0 {
		p.rngMu.Lock()
		d += time.Duration(p.rng.Int63n(int64(f.Jitter)))
		p.rngMu.Unlock()
	}
	return d
}

// ErrClosed is returned by operations on a closed proxy.
var ErrClosed = errors.New("faultnet: proxy closed")
