package faultnet

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"
)

// echoServer accepts connections and echoes bytes back until EOF.
func echoServer(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				io.Copy(c, c)
			}()
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return ln
}

func dialProxy(t *testing.T, p *Proxy) net.Conn {
	t.Helper()
	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatalf("dial proxy: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestTransparentEcho(t *testing.T) {
	ln := echoServer(t)
	p, err := New(ln.Addr().String())
	if err != nil {
		t.Fatalf("proxy: %v", err)
	}
	defer p.Close()

	c := dialProxy(t, p)
	msg := []byte("hello through the proxy")
	if _, err := c.Write(msg); err != nil {
		t.Fatalf("write: %v", err)
	}
	got := make([]byte, len(msg))
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("echo mismatch: %q != %q", got, msg)
	}
	if p.BytesUp.Load() != int64(len(msg)) || p.BytesDown.Load() != int64(len(msg)) {
		t.Fatalf("byte counters: up=%d down=%d want %d", p.BytesUp.Load(), p.BytesDown.Load(), len(msg))
	}
}

func TestLatencyInjection(t *testing.T) {
	ln := echoServer(t)
	p, err := New(ln.Addr().String())
	if err != nil {
		t.Fatalf("proxy: %v", err)
	}
	defer p.Close()
	// 30ms each way — the round trip must take at least ~60ms.
	p.SetFaults(Faults{Latency: 30 * time.Millisecond}, Faults{Latency: 30 * time.Millisecond})

	c := dialProxy(t, p)
	start := time.Now()
	if _, err := c.Write([]byte("x")); err != nil {
		t.Fatalf("write: %v", err)
	}
	buf := make([]byte, 1)
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatalf("read: %v", err)
	}
	if rtt := time.Since(start); rtt < 50*time.Millisecond {
		t.Fatalf("round trip %v, want >= ~60ms with injected latency", rtt)
	}
}

func TestResetAfterBytes(t *testing.T) {
	ln := echoServer(t)
	p, err := New(ln.Addr().String())
	if err != nil {
		t.Fatalf("proxy: %v", err)
	}
	defer p.Close()
	p.SetFaults(Faults{ResetAfterBytes: 10}, Faults{})

	c := dialProxy(t, p)
	if _, err := c.Write(make([]byte, 64)); err != nil {
		t.Fatalf("write: %v", err)
	}
	// The upstream pipe must kill the connection after forwarding >= 10
	// bytes; the client then observes an error on read.
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 64)
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := c.Read(buf); err != nil {
			return // connection died as intended
		}
	}
	t.Fatal("connection survived past ResetAfterBytes")
}

func TestDropEveryNth(t *testing.T) {
	ln := echoServer(t)
	p, err := New(ln.Addr().String())
	if err != nil {
		t.Fatalf("proxy: %v", err)
	}
	defer p.Close()
	p.SetFaults(Faults{DropEveryNth: 2}, Faults{})

	// Connections 2 and 4 are dropped at accept; 1 and 3 echo fine.
	alive := 0
	for i := 0; i < 4; i++ {
		c, err := net.Dial("tcp", p.Addr())
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		c.Write([]byte("ping"))
		c.SetReadDeadline(time.Now().Add(500 * time.Millisecond))
		buf := make([]byte, 4)
		if _, err := io.ReadFull(c, buf); err == nil {
			alive++
		}
		c.Close()
	}
	if alive != 2 {
		t.Fatalf("alive connections = %d, want 2 of 4 with DropEveryNth=2", alive)
	}
}

func TestResetAllAndActiveConns(t *testing.T) {
	ln := echoServer(t)
	p, err := New(ln.Addr().String())
	if err != nil {
		t.Fatalf("proxy: %v", err)
	}
	defer p.Close()

	conns := make([]net.Conn, 3)
	for i := range conns {
		conns[i] = dialProxy(t, p)
		// Force the dial through: a write round-trip proves the pair exists.
		conns[i].Write([]byte("x"))
		buf := make([]byte, 1)
		conns[i].SetReadDeadline(time.Now().Add(2 * time.Second))
		if _, err := io.ReadFull(conns[i], buf); err != nil {
			t.Fatalf("conn %d echo: %v", i, err)
		}
	}
	if n := p.ActiveConns(); n != 3 {
		t.Fatalf("ActiveConns = %d, want 3", n)
	}
	p.ResetAll()
	for i, c := range conns {
		c.SetReadDeadline(time.Now().Add(2 * time.Second))
		buf := make([]byte, 1)
		if _, err := c.Read(buf); err == nil {
			t.Fatalf("conn %d still alive after ResetAll", i)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for p.ActiveConns() != 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := p.ActiveConns(); n != 0 {
		t.Fatalf("ActiveConns = %d after ResetAll, want 0", n)
	}
}

func TestThrottle(t *testing.T) {
	ln := echoServer(t)
	p, err := New(ln.Addr().String())
	if err != nil {
		t.Fatalf("proxy: %v", err)
	}
	defer p.Close()
	// 10 KiB/s upstream: 2 KiB should take ~200ms to forward.
	p.SetFaults(Faults{ThrottleBytesPerSec: 10 << 10}, Faults{})

	c := dialProxy(t, p)
	payload := make([]byte, 2<<10)
	start := time.Now()
	if _, err := c.Write(payload); err != nil {
		t.Fatalf("write: %v", err)
	}
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(c, payload); err != nil {
		t.Fatalf("read: %v", err)
	}
	if el := time.Since(start); el < 100*time.Millisecond {
		t.Fatalf("2KiB at 10KiB/s took %v, want >= ~200ms", el)
	}
}
