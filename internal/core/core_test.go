package core

import (
	"testing"
	"time"

	"idebench/internal/workflow"
)

func TestSizeLabel(t *testing.T) {
	cases := []struct {
		rows int
		want string
	}{
		{1_000_000, "1m"}, {500_000, "500k"}, {250_000, "250k"}, {1234, "1234"},
	}
	for _, c := range cases {
		if got := SizeLabel(c.rows); got != c.want {
			t.Errorf("SizeLabel(%d) = %q, want %q", c.rows, got, c.want)
		}
	}
}

func TestDefaults(t *testing.T) {
	trs := DefaultTimeRequirements()
	if len(trs) != 5 {
		t.Errorf("default TRs = %d, want 5 (paper: 0.5,1,3,5,10s)", len(trs))
	}
	for i := 1; i < len(trs); i++ {
		if trs[i] <= trs[i-1] {
			t.Error("TRs should be increasing")
		}
	}
	thinks := DefaultThinkTimes()
	if len(thinks) != 10 {
		t.Errorf("think times = %d, want 10 (paper: 1..10s)", len(thinks))
	}
	s := DefaultSettings()
	if s.Confidence != 0.95 || s.DataSize != SizeM {
		t.Errorf("default settings wrong: %+v", s)
	}
}

func TestNewEngineRegistry(t *testing.T) {
	for _, name := range append(append([]string(nil), EngineNames...), "progressive-spec", "systemy", "sqldb") {
		e, err := NewEngine(name)
		if err != nil {
			t.Errorf("NewEngine(%s): %v", name, err)
			continue
		}
		if e.Name() == "" {
			t.Errorf("engine %s has empty name", name)
		}
	}
	if _, err := NewEngine("nope"); err == nil {
		t.Error("unknown engine should fail")
	}
}

func TestSupportsJoins(t *testing.T) {
	if !SupportsJoins("exactdb") || !SupportsJoins("onlinedb") {
		t.Error("exactdb/onlinedb support joins")
	}
	if SupportsJoins("progressive") || SupportsJoins("sampledb") {
		t.Error("progressive/sampledb must not claim join support")
	}
}

func TestBuildDataDenormalized(t *testing.T) {
	db, err := BuildData(20000, false, 3)
	if err != nil {
		t.Fatal(err)
	}
	if db.IsNormalized() {
		t.Error("expected de-normalized database")
	}
	if db.NumRows() != 20000 {
		t.Errorf("rows = %d", db.NumRows())
	}
	if db.Fact.Column("carrier") == nil {
		t.Error("flights schema missing carrier")
	}
}

func TestBuildDataNormalized(t *testing.T) {
	db, err := BuildData(20000, true, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !db.IsNormalized() || len(db.Dimensions) != 2 {
		t.Error("expected star schema with 2 dimensions")
	}
	// Same seed: fact row count matches the flat build.
	flat, err := BuildData(20000, false, 3)
	if err != nil {
		t.Fatal(err)
	}
	if db.NumRows() != flat.NumRows() {
		t.Error("normalized and flat builds should have equal cardinality")
	}
}

func TestPrepareAndRun(t *testing.T) {
	db, err := BuildData(20000, false, 5)
	if err != nil {
		t.Fatal(err)
	}
	s := DefaultSettings()
	s.DataSize = 20000
	s.TimeRequirement = 100 * time.Millisecond
	s.ThinkTime = 0
	p, err := Prepare("exactdb", db, s)
	if err != nil {
		t.Fatal(err)
	}
	if p.PrepTime <= 0 {
		t.Error("prep time should be measured")
	}
	flows, err := GenerateWorkflows(db, 1, 6, 9)
	if err != nil {
		t.Fatal(err)
	}
	mixed := MixedOnly(flows)
	if len(mixed) != 1 {
		t.Fatalf("mixed workflows = %d", len(mixed))
	}
	recs, err := p.Run(mixed, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Error("no records produced")
	}
	for _, r := range recs {
		if r.DataSize != "20k" {
			t.Errorf("data size label = %q", r.DataSize)
		}
	}
}

func TestPrepareRejectsJoinIncapableEngines(t *testing.T) {
	db, err := BuildData(5000, true, 5)
	if err != nil {
		t.Fatal(err)
	}
	s := DefaultSettings()
	if _, err := Prepare("progressive", db, s); err == nil {
		t.Error("progressive on star schema should fail")
	}
	if _, err := Prepare("sampledb", db, s); err == nil {
		t.Error("sampledb on star schema should fail")
	}
	if _, err := Prepare("exactdb", db, s); err != nil {
		t.Errorf("exactdb on star schema should work: %v", err)
	}
}

func TestGenerateWorkflowsSet(t *testing.T) {
	db, err := BuildData(5000, false, 7)
	if err != nil {
		t.Fatal(err)
	}
	flows, err := GenerateWorkflows(db, 2, 8, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) != 10 { // 5 types × 2
		t.Errorf("flows = %d, want 10", len(flows))
	}
	for _, f := range flows {
		if err := f.Validate(); err != nil {
			t.Errorf("workflow %s invalid: %v", f.Name, err)
		}
	}
}

func TestSortDurations(t *testing.T) {
	in := []time.Duration{5, 1, 3}
	out := SortDurations(in)
	if out[0] != 1 || out[2] != 5 {
		t.Error("not sorted")
	}
	if in[0] != 5 {
		t.Error("input mutated")
	}
}

func TestMixedOnly(t *testing.T) {
	flows := []*workflow.Workflow{
		{Type: workflow.Mixed}, {Type: workflow.SequentialLinking}, {Type: workflow.Mixed},
	}
	if got := len(MixedOnly(flows)); got != 2 {
		t.Errorf("mixed = %d, want 2", got)
	}
}
