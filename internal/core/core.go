// Package core is the top-level façade of IDEBench-Go: benchmark settings
// with the paper's default configurations (scaled to laptop size — see
// DESIGN.md), the engine registry, dataset construction, and one-call
// prepare/run helpers tying datagen, workflows, engines, driver and
// reporting together.
package core

import (
	"fmt"
	"sort"
	"time"

	"idebench/internal/datagen"
	"idebench/internal/dataset"
	"idebench/internal/driver"
	"idebench/internal/engine"
	"idebench/internal/engine/exactdb"
	"idebench/internal/engine/idelayer"
	"idebench/internal/engine/onlinedb"
	"idebench/internal/engine/progressive"
	"idebench/internal/engine/sampledb"
	"idebench/internal/engine/sqldb"
	"idebench/internal/groundtruth"
	"idebench/internal/workflow"
)

// TimeScale is the wall-clock scale-down factor relative to the paper's
// setup: the paper runs 100M–1B rows with 0.5–10s time requirements on a
// 20-core server; we default to 250k–1M rows with 2–40ms TRs on one core.
// Both axes shrink by the same ~250×, preserving the relative behaviour of
// the engines (who violates TRs, who converges — see EXPERIMENTS.md).
const TimeScale = 250

// Default dataset sizes (paper: S=100M, M=500M, L=1B tuples).
const (
	SizeS = 250_000
	SizeM = 500_000
	SizeL = 1_000_000
)

// SizeLabel renders a row count like the paper's "500m" labels.
func SizeLabel(rows int) string {
	switch {
	case rows >= 1_000_000 && rows%1_000_000 == 0:
		return fmt.Sprintf("%dm", rows/1_000_000)
	case rows >= 1_000 && rows%1_000 == 0:
		return fmt.Sprintf("%dk", rows/1_000)
	default:
		return fmt.Sprintf("%d", rows)
	}
}

// DefaultTimeRequirements mirrors the paper's sweep {0.5, 1, 3, 5, 10}s at
// 1/TimeScale.
func DefaultTimeRequirements() []time.Duration {
	return []time.Duration{
		2 * time.Millisecond,
		4 * time.Millisecond,
		12 * time.Millisecond,
		20 * time.Millisecond,
		40 * time.Millisecond,
	}
}

// DefaultThinkTime is the stress-test think time (paper: 1s).
const DefaultThinkTime = 4 * time.Millisecond

// DefaultThinkTimes mirrors the paper's 1–10s think-time sweep (Exp. 3).
func DefaultThinkTimes() []time.Duration {
	out := make([]time.Duration, 10)
	for i := range out {
		out[i] = time.Duration(i+1) * 4 * time.Millisecond
	}
	return out
}

// DefaultConfidence is the confidence level for margins of error.
const DefaultConfidence = 0.95

// Settings bundles one run's configuration (paper Sec. 4.6).
type Settings struct {
	TimeRequirement time.Duration
	ThinkTime       time.Duration
	DataSize        int
	UseJoins        bool
	Confidence      float64
	Seed            int64
}

// DefaultSettings returns the default configuration at size M.
func DefaultSettings() Settings {
	return Settings{
		TimeRequirement: 12 * time.Millisecond,
		ThinkTime:       DefaultThinkTime,
		DataSize:        SizeM,
		Confidence:      DefaultConfidence,
		Seed:            1,
	}
}

// EngineNames lists the four fully-driveable engines in report order
// ("systemy" additionally wraps exactdb for Exp. 5).
var EngineNames = []string{"exactdb", "onlinedb", "progressive", "sampledb"}

// NewEngine constructs an engine by registry name.
//
//	exactdb          — blocking analytical column store (MonetDB analogue)
//	onlinedb         — online aggregation w/ blocking fallback (XDB analogue)
//	progressive      — progressive online engine (IDEA analogue)
//	progressive-spec — progressive with think-time speculation (Exp. 3)
//	sampledb         — offline stratified sampling AQP (System X analogue)
//	systemy          — IDE layer over exactdb (System Y analogue)
//	sqldb            — generic database/sql adapter on the sqlmem backend
func NewEngine(name string) (engine.Engine, error) {
	switch name {
	case "exactdb":
		return exactdb.New(), nil
	case "onlinedb":
		return onlinedb.New(onlinedb.Config{}), nil
	case "progressive":
		return progressive.New(progressive.Config{}), nil
	case "progressive-spec":
		return progressive.New(progressive.Config{Speculate: true}), nil
	case "sampledb":
		return sampledb.New(sampledb.Config{}), nil
	case "systemy":
		return idelayer.New(exactdb.New(), idelayer.Config{}), nil
	case "sqldb":
		return sqldb.NewSQLMem(), nil
	default:
		return nil, fmt.Errorf("core: unknown engine %q (known: %v + progressive-spec, systemy)",
			name, EngineNames)
	}
}

// SupportsJoins reports whether the named engine accepts normalized star
// schemas (paper Sec. 5.3 excludes IDEA and System X).
func SupportsJoins(name string) bool {
	switch name {
	case "exactdb", "onlinedb", "systemy", "sqldb":
		return true
	}
	return false
}

// BuildData generates the default flights dataset at the requested size:
// a seed via the synthetic generator, scaled with the copula scaler, then
// optionally normalized into the default star schema.
func BuildData(rows int, useJoins bool, seed int64) (*dataset.Database, error) {
	seedRows := rows / 10
	if seedRows < 2_000 {
		seedRows = 2_000
	}
	if seedRows > 50_000 {
		seedRows = 50_000
	}
	seedTbl, err := datagen.GenerateSeed(seedRows, seed)
	if err != nil {
		return nil, fmt.Errorf("core: seed: %w", err)
	}
	tbl, err := datagen.ScaleTable(seedTbl, rows, seed+1)
	if err != nil {
		return nil, fmt.Errorf("core: scale: %w", err)
	}
	if !useJoins {
		return &dataset.Database{Fact: tbl}, nil
	}
	db, err := datagen.Normalize(tbl, datagen.DefaultDimensions())
	if err != nil {
		return nil, fmt.Errorf("core: normalize: %w", err)
	}
	return db, nil
}

// Prepared couples a prepared engine with its database, ground-truth cache
// and measured data preparation time (paper Sec. 4.8 reporting rule).
type Prepared struct {
	Name     string
	Engine   engine.Engine
	DB       *dataset.Database
	GT       *groundtruth.Cache
	PrepTime time.Duration
}

// Prepare constructs and prepares the named engine on db, timing the data
// preparation.
func Prepare(name string, db *dataset.Database, s Settings) (*Prepared, error) {
	eng, err := NewEngine(name)
	if err != nil {
		return nil, err
	}
	opts := engine.Options{Confidence: s.Confidence, Seed: s.Seed}
	start := time.Now()
	if err := eng.Prepare(db, opts); err != nil {
		return nil, fmt.Errorf("core: prepare %s: %w", name, err)
	}
	return &Prepared{
		Name:     name,
		Engine:   eng,
		DB:       db,
		GT:       groundtruth.New(db),
		PrepTime: time.Since(start),
	}, nil
}

// Run replays the workflows under the settings and returns detailed
// records. The ground-truth cache persists across calls on the same
// Prepared, so TR sweeps pay for each unique query once.
func (p *Prepared) Run(flows []*workflow.Workflow, s Settings) ([]driver.Record, error) {
	r := driver.New(p.Engine, p.GT, driver.Config{
		TimeRequirement: s.TimeRequirement,
		ThinkTime:       s.ThinkTime,
		DataSizeLabel:   SizeLabel(s.DataSize),
	})
	return r.RunWorkflows(flows)
}

// RunUsers replays the workflows as `users` concurrent simulated users over
// the prepared engine, one engine session per user (workflows are dealt
// round-robin). Records carry the user annotations the user-scaling report
// groups by.
func (p *Prepared) RunUsers(flows []*workflow.Workflow, s Settings, users int) ([]driver.Record, error) {
	m := driver.NewMulti(p.Engine, p.GT, driver.MultiConfig{
		Config: driver.Config{
			TimeRequirement: s.TimeRequirement,
			ThinkTime:       s.ThinkTime,
			DataSizeLabel:   SizeLabel(s.DataSize),
		},
		Users:       users,
		ThinkJitter: driver.DefaultThinkJitter,
		Seed:        s.Seed,
	})
	res, err := m.Run(flows)
	if err != nil {
		return nil, err
	}
	return res.Records, nil
}

// RunIngest replays the workflows (typically carrying interleaved ingest
// events) as `users` concurrent simulated users with a live-ingestion sink
// installed: ingest interactions apply batches through it and every result
// is evaluated against the ground truth of the data version its watermark
// names. users <= 1 replays one concurrent user, still through the
// multi-runner so record annotations stay uniform.
func (p *Prepared) RunIngest(flows []*workflow.Workflow, s Settings, users int, sink driver.IngestSink) ([]driver.Record, error) {
	if users < 1 {
		users = 1
	}
	m := driver.NewMulti(p.Engine, p.GT, driver.MultiConfig{
		Config: driver.Config{
			TimeRequirement: s.TimeRequirement,
			ThinkTime:       s.ThinkTime,
			DataSizeLabel:   SizeLabel(s.DataSize),
			IngestSink:      sink,
		},
		Users:       users,
		ThinkJitter: driver.DefaultThinkJitter,
		Seed:        s.Seed,
	})
	res, err := m.Run(flows)
	if err != nil {
		return nil, err
	}
	return res.Records, nil
}

// GenerateWorkflows builds the default workload against the database's fact
// table: count workflows per type (4 pure types + mixed).
func GenerateWorkflows(db *dataset.Database, count, interactions int, seed int64) ([]*workflow.Workflow, error) {
	// The generator needs the de-normalized view of attributes; on a star
	// schema it can only see fact columns, so generate against a synthetic
	// flat view when normalized.
	gen, err := workflow.NewGenerator(db.Fact)
	if err != nil {
		return nil, err
	}
	return gen.GenerateSet(count, interactions, seed)
}

// MixedOnly filters a workflow set down to the mixed workflows (the paper's
// main experiment reports the mixed workload).
func MixedOnly(flows []*workflow.Workflow) []*workflow.Workflow {
	var out []*workflow.Workflow
	for _, f := range flows {
		if f.Type == workflow.Mixed {
			out = append(out, f)
		}
	}
	return out
}

// SortDurations returns ds sorted ascending (convenience for experiment
// sweeps assembled from CLI flags).
func SortDurations(ds []time.Duration) []time.Duration {
	out := append([]time.Duration(nil), ds...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
