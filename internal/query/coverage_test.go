package query

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
)

func coveredResult() *Result {
	r := NewResult()
	r.Bins[BinKey{A: 2}] = &BinValue{Values: []float64{41}, Margins: []float64{0.5}}
	r.Bins[BinKey{A: 0}] = &BinValue{Values: []float64{7}, Margins: []float64{1.25}}
	r.RowsSeen = 480
	r.TotalRows = 1000
	r.Watermark = 960
	r.Coverage = &Coverage{
		PartitionsAnswered: 2,
		PartitionsTotal:    3,
		PopulationFraction: 0.661,
		Degraded:           true,
	}
	return r
}

// TestCoverageRoundTrip: a degraded result survives encode→decode→encode
// with the coverage block intact and stable.
func TestCoverageRoundTrip(t *testing.T) {
	r := coveredResult()
	enc, err := json.Marshal(r)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Result
	if err := json.Unmarshal(enc, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Coverage == nil {
		t.Fatal("coverage block lost on round trip")
	}
	if !reflect.DeepEqual(back.Coverage, r.Coverage) {
		t.Fatalf("coverage changed: got %+v want %+v", back.Coverage, r.Coverage)
	}
	if back.Coverage.Full() {
		t.Fatal("degraded coverage reported as full")
	}
	enc2, err := json.Marshal(&back)
	if err != nil {
		t.Fatalf("re-marshal: %v", err)
	}
	if !bytes.Equal(enc, enc2) {
		t.Fatalf("unstable encoding:\n%s\n%s", enc, enc2)
	}
}

// TestCoverageOmittedWhenFull: results without a coverage block (every
// single-node engine) serialize without the key at all — the document is
// byte-identical to the protocol-v3 form.
func TestCoverageOmittedWhenFull(t *testing.T) {
	r := coveredResult()
	r.Coverage = nil
	enc, err := json.Marshal(r)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if bytes.Contains(enc, []byte("coverage")) {
		t.Fatalf("nil coverage leaked into wire form: %s", enc)
	}
	var back Result
	if err := json.Unmarshal(enc, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Coverage != nil {
		t.Fatalf("coverage invented on decode: %+v", back.Coverage)
	}
	if !back.Coverage.Full() {
		t.Fatal("nil coverage must read as full")
	}
}

// TestCoverageV3ClientCompat: a client compiled against the protocol-v3
// result shape (no coverage field) still parses v4 documents — encoding/json
// ignores the unknown key on degraded results, and full-coverage results
// omit it entirely. This pins the forward-compatibility contract the v4 bump
// relies on.
func TestCoverageV3ClientCompat(t *testing.T) {
	// The v3 wire struct, frozen as it was before the Coverage field.
	type v3Bin struct {
		Key     [2]int64  `json:"key"`
		Values  []float64 `json:"values"`
		Margins []float64 `json:"margins"`
	}
	type v3Result struct {
		Bins      []v3Bin `json:"bins"`
		RowsSeen  int64   `json:"rows_seen"`
		TotalRows int64   `json:"total_rows"`
		Complete  bool    `json:"complete"`
		Watermark int64   `json:"watermark,omitempty"`
	}

	for _, tc := range []struct {
		name string
		r    *Result
	}{
		{"degraded", coveredResult()},
		{"full", func() *Result { r := coveredResult(); r.Coverage = nil; return r }()},
	} {
		enc, err := json.Marshal(tc.r)
		if err != nil {
			t.Fatalf("%s: marshal: %v", tc.name, err)
		}
		var old v3Result
		if err := json.Unmarshal(enc, &old); err != nil {
			t.Fatalf("%s: v3 client failed to parse v4 document: %v", tc.name, err)
		}
		if old.RowsSeen != tc.r.RowsSeen || old.TotalRows != tc.r.TotalRows ||
			old.Watermark != tc.r.Watermark || len(old.Bins) != len(tc.r.Bins) {
			t.Fatalf("%s: v3 client mis-parsed: %+v", tc.name, old)
		}
	}
}

// TestCoverageClone: Clone deep-copies the coverage block.
func TestCoverageClone(t *testing.T) {
	r := coveredResult()
	c := r.Clone()
	if c.Coverage == r.Coverage {
		t.Fatal("Clone shared the coverage pointer")
	}
	c.Coverage.PartitionsAnswered = 99
	if r.Coverage.PartitionsAnswered == 99 {
		t.Fatal("Clone aliased coverage state")
	}
	r.Coverage = nil
	if got := r.Clone().Coverage; got != nil {
		t.Fatalf("nil coverage cloned to %+v", got)
	}
}
