// Package query defines the benchmark's query model: visualization
// specifications with binned grouping (1D/2D, nominal/quantitative),
// aggregate functions, incremental filters, and their rendering to SQL
// (paper Sec. 4.4, Fig. 4). Engines consume query.Query values; the driver
// compares their query.Result values against ground truth.
package query

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"idebench/internal/dataset"
)

// AggFunc enumerates the aggregate functions the benchmark issues.
type AggFunc string

// Aggregate functions supported by the workload generator (paper Sec. 2.2:
// "aggregate functions to each group such as AVG, or SUM").
const (
	Count AggFunc = "count"
	Sum   AggFunc = "sum"
	Avg   AggFunc = "avg"
	Min   AggFunc = "min"
	Max   AggFunc = "max"
)

// Valid reports whether f is a known aggregate function.
func (f AggFunc) Valid() bool {
	switch f {
	case Count, Sum, Avg, Min, Max:
		return true
	}
	return false
}

// Aggregate is one aggregate expression. Field is empty for COUNT(*).
type Aggregate struct {
	Func  AggFunc `json:"func"`
	Field string  `json:"field,omitempty"`
}

// String renders the aggregate as SQL.
func (a Aggregate) String() string {
	if a.Func == Count && a.Field == "" {
		return "COUNT(*)"
	}
	return fmt.Sprintf("%s(%s)", strings.ToUpper(string(a.Func)), a.Field)
}

// Binning describes one grouping dimension of a visualization. Nominal
// fields bin by identity; quantitative fields bin by fixed width relative to
// an origin (paper Sec. 2.2, method 2: "choosing an interval based on a
// fixed bin width and a reference value").
type Binning struct {
	Field  string       `json:"field"`
	Kind   dataset.Kind `json:"kind"`
	Width  float64      `json:"width,omitempty"`  // quantitative only, > 0
	Origin float64      `json:"origin,omitempty"` // quantitative only
}

// BinIndex maps a raw value to its bin index.
func (b Binning) BinIndex(v float64) int64 {
	return int64(math.Floor((v - b.Origin) / b.Width))
}

// BinLow returns the inclusive lower bound of bin idx.
func (b Binning) BinLow(idx int64) float64 { return b.Origin + float64(idx)*b.Width }

// Validate checks internal consistency.
func (b Binning) Validate() error {
	if b.Field == "" {
		return errors.New("query: binning without field")
	}
	if b.Kind == dataset.Quantitative && !(b.Width > 0) {
		return fmt.Errorf("query: quantitative binning on %q needs width > 0", b.Field)
	}
	return nil
}

// Op enumerates filter predicate operators.
type Op string

// Predicate operators. In covers nominal selections (one or more category
// values); Range covers quantitative selections [Lo, Hi).
const (
	OpIn    Op = "in"
	OpRange Op = "range"
)

// Predicate is one conjunct of a filter.
type Predicate struct {
	Field  string   `json:"field"`
	Op     Op       `json:"op"`
	Values []string `json:"values,omitempty"` // OpIn
	Lo     float64  `json:"lo,omitempty"`     // OpRange, inclusive
	Hi     float64  `json:"hi,omitempty"`     // OpRange, exclusive
}

// Validate checks internal consistency.
func (p Predicate) Validate() error {
	if p.Field == "" {
		return errors.New("query: predicate without field")
	}
	switch p.Op {
	case OpIn:
		if len(p.Values) == 0 {
			return fmt.Errorf("query: IN predicate on %q without values", p.Field)
		}
	case OpRange:
		if !(p.Lo < p.Hi) {
			return fmt.Errorf("query: range predicate on %q with lo >= hi", p.Field)
		}
	default:
		return fmt.Errorf("query: unknown predicate op %q", p.Op)
	}
	return nil
}

// Filter is a conjunction of predicates. The zero value matches all rows.
type Filter struct {
	Predicates []Predicate `json:"predicates,omitempty"`
}

// IsEmpty reports whether the filter matches everything.
func (f Filter) IsEmpty() bool { return len(f.Predicates) == 0 }

// And returns a new filter with p appended; the receiver is not modified
// (filters are built incrementally as users drill down).
func (f Filter) And(p Predicate) Filter {
	out := Filter{Predicates: make([]Predicate, 0, len(f.Predicates)+1)}
	out.Predicates = append(out.Predicates, f.Predicates...)
	out.Predicates = append(out.Predicates, p)
	return out
}

// Query is one executable aggregation query derived from a visualization
// specification.
type Query struct {
	// VizName identifies the visualization this query updates.
	VizName string `json:"viz_name"`
	// Table names the (fact) table.
	Table string `json:"table"`
	// Bins has one or two grouping dimensions.
	Bins []Binning `json:"bins"`
	// Aggs has at least one aggregate.
	Aggs []Aggregate `json:"aggs"`
	// Filter restricts the input rows.
	Filter Filter `json:"filter"`
}

// Validate checks the query is well formed.
func (q *Query) Validate() error {
	if q.Table == "" {
		return errors.New("query: missing table")
	}
	if len(q.Bins) < 1 || len(q.Bins) > 2 {
		return fmt.Errorf("query: %d binning dimensions, want 1 or 2", len(q.Bins))
	}
	for _, b := range q.Bins {
		if err := b.Validate(); err != nil {
			return err
		}
	}
	if len(q.Aggs) == 0 {
		return errors.New("query: no aggregates")
	}
	for _, a := range q.Aggs {
		if !a.Func.Valid() {
			return fmt.Errorf("query: unknown aggregate %q", a.Func)
		}
		if a.Func != Count && a.Field == "" {
			return fmt.Errorf("query: %s aggregate needs a field", a.Func)
		}
	}
	for _, p := range q.Filter.Predicates {
		if err := p.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Signature returns a canonical string identifying the query's semantics,
// used as ground-truth cache key and for result reuse. Two queries with the
// same signature must return the same ground truth.
func (q *Query) Signature() string {
	var sb strings.Builder
	sb.WriteString(q.Table)
	sb.WriteByte('|')
	for _, b := range q.Bins {
		fmt.Fprintf(&sb, "b:%s:%d:%g:%g|", b.Field, b.Kind, b.Width, b.Origin)
	}
	for _, a := range q.Aggs {
		fmt.Fprintf(&sb, "a:%s:%s|", a.Func, a.Field)
	}
	preds := make([]string, len(q.Filter.Predicates))
	for i, p := range q.Filter.Predicates {
		if p.Op == OpIn {
			vals := append([]string(nil), p.Values...)
			sort.Strings(vals)
			preds[i] = fmt.Sprintf("p:%s:in:%s", p.Field, strings.Join(vals, ","))
		} else {
			preds[i] = fmt.Sprintf("p:%s:range:%g:%g", p.Field, p.Lo, p.Hi)
		}
	}
	sort.Strings(preds)
	sb.WriteString(strings.Join(preds, "|"))
	return sb.String()
}

// BinDims returns the number of binning dimensions (paper report column
// "bin dims").
func (q *Query) BinDims() int { return len(q.Bins) }

// BinningType renders the report's "binning type" column, e.g.
// "quantitative quantitative" for a 2D binned scatter plot.
func (q *Query) BinningType() string {
	parts := make([]string, len(q.Bins))
	for i, b := range q.Bins {
		parts[i] = b.Kind.String()
	}
	return strings.Join(parts, " ")
}

// AggType renders the report's "agg type" column.
func (q *Query) AggType() string {
	parts := make([]string, len(q.Aggs))
	for i, a := range q.Aggs {
		parts[i] = string(a.Func)
	}
	return strings.Join(parts, " ")
}

// SelectionPredicate converts a user selection of bin index idx on binning b
// into the filter predicate that linked visualizations receive (brushing:
// selecting a bar constrains the underlying attribute).
func SelectionPredicate(b Binning, idx int64, dict *dataset.Dict) Predicate {
	if b.Kind == dataset.Nominal {
		return Predicate{Field: b.Field, Op: OpIn, Values: []string{dict.Value(uint32(idx))}}
	}
	lo := b.BinLow(idx)
	return Predicate{Field: b.Field, Op: OpRange, Lo: lo, Hi: lo + b.Width}
}
