package query

import (
	"encoding/json"
	"fmt"
)

// resultJSON is the wire representation of a Result: bin keys become
// explicit arrays because JSON objects cannot key on structs. This is the
// format a remote system adapter (paper Sec. 4.5) would write results back
// to the driver in.
type resultJSON struct {
	Bins      []binJSON `json:"bins"`
	RowsSeen  int64     `json:"rows_seen"`
	TotalRows int64     `json:"total_rows"`
	Complete  bool      `json:"complete"`
}

type binJSON struct {
	Key     [2]int64  `json:"key"`
	Values  []float64 `json:"values"`
	Margins []float64 `json:"margins"`
}

// MarshalJSON implements json.Marshaler with deterministic bin order.
func (r *Result) MarshalJSON() ([]byte, error) {
	out := resultJSON{
		Bins:      make([]binJSON, 0, len(r.Bins)),
		RowsSeen:  r.RowsSeen,
		TotalRows: r.TotalRows,
		Complete:  r.Complete,
	}
	for _, k := range r.SortedKeys() {
		bv := r.Bins[k]
		out.Bins = append(out.Bins, binJSON{
			Key:     [2]int64{k.A, k.B},
			Values:  bv.Values,
			Margins: bv.Margins,
		})
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler.
func (r *Result) UnmarshalJSON(data []byte) error {
	var in resultJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("query: decode result: %w", err)
	}
	r.Bins = make(map[BinKey]*BinValue, len(in.Bins))
	r.RowsSeen = in.RowsSeen
	r.TotalRows = in.TotalRows
	r.Complete = in.Complete
	for _, b := range in.Bins {
		if len(b.Margins) != len(b.Values) {
			return fmt.Errorf("query: bin %v has %d margins for %d values",
				b.Key, len(b.Margins), len(b.Values))
		}
		r.Bins[BinKey{A: b.Key[0], B: b.Key[1]}] = &BinValue{
			Values:  b.Values,
			Margins: b.Margins,
		}
	}
	return nil
}
