package query

import (
	"encoding/json"
	"fmt"
)

// UnmarshalJSON normalizes an explicit empty predicate list to the nil zero
// value. The field is tagged omitempty, so an empty non-nil slice would be
// dropped on re-encode and come back nil — making decode→encode→decode
// unstable (caught by FuzzParseQuery); with the normalization the decoded
// form is the canonical one from the start.
func (f *Filter) UnmarshalJSON(data []byte) error {
	type plain Filter
	var p plain
	if err := json.Unmarshal(data, &p); err != nil {
		return err
	}
	if len(p.Predicates) == 0 {
		p.Predicates = nil
	}
	*f = Filter(p)
	return nil
}

// UnmarshalJSON normalizes an explicit empty value list to nil, for the
// same omitempty round-trip stability as Filter.UnmarshalJSON.
func (p *Predicate) UnmarshalJSON(data []byte) error {
	type plain Predicate
	var v plain
	if err := json.Unmarshal(data, &v); err != nil {
		return err
	}
	if len(v.Values) == 0 {
		v.Values = nil
	}
	*p = Predicate(v)
	return nil
}

// resultJSON is the wire representation of a Result: bin keys become
// explicit arrays because JSON objects cannot key on structs. This is the
// format a remote system adapter (paper Sec. 4.5) would write results back
// to the driver in.
type resultJSON struct {
	Bins      []binJSON `json:"bins"`
	RowsSeen  int64     `json:"rows_seen"`
	TotalRows int64     `json:"total_rows"`
	Complete  bool      `json:"complete"`
	Watermark int64     `json:"watermark,omitempty"`
	// Coverage is omitted when nil, so single-node (and fully-covered
	// legacy) result documents are byte-identical to the protocol-v3 form;
	// v3 decoders that do see it ignore the unknown key. Introduced with
	// wire protocol v4.
	Coverage *coverageJSON `json:"coverage,omitempty"`
}

type coverageJSON struct {
	PartitionsAnswered int     `json:"partitions_answered"`
	PartitionsTotal    int     `json:"partitions_total"`
	PopulationFraction float64 `json:"population_fraction"`
	Degraded           bool    `json:"degraded,omitempty"`
}

type binJSON struct {
	Key     [2]int64  `json:"key"`
	Values  []float64 `json:"values"`
	Margins []float64 `json:"margins"`
}

// MarshalJSON implements json.Marshaler with deterministic bin order.
func (r *Result) MarshalJSON() ([]byte, error) {
	out := resultJSON{
		Bins:      make([]binJSON, 0, len(r.Bins)),
		RowsSeen:  r.RowsSeen,
		TotalRows: r.TotalRows,
		Complete:  r.Complete,
		Watermark: r.Watermark,
	}
	if c := r.Coverage; c != nil {
		out.Coverage = &coverageJSON{
			PartitionsAnswered: c.PartitionsAnswered,
			PartitionsTotal:    c.PartitionsTotal,
			PopulationFraction: c.PopulationFraction,
			Degraded:           c.Degraded,
		}
	}
	for _, k := range r.SortedKeys() {
		bv := r.Bins[k]
		out.Bins = append(out.Bins, binJSON{
			Key:     [2]int64{k.A, k.B},
			Values:  bv.Values,
			Margins: bv.Margins,
		})
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler.
func (r *Result) UnmarshalJSON(data []byte) error {
	var in resultJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("query: decode result: %w", err)
	}
	r.Bins = make(map[BinKey]*BinValue, len(in.Bins))
	r.RowsSeen = in.RowsSeen
	r.TotalRows = in.TotalRows
	r.Complete = in.Complete
	r.Watermark = in.Watermark
	r.Coverage = nil
	if c := in.Coverage; c != nil {
		r.Coverage = &Coverage{
			PartitionsAnswered: c.PartitionsAnswered,
			PartitionsTotal:    c.PartitionsTotal,
			PopulationFraction: c.PopulationFraction,
			Degraded:           c.Degraded,
		}
	}
	for _, b := range in.Bins {
		if len(b.Margins) != len(b.Values) {
			return fmt.Errorf("query: bin %v has %d margins for %d values",
				b.Key, len(b.Margins), len(b.Values))
		}
		r.Bins[BinKey{A: b.Key[0], B: b.Key[1]}] = &BinValue{
			Values:  b.Values,
			Margins: b.Margins,
		}
	}
	return nil
}
