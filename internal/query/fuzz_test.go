package query_test

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"

	"idebench/internal/dataset"
	"idebench/internal/query"
	"idebench/internal/workflow"
)

// fuzzTable builds a small table with the fixture schema so the workload
// generator can seed the corpus with realistic queries.
func fuzzTable(tb testing.TB) *dataset.Table {
	schema := dataset.MustSchema([]dataset.Field{
		{Name: "carrier", Kind: dataset.Nominal},
		{Name: "origin_state", Kind: dataset.Nominal},
		{Name: "dep_delay", Kind: dataset.Quantitative},
		{Name: "distance", Kind: dataset.Quantitative},
	})
	carriers := []string{"AA", "UA", "DL"}
	states := []string{"CA", "TX", "NY", "FL"}
	rng := rand.New(rand.NewSource(11))
	b := dataset.NewBuilder("flights", schema, 512)
	for i := 0; i < 512; i++ {
		b.AppendString(0, carriers[rng.Intn(len(carriers))])
		b.AppendString(1, states[rng.Intn(len(states))])
		b.AppendNum(2, rng.NormFloat64()*20)
		b.AppendNum(3, 100+rng.Float64()*2400)
	}
	tbl, err := b.Build()
	if err != nil {
		tb.Fatal(err)
	}
	return tbl
}

// corpusQueries replays generated workflows through the viz graph and
// collects every query the driver would issue — the seed corpus both fuzz
// targets start from.
func corpusQueries(tb testing.TB) []*query.Query {
	gen, err := workflow.NewGenerator(fuzzTable(tb))
	if err != nil {
		tb.Fatal(err)
	}
	flows, err := gen.GenerateSet(1, 12, 23)
	if err != nil {
		tb.Fatal(err)
	}
	var out []*query.Query
	for _, w := range flows {
		graph := workflow.NewGraph()
		for _, in := range w.Interactions {
			eff, err := graph.Apply(in)
			if err != nil {
				tb.Fatal(err)
			}
			out = append(out, eff.Queries...)
		}
	}
	if len(out) == 0 {
		tb.Fatal("workload generator produced no queries for the corpus")
	}
	return out
}

// FuzzParseQuery decodes arbitrary JSON into a Query and checks the paths
// every decoded query flows through — validation, signature, SQL rendering,
// re-encoding — never panic, and that decode→encode→decode is a fixpoint:
// the re-decoded query is semantically identical (deep-equal, same
// signature, same SQL) and re-encodes to the same bytes.
func FuzzParseQuery(f *testing.F) {
	for _, q := range corpusQueries(f) {
		data, err := json.Marshal(q)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	// Hand-picked awkward shapes: empty object, nulls, wrong arity, huge
	// numbers, quoting hazards.
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"bins":null,"aggs":null}`))
	f.Add([]byte(`{"table":"t","bins":[{"field":"x","kind":1,"width":0}],"aggs":[{"func":"avg"}]}`))
	f.Add([]byte(`{"table":"t'--","bins":[{"field":"a","kind":0}],"aggs":[{"func":"count"}],` +
		`"filter":{"predicates":[{"field":"a","op":"in","values":["O'Hare"]}]}}`))
	f.Add([]byte(`{"bins":[{"width":1e308,"origin":-1e308,"kind":1,"field":"x"}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var q1 query.Query
		if err := json.Unmarshal(data, &q1); err != nil {
			t.Skip() // not a query document
		}
		// None of these may panic, valid query or not.
		_ = q1.Validate()
		sig1 := q1.Signature()
		sql1 := q1.ToSQL()
		_ = q1.BinDims()
		_ = q1.BinningType()
		_ = q1.AggType()

		enc1, err := json.Marshal(&q1)
		if err != nil {
			t.Fatalf("decoded query failed to encode: %v", err)
		}
		var q2 query.Query
		if err := json.Unmarshal(enc1, &q2); err != nil {
			t.Fatalf("round-trip decode failed: %v\nencoded: %s", err, enc1)
		}
		if !reflect.DeepEqual(q1, q2) {
			t.Fatalf("decode→encode→decode changed the query:\n was: %#v\n now: %#v", q1, q2)
		}
		if sig2 := q2.Signature(); sig2 != sig1 {
			t.Fatalf("signature unstable across round-trip:\n was: %s\n now: %s", sig1, sig2)
		}
		if sql2 := q2.ToSQL(); sql2 != sql1 {
			t.Fatalf("SQL rendering unstable across round-trip:\n was: %s\n now: %s", sql1, sql2)
		}
		enc2, err := json.Marshal(&q2)
		if err != nil {
			t.Fatal(err)
		}
		if string(enc1) != string(enc2) {
			t.Fatalf("encoding not a fixpoint:\n was: %s\n now: %s", enc1, enc2)
		}
	})
}

// FuzzResultRoundTrip checks the Result wire format: any document the
// custom unmarshaler accepts must re-encode deterministically, and the
// encoding must be a fixpoint from the first re-encode on (the first decode
// may legitimately collapse duplicate bin keys).
func FuzzResultRoundTrip(f *testing.F) {
	// Seed with results shaped like real engine output for corpus queries.
	for i, q := range corpusQueries(f) {
		res := query.NewResult()
		res.TotalRows = 512
		res.RowsSeen = int64(100 + i)
		res.Complete = i%2 == 0
		nAggs := len(q.Aggs)
		for b := 0; b < 3; b++ {
			vals := make([]float64, nAggs)
			margs := make([]float64, nAggs)
			for a := range vals {
				vals[a] = float64(i*7+b) * 1.5
				margs[a] = float64(b) * 0.25
			}
			res.Bins[query.BinKey{A: int64(b), B: int64(i % 2)}] = &query.BinValue{Values: vals, Margins: margs}
		}
		data, err := json.Marshal(res)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{"bins":[],"rows_seen":0,"total_rows":0,"complete":false}`))
	f.Add([]byte(`{"bins":[{"key":[1,2],"values":[1],"margins":[0]},{"key":[1,2],"values":[2],"margins":[0]}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var r1 query.Result
		if err := json.Unmarshal(data, &r1); err != nil {
			t.Skip() // rejected documents are fine; panics are not
		}
		enc1, err := json.Marshal(&r1)
		if err != nil {
			t.Fatalf("decoded result failed to encode: %v", err)
		}
		var r2 query.Result
		if err := json.Unmarshal(enc1, &r2); err != nil {
			t.Fatalf("round-trip decode failed: %v\nencoded: %s", err, enc1)
		}
		enc2, err := json.Marshal(&r2)
		if err != nil {
			t.Fatal(err)
		}
		if string(enc1) != string(enc2) {
			t.Fatalf("result encoding not a fixpoint:\n was: %s\n now: %s", enc1, enc2)
		}
		if r1.Progress() < 0 || (r1.TotalRows > 0 && r1.Progress() > 1) {
			t.Fatalf("progress out of range: %v", r1.Progress())
		}
	})
}
