package query

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"idebench/internal/dataset"
)

func validQuery() *Query {
	return &Query{
		VizName: "viz_0",
		Table:   "flights",
		Bins: []Binning{
			{Field: "dep_delay", Kind: dataset.Quantitative, Width: 10},
		},
		Aggs: []Aggregate{{Func: Count}},
	}
}

func TestQueryValidate(t *testing.T) {
	if err := validQuery().Validate(); err != nil {
		t.Errorf("valid query rejected: %v", err)
	}

	cases := []struct {
		name string
		mut  func(*Query)
	}{
		{"no table", func(q *Query) { q.Table = "" }},
		{"no bins", func(q *Query) { q.Bins = nil }},
		{"three bins", func(q *Query) {
			q.Bins = append(q.Bins, q.Bins[0], q.Bins[0])
		}},
		{"zero width", func(q *Query) { q.Bins[0].Width = 0 }},
		{"binning without field", func(q *Query) { q.Bins[0].Field = "" }},
		{"no aggs", func(q *Query) { q.Aggs = nil }},
		{"bad agg func", func(q *Query) { q.Aggs = []Aggregate{{Func: "median"}} }},
		{"sum without field", func(q *Query) { q.Aggs = []Aggregate{{Func: Sum}} }},
		{"empty IN", func(q *Query) {
			q.Filter = Filter{Predicates: []Predicate{{Field: "x", Op: OpIn}}}
		}},
		{"inverted range", func(q *Query) {
			q.Filter = Filter{Predicates: []Predicate{{Field: "x", Op: OpRange, Lo: 5, Hi: 5}}}
		}},
		{"unknown op", func(q *Query) {
			q.Filter = Filter{Predicates: []Predicate{{Field: "x", Op: "like", Values: []string{"a"}}}}
		}},
		{"predicate without field", func(q *Query) {
			q.Filter = Filter{Predicates: []Predicate{{Op: OpIn, Values: []string{"a"}}}}
		}},
	}
	for _, c := range cases {
		q := validQuery()
		c.mut(q)
		if err := q.Validate(); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestAggFuncValid(t *testing.T) {
	for _, f := range []AggFunc{Count, Sum, Avg, Min, Max} {
		if !f.Valid() {
			t.Errorf("%s should be valid", f)
		}
	}
	if AggFunc("stddev").Valid() {
		t.Error("stddev should be invalid")
	}
}

func TestAggregateString(t *testing.T) {
	if got := (Aggregate{Func: Count}).String(); got != "COUNT(*)" {
		t.Errorf("COUNT(*) rendering: %q", got)
	}
	if got := (Aggregate{Func: Avg, Field: "dep_delay"}).String(); got != "AVG(dep_delay)" {
		t.Errorf("AVG rendering: %q", got)
	}
}

func TestBinIndex(t *testing.T) {
	b := Binning{Field: "x", Kind: dataset.Quantitative, Width: 10}
	cases := []struct {
		v    float64
		want int64
	}{
		{0, 0}, {9.99, 0}, {10, 1}, {-0.01, -1}, {-10, -1}, {-10.5, -2}, {25, 2},
	}
	for _, c := range cases {
		if got := b.BinIndex(c.v); got != c.want {
			t.Errorf("BinIndex(%v) = %d, want %d", c.v, got, c.want)
		}
	}
	// With origin.
	bo := Binning{Field: "x", Kind: dataset.Quantitative, Width: 5, Origin: 2}
	if got := bo.BinIndex(2); got != 0 {
		t.Errorf("BinIndex at origin = %d", got)
	}
	if got := bo.BinIndex(1.9); got != -1 {
		t.Errorf("BinIndex below origin = %d", got)
	}
	if bo.BinLow(0) != 2 || bo.BinLow(1) != 7 {
		t.Error("BinLow wrong")
	}
}

// Property: BinIndex and BinLow are consistent — every value falls in
// [BinLow(idx), BinLow(idx)+Width).
func TestBinIndexBinLowConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := Binning{
			Field:  "x",
			Kind:   dataset.Quantitative,
			Width:  0.5 + rng.Float64()*100,
			Origin: rng.NormFloat64() * 50,
		}
		for i := 0; i < 50; i++ {
			v := rng.NormFloat64() * 1000
			idx := b.BinIndex(v)
			lo := b.BinLow(idx)
			if v < lo-1e-9 || v >= lo+b.Width+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFilterAndImmutable(t *testing.T) {
	base := Filter{}
	f1 := base.And(Predicate{Field: "a", Op: OpIn, Values: []string{"x"}})
	f2 := f1.And(Predicate{Field: "b", Op: OpRange, Lo: 0, Hi: 1})
	if !base.IsEmpty() {
		t.Error("And mutated the receiver")
	}
	if len(f1.Predicates) != 1 || len(f2.Predicates) != 2 {
		t.Error("And chains incorrectly")
	}
}

func TestSignatureStability(t *testing.T) {
	q1 := validQuery()
	q1.Filter = Filter{Predicates: []Predicate{
		{Field: "a", Op: OpIn, Values: []string{"y", "x"}},
		{Field: "b", Op: OpRange, Lo: 1, Hi: 2},
	}}
	q2 := validQuery()
	q2.Filter = Filter{Predicates: []Predicate{
		{Field: "b", Op: OpRange, Lo: 1, Hi: 2},
		{Field: "a", Op: OpIn, Values: []string{"x", "y"}},
	}}
	if q1.Signature() != q2.Signature() {
		t.Error("signature should be order-insensitive for filters")
	}
	q3 := validQuery()
	q3.Bins[0].Width = 20
	if q3.Signature() == validQuery().Signature() {
		t.Error("different binning must change the signature")
	}
}

func TestQueryMetadataRendering(t *testing.T) {
	q := &Query{
		Table: "flights",
		Bins: []Binning{
			{Field: "a", Kind: dataset.Quantitative, Width: 1},
			{Field: "b", Kind: dataset.Nominal},
		},
		Aggs: []Aggregate{{Func: Count}, {Func: Avg, Field: "c"}},
	}
	if q.BinDims() != 2 {
		t.Error("BinDims wrong")
	}
	if q.BinningType() != "quantitative nominal" {
		t.Errorf("BinningType = %q", q.BinningType())
	}
	if q.AggType() != "count avg" {
		t.Errorf("AggType = %q", q.AggType())
	}
}

func TestSelectionPredicate(t *testing.T) {
	d := dataset.NewDict()
	d.Code("AA")
	d.Code("UA")
	nom := Binning{Field: "carrier", Kind: dataset.Nominal}
	p := SelectionPredicate(nom, 1, d)
	if p.Op != OpIn || len(p.Values) != 1 || p.Values[0] != "UA" {
		t.Errorf("nominal selection predicate wrong: %+v", p)
	}
	quant := Binning{Field: "delay", Kind: dataset.Quantitative, Width: 10, Origin: 0}
	p = SelectionPredicate(quant, 2, nil)
	if p.Op != OpRange || p.Lo != 20 || p.Hi != 30 {
		t.Errorf("quantitative selection predicate wrong: %+v", p)
	}
}

func TestResultBasics(t *testing.T) {
	r := NewResult()
	r.TotalRows = 100
	r.RowsSeen = 25
	if got := r.Progress(); got != 0.25 {
		t.Errorf("Progress = %v", got)
	}
	r.Complete = true
	if r.Progress() != 1 {
		t.Error("complete result should have progress 1")
	}
	empty := NewResult()
	if empty.Progress() != 0 {
		t.Error("empty result progress should be 0")
	}
	over := NewResult()
	over.TotalRows = 10
	over.RowsSeen = 20
	if over.Progress() != 1 {
		t.Error("progress should clamp at 1")
	}
}

func TestResultSortedKeysAndClone(t *testing.T) {
	r := NewResult()
	r.Bins[BinKey{A: 2}] = &BinValue{Values: []float64{1}, Margins: []float64{0}}
	r.Bins[BinKey{A: 1, B: 5}] = &BinValue{Values: []float64{2}, Margins: []float64{0.5}}
	r.Bins[BinKey{A: 1, B: 3}] = &BinValue{Values: []float64{3}, Margins: []float64{0}}
	keys := r.SortedKeys()
	want := []BinKey{{1, 3}, {1, 5}, {2, 0}}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("SortedKeys[%d] = %v, want %v", i, keys[i], want[i])
		}
	}

	c := r.Clone()
	c.Bins[BinKey{A: 2}].Values[0] = 99
	if v, _ := r.ValueAt(BinKey{A: 2}, 0); v == 99 {
		t.Error("Clone aliases the original")
	}
	if _, ok := r.ValueAt(BinKey{A: 42}, 0); ok {
		t.Error("ValueAt of missing bin should report !ok")
	}
	if _, ok := r.ValueAt(BinKey{A: 2}, 5); ok {
		t.Error("ValueAt of out-of-range agg should report !ok")
	}
}

func TestFiniteMargins(t *testing.T) {
	r := NewResult()
	r.Bins[BinKey{}] = &BinValue{Values: []float64{1}, Margins: []float64{0.1}}
	if !r.FiniteMargins() {
		t.Error("finite margins reported infinite")
	}
	r.Bins[BinKey{A: 1}] = &BinValue{Values: []float64{1}, Margins: []float64{math.Inf(1)}}
	if r.FiniteMargins() {
		t.Error("infinite margin not detected")
	}
}

func TestBinKeyLess(t *testing.T) {
	if !(BinKey{A: 1}).Less(BinKey{A: 2}) {
		t.Error("A ordering wrong")
	}
	if !(BinKey{A: 1, B: 1}).Less(BinKey{A: 1, B: 2}) {
		t.Error("B ordering wrong")
	}
	if (BinKey{A: 1, B: 2}).Less(BinKey{A: 1, B: 2}) {
		t.Error("equal keys should not be Less")
	}
}

func TestToSQL(t *testing.T) {
	q := &Query{
		VizName: "viz_3",
		Table:   "flights",
		Bins: []Binning{
			{Field: "dep_delay", Kind: dataset.Quantitative, Width: 10},
			{Field: "carrier", Kind: dataset.Nominal},
		},
		Aggs: []Aggregate{{Func: Count}, {Func: Avg, Field: "arr_delay"}},
		Filter: Filter{Predicates: []Predicate{
			{Field: "carrier", Op: OpIn, Values: []string{"AA"}},
			{Field: "distance", Op: OpRange, Lo: 100, Hi: 500},
		}},
	}
	sql := q.ToSQL()
	for _, want := range []string{
		"SELECT FLOOR(dep_delay/10) AS bin0, carrier AS bin1, COUNT(*), AVG(arr_delay)",
		"FROM flights",
		"WHERE carrier = 'AA' AND (distance >= 100 AND distance < 500)",
		"GROUP BY bin0, bin1",
	} {
		if !strings.Contains(sql, want) {
			t.Errorf("SQL missing %q:\n%s", want, sql)
		}
	}
}

func TestToSQLOriginAndMultiIn(t *testing.T) {
	q := validQuery()
	q.Bins[0].Origin = 5
	q.Filter = Filter{Predicates: []Predicate{
		{Field: "carrier", Op: OpIn, Values: []string{"AA", "O'Hare"}},
	}}
	sql := q.ToSQL()
	if !strings.Contains(sql, "FLOOR((dep_delay - 5)/10)") {
		t.Errorf("origin not rendered: %s", sql)
	}
	if !strings.Contains(sql, "carrier IN ('AA', 'O''Hare')") {
		t.Errorf("IN list / escaping wrong: %s", sql)
	}
}

func TestPredicateToSQLUnknownOp(t *testing.T) {
	p := Predicate{Field: "x", Op: "like"}
	if !strings.Contains(p.ToSQL(), "TRUE") {
		t.Error("unknown op should render safe TRUE")
	}
}

func TestFilterToSQLEmpty(t *testing.T) {
	if (Filter{}).ToSQL() != "" {
		t.Error("empty filter should render empty string")
	}
	q := validQuery()
	if strings.Contains(q.ToSQL(), "WHERE") {
		t.Error("unfiltered query should have no WHERE clause")
	}
}
