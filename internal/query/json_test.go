package query

import (
	"encoding/json"
	"math/rand"
	"testing"
	"testing/quick"

	"idebench/internal/dataset"
)

func TestResultJSONRoundTrip(t *testing.T) {
	r := NewResult()
	r.RowsSeen = 100
	r.TotalRows = 1000
	r.Bins[BinKey{A: 3, B: -1}] = &BinValue{Values: []float64{1.5, 2}, Margins: []float64{0.1, 0}}
	r.Bins[BinKey{A: 0}] = &BinValue{Values: []float64{7}, Margins: []float64{0}}

	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var got Result
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.RowsSeen != 100 || got.TotalRows != 1000 || got.Complete {
		t.Error("metadata lost")
	}
	if len(got.Bins) != 2 {
		t.Fatalf("bins = %d", len(got.Bins))
	}
	bv := got.Bins[BinKey{A: 3, B: -1}]
	if bv == nil || bv.Values[0] != 1.5 || bv.Margins[0] != 0.1 {
		t.Errorf("bin values mangled: %+v", bv)
	}
}

func TestResultJSONDeterministic(t *testing.T) {
	r := NewResult()
	for i := int64(0); i < 20; i++ {
		r.Bins[BinKey{A: i % 5, B: i}] = &BinValue{Values: []float64{float64(i)}, Margins: []float64{0}}
	}
	a, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("marshaling should be deterministic")
	}
}

func TestResultJSONRejectsRaggedMargins(t *testing.T) {
	in := `{"bins":[{"key":[0,0],"values":[1,2],"margins":[0]}],"rows_seen":1,"total_rows":1,"complete":true}`
	var r Result
	if err := json.Unmarshal([]byte(in), &r); err == nil {
		t.Error("ragged margins should be rejected")
	}
	if err := json.Unmarshal([]byte("not json"), &r); err == nil {
		t.Error("garbage should be rejected")
	}
}

// Property: any randomly built result survives a JSON round trip.
func TestResultJSONRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := NewResult()
		r.RowsSeen = rng.Int63n(1000)
		r.TotalRows = r.RowsSeen + rng.Int63n(1000)
		r.Complete = rng.Intn(2) == 0
		n := rng.Intn(30)
		for i := 0; i < n; i++ {
			k := BinKey{A: rng.Int63n(20) - 10, B: rng.Int63n(20) - 10}
			na := 1 + rng.Intn(3)
			bv := &BinValue{Values: make([]float64, na), Margins: make([]float64, na)}
			for j := range bv.Values {
				bv.Values[j] = rng.NormFloat64() * 100
				bv.Margins[j] = rng.Float64() * 10
			}
			r.Bins[k] = bv
		}
		data, err := json.Marshal(r)
		if err != nil {
			return false
		}
		var got Result
		if err := json.Unmarshal(data, &got); err != nil {
			return false
		}
		if len(got.Bins) != len(r.Bins) || got.RowsSeen != r.RowsSeen ||
			got.TotalRows != r.TotalRows || got.Complete != r.Complete {
			return false
		}
		for k, bv := range r.Bins {
			gv, ok := got.Bins[k]
			if !ok || len(gv.Values) != len(bv.Values) {
				return false
			}
			for j := range bv.Values {
				if gv.Values[j] != bv.Values[j] || gv.Margins[j] != bv.Margins[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestQueryJSONRoundTrip(t *testing.T) {
	q := &Query{
		VizName: "v",
		Table:   "flights",
		Bins: []Binning{
			{Field: "dep_delay", Kind: dataset.Quantitative, Width: 10, Origin: -60},
			{Field: "carrier", Kind: dataset.Nominal},
		},
		Aggs: []Aggregate{{Func: Avg, Field: "arr_delay"}},
		Filter: Filter{Predicates: []Predicate{
			{Field: "carrier", Op: OpIn, Values: []string{"AA"}},
		}},
	}
	data, err := json.Marshal(q)
	if err != nil {
		t.Fatal(err)
	}
	var got Query
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Signature() != q.Signature() {
		t.Error("query signature changed across JSON round trip")
	}
	if err := got.Validate(); err != nil {
		t.Errorf("decoded query invalid: %v", err)
	}
}
