package query

import (
	"math"
	"sort"
)

// BinKey identifies one bin of a (1D or 2D) binned aggregation. For nominal
// dimensions the component is the dictionary code; for quantitative
// dimensions it is the bin index. The second component is 0 for 1D queries.
type BinKey struct {
	A, B int64
}

// Less orders keys lexicographically, giving deterministic report output.
func (k BinKey) Less(o BinKey) bool {
	if k.A != o.A {
		return k.A < o.A
	}
	return k.B < o.B
}

// BinValue holds the aggregate outputs of one bin: one value (and one
// margin-of-error half-width) per aggregate in the query. A margin of 0
// means the value is exact; progressive/approximate engines report positive
// margins at the configured confidence level.
type BinValue struct {
	Values  []float64
	Margins []float64
}

// Result is what an engine hands back for a query: a set of bins, plus
// progress metadata. Blocking engines return Complete results only;
// progressive engines return any number of partial snapshots.
type Result struct {
	// Bins maps bin keys to aggregate values.
	Bins map[BinKey]*BinValue
	// RowsSeen is how many (fact-table) rows contributed.
	RowsSeen int64
	// TotalRows is the table size the query ran against.
	TotalRows int64
	// Complete reports whether the result is exact (all rows processed, or
	// an exact engine finished).
	Complete bool
	// Watermark is the data-version this result reflects, measured in fact
	// rows: the result was computed against the table as of its first
	// Watermark rows. Under live ingestion the driver's staleness metric is
	// the gap between the live row count at fetch time and this watermark.
	// Engines without ingestion leave it equal to TotalRows (0 on legacy
	// wire documents means unknown).
	Watermark int64
	// Coverage, when non-nil, reports which fraction of a partitioned
	// population this result covers. Single-node engines leave it nil
	// (implicitly full coverage); a scatter-gather coordinator attaches it
	// to every merged result so a degraded answer — some partitions
	// unreachable — is annotated rather than silently biased or withheld.
	Coverage *Coverage
}

// Coverage quantifies how much of a partitioned population contributed to a
// merged result. It extends the paper's progressive-answer contract from
// "sample coverage" (RowsSeen/TotalRows with margins) to "shard coverage":
// under partial failure the tier serves the merged answer of the reachable
// partitions, flagged with exactly what it covers, instead of an outage.
type Coverage struct {
	// PartitionsAnswered is how many hash partitions contributed a
	// fragment to the merge.
	PartitionsAnswered int
	// PartitionsTotal is the partition count of the tier.
	PartitionsTotal int
	// PopulationFraction is the fraction of the global fact-row population
	// owned by the answering partitions, in [0,1]. This is the honest
	// scale of the answer: values estimate the full population only when
	// it is 1.
	PopulationFraction float64
	// Degraded is true when at least one partition is missing from the
	// merge (PartitionsAnswered < PartitionsTotal).
	Degraded bool
}

// Full reports whether the coverage describes a complete merge. A nil
// Coverage is also full by convention.
func (c *Coverage) Full() bool {
	return c == nil || (!c.Degraded && c.PartitionsAnswered == c.PartitionsTotal)
}

// Clone copies the coverage block; nil-safe.
func (c *Coverage) Clone() *Coverage {
	if c == nil {
		return nil
	}
	cp := *c
	return &cp
}

// NewResult allocates an empty result.
func NewResult() *Result {
	return &Result{Bins: make(map[BinKey]*BinValue)}
}

// Progress returns the fraction of rows processed, in [0,1].
func (r *Result) Progress() float64 {
	if r.Complete {
		return 1
	}
	if r.TotalRows == 0 {
		return 0
	}
	p := float64(r.RowsSeen) / float64(r.TotalRows)
	if p > 1 {
		p = 1
	}
	return p
}

// SortedKeys returns the bin keys in deterministic order.
func (r *Result) SortedKeys() []BinKey {
	keys := make([]BinKey, 0, len(r.Bins))
	for k := range r.Bins {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].Less(keys[j]) })
	return keys
}

// Clone deep-copies the result so engines can keep mutating their internal
// state after handing a snapshot to the driver.
func (r *Result) Clone() *Result {
	out := &Result{
		Bins:      make(map[BinKey]*BinValue, len(r.Bins)),
		RowsSeen:  r.RowsSeen,
		TotalRows: r.TotalRows,
		Complete:  r.Complete,
		Watermark: r.Watermark,
		Coverage:  r.Coverage.Clone(),
	}
	for k, v := range r.Bins {
		nv := &BinValue{
			Values:  append([]float64(nil), v.Values...),
			Margins: append([]float64(nil), v.Margins...),
		}
		out.Bins[k] = nv
	}
	return out
}

// ValueAt returns aggregate agg of bin k and whether the bin exists.
func (r *Result) ValueAt(k BinKey, agg int) (float64, bool) {
	bv, ok := r.Bins[k]
	if !ok || agg >= len(bv.Values) {
		return 0, false
	}
	return bv.Values[agg], true
}

// FiniteMargins reports whether every margin in the result is finite; used
// by tests to assert approximate engines always deliver usable intervals.
func (r *Result) FiniteMargins() bool {
	for _, bv := range r.Bins {
		for _, m := range bv.Margins {
			if math.IsInf(m, 0) || math.IsNaN(m) {
				return false
			}
		}
	}
	return true
}
