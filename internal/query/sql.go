package query

import (
	"fmt"
	"strings"

	"idebench/internal/dataset"
)

// ToSQL renders the query as the SQL the benchmark driver would send to a
// SQL system adapter (paper Fig. 4). Quantitative binnings render as
// FLOOR((field - origin)/width) expressions; nominal binnings group by the
// raw column. The output is for adapters and reports; the in-process engines
// execute the structured Query directly.
func (q *Query) ToSQL() string {
	var sel, group []string
	for i, b := range q.Bins {
		alias := fmt.Sprintf("bin%d", i)
		var expr string
		if b.Kind == dataset.Quantitative {
			if b.Origin != 0 {
				expr = fmt.Sprintf("FLOOR((%s - %s)/%s)", b.Field, trimFloat(b.Origin), trimFloat(b.Width))
			} else {
				expr = fmt.Sprintf("FLOOR(%s/%s)", b.Field, trimFloat(b.Width))
			}
		} else {
			expr = b.Field
		}
		sel = append(sel, fmt.Sprintf("%s AS %s", expr, alias))
		group = append(group, alias)
	}
	for _, a := range q.Aggs {
		sel = append(sel, a.String())
	}

	var sb strings.Builder
	sb.WriteString("SELECT ")
	sb.WriteString(strings.Join(sel, ", "))
	sb.WriteString(" FROM ")
	sb.WriteString(q.Table)
	if where := q.Filter.ToSQL(); where != "" {
		sb.WriteString(" WHERE ")
		sb.WriteString(where)
	}
	sb.WriteString(" GROUP BY ")
	sb.WriteString(strings.Join(group, ", "))
	return sb.String()
}

// ToSQL renders the filter as a SQL WHERE clause body ("" when empty).
func (f Filter) ToSQL() string {
	if f.IsEmpty() {
		return ""
	}
	parts := make([]string, len(f.Predicates))
	for i, p := range f.Predicates {
		parts[i] = p.ToSQL()
	}
	return strings.Join(parts, " AND ")
}

// ToSQL renders one predicate.
func (p Predicate) ToSQL() string {
	switch p.Op {
	case OpIn:
		if len(p.Values) == 1 {
			return fmt.Sprintf("%s = '%s'", p.Field, escapeSQL(p.Values[0]))
		}
		quoted := make([]string, len(p.Values))
		for i, v := range p.Values {
			quoted[i] = "'" + escapeSQL(v) + "'"
		}
		return fmt.Sprintf("%s IN (%s)", p.Field, strings.Join(quoted, ", "))
	case OpRange:
		return fmt.Sprintf("(%s >= %s AND %s < %s)", p.Field, trimFloat(p.Lo), p.Field, trimFloat(p.Hi))
	default:
		return fmt.Sprintf("/* unknown op %q */ TRUE", string(p.Op))
	}
}

func escapeSQL(s string) string { return strings.ReplaceAll(s, "'", "''") }

func trimFloat(v float64) string {
	s := fmt.Sprintf("%g", v)
	return s
}
