package enginetest

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"idebench/internal/dataset"
	"idebench/internal/engine"
	"idebench/internal/query"
)

// MultiUserScenario is the conformance case for the session layer: several
// concurrent simulated users on one prepared engine, each on its own
// session with its own viz namespace. Every user issues concurrent query
// batches, links its own visualizations (feeding per-session speculation
// where the engine has it), re-issues a query (the per-session reuse path)
// and deletes a viz name that every other session also uses — none of which
// may disturb any other user's results. All sessions' final results must
// match independent single-query scans, which pins down that whatever the
// engine shares between sessions (scan cursors, worker pools, sample
// tables) is invisible in the answers. Run it under -race: the schedule
// interleaving of sessions is the point.
func MultiUserScenario(t *testing.T, factory func() engine.Engine, exactWhenComplete bool) {
	t.Helper()
	e := factory()
	if err := e.Prepare(multiUserDB(), engine.Options{}); err != nil {
		t.Fatal(err)
	}
	const users = 4
	errCh := make(chan error, users*16)
	var wg sync.WaitGroup
	for u := 0; u < users; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			if err := runUser(e, u, exactWhenComplete); err != nil {
				errCh <- fmt.Errorf("user %d: %w", u, err)
			}
		}(u)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

// runUser is one simulated user's session script.
func runUser(e engine.Engine, u int, exact bool) error {
	sess := e.OpenSession()
	defer sess.Close()
	sess.WorkflowStart()
	defer sess.WorkflowEnd()

	// Rotate the shared shape pool per user: sessions overlap on some query
	// signatures (exercising any cross-session sharing the engine does) but
	// not all.
	shapes := MultiVizQueries(6)
	mine := make([]*query.Query, 3)
	for i := range mine {
		q := shapes[(u+i)%len(shapes)]
		mine[i] = q
		// Per-user viz namespace, plus one viz name deliberately shared by
		// every session.
		if i == 1 {
			q.VizName = "shared"
		} else {
			q.VizName = fmt.Sprintf("u%d_viz%d", u, i)
		}
	}

	check := func(qs []*query.Query) error {
		handles := make([]engine.Handle, len(qs))
		for i, q := range qs {
			h, err := sess.StartQuery(q)
			if err != nil {
				return fmt.Errorf("start %s: %w", q.VizName, err)
			}
			handles[i] = h
		}
		for i, h := range handles {
			select {
			case <-h.Done():
			case <-time.After(30 * time.Second):
				return fmt.Errorf("%s did not complete", qs[i].VizName)
			}
			res := h.Snapshot()
			if res == nil {
				return fmt.Errorf("%s returned no result", qs[i].VizName)
			}
			gt, err := exactRef(qs[i])
			if err != nil {
				return err
			}
			if exact {
				// Shared-scan fold order may shift float sums in the last
				// bits, nothing more.
				if err := ResultsEqual(gt, res, 1e-9); err != nil {
					return fmt.Errorf("%s diverged: %w", qs[i].VizName, err)
				}
			} else if err := looselyEqual(gt, res, qs[i]); err != nil {
				// A sampling engine answers from a fixed sample: individual
				// bins are noisy by design, so the contract under
				// concurrency is the same one Conformance holds it to —
				// summable aggregates hit the right total and nothing
				// impossible is reported.
				return fmt.Errorf("%s diverged: %w", qs[i].VizName, err)
			}
		}
		return nil
	}

	// Round 1: the user's dashboard fans out concurrently.
	if err := check(mine); err != nil {
		return err
	}
	// The user links two of its vizs (per-session speculation rides on this
	// where supported) and discards the shared-named viz — which must only
	// affect this session's namespace.
	sess.LinkVizs(mine[0].VizName, mine[1].VizName)
	sess.DeleteViz("shared")
	// Round 2: re-issue one query (per-session reuse) plus, on exact
	// engines, a fresh drill-down; answers must still match independent
	// scans. Sampling engines skip the drill-down's per-bin comparison —
	// a single-carrier filter leaves strata too sparse for the blanket 20%
	// tolerance to be a meaningful contract.
	round2 := []*query.Query{mine[0]}
	if exact {
		drill := *mine[0]
		drill.VizName = fmt.Sprintf("u%d_drill", u)
		drill.Filter = mine[0].Filter.And(query.Predicate{
			Field: "carrier", Op: query.OpIn, Values: []string{Carriers[u%len(Carriers)]},
		})
		round2 = append(round2, &drill)
	}
	return check(round2)
}

// looselyEqual is the sampling-engine contract: delivered bins exist in a
// sane quantity, margins are finite, and for summable aggregates (COUNT,
// SUM) the scaled total lands within 15% of the exact total.
func looselyEqual(gt, res *query.Result, q *query.Query) error {
	if len(res.Bins) == 0 && len(gt.Bins) > 0 {
		return fmt.Errorf("no bins delivered (ground truth has %d)", len(gt.Bins))
	}
	if !res.FiniteMargins() {
		return fmt.Errorf("non-finite margins delivered")
	}
	for ai, agg := range q.Aggs {
		if agg.Func != query.Count && agg.Func != query.Sum {
			continue
		}
		var gtTotal, resTotal float64
		for _, bv := range gt.Bins {
			gtTotal += bv.Values[ai]
		}
		for _, bv := range res.Bins {
			resTotal += bv.Values[ai]
		}
		if gtTotal == 0 {
			continue
		}
		if diff := (resTotal - gtTotal) / gtTotal; diff < -0.15 || diff > 0.15 {
			return fmt.Errorf("agg %d total %v, want within 15%% of %v", ai, resTotal, gtTotal)
		}
	}
	return nil
}

// The scenario database is built lazily, once per test binary, and shared
// between engine preparation and reference evaluation: engines never mutate
// their input database, and test binaries that never run the scenario
// should not pay for a 60k-row build at package init.
var (
	refOnce  sync.Once
	refDB    *dataset.Database
	refMu    sync.Mutex
	refCache = map[string]*query.Result{}
)

func multiUserDB() *dataset.Database {
	refOnce.Do(func() { refDB = SmallDB(60000, 99) })
	return refDB
}

// exactRef returns the independent-scan reference for q, cached by
// signature: with four sessions issuing overlapping signatures the scenario
// would otherwise spend most of its budget recomputing ground truth.
func exactRef(q *query.Query) (*query.Result, error) {
	db := multiUserDB()
	refMu.Lock()
	defer refMu.Unlock()
	sig := q.Signature()
	if res, ok := refCache[sig]; ok {
		return res, nil
	}
	res, err := Exact(db, q)
	if err != nil {
		return nil, err
	}
	refCache[sig] = res
	return res, nil
}
