package enginetest

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"idebench/internal/engine"
	"idebench/internal/ingest"
	"idebench/internal/query"
)

// IngestScenario is the conformance case for the live-ingestion capability:
// concurrent user sessions keep querying while an ingester applies
// append-only batches through the harness, and after quiesce fresh queries
// must agree with ground truth over the final table — bitwise for COUNT
// aggregates (integers carry no fold-order slack), within float tolerance
// for value aggregates on exact engines, and by the sampling contract
// otherwise. Mid-ingest results are checked against the truth of the data
// version their watermark names, which is the whole point of watermarks:
// a result is never wrong, only possibly stale. Run it under -race — the
// interleaving of appends, dictionary interning and scans is the scenario.
func IngestScenario(t *testing.T, factory func() engine.Engine, exactWhenComplete bool) {
	t.Helper()
	db := SmallDB(40000, 123)
	e := factory()
	if err := e.Prepare(db, engine.Options{}); err != nil {
		t.Fatal(err)
	}
	app := engine.CapabilitiesOf(e).Appender
	if app == nil {
		t.Fatalf("engine %s does not implement engine.Appender", e.Name())
	}
	if w := app.Watermark(); w != int64(db.NumRows()) {
		t.Fatalf("prepared watermark %d, want %d", w, db.NumRows())
	}

	// Batches come from a donor table with the same schema but fresh value
	// draws (including carrier/state mixes that shift the distribution).
	donor := SmallDB(12000, 321)
	const batches = 6
	const batchRows = 1500
	var stream []*ingest.Batch
	for i := 0; i < batches; i++ {
		stream = append(stream, ingest.FromTable(donor.Fact, i*batchRows, (i+1)*batchRows))
	}
	h := ingest.NewHarness(db, ingest.NewFixedSource(stream...), ingest.EngineSink{A: app})

	const users = 3
	errCh := make(chan error, users*8+batches)
	var wg sync.WaitGroup
	for u := 0; u < users; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			if err := ingestUser(e, h, u, exactWhenComplete); err != nil {
				errCh <- fmt.Errorf("user %d: %w", u, err)
			}
		}(u)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < batches; i++ {
			if _, err := h.Ingest(batchRows); err != nil {
				errCh <- fmt.Errorf("ingest batch %d: %w", i, err)
				return
			}
			time.Sleep(time.Millisecond) // let queries interleave with appends
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if t.Failed() {
		return
	}

	// Quiesce: every batch applied, every session drained. The engine's
	// watermark must have caught up, and fresh queries must answer for the
	// final table.
	want := int64(db.NumRows() + batches*batchRows)
	if w := app.Watermark(); w != want {
		t.Fatalf("post-quiesce watermark %d, want %d", w, want)
	}
	sess := e.OpenSession()
	defer sess.Close()
	sess.WorkflowStart()
	defer sess.WorkflowEnd()

	countQ := CountByCarrier()
	countQ.VizName = "quiesce_count"
	gt, err := h.TruthAt(countQ, want)
	if err != nil {
		t.Fatal(err)
	}
	hdl, err := sess.StartQuery(countQ)
	if err != nil {
		t.Fatal(err)
	}
	res := WaitResult(t, hdl, 30*time.Second)
	if res == nil {
		t.Fatal("no result after quiesce")
	}
	if res.Watermark != want {
		t.Fatalf("quiesced result watermark %d, want %d", res.Watermark, want)
	}
	if exactWhenComplete {
		// Bitwise: COUNT bins are integers; any double-fold or lost row of
		// the ingested tail shows up as an exact mismatch.
		if len(res.Bins) != len(gt.Bins) {
			t.Fatalf("quiesced count has %d bins, want %d", len(res.Bins), len(gt.Bins))
		}
		for k, wv := range gt.Bins {
			gv, ok := res.Bins[k]
			if !ok || gv.Values[0] != wv.Values[0] {
				t.Fatalf("quiesced count bin %v: got %v, want exactly %v", k, gv, wv.Values[0])
			}
		}
	} else if err := looselyEqual(gt, res, countQ); err != nil {
		t.Fatalf("quiesced count diverged: %v", err)
	}

	avgQ := AvgDelayByDistance()
	avgQ.VizName = "quiesce_avg"
	gtAvg, err := h.TruthAt(avgQ, want)
	if err != nil {
		t.Fatal(err)
	}
	hdl2, err := sess.StartQuery(avgQ)
	if err != nil {
		t.Fatal(err)
	}
	res2 := WaitResult(t, hdl2, 30*time.Second)
	if res2 == nil {
		t.Fatal("no avg result after quiesce")
	}
	if exactWhenComplete {
		if err := ResultsEqual(gtAvg, res2, 1e-9); err != nil {
			t.Fatalf("quiesced avg diverged: %v", err)
		}
	}
}

// ingestUser is one session's script while batches land: issue concurrent
// rounds of dashboard queries, verify each against the truth of the data
// version its watermark names.
func ingestUser(e engine.Engine, h *ingest.Harness, u int, exact bool) error {
	sess := e.OpenSession()
	defer sess.Close()
	sess.WorkflowStart()
	defer sess.WorkflowEnd()

	shapes := MultiVizQueries(6)
	for round := 0; round < 4; round++ {
		qs := make([]*query.Query, 2)
		for i := range qs {
			q := shapes[(u+round+i)%len(shapes)]
			qc := *q
			qc.VizName = fmt.Sprintf("u%d_r%d_%d", u, round, i)
			qs[i] = &qc
		}
		handles := make([]engine.Handle, len(qs))
		for i, q := range qs {
			hdl, err := sess.StartQuery(q)
			if err != nil {
				return fmt.Errorf("start %s: %w", q.VizName, err)
			}
			handles[i] = hdl
		}
		for i, hdl := range handles {
			select {
			case <-hdl.Done():
			case <-time.After(30 * time.Second):
				return fmt.Errorf("%s did not complete", qs[i].VizName)
			}
			res := hdl.Snapshot()
			if res == nil {
				return fmt.Errorf("%s returned no result", qs[i].VizName)
			}
			if res.Watermark <= 0 {
				return fmt.Errorf("%s delivered without a watermark", qs[i].VizName)
			}
			if live := h.Watermark(); res.Watermark > live {
				return fmt.Errorf("%s watermark %d ahead of live %d", qs[i].VizName, res.Watermark, live)
			}
			gt, err := h.TruthAt(qs[i], res.Watermark)
			if err != nil {
				return err
			}
			switch {
			case exact && res.Complete:
				if err := ResultsEqual(gt, res, 1e-9); err != nil {
					return fmt.Errorf("%s diverged from its version's truth: %w", qs[i].VizName, err)
				}
			case exact:
				// Done fired for an earlier version and an append extended
				// the state before the snapshot: the result is a mid-
				// absorption estimate. Sanity only — the quiesce check is
				// the exactness gate.
				if res.RowsSeen > res.TotalRows {
					return fmt.Errorf("%s: rows seen %d beyond population %d", qs[i].VizName, res.RowsSeen, res.TotalRows)
				}
				if !res.FiniteMargins() {
					return fmt.Errorf("%s: non-finite margins mid-absorption", qs[i].VizName)
				}
			default:
				if err := looselyEqual(gt, res, qs[i]); err != nil {
					return fmt.Errorf("%s diverged: %w", qs[i].VizName, err)
				}
			}
		}
		time.Sleep(500 * time.Microsecond)
	}
	return nil
}
