// Package enginetest provides shared fixtures and a conformance suite for
// engine implementations: a deterministic miniature flights database, exact
// reference evaluation, and behavioural checks every engine must pass
// (correct totals at completion, cancellation, error paths).
package enginetest

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"idebench/internal/dataset"
	"idebench/internal/engine"
	"idebench/internal/query"
)

// Carriers used by the fixture, in dictionary-code order.
var Carriers = []string{"AA", "UA", "DL", "WN", "B6"}

// States used by the fixture.
var States = []string{"CA", "TX", "NY", "FL", "IL", "MA"}

// SmallDB builds a deterministic de-normalized flights-like database with n
// rows. Distributions are fixed by seed so tests can rely on exact values.
func SmallDB(n int, seed int64) *dataset.Database {
	schema := dataset.MustSchema([]dataset.Field{
		{Name: "carrier", Kind: dataset.Nominal},
		{Name: "origin_state", Kind: dataset.Nominal},
		{Name: "dep_delay", Kind: dataset.Quantitative},
		{Name: "arr_delay", Kind: dataset.Quantitative},
		{Name: "distance", Kind: dataset.Quantitative},
	})
	rng := rand.New(rand.NewSource(seed))
	b := dataset.NewBuilder("flights", schema, n)
	for i := 0; i < n; i++ {
		b.AppendString(0, Carriers[rng.Intn(len(Carriers))])
		b.AppendString(1, States[rng.Intn(len(States))])
		dep := rng.NormFloat64()*20 + 5
		b.AppendNum(2, dep)
		b.AppendNum(3, dep+rng.NormFloat64()*10)
		b.AppendNum(4, 100+rng.Float64()*2400)
	}
	fact, err := b.Build()
	if err != nil {
		panic(err)
	}
	return &dataset.Database{Fact: fact}
}

// NormalizedDB builds a star-schema variant: the fact table keeps the
// quantitative columns plus FK columns into a carrier dimension (carrier,
// carrier_region) and a state dimension (origin_state).
func NormalizedDB(n int, seed int64) *dataset.Database {
	factSchema := dataset.MustSchema([]dataset.Field{
		{Name: "carrier_fk", Kind: dataset.Quantitative},
		{Name: "state_fk", Kind: dataset.Quantitative},
		{Name: "dep_delay", Kind: dataset.Quantitative},
		{Name: "arr_delay", Kind: dataset.Quantitative},
		{Name: "distance", Kind: dataset.Quantitative},
	})
	rng := rand.New(rand.NewSource(seed))
	fb := dataset.NewBuilder("flights", factSchema, n)
	for i := 0; i < n; i++ {
		fb.AppendNum(0, float64(rng.Intn(len(Carriers))))
		fb.AppendNum(1, float64(rng.Intn(len(States))))
		dep := rng.NormFloat64()*20 + 5
		fb.AppendNum(2, dep)
		fb.AppendNum(3, dep+rng.NormFloat64()*10)
		fb.AppendNum(4, 100+rng.Float64()*2400)
	}
	fact, err := fb.Build()
	if err != nil {
		panic(err)
	}

	carrierSchema := dataset.MustSchema([]dataset.Field{
		{Name: "carrier", Kind: dataset.Nominal},
		{Name: "carrier_region", Kind: dataset.Nominal},
	})
	cb := dataset.NewBuilder("carriers", carrierSchema, len(Carriers))
	for i, c := range Carriers {
		cb.AppendString(0, c)
		if i%2 == 0 {
			cb.AppendString(1, "legacy")
		} else {
			cb.AppendString(1, "lowcost")
		}
	}
	carriers, err := cb.Build()
	if err != nil {
		panic(err)
	}

	stateSchema := dataset.MustSchema([]dataset.Field{
		{Name: "origin_state", Kind: dataset.Nominal},
	})
	sb := dataset.NewBuilder("states", stateSchema, len(States))
	for _, s := range States {
		sb.AppendString(0, s)
	}
	statesTbl, err := sb.Build()
	if err != nil {
		panic(err)
	}

	return &dataset.Database{
		Fact: fact,
		Dimensions: []*dataset.Dimension{
			{Table: carriers, FKColumn: "carrier_fk"},
			{Table: statesTbl, FKColumn: "state_fk"},
		},
	}
}

// CountByCarrier is the canonical 1D nominal COUNT query.
func CountByCarrier() *query.Query {
	return &query.Query{
		VizName: "viz_carrier",
		Table:   "flights",
		Bins:    []query.Binning{{Field: "carrier", Kind: dataset.Nominal}},
		Aggs:    []query.Aggregate{{Func: query.Count}},
	}
}

// AvgDelayByDistance is the canonical 1D quantitative AVG query.
func AvgDelayByDistance() *query.Query {
	return &query.Query{
		VizName: "viz_dist",
		Table:   "flights",
		Bins:    []query.Binning{{Field: "distance", Kind: dataset.Quantitative, Width: 500}},
		Aggs:    []query.Aggregate{{Func: query.Avg, Field: "arr_delay"}},
	}
}

// Exact computes ground truth for q against db via a direct scan.
func Exact(db *dataset.Database, q *query.Query) (*query.Result, error) {
	plan, err := engine.Compile(db, q)
	if err != nil {
		return nil, err
	}
	gs := engine.NewGroupState(plan)
	gs.ScanRange(0, plan.NumRows)
	return gs.SnapshotExact(), nil
}

// WaitResult waits for the handle to complete (with timeout) and returns
// its snapshot.
func WaitResult(t *testing.T, h engine.Handle, timeout time.Duration) *query.Result {
	t.Helper()
	select {
	case <-h.Done():
	case <-time.After(timeout):
		t.Fatal("query did not complete in time")
	}
	return h.Snapshot()
}

// ResultsEqual compares two results bin-by-bin within tolerance.
func ResultsEqual(a, b *query.Result, tol float64) error {
	if len(a.Bins) != len(b.Bins) {
		return fmt.Errorf("bin counts differ: %d vs %d", len(a.Bins), len(b.Bins))
	}
	for k, av := range a.Bins {
		bv, ok := b.Bins[k]
		if !ok {
			return fmt.Errorf("bin %v missing", k)
		}
		for i := range av.Values {
			if math.Abs(av.Values[i]-bv.Values[i]) > tol*(1+math.Abs(av.Values[i])) {
				return fmt.Errorf("bin %v agg %d: %v vs %v", k, i, av.Values[i], bv.Values[i])
			}
		}
	}
	return nil
}

// MultiVizQueries returns n concurrent dashboard-shaped queries against the
// SmallDB schema: distinct shapes (counts, averages, filtered variants) plus
// deliberate signature duplicates under different viz names, the mix a
// linked-visualization interaction re-issues at once.
func MultiVizQueries(n int) []*query.Query {
	shapes := []func() *query.Query{
		CountByCarrier,
		AvgDelayByDistance,
		func() *query.Query {
			q := CountByCarrier()
			q.Filter = query.Filter{Predicates: []query.Predicate{
				{Field: "origin_state", Op: query.OpIn, Values: []string{"CA"}},
			}}
			return q
		},
		func() *query.Query {
			return &query.Query{
				Table: "flights",
				Bins:  []query.Binning{{Field: "origin_state", Kind: dataset.Nominal}},
				Aggs:  []query.Aggregate{{Func: query.Sum, Field: "distance"}},
			}
		},
		func() *query.Query {
			q := AvgDelayByDistance()
			q.Filter = query.Filter{Predicates: []query.Predicate{
				{Field: "dep_delay", Op: query.OpRange, Lo: -10, Hi: 40},
			}}
			return q
		},
		func() *query.Query {
			return &query.Query{
				Table: "flights",
				Bins: []query.Binning{
					{Field: "carrier", Kind: dataset.Nominal},
					{Field: "origin_state", Kind: dataset.Nominal},
				},
				Aggs: []query.Aggregate{{Func: query.Count}},
			}
		},
	}
	out := make([]*query.Query, n)
	for i := range out {
		q := shapes[i%len(shapes)]()
		q.VizName = fmt.Sprintf("viz_%d", i)
		out[i] = q
	}
	return out
}

// ConcurrentMultiViz asserts that queries executed concurrently on one
// engine produce the same results as independent per-query scans (the exact
// ground-truth evaluation): the contract a shared-scan scheduler must keep
// while folding one cursor through many consumer states. Mid-flight partial
// snapshots, when the engine exposes them, must be internally consistent —
// finite margins and monotone progress. exactWhenComplete mirrors
// Conformance: engines answering from samples get a 20% tolerance.
func ConcurrentMultiViz(t *testing.T, factory func() engine.Engine, exactWhenComplete bool) {
	t.Helper()
	db := SmallDB(150000, 77)
	e := factory()
	if err := e.Prepare(db, engine.Options{}); err != nil {
		t.Fatal(err)
	}
	e.WorkflowStart()
	defer e.WorkflowEnd()

	queries := MultiVizQueries(8)
	handles := make([]engine.Handle, len(queries))
	for i, q := range queries {
		h, err := e.StartQuery(q)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		handles[i] = h
	}

	// Poll while in flight: partial snapshots must never report impossible
	// state (rows beyond the table, backwards progress, infinite margins).
	lastSeen := make([]int64, len(handles))
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		inFlight := false
		for i, h := range handles {
			select {
			case <-h.Done():
				continue
			default:
				inFlight = true
			}
			snap := h.Snapshot()
			if snap == nil || snap.RowsSeen == 0 {
				continue
			}
			if snap.RowsSeen > snap.TotalRows {
				t.Fatalf("query %d: RowsSeen %d > TotalRows %d", i, snap.RowsSeen, snap.TotalRows)
			}
			if snap.RowsSeen < lastSeen[i] {
				t.Fatalf("query %d: progress went backwards (%d -> %d)", i, lastSeen[i], snap.RowsSeen)
			}
			lastSeen[i] = snap.RowsSeen
			if !snap.Complete && !snap.FiniteMargins() {
				t.Fatalf("query %d: partial snapshot without finite margins", i)
			}
		}
		if !inFlight {
			break
		}
		// Yield between polls: a hot spin would steal the core from the very
		// scan workers this loop is waiting on (single-CPU CI).
		time.Sleep(time.Millisecond)
	}

	tol := 1e-9 // shared-scan fold order may shift float sums in the last bits
	if !exactWhenComplete {
		tol = 0.2
	}
	for i, h := range handles {
		res := WaitResult(t, h, 30*time.Second)
		if res == nil {
			t.Fatalf("query %d returned no result", i)
		}
		gt, err := Exact(db, queries[i])
		if err != nil {
			t.Fatal(err)
		}
		if err := ResultsEqual(gt, res, tol); err != nil {
			t.Errorf("query %d (%s) diverged from independent scan: %v", i, queries[i].Signature(), err)
		}
	}
}

// CapabilitiesAgree asserts engine.CapabilitiesOf resolves exactly the set
// of optional interfaces a direct type assertion finds on e — and that each
// resolved capability IS e (the same value, not a wrapper). The one-pass
// capability API is only a consolidation if it can never disagree with the
// assertions it replaced.
func CapabilitiesAgree(t *testing.T, e engine.Engine) {
	t.Helper()
	caps := engine.CapabilitiesOf(e)
	_, hasAppender := e.(engine.Appender)
	_, hasWatermarker := e.(engine.Watermarker)
	_, hasShedder := e.(engine.Shedder)
	_, hasScanObserver := e.(engine.ScanObserver)
	_, hasViewSnapshotter := e.(engine.ViewSnapshotter)
	_, hasReorderedPreparer := e.(engine.ReorderedPreparer)
	_, hasShardObserver := e.(engine.ShardObserver)
	_, hasTopologyObserver := e.(engine.TopologyObserver)
	_, hasPartialSnapshotter := e.(engine.PartialSnapshotter)
	checks := []struct {
		name     string
		resolved any
		present  bool
		direct   bool
	}{
		{"Appender", caps.Appender, caps.Appender != nil, hasAppender},
		{"Watermarker", caps.Watermarker, caps.Watermarker != nil, hasWatermarker},
		{"Shedder", caps.Shedder, caps.Shedder != nil, hasShedder},
		{"ScanObserver", caps.ScanObserver, caps.ScanObserver != nil, hasScanObserver},
		{"ViewSnapshotter", caps.ViewSnapshotter, caps.ViewSnapshotter != nil, hasViewSnapshotter},
		{"ReorderedPreparer", caps.ReorderedPreparer, caps.ReorderedPreparer != nil, hasReorderedPreparer},
		{"ShardObserver", caps.ShardObserver, caps.ShardObserver != nil, hasShardObserver},
		{"TopologyObserver", caps.TopologyObserver, caps.TopologyObserver != nil, hasTopologyObserver},
		{"PartialSnapshotter", caps.PartialSnapshotter, caps.PartialSnapshotter != nil, hasPartialSnapshotter},
	}
	for _, c := range checks {
		if c.present != c.direct {
			t.Errorf("%s: capability %s: CapabilitiesOf resolved %v, direct type assertion says %v",
				e.Name(), c.name, c.present, c.direct)
		}
		if c.present && c.resolved != any(e) {
			t.Errorf("%s: capability %s resolved to a different value than the engine itself", e.Name(), c.name)
		}
	}
	if hasAppender && !hasWatermarker {
		t.Errorf("%s: implements Appender but not Watermarker — Appender embeds Watermarker, so this cannot happen", e.Name())
	}
}

// Conformance runs the behavioural suite every engine must pass on a
// de-normalized database.
func Conformance(t *testing.T, factory func() engine.Engine, exactWhenComplete bool) {
	t.Helper()
	db := SmallDB(20000, 42)

	t.Run("StartBeforePrepare", func(t *testing.T) {
		e := factory()
		if _, err := e.StartQuery(CountByCarrier()); err == nil {
			t.Error("StartQuery before Prepare should fail")
		}
	})

	t.Run("UnknownTable", func(t *testing.T) {
		e := factory()
		if err := e.Prepare(db, engine.Options{}); err != nil {
			t.Fatal(err)
		}
		q := CountByCarrier()
		q.Table = "nope"
		if _, err := e.StartQuery(q); err == nil {
			t.Error("unknown table should fail")
		}
	})

	t.Run("InvalidQuery", func(t *testing.T) {
		e := factory()
		if err := e.Prepare(db, engine.Options{}); err != nil {
			t.Fatal(err)
		}
		q := CountByCarrier()
		q.Aggs = nil
		if _, err := e.StartQuery(q); err == nil {
			t.Error("invalid query should fail")
		}
	})

	t.Run("CompleteCount", func(t *testing.T) {
		e := factory()
		if err := e.Prepare(db, engine.Options{}); err != nil {
			t.Fatal(err)
		}
		e.WorkflowStart()
		defer e.WorkflowEnd()
		h, err := e.StartQuery(CountByCarrier())
		if err != nil {
			t.Fatal(err)
		}
		res := WaitResult(t, h, 30*time.Second)
		if res == nil {
			t.Fatal("no result after completion")
		}
		gt, err := Exact(db, CountByCarrier())
		if err != nil {
			t.Fatal(err)
		}
		tol := 0.0
		if !exactWhenComplete {
			tol = 0.2 // sampling engines: within 20% per carrier
		}
		if err := ResultsEqual(gt, res, tol); err != nil {
			t.Errorf("result mismatch: %v", err)
		}
		// Total count across bins must approximate the table size.
		var total float64
		for _, bv := range res.Bins {
			total += bv.Values[0]
		}
		if math.Abs(total-float64(db.NumRows())) > 0.05*float64(db.NumRows()) {
			t.Errorf("total count %v, want ~%d", total, db.NumRows())
		}
	})

	t.Run("FilteredQuery", func(t *testing.T) {
		e := factory()
		if err := e.Prepare(db, engine.Options{}); err != nil {
			t.Fatal(err)
		}
		e.WorkflowStart()
		defer e.WorkflowEnd()
		q := CountByCarrier()
		q.Filter = query.Filter{Predicates: []query.Predicate{
			{Field: "origin_state", Op: query.OpIn, Values: []string{"CA"}},
		}}
		h, err := e.StartQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		res := WaitResult(t, h, 30*time.Second)
		if res == nil {
			t.Fatal("no result after completion")
		}
		gt, _ := Exact(db, q)
		var gtTotal, resTotal float64
		for _, bv := range gt.Bins {
			gtTotal += bv.Values[0]
		}
		for _, bv := range res.Bins {
			resTotal += bv.Values[0]
		}
		if math.Abs(resTotal-gtTotal) > 0.1*gtTotal {
			t.Errorf("filtered total %v, want ~%v", resTotal, gtTotal)
		}
	})

	t.Run("Capabilities", func(t *testing.T) {
		e := factory()
		CapabilitiesAgree(t, e)
		if err := e.Prepare(db, engine.Options{}); err != nil {
			t.Fatal(err)
		}
		// Capabilities are static type facts: preparing must not change them.
		CapabilitiesAgree(t, e)
	})

	t.Run("CancelStopsExecution", func(t *testing.T) {
		e := factory()
		if err := e.Prepare(db, engine.Options{}); err != nil {
			t.Fatal(err)
		}
		e.WorkflowStart()
		defer e.WorkflowEnd()
		h, err := e.StartQuery(AvgDelayByDistance())
		if err != nil {
			t.Fatal(err)
		}
		h.Cancel()
		select {
		case <-h.Done():
		case <-time.After(10 * time.Second):
			t.Fatal("cancelled query did not finish")
		}
	})

	t.Run("ConcurrentQueries", func(t *testing.T) {
		e := factory()
		if err := e.Prepare(db, engine.Options{}); err != nil {
			t.Fatal(err)
		}
		e.WorkflowStart()
		defer e.WorkflowEnd()
		handles := make([]engine.Handle, 0, 6)
		for i := 0; i < 6; i++ {
			q := CountByCarrier()
			q.VizName = fmt.Sprintf("viz_%d", i)
			h, err := e.StartQuery(q)
			if err != nil {
				t.Fatal(err)
			}
			handles = append(handles, h)
		}
		for _, h := range handles {
			if res := WaitResult(t, h, 30*time.Second); res == nil {
				t.Error("concurrent query returned no result")
			}
		}
	})
}
