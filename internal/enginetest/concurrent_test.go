package enginetest_test

import (
	"testing"

	"idebench/internal/engine"
	"idebench/internal/engine/exactdb"
	"idebench/internal/engine/progressive"
	"idebench/internal/enginetest"
)

// The progressive engine is the one whose concurrent results now come from a
// shared scan cursor instead of independent per-query passes; the scenario
// asserts that sharing is invisible in the results.
func TestConcurrentMultiVizProgressive(t *testing.T) {
	enginetest.ConcurrentMultiViz(t, func() engine.Engine {
		return progressive.New(progressive.Config{})
	}, true)
}

// With speculation on, link-round consumers share the same scanner as the
// foreground queries; results must still be independent-scan identical.
func TestConcurrentMultiVizProgressiveSpeculative(t *testing.T) {
	enginetest.ConcurrentMultiViz(t, func() engine.Engine {
		return progressive.New(progressive.Config{Speculate: true})
	}, true)
}

// exactdb runs each query as its own parallel scan; it pins down that the
// scenario itself is engine-agnostic.
func TestConcurrentMultiVizExactDB(t *testing.T) {
	enginetest.ConcurrentMultiViz(t, func() engine.Engine {
		return exactdb.New()
	}, true)
}
