package enginetest_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"idebench/internal/dataset"
	"idebench/internal/engine"
	"idebench/internal/enginetest"
	"idebench/internal/query"
	"idebench/internal/stats"
)

// TestPermutedSequentialMatchesGatherBitwise is the storage-layer property
// test behind the progressive engines' permuted materialization: scanning a
// prefix of the permutation via ScanRows on the original table (the old
// random-order gather path) and scanning the same logical rows via a
// sequential ScanRange over the permutation-ordered copy
// (dataset.ReorderTable / ReorderFact) must produce bitwise-identical group
// states — same bins, same counts, same Welford moments, same min/max. Both
// paths fold the same value sequence through the same batch kernels at the
// same batch boundaries, so even float accumulation order is identical.
func TestPermutedSequentialMatchesGatherBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	queries := func(normalized bool) []*query.Query {
		qs := enginetest.MultiVizQueries(6)
		if !normalized {
			return qs
		}
		// NormalizedDB reaches carrier/origin_state through FK columns and
		// adds a dimension-side nominal; cover the FK kernels too.
		qs = append(qs, &query.Query{
			VizName: "viz_region", Table: "flights",
			Bins: []query.Binning{{Field: "carrier_region", Kind: dataset.Nominal}},
			Aggs: []query.Aggregate{{Func: query.Avg, Field: "arr_delay"}},
			Filter: query.Filter{Predicates: []query.Predicate{
				{Field: "carrier", Op: query.OpIn, Values: []string{"AA", "DL", "WN"}},
			}},
		})
		return qs
	}
	for trial := 0; trial < 20; trial++ {
		rows := 1 + rng.Intn(3*engine.BatchRows) // sub-batch through multi-batch
		normalized := trial%3 == 2
		var db *dataset.Database
		if normalized {
			db = enginetest.NormalizedDB(rows, int64(trial))
		} else {
			db = enginetest.SmallDB(rows, int64(trial))
		}
		perm := stats.Permutation(rng, rows)
		permDB, err := db.ReorderFact(perm)
		if err != nil {
			t.Fatal(err)
		}
		prefix := 1 + rng.Intn(rows)
		for qi, q := range queries(normalized) {
			label := fmt.Sprintf("trial %d query %d (rows=%d prefix=%d normalized=%v)",
				trial, qi, rows, prefix, normalized)
			gatherPlan, err := engine.Compile(db, q)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			seqPlan, err := engine.Compile(permDB, q)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			gather := engine.NewGroupState(gatherPlan)
			gather.ScanRows(perm[:prefix])
			seq := engine.NewGroupState(seqPlan)
			seq.ScanRange(0, prefix)
			if len(gather.Groups) != len(seq.Groups) {
				t.Fatalf("%s: %d groups sequential, %d gather", label, len(seq.Groups), len(gather.Groups))
			}
			for key, want := range gather.Groups {
				got, ok := seq.Groups[key]
				if !ok {
					t.Fatalf("%s: sequential path missing bin %v", label, key)
				}
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("%s: bin %v accumulators differ:\n gather %+v\n    seq %+v",
						label, key, want, got)
				}
			}
		}
	}
}
