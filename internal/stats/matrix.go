package stats

import (
	"errors"
	"fmt"
	"math"
)

// Matrix is a dense row-major square-or-rectangular matrix of float64.
// It is deliberately minimal: the data scaler needs covariance estimation,
// Cholesky factorization and matrix-vector products, nothing more.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMatrix allocates a zeroed rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// MulVec computes y = M·x. It panics if len(x) != Cols.
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("stats: MulVec dimension mismatch: %d != %d", len(x), m.Cols))
	}
	y := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// MulVecLowerInto computes y = L·x assuming m is lower triangular, writing
// into a caller-provided slice to avoid allocation in the scaler's hot loop.
func (m *Matrix) MulVecLowerInto(dst, x []float64) {
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : i*m.Cols+i+1]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] = s
	}
}

// Covariance estimates the sample covariance matrix of the given columns.
// cols is a slice of equally long attribute vectors (column-major data).
// The unbiased (n-1) estimator is used. It returns an error when fewer than
// two observations are available or columns are unequal length.
func Covariance(cols [][]float64) (*Matrix, error) {
	d := len(cols)
	if d == 0 {
		return nil, errors.New("stats: covariance of zero columns")
	}
	n := len(cols[0])
	for _, c := range cols {
		if len(c) != n {
			return nil, errors.New("stats: covariance columns of unequal length")
		}
	}
	if n < 2 {
		return nil, errors.New("stats: covariance needs at least two observations")
	}

	means := make([]float64, d)
	for j, c := range cols {
		var s float64
		for _, v := range c {
			s += v
		}
		means[j] = s / float64(n)
	}

	m := NewMatrix(d, d)
	for a := 0; a < d; a++ {
		for b := a; b < d; b++ {
			var s float64
			ca, cb := cols[a], cols[b]
			ma, mb := means[a], means[b]
			for i := 0; i < n; i++ {
				s += (ca[i] - ma) * (cb[i] - mb)
			}
			cov := s / float64(n-1)
			m.Set(a, b, cov)
			m.Set(b, a, cov)
		}
	}
	return m, nil
}

// CorrelationFromCovariance converts a covariance matrix to a correlation
// matrix. Zero-variance attributes get unit diagonal and zero off-diagonals
// so that the Cholesky factorization stays well defined.
func CorrelationFromCovariance(cov *Matrix) *Matrix {
	d := cov.Rows
	r := NewMatrix(d, d)
	std := make([]float64, d)
	for i := 0; i < d; i++ {
		std[i] = math.Sqrt(cov.At(i, i))
	}
	for i := 0; i < d; i++ {
		for j := 0; j < d; j++ {
			if i == j {
				r.Set(i, j, 1)
				continue
			}
			if std[i] == 0 || std[j] == 0 {
				r.Set(i, j, 0)
				continue
			}
			c := cov.At(i, j) / (std[i] * std[j])
			// Clamp numerical noise so the matrix stays a valid correlation matrix.
			if c > 1 {
				c = 1
			} else if c < -1 {
				c = -1
			}
			r.Set(i, j, c)
		}
	}
	return r
}

// Cholesky computes the lower-triangular factor L with M = L·Lᵀ. If the
// matrix is not positive definite it retries with progressively larger
// diagonal jitter (up to maxJitter of the mean diagonal), which is the
// standard remedy for near-singular empirical correlation matrices. It
// returns an error if factorization fails even with jitter.
func Cholesky(m *Matrix) (*Matrix, error) {
	if m.Rows != m.Cols {
		return nil, errors.New("stats: cholesky of non-square matrix")
	}
	d := m.Rows
	var meanDiag float64
	for i := 0; i < d; i++ {
		meanDiag += m.At(i, i)
	}
	meanDiag /= float64(d)
	if meanDiag <= 0 {
		meanDiag = 1
	}

	for _, jitterFrac := range []float64{0, 1e-12, 1e-9, 1e-6, 1e-3} {
		l, ok := tryCholesky(m, jitterFrac*meanDiag)
		if ok {
			return l, nil
		}
	}
	return nil, errors.New("stats: matrix is not positive definite (even with jitter)")
}

func tryCholesky(m *Matrix, jitter float64) (*Matrix, bool) {
	d := m.Rows
	l := NewMatrix(d, d)
	for i := 0; i < d; i++ {
		for j := 0; j <= i; j++ {
			var s float64
			for k := 0; k < j; k++ {
				s += l.At(i, k) * l.At(j, k)
			}
			if i == j {
				v := m.At(i, i) + jitter - s
				if v <= 0 {
					return nil, false
				}
				l.Set(i, i, math.Sqrt(v))
			} else {
				l.Set(i, j, (m.At(i, j)-s)/l.At(j, j))
			}
		}
	}
	return l, true
}
