package stats

import (
	"errors"
	"math"
	"math/rand"
)

// Zipf draws integers in [0, n) with P(k) ∝ 1/(k+1)^s. The seed generator
// uses it for airport and carrier popularity, which are heavily skewed in
// the real flights data. Unlike math/rand.Zipf it allows s <= 1 and is
// reproducible from the caller's *rand.Rand.
type Zipf struct {
	cum []float64
}

// NewZipf precomputes the cumulative mass for n categories with exponent s.
// It returns an error for n <= 0 or s < 0.
func NewZipf(n int, s float64) (*Zipf, error) {
	if n <= 0 {
		return nil, errors.New("stats: zipf needs n > 0")
	}
	if s < 0 {
		return nil, errors.New("stats: zipf needs s >= 0")
	}
	cum := make([]float64, n)
	var total float64
	for k := 0; k < n; k++ {
		total += 1 / math.Pow(float64(k+1), s)
		cum[k] = total
	}
	for k := range cum {
		cum[k] /= total
	}
	cum[n-1] = 1
	return &Zipf{cum: cum}, nil
}

// Draw samples one category index using rng.
func (z *Zipf) Draw(rng *rand.Rand) int {
	u := rng.Float64()
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// ReservoirSample returns k indices drawn uniformly without replacement
// from [0, n) using Vitter's algorithm R. If k >= n it returns all indices.
func ReservoirSample(rng *rand.Rand, n, k int) []int {
	if k >= n {
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		return all
	}
	res := make([]int, k)
	for i := 0; i < k; i++ {
		res[i] = i
	}
	for i := k; i < n; i++ {
		j := rng.Intn(i + 1)
		if j < k {
			res[j] = i
		}
	}
	return res
}

// Permutation returns a random permutation of [0,n) as uint32 indices; the
// progressive engine scans rows in this order so that any prefix is a
// uniform random sample.
func Permutation(rng *rand.Rand, n int) []uint32 {
	p := make([]uint32, n)
	for i := range p {
		p[i] = uint32(i)
	}
	for i := n - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
