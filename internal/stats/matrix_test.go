package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCovarianceSimple(t *testing.T) {
	// Perfectly correlated columns: cov = var.
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{2, 4, 6, 8, 10}
	m, err := Covariance([][]float64{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.At(0, 0)-2.5) > 1e-12 {
		t.Errorf("var(a) = %v, want 2.5", m.At(0, 0))
	}
	if math.Abs(m.At(0, 1)-5.0) > 1e-12 {
		t.Errorf("cov(a,b) = %v, want 5", m.At(0, 1))
	}
	if m.At(0, 1) != m.At(1, 0) {
		t.Error("covariance matrix not symmetric")
	}
}

func TestCovarianceErrors(t *testing.T) {
	if _, err := Covariance(nil); err == nil {
		t.Error("expected error for zero columns")
	}
	if _, err := Covariance([][]float64{{1}}); err == nil {
		t.Error("expected error for single observation")
	}
	if _, err := Covariance([][]float64{{1, 2}, {1}}); err == nil {
		t.Error("expected error for ragged columns")
	}
}

func TestCorrelationFromCovariance(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{2, 4, 6, 8, 10}
	cst := []float64{7, 7, 7, 7, 7} // zero variance
	cov, err := Covariance([][]float64{a, b, cst})
	if err != nil {
		t.Fatal(err)
	}
	r := CorrelationFromCovariance(cov)
	if math.Abs(r.At(0, 1)-1) > 1e-12 {
		t.Errorf("corr(a,b) = %v, want 1", r.At(0, 1))
	}
	if r.At(2, 2) != 1 {
		t.Error("zero-variance diagonal should be 1")
	}
	if r.At(0, 2) != 0 {
		t.Error("zero-variance off-diagonal should be 0")
	}
}

func TestCholeskyIdentity(t *testing.T) {
	m := NewMatrix(3, 3)
	for i := 0; i < 3; i++ {
		m.Set(i, i, 1)
	}
	l, err := Cholesky(m)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(l.At(i, j)-want) > 1e-12 {
				t.Errorf("L[%d][%d] = %v, want %v", i, j, l.At(i, j), want)
			}
		}
	}
}

func TestCholeskyReconstruction(t *testing.T) {
	// A known SPD matrix.
	m := NewMatrix(3, 3)
	vals := [][]float64{{4, 2, 1}, {2, 3, 0.5}, {1, 0.5, 2}}
	for i := range vals {
		for j := range vals[i] {
			m.Set(i, j, vals[i][j])
		}
	}
	l, err := Cholesky(m)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			var s float64
			for k := 0; k < 3; k++ {
				s += l.At(i, k) * l.At(j, k)
			}
			if math.Abs(s-m.At(i, j)) > 1e-10 {
				t.Errorf("LLᵀ[%d][%d] = %v, want %v", i, j, s, m.At(i, j))
			}
		}
	}
}

func TestCholeskyNonSquare(t *testing.T) {
	if _, err := Cholesky(NewMatrix(2, 3)); err == nil {
		t.Error("expected error for non-square matrix")
	}
}

func TestCholeskyJitterRecoversSingular(t *testing.T) {
	// Rank-deficient correlation matrix (perfect correlation).
	m := NewMatrix(2, 2)
	m.Set(0, 0, 1)
	m.Set(1, 1, 1)
	m.Set(0, 1, 1)
	m.Set(1, 0, 1)
	if _, err := Cholesky(m); err != nil {
		t.Fatalf("jittered cholesky should succeed: %v", err)
	}
}

// Property: Cholesky of a randomly generated SPD matrix A·Aᵀ+I reconstructs it.
func TestCholeskyPropertyReconstruct(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 2 + rng.Intn(5)
		a := NewMatrix(d, d)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		spd := NewMatrix(d, d)
		for i := 0; i < d; i++ {
			for j := 0; j < d; j++ {
				var s float64
				for k := 0; k < d; k++ {
					s += a.At(i, k) * a.At(j, k)
				}
				if i == j {
					s += 1
				}
				spd.Set(i, j, s)
			}
		}
		l, err := Cholesky(spd)
		if err != nil {
			return false
		}
		for i := 0; i < d; i++ {
			for j := 0; j < d; j++ {
				var s float64
				for k := 0; k < d; k++ {
					s += l.At(i, k) * l.At(j, k)
				}
				if math.Abs(s-spd.At(i, j)) > 1e-6*(1+math.Abs(spd.At(i, j))) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMulVec(t *testing.T) {
	m := NewMatrix(2, 3)
	copy(m.Data, []float64{1, 2, 3, 4, 5, 6})
	y := m.MulVec([]float64{1, 1, 1})
	if y[0] != 6 || y[1] != 15 {
		t.Errorf("MulVec = %v", y)
	}
}

func TestMulVecLowerInto(t *testing.T) {
	m := NewMatrix(2, 2)
	copy(m.Data, []float64{2, 0, 3, 4})
	dst := make([]float64, 2)
	m.MulVecLowerInto(dst, []float64{1, 2})
	if dst[0] != 2 || dst[1] != 11 {
		t.Errorf("MulVecLowerInto = %v", dst)
	}
}

func TestMulVecPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewMatrix(2, 3).MulVec([]float64{1})
}
