package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmpiricalCDFQuantile(t *testing.T) {
	e, err := NewEmpiricalCDF([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ p, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {-1, 1}, {2, 5},
	}
	for _, c := range cases {
		if got := e.Quantile(c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if e.Min() != 1 || e.Max() != 5 || e.Len() != 5 {
		t.Error("Min/Max/Len wrong")
	}
}

func TestEmpiricalCDFEmpty(t *testing.T) {
	if _, err := NewEmpiricalCDF(nil); err == nil {
		t.Error("expected error for empty sample")
	}
}

func TestEmpiricalCDFDoesNotAliasInput(t *testing.T) {
	in := []float64{3, 1, 2}
	e, _ := NewEmpiricalCDF(in)
	in[0] = 100
	if e.Max() == 100 {
		t.Error("CDF aliased caller slice")
	}
}

// Property: Quantile is monotone in p.
func TestEmpiricalQuantileMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(100)
		sample := make([]float64, n)
		for i := range sample {
			sample[i] = rng.NormFloat64() * 10
		}
		e, err := NewEmpiricalCDF(sample)
		if err != nil {
			return false
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 1.0; p += 0.05 {
			q := e.Quantile(p)
			if q < prev-1e-12 {
				return false
			}
			prev = q
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: values produced by Quantile stay within [Min, Max].
func TestEmpiricalQuantileBounds(t *testing.T) {
	f := func(vals []float64, p float64) bool {
		if len(vals) == 0 {
			return true
		}
		for _, v := range vals {
			if math.IsNaN(v) {
				return true
			}
		}
		e, err := NewEmpiricalCDF(vals)
		if err != nil {
			return false
		}
		q := e.Quantile(math.Mod(math.Abs(p), 1))
		return q >= e.Min()-1e-9 && q <= e.Max()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEmpiricalCDFFunction(t *testing.T) {
	e, _ := NewEmpiricalCDF([]float64{1, 2, 3, 4})
	if got := e.CDF(2.5); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("CDF(2.5) = %v, want 0.5", got)
	}
	if got := e.CDF(0); got != 0 {
		t.Errorf("CDF(0) = %v, want 0", got)
	}
	if got := e.CDF(10); got != 1 {
		t.Errorf("CDF(10) = %v, want 1", got)
	}
}

func TestDiscreteCDF(t *testing.T) {
	d, err := NewDiscreteCDF([]uint32{0, 1, 2}, []int{1, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Quantile(0.1); got != 0 {
		t.Errorf("Quantile(0.1) = %v, want 0", got)
	}
	if got := d.Quantile(0.4); got != 1 {
		t.Errorf("Quantile(0.4) = %v, want 1", got)
	}
	if got := d.Quantile(0.9); got != 2 {
		t.Errorf("Quantile(0.9) = %v, want 2", got)
	}
	if got := d.Quantile(1); got != 2 {
		t.Errorf("Quantile(1) = %v, want 2", got)
	}
}

func TestDiscreteCDFErrors(t *testing.T) {
	if _, err := NewDiscreteCDF(nil, nil); err == nil {
		t.Error("expected error for empty")
	}
	if _, err := NewDiscreteCDF([]uint32{0}, []int{0}); err == nil {
		t.Error("expected error for all-zero counts")
	}
	if _, err := NewDiscreteCDF([]uint32{0}, []int{-1}); err == nil {
		t.Error("expected error for negative count")
	}
	if _, err := NewDiscreteCDF([]uint32{0, 1}, []int{1}); err == nil {
		t.Error("expected error for length mismatch")
	}
}

// Property: drawing many uniforms through DiscreteCDF reproduces frequencies.
func TestDiscreteCDFFrequencies(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	counts := []int{100, 300, 600}
	d, err := NewDiscreteCDF([]uint32{5, 6, 7}, counts)
	if err != nil {
		t.Fatal(err)
	}
	got := map[uint32]int{}
	const n = 50000
	for i := 0; i < n; i++ {
		got[d.Quantile(rng.Float64())]++
	}
	wantFrac := []float64{0.1, 0.3, 0.6}
	for i, code := range []uint32{5, 6, 7} {
		frac := float64(got[code]) / n
		if math.Abs(frac-wantFrac[i]) > 0.02 {
			t.Errorf("code %d frequency %v, want ~%v", code, frac, wantFrac[i])
		}
	}
}

func TestEmpiricalSortedOrderPreserved(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sample := make([]float64, 100)
	for i := range sample {
		sample[i] = rng.Float64()
	}
	e, _ := NewEmpiricalCDF(sample)
	if !sort.Float64sAreSorted(e.sorted) {
		t.Error("internal sample not sorted")
	}
}
