package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNormalCDFKnownValues(t *testing.T) {
	cases := []struct {
		x, want float64
	}{
		{0, 0.5},
		{1, 0.8413447460685429},
		{-1, 0.15865525393145705},
		{1.959963984540054, 0.975},
		{3, 0.9986501019683699},
		{-3, 0.0013498980316300933},
	}
	for _, c := range cases {
		if got := NormalCDF(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("NormalCDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestNormalPDFSymmetryAndPeak(t *testing.T) {
	if got := NormalPDF(0); math.Abs(got-1/math.Sqrt(2*math.Pi)) > 1e-15 {
		t.Errorf("NormalPDF(0) = %v", got)
	}
	for _, x := range []float64{0.3, 1.5, 2.7} {
		if math.Abs(NormalPDF(x)-NormalPDF(-x)) > 1e-15 {
			t.Errorf("NormalPDF not symmetric at %v", x)
		}
	}
}

func TestNormalQuantileKnownValues(t *testing.T) {
	cases := []struct {
		p, want float64
	}{
		{0.5, 0},
		{0.975, 1.959963984540054},
		{0.025, -1.959963984540054},
		{0.8413447460685429, 1},
		{0.9986501019683699, 3},
	}
	for _, c := range cases {
		if got := NormalQuantile(c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("NormalQuantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestNormalQuantileExtremes(t *testing.T) {
	if !math.IsInf(NormalQuantile(0), -1) {
		t.Error("NormalQuantile(0) should be -Inf")
	}
	if !math.IsInf(NormalQuantile(1), 1) {
		t.Error("NormalQuantile(1) should be +Inf")
	}
}

// Property: Quantile is the inverse of CDF across the useful range.
func TestNormalQuantileRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 0.0001 + 0.9998*rng.Float64()
		x := NormalQuantile(p)
		return math.Abs(NormalCDF(x)-p) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestZScore(t *testing.T) {
	z, err := ZScore(0.95)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(z-1.959963984540054) > 1e-9 {
		t.Errorf("ZScore(0.95) = %v", z)
	}
	if _, err := ZScore(0); err == nil {
		t.Error("ZScore(0) should error")
	}
	if _, err := ZScore(1); err == nil {
		t.Error("ZScore(1) should error")
	}
}

func TestMustZScorePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustZScore(2) should panic")
		}
	}()
	MustZScore(2)
}
