package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWelfordBasics(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.Count() != 8 {
		t.Errorf("Count = %d", w.Count())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", w.Mean())
	}
	// Population variance is 4 → sample variance is 32/7.
	if math.Abs(w.Variance()-32.0/7.0) > 1e-12 {
		t.Errorf("Variance = %v, want %v", w.Variance(), 32.0/7.0)
	}
	if math.Abs(w.Sum()-40) > 1e-12 {
		t.Errorf("Sum = %v, want 40", w.Sum())
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.StdErr() != 0 {
		t.Error("empty accumulator should be all zero")
	}
	w.Add(42)
	if w.Mean() != 42 || w.Variance() != 0 {
		t.Error("single observation should have zero variance")
	}
}

// Property: merging two accumulators equals accumulating the concatenation.
func TestWelfordMergeEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n1, n2 := rng.Intn(50), rng.Intn(50)
		var a, b, all Welford
		for i := 0; i < n1; i++ {
			x := rng.NormFloat64() * 100
			a.Add(x)
			all.Add(x)
		}
		for i := 0; i < n2; i++ {
			x := rng.NormFloat64()*5 + 50
			b.Add(x)
			all.Add(x)
		}
		a.Merge(b)
		if a.Count() != all.Count() {
			return false
		}
		if all.Count() == 0 {
			return true
		}
		tol := 1e-8 * (1 + math.Abs(all.Mean()))
		if math.Abs(a.Mean()-all.Mean()) > tol {
			return false
		}
		return math.Abs(a.Variance()-all.Variance()) <= 1e-6*(1+all.Variance())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestWelfordMergeIntoEmpty(t *testing.T) {
	var a, b Welford
	b.Add(1)
	b.Add(3)
	a.Merge(b)
	if a.Count() != 2 || a.Mean() != 2 {
		t.Errorf("merge into empty: count=%d mean=%v", a.Count(), a.Mean())
	}
	var c Welford
	b.Merge(c) // merging empty is a no-op
	if b.Count() != 2 {
		t.Error("merging empty changed the accumulator")
	}
}

func TestMeanCI(t *testing.T) {
	var w Welford
	for i := 0; i < 100; i++ {
		w.Add(float64(i % 10))
	}
	ci := w.MeanCI(1.96)
	if ci <= 0 {
		t.Error("CI should be positive")
	}
	manual := 1.96 * math.Sqrt(w.Variance()/100)
	if math.Abs(ci-manual) > 1e-12 {
		t.Errorf("MeanCI = %v, want %v", ci, manual)
	}
}

func TestFractionCI(t *testing.T) {
	if !math.IsInf(FractionCI(0, 0, 100, 1.96), 1) {
		t.Error("n=0 should give infinite margin")
	}
	// p = 0.5, n = 100, N = 1000: margin = 1.96*1000*sqrt(0.25/100) = 98.
	got := FractionCI(50, 100, 1000, 1.96)
	if math.Abs(got-98) > 1e-9 {
		t.Errorf("FractionCI = %v, want 98", got)
	}
	// Larger n shrinks the margin.
	if FractionCI(500, 1000, 1000, 1.96) >= got {
		t.Error("margin should shrink with sample size")
	}
}

func TestSumCI(t *testing.T) {
	var w Welford
	if !math.IsInf(SumCI(w, 100, 1.96), 1) {
		t.Error("empty accumulator should give infinite margin")
	}
	for i := 0; i < 100; i++ {
		w.Add(rand.New(rand.NewSource(int64(i))).Float64())
	}
	if SumCI(w, 100, 1.96) <= 0 {
		t.Error("SumCI should be positive")
	}
}

func TestZipf(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	z, err := NewZipf(10, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 10)
	for i := 0; i < 20000; i++ {
		counts[z.Draw(rng)]++
	}
	// Heavily skewed: category 0 strictly most popular, all categories seen.
	if counts[0] <= counts[1] || counts[1] <= counts[3] {
		t.Errorf("zipf not decreasing: %v", counts)
	}
	for i, c := range counts {
		if c == 0 {
			t.Errorf("category %d never drawn", i)
		}
	}
}

func TestZipfUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	z, err := NewZipf(4, 0) // s=0 → uniform
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 4)
	for i := 0; i < 40000; i++ {
		counts[z.Draw(rng)]++
	}
	for _, c := range counts {
		if math.Abs(float64(c)-10000) > 600 {
			t.Errorf("uniform zipf counts skewed: %v", counts)
		}
	}
}

func TestZipfErrors(t *testing.T) {
	if _, err := NewZipf(0, 1); err == nil {
		t.Error("expected error for n=0")
	}
	if _, err := NewZipf(5, -1); err == nil {
		t.Error("expected error for s<0")
	}
}

func TestReservoirSample(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := ReservoirSample(rng, 100, 10)
	if len(s) != 10 {
		t.Fatalf("len = %d", len(s))
	}
	seen := map[int]bool{}
	for _, idx := range s {
		if idx < 0 || idx >= 100 {
			t.Errorf("index out of range: %d", idx)
		}
		if seen[idx] {
			t.Errorf("duplicate index %d", idx)
		}
		seen[idx] = true
	}
	// k >= n returns everything.
	all := ReservoirSample(rng, 5, 10)
	if len(all) != 5 {
		t.Errorf("k>=n should return n items, got %d", len(all))
	}
}

func TestPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	p := Permutation(rng, 1000)
	seen := make([]bool, 1000)
	for _, v := range p {
		if seen[v] {
			t.Fatalf("duplicate %d", v)
		}
		seen[v] = true
	}
	// Not the identity permutation (astronomically unlikely).
	identity := true
	for i, v := range p {
		if int(v) != i {
			identity = false
			break
		}
	}
	if identity {
		t.Error("permutation is the identity")
	}
}
