package stats

import (
	"errors"
	"math"
	"sort"
)

// EmpiricalCDF is the empirical distribution of a numeric sample. The data
// scaler uses its Quantile (inverse CDF) to map correlated uniforms back to
// the seed's marginal distribution, preserving attribute shapes.
type EmpiricalCDF struct {
	sorted []float64
}

// NewEmpiricalCDF builds an empirical CDF from a sample. The input slice is
// copied; it returns an error for an empty sample.
func NewEmpiricalCDF(sample []float64) (*EmpiricalCDF, error) {
	if len(sample) == 0 {
		return nil, errors.New("stats: empirical CDF of empty sample")
	}
	s := make([]float64, len(sample))
	copy(s, sample)
	sort.Float64s(s)
	return &EmpiricalCDF{sorted: s}, nil
}

// Quantile returns the p-quantile using linear interpolation between order
// statistics. p is clamped to [0,1].
func (e *EmpiricalCDF) Quantile(p float64) float64 {
	n := len(e.sorted)
	if p <= 0 {
		return e.sorted[0]
	}
	if p >= 1 {
		return e.sorted[n-1]
	}
	pos := p * float64(n-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= n {
		return e.sorted[n-1]
	}
	return e.sorted[lo]*(1-frac) + e.sorted[lo+1]*frac
}

// CDF returns the fraction of sample values <= x.
func (e *EmpiricalCDF) CDF(x float64) float64 {
	idx := sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(len(e.sorted))
}

// Min returns the smallest observed value.
func (e *EmpiricalCDF) Min() float64 { return e.sorted[0] }

// Max returns the largest observed value.
func (e *EmpiricalCDF) Max() float64 { return e.sorted[len(e.sorted)-1] }

// Len returns the sample size.
func (e *EmpiricalCDF) Len() int { return len(e.sorted) }

// DiscreteCDF maps correlated uniforms onto a fixed set of category codes
// with given empirical frequencies. Categories are assigned contiguous
// probability mass in code order, so copula correlation carries over to an
// ordinal correlation between nominal attributes — the same behaviour the
// IDEBench Python generator exhibits for dictionary-encoded columns.
type DiscreteCDF struct {
	cum   []float64 // cumulative probability per code, last element == 1
	codes []uint32
}

// NewDiscreteCDF builds a discrete inverse CDF from per-code counts.
// counts[i] is the frequency of codes[i]; zero-count codes are retained with
// zero mass. It returns an error when all counts are zero.
func NewDiscreteCDF(codes []uint32, counts []int) (*DiscreteCDF, error) {
	if len(codes) != len(counts) || len(codes) == 0 {
		return nil, errors.New("stats: discrete CDF requires matching non-empty codes/counts")
	}
	var total float64
	for _, c := range counts {
		if c < 0 {
			return nil, errors.New("stats: negative count")
		}
		total += float64(c)
	}
	if total == 0 {
		return nil, errors.New("stats: all counts zero")
	}
	cum := make([]float64, len(counts))
	var run float64
	for i, c := range counts {
		run += float64(c) / total
		cum[i] = run
	}
	cum[len(cum)-1] = 1 // guard against rounding drift
	cs := make([]uint32, len(codes))
	copy(cs, codes)
	return &DiscreteCDF{cum: cum, codes: cs}, nil
}

// Quantile maps u in [0,1] to a category code.
func (d *DiscreteCDF) Quantile(u float64) uint32 {
	idx := sort.SearchFloat64s(d.cum, u)
	if idx >= len(d.codes) {
		idx = len(d.codes) - 1
	}
	return d.codes[idx]
}
