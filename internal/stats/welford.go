package stats

import "math"

// Welford accumulates mean and variance in one pass using Welford's
// algorithm. Progressive engines keep one accumulator per (bin, aggregate)
// to derive CLT confidence intervals for partial results.
type Welford struct {
	n    int64
	mean float64
	m2   float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// Merge combines another accumulator into this one (parallel variant of
// Welford, Chan et al.). Used when progressive chunks are folded by worker
// goroutines and merged at poll time.
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	delta := o.mean - w.mean
	w.m2 += o.m2 + delta*delta*float64(w.n)*float64(o.n)/float64(n)
	w.mean += delta * float64(o.n) / float64(n)
	w.n = n
}

// State exposes the raw accumulator moments (n, mean, M2) for wire
// serialization. A shard's partial aggregation state travels as these three
// numbers and reconstructs with WelfordFromState, so a coordinator-side merge
// of shipped accumulators is the same float operations as a local Merge —
// the bitwise-determinism requirement of scatter-gather serving.
func (w *Welford) State() (n int64, mean, m2 float64) { return w.n, w.mean, w.m2 }

// WelfordFromState reconstructs an accumulator from State output.
func WelfordFromState(n int64, mean, m2 float64) Welford {
	return Welford{n: n, mean: mean, m2: m2}
}

// Count returns the number of observations.
func (w *Welford) Count() int64 { return w.n }

// Mean returns the running mean (0 for an empty accumulator).
func (w *Welford) Mean() float64 { return w.mean }

// Sum returns n·mean, the running sum.
func (w *Welford) Sum() float64 { return w.mean * float64(w.n) }

// SumSquares returns Σx², reconstructed from the running moments. Online
// aggregation engines use it to derive the variance of per-row group
// contributions (x·1[row∈bin]) without observing the zero contributions of
// rows outside the bin.
func (w *Welford) SumSquares() float64 {
	return w.m2 + float64(w.n)*w.mean*w.mean
}

// Variance returns the unbiased sample variance (0 when n < 2).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdErr returns the standard error of the mean (0 when n < 2).
func (w *Welford) StdErr() float64 {
	if w.n < 2 {
		return 0
	}
	return math.Sqrt(w.Variance() / float64(w.n))
}

// MeanCI returns the half-width of the confidence interval around the mean
// for the given z critical value.
func (w *Welford) MeanCI(z float64) float64 { return z * w.StdErr() }

// FractionCI returns the half-width of the CLT interval for estimating a
// population total from a sample proportion: the bin's count estimate is
// N·p̂ with p̂ = k/n, so the margin on the scaled count is
// z·N·sqrt(p̂(1-p̂)/n).
func FractionCI(k, n int64, populationN float64, z float64) float64 {
	if n == 0 {
		return math.Inf(1)
	}
	p := float64(k) / float64(n)
	se := math.Sqrt(p * (1 - p) / float64(n))
	return z * populationN * se
}

// SumCI returns the half-width of the CLT interval for a population SUM
// estimated from a sample: the estimator is N·mean(x·indicator) where the
// accumulator tracks per-row contributions (x when the row falls in the bin,
// 0 otherwise) over all n sampled rows.
func SumCI(w Welford, populationN float64, z float64) float64 {
	if w.n < 2 {
		return math.Inf(1)
	}
	return z * populationN * w.StdErr()
}
